#include "hw/comparator_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace fifoms::hw {
namespace {

TEST(ComparatorTree, DepthIsCeilLog2) {
  EXPECT_EQ(ComparatorTree(1).depth(), 0);
  EXPECT_EQ(ComparatorTree(2).depth(), 1);
  EXPECT_EQ(ComparatorTree(3).depth(), 2);
  EXPECT_EQ(ComparatorTree(4).depth(), 2);
  EXPECT_EQ(ComparatorTree(5).depth(), 3);
  EXPECT_EQ(ComparatorTree(16).depth(), 4);
  EXPECT_EQ(ComparatorTree(17).depth(), 5);
  EXPECT_EQ(ComparatorTree(64).depth(), 6);
}

TEST(ComparatorTree, EmptyIsInvalid) {
  ComparatorTree tree(8);
  EXPECT_FALSE(tree.evaluate().valid);
}

TEST(ComparatorTree, SingleLaneWins) {
  ComparatorTree tree(8);
  tree.set_lane(5, 1234);
  const CompareResult result = tree.evaluate();
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(result.lane, 5);
  EXPECT_EQ(result.key, 1234u);
}

TEST(ComparatorTree, SmallestKeyWins) {
  ComparatorTree tree(4);
  tree.set_lane(0, 30);
  tree.set_lane(1, 10);
  tree.set_lane(2, 20);
  const CompareResult result = tree.evaluate();
  EXPECT_EQ(result.lane, 1);
  EXPECT_EQ(result.key, 10u);
}

TEST(ComparatorTree, TiesPickLowestLane) {
  ComparatorTree tree(8);
  tree.set_lane(6, 7);
  tree.set_lane(2, 7);
  tree.set_lane(4, 7);
  EXPECT_EQ(tree.evaluate().lane, 2);
}

TEST(ComparatorTree, ClearLaneRemovesContender) {
  ComparatorTree tree(4);
  tree.set_lane(0, 1);
  tree.set_lane(1, 2);
  tree.clear_lane(0);
  EXPECT_EQ(tree.evaluate().lane, 1);
  tree.clear_all();
  EXPECT_FALSE(tree.evaluate().valid);
}

TEST(ComparatorTree, NonPowerOfTwoLanes) {
  for (int lanes : {3, 5, 7, 11, 13}) {
    ComparatorTree tree(lanes);
    tree.set_lane(lanes - 1, 42);  // the pass-through odd lane
    const CompareResult result = tree.evaluate();
    EXPECT_EQ(result.lane, lanes - 1) << "lanes " << lanes;
  }
}

TEST(ComparatorTree, MatchesStdMinElementUnderFuzz) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const int lanes = 1 + static_cast<int>(rng.next_below(20));
    ComparatorTree tree(lanes);
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(lanes),
                                    ~0ull);
    bool any = false;
    for (int lane = 0; lane < lanes; ++lane) {
      if (rng.bernoulli(0.6)) {
        const std::uint64_t key = rng.next_below(50);  // force tie chances
        tree.set_lane(lane, key);
        keys[static_cast<std::size_t>(lane)] = key;
        any = true;
      }
    }
    const CompareResult result = tree.evaluate();
    if (!any) {
      EXPECT_FALSE(result.valid);
      continue;
    }
    const auto it = std::min_element(keys.begin(), keys.end());
    EXPECT_TRUE(result.valid);
    EXPECT_EQ(result.key, *it);
    // Lowest lane among the minima.
    EXPECT_EQ(result.lane,
              static_cast<int>(std::distance(keys.begin(), it)));
  }
}

TEST(ComparatorTree, ComparisonCountPerEvaluation) {
  // A full binary tree over 8 lanes burns exactly 7 comparators per pass.
  ComparatorTree tree(8);
  for (int lane = 0; lane < 8; ++lane) tree.set_lane(lane, lane);
  (void)tree.evaluate();
  EXPECT_EQ(tree.comparisons(), 7u);
  (void)tree.evaluate();
  EXPECT_EQ(tree.comparisons(), 14u);
}

TEST(ComparatorTreeDeath, LaneOutOfRangePanics) {
  ComparatorTree tree(4);
  EXPECT_DEATH(tree.set_lane(4, 0), "lane out of range");
  EXPECT_DEATH(tree.set_lane(-1, 0), "lane out of range");
}

}  // namespace
}  // namespace fifoms::hw
