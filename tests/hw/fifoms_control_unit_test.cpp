#include "hw/fifoms_control_unit.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/fifoms.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "test_util.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

using test::make_packet;

std::vector<McVoqInput> make_ports(int n) {
  std::vector<McVoqInput> ports;
  for (PortId p = 0; p < n; ++p) ports.emplace_back(p, n);
  return ports;
}

TEST(FifomsControlUnit, LevelsPerRoundIsTwoLogN) {
  hw::FifomsControlUnit unit;
  unit.reset(16, 16);
  EXPECT_EQ(unit.levels_per_round(), 8);  // 4 input + 4 output levels
  unit.reset(64, 64);
  EXPECT_EQ(unit.levels_per_round(), 12);
}

TEST(FifomsControlUnit, LoneMulticastFullyGranted) {
  auto ports = make_ports(4);
  ports[1].accept(make_packet(1, 1, 5, {0, 2, 3}));
  hw::FifomsControlUnit unit;
  unit.reset(4, 4);
  SlotMatching m(4, 4);
  Rng rng(1);
  unit.schedule(ports, 5, m, rng);
  m.validate();
  EXPECT_EQ(m.grants(1), (PortSet{0, 2, 3}));
  EXPECT_EQ(m.rounds, 1);
}

TEST(FifomsControlUnit, TieBreaksToLowestInput) {
  auto ports = make_ports(4);
  ports[2].accept(make_packet(1, 2, 5, {0}));
  ports[3].accept(make_packet(2, 3, 5, {0}));
  hw::FifomsControlUnit unit;
  unit.reset(4, 4);
  SlotMatching m(4, 4);
  Rng rng(1);
  unit.schedule(ports, 5, m, rng);
  EXPECT_EQ(m.source(0), 2);
}

TEST(FifomsControlUnit, CountsComparisonsAndRounds) {
  auto ports = make_ports(4);
  ports[0].accept(make_packet(1, 0, 1, {0}));
  hw::FifomsControlUnit unit;
  unit.reset(4, 4);
  SlotMatching m(4, 4);
  Rng rng(1);
  unit.schedule(ports, 1, m, rng);
  EXPECT_GT(unit.total_comparisons(), 0u);
  EXPECT_EQ(unit.total_rounds(), 1u);
}

// ---- Differential test: gate-level datapath == behavioural scheduler --
//
// Both schedulers implement FIFOMS with deterministic lowest-input
// tie-break; on identical queue states they must emit identical matchings
// slot for slot.  At N <= 3 this sampled sweep is superseded by the
// EXHAUSTIVE equivalence check in tests/verify/hw_equiv_exhaustive_test.cpp
// (every reachable state, not 500 random slots), so the rows below start
// at N = 4 where exhaustion is out of reach and sampling still earns its
// keep.

struct DiffParam {
  int ports;
  double p;
  double b;
  std::uint64_t seed;
};

class HwDifferentialTest : public ::testing::TestWithParam<DiffParam> {};

TEST_P(HwDifferentialTest, HardwareMatchesBehaviouralScheduler) {
  const DiffParam param = GetParam();

  FifomsOptions options;
  options.tie_break = TieBreak::kLowestInput;
  VoqSwitch sw_behavioural(param.ports,
                           std::make_unique<FifomsScheduler>(options));
  VoqSwitch sw_hardware(param.ports,
                        std::make_unique<hw::FifomsControlUnit>());

  BernoulliTraffic traffic_a(param.ports, param.p, param.b);
  BernoulliTraffic traffic_b(param.ports, param.p, param.b);
  Rng rng_a(param.seed), rng_b(param.seed);
  Rng sched_a(1), sched_b(1);

  PacketId next_a = 0, next_b = 0;
  SlotResult result_a, result_b;
  for (SlotTime now = 0; now < 500; ++now) {
    for (PortId input = 0; input < param.ports; ++input) {
      const PortSet dests_a = traffic_a.arrival(input, now, rng_a);
      const PortSet dests_b = traffic_b.arrival(input, now, rng_b);
      ASSERT_EQ(dests_a, dests_b);
      if (dests_a.empty()) continue;
      Packet pa{next_a++, input, now, dests_a};
      Packet pb{next_b++, input, now, dests_b};
      sw_behavioural.inject(pa);
      sw_hardware.inject(pb);
    }
    result_a.clear();
    result_b.clear();
    sw_behavioural.step(now, sched_a, result_a);
    sw_hardware.step(now, sched_b, result_b);

    ASSERT_EQ(result_a.rounds, result_b.rounds) << "slot " << now;
    ASSERT_EQ(result_a.deliveries.size(), result_b.deliveries.size())
        << "slot " << now;
    for (std::size_t k = 0; k < result_a.deliveries.size(); ++k) {
      const Delivery& da = result_a.deliveries[k];
      const Delivery& db = result_b.deliveries[k];
      ASSERT_EQ(da.packet, db.packet) << "slot " << now;
      ASSERT_EQ(da.input, db.input) << "slot " << now;
      ASSERT_EQ(da.output, db.output) << "slot " << now;
    }
  }
  EXPECT_EQ(sw_behavioural.total_buffered(), sw_hardware.total_buffered());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HwDifferentialTest,
    ::testing::Values(DiffParam{4, 0.5, 0.4, 2},
                      DiffParam{8, 0.4, 0.25, 3}, DiffParam{16, 0.3, 0.2, 4},
                      DiffParam{16, 0.9, 0.3, 5}, DiffParam{5, 0.7, 0.5, 6}),
    [](const ::testing::TestParamInfo<DiffParam>& info) {
      std::string name = "N";
      name += std::to_string(info.param.ports);
      name += "_seed";
      name += std::to_string(info.param.seed);
      return name;
    });

TEST(FifomsControlUnit, WorksInsideFullSimulation) {
  VoqSwitch sw(8, std::make_unique<hw::FifomsControlUnit>());
  BernoulliTraffic traffic(8, 0.35, 0.25);
  SimConfig config;
  config.total_slots = 5000;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_FALSE(result.unstable);
  EXPECT_GT(result.copies_delivered, 0u);
}

}  // namespace
}  // namespace fifoms
