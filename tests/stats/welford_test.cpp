#include "stats/welford.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace fifoms {
namespace {

TEST(RunningStat, EmptyDefaults) {
  RunningStat stat;
  EXPECT_TRUE(stat.empty());
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.min(), 0.0);
  EXPECT_EQ(stat.max(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat stat;
  stat.add(4.5);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_DOUBLE_EQ(stat.mean(), 4.5);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.min(), 4.5);
  EXPECT_DOUBLE_EQ(stat.max(), 4.5);
}

TEST(RunningStat, KnownMoments) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 4.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(stat.stddev(), 2.0);
  EXPECT_NEAR(stat.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(RunningStat, NegativeValues) {
  RunningStat stat;
  stat.add(-10.0);
  stat.add(10.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 100.0);
  EXPECT_DOUBLE_EQ(stat.min(), -10.0);
}

TEST(RunningStat, MergeMatchesPooled) {
  Rng rng(4);
  RunningStat left, right, pooled;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10.0;
    left.add(x);
    pooled.add(x);
  }
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double() * 3.0 - 5.0;
    right.add(x);
    pooled.add(x);
  }
  RunningStat merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_NEAR(merged.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), pooled.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), pooled.min());
  EXPECT_DOUBLE_EQ(merged.max(), pooled.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat stat;
  stat.add(1.0);
  stat.add(3.0);
  RunningStat empty;
  RunningStat a = stat;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStat b = empty;
  b.merge(stat);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, NumericallyStableAtLargeOffsets) {
  // Naive sum-of-squares catastrophically cancels here; Welford must not.
  RunningStat stat;
  const double offset = 1e9;
  for (double x : {offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0})
    stat.add(x);
  EXPECT_NEAR(stat.mean(), offset + 10.0, 1e-3);
  EXPECT_NEAR(stat.variance(), 22.5, 1e-6);
}

TEST(RunningStat, StderrShrinksWithSamples) {
  Rng rng(8);
  RunningStat small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.next_double());
  for (int i = 0; i < 10000; ++i) large.add(rng.next_double());
  EXPECT_GT(small.stderr_mean(), large.stderr_mean());
  EXPECT_NEAR(large.stderr_mean(),
              large.sample_stddev() / std::sqrt(10000.0), 1e-12);
}

TEST(RunningStat, ResetClears) {
  RunningStat stat;
  stat.add(5.0);
  stat.reset();
  EXPECT_TRUE(stat.empty());
  EXPECT_EQ(stat.mean(), 0.0);
}

}  // namespace
}  // namespace fifoms
