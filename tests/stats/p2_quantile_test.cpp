#include "stats/p2_quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace fifoms {
namespace {

double exact_quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(index, samples.size() - 1)];
}

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile p2(0.5);
  EXPECT_EQ(p2.value(), 0.0);
  EXPECT_EQ(p2.count(), 0u);
}

TEST(P2Quantile, FewSamplesExact) {
  P2Quantile p2(0.5);
  p2.add(3.0);
  EXPECT_DOUBLE_EQ(p2.value(), 3.0);
  p2.add(1.0);
  p2.add(2.0);
  EXPECT_DOUBLE_EQ(p2.value(), 2.0);  // exact median of {1,2,3}
}

TEST(P2Quantile, MedianOfUniform) {
  P2Quantile p2(0.5);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) p2.add(rng.next_double());
  EXPECT_NEAR(p2.value(), 0.5, 0.01);
}

TEST(P2Quantile, TailQuantileOfUniform) {
  P2Quantile p2(0.99);
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) p2.add(rng.next_double());
  EXPECT_NEAR(p2.value(), 0.99, 0.01);
}

TEST(P2Quantile, ExponentialTail) {
  P2Quantile p2(0.9);
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) {
    const double x = -std::log(1.0 - rng.next_double());
    samples.push_back(x);
    p2.add(x);
  }
  const double exact = exact_quantile(samples, 0.9);
  EXPECT_NEAR(p2.value(), exact, 0.05 * exact + 0.02);
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile p2(0.75);
  for (int i = 0; i < 1000; ++i) p2.add(7.0);
  EXPECT_DOUBLE_EQ(p2.value(), 7.0);
}

TEST(P2Quantile, MonotoneIncreasingStream) {
  P2Quantile p2(0.5);
  for (int i = 1; i <= 10001; ++i) p2.add(static_cast<double>(i));
  EXPECT_NEAR(p2.value(), 5001.0, 120.0);
}

TEST(P2QuantileDeath, DegenerateQuantilePanics) {
  EXPECT_DEATH(P2Quantile(0.0), "q in");
  EXPECT_DEATH(P2Quantile(1.0), "q in");
}

}  // namespace
}  // namespace fifoms
