#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace fifoms {
namespace {

TEST(Histogram, EmptyDefaults) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max_value(), -1);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), -1);
  EXPECT_EQ(h.count_at(0), 0u);
}

TEST(Histogram, CountsAndMean) {
  Histogram h;
  h.add(1);
  h.add(1);
  h.add(3);
  h.add(7);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_at(1), 2u);
  EXPECT_EQ(h.count_at(3), 1u);
  EXPECT_EQ(h.count_at(2), 0u);
  EXPECT_EQ(h.count_at(100), 0u);
  EXPECT_EQ(h.max_value(), 7);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, QuantileOnSmallSet) {
  Histogram h;
  for (int v : {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}) h.add(v);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(0.5), 4);
  EXPECT_EQ(h.quantile(1.0), 9);
}

TEST(Histogram, QuantileClampedOutsideRange) {
  Histogram h;
  h.add(5);
  EXPECT_EQ(h.quantile(-1.0), 5);
  EXPECT_EQ(h.quantile(2.0), 5);
}

TEST(Histogram, ZeroOnlyValues) {
  Histogram h;
  for (int i = 0; i < 5; ++i) h.add(0);
  EXPECT_EQ(h.max_value(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(10);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count_at(2), 2u);
  EXPECT_EQ(a.count_at(10), 1u);
  EXPECT_EQ(a.max_value(), 10);
  EXPECT_DOUBLE_EQ(a.mean(), 3.75);
}

TEST(Histogram, MergeIntoEmpty) {
  Histogram a, b;
  b.add(4);
  a.merge(b);
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(a.count_at(4), 1u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.add(3);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.max_value(), -1);
}

TEST(Histogram, BucketsAreDense) {
  Histogram h;
  h.add(0);
  h.add(4);
  ASSERT_EQ(h.buckets().size(), 5u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 0u);
  EXPECT_EQ(h.buckets()[4], 1u);
}

TEST(HistogramDeath, NegativeValuePanics) {
  Histogram h;
  EXPECT_DEATH(h.add(-1), "non-negative");
}

}  // namespace
}  // namespace fifoms
