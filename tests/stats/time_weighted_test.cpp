#include "stats/time_weighted.hpp"

#include <gtest/gtest.h>

namespace fifoms {
namespace {

TEST(TimeWeighted, EmptyReportsZeros) {
  TimeWeightedStat stat;
  EXPECT_TRUE(stat.empty());
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.duration(), 0.0);
  EXPECT_EQ(stat.integral(), 0.0);
  EXPECT_EQ(stat.min(), 0.0);
  EXPECT_EQ(stat.max(), 0.0);
}

TEST(TimeWeighted, MeanWeightsByDuration) {
  // A queue holding 100 cells for 1 slot then 0 cells for 99 slots has a
  // time-average occupancy of 1, not 50 — the defining example.
  TimeWeightedStat stat;
  stat.add(100.0, 1.0);
  stat.add(0.0, 99.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 1.0);
  EXPECT_DOUBLE_EQ(stat.integral(), 100.0);
  EXPECT_DOUBLE_EQ(stat.duration(), 100.0);
  EXPECT_DOUBLE_EQ(stat.min(), 0.0);
  EXPECT_DOUBLE_EQ(stat.max(), 100.0);
}

TEST(TimeWeighted, ClosedFormStepFunction) {
  // Piecewise-constant f: 2 on [0,3), 5 on [3,4), 3 on [4,8).
  // Integral = 6 + 5 + 12 = 23 over duration 8 -> mean 23/8.
  TimeWeightedStat stat;
  stat.add(2.0, 3.0);
  stat.add(5.0, 1.0);
  stat.add(3.0, 4.0);
  EXPECT_DOUBLE_EQ(stat.integral(), 23.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 23.0 / 8.0);
  EXPECT_EQ(stat.intervals(), 3u);
}

TEST(TimeWeighted, ZeroDurationContributesNothing) {
  TimeWeightedStat stat;
  stat.add(1e9, 0.0);  // instantaneous spike: no time weight
  EXPECT_TRUE(stat.empty());
  stat.add(4.0, 2.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stat.max(), 4.0);  // the spike never entered min/max
}

TEST(TimeWeighted, MergeMatchesSequential) {
  TimeWeightedStat left, right, all;
  const double values[] = {1.0, 7.0, 2.0, 0.0, 9.0, 3.5};
  const double durations[] = {2.0, 0.5, 3.0, 10.0, 1.0, 4.0};
  for (int i = 0; i < 6; ++i) {
    (i < 3 ? left : right).add(values[i], durations[i]);
    all.add(values[i], durations[i]);
  }
  left.merge(right);
  EXPECT_DOUBLE_EQ(left.mean(), all.mean());
  EXPECT_DOUBLE_EQ(left.integral(), all.integral());
  EXPECT_DOUBLE_EQ(left.duration(), all.duration());
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
  EXPECT_EQ(left.intervals(), all.intervals());
}

TEST(TimeWeighted, MergeWithEmptySides) {
  TimeWeightedStat stat, empty;
  stat.add(3.0, 2.0);
  stat.merge(empty);  // no-op
  EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
  empty.merge(stat);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
  EXPECT_EQ(empty.intervals(), 1u);
}

TEST(TimeWeighted, ResetClears) {
  TimeWeightedStat stat;
  stat.add(5.0, 5.0);
  stat.reset();
  EXPECT_TRUE(stat.empty());
  EXPECT_EQ(stat.mean(), 0.0);
}

TEST(TimeWeightedDeath, NegativeDurationPanics) {
  TimeWeightedStat stat;
  EXPECT_DEATH(stat.add(1.0, -0.5), "negative duration");
}

}  // namespace
}  // namespace fifoms
