#include "stats/batch_means.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace fifoms {
namespace {

TEST(BatchMeans, EmptyHasInfiniteCi) {
  BatchMeans bm(10);
  EXPECT_EQ(bm.completed_batches(), 0u);
  EXPECT_TRUE(std::isinf(bm.ci_halfwidth()));
  EXPECT_FALSE(bm.converged(0.5));
}

TEST(BatchMeans, PartialBatchDiscarded) {
  BatchMeans bm(10);
  for (int i = 0; i < 25; ++i) bm.add(1.0);
  EXPECT_EQ(bm.observations(), 25u);
  EXPECT_EQ(bm.completed_batches(), 2u);  // 5 leftover observations dropped
  EXPECT_DOUBLE_EQ(bm.mean(), 1.0);
}

TEST(BatchMeans, MeanOfBatches) {
  BatchMeans bm(2);
  bm.add(1.0);
  bm.add(3.0);  // batch mean 2
  bm.add(5.0);
  bm.add(7.0);  // batch mean 6
  EXPECT_EQ(bm.completed_batches(), 2u);
  EXPECT_DOUBLE_EQ(bm.mean(), 4.0);
}

TEST(BatchMeans, ConstantSeriesConvergesImmediately) {
  BatchMeans bm(5);
  for (int i = 0; i < 50; ++i) bm.add(3.0);
  EXPECT_DOUBLE_EQ(bm.ci_halfwidth(), 0.0);
  EXPECT_TRUE(bm.converged(0.01));
}

TEST(BatchMeans, CiShrinksWithMoreBatches) {
  Rng rng(1);
  BatchMeans early(100), late(100);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    early.add(x);
    late.add(x);
  }
  const double half_early = early.ci_halfwidth();
  for (int i = 0; i < 50000; ++i) late.add(rng.next_double());
  EXPECT_LT(late.ci_halfwidth(), half_early);
}

TEST(BatchMeans, CoversTrueMeanOfIidSeries) {
  // 95% CI should cover the true mean in most independent repetitions.
  int covered = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    BatchMeans bm(200);
    for (int i = 0; i < 20000; ++i) bm.add(rng.next_double());
    if (std::abs(bm.mean() - 0.5) <= bm.ci_halfwidth()) ++covered;
  }
  EXPECT_GE(covered, 33);  // ~95% of 40, with slack
}

TEST(BatchMeans, HonestOnCorrelatedSeries) {
  // AR(1)-style series: small batches understate the CI vs large batches.
  Rng rng(9);
  BatchMeans small(10), large(2000);
  double state = 0.0;
  for (int i = 0; i < 200000; ++i) {
    state = 0.99 * state + (rng.next_double() - 0.5);
    small.add(state);
    large.add(state);
  }
  EXPECT_LT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(BatchMeansDeath, ZeroBatchRejected) {
  EXPECT_DEATH(BatchMeans(0), "batch size");
}

}  // namespace
}  // namespace fifoms
