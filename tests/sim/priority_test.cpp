// Tests of the strict-priority QoS extension: per-class sub-queues in
// McVoqInput, priority-major scheduling weights, per-class delay stats.
#include <gtest/gtest.h>

#include <memory>

#include "core/fifoms.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/priority.hpp"

namespace fifoms {
namespace {

Packet packet(PacketId id, PortId input, SlotTime arrival,
              std::initializer_list<PortId> dests, int priority) {
  Packet p;
  p.id = id;
  p.input = input;
  p.arrival = arrival;
  p.destinations = PortSet(dests);
  p.priority = priority;
  return p;
}

TEST(SchedulingWeight, PriorityMajorOrdering) {
  // Any class-0 weight beats any class-1 weight, regardless of age.
  EXPECT_LT(scheduling_weight(0, 1'000'000), scheduling_weight(1, 0));
  // Within a class, earlier arrival is smaller.
  EXPECT_LT(scheduling_weight(1, 5), scheduling_weight(1, 6));
}

TEST(SchedulingWeightDeath, BoundsEnforced) {
  EXPECT_DEATH((void)scheduling_weight(-1, 0), "priority");
  EXPECT_DEATH((void)scheduling_weight(256, 0), "priority");
  EXPECT_DEATH((void)scheduling_weight(0, kMaxWeightSlot + 1), "arrival");
}

TEST(McVoqInputPriority, HighClassOvertakesWithinVoq) {
  McVoqInput input(0, 4, /*num_classes=*/2);
  input.accept(packet(1, 0, 0, {2}, /*priority=*/1));  // low class, older
  input.accept(packet(2, 0, 5, {2}, /*priority=*/0));  // high class, newer
  EXPECT_EQ(input.voq_size(2), 2u);
  EXPECT_EQ(input.hol(2).packet, 2u);  // the class-0 cell jumps the queue
  input.serve_hol(2);
  EXPECT_EQ(input.hol(2).packet, 1u);
}

TEST(McVoqInputPriority, FifoWithinClassPreserved) {
  McVoqInput input(0, 4, 2);
  input.accept(packet(1, 0, 0, {1}, 1));
  input.accept(packet(2, 0, 1, {1}, 1));
  input.accept(packet(3, 0, 2, {1}, 1));
  EXPECT_EQ(input.hol(1).packet, 1u);
  input.serve_hol(1);
  EXPECT_EQ(input.hol(1).packet, 2u);
}

TEST(McVoqInputPriority, SingleClassUnchanged) {
  // Default construction must behave exactly like the paper's structure.
  McVoqInput input(0, 4);
  input.accept(packet(1, 0, 0, {0}, 0));
  EXPECT_EQ(input.num_classes(), 1);
  EXPECT_EQ(input.hol(0).weight,
            scheduling_weight(0, 0));
}

TEST(McVoqInputPriorityDeath, ClassBeyondConfiguredPanics) {
  McVoqInput input(0, 4, 2);
  EXPECT_DEATH(input.accept(packet(1, 0, 0, {0}, 2)),
               "priority beyond configured class count");
}

TEST(FifomsPriority, HighClassWinsContention) {
  // Input 0 carries an old low-class packet; input 1 a fresh high-class
  // one.  Under plain FIFOMS the older would win; with priority-major
  // weights the class-0 packet takes the output.
  std::vector<McVoqInput> ports;
  ports.emplace_back(0, 2, 2);
  ports.emplace_back(1, 2, 2);
  ports[0].accept(packet(1, 0, 0, {0}, 1));
  ports[1].accept(packet(2, 1, 9, {0}, 0));
  FifomsScheduler sched;
  sched.reset(2, 2);
  SlotMatching m(2, 2);
  Rng rng(1);
  sched.schedule(ports, 9, m, rng);
  m.validate();
  EXPECT_EQ(m.source(0), 1);
}

TEST(PriorityTraffic, SharesRespected) {
  auto inner = std::make_unique<BernoulliTraffic>(8, 1.0, 0.3);
  PriorityTraffic traffic(std::move(inner), {0.25, 0.75});
  Rng rng(3);
  int high = 0, total = 0;
  for (SlotTime t = 0; t < 50000; ++t) {
    if (traffic.arrival(0, t, rng).empty()) continue;
    ++total;
    if (traffic.last_priority() == 0) ++high;
  }
  EXPECT_GT(total, 40000);
  EXPECT_NEAR(static_cast<double>(high) / total, 0.25, 0.01);
  EXPECT_DOUBLE_EQ(traffic.class_share(1), 0.75);
}

TEST(PriorityTrafficDeath, SharesMustSumToOne) {
  EXPECT_DEATH(PriorityTraffic(
                   std::make_unique<BernoulliTraffic>(8, 0.5, 0.3), {0.5, 0.4}),
               "sum to 1");
}

TEST(PriorityEndToEnd, HighClassSeesLowerDelayUnderLoad) {
  // 16x16, heavy multicast load, 20% of packets in class 0: strict
  // priority must give class 0 a markedly lower mean delay.
  VoqSwitch::Options options;
  options.num_classes = 2;
  VoqSwitch sw(16, std::make_unique<FifomsScheduler>(), options);
  PriorityTraffic traffic(
      std::make_unique<BernoulliTraffic>(
          16, BernoulliTraffic::p_for_load(0.9, 0.2, 16), 0.2),
      {0.2, 0.8});
  SimConfig config;
  config.total_slots = 40000;
  config.seed = 17;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  ASSERT_FALSE(result.unstable);
  ASSERT_EQ(result.class_output_delays.size(), 2u);
  const double high = result.class_output_delays[0].mean();
  const double low = result.class_output_delays[1].mean();
  EXPECT_LT(high * 1.5, low)
      << "class 0 delay " << high << " vs class 1 delay " << low;
}

TEST(PriorityEndToEnd, SingleClassMatchesAggregate) {
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(8, 0.3, 0.25);
  SimConfig config;
  config.total_slots = 8000;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  ASSERT_EQ(result.class_output_delays.size(), 1u);
  EXPECT_DOUBLE_EQ(result.class_output_delays[0].mean(),
                   result.output_delay.mean());
}

}  // namespace
}  // namespace fifoms
