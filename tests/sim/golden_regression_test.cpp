// Golden regression: a fully deterministic end-to-end run whose summary
// values are pinned.
//
// The library's RNG (xoshiro256**) and every scheduling decision are
// specified, so this run is bit-reproducible across platforms and
// compilers.  If any of these numbers move, some behaviour changed —
// review it deliberately and re-pin, never ignore.
#include <gtest/gtest.h>

#include <memory>

#include "core/fifoms.hpp"
#include "net/network_fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

SimResult golden_run() {
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(8, 0.4, 0.25);
  SimConfig config;
  config.total_slots = 20'000;
  config.warmup_fraction = 0.5;
  config.seed = 0xf1f0f1f0ULL;
  Simulator sim(sw, traffic, config);
  return sim.run();
}

TEST(GoldenRegression, RunIsReproducible) {
  const SimResult a = golden_run();
  const SimResult b = golden_run();
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.copies_delivered, b.copies_delivered);
  EXPECT_EQ(a.queue_max, b.queue_max);
  EXPECT_DOUBLE_EQ(a.input_delay.mean(), b.input_delay.mean());
  EXPECT_DOUBLE_EQ(a.output_delay.mean(), b.output_delay.mean());
  EXPECT_DOUBLE_EQ(a.rounds_busy.mean(), b.rounds_busy.mean());
}

TEST(GoldenRegression, PinnedValues) {
  const SimResult result = golden_run();
  // Structure-level pins (exact):
  EXPECT_FALSE(result.unstable);
  EXPECT_EQ(result.warmup_end, 10'000);
  EXPECT_EQ(result.total_slots, 20'000);
  // Statistical pins (ranges; generous enough to survive a re-pin of the
  // RNG stream layout but tight enough to catch real behaviour changes):
  // Arrival rate is p*(1-(1-b)^N) per input (empty draws are no-arrival):
  // 0.4 * (1 - 0.75^8) = 0.3600 -> 8 * 20000 * 0.3600 = 57597 packets.
  EXPECT_NEAR(static_cast<double>(result.packets_offered), 57'597, 1'000);
  // Conditional mean fanout: b*N / (1-(1-b)^N) = 2 / 0.8999 = 2.2224.
  EXPECT_NEAR(static_cast<double>(result.copies_offered) /
                  static_cast<double>(result.packets_offered),
              2.2224, 0.03);
  EXPECT_NEAR(result.throughput, 0.8, 0.02);
  EXPECT_GT(result.output_delay.mean(), 1.0);
  EXPECT_LT(result.output_delay.mean(), 8.0);
  EXPECT_GE(result.input_delay.mean(), result.output_delay.mean());
  EXPECT_GE(result.rounds_busy.mean(), 1.0);
  EXPECT_LT(result.rounds_busy.mean(), 3.0);
  EXPECT_LT(result.queue_max, 60u);
  EXPECT_EQ(result.packets_offered,
            result.packets_delivered + result.in_flight_at_end);
}

// The same pinning discipline for the multistage fabric: a 3-stage Clos
// of 2x2 FIFOMS elements behind the identical Simulator harness.  The
// per-hop schedules, relay ordering, and RNG stream layout are all part
// of the pinned behaviour.
SimResult golden_clos_run() {
  net::NetworkFabric fabric(
      net::Topology::clos3(2),
      [] { return std::make_unique<FifomsScheduler>(); });
  BernoulliTraffic traffic(4, 0.4, 0.25);
  SimConfig config;
  config.total_slots = 10'000;
  config.warmup_fraction = 0.5;
  config.seed = 0xc105c105ULL;
  Simulator sim(fabric, traffic, config);
  return sim.run();
}

TEST(GoldenRegression, ClosRunIsReproducible) {
  const SimResult a = golden_clos_run();
  const SimResult b = golden_clos_run();
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.copies_delivered, b.copies_delivered);
  EXPECT_EQ(a.queue_max, b.queue_max);
  EXPECT_DOUBLE_EQ(a.input_delay.mean(), b.input_delay.mean());
  EXPECT_DOUBLE_EQ(a.output_delay.mean(), b.output_delay.mean());
  EXPECT_DOUBLE_EQ(a.rounds_busy.mean(), b.rounds_busy.mean());
}

TEST(GoldenRegression, ClosPinnedValues) {
  const SimResult result = golden_clos_run();
  EXPECT_FALSE(result.unstable);
  EXPECT_EQ(result.warmup_end, 5'000);
  EXPECT_EQ(result.total_slots, 10'000);
  // Arrival rate per input: 0.4 * (1 - 0.75^4) = 0.2734 -> 4 * 10000 *
  // 0.2734 = 10937 packets offered over the run.
  EXPECT_NEAR(static_cast<double>(result.packets_offered), 10'937, 400);
  // Conditional mean fanout: b*N / (1-(1-b)^N) = 1 / 0.6836 = 1.4629.
  EXPECT_NEAR(static_cast<double>(result.copies_offered) /
                  static_cast<double>(result.packets_offered),
              1.4629, 0.03);
  // Effective load p*b*N = 0.4 per external output.
  EXPECT_NEAR(result.throughput, 0.4, 0.02);
  // Three store-and-forward hops put a floor of 2 slots under the
  // end-to-end delay; at this load the mean sits just above it.
  EXPECT_GT(result.output_delay.mean(), 2.0);
  EXPECT_LT(result.output_delay.mean(), 8.0);
  EXPECT_GE(result.input_delay.mean(), result.output_delay.mean());
  EXPECT_EQ(result.packets_offered,
            result.packets_delivered + result.in_flight_at_end);
}

}  // namespace
}  // namespace fifoms
