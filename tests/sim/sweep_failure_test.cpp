// Hardened-sweep kill tests (docs/FAULTS.md): a cell forced to throw is
// retried on its identical RNG stream and then quarantined, while every
// other cell of the grid stays byte-identical to a failure-free run.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "io/csv.hpp"
#include "io/json.hpp"
#include "sim/experiment.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

SweepConfig base_config() {
  SweepConfig config;
  config.num_ports = 4;
  config.loads = {0.3, 0.6};
  config.slots = 800;
  config.warmup_fraction = 0.25;
  config.replications = 2;
  config.master_seed = 2026;
  config.threads = 2;
  return config;
}

TrafficFactory bernoulli_traffic(int ports) {
  return [ports](double load) -> std::unique_ptr<TrafficModel> {
    return std::make_unique<BernoulliTraffic>(
        ports, BernoulliTraffic::p_for_load(load, 0.2, ports), 0.2);
  };
}

/// Field-for-field equality: doubles compare exactly, because the sweep
/// contract is byte-identity, not closeness.
void expect_point_eq(const PointSummary& a, const PointSummary& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.load, b.load);
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.unstable_count, b.unstable_count);
  EXPECT_EQ(a.failed_count, b.failed_count);
  EXPECT_EQ(a.input_delay, b.input_delay);
  EXPECT_EQ(a.output_delay, b.output_delay);
  EXPECT_EQ(a.output_delay_p99, b.output_delay_p99);
  EXPECT_EQ(a.queue_mean, b.queue_mean);
  EXPECT_EQ(a.queue_max, b.queue_max);
  EXPECT_EQ(a.rounds_busy, b.rounds_busy);
  EXPECT_EQ(a.rounds_all, b.rounds_all);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.input_delay_se, b.input_delay_se);
  EXPECT_EQ(a.output_delay_se, b.output_delay_se);
}

TEST(SweepFailure, KilledCellIsQuarantinedAndTheRestIsByteIdentical) {
  const SweepConfig config = base_config();
  const std::vector<SwitchFactory> switches = {make_fifoms(), make_islip()};
  const TrafficFactory traffic = bernoulli_traffic(config.num_ports);

  std::vector<CellOutcome> clean_outcomes;
  const auto clean = run_sweep(config, switches, traffic, &clean_outcomes);
  for (const CellOutcome& outcome : clean_outcomes) {
    EXPECT_FALSE(outcome.failed);
    EXPECT_EQ(outcome.attempts, 1);
  }

  // Kill one mid-grid cell on every attempt.
  const std::size_t victim = 3;
  SweepConfig killed = config;
  killed.cell_probe = [victim](std::size_t cell, int) {
    if (cell == victim) throw std::runtime_error("injected cell failure");
  };
  std::vector<CellOutcome> outcomes;
  const auto points = run_sweep(killed, switches, traffic, &outcomes);

  ASSERT_EQ(outcomes.size(), clean_outcomes.size());
  const CellOutcome& casualty = outcomes[victim];
  EXPECT_TRUE(casualty.failed);
  EXPECT_EQ(casualty.attempts, 1);
  EXPECT_EQ(casualty.error, "injected cell failure");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i == victim) continue;
    EXPECT_FALSE(outcomes[i].failed) << "collateral damage at cell " << i;
    EXPECT_TRUE(outcomes[i].error.empty());
  }

  // The casualty's point carries the quarantine count; every other point
  // is byte-identical to the failure-free sweep.
  ASSERT_EQ(points.size(), clean.size());
  const std::size_t victim_point =
      casualty.switch_index * config.loads.size() + casualty.load_index;
  for (std::size_t p = 0; p < points.size(); ++p) {
    if (p == victim_point) {
      EXPECT_EQ(points[p].failed_count, 1);
      continue;
    }
    expect_point_eq(points[p], clean[p]);
  }
  // The surviving replication still contributes real statistics.
  EXPECT_GT(points[victim_point].throughput, 0.0);
  EXPECT_FALSE(points[victim_point].unstable());
}

TEST(SweepFailure, TransientFlakeRecoversOnRetryWithIdenticalResults) {
  SweepConfig config = base_config();
  config.cell_attempts = 2;
  const std::vector<SwitchFactory> switches = {make_fifoms()};
  const TrafficFactory traffic = bernoulli_traffic(config.num_ports);

  const auto clean = run_sweep(config, switches, traffic);

  // The probe fails attempt 0 only: the retry replays the cell's
  // identical derived seed, so recovery changes nothing downstream.
  const std::size_t victim = 1;
  SweepConfig flaky = config;
  flaky.cell_probe = [victim](std::size_t cell, int attempt) {
    if (cell == victim && attempt == 0)
      throw std::runtime_error("transient flake");
  };
  std::vector<CellOutcome> outcomes;
  const auto points = run_sweep(flaky, switches, traffic, &outcomes);

  ASSERT_GT(outcomes.size(), victim);
  EXPECT_FALSE(outcomes[victim].failed);
  EXPECT_EQ(outcomes[victim].attempts, 2);
  EXPECT_TRUE(outcomes[victim].error.empty());  // cleared by the success
  ASSERT_EQ(points.size(), clean.size());
  for (std::size_t p = 0; p < points.size(); ++p)
    expect_point_eq(points[p], clean[p]);
}

TEST(SweepFailure, DeterministicFailureExhaustsEveryAttempt) {
  SweepConfig config = base_config();
  config.loads = {0.5};
  config.replications = 1;
  config.cell_attempts = 3;
  config.cell_probe = [](std::size_t, int attempt) {
    throw std::runtime_error("attempt " + std::to_string(attempt) +
                             " failed deterministically");
  };
  std::vector<CellOutcome> outcomes;
  const auto points = run_sweep(config, {make_fifoms()},
                                bernoulli_traffic(config.num_ports),
                                &outcomes);

  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].failed);
  EXPECT_EQ(outcomes[0].attempts, 3);
  EXPECT_EQ(outcomes[0].error, "attempt 2 failed deterministically");
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].failed_count, 1);
  // Every replication quarantined: the point reports inert zeros instead
  // of statistics fabricated from default SimResult objects.
  EXPECT_EQ(points[0].throughput, 0.0);
  EXPECT_EQ(points[0].output_delay, 0.0);
}

TEST(SweepFailure, NonStandardExceptionIsQuarantinedAsUnknown) {
  SweepConfig config = base_config();
  config.loads = {0.4};
  config.replications = 1;
  config.cell_probe = [](std::size_t, int) { throw 42; };
  std::vector<CellOutcome> outcomes;
  const auto points = run_sweep(config, {make_fifoms()},
                                bernoulli_traffic(config.num_ports),
                                &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].failed);
  EXPECT_EQ(outcomes[0].error, "unknown exception");
  EXPECT_EQ(points[0].failed_count, 1);
}

TEST(SweepFailure, TimeoutWithPartialResultIsPreservedAsTruncated) {
  // A SimTimeout that carries the completed slots' statistics must not
  // discard them: the cell is marked truncated, its partial metrics
  // still contribute to the point, and failed_count stays 0.
  SweepConfig config = base_config();
  config.loads = {0.5};
  config.replications = 1;
  auto partial = std::make_shared<SimResult>();
  partial->total_slots = 300;
  partial->truncated = true;
  partial->throughput = 0.25;
  partial->output_delay.add(4.0);
  partial->output_delay.add(6.0);
  config.cell_probe = [partial](std::size_t, int) {
    throw SimTimeout("watchdog fired mid-cell", partial);
  };
  std::vector<CellOutcome> outcomes;
  const auto points = run_sweep(config, {make_fifoms()},
                                bernoulli_traffic(config.num_ports),
                                &outcomes);

  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].failed);
  EXPECT_TRUE(outcomes[0].truncated);
  EXPECT_EQ(outcomes[0].error, "watchdog fired mid-cell");
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].truncated_count, 1);
  EXPECT_EQ(points[0].failed_count, 0);
  // The preserved partial statistics drive the point's means.
  EXPECT_EQ(points[0].throughput, 0.25);
  EXPECT_EQ(points[0].output_delay, 5.0);
}

TEST(SweepFailure, TimeoutWithoutPartialStaysAPlainQuarantine) {
  SweepConfig config = base_config();
  config.loads = {0.5};
  config.replications = 1;
  config.cell_probe = [](std::size_t, int) {
    throw SimTimeout("watchdog fired with nothing to report");
  };
  std::vector<CellOutcome> outcomes;
  const auto points = run_sweep(config, {make_fifoms()},
                                bernoulli_traffic(config.num_ports),
                                &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].failed);
  EXPECT_FALSE(outcomes[0].truncated);
  EXPECT_EQ(points[0].failed_count, 1);
  EXPECT_EQ(points[0].truncated_count, 0);
}

TEST(SweepFailure, TruncatedCountSurfacesInCsvAndJson) {
  SweepConfig config = base_config();
  config.loads = {0.5};
  config.replications = 2;
  auto partial = std::make_shared<SimResult>();
  partial->truncated = true;
  partial->throughput = 0.5;
  config.cell_probe = [partial](std::size_t cell, int) {
    if (cell == 0) throw SimTimeout("watchdog", partial);
  };
  const auto points = run_sweep(config, {make_fifoms()},
                                bernoulli_traffic(config.num_ports));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].truncated_count, 1);

  const std::string path =
      std::string(::testing::TempDir()) + "/truncated_sweep.csv";
  write_sweep_csv(path, points);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string csv = buffer.str();
  EXPECT_NE(csv.find("failed,truncated"), std::string::npos) << csv;
  // The data row ends ...,<failed=0>,<truncated=1>.
  EXPECT_NE(csv.find(",0,1\n"), std::string::npos) << csv;

  const std::string json = sweep_to_json(points);
  EXPECT_NE(json.find("\"truncated_count\":1"), std::string::npos) << json;
}

TEST(SweepFailure, WallClockWatchdogTruncatesARunawayCell) {
  // A 1 ms budget against a few hundred thousand slots: the cooperative
  // watchdog inside Simulator::run must fire, and because the simulator
  // packages the completed slots into the SimTimeout, the sweep keeps
  // the cell as a truncated partial instead of hanging or discarding it.
  SweepConfig config = base_config();
  config.num_ports = 8;
  config.loads = {0.9};
  config.replications = 1;
  config.slots = 400'000;
  config.cell_timeout_ms = 1;
  std::vector<CellOutcome> outcomes;
  const auto points = run_sweep(config, {make_fifoms()},
                                bernoulli_traffic(config.num_ports),
                                &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].failed);
  EXPECT_TRUE(outcomes[0].truncated);
  EXPECT_NE(outcomes[0].error.find("wall-clock limit"), std::string::npos)
      << outcomes[0].error;
  EXPECT_EQ(points[0].truncated_count, 1);
  EXPECT_EQ(points[0].failed_count, 0);
}

}  // namespace
}  // namespace fifoms
