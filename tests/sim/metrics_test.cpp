#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/fifoms.hpp"
#include "sim/oq_switch.hpp"
#include "test_util.hpp"

namespace fifoms {
namespace {

using test::make_packet;

Delivery deliver(PacketId packet, PortId input, PortId output,
                 SlotTime arrival) {
  return Delivery{packet, input, output, arrival, 0};
}

TEST(Metrics, OutputDelayPerCopyInputDelayPerPacket) {
  OqSwitch sw(4);  // only used for occupancy sampling
  MetricsCollector metrics(/*warmup_end=*/0, 4);

  metrics.on_inject(make_packet(1, 0, 0, {0, 1}));
  SlotResult slot0;
  slot0.deliveries.push_back(deliver(1, 0, 0, 0));
  slot0.matched_pairs = 1;
  metrics.on_slot_end(sw, slot0, 0);

  SlotResult slot3;
  slot3.deliveries.push_back(deliver(1, 0, 1, 0));
  slot3.matched_pairs = 1;
  metrics.on_slot_end(sw, slot3, 3);

  // Output-oriented: copies at delay 0 and 3 -> mean 1.5.
  EXPECT_EQ(metrics.output_delay().count(), 2u);
  EXPECT_DOUBLE_EQ(metrics.output_delay().mean(), 1.5);
  // Input-oriented: one packet, finished at its LAST copy -> delay 3.
  EXPECT_EQ(metrics.input_delay().count(), 1u);
  EXPECT_DOUBLE_EQ(metrics.input_delay().mean(), 3.0);
  EXPECT_EQ(metrics.packets_delivered(), 1u);
  EXPECT_EQ(metrics.copies_delivered(), 2u);
  EXPECT_EQ(metrics.in_flight(), 0u);
}

TEST(Metrics, WarmupPacketsExcludedFromDelays) {
  OqSwitch sw(4);
  MetricsCollector metrics(/*warmup_end=*/10, 4);

  // Arrives during warm-up, delivered after it: excluded from delays but
  // counted in copies.
  metrics.on_inject(make_packet(1, 0, 5, {0}));
  SlotResult result;
  result.deliveries.push_back(deliver(1, 0, 0, 5));
  result.matched_pairs = 1;
  metrics.on_slot_end(sw, result, 12);
  EXPECT_EQ(metrics.output_delay().count(), 0u);
  EXPECT_EQ(metrics.input_delay().count(), 0u);
  EXPECT_EQ(metrics.copies_delivered(), 1u);

  // Arrives after warm-up: measured.
  metrics.on_inject(make_packet(2, 0, 15, {0}));
  SlotResult second;
  second.deliveries.push_back(deliver(2, 0, 0, 15));
  second.matched_pairs = 1;
  metrics.on_slot_end(sw, second, 17);
  EXPECT_EQ(metrics.output_delay().count(), 1u);
  EXPECT_DOUBLE_EQ(metrics.output_delay().mean(), 2.0);
}

TEST(Metrics, QueueSamplesOnlyAfterWarmup) {
  OqSwitch sw(2);
  sw.inject(make_packet(1, 0, 0, {0, 1}));
  sw.inject(make_packet(2, 1, 0, {0}));
  // Output 0 holds 2 cells, output 1 holds 1.
  MetricsCollector metrics(/*warmup_end=*/5, 2);
  SlotResult idle;
  metrics.on_slot_end(sw, idle, 3);  // during warm-up: ignored
  EXPECT_EQ(metrics.queue_mean().count(), 0u);
  metrics.on_slot_end(sw, idle, 5);  // first measured slot
  EXPECT_EQ(metrics.queue_mean().count(), 1u);
  EXPECT_DOUBLE_EQ(metrics.queue_mean().mean(), 1.5);
  EXPECT_EQ(metrics.queue_max(), 2u);
}

TEST(Metrics, RoundsBusyOnlyCountsTransmittingSlots) {
  OqSwitch sw(2);
  MetricsCollector fresh(0, 2);
  fresh.on_inject(make_packet(9, 0, 0, {0}));
  SlotResult busy2;
  busy2.rounds = 3;
  busy2.matched_pairs = 1;
  busy2.deliveries.push_back(deliver(9, 0, 0, 0));
  fresh.on_slot_end(sw, busy2, 0);
  SlotResult idle2;
  idle2.rounds = 0;
  fresh.on_slot_end(sw, idle2, 1);
  EXPECT_EQ(fresh.rounds_all().count(), 2u);
  EXPECT_EQ(fresh.rounds_busy().count(), 1u);
  EXPECT_DOUBLE_EQ(fresh.rounds_busy().mean(), 3.0);
  EXPECT_DOUBLE_EQ(fresh.rounds_all().mean(), 1.5);
  EXPECT_EQ(fresh.rounds_histogram().count_at(3), 1u);
}

TEST(Metrics, ThroughputCountsMeasuredCopiesPerOutput) {
  OqSwitch sw(2);
  MetricsCollector metrics(0, 2);
  metrics.on_inject(make_packet(1, 0, 0, {0, 1}));
  SlotResult result;
  result.deliveries.push_back(deliver(1, 0, 0, 0));
  result.deliveries.push_back(deliver(1, 0, 1, 0));
  result.matched_pairs = 2;
  metrics.on_slot_end(sw, result, 0);
  SlotResult idle;
  metrics.on_slot_end(sw, idle, 1);
  // 2 copies over 2 slots over 2 outputs = 0.5.
  EXPECT_DOUBLE_EQ(metrics.throughput(2), 0.5);
}

TEST(MetricsDeath, UnknownPacketDeliveryPanics) {
  OqSwitch sw(2);
  MetricsCollector metrics(0, 2);
  SlotResult result;
  result.deliveries.push_back(deliver(77, 0, 0, 0));
  EXPECT_DEATH(metrics.on_slot_end(sw, result, 0), "unknown packet");
}

TEST(MetricsDeath, OverDeliveryPanics) {
  OqSwitch sw(2);
  MetricsCollector metrics(0, 2);
  metrics.on_inject(make_packet(1, 0, 0, {0}));
  SlotResult result;
  result.deliveries.push_back(deliver(1, 0, 0, 0));
  metrics.on_slot_end(sw, result, 0);
  SlotResult again;
  again.deliveries.push_back(deliver(1, 0, 0, 0));
  EXPECT_DEATH(metrics.on_slot_end(sw, again, 1), "unknown packet");
}

TEST(MetricsDeath, DuplicateInjectPanics) {
  MetricsCollector metrics(0, 2);
  metrics.on_inject(make_packet(1, 0, 0, {0}));
  EXPECT_DEATH(metrics.on_inject(make_packet(1, 0, 1, {1})),
               "duplicate packet id");
}

}  // namespace
}  // namespace fifoms
