// Boundary configurations: the smallest and largest switches the library
// supports, degenerate traffic, and zero-length horizons — the places
// off-by-one bugs live.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/fifoms.hpp"
#include "sched/islip.hpp"
#include "sched/tatra.hpp"
#include "sim/oq_switch.hpp"
#include "sim/simulator.hpp"
#include "sim/single_fifo_switch.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/unicast.hpp"

namespace fifoms {
namespace {

TEST(EdgeCases, OneByOneSwitchFifoms) {
  VoqSwitch sw(1, std::make_unique<FifomsScheduler>());
  UnicastTraffic traffic(1, 1.0);  // every slot a packet 0 -> 0
  SimConfig config;
  config.total_slots = 1000;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_FALSE(result.unstable);
  EXPECT_DOUBLE_EQ(result.throughput, 1.0);
  EXPECT_DOUBLE_EQ(result.output_delay.mean(), 0.0);
}

TEST(EdgeCases, OneByOneSwitchTatra) {
  SingleFifoSwitch sw(1, std::make_unique<TatraScheduler>());
  UnicastTraffic traffic(1, 1.0);
  SimConfig config;
  config.total_slots = 500;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_DOUBLE_EQ(result.throughput, 1.0);
}

TEST(EdgeCases, MaxRadixSwitchRuns) {
  // kMaxPorts-wide switch: PortSet's upper word boundary in real use.
  VoqSwitch sw(kMaxPorts, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(kMaxPorts, 0.1, 0.01);
  SimConfig config;
  config.total_slots = 200;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_FALSE(result.unstable);
  EXPECT_GT(result.copies_delivered, 0u);
}

TEST(EdgeCases, FullBroadcastEverySlot) {
  // One input broadcasting to all 8 outputs every slot is exactly
  // sustainable (load 1.0 per output) and FIFOMS must pin throughput at 1.
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>());
  Rng rng(1);
  SlotResult result;
  PacketId id = 0;
  for (SlotTime now = 0; now < 200; ++now) {
    Packet p;
    p.id = id++;
    p.input = 0;
    p.arrival = now;
    p.destinations = PortSet::all(8);
    sw.inject(p);
    result.clear();
    sw.step(now, rng, result);
    EXPECT_EQ(result.deliveries.size(), 8u) << "slot " << now;
  }
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(EdgeCases, AllInputsBroadcastServedInFifoOrder) {
  // All 4 inputs broadcast every slot: offered load 4.0 per output.  With
  // the deterministic lowest-input tie-break every output grants the same
  // (lowest) input among the oldest packets, so whole packets depart in
  // strict (arrival, input) order — the FIFO guarantee made visible.
  FifomsOptions options;
  options.tie_break = TieBreak::kLowestInput;
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>(options));
  Rng rng(2);
  SlotResult result;
  PacketId id = 0;
  for (SlotTime now = 0; now < 4; ++now) {
    for (PortId input = 0; input < 4; ++input) {
      Packet p;
      p.id = id++;
      p.input = input;
      p.arrival = now;
      p.destinations = PortSet::all(4);
      sw.inject(p);
    }
    result.clear();
    sw.step(now, rng, result);
    // Whole-packet service: all 4 copies from ONE input, rotating 0..3.
    ASSERT_EQ(result.deliveries.size(), 4u);
    for (const Delivery& d : result.deliveries) {
      EXPECT_EQ(d.input, static_cast<PortId>(now));
      EXPECT_EQ(d.arrival, 0);  // still draining the slot-0 cohort
    }
  }
}

TEST(EdgeCases, AllInputsBroadcastWorkConservingWithRandomTies) {
  // Same overload with random tie-break: service may split across inputs,
  // but every output must still transmit every slot and only slot-0
  // packets (the oldest cohort) may be served in the first four slots.
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  Rng rng(2);
  SlotResult result;
  PacketId id = 0;
  for (SlotTime now = 0; now < 4; ++now) {
    for (PortId input = 0; input < 4; ++input) {
      Packet p;
      p.id = id++;
      p.input = input;
      p.arrival = now;
      p.destinations = PortSet::all(4);
      sw.inject(p);
    }
    result.clear();
    sw.step(now, rng, result);
    ASSERT_EQ(result.deliveries.size(), 4u);
    for (const Delivery& d : result.deliveries) EXPECT_EQ(d.arrival, 0);
  }
}

TEST(EdgeCases, ZeroLoadProducesNoStats) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(4, 0.0, 0.5);
  SimConfig config;
  config.total_slots = 100;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_EQ(result.packets_offered, 0u);
  EXPECT_EQ(result.output_delay.count(), 0u);
  EXPECT_DOUBLE_EQ(result.throughput, 0.0);
  EXPECT_FALSE(result.unstable);
}

TEST(EdgeCases, WarmupZeroMeasuresEverything) {
  OqSwitch sw(4);
  UnicastTraffic traffic(4, 0.5);
  SimConfig config;
  config.total_slots = 1000;
  config.warmup_fraction = 0.0;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_EQ(result.warmup_end, 0);
  EXPECT_EQ(result.copies_delivered, result.output_delay.count());
}

TEST(EdgeCases, IslipOnOneByOne) {
  VoqSwitch sw(1, std::make_unique<IslipScheduler>());
  UnicastTraffic traffic(1, 0.7);
  SimConfig config;
  config.total_slots = 2000;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_FALSE(result.unstable);
  EXPECT_DOUBLE_EQ(result.output_delay.mean(), 0.0);  // never any backlog
}

TEST(EdgeCases, SingleSlotHorizon) {
  VoqSwitch sw(2, std::make_unique<FifomsScheduler>());
  UnicastTraffic traffic(2, 1.0);
  SimConfig config;
  config.total_slots = 1;
  config.warmup_fraction = 0.0;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_EQ(result.total_slots, 1);
  EXPECT_GE(result.packets_offered, 1u);
}

}  // namespace
}  // namespace fifoms
