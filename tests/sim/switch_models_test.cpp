// Deterministic end-to-end scenarios for the three switch models.
#include <gtest/gtest.h>

#include <memory>

#include "core/fifoms.hpp"
#include "sched/islip.hpp"
#include "sched/tatra.hpp"
#include "sched/wba.hpp"
#include "sim/oq_switch.hpp"
#include "sim/single_fifo_switch.hpp"
#include "sim/voq_switch.hpp"
#include "test_util.hpp"

namespace fifoms {
namespace {

using test::count_delivery;
using test::make_packet;
using test::run_scripted;

TEST(VoqSwitch, MulticastDeliveredInOneSlotWhenUncontended) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  const auto deliveries =
      run_scripted(sw, {{0, 1, PortSet{0, 2, 3}}}, 2);
  ASSERT_EQ(deliveries.size(), 3u);
  for (const Delivery& d : deliveries) {
    EXPECT_EQ(d.input, 1);
    EXPECT_EQ(d.arrival, 0);
  }
  EXPECT_EQ(count_delivery(deliveries, 0, 0), 1);
  EXPECT_EQ(count_delivery(deliveries, 0, 2), 1);
  EXPECT_EQ(count_delivery(deliveries, 0, 3), 1);
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(VoqSwitch, PayloadTagPropagatesToEveryCopy) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  const auto deliveries = run_scripted(sw, {{0, 2, PortSet{1, 3}}}, 2);
  ASSERT_EQ(deliveries.size(), 2u);
  Packet reference;
  reference.id = 0;  // run_scripted assigns ids from 0
  EXPECT_EQ(deliveries[0].payload_tag, reference.payload_tag());
  EXPECT_EQ(deliveries[1].payload_tag, reference.payload_tag());
}

TEST(VoqSwitch, ContendedOutputSerialisesOverSlots) {
  VoqSwitch sw(2, std::make_unique<FifomsScheduler>());
  Rng rng(1);
  SlotResult r0, r1;
  sw.inject(make_packet(0, 0, 0, {1}));
  sw.inject(make_packet(1, 1, 0, {1}));
  sw.step(0, rng, r0);
  EXPECT_EQ(r0.deliveries.size(), 1u);
  sw.step(1, rng, r1);
  EXPECT_EQ(r1.deliveries.size(), 1u);
  EXPECT_NE(r0.deliveries[0].input, r1.deliveries[0].input);
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(VoqSwitch, OccupancyCountsDataCellsNotAddressCells) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  sw.inject(make_packet(0, 0, 0, {0, 1, 2, 3}));
  EXPECT_EQ(sw.occupancy(0), 1u);  // one data cell despite fanout 4
  EXPECT_EQ(sw.input(0).address_cell_count(), 4u);
}

TEST(VoqSwitch, ClearEmptiesEverything) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  sw.inject(make_packet(0, 0, 0, {0, 1}));
  sw.clear();
  EXPECT_EQ(sw.total_buffered(), 0u);
  // After clear the same slot may be reused for injection.
  sw.inject(make_packet(1, 0, 0, {0}));
  EXPECT_EQ(sw.total_buffered(), 1u);
}

TEST(VoqSwitchDeath, TwoArrivalsSameInputSameSlotPanics) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  sw.inject(make_packet(0, 0, 5, {0}));
  EXPECT_DEATH(sw.inject(make_packet(1, 0, 5, {1})),
               "more than one packet per input per slot");
}

TEST(VoqSwitch, IslipVariantDeliversMulticastOverKSlots) {
  VoqSwitch sw(4, std::make_unique<IslipScheduler>());
  Rng rng(1);
  sw.inject(make_packet(0, 0, 0, {0, 1, 2}));
  int copies = 0;
  for (SlotTime now = 0; now < 3; ++now) {
    SlotResult result;
    sw.step(now, rng, result);
    EXPECT_EQ(result.deliveries.size(), 1u)
        << "iSLIP sends one copy per slot";
    copies += static_cast<int>(result.deliveries.size());
  }
  EXPECT_EQ(copies, 3);
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(SingleFifoSwitch, TatraServesLoneMulticastAtOnce) {
  SingleFifoSwitch sw(4, std::make_unique<TatraScheduler>());
  const auto deliveries = run_scripted(sw, {{0, 0, PortSet{1, 2}}}, 2);
  EXPECT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(SingleFifoSwitch, HolBlockingDelaysSecondPacket) {
  // Input 0: packet A to output 0 (contended), then packet B to output 1
  // (free).  A VOQ switch would deliver B immediately; the single-FIFO
  // switch cannot.
  SingleFifoSwitch sw(2, std::make_unique<TatraScheduler>());
  Rng rng(1);
  sw.inject(make_packet(0, 0, 0, {0}));
  sw.inject(make_packet(1, 1, 0, {0}));
  SlotResult r0;
  sw.step(0, rng, r0);
  ASSERT_EQ(r0.deliveries.size(), 1u);  // output 1 idle: nothing for it
  // Inject B behind the blocked/queued head of input 0.
  const PortId blocked =
      r0.deliveries[0].input == 0 ? 1 : 0;  // which input still queues A?
  sw.inject(make_packet(2, blocked, 1, {1}));
  SlotResult r1;
  sw.step(1, rng, r1);
  // Slot 1 serves the remaining A; B (to idle output 1) must wait.
  for (const Delivery& d : r1.deliveries) EXPECT_NE(d.packet, 2u);
  SlotResult r2;
  sw.step(2, rng, r2);
  ASSERT_EQ(r2.deliveries.size(), 1u);
  EXPECT_EQ(r2.deliveries[0].packet, 2u);
}

TEST(SingleFifoSwitch, OccupancyCountsQueuedPackets) {
  SingleFifoSwitch sw(2, std::make_unique<WbaScheduler>());
  sw.inject(make_packet(0, 0, 0, {0, 1}));
  EXPECT_EQ(sw.occupancy(0), 1u);
  EXPECT_EQ(sw.occupancy(1), 0u);
}

TEST(SingleFifoSwitch, WbaVariantDrains) {
  SingleFifoSwitch sw(4, std::make_unique<WbaScheduler>());
  const auto deliveries = run_scripted(
      sw,
      {{0, 0, PortSet{0, 1}}, {0, 1, PortSet{1, 2}}, {0, 2, PortSet{2, 3}}},
      6);
  EXPECT_EQ(deliveries.size(), 6u);
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(OqSwitch, ImmediateEnqueueAndFifoService) {
  OqSwitch sw(2);
  Rng rng(1);
  sw.inject(make_packet(0, 0, 0, {0}));
  sw.inject(make_packet(1, 1, 0, {0}));
  EXPECT_EQ(sw.occupancy(0), 2u);  // both copies queued at output 0
  SlotResult r0;
  sw.step(0, rng, r0);
  ASSERT_EQ(r0.deliveries.size(), 1u);
  EXPECT_EQ(r0.deliveries[0].packet, 0u);  // FIFO: first injected first out
  SlotResult r1;
  sw.step(1, rng, r1);
  ASSERT_EQ(r1.deliveries.size(), 1u);
  EXPECT_EQ(r1.deliveries[0].packet, 1u);
}

TEST(OqSwitch, MulticastCopiesIndependentPerOutput) {
  OqSwitch sw(4);
  const auto deliveries = run_scripted(sw, {{0, 0, PortSet{0, 1, 2, 3}}}, 1);
  EXPECT_EQ(deliveries.size(), 4u);  // all copies in the arrival slot
}

TEST(OqSwitch, NoSchedulerRoundsReported) {
  OqSwitch sw(2);
  Rng rng(1);
  sw.inject(make_packet(0, 0, 0, {0}));
  SlotResult result;
  sw.step(0, rng, result);
  EXPECT_EQ(result.rounds, 0);
  EXPECT_EQ(result.matched_pairs, 1);
}

}  // namespace
}  // namespace fifoms
