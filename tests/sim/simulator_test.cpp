// Integration tests of the slotted-time driver: conservation, warm-up,
// determinism, paired arrival streams, stability cut-off.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/fifoms.hpp"
#include "sched/islip.hpp"
#include "sim/oq_switch.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/trace.hpp"
#include "traffic/unicast.hpp"

namespace fifoms {
namespace {

SimConfig quick_config(SlotTime slots = 4000, std::uint64_t seed = 1) {
  SimConfig config;
  config.total_slots = slots;
  config.warmup_fraction = 0.5;
  config.seed = seed;
  return config;
}

TEST(Simulator, ConservationAtModerateLoad) {
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(8, 0.3, 0.25);
  Simulator sim(sw, traffic, quick_config());
  const SimResult result = sim.run();
  EXPECT_FALSE(result.unstable);
  std::size_t queued_copies = 0;
  for (PortId input = 0; input < 8; ++input)
    queued_copies += sw.input(input).address_cell_count();
  EXPECT_EQ(result.copies_offered, result.copies_delivered + queued_copies);
  EXPECT_EQ(result.packets_offered,
            result.packets_delivered + result.in_flight_at_end);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    VoqSwitch sw(8, std::make_unique<FifomsScheduler>());
    BernoulliTraffic traffic(8, 0.4, 0.25);
    Simulator sim(sw, traffic, quick_config(3000, 99));
    return sim.run();
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.copies_delivered, b.copies_delivered);
  EXPECT_DOUBLE_EQ(a.input_delay.mean(), b.input_delay.mean());
  EXPECT_DOUBLE_EQ(a.output_delay.mean(), b.output_delay.mean());
  EXPECT_EQ(a.queue_max, b.queue_max);
}

TEST(Simulator, DifferentSeedsDiffer) {
  auto run_once = [](std::uint64_t seed) {
    VoqSwitch sw(8, std::make_unique<FifomsScheduler>());
    BernoulliTraffic traffic(8, 0.4, 0.25);
    Simulator sim(sw, traffic, quick_config(3000, seed));
    return sim.run();
  };
  EXPECT_NE(run_once(1).packets_offered, run_once(2).packets_offered);
}

TEST(Simulator, ArrivalStreamIndependentOfScheduler) {
  // The paired-comparison property: FIFOMS and iSLIP consume scheduler
  // randomness differently, yet with the same seed they must see the
  // bit-identical arrival sequence.
  auto offered = [](std::unique_ptr<VoqScheduler> sched) {
    VoqSwitch sw(8, std::move(sched));
    BernoulliTraffic traffic(8, 0.4, 0.25);
    Simulator sim(sw, traffic, quick_config(3000, 7));
    const SimResult result = sim.run();
    return std::pair(result.packets_offered, result.copies_offered);
  };
  EXPECT_EQ(offered(std::make_unique<FifomsScheduler>()),
            offered(std::make_unique<IslipScheduler>()));
}

TEST(Simulator, WarmupBoundaryRecorded) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(4, 0.2, 0.3);
  SimConfig config = quick_config(1000);
  config.warmup_fraction = 0.25;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_EQ(result.warmup_end, 250);
  EXPECT_EQ(result.total_slots, 1000);
}

TEST(Simulator, OverloadDetectedAsUnstable) {
  // Offered load 2.0 per output cannot be sustained by any scheduler.
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(8, 1.0, 0.25);  // load = 2.0
  SimConfig config = quick_config(200000);
  config.stability.max_buffered = 5000;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_TRUE(result.unstable);
  EXPECT_LT(result.total_slots, 200000);
  EXPECT_GT(result.unstable_at, 0);
}

TEST(Simulator, StableLoadNotFlaggedUnstable) {
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(8, 0.35, 0.25);  // load = 0.7
  SimConfig config = quick_config(20000);
  Simulator sim(sw, traffic, config);
  EXPECT_FALSE(sim.run().unstable);
}

TEST(Simulator, OqFifoMatchesMm1LikeDelayShape) {
  // Sanity anchor: OQFIFO delay at low load is near zero and grows with
  // load — the OQ lower bound every IQ scheduler is compared against.
  auto mean_delay = [](double p) {
    OqSwitch sw(8);
    UnicastTraffic traffic(8, p);
    SimConfig config = quick_config(30000, 5);
    Simulator sim(sw, traffic, config);
    return sim.run().output_delay.mean();
  };
  const double low = mean_delay(0.1);
  const double high = mean_delay(0.9);
  EXPECT_LT(low, 0.2);
  EXPECT_GT(high, 1.0);
  EXPECT_GT(high, low);
}

TEST(Simulator, ScriptedTrafficExactDelays) {
  // Fully deterministic run: one packet, contended nowhere.
  VoqSwitch sw(2, std::make_unique<FifomsScheduler>());
  ScriptedTraffic traffic(2, {{0, 0, PortSet{0, 1}}, {1, 1, PortSet{0}}});
  SimConfig config;
  config.total_slots = 10;
  config.warmup_fraction = 0.0;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  // Packet 0 delivered to both outputs in slot 0 (delay 0).  Packet 1
  // (input 1, slot 1, output 0) is uncontended in slot 1 (delay 0).
  EXPECT_EQ(result.copies_delivered, 3u);
  EXPECT_DOUBLE_EQ(result.output_delay.mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.input_delay.mean(), 0.0);
  EXPECT_EQ(result.in_flight_at_end, 0u);
}

TEST(Simulator, InputOrientedAtLeastOutputOriented) {
  // Input-oriented delay is a max over copies, output-oriented a mean:
  // the former can never have the smaller average.
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(8, 0.35, 0.25);
  Simulator sim(sw, traffic, quick_config(20000));
  const SimResult result = sim.run();
  EXPECT_GE(result.input_delay.mean(), result.output_delay.mean());
}

TEST(SimulatorDeath, MismatchedPortCountsPanic) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(8, 0.3, 0.25);
  EXPECT_DEATH(Simulator(sw, traffic, quick_config()),
               "disagree on port count");
}

}  // namespace
}  // namespace fifoms
