// Thread-count invariance of the parallel sweep engine.
//
// The contract (docs/BENCHMARKING.md): every (algorithm, load,
// replication) cell derives its RNG stream from its grid coordinates,
// never from execution order, so run_sweep() output is BYTE-identical
// for any thread count.  This test runs a fig4-style sweep at 1, 2 and 8
// threads and compares the written CSVs byte for byte.  It is quick
// -labelled on purpose: the tsan CI lane (ctest -L quick) must exercise
// the work-stealing pool.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "io/csv.hpp"
#include "sim/experiment.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Small fig4-style sweep: Bernoulli multicast, the paper's lineup.
std::string sweep_csv(int threads, const char* name) {
  SweepConfig config;
  config.num_ports = 8;
  config.loads = {0.3, 0.6, 0.9};
  config.slots = 2'000;
  config.replications = 3;
  config.master_seed = 2026;
  config.threads = threads;

  const int ports = config.num_ports;
  const double b = 0.2;
  const auto points = run_sweep(
      config, standard_lineup(),
      [ports, b](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<BernoulliTraffic>(
            ports, BernoulliTraffic::p_for_load(load, b, ports), b);
      });

  const std::string path = temp_path(name);
  write_sweep_csv(path, points);
  return read_file(path);
}

TEST(SweepDeterminism, CsvByteIdenticalAcrossThreadCounts) {
  const std::string serial = sweep_csv(1, "sweep_t1.csv");
  ASSERT_FALSE(serial.empty());
  // A sanity anchor: every lineup algorithm appears in the output.
  EXPECT_NE(serial.find("FIFOMS"), std::string::npos);
  EXPECT_NE(serial.find("iSLIP"), std::string::npos);

  const std::string two_threads = sweep_csv(2, "sweep_t2.csv");
  const std::string eight_threads = sweep_csv(8, "sweep_t8.csv");
  EXPECT_EQ(serial, two_threads)
      << "sweep output changed between 1 and 2 threads";
  EXPECT_EQ(serial, eight_threads)
      << "sweep output changed between 1 and 8 threads";
}

TEST(SweepDeterminism, OversubscribedPoolMatchesSerial) {
  // More workers than grid cells: shards are empty for most workers and
  // the stealing path is exercised immediately.
  SweepConfig config;
  config.num_ports = 4;
  config.loads = {0.5};
  config.slots = 500;
  config.replications = 2;
  config.threads = 16;

  const int ports = config.num_ports;
  const auto traffic =
      [ports](double load) -> std::unique_ptr<TrafficModel> {
    return std::make_unique<BernoulliTraffic>(
        ports, BernoulliTraffic::p_for_load(load, 0.2, ports), 0.2);
  };

  const auto parallel = run_sweep(config, {make_fifoms()}, traffic);
  config.threads = 1;
  const auto serial = run_sweep(config, {make_fifoms()}, traffic);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].input_delay, serial[i].input_delay);
    EXPECT_EQ(parallel[i].output_delay, serial[i].output_delay);
    EXPECT_EQ(parallel[i].throughput, serial[i].throughput);
    EXPECT_EQ(parallel[i].queue_mean, serial[i].queue_mean);
  }
}

}  // namespace
}  // namespace fifoms
