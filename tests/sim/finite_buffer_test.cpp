#include <gtest/gtest.h>

#include <memory>

#include "core/fifoms.hpp"
#include "sched/tatra.hpp"
#include "sim/simulator.hpp"
#include "sim/single_fifo_switch.hpp"
#include "sim/voq_switch.hpp"
#include "test_util.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

using test::make_packet;

TEST(FiniteBuffer, UnlimitedByDefault) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  for (SlotTime t = 0; t < 100; ++t)
    EXPECT_TRUE(sw.inject(make_packet(static_cast<PacketId>(t), 0, t, {0})));
  EXPECT_EQ(sw.dropped_packets(), 0u);
  EXPECT_EQ(sw.occupancy(0), 100u);
}

TEST(FiniteBuffer, DropsWhenInputFull) {
  VoqSwitch::Options options;
  options.input_capacity = 3;
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>(), options);
  for (SlotTime t = 0; t < 5; ++t) {
    const bool accepted =
        sw.inject(make_packet(static_cast<PacketId>(t), 0, t, {0}));
    EXPECT_EQ(accepted, t < 3) << "slot " << t;
  }
  EXPECT_EQ(sw.dropped_packets(), 2u);
  EXPECT_EQ(sw.occupancy(0), 3u);
}

TEST(FiniteBuffer, CapacityIsPerInput) {
  VoqSwitch::Options options;
  options.input_capacity = 1;
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>(), options);
  EXPECT_TRUE(sw.inject(make_packet(0, 0, 0, {0})));
  EXPECT_TRUE(sw.inject(make_packet(1, 1, 0, {0})));  // different input
  EXPECT_FALSE(sw.inject(make_packet(2, 0, 1, {1})));
}

TEST(FiniteBuffer, ServiceFreesCapacity) {
  VoqSwitch::Options options;
  options.input_capacity = 1;
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>(), options);
  Rng rng(1);
  EXPECT_TRUE(sw.inject(make_packet(0, 0, 0, {2})));
  SlotResult result;
  sw.step(0, rng, result);  // delivers, frees the buffer slot
  EXPECT_TRUE(sw.inject(make_packet(1, 0, 1, {2})));
}

TEST(FiniteBuffer, MulticastPacketStillOneBufferSlot) {
  // The paper's structure: a fanout-4 packet occupies ONE data cell, so a
  // capacity-1 buffer accepts it whole.
  VoqSwitch::Options options;
  options.input_capacity = 1;
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>(), options);
  EXPECT_TRUE(sw.inject(make_packet(0, 0, 0, {0, 1, 2, 3})));
  EXPECT_EQ(sw.occupancy(0), 1u);
}

TEST(FiniteBuffer, SingleFifoSwitchDropsToo) {
  SingleFifoSwitch::Options options;
  options.input_capacity = 2;
  SingleFifoSwitch sw(4, std::make_unique<TatraScheduler>(), options);
  EXPECT_TRUE(sw.inject(make_packet(0, 0, 0, {0})));
  EXPECT_TRUE(sw.inject(make_packet(1, 0, 1, {1})));
  EXPECT_FALSE(sw.inject(make_packet(2, 0, 2, {2})));
  EXPECT_EQ(sw.dropped_packets(), 1u);
}

TEST(FiniteBuffer, ClearResetsDropCounter) {
  VoqSwitch::Options options;
  options.input_capacity = 1;
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>(), options);
  sw.inject(make_packet(0, 0, 0, {0}));
  sw.inject(make_packet(1, 0, 1, {0}));
  EXPECT_EQ(sw.dropped_packets(), 1u);
  sw.clear();
  EXPECT_EQ(sw.dropped_packets(), 0u);
}

TEST(FiniteBuffer, SimulatorAccountsLoss) {
  // Overload a tiny buffer: the simulator must report a positive loss
  // rate and keep conservation among ACCEPTED packets only.
  VoqSwitch::Options options;
  options.input_capacity = 4;
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>(), options);
  BernoulliTraffic traffic(8, 1.0, 0.25);  // load 2.0: heavy overload
  SimConfig config;
  config.total_slots = 5000;
  config.seed = 4;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_GT(result.packets_dropped, 0u);
  EXPECT_GT(result.loss_rate(), 0.1);
  EXPECT_LT(result.loss_rate(), 1.0);
  EXPECT_EQ(result.packets_offered,
            result.packets_delivered + result.in_flight_at_end);
  // A finite buffer keeps the switch trivially stable.
  EXPECT_FALSE(result.unstable);
}

TEST(FiniteBuffer, LossRateZeroWhenNoDrops) {
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(8, 0.2, 0.25);
  SimConfig config;
  config.total_slots = 2000;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_EQ(result.packets_dropped, 0u);
  EXPECT_EQ(result.loss_rate(), 0.0);
}

}  // namespace
}  // namespace fifoms
