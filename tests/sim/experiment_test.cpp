// Tests of the sweep harness plus small-scale shape checks of the paper's
// qualitative claims (fast versions of the bench assertions).
#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "traffic/bernoulli.hpp"
#include "traffic/unicast.hpp"

namespace fifoms {
namespace {

SweepConfig quick_sweep(std::vector<double> loads, int ports = 8,
                        SlotTime slots = 6000) {
  SweepConfig config;
  config.num_ports = ports;
  config.loads = std::move(loads);
  config.slots = slots;
  config.replications = 2;
  config.master_seed = 11;
  return config;
}

TrafficFactory bernoulli_factory(int ports, double b) {
  return [ports, b](double load) -> std::unique_ptr<TrafficModel> {
    return std::make_unique<BernoulliTraffic>(
        ports, BernoulliTraffic::p_for_load(load, b, ports), b);
  };
}

TEST(Experiment, ProducesOnePointPerAlgorithmLoad) {
  const auto config = quick_sweep({0.3, 0.6});
  const auto points = run_sweep(config, {make_fifoms(), make_oqfifo()},
                                bernoulli_factory(8, 0.25));
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].algorithm, "FIFOMS");
  EXPECT_DOUBLE_EQ(points[0].load, 0.3);
  EXPECT_EQ(points[3].algorithm, "OQFIFO");
  EXPECT_DOUBLE_EQ(points[3].load, 0.6);
  for (const auto& point : points) {
    EXPECT_EQ(point.replications, 2);
    EXPECT_EQ(point.unstable_count, 0);
    EXPECT_GT(point.throughput, 0.0);
  }
}

TEST(Experiment, DelayIncreasesWithLoad) {
  const auto config = quick_sweep({0.2, 0.8});
  const auto points =
      run_sweep(config, {make_fifoms()}, bernoulli_factory(8, 0.25));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_LT(points[0].output_delay, points[1].output_delay);
  EXPECT_LT(points[0].queue_mean, points[1].queue_mean);
}

TEST(Experiment, DeterministicGivenMasterSeed) {
  const auto config = quick_sweep({0.5});
  const auto a =
      run_sweep(config, {make_fifoms()}, bernoulli_factory(8, 0.25));
  const auto b =
      run_sweep(config, {make_fifoms()}, bernoulli_factory(8, 0.25));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a[0].input_delay, b[0].input_delay);
  EXPECT_DOUBLE_EQ(a[0].queue_max, b[0].queue_max);
}

TEST(Experiment, StandardLineupHasPaperAlgorithms) {
  const auto lineup = standard_lineup();
  ASSERT_EQ(lineup.size(), 4u);
  EXPECT_EQ(lineup[0].label, "FIFOMS");
  EXPECT_EQ(lineup[1].label, "TATRA");
  EXPECT_EQ(lineup[2].label, "iSLIP");
  EXPECT_EQ(lineup[3].label, "OQFIFO");
  for (const auto& factory : lineup) {
    auto sw = factory.make(4);
    EXPECT_EQ(sw->num_inputs(), 4);
  }
}

TEST(Experiment, ParallelSweepBitIdenticalToSerial) {
  // Seeds derive from grid coordinates, so a 4-thread run must reproduce
  // the serial run exactly.
  auto config = quick_sweep({0.3, 0.6, 0.9});
  const auto serial =
      run_sweep(config, {make_fifoms(), make_oqfifo()},
                bernoulli_factory(8, 0.25));
  config.threads = 4;
  const auto parallel =
      run_sweep(config, {make_fifoms(), make_oqfifo()},
                bernoulli_factory(8, 0.25));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].algorithm, parallel[i].algorithm);
    EXPECT_DOUBLE_EQ(serial[i].input_delay, parallel[i].input_delay);
    EXPECT_DOUBLE_EQ(serial[i].output_delay, parallel[i].output_delay);
    EXPECT_DOUBLE_EQ(serial[i].queue_mean, parallel[i].queue_mean);
    EXPECT_DOUBLE_EQ(serial[i].queue_max, parallel[i].queue_max);
    EXPECT_DOUBLE_EQ(serial[i].throughput, parallel[i].throughput);
  }
}

TEST(Experiment, ThreadsZeroUsesHardwareConcurrency) {
  auto config = quick_sweep({0.5}, 8, 2000);
  config.threads = 0;  // must not crash or deadlock on any core count
  const auto points =
      run_sweep(config, {make_fifoms()}, bernoulli_factory(8, 0.25));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_GT(points[0].throughput, 0.0);
}

TEST(Experiment, AllUnstablePointStillReportsThroughput) {
  // Heavy overload: every replication diverges; the summary must say so
  // and still carry the saturation throughput.
  auto config = quick_sweep({1.8}, 8, 30000);
  config.stability.max_buffered = 2000;
  const auto points =
      run_sweep(config, {make_fifoms()}, bernoulli_factory(8, 0.25));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].unstable());
  EXPECT_GT(points[0].throughput, 0.5);   // saturated near capacity
  EXPECT_EQ(points[0].input_delay, 0.0);  // no delay numbers reported
}

TEST(Experiment, FactoryLabelsEncodeVariants) {
  EXPECT_EQ(make_fifoms(2).label, "FIFOMS-r2");
  EXPECT_EQ(make_islip(1).label, "iSLIP-i1");
  EXPECT_EQ(make_pim().label, "PIM");
  EXPECT_EQ(make_fifoms_nosplit().label, "FIFOMS-nosplit");
  EXPECT_EQ(make_wba().label, "WBA");
}

// ---- Fast shape checks of the paper's claims -------------------------

TEST(PaperShape, FifomsTracksOqfifoUnderMulticast) {
  // Fig. 4 shape: FIFOMS delay within a small factor of OQFIFO at
  // moderate multicast load, and far below iSLIP.
  auto config = quick_sweep({0.6}, 8, 12000);
  const auto points =
      run_sweep(config, {make_fifoms(), make_islip(), make_oqfifo()},
                bernoulli_factory(8, 0.25));
  const double fifoms = points[0].output_delay;
  const double islip = points[1].output_delay;
  const double oq = points[2].output_delay;
  EXPECT_LT(fifoms, oq + 5.0);
  EXPECT_LT(fifoms, islip);
}

TEST(PaperShape, IslipFarBehindFifomsUnderHeavyMulticast) {
  // iSLIP serialises a fanout-4 packet into 4 slots of input work, so at
  // copy-load 0.9 its input queues run near saturation (batch arrivals on
  // top), while FIFOMS ships whole fanouts per slot.  The paper's figures
  // flag iSLIP unstable here at the 10^6-slot horizon; the robust
  // short-horizon signature is a delay and buffer gap of several times.
  auto config = quick_sweep({0.9}, 8, 20000);
  const auto points = run_sweep(config, {make_fifoms(), make_islip()},
                                bernoulli_factory(8, 0.5));
  EXPECT_EQ(points[0].unstable_count, 0) << "FIFOMS diverged";
  EXPECT_GT(points[1].output_delay, 3.0 * points[0].output_delay);
  EXPECT_GT(points[1].queue_mean, 3.0 * points[0].queue_mean);
}

TEST(PaperShape, TatraCapsNearKarolBoundUnderUnicast) {
  // Fig. 6 shape: single-FIFO TATRA saturates near 0.586 under unicast
  // i.i.d. traffic; FIFOMS sustains 0.9.
  auto config = quick_sweep({0.9}, 8, 20000);
  config.stability.max_buffered = 4000;
  TrafficFactory unicast = [](double load) -> std::unique_ptr<TrafficModel> {
    return std::make_unique<UnicastTraffic>(8, load);
  };
  const auto points =
      run_sweep(config, {make_fifoms(), make_tatra()}, unicast);
  EXPECT_EQ(points[0].unstable_count, 0);
  EXPECT_EQ(points[1].unstable_count, points[1].replications);
}

TEST(PaperShape, FifomsQueueSmallerThanIslip) {
  auto config = quick_sweep({0.7}, 8, 12000);
  const auto points = run_sweep(config, {make_fifoms(), make_islip()},
                                bernoulli_factory(8, 0.25));
  EXPECT_LT(points[0].queue_mean, points[1].queue_mean);
}

}  // namespace
}  // namespace fifoms
