#include "sim/observer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/fifoms.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/trace.hpp"

namespace fifoms {
namespace {

SimConfig tiny_config(SlotTime slots) {
  SimConfig config;
  config.total_slots = slots;
  config.warmup_fraction = 0.0;
  return config;
}

TEST(TextTracer, LogsMatchedSlots) {
  VoqSwitch sw(2, std::make_unique<FifomsScheduler>());
  ScriptedTraffic traffic(2, {{0, 0, PortSet{0, 1}}, {2, 1, PortSet{0}}});
  Simulator sim(sw, traffic, tiny_config(5));
  std::ostringstream out;
  TextTracer tracer(out);
  sim.set_observer(&tracer);
  (void)sim.run();

  const std::string text = out.str();
  EXPECT_NE(text.find("slot 0 | 0->0 0->1 | rounds=1 copies=2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("slot 2 | 1->0"), std::string::npos) << text;
  EXPECT_EQ(tracer.lines_written(), 2u);  // idle slots skipped
}

TEST(TextTracer, IncludeIdleOption) {
  VoqSwitch sw(2, std::make_unique<FifomsScheduler>());
  ScriptedTraffic traffic(2, {});
  Simulator sim(sw, traffic, tiny_config(3));
  std::ostringstream out;
  TextTracer::Options options;
  options.include_idle = true;
  TextTracer tracer(out, options);
  sim.set_observer(&tracer);
  (void)sim.run();
  EXPECT_EQ(tracer.lines_written(), 3u);
  EXPECT_NE(out.str().find("idle"), std::string::npos);
}

TEST(TextTracer, WindowBoundsRespected) {
  VoqSwitch sw(2, std::make_unique<FifomsScheduler>());
  ScriptedTraffic traffic(
      2, {{0, 0, PortSet{0}}, {1, 0, PortSet{0}}, {2, 0, PortSet{0}}});
  Simulator sim(sw, traffic, tiny_config(4));
  std::ostringstream out;
  TextTracer::Options options;
  options.first_slot = 1;
  options.last_slot = 1;
  TextTracer tracer(out, options);
  sim.set_observer(&tracer);
  (void)sim.run();
  EXPECT_EQ(tracer.lines_written(), 1u);
  EXPECT_NE(out.str().find("slot 1 |"), std::string::npos);
  EXPECT_EQ(out.str().find("slot 0"), std::string::npos);
}

TEST(TextTracer, DetachStopsLogging) {
  VoqSwitch sw(2, std::make_unique<FifomsScheduler>());
  ScriptedTraffic traffic(2, {{0, 0, PortSet{0}}});
  Simulator sim(sw, traffic, tiny_config(2));
  std::ostringstream out;
  TextTracer tracer(out);
  sim.set_observer(&tracer);
  sim.set_observer(nullptr);
  (void)sim.run();
  EXPECT_EQ(tracer.lines_written(), 0u);
}

TEST(TextTracer, ReportsBufferedBacklog) {
  // Two packets contend for one output: after slot 0 one cell remains.
  VoqSwitch sw(2, std::make_unique<FifomsScheduler>());
  ScriptedTraffic traffic(2, {{0, 0, PortSet{0}}, {0, 1, PortSet{0}}});
  Simulator sim(sw, traffic, tiny_config(1));
  std::ostringstream out;
  TextTracer tracer(out);
  sim.set_observer(&tracer);
  (void)sim.run();
  EXPECT_NE(out.str().find("buffered=1"), std::string::npos) << out.str();
}

}  // namespace
}  // namespace fifoms
