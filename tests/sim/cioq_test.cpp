#include "sim/cioq_switch.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/fifoms.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "test_util.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/burst.hpp"

namespace fifoms {
namespace {

using test::make_packet;

TEST(CioqSwitch, LabelEncodesSpeedup) {
  CioqSwitch sw(4, std::make_unique<FifomsScheduler>(), 2);
  EXPECT_EQ(sw.name(), "FIFOMS-s2");
  EXPECT_EQ(sw.speedup(), 2);
}

TEST(CioqSwitch, SingleCellCrossesAndDepartsSameSlot) {
  CioqSwitch sw(4, std::make_unique<FifomsScheduler>(), 1);
  Rng rng(1);
  sw.inject(make_packet(0, 0, 0, {2}));
  SlotResult result;
  sw.step(0, rng, result);
  ASSERT_EQ(result.deliveries.size(), 1u);
  EXPECT_EQ(result.deliveries[0].output, 2);
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(CioqSwitch, SpeedupTwoSendsTwoDataCellsFromOneInputPerSlot) {
  // Two packets queued at input 0 for different outputs.  Speedup 1 moves
  // one data cell per input per slot (the VOQ-switch constraint); speedup
  // 2 runs two fabric phases and moves both.
  auto deliveries_in_slot1 = [](int speedup) {
    CioqSwitch sw(4, std::make_unique<FifomsScheduler>(), speedup);
    Rng rng(1);
    sw.inject(make_packet(0, 0, 0, {0}));
    sw.inject(make_packet(1, 0, 1, {1}));  // second packet, next slot
    SlotResult result;
    sw.step(1, rng, result);
    return result.deliveries.size();
  };
  EXPECT_EQ(deliveries_in_slot1(1), 1u);
  EXPECT_EQ(deliveries_in_slot1(2), 2u);
}

TEST(CioqSwitch, OutputQueueBuildsOnlyWithSpeedup) {
  // Inputs 0 and 1 both hold traffic for output 0.  With speedup 2 both
  // cells can cross in one slot but only one leaves — the other waits in
  // the output FIFO.
  CioqSwitch sw(2, std::make_unique<FifomsScheduler>(), 2);
  Rng rng(1);
  sw.inject(make_packet(0, 0, 0, {0}));
  sw.inject(make_packet(1, 1, 0, {0}));
  SlotResult result;
  sw.step(0, rng, result);
  EXPECT_EQ(result.deliveries.size(), 1u);
  EXPECT_EQ(sw.output_occupancy(0), 1u);
  EXPECT_EQ(sw.occupancy(0) + sw.occupancy(1), 0u);  // inputs drained
  SlotResult next;
  sw.step(1, rng, next);
  EXPECT_EQ(next.deliveries.size(), 1u);
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(CioqSwitch, FifoOrderPreservedThroughOutputQueue) {
  CioqSwitch sw(2, std::make_unique<FifomsScheduler>(), 2);
  Rng rng(1);
  sw.inject(make_packet(0, 0, 0, {0}));  // strictly older time stamp
  sw.inject(make_packet(1, 1, 1, {0}));
  SlotResult r1;
  sw.step(1, rng, r1);
  // Phase 1 crosses the older cell, phase 2 the younger; the output FIFO
  // transmits in crossing order.
  ASSERT_EQ(r1.deliveries.size(), 1u);
  EXPECT_EQ(r1.deliveries[0].packet, 0u);
  SlotResult r2;
  sw.step(2, rng, r2);
  ASSERT_EQ(r2.deliveries.size(), 1u);
  EXPECT_EQ(r2.deliveries[0].packet, 1u);
}

TEST(CioqSwitch, HigherSpeedupNeverWorseDelayUnderBurst) {
  // Under bursty multicast at 60% load, speedup 2 should cut delay
  // relative to speedup 1 (contended outputs drain the input side
  // faster); both must beat nothing — and remain stable.
  auto run = [](int speedup) {
    CioqSwitch sw(8, std::make_unique<FifomsScheduler>(), speedup);
    BurstTraffic traffic(8, BurstTraffic::e_off_for_load(0.6, 8.0, 0.5, 8),
                         8.0, 0.5);
    SimConfig config;
    config.total_slots = 20000;
    config.seed = 3;
    Simulator sim(sw, traffic, config);
    return sim.run();
  };
  const SimResult s1 = run(1);
  const SimResult s2 = run(2);
  EXPECT_FALSE(s1.unstable);
  EXPECT_FALSE(s2.unstable);
  EXPECT_LE(s2.output_delay.mean(), s1.output_delay.mean() + 0.05);
}

TEST(CioqSwitch, ConservationUnderRandomTraffic) {
  CioqSwitch sw(4, std::make_unique<FifomsScheduler>(), 3);
  BernoulliTraffic traffic(4, 0.5, 0.5);
  SimConfig config;
  config.total_slots = 5000;
  config.seed = 9;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  std::size_t queued = 0;
  for (PortId input = 0; input < 4; ++input)
    queued += sw.input(input).address_cell_count();
  for (PortId output = 0; output < 4; ++output)
    queued += sw.output_occupancy(output);
  EXPECT_EQ(result.copies_offered, result.copies_delivered + queued);
}

TEST(CioqSwitchDeath, BadSpeedupRejected) {
  EXPECT_DEATH(CioqSwitch(4, std::make_unique<FifomsScheduler>(), 0),
               "speedup");
  EXPECT_DEATH(CioqSwitch(4, std::make_unique<FifomsScheduler>(), 5),
               "speedup");
}

}  // namespace
}  // namespace fifoms
