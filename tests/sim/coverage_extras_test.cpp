// Final-pass coverage: corner combinations of independently tested
// features (CIOQ with other schedulers, three QoS classes, 256-lane
// comparator trees, ESLIP iteration caps, observer during instability).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/fifoms.hpp"
#include "hw/comparator_tree.hpp"
#include "sched/eslip.hpp"
#include "sched/ilqf.hpp"
#include "sched/islip.hpp"
#include "sim/cioq_switch.hpp"
#include "sim/observer.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/priority.hpp"

namespace fifoms {
namespace {

TEST(CoverageExtras, CioqWorksWithIslipAndIlqf) {
  for (int speedup : {1, 2}) {
    CioqSwitch islip_sw(8, std::make_unique<IslipScheduler>(), speedup);
    CioqSwitch ilqf_sw(8, std::make_unique<IlqfScheduler>(), speedup);
    BernoulliTraffic traffic(8, 0.3, 0.25);
    SimConfig config;
    config.total_slots = 4000;
    {
      BernoulliTraffic t(8, 0.3, 0.25);
      Simulator sim(islip_sw, t, config);
      EXPECT_FALSE(sim.run().unstable) << "iSLIP s" << speedup;
    }
    {
      Simulator sim(ilqf_sw, traffic, config);
      EXPECT_FALSE(sim.run().unstable) << "iLQF s" << speedup;
    }
  }
}

TEST(CoverageExtras, ThreeQosClassesStrictlyOrdered) {
  VoqSwitch::Options options;
  options.num_classes = 3;
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>(), options);
  PriorityTraffic traffic(
      std::make_unique<BernoulliTraffic>(
          8, BernoulliTraffic::p_for_load(0.9, 0.25, 8), 0.25),
      {0.1, 0.3, 0.6});
  SimConfig config;
  config.total_slots = 30000;
  config.seed = 33;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  ASSERT_FALSE(result.unstable);
  ASSERT_EQ(result.class_output_delays.size(), 3u);
  const double c0 = result.class_output_delays[0].mean();
  const double c1 = result.class_output_delays[1].mean();
  const double c2 = result.class_output_delays[2].mean();
  EXPECT_LT(c0, c1);
  EXPECT_LT(c1, c2);
}

TEST(CoverageExtras, ComparatorTreeAtMaxPorts) {
  hw::ComparatorTree tree(kMaxPorts);
  EXPECT_EQ(tree.depth(), 8);  // log2(256)
  tree.set_lane(255, 7);
  tree.set_lane(0, 7);  // tie: lowest lane must win
  const auto result = tree.evaluate();
  EXPECT_EQ(result.lane, 0);
  tree.clear_lane(0);
  EXPECT_EQ(tree.evaluate().lane, 255);
}

TEST(CoverageExtras, EslipIterationCapStillLegal) {
  EslipSwitch sw(8, /*max_iterations=*/1);
  BernoulliTraffic traffic(8, 0.4, 0.3);
  SimConfig config;
  config.total_slots = 3000;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_GT(result.copies_delivered, 0u);
  EXPECT_LE(result.rounds_busy.max(), 1.0);
}

TEST(CoverageExtras, ObserverSeesSlotsUntilInstabilityCutoff) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(4, 1.0, 0.9);  // load 3.6: rapid divergence
  SimConfig config;
  config.total_slots = 100000;
  config.stability.max_buffered = 200;
  Simulator sim(sw, traffic, config);
  std::ostringstream out;
  TextTracer::Options options;
  options.include_idle = true;
  TextTracer tracer(out, options);
  sim.set_observer(&tracer);
  const SimResult result = sim.run();
  ASSERT_TRUE(result.unstable);
  // One trace line per executed slot, no more after the cut-off.
  EXPECT_EQ(tracer.lines_written(),
            static_cast<std::uint64_t>(result.total_slots));
}

TEST(CoverageExtras, PriorityWithFinateBufferDropsStillCount) {
  VoqSwitch::Options options;
  options.num_classes = 2;
  options.input_capacity = 3;
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>(), options);
  PriorityTraffic traffic(std::make_unique<BernoulliTraffic>(8, 1.0, 0.5),
                          {0.5, 0.5});
  SimConfig config;
  config.total_slots = 4000;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_GT(result.packets_dropped, 0u);
  EXPECT_FALSE(result.unstable);  // finite buffer bounds the backlog
  EXPECT_EQ(result.packets_offered,
            result.packets_delivered + result.in_flight_at_end);
}

}  // namespace
}  // namespace fifoms
