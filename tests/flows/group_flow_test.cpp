#include <gtest/gtest.h>

#include <memory>

#include "core/fifoms.hpp"
#include "flows/flow_traffic.hpp"
#include "flows/group_table.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"

namespace fifoms {
namespace {

TEST(GroupTable, AddAndLookup) {
  GroupTable table(8);
  const GroupId g0 = table.add_group(PortSet{0, 1});
  const GroupId g1 = table.add_group(PortSet{5});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.members(g0), (PortSet{0, 1}));
  EXPECT_EQ(table.members(g1), (PortSet{5}));
  EXPECT_EQ(table.total_memberships(), 3u);
}

TEST(GroupTable, JoinLeave) {
  GroupTable table(8);
  const GroupId g = table.add_group(PortSet{});
  table.join(g, 3);
  table.join(g, 7);
  EXPECT_EQ(table.members(g), (PortSet{3, 7}));
  table.leave(g, 3);
  EXPECT_EQ(table.members(g), (PortSet{7}));
  table.leave(g, 3);  // idempotent
  EXPECT_EQ(table.members(g).count(), 1);
}

TEST(GroupTable, RandomPopulationRespectsBounds) {
  Rng rng(3);
  GroupTable table = GroupTable::random(16, 40, 2, 6, rng);
  EXPECT_EQ(table.size(), 40u);
  for (GroupId g = 0; g < 40; ++g) {
    const int size = table.members(g).count();
    EXPECT_GE(size, 2);
    EXPECT_LE(size, 6);
    EXPECT_TRUE(table.members(g).is_subset_of(PortSet::all(16)));
  }
}

TEST(GroupTableDeath, BadInputsPanic) {
  GroupTable table(4);
  EXPECT_DEATH(table.add_group(PortSet{4}), "beyond switch radix");
  EXPECT_DEATH((void)table.members(0), "unknown group");
  const GroupId g = table.add_group(PortSet{0});
  EXPECT_DEATH(table.join(g, 9), "beyond switch radix");
}

TEST(FlowTraffic, DestinationsAreGroupMemberships) {
  GroupTable table(8);
  table.add_group(PortSet{1, 2, 3});
  FlowTraffic traffic(std::move(table), 1.0, 0.0);
  Rng rng(1);
  for (SlotTime t = 0; t < 100; ++t) {
    EXPECT_EQ(traffic.arrival(0, t, rng), (PortSet{1, 2, 3}));
    EXPECT_EQ(traffic.last_group(), 0u);
  }
}

TEST(FlowTraffic, PopularGroupDominatesUnderSkew) {
  GroupTable table(8);
  table.add_group(PortSet{0});
  table.add_group(PortSet{1});
  table.add_group(PortSet{2});
  table.add_group(PortSet{3});
  FlowTraffic traffic(std::move(table), 1.0, 2.0);
  Rng rng(2);
  int rank0 = 0;
  const int slots = 50000;
  for (SlotTime t = 0; t < slots; ++t)
    if (traffic.arrival(0, t, rng).contains(0)) ++rank0;
  // Zipf s=2 over 4 ranks: P(0) = 1 / (1 + 1/4 + 1/9 + 1/16) ~ 0.72.
  EXPECT_NEAR(static_cast<double>(rank0) / slots, 0.72, 0.02);
}

TEST(FlowTraffic, OfferedLoadUsesPopularityWeightedFanout) {
  GroupTable table(8);
  table.add_group(PortSet{0, 1, 2, 3});  // fanout 4
  table.add_group(PortSet{5});           // fanout 1
  FlowTraffic traffic(std::move(table), 0.5, 0.0);  // uniform popularity
  EXPECT_NEAR(traffic.offered_load(), 0.5 * 2.5, 1e-12);
}

TEST(FlowTraffic, EmptyGroupFiltersPacket) {
  GroupTable table(8);
  table.add_group(PortSet{});  // a group nobody joined
  FlowTraffic traffic(std::move(table), 1.0, 0.0);
  Rng rng(4);
  for (SlotTime t = 0; t < 50; ++t)
    EXPECT_TRUE(traffic.arrival(0, t, rng).empty());
}

TEST(FlowTraffic, ChurnTogglesMemberships) {
  GroupTable table(8);
  table.add_group(PortSet{0});
  FlowTraffic traffic(std::move(table), 0.0, 0.0, /*churn_rate=*/1.0);
  Rng rng(5);
  // With p = 0 no packets arrive, but churn (driven by input 0's calls)
  // keeps mutating the single group.
  std::size_t changes = 0;
  int last = traffic.groups().members(0).count();
  for (SlotTime t = 0; t < 200; ++t) {
    for (PortId input = 0; input < 8; ++input)
      (void)traffic.arrival(input, t, rng);
    const int size = traffic.groups().members(0).count();
    if (size != last) ++changes;
    last = size;
  }
  EXPECT_GT(changes, 50u);
}

TEST(FlowTraffic, RunsInsideFullSimulation) {
  Rng setup(7);
  GroupTable table = GroupTable::random(8, 24, 1, 4, setup);
  FlowTraffic traffic(std::move(table), 0.25, 1.0, 0.001);
  VoqSwitch sw(8, std::make_unique<FifomsScheduler>());
  SimConfig config;
  config.total_slots = 10000;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  EXPECT_FALSE(result.unstable);
  EXPECT_GT(result.copies_delivered, 0u);
}

}  // namespace
}  // namespace fifoms
