#include "flows/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fifoms {
namespace {

TEST(Zipf, ProbabilitiesSumToOne) {
  for (double s : {0.0, 0.8, 1.0, 2.0}) {
    ZipfSampler zipf(50, s);
    double total = 0.0;
    for (int rank = 0; rank < zipf.size(); ++rank)
      total += zipf.probability(rank);
    EXPECT_NEAR(total, 1.0, 1e-12) << "s=" << s;
  }
}

TEST(Zipf, SkewZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (int rank = 0; rank < 10; ++rank)
    EXPECT_NEAR(zipf.probability(rank), 0.1, 1e-12);
}

TEST(Zipf, ProbabilitiesDecreaseWithRank) {
  ZipfSampler zipf(20, 1.0);
  for (int rank = 1; rank < 20; ++rank)
    EXPECT_LT(zipf.probability(rank), zipf.probability(rank - 1));
}

TEST(Zipf, ClassicRatios) {
  // With s = 1, P(rank 0) / P(rank 1) = 2 exactly.
  ZipfSampler zipf(100, 1.0);
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(1), 2.0, 1e-9);
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(3), 4.0, 1e-9);
}

TEST(Zipf, SingleRankAlwaysZero) {
  ZipfSampler zipf(1, 1.5);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0);
}

TEST(Zipf, EmpiricalFrequenciesMatch) {
  ZipfSampler zipf(8, 1.0);
  Rng rng(5);
  std::vector<int> counts(8, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (int rank = 0; rank < 8; ++rank) {
    EXPECT_NEAR(static_cast<double>(counts[rank]) / n,
                zipf.probability(rank), 0.01)
        << "rank " << rank;
  }
}

TEST(Zipf, ExpectationHelper) {
  ZipfSampler zipf(4, 0.0);  // uniform over {0,1,2,3}
  const double mean =
      zipf.expectation([](int rank) { return static_cast<double>(rank); });
  EXPECT_NEAR(mean, 1.5, 1e-12);
}

TEST(ZipfDeath, BadParametersPanic) {
  EXPECT_DEATH(ZipfSampler(0, 1.0), "at least one rank");
  EXPECT_DEATH(ZipfSampler(5, -0.5), "skew");
}

}  // namespace
}  // namespace fifoms
