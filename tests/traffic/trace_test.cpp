#include "traffic/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ScriptedTraffic, ReplaysExactRecords) {
  ScriptedTraffic traffic(4, {
      {0, 0, PortSet{1, 2}},
      {0, 3, PortSet{0}},
      {5, 0, PortSet{3}},
  });
  Rng rng(1);
  EXPECT_EQ(traffic.arrival(0, 0, rng), (PortSet{1, 2}));
  EXPECT_EQ(traffic.arrival(3, 0, rng), (PortSet{0}));
  EXPECT_TRUE(traffic.arrival(1, 0, rng).empty());
  EXPECT_TRUE(traffic.arrival(0, 1, rng).empty());
  EXPECT_EQ(traffic.arrival(0, 5, rng), (PortSet{3}));
  EXPECT_EQ(traffic.record_count(), 3u);
}

TEST(ScriptedTraffic, OfferedLoadFromRecords) {
  // 4 copies over 10 slots on 4 ports -> 4 / (10*4) = 0.1 per output.
  ScriptedTraffic traffic(4, {
      {0, 0, PortSet{1, 2}},
      {9, 1, PortSet{0, 3}},
  });
  EXPECT_DOUBLE_EQ(traffic.offered_load(), 0.1);
}

TEST(ScriptedTraffic, EmptyScriptIsSilent) {
  ScriptedTraffic traffic(4, {});
  Rng rng(1);
  EXPECT_TRUE(traffic.arrival(0, 0, rng).empty());
  EXPECT_EQ(traffic.offered_load(), 0.0);
}

TEST(ScriptedTrafficDeath, DuplicateSlotInputPanics) {
  EXPECT_DEATH(ScriptedTraffic(4, {{0, 0, PortSet{1}}, {0, 0, PortSet{2}}}),
               "two trace records");
}

TEST(ScriptedTrafficDeath, EmptyDestinationsPanics) {
  EXPECT_DEATH(ScriptedTraffic(4, {{0, 0, PortSet{}}}), "no destinations");
}

TEST(TraceRecorder, RecordsAndForwards) {
  BernoulliTraffic inner(8, 0.5, 0.3);
  TraceRecorder recorder(inner);
  Rng rng(2);
  std::uint64_t copies_forwarded = 0;
  for (SlotTime t = 0; t < 1000; ++t)
    for (PortId input = 0; input < 8; ++input)
      copies_forwarded += static_cast<std::uint64_t>(
          recorder.arrival(input, t, rng).count());
  std::uint64_t copies_recorded = 0;
  for (const TraceRecord& record : recorder.records())
    copies_recorded +=
        static_cast<std::uint64_t>(record.destinations.count());
  EXPECT_EQ(copies_forwarded, copies_recorded);
  EXPECT_GT(recorder.records().size(), 100u);
}

TEST(TraceRecorder, SaveLoadRoundTrip) {
  BernoulliTraffic inner(8, 0.5, 0.3);
  TraceRecorder recorder(inner);
  Rng rng(3);
  for (SlotTime t = 0; t < 200; ++t)
    for (PortId input = 0; input < 8; ++input)
      (void)recorder.arrival(input, t, rng);

  const std::string path = temp_path("trace_roundtrip.txt");
  recorder.save(path);
  ScriptedTraffic replayed = ScriptedTraffic::load(path);
  EXPECT_EQ(replayed.num_ports(), 8);
  EXPECT_EQ(replayed.record_count(), recorder.records().size());

  Rng unused(0);
  for (const TraceRecord& record : recorder.records())
    EXPECT_EQ(replayed.arrival(record.input, record.slot, unused),
              record.destinations);
  std::remove(path.c_str());
}

TEST(TraceRecorder, ReplayIsDeterministic) {
  // Two replays of the same file produce identical arrivals — the
  // record-once / compare-everywhere workflow.
  ScriptedTraffic traffic(4, {{1, 2, PortSet{0, 3}}});
  Rng r1(1), r2(99);  // rng must be irrelevant
  EXPECT_EQ(traffic.arrival(2, 1, r1), traffic.arrival(2, 1, r2));
}

TEST(ScriptedTrafficDeath, LoadMissingFilePanics) {
  EXPECT_DEATH((void)ScriptedTraffic::load("/nonexistent/trace.txt"),
               "cannot open");
}

}  // namespace
}  // namespace fifoms
