// Chi-square goodness-of-fit tests for the traffic generators.
//
// Each test draws a large fixed-seed sample, bins it, and computes the
// Pearson statistic  X^2 = sum (observed - expected)^2 / expected
// against the distribution the generator documents.  Thresholds are the
// 1% critical values of the chi-square distribution for the test's
// degrees of freedom, so a correct generator fails with probability 0.01
// per seed — and the seeds are FIXED, so the suite is deterministic: it
// either always passes or always fails for a given code revision.  The
// seeds below were checked once; if a refactor re-pins the RNG stream
// layout and a test trips with a statistic just over the line, re-check
// with a few fresh seeds before suspecting the generator.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/burst.hpp"
#include "traffic/uniform_fanout.hpp"

namespace fifoms {
namespace {

/// Pearson statistic over matched observed/expected bins.
double chi_square(const std::vector<double>& observed,
                  const std::vector<double>& expected) {
  EXPECT_EQ(observed.size(), expected.size());
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    EXPECT_GT(expected[i], 5.0) << "bin " << i << " too thin for chi-square";
    const double diff = observed[i] - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

// 1% critical values for chi-square with df degrees of freedom.
constexpr double kCrit1Df1 = 6.635;
constexpr double kCrit1Df7 = 18.475;
constexpr double kCrit1Df9 = 21.666;

TEST(ChiSquare, BernoulliArrivalRate) {
  // Arrival indicator is Bernoulli(p): a 2-bin test with df = 1.
  const int ports = 16;
  const double p = 0.35;
  const double b = 0.2;
  BernoulliTraffic traffic(ports, p, b);
  Rng rng(101);

  const int slots = 200'000;
  double arrivals = 0.0;
  for (SlotTime now = 0; now < slots; ++now)
    if (!traffic.arrival(0, now, rng).empty()) arrivals += 1.0;

  // The generator treats the all-empty destination draw (prob (1-b)^N) as
  // "no arrival", so the observable arrival rate is p*(1 - (1-b)^N).
  double none = 1.0;
  for (int i = 0; i < ports; ++i) none *= 1.0 - b;
  const double effective_p = p * (1.0 - none);

  const double n = slots;
  const std::vector<double> observed = {arrivals, n - arrivals};
  const std::vector<double> expected = {n * effective_p,
                                        n * (1.0 - effective_p)};
  EXPECT_LT(chi_square(observed, expected), kCrit1Df1);
}

TEST(ChiSquare, BernoulliPerOutputDestinationRate) {
  // Conditioned on an arrival, each output is a destination independently
  // with probability b (renormalised for the discarded all-empty draw).
  // Test output 0's inclusion indicator: 2 bins, df = 1.
  const int ports = 16;
  const double p = 1.0;  // every slot arrives: conditioning is free
  const double b = 0.3;
  BernoulliTraffic traffic(ports, p, b);
  Rng rng(202);

  const int slots = 100'000;
  double samples = 0.0;
  double hits = 0.0;
  for (SlotTime now = 0; now < slots; ++now) {
    const PortSet dests = traffic.arrival(3, now, rng);
    if (dests.empty()) continue;  // the discarded all-empty outcome
    samples += 1.0;
    if (dests.contains(0)) hits += 1.0;
  }

  double none = 1.0;
  for (int i = 0; i < ports; ++i) none *= 1.0 - b;
  const double conditional_b = b / (1.0 - none);

  const std::vector<double> observed = {hits, samples - hits};
  const std::vector<double> expected = {samples * conditional_b,
                                        samples * (1.0 - conditional_b)};
  EXPECT_LT(chi_square(observed, expected), kCrit1Df1);
}

TEST(ChiSquare, UniformFanoutSizeDistribution) {
  // Fanout is uniform on {1..maxf}: maxf bins with df = maxf - 1.
  const int ports = 16;
  const int max_fanout = 8;
  UniformFanoutTraffic traffic(ports, /*p=*/1.0, max_fanout);
  Rng rng(303);

  const int slots = 80'000;
  std::vector<double> observed(static_cast<std::size_t>(max_fanout), 0.0);
  double samples = 0.0;
  for (SlotTime now = 0; now < slots; ++now) {
    const PortSet dests = traffic.arrival(1, now, rng);
    if (dests.empty()) continue;  // p = 1, so this never triggers
    const int fanout = dests.count();
    ASSERT_GE(fanout, 1);
    ASSERT_LE(fanout, max_fanout);
    observed[static_cast<std::size_t>(fanout - 1)] += 1.0;
    samples += 1.0;
  }

  const std::vector<double> expected(
      static_cast<std::size_t>(max_fanout),
      samples / static_cast<double>(max_fanout));
  EXPECT_LT(chi_square(observed, expected), kCrit1Df7);  // df = 8 - 1
}

TEST(ChiSquare, UniformFanoutDestinationsUnbiased) {
  // Each of the N outputs should appear in the destination set equally
  // often.  N bins; conditioning on the observed total keeps df = N - 1.
  const int ports = 10;
  UniformFanoutTraffic traffic(ports, /*p=*/1.0, /*max_fanout=*/4);
  Rng rng(404);

  const int slots = 50'000;
  std::vector<double> observed(static_cast<std::size_t>(ports), 0.0);
  double total = 0.0;
  for (SlotTime now = 0; now < slots; ++now) {
    const PortSet dests = traffic.arrival(2, now, rng);
    for (PortId out : dests) {
      observed[static_cast<std::size_t>(out)] += 1.0;
      total += 1.0;
    }
  }

  const std::vector<double> expected(static_cast<std::size_t>(ports),
                                     total / ports);
  EXPECT_LT(chi_square(observed, expected), kCrit1Df9);  // df = 10 - 1
}

TEST(ChiSquare, BurstOnRunLengthsGeometric) {
  // ON sojourns are geometric with mean E_on: P(len = k) =
  // (1 - q)^(k-1) * q with q = 1/E_on.  Bin run lengths 1..9 plus a tail
  // bin (>= 10): 10 bins, df = 9 (parameters are fixed, not fitted).
  const int ports = 4;
  const double e_on = 4.0;
  const double e_off = 12.0;
  BurstTraffic traffic(ports, e_off, e_on, /*b=*/0.5);
  Rng rng(505);
  traffic.reset(rng);

  const int slots = 400'000;
  std::vector<double> observed(10, 0.0);
  double runs = 0.0;
  int current_run = 0;
  for (SlotTime now = 0; now < slots; ++now) {
    const bool on = !traffic.arrival(0, now, rng).empty();
    if (on) {
      ++current_run;
    } else if (current_run > 0) {
      const int bin = current_run >= 10 ? 9 : current_run - 1;
      observed[static_cast<std::size_t>(bin)] += 1.0;
      runs += 1.0;
      current_run = 0;
    }
  }

  const double q = 1.0 / e_on;
  std::vector<double> expected(10, 0.0);
  double tail = 1.0;
  for (int k = 1; k <= 9; ++k) {
    const double pk = tail * q;  // P(len = k) = (1-q)^(k-1) q
    expected[static_cast<std::size_t>(k - 1)] = runs * pk;
    tail *= 1.0 - q;
  }
  expected[9] = runs * tail;  // P(len >= 10)
  EXPECT_LT(chi_square(observed, expected), kCrit1Df9);
}

TEST(ChiSquare, BurstArrivalRateMatchesStationary) {
  // Long-run ON fraction is E_on / (E_on + E_off): 2 bins, df = 1.
  const int ports = 4;
  const double e_on = 16.0;
  const double e_off = 48.0;
  BurstTraffic traffic(ports, e_off, e_on, /*b=*/0.5);
  Rng rng(606);
  traffic.reset(rng);

  const int slots = 400'000;
  double on_slots = 0.0;
  for (SlotTime now = 0; now < slots; ++now)
    if (!traffic.arrival(1, now, rng).empty()) on_slots += 1.0;

  const double rate = e_on / (e_on + e_off);
  const double n = slots;
  const std::vector<double> observed = {on_slots, n - on_slots};
  const std::vector<double> expected = {n * rate, n * (1.0 - rate)};
  // The ON indicator is Markov, not i.i.d.: positive autocorrelation
  // inflates the Pearson statistic by roughly (1 + rho) / (1 - rho).
  // With these means the lag-1 correlation of the ON indicator is
  // 1 - 1/E_on - 1/E_off = 0.916, inflating variance ~23x; scale the
  // df=1 threshold accordingly rather than pretending independence.
  const double inflation = (1.0 + 0.916) / (1.0 - 0.916);
  EXPECT_LT(chi_square(observed, expected), kCrit1Df1 * inflation);
}

}  // namespace
}  // namespace fifoms
