#include <gtest/gtest.h>

#include "traffic/composite.hpp"
#include "traffic/factory.hpp"
#include "traffic/hotspot.hpp"
#include "traffic/unicast.hpp"

namespace fifoms {
namespace {

TEST(UnicastTraffic, SingleDestinationAlways) {
  UnicastTraffic traffic(16, 1.0);
  Rng rng(1);
  for (SlotTime t = 0; t < 5000; ++t)
    EXPECT_EQ(traffic.arrival(0, t, rng).count(), 1);
}

TEST(UnicastTraffic, OfferedLoadIsP) {
  UnicastTraffic traffic(16, 0.37);
  EXPECT_DOUBLE_EQ(traffic.offered_load(), 0.37);
}

TEST(UnicastTraffic, DestinationsUniform) {
  UnicastTraffic traffic(8, 1.0);
  Rng rng(2);
  std::vector<int> hits(8, 0);
  const int slots = 80000;
  for (SlotTime t = 0; t < slots; ++t)
    ++hits[traffic.arrival(0, t, rng).first()];
  for (int count : hits)
    EXPECT_NEAR(static_cast<double>(count) / slots, 0.125, 0.01);
}

TEST(HotspotTraffic, HotPortDominates) {
  HotspotTraffic traffic(8, 1.0, 0.75, 2);
  Rng rng(3);
  int hot_hits = 0;
  const int slots = 80000;
  for (SlotTime t = 0; t < slots; ++t)
    if (traffic.arrival(0, t, rng).contains(2)) ++hot_hits;
  // hot_share + (1-hot_share)/N = 0.75 + 0.25/8
  EXPECT_NEAR(static_cast<double>(hot_hits) / slots, 0.78125, 0.01);
}

TEST(HotspotTraffic, ZeroShareIsUniform) {
  HotspotTraffic traffic(8, 1.0, 0.0);
  Rng rng(4);
  std::vector<int> hits(8, 0);
  const int slots = 80000;
  for (SlotTime t = 0; t < slots; ++t)
    ++hits[traffic.arrival(0, t, rng).first()];
  for (int count : hits)
    EXPECT_NEAR(static_cast<double>(count) / slots, 0.125, 0.01);
}

TEST(HotspotTraffic, OfferedLoadIsHotOutputLoad) {
  HotspotTraffic traffic(16, 0.5, 0.3);
  EXPECT_NEAR(traffic.offered_load(), 16 * 0.5 * (0.3 + 0.7 / 16.0), 1e-12);
}

TEST(MixedTraffic, FanoutDistribution) {
  MixedTraffic traffic(16, 1.0, 0.5, 8);
  Rng rng(5);
  int unicast = 0, multicast = 0;
  const int slots = 100000;
  for (SlotTime t = 0; t < slots; ++t) {
    const int fanout = traffic.arrival(0, t, rng).count();
    ASSERT_GE(fanout, 1);
    ASSERT_LE(fanout, 8);
    if (fanout == 1) {
      ++unicast;
    } else {
      ++multicast;
    }
  }
  EXPECT_NEAR(static_cast<double>(unicast) / slots, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(multicast) / slots, 0.5, 0.01);
}

TEST(MixedTraffic, OfferedLoadUsesMeanFanout) {
  MixedTraffic traffic(16, 0.2, 0.5, 8);
  EXPECT_DOUBLE_EQ(traffic.mean_fanout(), 0.5 * 1.0 + 0.5 * 5.0);
  EXPECT_DOUBLE_EQ(traffic.offered_load(), 0.2 * 3.0);
}

TEST(TrafficFactory, BuildsEveryKind) {
  EXPECT_EQ(make_traffic(16, "bernoulli:p=0.2,b=0.2")->name(), "bernoulli");
  EXPECT_EQ(make_traffic(16, "uniform:p=0.5,maxf=8")->name(), "uniform");
  EXPECT_EQ(make_traffic(16, "unicast:p=0.9")->name(), "unicast");
  EXPECT_EQ(make_traffic(16, "burst:eon=16,eoff=48,b=0.5")->name(), "burst");
  EXPECT_EQ(make_traffic(16, "hotspot:p=0.5,hot=0.3,port=2")->name(),
            "hotspot");
  EXPECT_EQ(make_traffic(16, "mixed:p=0.5,u=0.5,maxf=8")->name(), "mixed");
}

TEST(TrafficFactory, ParametersReachModel) {
  auto traffic = make_traffic(16, "bernoulli:p=0.25,b=0.2");
  EXPECT_DOUBLE_EQ(traffic->offered_load(), 0.25 * 0.2 * 16);
  auto burst = make_traffic(16, "burst:eon=16,eoff=48,b=0.5");
  EXPECT_DOUBLE_EQ(burst->offered_load(), 2.0);
}

TEST(TrafficFactoryDeath, UnknownKindPanics) {
  EXPECT_DEATH((void)make_traffic(16, "nonsense:p=1"), "unknown kind");
}

TEST(TrafficFactoryDeath, MissingKeyPanics) {
  EXPECT_DEATH((void)make_traffic(16, "bernoulli:p=0.5"), "missing");
}

TEST(TrafficFactoryDeath, MalformedPairPanics) {
  EXPECT_DEATH((void)make_traffic(16, "bernoulli:p0.5"), "key=value");
}

}  // namespace
}  // namespace fifoms
