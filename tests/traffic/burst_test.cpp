#include "traffic/burst.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fifoms {
namespace {

TEST(BurstTraffic, OfferedLoadFormula) {
  BurstTraffic traffic(16, 48.0, 16.0, 0.5);
  // b*N*Eon/(Eon+Eoff) = 0.5*16*16/64 = 2.0
  EXPECT_DOUBLE_EQ(traffic.offered_load(), 2.0);
}

TEST(BurstTraffic, EOffForLoadInverts) {
  const double e_off = BurstTraffic::e_off_for_load(0.7, 16.0, 0.5, 16);
  BurstTraffic traffic(16, e_off, 16.0, 0.5);
  EXPECT_NEAR(traffic.offered_load(), 0.7, 1e-12);
}

TEST(BurstTraffic, ArrivalRateMatchesOnFraction) {
  BurstTraffic traffic(16, 32.0, 16.0, 0.5);
  Rng rng(1);
  traffic.reset(rng);
  int arrivals = 0;
  const int slots = 300000;
  for (SlotTime t = 0; t < slots; ++t)
    if (!traffic.arrival(0, t, rng).empty()) ++arrivals;
  EXPECT_NEAR(static_cast<double>(arrivals) / slots, 16.0 / 48.0, 0.01);
}

TEST(BurstTraffic, MeanBurstLengthIsEOn) {
  BurstTraffic traffic(4, 20.0, 8.0, 0.5);
  Rng rng(2);
  traffic.reset(rng);
  std::vector<int> burst_lengths;
  int current = 0;
  for (SlotTime t = 0; t < 400000; ++t) {
    if (!traffic.arrival(0, t, rng).empty()) {
      ++current;
    } else if (current > 0) {
      burst_lengths.push_back(current);
      current = 0;
    }
  }
  double sum = 0;
  for (int length : burst_lengths) sum += length;
  EXPECT_GT(burst_lengths.size(), 1000u);
  EXPECT_NEAR(sum / static_cast<double>(burst_lengths.size()), 8.0, 0.3);
}

TEST(BurstTraffic, DestinationsConstantWithinBurst) {
  BurstTraffic traffic(16, 10.0, 16.0, 0.5);
  Rng rng(3);
  traffic.reset(rng);
  PortSet current;
  for (SlotTime t = 0; t < 50000; ++t) {
    const PortSet set = traffic.arrival(0, t, rng);
    if (set.empty()) {
      current.clear();
      continue;
    }
    if (!current.empty()) {
      EXPECT_EQ(set, current) << "destinations changed mid-burst at " << t;
    }
    current = set;
  }
}

TEST(BurstTraffic, DestinationsNeverEmptyDuringBurst) {
  BurstTraffic traffic(8, 5.0, 4.0, 0.1);  // small b: empty draws likely
  Rng rng(4);
  traffic.reset(rng);
  for (SlotTime t = 0; t < 20000; ++t) {
    const PortSet set = traffic.arrival(0, t, rng);
    if (!set.empty()) {
      EXPECT_GE(set.count(), 1);
    }
  }
}

TEST(BurstTraffic, StationaryResetStartsSomeSourcesOn) {
  BurstTraffic traffic(64, 16.0, 16.0, 0.5);  // 50% on in steady state
  Rng rng(5);
  traffic.reset(rng);
  int on = 0;
  for (PortId input = 0; input < 64; ++input)
    if (!traffic.arrival(input, 0, rng).empty()) ++on;
  EXPECT_GT(on, 15);
  EXPECT_LT(on, 50);
}

TEST(BurstTraffic, SourcesIndependent) {
  BurstTraffic traffic(2, 16.0, 16.0, 0.5);
  Rng rng(6);
  traffic.reset(rng);
  int both = 0, only_first = 0;
  for (SlotTime t = 0; t < 100000; ++t) {
    const bool a = !traffic.arrival(0, t, rng).empty();
    const bool b = !traffic.arrival(1, t, rng).empty();
    both += a && b;
    only_first += a && !b;
  }
  // With independent 0.5-on sources both counts hover near 25k.
  EXPECT_NEAR(both, 25000, 2500);
  EXPECT_NEAR(only_first, 25000, 2500);
}

TEST(BurstTrafficDeath, BadParametersPanic) {
  EXPECT_DEATH(BurstTraffic(16, 0.5, 16.0, 0.5), "OFF period");
  EXPECT_DEATH(BurstTraffic(16, 16.0, 0.0, 0.5), "ON period");
  EXPECT_DEATH(BurstTraffic(16, 16.0, 16.0, 0.0), "probability");
  EXPECT_DEATH(BurstTraffic::e_off_for_load(9.0, 16.0, 0.5, 16),
               "unreachable");
}

}  // namespace
}  // namespace fifoms
