#include "traffic/uniform_fanout.hpp"

#include <gtest/gtest.h>

#include <map>

namespace fifoms {
namespace {

TEST(UniformFanoutTraffic, OfferedLoadFormula) {
  UniformFanoutTraffic traffic(16, 0.2, 8);
  EXPECT_DOUBLE_EQ(traffic.offered_load(), 0.2 * 4.5);
}

TEST(UniformFanoutTraffic, PForLoadInverts) {
  const double p = UniformFanoutTraffic::p_for_load(0.9, 8);
  UniformFanoutTraffic traffic(16, p, 8);
  EXPECT_NEAR(traffic.offered_load(), 0.9, 1e-12);
}

TEST(UniformFanoutTraffic, FanoutAlwaysInRange) {
  UniformFanoutTraffic traffic(16, 1.0, 5);
  Rng rng(1);
  for (SlotTime t = 0; t < 10000; ++t) {
    const int fanout = traffic.arrival(0, t, rng).count();
    EXPECT_GE(fanout, 1);
    EXPECT_LE(fanout, 5);
  }
}

TEST(UniformFanoutTraffic, FanoutUniformOverRange) {
  UniformFanoutTraffic traffic(16, 1.0, 4);
  Rng rng(2);
  std::map<int, int> counts;
  const int slots = 100000;
  for (SlotTime t = 0; t < slots; ++t)
    ++counts[traffic.arrival(0, t, rng).count()];
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [fanout, count] : counts)
    EXPECT_NEAR(static_cast<double>(count) / slots, 0.25, 0.01)
        << "fanout " << fanout;
}

TEST(UniformFanoutTraffic, MaxFanoutOneIsUnicast) {
  UniformFanoutTraffic traffic(16, 1.0, 1);
  Rng rng(3);
  for (SlotTime t = 0; t < 1000; ++t)
    EXPECT_EQ(traffic.arrival(0, t, rng).count(), 1);
}

TEST(UniformFanoutTraffic, DestinationsCoverAllOutputs) {
  UniformFanoutTraffic traffic(8, 1.0, 3);
  Rng rng(4);
  std::vector<int> hits(8, 0);
  for (SlotTime t = 0; t < 50000; ++t)
    for (PortId output : traffic.arrival(0, t, rng)) ++hits[output];
  const double mean_hits = 50000.0 * 2.0 / 8.0;  // E[fanout]=2 over 8 ports
  for (int count : hits)
    EXPECT_NEAR(static_cast<double>(count), mean_hits, mean_hits * 0.05);
}

TEST(RandomSubset, ExactSizeAndRange) {
  Rng rng(5);
  for (int k = 0; k <= 16; ++k) {
    const PortSet set = UniformFanoutTraffic::random_subset(16, k, rng);
    EXPECT_EQ(set.count(), k);
    EXPECT_TRUE(set.is_subset_of(PortSet::all(16)));
  }
}

TEST(RandomSubset, UniformOverSubsets) {
  // All C(4,2)=6 subsets of {0..3} should appear equally often.
  Rng rng(6);
  std::map<std::string, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i)
    ++counts[UniformFanoutTraffic::random_subset(4, 2, rng).to_string()];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [subset, count] : counts)
    EXPECT_NEAR(static_cast<double>(count) / n, 1.0 / 6.0, 0.01)
        << subset;
}

TEST(UniformFanoutTrafficDeath, BadParametersPanic) {
  EXPECT_DEATH(UniformFanoutTraffic(16, 0.5, 0), "maxFanout");
  EXPECT_DEATH(UniformFanoutTraffic(16, 0.5, 17), "maxFanout");
  EXPECT_DEATH(UniformFanoutTraffic(16, 1.5, 4), "probability");
}

}  // namespace
}  // namespace fifoms
