#include "traffic/bernoulli.hpp"

#include <gtest/gtest.h>

namespace fifoms {
namespace {

TEST(BernoulliTraffic, OfferedLoadFormula) {
  BernoulliTraffic traffic(16, 0.25, 0.2);
  EXPECT_DOUBLE_EQ(traffic.offered_load(), 0.25 * 0.2 * 16);
  EXPECT_EQ(traffic.name(), "bernoulli");
}

TEST(BernoulliTraffic, PForLoadInvertsOfferedLoad) {
  const double p = BernoulliTraffic::p_for_load(0.8, 0.2, 16);
  BernoulliTraffic traffic(16, p, 0.2);
  EXPECT_NEAR(traffic.offered_load(), 0.8, 1e-12);
}

TEST(BernoulliTraffic, ZeroArrivalProbabilityNeverArrives) {
  BernoulliTraffic traffic(16, 0.0, 0.5);
  Rng rng(1);
  for (SlotTime t = 0; t < 1000; ++t)
    EXPECT_TRUE(traffic.arrival(0, t, rng).empty());
}

TEST(BernoulliTraffic, ArrivalRateMatchesP) {
  // Measured arrival rate is p * (1 - (1-b)^N): empty draws count as no
  // arrival.  With b = 0.5, N = 16 the correction is ~1.5e-5.
  BernoulliTraffic traffic(16, 0.4, 0.5);
  Rng rng(2);
  int arrivals = 0;
  const int slots = 200000;
  for (SlotTime t = 0; t < slots; ++t)
    if (!traffic.arrival(0, t, rng).empty()) ++arrivals;
  EXPECT_NEAR(static_cast<double>(arrivals) / slots, 0.4, 0.005);
}

TEST(BernoulliTraffic, MeanFanoutIsBTimesN) {
  BernoulliTraffic traffic(16, 1.0, 0.2);
  Rng rng(3);
  std::uint64_t copies = 0;
  const int slots = 100000;
  for (SlotTime t = 0; t < slots; ++t)
    copies += static_cast<std::uint64_t>(traffic.arrival(0, t, rng).count());
  // Copies per slot (counting empty draws as zero) must equal p*b*N = 3.2.
  EXPECT_NEAR(static_cast<double>(copies) / slots, 3.2, 0.05);
}

TEST(BernoulliTraffic, DestinationsUniformAcrossOutputs) {
  BernoulliTraffic traffic(8, 1.0, 0.3);
  Rng rng(4);
  std::vector<int> hits(8, 0);
  const int slots = 100000;
  for (SlotTime t = 0; t < slots; ++t)
    for (PortId output : traffic.arrival(0, t, rng)) ++hits[output];
  for (int count : hits)
    EXPECT_NEAR(static_cast<double>(count) / slots, 0.3, 0.01);
}

TEST(BernoulliTraffic, FullBroadcastWhenBIsOne) {
  BernoulliTraffic traffic(16, 1.0, 1.0);
  Rng rng(5);
  const PortSet set = traffic.arrival(3, 0, rng);
  EXPECT_EQ(set, PortSet::all(16));
}

TEST(BernoulliTraffic, DeterministicGivenSeed) {
  BernoulliTraffic a(16, 0.5, 0.2), b(16, 0.5, 0.2);
  Rng ra(9), rb(9);
  for (SlotTime t = 0; t < 1000; ++t)
    EXPECT_EQ(a.arrival(0, t, ra), b.arrival(0, t, rb));
}

TEST(BernoulliTrafficDeath, BadParametersPanic) {
  EXPECT_DEATH(BernoulliTraffic(16, -0.1, 0.5), "probability");
  EXPECT_DEATH(BernoulliTraffic(16, 0.5, 1.5), "probability");
  EXPECT_DEATH(BernoulliTraffic(0, 0.5, 0.5), "port count");
}

}  // namespace
}  // namespace fifoms
