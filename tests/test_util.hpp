// Shared helpers for the fifoms test suite.
#pragma once

#include <memory>
#include <vector>

#include "fabric/packet.hpp"
#include "sim/switch_model.hpp"
#include "traffic/trace.hpp"

namespace fifoms::test {

/// Build a packet with an auto-incrementing id.
inline Packet make_packet(PacketId id, PortId input, SlotTime arrival,
                          std::initializer_list<PortId> destinations) {
  Packet packet;
  packet.id = id;
  packet.input = input;
  packet.arrival = arrival;
  packet.destinations = PortSet(destinations);
  return packet;
}

/// Drive `sw` for `slots` slots with a scripted arrival list, collecting
/// all deliveries.  Injection happens at each record's slot; the Rng seeds
/// any scheduler randomness.
inline std::vector<Delivery> run_scripted(
    SwitchModel& sw, const std::vector<TraceRecord>& records, SlotTime slots,
    std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<Delivery> deliveries;
  PacketId next_id = 0;
  SlotResult result;
  for (SlotTime now = 0; now < slots; ++now) {
    for (const TraceRecord& record : records) {
      if (record.slot != now) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = record.input;
      packet.arrival = now;
      packet.destinations = record.destinations;
      sw.inject(packet);
    }
    result.clear();
    sw.step(now, rng, result);
    deliveries.insert(deliveries.end(), result.deliveries.begin(),
                      result.deliveries.end());
  }
  return deliveries;
}

/// Count deliveries for a given (packet, output) pair.
inline int count_delivery(const std::vector<Delivery>& deliveries,
                          PacketId packet, PortId output) {
  int count = 0;
  for (const Delivery& d : deliveries)
    if (d.packet == packet && d.output == output) ++count;
  return count;
}

/// Slot in which (packet, output) was delivered; requires injection via
/// run_scripted so arrival is recorded in the Delivery.  Returns -1 when
/// the copy was never delivered.
inline SlotTime delivery_slot(SwitchModel& sw,
                              const std::vector<TraceRecord>& records,
                              SlotTime slots, PacketId packet, PortId output,
                              std::uint64_t seed = 7) {
  Rng rng(seed);
  PacketId next_id = 0;
  SlotResult result;
  for (SlotTime now = 0; now < slots; ++now) {
    for (const TraceRecord& record : records) {
      if (record.slot != now) continue;
      Packet p;
      p.id = next_id++;
      p.input = record.input;
      p.arrival = now;
      p.destinations = record.destinations;
      sw.inject(p);
    }
    result.clear();
    sw.step(now, rng, result);
    for (const Delivery& d : result.deliveries)
      if (d.packet == packet && d.output == output) return now;
  }
  return -1;
}

}  // namespace fifoms::test
