#include "fabric/segmentation.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/fifoms.hpp"
#include "sim/voq_switch.hpp"

namespace fifoms {
namespace {

TEST(Segmenter, CeilDivision) {
  Segmenter seg(64);
  EXPECT_EQ(seg.cells_for(0), 1);   // header-only frame
  EXPECT_EQ(seg.cells_for(1), 1);
  EXPECT_EQ(seg.cells_for(64), 1);
  EXPECT_EQ(seg.cells_for(65), 2);
  EXPECT_EQ(seg.cells_for(128), 2);
  EXPECT_EQ(seg.cells_for(1500), 24);
}

TEST(SegmenterDeath, BadPayloadRejected) {
  EXPECT_DEATH(Segmenter(0), "payload");
}

TEST(FrameTraffic, CellsEmittedBackToBack) {
  // frame_p = 1 at slot 0 only is hard to force; instead use p = 1 and
  // check the cell stream structure: every slot emits exactly one cell
  // and consecutive cells of one frame share destinations.
  FrameTraffic traffic(8, Segmenter(64), 1.0, 65, 65, 0.4);  // 2 cells/frame
  Rng rng(1);
  for (SlotTime t = 0; t < 200; ++t) {
    const PortSet dests = traffic.arrival(0, t, rng);
    ASSERT_FALSE(dests.empty());
    const Frame& frame = traffic.last_frame(0);
    EXPECT_EQ(frame.cells, 2);
    EXPECT_EQ(dests, frame.destinations);
    EXPECT_EQ(traffic.last_cell_index(0), static_cast<int>(t % 2));
  }
}

TEST(FrameTraffic, IngressQueueSerialisesFrames) {
  // With p = 1 and 3-cell frames, frames queue at the ingress and are
  // emitted strictly in order.
  FrameTraffic traffic(8, Segmenter(64), 1.0, 129, 129, 0.4);
  Rng rng(2);
  FrameId last = 0;
  for (SlotTime t = 0; t < 300; ++t) {
    (void)traffic.arrival(0, t, rng);
    const FrameId id = traffic.last_frame(0).id;
    EXPECT_GE(id, last);
    EXPECT_LE(id - last, 1u);
    last = id;
  }
}

TEST(FrameTraffic, MeanCellsPerFrame) {
  // Lengths uniform on [1, 128], payload 64: half need 1 cell, half 2.
  FrameTraffic traffic(8, Segmenter(64), 0.5, 1, 128, 0.4);
  EXPECT_NEAR(traffic.mean_cells_per_frame(), 1.5, 1e-12);
}

TEST(Reassembler, CompletesAtLastCell) {
  Frame frame;
  frame.id = 7;
  frame.created = 10;
  frame.cells = 3;
  frame.destinations = PortSet{2, 5};
  Reassembler reassembler;
  EXPECT_FALSE(reassembler.on_cell(frame, 2, 11).has_value());
  EXPECT_FALSE(reassembler.on_cell(frame, 2, 13).has_value());
  const auto done = reassembler.on_cell(frame, 2, 15);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->frame, 7u);
  EXPECT_EQ(done->output, 2);
  EXPECT_EQ(done->completed, 15);
  EXPECT_EQ(done->latency, 5);
  EXPECT_EQ(reassembler.incomplete(), 0u);
}

TEST(Reassembler, OutputsTrackedIndependently) {
  Frame frame;
  frame.id = 1;
  frame.created = 0;
  frame.cells = 2;
  frame.destinations = PortSet{0, 1};
  Reassembler reassembler;
  EXPECT_FALSE(reassembler.on_cell(frame, 0, 1).has_value());
  EXPECT_FALSE(reassembler.on_cell(frame, 1, 1).has_value());
  EXPECT_EQ(reassembler.incomplete(), 2u);
  EXPECT_TRUE(reassembler.on_cell(frame, 1, 2).has_value());
  EXPECT_TRUE(reassembler.on_cell(frame, 0, 3).has_value());
}

TEST(ReassemblerDeath, NonMemberOutputRejected) {
  Frame frame;
  frame.id = 1;
  frame.cells = 1;
  frame.destinations = PortSet{0};
  Reassembler reassembler;
  EXPECT_DEATH((void)reassembler.on_cell(frame, 3, 0), "non-member");
}

TEST(FrameTraffic, EndToEndThroughSwitchWithReassembly) {
  // Drive a FIFOMS switch with segmented frames at modest load and verify
  // every frame reassembles at every member output.
  const int ports = 4;
  FrameTraffic traffic(ports, Segmenter(64), 0.15, 1, 256, 0.3);
  VoqSwitch sw(ports, std::make_unique<FifomsScheduler>());
  Reassembler reassembler;
  Rng traffic_rng(3), sched_rng(4);

  // Map PacketId -> (frame id, is-last-cell irrelevant); packets carry no
  // frame info, so track it at injection time.
  std::map<PacketId, FrameId> packet_frame;
  PacketId next_id = 0;
  std::uint64_t completions = 0;
  std::uint64_t expected_completions = 0;
  SlotResult result;
  SlotTime now = 0;
  for (; now < 4000; ++now) {
    for (PortId input = 0; input < ports; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet{next_id, input, now, dests};
      packet_frame[next_id] = traffic.last_frame(input).id;
      ++next_id;
      sw.inject(packet);
    }
    result.clear();
    sw.step(now, sched_rng, result);
    for (const Delivery& d : result.deliveries) {
      const Frame& frame =
          traffic.frames()[static_cast<std::size_t>(packet_frame.at(d.packet))];
      if (reassembler.on_cell(frame, d.output, now)) ++completions;
    }
  }
  // Count the completions the finished frames imply (frames whose cells
  // all got injected AND delivered; approximate by delivered copies).
  for (const Frame& frame : traffic.frames())
    expected_completions += static_cast<std::uint64_t>(
        frame.destinations.count());
  EXPECT_GT(completions, 0u);
  // All but the in-flight tail should have completed.
  EXPECT_GE(completions + 200, expected_completions / 1);
  EXPECT_LE(completions, expected_completions);
}

}  // namespace
}  // namespace fifoms
