#include "fabric/single_fifo_input.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace fifoms {
namespace {

using test::make_packet;

TEST(SingleFifoInput, AcceptQueuesInOrder) {
  SingleFifoInput input(0);
  input.accept(make_packet(1, 0, 0, {0, 1}));
  input.accept(make_packet(2, 0, 1, {2}));
  EXPECT_EQ(input.queue_size(), 2u);
  EXPECT_EQ(input.hol().packet, 1u);
  EXPECT_EQ(input.hol().remaining, (PortSet{0, 1}));
  EXPECT_EQ(input.hol().initial_fanout, 2);
}

TEST(SingleFifoInput, PartialServiceLeavesResidue) {
  SingleFifoInput input(0);
  input.accept(make_packet(1, 0, 0, {0, 1, 2}));
  EXPECT_FALSE(input.serve_hol(PortSet{1}));
  EXPECT_EQ(input.hol().remaining, (PortSet{0, 2}));
  EXPECT_EQ(input.queue_size(), 1u);  // still at HOL
}

TEST(SingleFifoInput, FullServiceDeparts) {
  SingleFifoInput input(0);
  input.accept(make_packet(1, 0, 0, {0, 1}));
  input.accept(make_packet(2, 0, 1, {3}));
  EXPECT_TRUE(input.serve_hol(PortSet{0, 1}));
  EXPECT_EQ(input.queue_size(), 1u);
  EXPECT_EQ(input.hol().packet, 2u);
}

TEST(SingleFifoInput, SplitAcrossSlotsThenDepart) {
  SingleFifoInput input(0);
  input.accept(make_packet(1, 0, 0, {0, 1, 2}));
  EXPECT_FALSE(input.serve_hol(PortSet{0}));
  EXPECT_FALSE(input.serve_hol(PortSet{2}));
  EXPECT_TRUE(input.serve_hol(PortSet{1}));
  EXPECT_TRUE(input.empty());
}

TEST(SingleFifoInput, HolBlockingByConstruction) {
  // The second packet cannot be touched while the first has residue —
  // there is no API to reach past the head.
  SingleFifoInput input(0);
  input.accept(make_packet(1, 0, 0, {0}));
  input.accept(make_packet(2, 0, 1, {1}));
  EXPECT_EQ(input.hol().packet, 1u);
  input.serve_hol(PortSet{0});
  EXPECT_EQ(input.hol().packet, 2u);
}

TEST(SingleFifoInputDeath, ServingOutsideResiduePanics) {
  SingleFifoInput input(0);
  input.accept(make_packet(1, 0, 0, {0, 1}));
  EXPECT_DEATH((void)input.serve_hol(PortSet{2}), "not in the HOL");
  input.serve_hol(PortSet{0});
  EXPECT_DEATH((void)input.serve_hol(PortSet{0}), "not in the HOL");
}

TEST(SingleFifoInputDeath, EmptyServePanics) {
  SingleFifoInput input(0);
  EXPECT_DEATH((void)input.serve_hol(PortSet{0}), "empty input FIFO");
  input.accept(make_packet(1, 0, 0, {0}));
  EXPECT_DEATH((void)input.serve_hol(PortSet{}), "no outputs");
}

TEST(SingleFifoInputDeath, WrongInputRejected) {
  SingleFifoInput input(3);
  EXPECT_DEATH(input.accept(test::make_packet(1, 0, 0, {0})), "wrong input");
}

}  // namespace
}  // namespace fifoms
