#include "fabric/data_cell_pool.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace fifoms {
namespace {

using test::make_packet;

TEST(DataCellPool, AllocateInitialisesFromPacket) {
  DataCellPool pool;
  const Packet packet = make_packet(7, 0, 42, {1, 3, 5});
  const DataCellRef ref = pool.allocate(packet);
  ASSERT_TRUE(ref.valid());
  const DataCell& cell = pool.get(ref);
  EXPECT_EQ(cell.packet, 7u);
  EXPECT_EQ(cell.timestamp, 42);
  EXPECT_EQ(cell.fanout_counter, 3);
  EXPECT_EQ(cell.initial_fanout, 3);
  EXPECT_EQ(cell.payload_tag, packet.payload_tag());
  EXPECT_EQ(pool.live_count(), 1u);
}

TEST(DataCellPool, ReleaseCountsDownAndDestroysAtZero) {
  DataCellPool pool;
  const DataCellRef ref = pool.allocate(make_packet(1, 0, 0, {0, 1}));
  EXPECT_FALSE(pool.release_one(ref));
  EXPECT_TRUE(pool.is_live(ref));
  EXPECT_EQ(pool.get(ref).fanout_counter, 1);
  EXPECT_TRUE(pool.release_one(ref));
  EXPECT_FALSE(pool.is_live(ref));
  EXPECT_EQ(pool.live_count(), 0u);
}

TEST(DataCellPool, StaleHandleDetected) {
  DataCellPool pool;
  const DataCellRef ref = pool.allocate(make_packet(1, 0, 0, {0}));
  EXPECT_TRUE(pool.release_one(ref));
  EXPECT_DEATH((void)pool.get(ref), "stale data cell handle");
  EXPECT_DEATH((void)pool.release_one(ref), "stale data cell handle");
}

TEST(DataCellPool, SlotReuseBumpsGeneration) {
  DataCellPool pool;
  const DataCellRef first = pool.allocate(make_packet(1, 0, 0, {0}));
  EXPECT_TRUE(pool.release_one(first));
  const DataCellRef second = pool.allocate(make_packet(2, 0, 1, {0}));
  // Freed slot is recycled but with a new generation.
  EXPECT_EQ(second.index, first.index);
  EXPECT_NE(second.generation, first.generation);
  EXPECT_FALSE(pool.is_live(first));
  EXPECT_TRUE(pool.is_live(second));
  EXPECT_EQ(pool.get(second).packet, 2u);
}

TEST(DataCellPool, CapacityIsHighWaterMark) {
  DataCellPool pool;
  std::vector<DataCellRef> refs;
  for (PacketId id = 0; id < 10; ++id)
    refs.push_back(pool.allocate(make_packet(id, 0, 0, {0})));
  EXPECT_EQ(pool.capacity(), 10u);
  for (const DataCellRef& ref : refs) EXPECT_TRUE(pool.release_one(ref));
  EXPECT_EQ(pool.live_count(), 0u);
  EXPECT_EQ(pool.capacity(), 10u);  // slots retained for reuse
  for (PacketId id = 10; id < 20; ++id) pool.allocate(make_packet(id, 0, 0, {0}));
  EXPECT_EQ(pool.capacity(), 10u);  // reused, not grown
}

TEST(DataCellPool, InvalidHandleDetected) {
  DataCellPool pool;
  EXPECT_FALSE(pool.is_live(DataCellRef{}));
  EXPECT_DEATH((void)pool.get(DataCellRef{}), "invalid data cell handle");
  EXPECT_DEATH((void)pool.get(DataCellRef{99, 0}), "invalid data cell handle");
}

TEST(DataCellPool, ClearDropsEverything) {
  DataCellPool pool;
  pool.allocate(make_packet(1, 0, 0, {0, 1}));
  pool.clear();
  EXPECT_EQ(pool.live_count(), 0u);
  EXPECT_EQ(pool.capacity(), 0u);
}

TEST(DataCellPool, ManyInterleavedAllocReleaseStaysConsistent) {
  DataCellPool pool;
  Rng rng(17);
  std::vector<DataCellRef> live;
  PacketId next_id = 0;
  for (int step = 0; step < 20000; ++step) {
    if (live.empty() || rng.bernoulli(0.5)) {
      live.push_back(pool.allocate(make_packet(next_id++, 0, step, {0})));
    } else {
      const std::size_t pick = rng.next_below(live.size());
      EXPECT_TRUE(pool.release_one(live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(pool.live_count(), live.size());
    for (const DataCellRef& ref : live) ASSERT_TRUE(pool.is_live(ref));
  }
}

TEST(DataCellPoolDeath, ZeroFanoutPacketRejected) {
  DataCellPool pool;
  Packet packet = test::make_packet(1, 0, 0, {});
  EXPECT_DEATH((void)pool.allocate(packet), "at least one destination");
}

}  // namespace
}  // namespace fifoms
