#include "fabric/crossbar.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fifoms {
namespace {

TEST(Crossbar, StartsReleased) {
  Crossbar xbar(4, 4);
  for (PortId output = 0; output < 4; ++output)
    EXPECT_EQ(xbar.input_for_output(output), kNoPort);
  EXPECT_EQ(xbar.closed_crosspoints(), 0);
  EXPECT_EQ(xbar.active_inputs(), 0);
}

TEST(Crossbar, UnicastConfiguration) {
  Crossbar xbar(4, 4);
  std::vector<PortSet> config{PortSet{1}, PortSet{0}, PortSet{}, PortSet{3}};
  xbar.configure(config);
  EXPECT_EQ(xbar.input_for_output(1), 0);
  EXPECT_EQ(xbar.input_for_output(0), 1);
  EXPECT_EQ(xbar.input_for_output(2), kNoPort);
  EXPECT_EQ(xbar.input_for_output(3), 3);
  EXPECT_EQ(xbar.closed_crosspoints(), 3);
  EXPECT_EQ(xbar.active_inputs(), 3);
}

TEST(Crossbar, MulticastOneInputManyOutputs) {
  Crossbar xbar(4, 4);
  std::vector<PortSet> config{PortSet{0, 1, 2, 3}, PortSet{}, PortSet{},
                              PortSet{}};
  xbar.configure(config);
  for (PortId output = 0; output < 4; ++output)
    EXPECT_EQ(xbar.input_for_output(output), 0);
  EXPECT_EQ(xbar.outputs_for_input(0), PortSet::all(4));
  EXPECT_EQ(xbar.closed_crosspoints(), 4);
  EXPECT_EQ(xbar.active_inputs(), 1);
}

TEST(Crossbar, ReleaseClears) {
  Crossbar xbar(2, 2);
  std::vector<PortSet> config{PortSet{0}, PortSet{1}};
  xbar.configure(config);
  xbar.release();
  EXPECT_EQ(xbar.input_for_output(0), kNoPort);
  EXPECT_TRUE(xbar.outputs_for_input(0).empty());
}

TEST(Crossbar, ReconfigureReplacesPrevious) {
  Crossbar xbar(2, 2);
  std::vector<PortSet> first{PortSet{0}, PortSet{1}};
  xbar.configure(first);
  std::vector<PortSet> second{PortSet{1}, PortSet{0}};
  xbar.configure(second);
  EXPECT_EQ(xbar.input_for_output(1), 0);
  EXPECT_EQ(xbar.input_for_output(0), 1);
}

TEST(Crossbar, RectangularSwitchSupported) {
  Crossbar xbar(2, 5);
  std::vector<PortSet> config{PortSet{0, 4}, PortSet{2}};
  xbar.configure(config);
  EXPECT_EQ(xbar.input_for_output(4), 0);
  EXPECT_EQ(xbar.input_for_output(2), 1);
}

TEST(CrossbarDeath, OutputConflictPanics) {
  Crossbar xbar(2, 2);
  std::vector<PortSet> config{PortSet{0}, PortSet{0}};
  EXPECT_DEATH(xbar.configure(config), "two inputs driving the same output");
}

TEST(CrossbarDeath, WrongConfigSizePanics) {
  Crossbar xbar(2, 2);
  std::vector<PortSet> config{PortSet{0}};
  EXPECT_DEATH(xbar.configure(config), "one PortSet per input");
}

TEST(CrossbarDeath, OutputBeyondRangePanics) {
  Crossbar xbar(2, 2);
  std::vector<PortSet> config{PortSet{3}, PortSet{}};
  EXPECT_DEATH(xbar.configure(config), "beyond output range");
}

}  // namespace
}  // namespace fifoms
