#include "fabric/mc_voq_input.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace fifoms {
namespace {

using test::make_packet;

TEST(McVoqInput, AcceptCreatesOneAddressCellPerDestination) {
  McVoqInput input(0, 4);
  input.accept(make_packet(1, 0, 10, {0, 2, 3}));
  EXPECT_EQ(input.data_cell_count(), 1u);
  EXPECT_EQ(input.address_cell_count(), 3u);
  EXPECT_FALSE(input.voq_empty(0));
  EXPECT_TRUE(input.voq_empty(1));
  EXPECT_FALSE(input.voq_empty(2));
  EXPECT_FALSE(input.voq_empty(3));
}

TEST(McVoqInput, AddressCellsShareOneDataCell) {
  McVoqInput input(0, 4);
  input.accept(make_packet(1, 0, 10, {0, 1, 2}));
  const DataCellRef ref = input.hol(0).data;
  EXPECT_EQ(input.hol(1).data, ref);
  EXPECT_EQ(input.hol(2).data, ref);
  EXPECT_EQ(input.hol(0).timestamp, 10);
  EXPECT_EQ(input.data(ref).fanout_counter, 3);
}

TEST(McVoqInput, VoqsAreFifoByArrival) {
  McVoqInput input(0, 4);
  input.accept(make_packet(1, 0, 1, {2}));
  input.accept(make_packet(2, 0, 5, {2}));
  EXPECT_EQ(input.voq_size(2), 2u);
  EXPECT_EQ(input.hol(2).packet, 1u);
  input.serve_hol(2);
  EXPECT_EQ(input.hol(2).packet, 2u);
}

TEST(McVoqInput, ServeHolDecrementsFanoutAndDestroysAtZero) {
  McVoqInput input(0, 4);
  input.accept(make_packet(1, 0, 0, {0, 1}));
  const auto first = input.serve_hol(0);
  EXPECT_FALSE(first.data_cell_destroyed);
  EXPECT_EQ(input.data_cell_count(), 1u);
  const auto second = input.serve_hol(1);
  EXPECT_TRUE(second.data_cell_destroyed);
  EXPECT_EQ(input.data_cell_count(), 0u);
  EXPECT_EQ(input.address_cell_count(), 0u);
}

TEST(McVoqInput, ServedPayloadMatchesPacket) {
  McVoqInput input(0, 4);
  const Packet packet = make_packet(42, 0, 0, {1});
  input.accept(packet);
  const auto served = input.serve_hol(1);
  EXPECT_EQ(served.payload_tag, packet.payload_tag());
  EXPECT_EQ(served.cell.packet, 42u);
}

TEST(McVoqInput, OnlyOnePayloadCopyForMulticast) {
  // The whole point of the paper's structure: a fanout-k packet costs one
  // data cell, not k.
  McVoqInput input(0, 16);
  input.accept(make_packet(1, 0, 0,
                           {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                            15}));
  EXPECT_EQ(input.data_cell_count(), 1u);
  EXPECT_EQ(input.address_cell_count(), 16u);
}

TEST(McVoqInput, InterleavedPacketsKeepIndependentQueues) {
  McVoqInput input(0, 4);
  input.accept(make_packet(1, 0, 0, {0, 1}));
  input.accept(make_packet(2, 0, 1, {1, 2}));
  input.accept(make_packet(3, 0, 2, {0}));
  EXPECT_EQ(input.voq_size(0), 2u);
  EXPECT_EQ(input.voq_size(1), 2u);
  EXPECT_EQ(input.voq_size(2), 1u);
  EXPECT_EQ(input.data_cell_count(), 3u);

  // Serve packet 1 completely; packets 2 and 3 must be untouched.
  input.serve_hol(0);
  input.serve_hol(1);
  EXPECT_EQ(input.data_cell_count(), 2u);
  EXPECT_EQ(input.hol(0).packet, 3u);
  EXPECT_EQ(input.hol(1).packet, 2u);
}

TEST(McVoqInput, ClearResets) {
  McVoqInput input(0, 4);
  input.accept(make_packet(1, 0, 0, {0, 1}));
  input.clear();
  EXPECT_EQ(input.data_cell_count(), 0u);
  EXPECT_EQ(input.address_cell_count(), 0u);
  EXPECT_TRUE(input.voq_empty(0));
}

TEST(McVoqInput, OccupiedTracksAcceptAndServe) {
  McVoqInput input(0, 4);
  EXPECT_TRUE(input.occupied().empty());
  input.accept(make_packet(1, 0, 0, {0, 2}));
  EXPECT_EQ(input.occupied(), PortSet({0, 2}));
  input.serve_hol(0);
  EXPECT_EQ(input.occupied(), PortSet({2}));
  input.serve_hol(2);
  EXPECT_TRUE(input.occupied().empty());
}

TEST(McVoqInput, OccupiedConsistentAcrossClear) {
  McVoqInput input(0, 4);
  input.accept(make_packet(1, 0, 0, {0, 1, 3}));
  input.accept(make_packet(2, 0, 1, {1}));
  EXPECT_EQ(input.occupied(), PortSet({0, 1, 3}));
  input.clear();
  EXPECT_TRUE(input.occupied().empty());
  // The structure is fully reusable after clear(): occupied() keeps
  // tracking incrementally, not from stale state.
  input.accept(make_packet(3, 0, 5, {2}));
  EXPECT_EQ(input.occupied(), PortSet({2}));
  EXPECT_EQ(input.data_cell_count(), 1u);
}

TEST(McVoqInput, PurgeOutputDrainsVoqAndKeepsPoolConsistent) {
  McVoqInput input(0, 4);
  input.accept(make_packet(1, 0, 0, {1, 2}));
  input.accept(make_packet(2, 0, 1, {1}));
  std::vector<McVoqInput::Served> purged;
  input.purge_output(1, purged);
  ASSERT_EQ(purged.size(), 2u);
  EXPECT_EQ(purged[0].cell.packet, 1u);
  EXPECT_EQ(purged[1].cell.packet, 2u);
  // Packet 2's only copy was purged — its data cell must be gone; packet
  // 1 still owes output 2 a copy, so its data cell survives.
  EXPECT_FALSE(purged[0].data_cell_destroyed);
  EXPECT_TRUE(purged[1].data_cell_destroyed);
  EXPECT_EQ(input.data_cell_count(), 1u);
  EXPECT_EQ(input.occupied(), PortSet({2}));
  EXPECT_TRUE(input.voq_empty(1));
}

TEST(McVoqInput, PurgeEmptyOutputIsANoop) {
  McVoqInput input(0, 4);
  input.accept(make_packet(1, 0, 0, {3}));
  std::vector<McVoqInput::Served> purged;
  input.purge_output(0, purged);
  EXPECT_TRUE(purged.empty());
  EXPECT_EQ(input.occupied(), PortSet({3}));
}

TEST(McVoqInput, OccupiedConsistentThroughPurgeThenRefill) {
  // The stranded-cell purge path and the normal serve path must leave the
  // incremental occupied() set indistinguishable from a rebuilt one.
  McVoqInput input(0, 4);
  input.accept(make_packet(1, 0, 0, {0, 1, 2, 3}));
  std::vector<McVoqInput::Served> purged;
  input.purge_output(2, purged);
  input.serve_hol(0);
  EXPECT_EQ(input.occupied(), PortSet({1, 3}));
  input.accept(make_packet(2, 0, 1, {2}));
  EXPECT_EQ(input.occupied(), PortSet({1, 2, 3}));
  for (PortId output = 0; output < 4; ++output)
    EXPECT_EQ(input.occupied().contains(output), !input.voq_empty(output));
}

/// The plane invariant: element o equals hol(o).weight when occupied,
/// kWeightInfinity otherwise, and the padding tail stays at infinity.
void expect_plane_consistent(const McVoqInput& input) {
  const auto plane = input.hol_weights();
  ASSERT_EQ(plane.size() % 64, 0u);
  ASSERT_GE(plane.size(), static_cast<std::size_t>(input.num_outputs()));
  for (PortId o = 0; o < input.num_outputs(); ++o) {
    if (input.voq_empty(o)) {
      EXPECT_EQ(plane[static_cast<std::size_t>(o)], kWeightInfinity)
          << "output " << o;
    } else {
      EXPECT_EQ(plane[static_cast<std::size_t>(o)], input.hol(o).weight)
          << "output " << o;
    }
  }
  for (std::size_t o = static_cast<std::size_t>(input.num_outputs());
       o < plane.size(); ++o)
    EXPECT_EQ(plane[o], kWeightInfinity) << "padding entry " << o;

  // The fabric-maintained minimum/carrier mask must match a fresh
  // reduction over the plane — the scheduler fast path trusts them.
  std::uint64_t min = kWeightInfinity;
  PortSet carriers;
  for (PortId o = 0; o < input.num_outputs(); ++o) {
    const std::uint64_t w = plane[static_cast<std::size_t>(o)];
    if (w < min) {
      min = w;
      carriers = PortSet::single(o);
    } else if (w == min && w != kWeightInfinity) {
      carriers.insert(o);
    }
  }
  EXPECT_EQ(input.hol_min_weight(), min);
  EXPECT_EQ(input.hol_min_outputs(), carriers);
}

TEST(McVoqInput, WeightPlaneTracksAcceptAndServe) {
  McVoqInput input(0, 4);
  expect_plane_consistent(input);
  input.accept(make_packet(1, 0, 3, {0, 2}));
  input.accept(make_packet(2, 0, 7, {2, 3}));
  expect_plane_consistent(input);
  EXPECT_EQ(input.hol_weights()[2], scheduling_weight(0, 3));
  input.serve_hol(2);  // next cell in VOQ 2 becomes HOL
  expect_plane_consistent(input);
  EXPECT_EQ(input.hol_weights()[2], scheduling_weight(0, 7));
  input.serve_hol(2);  // VOQ 2 drains to empty
  expect_plane_consistent(input);
  EXPECT_EQ(input.hol_weights()[2], kWeightInfinity);
}

TEST(McVoqInput, WeightPlaneTracksPurgeClearAndInject) {
  McVoqInput input(0, 70);  // spans two plane words
  input.accept(make_packet(1, 0, 0, {0, 63, 64, 69}));
  input.accept(make_packet(2, 0, 1, {63}));
  expect_plane_consistent(input);
  std::vector<McVoqInput::Served> purged;
  input.purge_output(63, purged);
  expect_plane_consistent(input);
  EXPECT_EQ(input.hol_weights()[63], kWeightInfinity);
  input.clear();
  expect_plane_consistent(input);
  std::vector<Packet> packets = {make_packet(3, 0, 2, {1, 69}),
                                 make_packet(4, 0, 5, {69})};
  input.inject_queue_state(packets);
  expect_plane_consistent(input);
  EXPECT_EQ(input.hol_weights()[69], scheduling_weight(0, 2));
}

TEST(McVoqInput, WeightPlaneWithPriorityClasses) {
  // A higher-priority (lower class) arrival must lower the plane entry
  // even when the lower-priority class already has queued cells; serving
  // it must restore the lower-priority front.
  McVoqInput input(0, 4, /*num_classes=*/2);
  Packet low = make_packet(1, 0, 1, {2});
  low.priority = 1;
  input.accept(low);
  expect_plane_consistent(input);
  EXPECT_EQ(input.hol_weights()[2], scheduling_weight(1, 1));
  Packet high = make_packet(2, 0, 4, {2});
  high.priority = 0;
  input.accept(high);
  expect_plane_consistent(input);
  EXPECT_EQ(input.hol_weights()[2], scheduling_weight(0, 4));
  input.serve_hol(2);
  expect_plane_consistent(input);
  EXPECT_EQ(input.hol_weights()[2], scheduling_weight(1, 1));
}

TEST(McVoqInput, HolMinTracksFanoutServiceAndRecompute) {
  McVoqInput input(0, 70);  // spans two plane words
  // The oldest packet fans out across both words; a younger one shares
  // VOQ 1 and adds VOQ 5.
  input.accept(make_packet(1, 0, 0, {1, 64, 69}));
  input.accept(make_packet(2, 0, 1, {1, 5}));
  EXPECT_EQ(input.hol_min_weight(), scheduling_weight(0, 0));
  EXPECT_EQ(input.hol_min_outputs(), PortSet({1, 64, 69}));
  expect_plane_consistent(input);
  // Serving part of the fanout only shrinks the carrier mask.
  input.serve_hol(64);
  EXPECT_EQ(input.hol_min_weight(), scheduling_weight(0, 0));
  EXPECT_EQ(input.hol_min_outputs(), PortSet({1, 69}));
  // VOQ 1's entry rises to the younger cell when the old HOL leaves.
  input.serve_hol(1);
  EXPECT_EQ(input.hol_min_outputs(), PortSet({69}));
  expect_plane_consistent(input);
  // The last carrier leaves: the minimum is recomputed from the plane.
  input.serve_hol(69);
  EXPECT_EQ(input.hol_min_weight(), scheduling_weight(0, 1));
  EXPECT_EQ(input.hol_min_outputs(), PortSet({1, 5}));
  expect_plane_consistent(input);
  // Drain everything: back to infinity / empty mask.
  input.serve_hol(1);
  input.serve_hol(5);
  EXPECT_EQ(input.hol_min_weight(), kWeightInfinity);
  EXPECT_TRUE(input.hol_min_outputs().empty());
  expect_plane_consistent(input);
}

TEST(McVoqInputDeath, WrongInputRejected) {
  McVoqInput input(0, 4);
  EXPECT_DEATH(input.accept(test::make_packet(1, 2, 0, {0})),
               "wrong input");
}

TEST(McVoqInputDeath, ServeEmptyVoqPanics) {
  McVoqInput input(0, 4);
  EXPECT_DEATH((void)input.serve_hol(0), "empty VOQ");
}

TEST(McVoqInputDeath, DestinationBeyondRadixPanics) {
  McVoqInput input(0, 4);
  EXPECT_DEATH(input.accept(test::make_packet(1, 0, 0, {5})),
               "beyond switch radix");
}

}  // namespace
}  // namespace fifoms
