#include "core/fifoms.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace fifoms {
namespace {

using test::make_packet;

/// Build N McVoqInput ports for an N-output switch.
std::vector<McVoqInput> make_ports(int n) {
  std::vector<McVoqInput> ports;
  ports.reserve(static_cast<std::size_t>(n));
  for (PortId p = 0; p < n; ++p) ports.emplace_back(p, n);
  return ports;
}

SlotMatching schedule(FifomsScheduler& sched, std::vector<McVoqInput>& ports,
                      SlotTime now = 100, std::uint64_t seed = 1) {
  SlotMatching matching(static_cast<int>(ports.size()),
                        static_cast<int>(ports.size()));
  Rng rng(seed);
  sched.schedule(ports, now, matching, rng);
  matching.validate();
  return matching;
}

TEST(Fifoms, EmptySwitchSchedulesNothing) {
  auto ports = make_ports(4);
  FifomsScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.matched_pairs(), 0);
  EXPECT_EQ(m.rounds, 0);
}

TEST(Fifoms, LoneMulticastPacketGetsAllOutputsInOneRound) {
  auto ports = make_ports(4);
  ports[1].accept(make_packet(1, 1, 5, {0, 2, 3}));
  FifomsScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.grants(1), (PortSet{0, 2, 3}));
  EXPECT_EQ(m.matched_pairs(), 3);
  EXPECT_EQ(m.rounds, 1);
}

TEST(Fifoms, EarlierTimestampWinsContention) {
  auto ports = make_ports(4);
  ports[0].accept(make_packet(1, 0, 3, {2}));
  ports[1].accept(make_packet(2, 1, 7, {2}));
  FifomsScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.source(2), 0);  // older packet wins
  EXPECT_FALSE(m.input_matched(1));
  EXPECT_EQ(m.matched_pairs(), 1);
}

TEST(Fifoms, LowestInputTieBreakIsDeterministic) {
  FifomsOptions options;
  options.tie_break = TieBreak::kLowestInput;
  FifomsScheduler sched(options);
  sched.reset(4, 4);
  auto ports = make_ports(4);
  ports[2].accept(make_packet(1, 2, 5, {0}));
  ports[3].accept(make_packet(2, 3, 5, {0}));
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.source(0), 2);
}

TEST(Fifoms, RandomTieBreakPicksBothSidesOverSeeds) {
  FifomsScheduler sched;
  bool saw_two = false, saw_three = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    auto ports = make_ports(4);
    ports[2].accept(make_packet(1, 2, 5, {0}));
    ports[3].accept(make_packet(2, 3, 5, {0}));
    sched.reset(4, 4);
    const SlotMatching m = schedule(sched, ports, 100, seed);
    saw_two |= m.source(0) == 2;
    saw_three |= m.source(0) == 3;
  }
  EXPECT_TRUE(saw_two);
  EXPECT_TRUE(saw_three);
}

TEST(Fifoms, FanoutSplittingWhenOneOutputLost) {
  // Input 0 has the older packet at output 1; input 1's multicast {0,1}
  // wins only output 0 and leaves its residue for later slots.
  auto ports = make_ports(4);
  ports[0].accept(make_packet(1, 0, 1, {1}));
  ports[1].accept(make_packet(2, 1, 2, {0, 1}));
  FifomsScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.source(1), 0);
  EXPECT_EQ(m.source(0), 1);
  EXPECT_EQ(m.grants(1), (PortSet{0}));  // split: output 1 lost
  // The losing address cell is still queued at HOL of VOQ(1, 1).
  EXPECT_FALSE(ports[1].voq_empty(1));
  EXPECT_EQ(ports[1].hol(1).packet, 2u);
}

TEST(Fifoms, SecondRoundMatchesFreedPair) {
  // Input 1 loses output 0 to input 0 in round 1, then matches its later
  // packet at output 1 in round 2.
  auto ports = make_ports(4);
  ports[0].accept(make_packet(1, 0, 1, {0}));
  ports[1].accept(make_packet(2, 1, 2, {0}));
  ports[1].accept(make_packet(3, 1, 3, {1}));
  FifomsScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.source(0), 0);
  EXPECT_EQ(m.source(1), 1);
  EXPECT_EQ(m.rounds, 2);
}

TEST(Fifoms, MatchedInputStopsRequesting) {
  // Once input 0's packet (ts 1) wins output 0, its later packet (ts 2)
  // must NOT be scheduled at output 1 in the same slot — one data cell per
  // input per slot.
  auto ports = make_ports(4);
  ports[0].accept(make_packet(1, 0, 1, {0}));
  ports[0].accept(make_packet(2, 0, 2, {1}));
  FifomsScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.source(0), 0);
  EXPECT_EQ(m.source(1), kNoPort);
  EXPECT_EQ(m.matched_pairs(), 1);
}

TEST(Fifoms, ConvergedMatchingIsMaximal) {
  // After convergence no (free input with a cell for a free output) pair
  // may remain — the do/while in Table 2 runs until no pairs match.
  auto ports = make_ports(8);
  Rng traffic_rng(77);
  PacketId id = 0;
  for (PortId input = 0; input < 8; ++input) {
    for (SlotTime t = 0; t < 3; ++t) {
      PortSet dests;
      for (PortId out = 0; out < 8; ++out)
        if (traffic_rng.bernoulli(0.3)) dests.insert(out);
      if (dests.empty()) continue;
      Packet p;
      p.id = id++;
      p.input = input;
      p.arrival = t;
      p.destinations = dests;
      ports[static_cast<std::size_t>(input)].accept(p);
    }
  }
  FifomsScheduler sched;
  sched.reset(8, 8);
  const SlotMatching m = schedule(sched, ports);
  for (PortId input = 0; input < 8; ++input) {
    if (m.input_matched(input)) continue;
    for (PortId output = 0; output < 8; ++output) {
      if (m.output_matched(output)) continue;
      EXPECT_TRUE(ports[static_cast<std::size_t>(input)].voq_empty(output))
          << "free pair (" << input << "," << output
          << ") with a queued cell after convergence";
    }
  }
}

TEST(Fifoms, ConvergesWithinNRounds) {
  // Worst case: every grant round matches at least one output.
  auto ports = make_ports(8);
  PacketId id = 0;
  // Adversarial staircase: input i has packets to outputs {i, i+1, ..., 7}
  // with strictly increasing priority by input.
  for (PortId input = 0; input < 8; ++input) {
    for (PortId output = input; output < 8; ++output) {
      Packet p;
      p.id = id++;
      p.input = input;
      p.arrival = input * 10 + output;  // unique timestamps
      p.destinations = PortSet::single(output);
      ports[static_cast<std::size_t>(input)].accept(p);
    }
  }
  FifomsScheduler sched;
  sched.reset(8, 8);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_LE(m.rounds, 8);
  EXPECT_GE(m.matched_pairs(), 1);
}

TEST(Fifoms, MaxRoundsCapRespected) {
  FifomsOptions options;
  options.max_rounds = 1;
  FifomsScheduler sched(options);
  sched.reset(4, 4);
  auto ports = make_ports(4);
  ports[0].accept(make_packet(1, 0, 1, {0}));
  ports[1].accept(make_packet(2, 1, 2, {0}));
  ports[1].accept(make_packet(3, 1, 3, {1}));
  const SlotMatching m = schedule(sched, ports);
  // Round 2 (input 1 -> output 1) must not have happened.
  EXPECT_EQ(m.rounds, 1);
  EXPECT_EQ(m.source(0), 0);
  EXPECT_EQ(m.source(1), kNoPort);
}

TEST(Fifoms, RecomputesEarliestAfterOutputsFill) {
  // Input 0's earliest packet targets output 0 only.  When output 0 is
  // taken by an older competitor, input 0's *next* earliest eligible cell
  // (a later packet to output 1) requests in round 2 — the request step
  // re-evaluates the smallest time stamp among free outputs each round.
  auto ports = make_ports(4);
  ports[1].accept(make_packet(1, 1, 0, {0}));   // oldest, wins output 0
  ports[0].accept(make_packet(2, 0, 1, {0}));   // loses output 0
  ports[0].accept(make_packet(3, 0, 2, {1}));   // should win output 1
  FifomsScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.source(0), 1);
  EXPECT_EQ(m.source(1), 0);
  EXPECT_EQ(m.grants(0), (PortSet{1}));
}

TEST(FifomsNoSplit, AllOrNothing) {
  // Input 1's multicast {0,1} conflicts with input 0 at output 1: under
  // no-splitting it must transmit nothing, even though output 0 is free.
  FifomsNoSplitScheduler sched;
  sched.reset(4, 4);
  auto ports = make_ports(4);
  ports[0].accept(make_packet(1, 0, 1, {1}));
  ports[1].accept(make_packet(2, 1, 2, {0, 1}));
  SlotMatching m(4, 4);
  Rng rng(1);
  sched.schedule(ports, 100, m, rng);
  m.validate();
  EXPECT_EQ(m.source(1), 0);
  EXPECT_FALSE(m.input_matched(1));
  EXPECT_EQ(m.matched_pairs(), 1);
}

TEST(FifomsNoSplit, GrantsFullFanoutWhenFree) {
  FifomsNoSplitScheduler sched;
  sched.reset(4, 4);
  auto ports = make_ports(4);
  ports[2].accept(make_packet(1, 2, 1, {0, 1, 3}));
  SlotMatching m(4, 4);
  Rng rng(1);
  sched.schedule(ports, 100, m, rng);
  EXPECT_EQ(m.grants(2), (PortSet{0, 1, 3}));
}

TEST(FifomsNoSplit, TimestampOrderAcrossInputs) {
  FifomsNoSplitScheduler sched;
  sched.reset(4, 4);
  auto ports = make_ports(4);
  ports[0].accept(make_packet(1, 0, 5, {0, 1}));
  ports[1].accept(make_packet(2, 1, 3, {1, 2}));  // older, goes first
  SlotMatching m(4, 4);
  Rng rng(1);
  sched.schedule(ports, 100, m, rng);
  EXPECT_EQ(m.grants(1), (PortSet{1, 2}));
  EXPECT_FALSE(m.input_matched(0));  // output 1 already taken
}

TEST(Fifoms, NameAndOptionsExposed) {
  FifomsOptions options;
  options.max_rounds = 3;
  FifomsScheduler sched(options);
  EXPECT_EQ(sched.name(), "FIFOMS");
  EXPECT_EQ(sched.options().max_rounds, 3);
  FifomsNoSplitScheduler nosplit;
  EXPECT_EQ(nosplit.name(), "FIFOMS-nosplit");
}

}  // namespace
}  // namespace fifoms
