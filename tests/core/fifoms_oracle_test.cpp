// Differential test of FifomsScheduler against an independent oracle.
//
// The oracle re-implements the paper's Table 2 pseudocode as literally as
// possible on naive data structures (vectors of queued packets, O(N^3)
// scans, no incremental state).  Any divergence between the optimised
// production scheduler and this transliteration — over thousands of
// random slots, port counts and loads — is a bug in one of them.  The
// deterministic lowest-input tie-break is used on both sides so the
// comparison is exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "core/fifoms.hpp"
#include "test_util.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

constexpr SlotTime kInf = std::numeric_limits<SlotTime>::max();

/// Naive transliteration of the paper's queue structure: each VOQ is a
/// deque of (timestamp, packet id); the data buffer is implicit.
struct OracleState {
  struct Cell {
    SlotTime timestamp;
    PacketId packet;
  };
  // voqs[input][output]
  std::vector<std::vector<std::deque<Cell>>> voqs;

  explicit OracleState(int n)
      : voqs(static_cast<std::size_t>(n),
             std::vector<std::deque<Cell>>(static_cast<std::size_t>(n))) {}

  void accept(const Packet& packet) {
    for (PortId output : packet.destinations)
      voqs[static_cast<std::size_t>(packet.input)]
          [static_cast<std::size_t>(output)]
              .push_back({packet.arrival, packet.id});
  }
};

/// Literal Table 2: do { request; grant; } while (any pair matched).
struct OracleMatch {
  std::vector<PortId> output_source;  // per output, kNoPort if idle
  int rounds = 0;
};

OracleMatch oracle_schedule(const OracleState& state, int n) {
  OracleMatch result;
  result.output_source.assign(static_cast<std::size_t>(n), kNoPort);
  std::vector<bool> input_busy(static_cast<std::size_t>(n), false);

  while (true) {
    // Request step.
    struct Request {
      PortId input;
      SlotTime timestamp;
    };
    std::vector<std::vector<Request>> requests(static_cast<std::size_t>(n));
    bool any_request = false;
    for (PortId input = 0; input < n; ++input) {
      if (input_busy[static_cast<std::size_t>(input)]) continue;
      SlotTime smallest = kInf;
      for (PortId output = 0; output < n; ++output) {
        if (result.output_source[static_cast<std::size_t>(output)] != kNoPort)
          continue;
        const auto& queue = state.voqs[static_cast<std::size_t>(input)]
                                      [static_cast<std::size_t>(output)];
        if (!queue.empty())
          smallest = std::min(smallest, queue.front().timestamp);
      }
      if (smallest == kInf) continue;
      for (PortId output = 0; output < n; ++output) {
        if (result.output_source[static_cast<std::size_t>(output)] != kNoPort)
          continue;
        const auto& queue = state.voqs[static_cast<std::size_t>(input)]
                                      [static_cast<std::size_t>(output)];
        if (!queue.empty() && queue.front().timestamp == smallest) {
          requests[static_cast<std::size_t>(output)].push_back(
              {input, smallest});
          any_request = true;
        }
      }
    }
    if (!any_request) break;
    ++result.rounds;

    // Grant step (lowest-input tie-break).
    for (PortId output = 0; output < n; ++output) {
      const auto& queue = requests[static_cast<std::size_t>(output)];
      if (queue.empty()) continue;
      const auto best = std::min_element(
          queue.begin(), queue.end(), [](const Request& a, const Request& b) {
            if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
            return a.input < b.input;
          });
      result.output_source[static_cast<std::size_t>(output)] = best->input;
      input_busy[static_cast<std::size_t>(best->input)] = true;
    }
  }
  return result;
}

struct OracleParam {
  int ports;
  double p;
  double b;
  std::uint64_t seed;
};

class FifomsOracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(FifomsOracleTest, MatchesLiteralPseudocode) {
  const OracleParam param = GetParam();
  const int n = param.ports;

  // Production side.
  std::vector<McVoqInput> ports;
  for (PortId p = 0; p < n; ++p) ports.emplace_back(p, n);
  FifomsOptions options;
  options.tie_break = TieBreak::kLowestInput;
  FifomsScheduler scheduler(options);
  scheduler.reset(n, n);

  // Oracle side.
  OracleState oracle(n);

  BernoulliTraffic traffic(n, param.p, param.b);
  Rng traffic_rng(param.seed);
  Rng sched_rng(1);  // unused by the deterministic tie-break, but required
  PacketId next_id = 0;

  for (SlotTime now = 0; now < 400; ++now) {
    for (PortId input = 0; input < n; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      const Packet packet{next_id++, input, now, dests};
      ports[static_cast<std::size_t>(input)].accept(packet);
      oracle.accept(packet);
    }

    SlotMatching matching(n, n);
    scheduler.schedule(ports, now, matching, sched_rng);
    matching.validate();
    const OracleMatch expected = oracle_schedule(oracle, n);

    ASSERT_EQ(matching.rounds, expected.rounds) << "slot " << now;
    for (PortId output = 0; output < n; ++output) {
      ASSERT_EQ(matching.source(output),
                expected.output_source[static_cast<std::size_t>(output)])
          << "slot " << now << " output " << output;
    }

    // Apply the (identical) matching to both states.
    for (PortId output = 0; output < n; ++output) {
      const PortId input = matching.source(output);
      if (input == kNoPort) continue;
      ports[static_cast<std::size_t>(input)].serve_hol(output);
      oracle.voqs[static_cast<std::size_t>(input)]
                 [static_cast<std::size_t>(output)]
                     .pop_front();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FifomsOracleTest,
    ::testing::Values(OracleParam{2, 0.9, 0.9, 11}, OracleParam{3, 0.7, 0.5, 12},
                      OracleParam{4, 0.5, 0.4, 13}, OracleParam{6, 0.4, 0.3, 14},
                      OracleParam{8, 0.3, 0.25, 15},
                      OracleParam{8, 0.95, 0.4, 16}),
    [](const ::testing::TestParamInfo<OracleParam>& info) {
      std::string name = "N";
      name += std::to_string(info.param.ports);
      name += "_seed";
      name += std::to_string(info.param.seed);
      return name;
    });

}  // namespace
}  // namespace fifoms
