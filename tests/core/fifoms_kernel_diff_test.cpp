// Differential test: the weight-plane FIFOMS kernel against the
// ring-probing reference implementation.  The two must be bit-identical
// on every observable — matchings, round counts, and RNG draw sequences —
// across switch sizes, tie-break policies and fault constraints; the
// golden regression suite, the sweep byte-identity guarantee and the
// hw/sw equivalence verifier all assume it.
#include "core/fifoms.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "fabric/mc_voq_input.hpp"

namespace fifoms {
namespace {

std::vector<McVoqInput> random_state(Rng& rng, int ports, int max_packets) {
  std::vector<McVoqInput> inputs;
  inputs.reserve(static_cast<std::size_t>(ports));
  for (PortId i = 0; i < ports; ++i) {
    inputs.emplace_back(i, ports);
    std::vector<Packet> packets;
    const int count =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
            max_packets + 1)));
    SlotTime arrival = 0;
    for (int k = 0; k < count; ++k) {
      arrival += 1 + static_cast<SlotTime>(rng.next_below(3));
      Packet packet;
      packet.id = static_cast<PacketId>(i * 4096 + k + 1);
      packet.input = i;
      packet.arrival = arrival;
      // Mixed fanouts: mostly small, occasionally broadcast-ish.
      const int fanout =
          1 + static_cast<int>(rng.next_below(
                  rng.next_below(8) == 0
                      ? static_cast<std::uint64_t>(ports)
                      : 3));
      PortSet dests;
      for (int f = 0; f < fanout; ++f)
        dests.insert(static_cast<PortId>(rng.next_below(
            static_cast<std::uint64_t>(ports))));
      packet.destinations = dests;
      packets.push_back(packet);
    }
    inputs.back().inject_queue_state(packets);
  }
  return inputs;
}

ScheduleConstraints random_constraints(Rng& rng, int ports,
                                       std::vector<PortSet>& link_storage) {
  ScheduleConstraints constraints;
  const auto n = static_cast<std::uint64_t>(ports);
  // ~1/8 of ports down on each side, plus a sparse dead-crosspoint matrix.
  for (PortId p = 0; p < ports; ++p) {
    if (rng.next_below(8) == 0) constraints.failed_inputs.insert(p);
    if (rng.next_below(8) == 0) constraints.failed_outputs.insert(p);
  }
  link_storage.assign(static_cast<std::size_t>(ports), PortSet{});
  for (PortId i = 0; i < ports; ++i)
    for (int k = 0; k < 2; ++k)
      if (rng.next_below(4) == 0)
        link_storage[static_cast<std::size_t>(i)].insert(
            static_cast<PortId>(rng.next_below(n)));
  constraints.failed_links = link_storage;
  return constraints;
}

/// Run both implementations over several slots of the same evolving
/// state, asserting identical matchings, rounds and RNG consumption.
void expect_bit_identical(int ports, FifomsOptions options,
                          const ScheduleConstraints& constraints,
                          std::uint64_t seed) {
  Rng state_rng(seed);
  std::vector<McVoqInput> inputs = random_state(state_rng, ports, 4);

  FifomsScheduler kernel(options);
  FifomsReferenceScheduler reference(options);
  kernel.reset(ports, ports);
  reference.reset(ports, ports);

  Rng kernel_rng(seed + 1);
  Rng reference_rng(seed + 1);
  for (SlotTime slot = 0; slot < 6; ++slot) {
    SlotMatching kernel_matching(ports, ports);
    SlotMatching reference_matching(ports, ports);
    kernel.schedule(inputs, slot, kernel_matching, kernel_rng, constraints);
    reference.schedule(inputs, slot, reference_matching, reference_rng,
                       constraints);

    ASSERT_EQ(kernel_matching.rounds, reference_matching.rounds)
        << "ports=" << ports << " slot=" << slot;
    for (PortId output = 0; output < ports; ++output)
      ASSERT_EQ(kernel_matching.source(output),
                reference_matching.source(output))
          << "ports=" << ports << " slot=" << slot << " output=" << output;
    // Same number of RNG draws: the streams must still be in lockstep.
    ASSERT_EQ(kernel_rng.next_u64(), reference_rng.next_u64())
        << "RNG streams diverged at ports=" << ports << " slot=" << slot;

    // Serve the matching so later slots exercise the incremental plane
    // updates (serve_hol) rather than only freshly injected state.
    for (PortId output = 0; output < ports; ++output) {
      const PortId input = kernel_matching.source(output);
      if (input != kNoPort)
        inputs[static_cast<std::size_t>(input)].serve_hol(output);
    }
  }
}

TEST(FifomsKernelDiff, FaultFreeAllSizesBothTieBreaks) {
  for (const int ports : {2, 3, 8, 16, 64, 100, 128, 256}) {
    for (const TieBreak tie_break :
         {TieBreak::kRandom, TieBreak::kLowestInput}) {
      for (std::uint64_t trial = 0; trial < 3; ++trial) {
        expect_bit_identical(
            ports, FifomsOptions{.max_rounds = 0, .tie_break = tie_break},
            ScheduleConstraints{},
            0x9000 + static_cast<std::uint64_t>(ports) * 17 + trial);
      }
    }
  }
}

TEST(FifomsKernelDiff, BoundedRounds) {
  for (const int max_rounds : {1, 2, 3}) {
    expect_bit_identical(
        64,
        FifomsOptions{.max_rounds = max_rounds,
                      .tie_break = TieBreak::kRandom},
        ScheduleConstraints{},
        0xb000 + static_cast<std::uint64_t>(max_rounds));
  }
}

TEST(FifomsKernelDiff, FaultConstraintsAllSizesBothTieBreaks) {
  for (const int ports : {3, 8, 16, 64, 128, 256}) {
    for (const TieBreak tie_break :
         {TieBreak::kRandom, TieBreak::kLowestInput}) {
      for (std::uint64_t trial = 0; trial < 3; ++trial) {
        const std::uint64_t seed =
            0xf000 + static_cast<std::uint64_t>(ports) * 31 + trial;
        Rng fault_rng(seed);
        std::vector<PortSet> link_storage;
        const ScheduleConstraints constraints =
            random_constraints(fault_rng, ports, link_storage);
        expect_bit_identical(
            ports, FifomsOptions{.max_rounds = 0, .tie_break = tie_break},
            constraints, seed);
      }
    }
  }
}

TEST(FifomsKernelDiff, DenseBacklogHitsCacheReuse) {
  // Every input holds a broadcast packet: rounds run to convergence and
  // the surviving inputs' cached request masks are revalidated (not
  // recomputed) every round — the cache fast path must stay identical.
  const int ports = 64;
  std::vector<McVoqInput> inputs;
  for (PortId i = 0; i < ports; ++i) {
    inputs.emplace_back(i, ports);
    std::vector<Packet> packets;
    for (int k = 0; k < 2; ++k) {
      Packet packet;
      packet.id = static_cast<PacketId>(i * 8 + k + 1);
      packet.input = i;
      packet.arrival = k + 1;
      packet.destinations = PortSet::all(ports);
      packets.push_back(packet);
    }
    inputs.back().inject_queue_state(packets);
  }

  for (const TieBreak tie_break :
       {TieBreak::kRandom, TieBreak::kLowestInput}) {
    const FifomsOptions options{.max_rounds = 0, .tie_break = tie_break};
    FifomsScheduler kernel(options);
    FifomsReferenceScheduler reference(options);
    kernel.reset(ports, ports);
    reference.reset(ports, ports);
    Rng rng_a(7), rng_b(7);
    SlotMatching ma(ports, ports), mb(ports, ports);
    kernel.schedule(inputs, 0, ma, rng_a, ScheduleConstraints{});
    reference.schedule(inputs, 0, mb, rng_b, ScheduleConstraints{});
    ASSERT_EQ(ma.rounds, mb.rounds);
    for (PortId output = 0; output < ports; ++output)
      ASSERT_EQ(ma.source(output), mb.source(output));
    ASSERT_EQ(rng_a.next_u64(), rng_b.next_u64());
  }
}

}  // namespace
}  // namespace fifoms
