#include "core/matching.hpp"

#include <gtest/gtest.h>

namespace fifoms {
namespace {

TEST(SlotMatching, ResetDimensions) {
  SlotMatching m(4, 6);
  EXPECT_EQ(m.num_inputs(), 4);
  EXPECT_EQ(m.num_outputs(), 6);
  EXPECT_EQ(m.matched_pairs(), 0);
  for (PortId output = 0; output < 6; ++output)
    EXPECT_FALSE(m.output_matched(output));
  for (PortId input = 0; input < 4; ++input)
    EXPECT_FALSE(m.input_matched(input));
}

TEST(SlotMatching, AddMatchUpdatesBothViews) {
  SlotMatching m(4, 4);
  m.add_match(2, 3);
  EXPECT_TRUE(m.output_matched(3));
  EXPECT_TRUE(m.input_matched(2));
  EXPECT_EQ(m.source(3), 2);
  EXPECT_TRUE(m.grants(2).contains(3));
  EXPECT_EQ(m.matched_pairs(), 1);
  EXPECT_EQ(m.matched_inputs(), 1);
  m.validate();
}

TEST(SlotMatching, MulticastGrantsSameInput) {
  SlotMatching m(4, 4);
  m.add_match(1, 0);
  m.add_match(1, 2);
  m.add_match(1, 3);
  EXPECT_EQ(m.matched_pairs(), 3);
  EXPECT_EQ(m.matched_inputs(), 1);
  EXPECT_EQ(m.grants(1), (PortSet{0, 2, 3}));
  m.validate();
}

TEST(SlotMatching, ResetClearsPreviousSlot) {
  SlotMatching m(2, 2);
  m.add_match(0, 0);
  m.rounds = 3;
  m.reset(2, 2);
  EXPECT_EQ(m.matched_pairs(), 0);
  EXPECT_EQ(m.rounds, 0);
  EXPECT_FALSE(m.output_matched(0));
}

TEST(SlotMatching, InputGrantSetsExposeAllInputs) {
  SlotMatching m(3, 3);
  m.add_match(0, 1);
  m.add_match(2, 0);
  const auto& sets = m.input_grant_sets();
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], (PortSet{1}));
  EXPECT_TRUE(sets[1].empty());
  EXPECT_EQ(sets[2], (PortSet{0}));
}

TEST(SlotMatchingDeath, DoubleGrantPanics) {
  SlotMatching m(2, 2);
  m.add_match(0, 1);
  EXPECT_DEATH(m.add_match(1, 1), "granted twice");
}

TEST(SlotMatchingDeath, OutOfRangePanics) {
  SlotMatching m(2, 2);
  EXPECT_DEATH(m.add_match(2, 0), "input out of range");
  EXPECT_DEATH(m.add_match(0, 5), "output out of range");
  EXPECT_DEATH((void)m.source(-1), "output out of range");
}

}  // namespace
}  // namespace fifoms
