// Property-based sweeps of FIFOMS on the VOQ switch: structural
// invariants that must hold for every port count, load and seed.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "core/fifoms.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

struct SweepParam {
  int ports;
  double p;  // arrival probability
  double b;  // per-output destination probability
  std::uint64_t seed;
};

class FifomsPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FifomsPropertyTest, StructuralInvariantsHold) {
  const SweepParam param = GetParam();
  VoqSwitch sw(param.ports, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(param.ports, param.p, param.b);
  Rng traffic_rng(param.seed);
  Rng sched_rng(param.seed ^ 0xabcdefULL);

  std::uint64_t copies_injected = 0;
  std::uint64_t copies_delivered = 0;
  PacketId next_id = 0;
  // Last delivered arrival-timestamp per (input, output): FIFO witness.
  std::map<std::pair<PortId, PortId>, SlotTime> last_timestamp;

  const SlotTime horizon = 400;
  SlotResult result;
  for (SlotTime now = 0; now < horizon; ++now) {
    for (PortId input = 0; input < param.ports; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      sw.inject(packet);
      copies_injected += static_cast<std::uint64_t>(dests.count());
    }

    result.clear();
    sw.step(now, sched_rng, result);

    // Convergence bound: at most N productive rounds per slot.
    ASSERT_LE(result.rounds, param.ports);

    PortSet outputs_seen;
    std::map<PortId, std::uint64_t> input_payload;
    for (const Delivery& d : result.deliveries) {
      ++copies_delivered;
      // Each output receives at most one copy per slot.
      ASSERT_FALSE(outputs_seen.contains(d.output));
      outputs_seen.insert(d.output);
      // One payload per input per slot (single data cell).
      const auto [it, inserted] =
          input_payload.emplace(d.input, d.payload_tag);
      if (!inserted) {
        ASSERT_EQ(it->second, d.payload_tag);
      }
      // Causality.
      ASSERT_LE(d.arrival, now);
      // Per-VOQ FIFO: arrival stamps non-decreasing per (input, output).
      auto& last = last_timestamp[{d.input, d.output}];
      ASSERT_GE(d.arrival, last);
      last = d.arrival;
    }
  }

  // Conservation: everything injected is delivered or still queued.
  std::uint64_t still_queued = 0;
  for (PortId input = 0; input < param.ports; ++input)
    still_queued += sw.input(input).address_cell_count();
  EXPECT_EQ(copies_injected, copies_delivered + still_queued);
}

TEST_P(FifomsPropertyTest, DrainsCompletelyAfterArrivalsStop) {
  // Starvation freedom in its bluntest observable form: once arrivals
  // stop, every queued cell is delivered within (backlog) extra slots.
  const SweepParam param = GetParam();
  VoqSwitch sw(param.ports, std::make_unique<FifomsScheduler>());
  BernoulliTraffic traffic(param.ports, param.p, param.b);
  Rng traffic_rng(param.seed + 1);
  Rng sched_rng(param.seed + 2);

  PacketId next_id = 0;
  SlotResult result;
  SlotTime now = 0;
  for (; now < 200; ++now) {
    for (PortId input = 0; input < param.ports; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      sw.inject(packet);
    }
    result.clear();
    sw.step(now, sched_rng, result);
  }

  const std::size_t backlog = sw.total_buffered();
  // Each slot with backlog must deliver at least one copy (maximality), so
  // total address cells bound the drain time.
  std::size_t address_cells = 0;
  for (PortId input = 0; input < param.ports; ++input)
    address_cells += sw.input(input).address_cell_count();
  const SlotTime deadline = now + static_cast<SlotTime>(address_cells) + 1;
  for (; now < deadline && sw.total_buffered() > 0; ++now) {
    result.clear();
    sw.step(now, sched_rng, result);
    // Work conservation while draining: backlog implies progress (the
    // converged matching is maximal, so at least one copy moves).
    ASSERT_FALSE(result.deliveries.empty());
  }
  EXPECT_EQ(sw.total_buffered(), 0u) << "backlog " << backlog
                                     << " failed to drain";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FifomsPropertyTest,
    ::testing::Values(
        SweepParam{2, 0.5, 0.5, 1}, SweepParam{2, 0.9, 0.9, 2},
        SweepParam{4, 0.3, 0.25, 3}, SweepParam{4, 0.8, 0.5, 4},
        SweepParam{8, 0.2, 0.2, 5}, SweepParam{8, 0.6, 0.4, 6},
        SweepParam{16, 0.15, 0.2, 7}, SweepParam{16, 0.5, 0.3, 8},
        SweepParam{16, 0.9, 0.1, 9}, SweepParam{32, 0.3, 0.1, 10},
        SweepParam{3, 1.0, 1.0, 11}, SweepParam{16, 1.0, 0.05, 12}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = "N";
      name += std::to_string(info.param.ports);
      name += "_seed";
      name += std::to_string(info.param.seed);
      return name;
    });

// The same invariants must hold for the no-splitting ablation variant.
class NoSplitPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(NoSplitPropertyTest, GrantsAreAlwaysFullResidues) {
  const SweepParam param = GetParam();
  VoqSwitch sw(param.ports, std::make_unique<FifomsNoSplitScheduler>());
  BernoulliTraffic traffic(param.ports, param.p, param.b);
  Rng traffic_rng(param.seed);
  Rng sched_rng(param.seed ^ 0x5a5a5aULL);

  PacketId next_id = 0;
  std::map<PacketId, int> pending;  // remaining copies per packet
  SlotResult result;
  for (SlotTime now = 0; now < 300; ++now) {
    for (PortId input = 0; input < param.ports; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      sw.inject(packet);
      pending[packet.id] = dests.count();
    }
    result.clear();
    sw.step(now, sched_rng, result);
    // No splitting: a packet's copies all depart in one slot.
    std::map<PacketId, int> this_slot;
    for (const Delivery& d : result.deliveries) ++this_slot[d.packet];
    for (const auto& [packet, copies] : this_slot) {
      ASSERT_EQ(copies, pending.at(packet))
          << "packet " << packet << " was split";
      pending.erase(packet);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NoSplitPropertyTest,
    ::testing::Values(SweepParam{4, 0.5, 0.5, 21}, SweepParam{8, 0.4, 0.3, 22},
                      SweepParam{16, 0.3, 0.2, 23}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = "N";
      name += std::to_string(info.param.ports);
      name += "_seed";
      name += std::to_string(info.param.seed);
      return name;
    });

}  // namespace
}  // namespace fifoms
