// RecoveryRunner semantics (docs/RECOVERY.md): periodic checkpoints,
// resume-from-newest-good, torn-file fallback, clean-shutdown parking,
// bounded retry with from-scratch restart, and quarantine when the
// budget runs dry — all against the bit-identity contract: whatever
// path recovery takes, a completed run's words equal the uninterrupted
// golden run's.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "snapshot/observers.hpp"
#include "snapshot/recovery.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/snapshot_io.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms::snapshot {
namespace {

namespace fs = std::filesystem;

constexpr int kPorts = 4;
constexpr SlotTime kSlots = 600;
constexpr std::uint64_t kSeed = 31;

fs::path temp_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

SimConfig make_config() {
  SimConfig config;
  config.total_slots = kSlots;
  config.warmup_fraction = 0.25;
  config.seed = kSeed;
  return config;
}

/// Fresh models + simulator + digest observer for one run.
struct Stack {
  std::unique_ptr<SwitchModel> sw = make_fifoms().make(kPorts);
  std::unique_ptr<TrafficModel> traffic = std::make_unique<BernoulliTraffic>(
      kPorts, BernoulliTraffic::p_for_load(0.6, 0.3, kPorts), 0.3);
  DigestObserver digest;
  Simulator sim{*sw, *traffic, make_config()};

  Stack() { sim.set_observer(&digest); }
};

/// Observer that throws (an exception, not a panic) at a chosen slot;
/// `times` bounds how often, so a transient flake stops flaking.
struct FlakyObserver final : SlotObserver {
  SlotTime at = -1;
  int times = 1;
  int thrown = 0;
  SlotObserver* inner = nullptr;

  void on_inject(const SwitchModel& sw, const Packet& packet) override {
    if (inner != nullptr) inner->on_inject(sw, packet);
  }
  void on_fault_event(SlotTime now, const SwitchModel& sw,
                      const fault::FaultEvent& event) override {
    if (inner != nullptr) inner->on_fault_event(now, sw, event);
  }
  void on_slot(SlotTime now, const SwitchModel& sw,
               const SlotResult& result) override {
    if (inner != nullptr) inner->on_slot(now, sw, result);
    if (now == at && thrown < times) {
      ++thrown;
      throw std::runtime_error("injected step failure at slot " +
                               std::to_string(now));
    }
  }
  void save_state(Writer& out) const override {
    if (inner != nullptr) inner->save_state(out);
  }
  void load_state(Reader& in) override {
    if (inner != nullptr) inner->load_state(in);
  }
};

SimResult golden_run() {
  Stack stack;
  return stack.sim.run();
}

void expect_result_eq(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.total_slots, b.total_slots);
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.copies_delivered, b.copies_delivered);
  EXPECT_EQ(a.copies_purged, b.copies_purged);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.output_delay.raw_state().mean, b.output_delay.raw_state().mean);
  EXPECT_EQ(a.output_delay.raw_state().m2, b.output_delay.raw_state().m2);
}

TEST(RecoveryRunner, FreshRunCompletesAndRotatesCheckpoints) {
  const fs::path dir = temp_dir("rec_fresh");
  Stack stack;
  RecoveryOptions options;
  options.checkpoint_every = 100;
  options.dir = dir.string();
  options.keep = 2;
  std::vector<std::uint64_t> epochs_seen;
  options.on_checkpoint = [&](std::uint64_t epoch, std::size_t bytes) {
    epochs_seen.push_back(epoch);
    EXPECT_GT(bytes, 0u);
  };
  RecoveryRunner runner(stack.sim, std::move(options));
  const RecoveryReport report = runner.run();

  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.resumed);
  EXPECT_FALSE(report.quarantined);
  EXPECT_EQ(report.restarts, 0);
  EXPECT_EQ(report.checkpoints_written, 6u);  // 100, 200, ..., 600
  EXPECT_EQ(report.last_checkpoint_slot, 600);
  EXPECT_EQ(epochs_seen,
            (std::vector<std::uint64_t>{100, 200, 300, 400, 500, 600}));
  // keep=2: only the newest two survive on disk.
  EXPECT_EQ(runner.store().epochs_on_disk(),
            (std::vector<std::uint64_t>{500, 600}));
  expect_result_eq(report.result, golden_run());
}

TEST(RecoveryRunner, StopRequestParksACheckpointAndResumeFinishes) {
  const fs::path dir = temp_dir("rec_stop");

  // Phase 1: a clean shutdown at slot 250 (between the periodic marks).
  {
    Stack stack;
    RecoveryOptions options;
    options.checkpoint_every = 100;
    options.dir = dir.string();
    options.stop_requested = [&] { return stack.sim.now() >= 250; };
    RecoveryRunner runner(stack.sim, std::move(options));
    const RecoveryReport report = runner.run();
    EXPECT_FALSE(report.completed);
    EXPECT_FALSE(report.quarantined);
    EXPECT_EQ(report.last_checkpoint_slot, 250);  // parked at the stop slot
  }

  // Phase 2: a fresh process resumes from the parked checkpoint.
  {
    Stack stack;
    RecoveryOptions options;
    options.checkpoint_every = 100;
    options.dir = dir.string();
    options.resume = true;
    RecoveryRunner runner(stack.sim, std::move(options));
    const RecoveryReport report = runner.run();
    EXPECT_TRUE(report.completed);
    EXPECT_TRUE(report.resumed);
    EXPECT_EQ(report.resumed_from_slot, 250);
    expect_result_eq(report.result, golden_run());
    EXPECT_EQ(stack.digest.digest(), [] {
      Stack golden;
      golden.sim.prepare();
      while (!golden.sim.done()) golden.sim.step();
      (void)golden.sim.finalize();
      return golden.digest.digest();
    }());
  }
}

TEST(RecoveryRunner, TornNewestCheckpointFallsBackToPreviousGood) {
  const fs::path dir = temp_dir("rec_torn");
  {
    Stack stack;
    RecoveryOptions options;
    options.checkpoint_every = 100;
    options.dir = dir.string();
    options.keep = 3;
    options.stop_requested = [&] { return stack.sim.now() >= 300; };
    RecoveryRunner(stack.sim, std::move(options)).run();
  }
  // Tear the newest checkpoint (epoch 300) down to half its bytes.
  {
    CheckpointStore probe(dir, "run", 0, 3);
    const auto epochs = probe.epochs_on_disk();
    ASSERT_FALSE(epochs.empty());
    const fs::path newest = probe.path_for(epochs.back());
    const auto bytes = read_file(newest);
    write_file_atomic(newest, std::span(bytes).first(bytes.size() / 2));
  }
  Stack stack;
  RecoveryOptions options;
  options.checkpoint_every = 100;
  options.dir = dir.string();
  options.resume = true;
  RecoveryRunner runner(stack.sim, std::move(options));
  const RecoveryReport report = runner.run();
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.resumed_from_slot, 200);  // 300 is torn; 200 is good
  ASSERT_FALSE(report.rejected_files.empty());
  EXPECT_NE(report.rejected_files.front().find("run.300"), std::string::npos)
      << report.rejected_files.front();
  expect_result_eq(report.result, golden_run());
}

TEST(RecoveryRunner, TransientFailureRewindsToCheckpointAndCompletes) {
  const fs::path dir = temp_dir("rec_flake");
  Stack stack;
  FlakyObserver flaky;
  flaky.at = 320;  // after the slot-300 checkpoint
  flaky.inner = &stack.digest;
  stack.sim.set_observer(&flaky);

  RecoveryOptions options;
  options.checkpoint_every = 100;
  options.dir = dir.string();
  options.max_retries = 2;
  RecoveryRunner runner(stack.sim, std::move(options));
  const RecoveryReport report = runner.run();

  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.quarantined);
  EXPECT_EQ(report.restarts, 1);
  EXPECT_NE(report.error.find("slot 320"), std::string::npos);
  // The rewind replayed slots 300..320; the result must still equal the
  // failure-free golden run (the replay is bit-identical, and the digest
  // chain was restored from the checkpoint, not double-counted).
  SimResult golden;
  {
    Stack g;
    FlakyObserver never;  // identical chain shape, no failure
    never.inner = &g.digest;
    g.sim.set_observer(&never);
    golden = g.sim.run();
  }
  expect_result_eq(report.result, golden);
}

TEST(RecoveryRunner, RestartWithoutCheckpointsScrubsTheSwitch) {
  // No checkpoints at all (checkpoint_every = 0): recovery must restart
  // from scratch on a CLEARED switch, or the second attempt would run on
  // the first attempt's leftover queues and diverge.
  Stack stack;
  FlakyObserver flaky;
  flaky.at = 200;
  flaky.inner = &stack.digest;
  stack.sim.set_observer(&flaky);

  RecoveryOptions options;
  options.checkpoint_every = 0;
  options.dir = temp_dir("rec_scratch").string();
  options.max_retries = 1;
  RecoveryRunner runner(stack.sim, std::move(options));
  const RecoveryReport report = runner.run();

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.restarts, 1);
  EXPECT_EQ(report.checkpoints_written, 0u);
  SimResult golden;
  {
    Stack g;
    FlakyObserver never;
    never.inner = &g.digest;
    g.sim.set_observer(&never);
    golden = g.sim.run();
  }
  expect_result_eq(report.result, golden);
}

TEST(RecoveryRunner, DeterministicFailureExhaustsRetriesAndQuarantines) {
  const fs::path dir = temp_dir("rec_quarantine");
  Stack stack;
  FlakyObserver broken;
  broken.at = 150;
  broken.times = 1'000'000;  // every attempt fails
  broken.inner = &stack.digest;
  stack.sim.set_observer(&broken);

  RecoveryOptions options;
  options.checkpoint_every = 100;
  options.dir = dir.string();
  options.max_retries = 2;
  RecoveryRunner runner(stack.sim, std::move(options));
  const RecoveryReport report = runner.run();

  EXPECT_FALSE(report.completed);
  EXPECT_TRUE(report.quarantined);
  EXPECT_EQ(report.restarts, 2);  // budget spent, never rethrown
  EXPECT_NE(report.error.find("slot 150"), std::string::npos);
}

TEST(RecoveryRunner, ResumeOffIgnoresExistingCheckpoints) {
  const fs::path dir = temp_dir("rec_noresume");
  {
    Stack stack;
    RecoveryOptions options;
    options.checkpoint_every = 100;
    options.dir = dir.string();
    options.stop_requested = [&] { return stack.sim.now() >= 200; };
    RecoveryRunner(stack.sim, std::move(options)).run();
  }
  Stack stack;
  RecoveryOptions options;
  options.checkpoint_every = 100;
  options.dir = dir.string();
  options.resume = false;
  RecoveryRunner runner(stack.sim, std::move(options));
  const RecoveryReport report = runner.run();
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.resumed);
  expect_result_eq(report.result, golden_run());
}

}  // namespace
}  // namespace fifoms::snapshot
