// Snapshot codec, frame and checkpoint-store tests (docs/RECOVERY.md):
// primitive round-trips, every rejection path of decode_frame (magic,
// version, torn length, CRC, fingerprint), the atomic-write protocol's
// read-back, CheckpointStore rotation with torn-file fallback and the
// monotonic-epoch refusal, and the replay-bundle round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "snapshot/bundle.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/snapshot_io.hpp"

namespace fifoms::snapshot {
namespace {

namespace fs = std::filesystem;

fs::path temp_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

std::vector<std::uint8_t> sample_payload() {
  Writer writer;
  writer.u8(0xab);
  writer.u32(0xdeadbeef);
  writer.u64(0x0123456789abcdefULL);
  writer.i64(-17);
  writer.i32(-4);
  writer.f64(3.25);
  writer.boolean(true);
  writer.str("fifoms");
  writer.port_set(PortSet({0, 3, 7}));
  return writer.take();
}

TEST(SnapshotCodec, PrimitivesRoundTrip) {
  const std::vector<std::uint8_t> bytes = sample_payload();
  Reader reader(bytes);
  EXPECT_EQ(reader.u8(), 0xab);
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.i64(), -17);
  EXPECT_EQ(reader.i32(), -4);
  EXPECT_EQ(reader.f64(), 3.25);
  EXPECT_TRUE(reader.boolean());
  EXPECT_EQ(reader.str(), "fifoms");
  EXPECT_EQ(reader.port_set(), PortSet({0, 3, 7}));
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_NO_THROW(reader.expect_end());
}

TEST(SnapshotCodec, F64RoundTripsExactBits) {
  // The codec bit_casts doubles: NaN payloads, -0.0 and denormals must
  // survive exactly (restored stats are bit-identical, not just close).
  for (const std::uint64_t bits :
       {std::uint64_t{0x8000000000000000ULL},   // -0.0
        std::uint64_t{0x7ff8000000000dedULL},   // NaN with payload
        std::uint64_t{0x0000000000000001ULL},   // smallest denormal
        std::uint64_t{0x7fefffffffffffffULL}})  // largest finite
  {
    Writer writer;
    writer.f64(std::bit_cast<double>(bits));
    const auto bytes = writer.take();
    Reader reader(bytes);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(reader.f64()), bits);
  }
}

TEST(SnapshotCodec, ReaderUnderrunThrowsCleanly) {
  Writer writer;
  writer.u32(7);
  const auto bytes = writer.take();
  Reader reader(bytes);
  (void)reader.u32();
  EXPECT_THROW(reader.u8(), SnapshotError);
  Reader truncated(std::span<const std::uint8_t>(bytes).first(2));
  EXPECT_THROW(truncated.u32(), SnapshotError);
}

TEST(SnapshotCodec, TrailingGarbageRejects) {
  Writer writer;
  writer.u8(1);
  writer.u8(2);
  const auto bytes = writer.take();
  Reader reader(bytes);
  (void)reader.u8();
  EXPECT_THROW(reader.expect_end(), SnapshotError);
}

TEST(SnapshotCodec, LengthGuardsAgainstWildAllocations) {
  Writer writer;
  writer.u64(1'000'000);
  const auto bytes = writer.take();
  Reader generous(bytes);
  EXPECT_EQ(generous.length(2'000'000), 1'000'000u);
  Reader strict(bytes);
  EXPECT_THROW(strict.length(1000), SnapshotError);
}

TEST(SnapshotCodec, SnapshotErrorIsAFaultError) {
  // The whole recovery path rides the fault-path exception discipline
  // (tools/analyzer): SnapshotError must be catchable as FaultError.
  static_assert(std::is_base_of_v<fault::FaultError, SnapshotError>);
  try {
    throw SnapshotError("torn");
  } catch (const fault::FaultError& e) {
    EXPECT_STREQ(e.what(), "torn");
  }
}

TEST(SnapshotFrame, EncodeDecodeRoundTrip) {
  const auto payload = sample_payload();
  const auto bytes = encode_frame(payload, /*epoch=*/42, /*fingerprint=*/7);
  const Frame frame = decode_frame(bytes);
  EXPECT_EQ(frame.version, kFormatVersion);
  EXPECT_EQ(frame.epoch, 42u);
  EXPECT_EQ(frame.fingerprint, 7u);
  ASSERT_EQ(frame.payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         frame.payload.begin()));
  EXPECT_NO_THROW(decode_frame(bytes, /*expected_fingerprint=*/7));
  EXPECT_THROW(decode_frame(bytes, /*expected_fingerprint=*/8),
               SnapshotError);
}

TEST(SnapshotFrame, EmptyPayloadFramesCleanly) {
  const auto bytes = encode_frame({}, 0, 0);
  const Frame frame = decode_frame(bytes);
  EXPECT_EQ(frame.payload.size(), 0u);
}

TEST(SnapshotFrame, RejectsBadMagic) {
  auto bytes = encode_frame(sample_payload(), 1, 1);
  bytes[0] ^= 0xff;
  EXPECT_THROW(decode_frame(bytes), SnapshotError);
}

TEST(SnapshotFrame, RejectsUnknownVersion) {
  // An engine must refuse frames from ANY other format version — newer
  // or older — rather than misparse them (the versioning policy).
  auto bytes = encode_frame(sample_payload(), 1, 1);
  bytes[4] ^= 0x01;  // version word follows the 4-byte magic
  EXPECT_THROW(decode_frame(bytes), SnapshotError);
}

TEST(SnapshotFrame, RejectsTornFile) {
  const auto bytes = encode_frame(sample_payload(), 1, 1);
  // Every proper prefix is a torn write; all must reject, none may read
  // out of bounds.
  for (std::size_t keep = 0; keep < bytes.size(); ++keep)
    EXPECT_THROW(decode_frame(std::span(bytes).first(keep)), SnapshotError)
        << "prefix of " << keep << " bytes decoded";
}

TEST(SnapshotFrame, RejectsEverySingleByteCorruption) {
  const auto pristine = encode_frame(sample_payload(), 3, 9);
  for (std::size_t at = 0; at < pristine.size(); ++at) {
    auto bytes = pristine;
    bytes[at] ^= 0x5a;
    // Flips inside the epoch/fingerprint words still decode (they are
    // header metadata, not payload) — but then the fingerprint check or
    // the store's epoch/filename cross-check catches them.  Everything
    // else must throw.
    try {
      const Frame frame = decode_frame(bytes, /*expected_fingerprint=*/9);
      EXPECT_GE(at, 8u) << "corrupt magic/version byte decoded";
      EXPECT_LT(at, 16u) << "corrupt length/CRC/payload byte decoded";
      EXPECT_NE(frame.epoch, 3u);  // the flip landed in the epoch word
    } catch (const SnapshotError&) {
    }
  }
}

TEST(SnapshotIo, AtomicWriteReadBack) {
  const fs::path dir = temp_dir("snap_io");
  fs::create_directories(dir);
  const fs::path path = dir / "blob.bin";
  const auto payload = sample_payload();
  write_file_atomic(path, payload);
  EXPECT_EQ(read_file(path), payload);
  // Overwrite in place: the rename replaces the old content atomically.
  const std::vector<std::uint8_t> next{1, 2, 3};
  write_file_atomic(path, next);
  EXPECT_EQ(read_file(path), next);
  EXPECT_THROW(read_file(dir / "missing.bin"), SnapshotError);
}

TEST(CheckpointStore, SavePruneAndLoadLatest) {
  const fs::path dir = temp_dir("snap_store");
  CheckpointStore store(dir, "run", /*fingerprint=*/0xf00d, /*keep=*/2);
  const auto payload = sample_payload();
  store.save(100, payload);
  store.save(200, payload);
  store.save(300, payload);
  // keep=2: epoch 100 was pruned.
  EXPECT_EQ(store.epochs_on_disk(), (std::vector<std::uint64_t>{200, 300}));
  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 300u);
  EXPECT_EQ(loaded->payload, payload);
  EXPECT_TRUE(loaded->rejected.empty());
}

TEST(CheckpointStore, RefusesNonMonotonicEpochs) {
  const fs::path dir = temp_dir("snap_epochs");
  CheckpointStore store(dir, "run", 1, 2);
  const auto payload = sample_payload();
  store.save(50, payload);
  EXPECT_THROW(store.save(50, payload), SnapshotError);
  EXPECT_THROW(store.save(49, payload), SnapshotError);
  EXPECT_NO_THROW(store.save(51, payload));
}

TEST(CheckpointStore, TornNewestFallsBackToPreviousGood) {
  const fs::path dir = temp_dir("snap_torn");
  CheckpointStore store(dir, "run", 1, 3);
  const auto payload = sample_payload();
  store.save(10, payload);
  const fs::path newest = store.save(20, payload);

  // Tear the newest file: keep half its bytes, as a crash between write
  // and fsync would.
  const auto full = read_file(newest);
  write_file_atomic(newest,
                    std::span(full).first(full.size() / 2));

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 10u);
  EXPECT_EQ(loaded->payload, payload);
  ASSERT_FALSE(loaded->rejected.empty());
  EXPECT_NE(loaded->rejected.front().find("run.20"), std::string::npos)
      << loaded->rejected.front();
}

TEST(CheckpointStore, CorruptPayloadByteFallsBack) {
  const fs::path dir = temp_dir("snap_corrupt");
  CheckpointStore store(dir, "run", 1, 3);
  const auto payload = sample_payload();
  store.save(5, payload);
  const fs::path newest = store.save(6, payload);
  auto bytes = read_file(newest);
  bytes.back() ^= 0x01;  // flip one payload byte: CRC must catch it
  write_file_atomic(newest, bytes);

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 5u);
  EXPECT_FALSE(loaded->rejected.empty());
}

TEST(CheckpointStore, FingerprintMismatchIsSkipped) {
  const fs::path dir = temp_dir("snap_fp");
  const auto payload = sample_payload();
  {
    CheckpointStore other(dir, "run", /*fingerprint=*/111, 3);
    other.save(40, payload);
  }
  CheckpointStore store(dir, "run", /*fingerprint=*/222, 3);
  store.save(30, payload);  // ours, but an older epoch
  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 30u);  // 40 belongs to a different run config
  EXPECT_FALSE(loaded->rejected.empty());
}

TEST(CheckpointStore, EmptyDirectoryLoadsNothing) {
  const fs::path dir = temp_dir("snap_empty");
  CheckpointStore store(dir, "run", 1, 2);
  EXPECT_FALSE(store.load_latest().has_value());
  EXPECT_TRUE(store.epochs_on_disk().empty());
}

TEST(ReplayBundle, WriteReadRoundTrip) {
  const fs::path dir = temp_dir("snap_bundle");
  ReplayBundle bundle;
  bundle.manifest = {{"scenario", "fault-storm/burst-0.8"},
                     {"policy", "purge"},
                     {"seed", "42"}};
  bundle.checkpoint = encode_frame(sample_payload(), 7, 1);
  bundle.trace = {"inject slot=1 packet=0 input=2 dests=0+1",
                  "deliver slot=3 packet=0 output=1"};
  write_bundle(dir, bundle);

  const ReplayBundle loaded = read_bundle(dir);
  EXPECT_EQ(loaded.manifest, bundle.manifest);
  EXPECT_EQ(loaded.checkpoint, bundle.checkpoint);
  EXPECT_EQ(loaded.trace, bundle.trace);
  EXPECT_EQ(loaded.value_or("policy", "hold"), "purge");
  EXPECT_EQ(loaded.value_or("missing", "fallback"), "fallback");
}

TEST(ReplayBundle, MissingCheckpointIsValid) {
  // A defect can fire before the first checkpoint: the bundle then has
  // no .ckpt and replay starts from slot 0.
  const fs::path dir = temp_dir("snap_bundle_nockpt");
  ReplayBundle bundle;
  bundle.manifest = {{"scenario", "rolling-flaps/bern-0.9"}};
  write_bundle(dir, bundle);
  const ReplayBundle loaded = read_bundle(dir);
  EXPECT_TRUE(loaded.checkpoint.empty());
  EXPECT_EQ(loaded.manifest, bundle.manifest);
}

TEST(ReplayBundle, MissingDirectoryThrows) {
  EXPECT_THROW(read_bundle(temp_dir("snap_bundle_missing")), SnapshotError);
}

}  // namespace
}  // namespace fifoms::snapshot
