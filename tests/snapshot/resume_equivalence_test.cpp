// Differential resume-equivalence suite (docs/RECOVERY.md): for EVERY
// switch-model factory, restore(snapshot(S)) resumed to the horizon must
// be bit-identical to running S straight — same SimResult words, same
// delivery-stream digest.  Three runs per scenario:
//
//   golden   fresh models, straight run
//   saver    fresh models, save_state at slot k, then continue (the save
//            itself must be non-invasive)
//   resumed  fresh models, load_state(saver's bytes), run to the end
//
// All three must agree exactly.  Scenarios cover bernoulli and burst
// traffic, checkpoints taken before and after the warm-up boundary, and
// mid-fault-storm saves under both stranded-cell policies with the full
// observer chain (auditor inside trace ring inside digest) serialised.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "analysis/auditor.hpp"
#include "core/fifoms.hpp"
#include "sim/experiment.hpp"
#include "sim/voq_switch.hpp"
#include "snapshot/observers.hpp"
#include "snapshot/snapshot.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/burst.hpp"

namespace fifoms {
namespace {

using SwitchBuilder = std::function<std::unique_ptr<SwitchModel>()>;
using TrafficBuilder = std::function<std::unique_ptr<TrafficModel>()>;

constexpr int kPorts = 8;
constexpr SlotTime kSlots = 360;
constexpr std::uint64_t kSeed = 2026;

SimConfig make_config(SlotTime slots, const fault::FaultPlan* plan) {
  SimConfig config;
  config.total_slots = slots;
  config.warmup_fraction = 0.25;
  config.seed = kSeed;
  config.fault_plan = plan;
  return config;
}

TrafficBuilder bernoulli_traffic(double load = 0.65) {
  return [load] {
    return std::make_unique<BernoulliTraffic>(
        kPorts, BernoulliTraffic::p_for_load(load, 0.3, kPorts), 0.3);
  };
}

TrafficBuilder burst_traffic(double load = 0.7) {
  return [load] {
    return std::make_unique<BurstTraffic>(
        kPorts, BurstTraffic::e_off_for_load(load, 16.0, 0.5, kPorts), 16.0,
        0.5);
  };
}

/// One simulation stack with the full recovery observer chain attached:
/// digest -> trace ring -> auditor, exactly the soak harness's shape.
struct Stack {
  std::unique_ptr<SwitchModel> sw;
  std::unique_ptr<TrafficModel> traffic;
  MatchingAuditor auditor;
  snapshot::TraceRingObserver trace{64, &auditor};
  snapshot::DigestObserver digest{&trace};
  std::unique_ptr<Simulator> sim;

  Stack(const SwitchBuilder& sb, const TrafficBuilder& tb,
        const SimConfig& config)
      : sw(sb()), traffic(tb()) {
    sim = std::make_unique<Simulator>(*sw, *traffic, config);
    sim->set_observer(&digest);
  }
};

struct RunOutput {
  SimResult result;
  std::uint64_t digest = 0;
};

void expect_stat_eq(const RunningStat& a, const RunningStat& b,
                    const char* what) {
  const auto ra = a.raw_state();
  const auto rb = b.raw_state();
  EXPECT_EQ(ra.count, rb.count) << what;
  EXPECT_EQ(ra.mean, rb.mean) << what;
  EXPECT_EQ(ra.m2, rb.m2) << what;
  EXPECT_EQ(ra.min, rb.min) << what;
  EXPECT_EQ(ra.max, rb.max) << what;
}

/// Word-exact equality: the contract is bit-identity, not closeness.
void expect_equivalent(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.digest, b.digest) << "delivery-stream digests diverged";
  EXPECT_EQ(a.result.algorithm, b.result.algorithm);
  EXPECT_EQ(a.result.traffic, b.result.traffic);
  EXPECT_EQ(a.result.total_slots, b.result.total_slots);
  EXPECT_EQ(a.result.warmup_end, b.result.warmup_end);
  EXPECT_EQ(a.result.unstable, b.result.unstable);
  EXPECT_EQ(a.result.unstable_at, b.result.unstable_at);
  expect_stat_eq(a.result.input_delay, b.result.input_delay, "input_delay");
  expect_stat_eq(a.result.output_delay, b.result.output_delay,
                 "output_delay");
  EXPECT_EQ(a.result.output_delay_p99, b.result.output_delay_p99);
  ASSERT_EQ(a.result.class_output_delays.size(),
            b.result.class_output_delays.size());
  for (std::size_t i = 0; i < a.result.class_output_delays.size(); ++i)
    expect_stat_eq(a.result.class_output_delays[i],
                   b.result.class_output_delays[i], "class_output_delay");
  expect_stat_eq(a.result.queue_mean, b.result.queue_mean, "queue_mean");
  EXPECT_EQ(a.result.queue_max, b.result.queue_max);
  expect_stat_eq(a.result.rounds_all, b.result.rounds_all, "rounds_all");
  expect_stat_eq(a.result.rounds_busy, b.result.rounds_busy, "rounds_busy");
  EXPECT_EQ(a.result.packets_offered, b.result.packets_offered);
  EXPECT_EQ(a.result.packets_delivered, b.result.packets_delivered);
  EXPECT_EQ(a.result.copies_offered, b.result.copies_offered);
  EXPECT_EQ(a.result.copies_delivered, b.result.copies_delivered);
  EXPECT_EQ(a.result.packets_dropped, b.result.packets_dropped);
  EXPECT_EQ(a.result.packets_suppressed, b.result.packets_suppressed);
  EXPECT_EQ(a.result.copies_purged, b.result.copies_purged);
  EXPECT_EQ(a.result.fault_events_applied, b.result.fault_events_applied);
  EXPECT_EQ(a.result.in_flight_at_end, b.result.in_flight_at_end);
  EXPECT_EQ(a.result.throughput, b.result.throughput);
}

RunOutput finish(Stack& stack) {
  while (!stack.sim->done()) stack.sim->step();
  RunOutput out;
  out.result = stack.sim->finalize();
  out.digest = stack.digest.digest();
  return out;
}

/// The differential triple for one (switch, traffic, plan, k) scenario.
void check_resume_equivalence(const SwitchBuilder& sb,
                              const TrafficBuilder& tb,
                              const fault::FaultPlan* plan, SlotTime slots,
                              SlotTime k) {
  const SimConfig config = make_config(slots, plan);

  Stack golden(sb, tb, config);
  golden.sim->prepare();
  const RunOutput straight = finish(golden);

  Stack saver(sb, tb, config);
  saver.sim->prepare();
  while (saver.sim->now() < k) saver.sim->step();
  snapshot::Writer writer;
  saver.sim->save_state(writer);
  const std::vector<std::uint8_t> payload = writer.take();
  const RunOutput continued = finish(saver);  // the save was non-invasive
  expect_equivalent(continued, straight);

  Stack resumed(sb, tb, config);
  snapshot::Reader reader(payload);
  resumed.sim->load_state(reader);
  reader.expect_end();
  EXPECT_EQ(resumed.sim->now(), k);
  const RunOutput after = finish(resumed);
  expect_equivalent(after, straight);

  // Fingerprints must agree across independently-built identical stacks.
  EXPECT_EQ(golden.sim->state_fingerprint(), resumed.sim->state_fingerprint());
}

TEST(ResumeEquivalence, EveryFactoryUnderBernoulliTraffic) {
  const std::vector<SwitchFactory> lineup = {
      make_fifoms(),      make_fifoms_nosplit(), make_islip(),
      make_pim(),         make_ilqf(),           make_drr2d(),
      make_tatra(),       make_wba(),            make_concentrate(),
      make_eslip(),       make_fifoms_hw(),      make_oqfifo(),
      make_cioq_fifoms(2)};
  for (const SwitchFactory& factory : lineup) {
    SCOPED_TRACE(factory.label);
    check_resume_equivalence([&] { return factory.make(kPorts); },
                             bernoulli_traffic(), nullptr, kSlots,
                             /*k=*/150);
  }
}

TEST(ResumeEquivalence, BurstTrafficRoundTripsTheOnOffChains) {
  for (const SwitchFactory& factory : {make_fifoms(), make_tatra()}) {
    SCOPED_TRACE(factory.label);
    check_resume_equivalence([&] { return factory.make(kPorts); },
                             burst_traffic(), nullptr, kSlots, /*k=*/150);
  }
}

TEST(ResumeEquivalence, CheckpointBeforeDuringAndAfterWarmup) {
  // warmup_end = 90 here: k = 37 saves mid-warm-up (metrics still
  // gated), k = 150 after, k = 355 five slots from the horizon.
  const SwitchFactory factory = make_fifoms();
  for (const SlotTime k : {SlotTime{37}, SlotTime{150}, SlotTime{355}}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    check_resume_equivalence([&] { return factory.make(kPorts); },
                             bernoulli_traffic(), nullptr, kSlots, k);
  }
}

TEST(ResumeEquivalence, MidFaultStormUnderBothStrandedPolicies) {
  const fault::FaultPlan storm =
      fault::FaultPlan::fault_storm(kPorts, /*seed=*/7, /*slots=*/400);
  for (const StrandedCellPolicy policy :
       {StrandedCellPolicy::kHold, StrandedCellPolicy::kPurge}) {
    SCOPED_TRACE(policy == StrandedCellPolicy::kHold ? "hold" : "purge");
    const SwitchBuilder sb = [policy] {
      VoqSwitch::Options options;
      options.stranded_policy = policy;
      return std::make_unique<VoqSwitch>(
          kPorts, std::make_unique<FifomsScheduler>(), options);
    };
    // k = 180 lands inside the storm: failed ports, suppressed arrivals
    // and (for purge) purge counters are all live at the save.
    check_resume_equivalence(sb, bernoulli_traffic(0.9), &storm,
                             /*slots=*/400, /*k=*/180);
  }
}

TEST(ResumeEquivalence, MidStormUnderBurstTraffic) {
  const fault::FaultPlan storm =
      fault::FaultPlan::fault_storm(kPorts, /*seed=*/11, /*slots=*/400);
  check_resume_equivalence(
      [] { return make_fifoms().make(kPorts); }, burst_traffic(0.8), &storm,
      /*slots=*/400, /*k=*/200);
}

TEST(ResumeEquivalence, TruncatedPayloadRejectsCleanly) {
  Stack stack([] { return make_fifoms().make(kPorts); }, bernoulli_traffic(),
              make_config(kSlots, nullptr));
  stack.sim->prepare();
  while (stack.sim->now() < 100) stack.sim->step();
  snapshot::Writer writer;
  stack.sim->save_state(writer);
  const auto payload = writer.take();

  // Every proper prefix must be refused with SnapshotError — the frame
  // CRC normally catches tears, but load_state must also hold on its own
  // (the fuzz harness's contract).
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{8}, payload.size() / 2,
        payload.size() - 1}) {
    Stack fresh([] { return make_fifoms().make(kPorts); },
                bernoulli_traffic(), make_config(kSlots, nullptr));
    snapshot::Reader reader(
        std::span<const std::uint8_t>(payload).first(keep));
    EXPECT_THROW(fresh.sim->load_state(reader), snapshot::SnapshotError)
        << "prefix of " << keep << " bytes restored";
  }

  // Trailing garbage after a valid payload is rejected by expect_end.
  auto padded = payload;
  padded.push_back(0xcc);
  Stack fresh([] { return make_fifoms().make(kPorts); }, bernoulli_traffic(),
              make_config(kSlots, nullptr));
  snapshot::Reader reader(padded);
  fresh.sim->load_state(reader);
  EXPECT_THROW(reader.expect_end(), snapshot::SnapshotError);
}

TEST(ResumeEquivalence, ObserverPresenceMismatchRejects) {
  Stack saver([] { return make_fifoms().make(kPorts); }, bernoulli_traffic(),
              make_config(kSlots, nullptr));
  saver.sim->prepare();
  while (saver.sim->now() < 50) saver.sim->step();
  snapshot::Writer writer;
  saver.sim->save_state(writer);
  const auto payload = writer.take();

  // Saved WITH an observer chain, restored WITHOUT one: refused, because
  // the chain's serialised ledger would have nowhere to go.
  auto sw = make_fifoms().make(kPorts);
  auto traffic = bernoulli_traffic()();
  Simulator bare(*sw, *traffic, make_config(kSlots, nullptr));
  snapshot::Reader reader(payload);
  EXPECT_THROW(bare.load_state(reader), snapshot::SnapshotError);
}

TEST(ResumeEquivalence, FingerprintSeparatesConfigurations) {
  auto sw = make_fifoms().make(kPorts);
  auto traffic = bernoulli_traffic()();
  SimConfig config = make_config(kSlots, nullptr);
  Simulator sim(*sw, *traffic, config);
  const std::uint64_t base = sim.state_fingerprint();

  config.seed += 1;
  Simulator other_seed(*sw, *traffic, config);
  EXPECT_NE(other_seed.state_fingerprint(), base);

  config.seed -= 1;
  config.total_slots += 1;
  Simulator other_horizon(*sw, *traffic, config);
  EXPECT_NE(other_horizon.state_fingerprint(), base);

  auto other_sw = make_islip().make(kPorts);
  Simulator other_model(*other_sw, *traffic, make_config(kSlots, nullptr));
  EXPECT_NE(other_model.state_fingerprint(), base);
}

}  // namespace
}  // namespace fifoms
