#include "sched/islip.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace fifoms {
namespace {

using test::make_packet;

std::vector<McVoqInput> make_ports(int n) {
  std::vector<McVoqInput> ports;
  for (PortId p = 0; p < n; ++p) ports.emplace_back(p, n);
  return ports;
}

SlotMatching schedule(IslipScheduler& sched, std::vector<McVoqInput>& ports) {
  SlotMatching m(static_cast<int>(ports.size()),
                 static_cast<int>(ports.size()));
  Rng rng(1);
  sched.schedule(ports, 0, m, rng);
  m.validate();
  return m;
}

TEST(Islip, EmptySwitchIdle) {
  auto ports = make_ports(4);
  IslipScheduler sched;
  sched.reset(4, 4);
  EXPECT_EQ(schedule(sched, ports).matched_pairs(), 0);
}

TEST(Islip, SingleRequestMatched) {
  auto ports = make_ports(4);
  ports[2].accept(make_packet(1, 2, 0, {3}));
  IslipScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.source(3), 2);
  EXPECT_EQ(m.matched_pairs(), 1);
}

TEST(Islip, AtMostOneOutputPerInput) {
  // iSLIP treats multicast as independent unicast: even a fanout-4 packet
  // gets exactly one output per slot.
  auto ports = make_ports(4);
  ports[0].accept(make_packet(1, 0, 0, {0, 1, 2, 3}));
  IslipScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.matched_pairs(), 1);
  EXPECT_EQ(m.grants(0).count(), 1);
}

TEST(Islip, GrantPointerRoundRobin) {
  // Both inputs request output 0; pointers start at 0 so input 0 wins,
  // then the pointer moves past it and input 1 wins the next slot.
  IslipScheduler sched;
  sched.reset(2, 2);
  auto ports = make_ports(2);
  ports[0].accept(make_packet(1, 0, 0, {0}));
  ports[0].accept(make_packet(2, 0, 1, {0}));
  ports[1].accept(make_packet(3, 1, 0, {0}));
  ports[1].accept(make_packet(4, 1, 1, {0}));

  SlotMatching first = schedule(sched, ports);
  EXPECT_EQ(first.source(0), 0);
  EXPECT_EQ(sched.grant_pointers()[0], 1);  // advanced past input 0
  ports[0].serve_hol(0);

  SlotMatching second = schedule(sched, ports);
  EXPECT_EQ(second.source(0), 1);
  EXPECT_EQ(sched.grant_pointers()[0], 0);  // wrapped past input 1
}

TEST(Islip, PointerNotUpdatedWithoutAccept) {
  IslipScheduler sched;
  sched.reset(4, 4);
  auto ports = make_ports(4);
  // No requests at all: pointers stay at initial positions.
  (void)schedule(sched, ports);
  EXPECT_EQ(sched.grant_pointers(), std::vector<PortId>(4, 0));
  EXPECT_EQ(sched.accept_pointers(), std::vector<PortId>(4, 0));
}

TEST(Islip, AcceptPointerPrefersRotatedOutput) {
  IslipScheduler sched;
  sched.reset(2, 2);
  auto ports = make_ports(2);
  // Input 0 has traffic for both outputs; nobody competes.
  ports[0].accept(make_packet(1, 0, 0, {0}));
  ports[0].accept(make_packet(2, 0, 1, {1}));
  SlotMatching first = schedule(sched, ports);
  // Accept pointer at 0: output 0 accepted.
  EXPECT_EQ(first.grants(0), (PortSet{0}));
  EXPECT_EQ(sched.accept_pointers()[0], 1);
  ports[0].serve_hol(0);
  SlotMatching second = schedule(sched, ports);
  EXPECT_EQ(second.grants(0), (PortSet{1}));
}

TEST(Islip, IterativeRoundsFillUnmatchedPairs) {
  // Classic 2x2 scenario needing a second iteration:
  // input 0 -> {0, 1}, input 1 -> {0}.  Iteration 1 with zeroed pointers:
  // output 0 grants input 0, output 1 grants input 0; input 0 accepts
  // output 0; input 1 got nothing.  Iteration 2: output 1 regrants? no
  // requests from input 1 for output 1 — but output 0 is taken, so input 1
  // stays unmatched.  Use input 1 -> {1} backlog instead to see the fill.
  IslipScheduler sched;
  sched.reset(2, 2);
  auto ports = make_ports(2);
  ports[0].accept(make_packet(1, 0, 0, {0}));
  ports[0].accept(make_packet(2, 0, 1, {1}));
  ports[1].accept(make_packet(3, 1, 0, {0}));
  ports[1].accept(make_packet(4, 1, 1, {1}));
  const SlotMatching m = schedule(sched, ports);
  // Full matching must be found (iSLIP converges to maximal here).
  EXPECT_EQ(m.matched_pairs(), 2);
  EXPECT_TRUE(m.output_matched(0));
  EXPECT_TRUE(m.output_matched(1));
}

TEST(Islip, MaxIterationCapLimitsMatching) {
  IslipOptions options;
  options.max_iterations = 1;
  IslipScheduler sched(options);
  sched.reset(3, 3);
  auto ports = make_ports(3);
  // All inputs request only output 0 plus private outputs; one iteration
  // can match at most ... construct: inputs {0,1} both want {0,1}:
  ports[0].accept(make_packet(1, 0, 0, {0}));
  ports[0].accept(make_packet(2, 0, 1, {1}));
  ports[1].accept(make_packet(3, 1, 0, {0}));
  ports[1].accept(make_packet(4, 1, 1, {1}));
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.rounds, 1);
}

TEST(Islip, DesynchronisesUnderFullBacklog) {
  // The hallmark of iSLIP: with all VOQs backlogged, pointers desynchronise
  // and the switch settles into a 100%-throughput rotating schedule.
  const int n = 4;
  IslipScheduler sched;
  sched.reset(n, n);
  auto ports = make_ports(n);
  PacketId id = 0;
  SlotTime arrival = 0;
  // Deep backlog in every VOQ.
  for (int round = 0; round < 32; ++round) {
    for (PortId input = 0; input < n; ++input) {
      Packet p;
      p.id = id++;
      p.input = input;
      p.arrival = arrival;
      p.destinations = PortSet::all(n);
      ports[static_cast<std::size_t>(input)].accept(p);
    }
    ++arrival;
  }
  // After a few warm-up slots every slot must be a perfect matching.
  Rng rng(3);
  for (int slot = 0; slot < 16; ++slot) {
    SlotMatching m(n, n);
    sched.schedule(ports, slot, m, rng);
    m.validate();
    for (PortId input = 0; input < n; ++input)
      for (PortId output : m.grants(input)) {
        ports[static_cast<std::size_t>(input)].serve_hol(output);
      }
    if (slot >= 4) {
      EXPECT_EQ(m.matched_pairs(), n) << "slot " << slot;
    }
  }
}

}  // namespace
}  // namespace fifoms
