// Cross-cutting property suite: EVERY scheduler in the library, VOQ and
// HOL family alike, must produce legal matchings, never grant an empty
// queue, conserve cells end to end and drain a finite backlog.  Run via
// the switch models under random multicast traffic, parameterised over
// the experiment factories so new schedulers are covered by adding one
// line.
#include <gtest/gtest.h>

#include <map>

#include "sim/experiment.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

struct SchedulerCase {
  const char* label;
  SwitchFactory (*factory)();
};

SwitchFactory fifoms_factory() { return make_fifoms(); }
SwitchFactory fifoms_nosplit_factory() { return make_fifoms_nosplit(); }
SwitchFactory fifoms_hw_factory() { return make_fifoms_hw(); }
SwitchFactory islip_factory() { return make_islip(); }
SwitchFactory pim_factory() { return make_pim(); }
SwitchFactory ilqf_factory() { return make_ilqf(); }
SwitchFactory drr2d_factory() { return make_drr2d(); }
SwitchFactory tatra_factory() { return make_tatra(); }
SwitchFactory wba_factory() { return make_wba(); }
SwitchFactory concentrate_factory() { return make_concentrate(); }
SwitchFactory oqfifo_factory() { return make_oqfifo(); }
SwitchFactory cioq_factory() { return make_cioq_fifoms(2); }
SwitchFactory eslip_factory() { return make_eslip(); }

class SchedulerPropertyTest : public ::testing::TestWithParam<SchedulerCase> {
};

TEST_P(SchedulerPropertyTest, LegalityAndConservationUnderRandomTraffic) {
  auto sw = GetParam().factory().make(8);
  BernoulliTraffic traffic(8, 0.45, 0.3);  // load ~1.08: deliberate stress
  Rng traffic_rng(101), sched_rng(102);

  std::uint64_t copies_in = 0, copies_out = 0;
  std::map<PacketId, int> outstanding;
  PacketId next_id = 0;
  SlotResult result;
  for (SlotTime now = 0; now < 600; ++now) {
    for (PortId input = 0; input < 8; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      if (!sw->inject(packet)) continue;
      copies_in += static_cast<std::uint64_t>(dests.count());
      outstanding[packet.id] = dests.count();
    }
    result.clear();
    sw->step(now, sched_rng, result);

    PortSet outputs_this_slot;
    for (const Delivery& d : result.deliveries) {
      ++copies_out;
      // One copy per output per slot — crossbar legality end to end.
      ASSERT_FALSE(outputs_this_slot.contains(d.output))
          << GetParam().label << " slot " << now;
      outputs_this_slot.insert(d.output);
      // Never deliver a copy that was not injected.
      auto it = outstanding.find(d.packet);
      ASSERT_NE(it, outstanding.end()) << GetParam().label;
      if (--it->second == 0) outstanding.erase(it);
      ASSERT_LE(d.arrival, now) << GetParam().label;
    }
  }
  std::uint64_t pending = 0;
  for (const auto& [id, copies] : outstanding)
    pending += static_cast<std::uint64_t>(copies);
  EXPECT_EQ(copies_in, copies_out + pending) << GetParam().label;
}

TEST_P(SchedulerPropertyTest, DrainsFiniteBacklog) {
  auto sw = GetParam().factory().make(6);
  BernoulliTraffic traffic(6, 0.6, 0.4);
  Rng traffic_rng(55), sched_rng(56);
  PacketId next_id = 0;
  SlotResult result;
  SlotTime now = 0;
  std::uint64_t copies_in = 0;
  for (; now < 150; ++now) {
    for (PortId input = 0; input < 6; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      if (sw->inject(packet))
        copies_in += static_cast<std::uint64_t>(dests.count());
    }
    result.clear();
    sw->step(now, sched_rng, result);
  }
  // Generous drain budget: one slot per queued copy plus slack.
  const SlotTime deadline = now + static_cast<SlotTime>(copies_in) + 64;
  while (now < deadline && sw->total_buffered() > 0) {
    result.clear();
    sw->step(now++, sched_rng, result);
  }
  EXPECT_EQ(sw->total_buffered(), 0u) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerPropertyTest,
    ::testing::Values(SchedulerCase{"FIFOMS", fifoms_factory},
                      SchedulerCase{"FIFOMS_nosplit", fifoms_nosplit_factory},
                      SchedulerCase{"FIFOMS_hw", fifoms_hw_factory},
                      SchedulerCase{"iSLIP", islip_factory},
                      SchedulerCase{"PIM", pim_factory},
                      SchedulerCase{"iLQF", ilqf_factory},
                      SchedulerCase{"DRR2D", drr2d_factory},
                      SchedulerCase{"TATRA", tatra_factory},
                      SchedulerCase{"WBA", wba_factory},
                      SchedulerCase{"Concentrate", concentrate_factory},
                      SchedulerCase{"OQFIFO", oqfifo_factory},
                      SchedulerCase{"CIOQ_s2", cioq_factory},
                      SchedulerCase{"ESLIP", eslip_factory}),
    [](const ::testing::TestParamInfo<SchedulerCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace fifoms
