#include "sched/wba.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fifoms {
namespace {

HolCellView cell(PortId input, PacketId packet, SlotTime arrival,
                 std::initializer_list<PortId> remaining) {
  HolCellView view;
  view.valid = true;
  view.input = input;
  view.packet = packet;
  view.arrival = arrival;
  view.remaining = PortSet(remaining);
  view.initial_fanout = view.remaining.count();
  return view;
}

SlotMatching schedule(WbaScheduler& sched, std::vector<HolCellView>& hol,
                      SlotTime now, std::uint64_t seed = 1) {
  SlotMatching m(static_cast<int>(hol.size()), static_cast<int>(hol.size()));
  Rng rng(seed);
  sched.schedule(hol, now, m, rng);
  m.validate();
  return m;
}

TEST(Wba, WeightFormula) {
  WbaScheduler sched(WbaOptions{.age_weight = 2, .fanout_weight = 3});
  const HolCellView view = cell(0, 1, 10, {0, 1});
  EXPECT_EQ(sched.weight(view, 15), 2 * 5 - 3 * 2);
}

TEST(Wba, OlderCellWins) {
  WbaScheduler sched;
  sched.reset(2, 2);
  std::vector<HolCellView> hol(2);
  hol[0] = cell(0, 1, 2, {0});
  hol[1] = cell(1, 2, 8, {0});
  const SlotMatching m = schedule(sched, hol, 10);
  EXPECT_EQ(m.source(0), 0);  // age 8 beats age 2
}

TEST(Wba, SmallFanoutBeatsLargeAtEqualAge) {
  // Residue concentration: equal ages, the unicast cell outweighs the
  // fanout-3 multicast at the shared output.
  WbaScheduler sched;
  sched.reset(2, 4);
  std::vector<HolCellView> hol(2);
  hol[0] = cell(0, 1, 5, {0, 1, 2});
  hol[1] = cell(1, 2, 5, {0});
  SlotMatching m(2, 4);
  Rng rng(1);
  sched.schedule(hol, 10, m, rng);
  m.validate();
  EXPECT_EQ(m.source(0), 1);
  // The multicast still gets its uncontended outputs.
  EXPECT_EQ(m.grants(0), (PortSet{1, 2}));
}

TEST(Wba, MulticastServedEverywhereWhenAlone) {
  WbaScheduler sched;
  sched.reset(4, 4);
  std::vector<HolCellView> hol(4);
  hol[2] = cell(2, 1, 0, {0, 1, 3});
  const SlotMatching m = schedule(sched, hol, 1);
  EXPECT_EQ(m.grants(2), (PortSet{0, 1, 3}));
}

TEST(Wba, TiesRandomised) {
  bool first_won = false, second_won = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    WbaScheduler sched;
    sched.reset(2, 2);
    std::vector<HolCellView> hol(2);
    hol[0] = cell(0, 1, 5, {0});
    hol[1] = cell(1, 2, 5, {0});
    const SlotMatching m = schedule(sched, hol, 9, seed);
    first_won |= m.source(0) == 0;
    second_won |= m.source(0) == 1;
  }
  EXPECT_TRUE(first_won);
  EXPECT_TRUE(second_won);
}

TEST(Wba, AgeEventuallyDominatesFanoutPenalty) {
  // Starvation resistance: a multicast that keeps losing gains age weight
  // every slot and must eventually beat a stream of fresh unicasts.
  WbaScheduler sched;
  sched.reset(2, 2);
  for (SlotTime now = 0;; ++now) {
    std::vector<HolCellView> hol(2);
    hol[0] = cell(0, 1, 0, {0, 1});        // the aging multicast
    hol[1] = cell(1, 100 + static_cast<PacketId>(now), now, {0});
    const SlotMatching m = schedule(sched, hol, now);
    ASSERT_LE(now, 10) << "multicast starved";
    if (m.source(0) == 0) break;  // finally won the contended output
  }
}

TEST(Wba, CustomWeightsChangeDecisions) {
  // With fanout_weight = 0 the multicast ties on age and can win; with a
  // huge fanout penalty the unicast always wins.
  std::vector<HolCellView> hol(2);
  hol[0] = cell(0, 1, 5, {0, 1});
  hol[1] = cell(1, 2, 5, {0});

  WbaScheduler heavy(WbaOptions{.age_weight = 1, .fanout_weight = 100});
  heavy.reset(2, 2);
  SlotMatching m(2, 2);
  Rng rng(1);
  heavy.schedule(hol, 9, m, rng);
  EXPECT_EQ(m.source(0), 1);
}

TEST(Wba, SkipsInvalidInputs) {
  WbaScheduler sched;
  sched.reset(3, 3);
  std::vector<HolCellView> hol(3);
  hol[1] = cell(1, 1, 0, {2});
  const SlotMatching m = schedule(sched, hol, 5);
  EXPECT_EQ(m.matched_pairs(), 1);
  EXPECT_EQ(m.source(2), 1);
}

}  // namespace
}  // namespace fifoms
