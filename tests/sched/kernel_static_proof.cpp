// The build is the proof.
//
// Every static_assert in this translation unit compares a word-parallel
// kernel from src/sched/kernels.hpp (or a constexpr PortSet operation)
// against the naive dense specification in src/sched/kernel_spec.hpp —
// exhaustively over all 2^k masks at small widths, and pointwise at the
// 64/65-port word boundary and the kWeightInfinity sentinel.  Because
// the checks are constant-evaluated, a kernel bug fails compilation in
// every preset (dev, release, thread-safety) before a single test runs.
// Constant evaluation also rejects undefined behaviour, so each proof
// doubles as a UB check on the exact inputs it covers — including the
// padding contract (`plane + 64 * w` addressable for every masked word).
//
// Each proof helper takes the kernel as a function pointer, so the same
// predicate that proves the real kernel correct is shown to FAIL on a
// deliberately broken mutant below.  That keeps the harness honest: a
// proof that cannot reject a wrong kernel proves nothing.
//
// Budget: every individual static_assert stays well under ~5 * 10^5
// constant-evaluation steps (clang's default -fconstexpr-steps is 10^6;
// GCC's per-loop limit is 262144 iterations).  Widen proofs by adding
// more static_asserts, not by growing one loop.

#include <array>
#include <cstdint>
#include <span>

#include <gtest/gtest.h>

#include "sched/kernel_spec.hpp"
#include "sched/kernels.hpp"

namespace fifoms {
namespace {

// ---------------------------------------------------------------------------
// Deterministic constexpr input material (splitmix64; no runtime RNG in a
// constant expression).  Weights are drawn from a tiny range so ties — the
// interesting case for carrier masks — are dense, and a kWeightInfinity
// sentinel is planted inside the live region.
// ---------------------------------------------------------------------------

constexpr std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

template <std::size_t N>
constexpr std::array<std::uint64_t, N> make_plane(std::uint64_t seed,
                                                  std::uint64_t modulus) {
  std::array<std::uint64_t, N> plane{};
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < N; ++i) plane[i] = splitmix(s) % modulus;
  plane[N / 3] = kWeightInfinity;  // sentinel inside the live region
  return plane;
}

// One padded word: enough for every mask in [0, 2^8).
constexpr auto kPlane8 = make_plane<64>(1, 4);
// Two padded words: straddles the 64/65 boundary.
constexpr auto kPlane128 = make_plane<128>(2, 6);

constexpr PortSet mask_from_bits(std::uint64_t low_word) {
  PortSet mask;
  mask.set_word(0, low_word);
  return mask;
}

// A mask whose bits straddle the word boundary: bit i of `pattern` maps
// to port 61 + i, so a 6-bit pattern covers ports 61..66.
constexpr PortSet straddle_mask(std::uint64_t pattern) {
  PortSet mask;
  mask.set_word(0, (pattern << 61));
  mask.set_word(1, pattern >> 3);
  return mask;
}

// ---------------------------------------------------------------------------
// Proof predicates, parameterized on the kernel under test.
// ---------------------------------------------------------------------------

using MinKernel = std::uint64_t (*)(std::span<const std::uint64_t>,
                                    const PortSet&);
using ScanKernel = PortSet (*)(std::span<const std::uint64_t>, const PortSet&,
                               std::uint64_t);

/// Kernel == spec for every mask over the low `bits` ports of `plane`.
constexpr bool proves_masked_min(MinKernel kernel,
                                 std::span<const std::uint64_t> plane,
                                 int bits) {
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << bits); ++m) {
    const PortSet mask = mask_from_bits(m);
    if (kernel(plane, mask) != spec::masked_min(plane, mask)) return false;
  }
  return true;
}

/// Kernel == spec for every mask over the low `bits` ports, crossed with
/// every weight value that can appear in the plane (plus the sentinel).
constexpr bool proves_equality_scan(ScanKernel kernel,
                                    std::span<const std::uint64_t> plane,
                                    int bits, std::uint64_t modulus) {
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << bits); ++m) {
    const PortSet mask = mask_from_bits(m);
    for (std::uint64_t v = 0; v < modulus; ++v) {
      if (!(kernel(plane, mask, v) == spec::equality_scan(plane, mask, v)))
        return false;
    }
    if (!(kernel(plane, mask, kWeightInfinity) ==
          spec::equality_scan(plane, mask, kWeightInfinity)))
      return false;
  }
  return true;
}

/// recompute_hol_min == spec for every mask over the low `bits` ports.
constexpr bool proves_recompute(std::span<const std::uint64_t> plane,
                                int bits) {
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << bits); ++m) {
    const PortSet mask = mask_from_bits(m);
    if (!(kernels::recompute_hol_min(plane, mask) ==
          spec::recompute_hol_min(plane, mask)))
      return false;
  }
  return true;
}

/// Kernel == spec for every 6-bit mask pattern laid across ports 61..66
/// of a two-word plane — the word-boundary cases (N = 64/65) a
/// first-word-only mutant cannot survive.
constexpr bool proves_boundary(MinKernel min_kernel, ScanKernel scan_kernel) {
  const std::span<const std::uint64_t> plane{kPlane128};
  for (std::uint64_t pattern = 0; pattern < 64; ++pattern) {
    const PortSet mask = straddle_mask(pattern);
    const std::uint64_t smallest = min_kernel(plane, mask);
    if (smallest != spec::masked_min(plane, mask)) return false;
    if (!(scan_kernel(plane, mask, smallest) ==
          spec::equality_scan(plane, mask, smallest)))
      return false;
    if (!(kernels::recompute_hol_min(plane, mask) ==
          spec::recompute_hol_min(plane, mask)))
      return false;
  }
  return true;
}

/// Drive `ops` pseudo-random plane writes through the incremental
/// hol_min_update kernel (with the recompute fallback, exactly as
/// McVoqInput::set_plane uses it) over an `n`-port plane, and require
/// the maintained summary to equal the from-scratch spec after every
/// step.  Covers lowering, tie-joining, raising off the minimum,
/// last-carrier departure, and removal to kWeightInfinity — including
/// transitions (raising an occupied entry) that production reaches only
/// via serve_hol, so the proof is strictly stronger than the use.
template <std::size_t Padded>
constexpr bool proves_incremental_maintenance(int n, std::uint64_t modulus,
                                              int ops, std::uint64_t seed) {
  std::array<std::uint64_t, Padded> storage{};
  for (auto& entry : storage) entry = kWeightInfinity;
  const std::span<const std::uint64_t> plane{storage};
  PortSet occupied;
  kernels::HolMin state;
  std::uint64_t s = seed;
  for (int i = 0; i < ops; ++i) {
    const auto output =
        static_cast<PortId>(splitmix(s) % static_cast<std::uint64_t>(n));
    const bool remove = occupied.contains(output) && splitmix(s) % 4 == 0;
    const std::uint64_t weight =
        remove ? kWeightInfinity : splitmix(s) % modulus;
    const std::uint64_t previous = storage[static_cast<std::size_t>(output)];
    if (previous == weight) continue;
    storage[static_cast<std::size_t>(output)] = weight;
    if (remove) {
      occupied.erase(output);  // before the fallback: it scans occupied
    } else {
      occupied.insert(output);
    }
    if (kernels::hol_min_update(state, output, previous, weight))
      state = kernels::recompute_hol_min(plane, occupied);
    if (!(state == spec::recompute_hol_min(plane, occupied))) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// The proofs.
// ---------------------------------------------------------------------------

static_assert(proves_masked_min(&kernels::masked_min, kPlane8, 8),
              "masked_min != dense spec on some 8-port mask");
static_assert(proves_equality_scan(&kernels::equality_scan, kPlane8, 8, 4),
              "equality_scan != dense spec on some (mask, value) pair");
static_assert(proves_recompute(kPlane8, 8),
              "recompute_hol_min != dense spec on some 8-port mask");
static_assert(proves_boundary(&kernels::masked_min, &kernels::equality_scan),
              "kernels disagree with the spec across the 64/65 boundary");

// Sentinel edge cases, stated directly.
static_assert(kernels::masked_min(kPlane8, PortSet{}) == kWeightInfinity,
              "empty mask must reduce to kWeightInfinity");
static_assert(kernels::recompute_hol_min(kPlane8, PortSet{}) ==
                  kernels::HolMin{},
              "empty mask must yield the empty summary");
static_assert(
    [] {
      // A mask selecting only the planted sentinel: kWeightInfinity
      // means "nothing queued", so the summary must report no carriers
      // rather than the sentinel port itself.
      constexpr auto sentinel = static_cast<PortId>(kPlane8.size() / 3);
      const PortSet only = PortSet::single(sentinel);
      const auto state = kernels::recompute_hol_min(kPlane8, only);
      return state.weight == kWeightInfinity && state.carriers.empty();
    }(),
    "an all-infinity mask must yield an empty carrier set");

static_assert(proves_incremental_maintenance<64>(8, 4, 120, 11),
              "hol_min_update drifts from the spec at 8 ports");
static_assert(proves_incremental_maintenance<128>(65, 6, 120, 13),
              "hol_min_update drifts from the spec across the word boundary");

// ---------------------------------------------------------------------------
// Mutant rejection: the same predicates must FAIL on broken kernels.
// ---------------------------------------------------------------------------

/// Mutant 1: compares weights as signed integers, so the
/// kWeightInfinity sentinel (all-ones = -1 signed) wins every
/// reduction.  Caught by the single-word proof: kPlane8 plants a
/// sentinel inside the live region.
constexpr std::uint64_t mutant_min_signed_compare(
    std::span<const std::uint64_t> plane, const PortSet& mask) {
  std::uint64_t smallest = kWeightInfinity;
  for (std::size_t p = 0; p < plane.size(); ++p) {
    if (mask.contains(static_cast<PortId>(p)) &&
        static_cast<std::int64_t>(plane[p]) <
            static_cast<std::int64_t>(smallest))
      smallest = plane[p];
  }
  return smallest;
}
static_assert(!proves_masked_min(&mutant_min_signed_compare, kPlane8, 8),
              "the proof failed to reject a signed-compare mutant");

/// Mutant 2: scans only the first mask word — indistinguishable from
/// the real kernel at N <= 64, so the narrow proof passes it...
constexpr std::uint64_t mutant_min_first_word_only(
    std::span<const std::uint64_t> plane, const PortSet& mask) {
  std::uint64_t bits = mask.words()[0];
  std::uint64_t smallest = kWeightInfinity;
  while (bits != 0) {
    const int bit = std::countr_zero(bits);
    bits &= bits - 1;
    if (plane[static_cast<std::size_t>(bit)] < smallest)
      smallest = plane[static_cast<std::size_t>(bit)];
  }
  return smallest;
}
static_assert(proves_masked_min(&mutant_min_first_word_only, kPlane8, 8),
              "(the narrow proof alone cannot see past port 63)");
/// ...which is exactly why the suite carries the boundary proof: it
/// rejects the mutant at N = 64/65.
static_assert(!proves_boundary(&mutant_min_first_word_only,
                               &kernels::equality_scan),
              "the boundary proof failed to reject a one-word mutant");

/// Mutant 3: an equality scan with an off-by-one in the flag shift.
constexpr PortSet mutant_scan_shifted(std::span<const std::uint64_t> plane,
                                      const PortSet& mask,
                                      std::uint64_t value) {
  PortSet result;
  const auto& words = mask.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    std::uint64_t hits = 0;
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      hits |= static_cast<std::uint64_t>(
                  plane[(w << 6) + static_cast<std::size_t>(bit)] == value)
              << (bit == 0 ? 0 : bit - 1);
    }
    result.set_word(static_cast<int>(w), hits);
  }
  return result;
}
static_assert(!proves_equality_scan(&mutant_scan_shifted, kPlane8, 8, 4),
              "the proof failed to reject a shifted-flag mutant");

// ---------------------------------------------------------------------------
// Constexpr PortSet algebra: the word-parallel set operations against
// their quantified definitions, exhaustively over all pairs of 6-bit
// sets — once at ports 0..5 and once straddled across the word
// boundary at ports 61..66.
// ---------------------------------------------------------------------------

using SetPair = PortSet (*)(std::uint64_t);

/// All pairs of 5-bit patterns through `build`, with the quantified set
/// formulas checked over the port window [lo, hi) the builder populates
/// (the builders place no bits outside it, so count() is exact).
constexpr bool proves_set_algebra(SetPair build, PortId lo, PortId hi) {
  for (std::uint64_t a_bits = 0; a_bits < 32; ++a_bits) {
    for (std::uint64_t b_bits = 0; b_bits < 32; ++b_bits) {
      const PortSet a = build(a_bits);
      const PortSet b = build(b_bits);
      const PortSet u = a | b;
      const PortSet n = a & b;
      const PortSet d = a - b;
      bool subset = true;
      bool meets = false;
      int count = 0;
      for (PortId p = lo; p < hi; ++p) {
        const bool in_a = a.contains(p);
        const bool in_b = b.contains(p);
        if (u.contains(p) != (in_a || in_b)) return false;
        if (n.contains(p) != (in_a && in_b)) return false;
        if (d.contains(p) != (in_a && !in_b)) return false;
        if (in_a && !in_b) subset = false;
        if (in_a && in_b) meets = true;
        if (in_a) ++count;
      }
      if (a.is_subset_of(b) != subset) return false;
      if (a.intersects(b) != meets) return false;
      if (static_cast<int>(a.count()) != count) return false;
      if (a.empty() != (count == 0)) return false;
    }
  }
  return true;
}

static_assert(proves_set_algebra(&mask_from_bits, 0, 8),
              "PortSet algebra != quantified spec at ports 0..4");
static_assert(proves_set_algebra(&straddle_mask, 58, 70),
              "PortSet algebra != quantified spec across the word boundary");

/// first()/next_after() enumerate exactly the members, in order.
constexpr bool proves_iteration(SetPair build) {
  for (std::uint64_t bits = 0; bits < 64; ++bits) {
    const PortSet set = build(bits);
    PortId cursor = set.first();
    for (PortId p = 0; p < kMaxPorts; ++p) {
      if (set.contains(p)) {
        if (cursor != p) return false;
        cursor = set.next_after(cursor);
      }
    }
    if (cursor != kNoPort) return false;
  }
  return true;
}

static_assert(proves_iteration(&mask_from_bits),
              "first/next_after misenumerate a low-word set");
static_assert(proves_iteration(&straddle_mask),
              "first/next_after misenumerate across the word boundary");

/// PortSet::all(n) is exactly { p : p < n }, including at word edges.
constexpr bool proves_all_prefix() {
  for (int n : {0, 1, 5, 63, 64, 65, 127, 128, 129, 255, 256}) {
    const PortSet set = PortSet::all(n);
    for (PortId p = 0; p < kMaxPorts; ++p)
      if (set.contains(p) != (p < n)) return false;
  }
  return true;
}

static_assert(proves_all_prefix(), "PortSet::all(n) is not the prefix set");

// ---------------------------------------------------------------------------
// Runtime re-checks: the same predicates executed by the test runner.
// Redundant with the static proofs on a healthy toolchain, but they put
// the kernels under the sanitizer presets' dynamic instrumentation,
// which constant evaluation bypasses.
// ---------------------------------------------------------------------------

TEST(KernelStaticProof, MaskedMinMatchesSpecAtRuntime) {
  EXPECT_TRUE(proves_masked_min(&kernels::masked_min, kPlane8, 8));
  EXPECT_FALSE(proves_masked_min(&mutant_min_signed_compare, kPlane8, 8));
}

TEST(KernelStaticProof, EqualityScanMatchesSpecAtRuntime) {
  EXPECT_TRUE(proves_equality_scan(&kernels::equality_scan, kPlane8, 8, 4));
  EXPECT_FALSE(proves_equality_scan(&mutant_scan_shifted, kPlane8, 8, 4));
}

TEST(KernelStaticProof, BoundaryAndMaintenanceMatchSpecAtRuntime) {
  EXPECT_TRUE(proves_boundary(&kernels::masked_min, &kernels::equality_scan));
  EXPECT_FALSE(
      proves_boundary(&mutant_min_first_word_only, &kernels::equality_scan));
  EXPECT_TRUE(proves_incremental_maintenance<64>(8, 4, 120, 11));
  EXPECT_TRUE(proves_incremental_maintenance<128>(65, 6, 120, 13));
}

TEST(KernelStaticProof, PortSetAlgebraMatchesSpecAtRuntime) {
  EXPECT_TRUE(proves_set_algebra(&mask_from_bits, 0, 8));
  EXPECT_TRUE(proves_set_algebra(&straddle_mask, 58, 70));
  EXPECT_TRUE(proves_iteration(&mask_from_bits));
  EXPECT_TRUE(proves_iteration(&straddle_mask));
  EXPECT_TRUE(proves_all_prefix());
}

}  // namespace
}  // namespace fifoms
