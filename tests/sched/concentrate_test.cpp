#include "sched/concentrate.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fifoms {
namespace {

HolCellView cell(PortId input, PacketId packet, SlotTime arrival,
                 std::initializer_list<PortId> remaining) {
  HolCellView view;
  view.valid = true;
  view.input = input;
  view.packet = packet;
  view.arrival = arrival;
  view.remaining = PortSet(remaining);
  view.initial_fanout = view.remaining.count();
  return view;
}

SlotMatching schedule(ConcentrateScheduler& sched,
                      std::vector<HolCellView>& hol, SlotTime now,
                      std::uint64_t seed = 1) {
  SlotMatching m(static_cast<int>(hol.size()), static_cast<int>(hol.size()));
  Rng rng(seed);
  sched.schedule(hol, now, m, rng);
  m.validate();
  return m;
}

TEST(Concentrate, EmptyIdle) {
  ConcentrateScheduler sched;
  sched.reset(4, 4);
  std::vector<HolCellView> hol(4);
  EXPECT_EQ(schedule(sched, hol, 0).matched_pairs(), 0);
}

TEST(Concentrate, LargestResidueServedCompletely) {
  // The fanout-3 cell wins everything it wants; the unicast that shares
  // output 1 becomes the residue.
  ConcentrateScheduler sched;
  sched.reset(3, 3);
  std::vector<HolCellView> hol(3);
  hol[0] = cell(0, 1, 0, {0, 1, 2});
  hol[1] = cell(1, 2, 0, {1});
  const SlotMatching m = schedule(sched, hol, 0);
  EXPECT_EQ(m.grants(0), (PortSet{0, 1, 2}));
  EXPECT_FALSE(m.input_matched(1));
}

TEST(Concentrate, OppositeOfWbaOnTheSameScenario) {
  // WBA's fanout penalty would give the contested output to the unicast;
  // Concentrate gives it to the multicast.  The residue count is the
  // point: Concentrate leaves 1 input with residue, the other choice
  // leaves 1 too but with 1 more unserved copy here.
  ConcentrateScheduler sched;
  sched.reset(2, 2);
  std::vector<HolCellView> hol(2);
  hol[0] = cell(0, 1, 5, {0, 1});
  hol[1] = cell(1, 2, 5, {0});
  const SlotMatching m = schedule(sched, hol, 5);
  EXPECT_EQ(m.grants(0), (PortSet{0, 1}));  // multicast departs whole
  EXPECT_FALSE(m.input_matched(1));
}

TEST(Concentrate, TieOnResidueGoesToOlder) {
  ConcentrateScheduler sched;
  sched.reset(2, 2);
  std::vector<HolCellView> hol(2);
  hol[0] = cell(0, 1, 9, {0});
  hol[1] = cell(1, 2, 3, {0});  // same residue size, older
  const SlotMatching m = schedule(sched, hol, 9);
  EXPECT_EQ(m.source(0), 1);
}

TEST(Concentrate, LosersStillGetFreeOutputs) {
  ConcentrateScheduler sched;
  sched.reset(2, 3);
  std::vector<HolCellView> hol(2);
  hol[0] = cell(0, 1, 0, {0, 1});
  hol[1] = cell(1, 2, 0, {1, 2});
  SlotMatching m(2, 3);
  Rng rng(1);
  sched.schedule(hol, 0, m, rng);
  m.validate();
  // Equal residue: older tie — equal too; random order.  Whoever goes
  // second still receives its uncontended output.
  EXPECT_EQ(m.matched_pairs(), 3);
  EXPECT_TRUE(m.output_matched(0));
  EXPECT_TRUE(m.output_matched(1));
  EXPECT_TRUE(m.output_matched(2));
}

TEST(Concentrate, MaximisesDeparturesVsNaiveOrder) {
  // 3 inputs: A={0,1,2} (fanout 3), B={0}, C={1}.  Concentrate serves A
  // fully (departure) and leaves B, C as residue: 1 departure, matched
  // pairs 3.  Any order serving B or C first would still match 3 pairs
  // but A would not depart (split).  Check the departure property: A's
  // grants equal its full residue.
  ConcentrateScheduler sched;
  sched.reset(3, 3);
  std::vector<HolCellView> hol(3);
  hol[0] = cell(0, 1, 0, {0, 1, 2});
  hol[1] = cell(1, 2, 0, {0});
  hol[2] = cell(2, 3, 0, {1});
  const SlotMatching m = schedule(sched, hol, 0);
  EXPECT_EQ(m.grants(0), (PortSet{0, 1, 2}));
  EXPECT_EQ(m.matched_pairs(), 3);
}

}  // namespace
}  // namespace fifoms
