#include <gtest/gtest.h>

#include "sched/pim.hpp"
#include "sched/random_voq.hpp"
#include "test_util.hpp"

namespace fifoms {
namespace {

using test::make_packet;

std::vector<McVoqInput> make_ports(int n) {
  std::vector<McVoqInput> ports;
  for (PortId p = 0; p < n; ++p) ports.emplace_back(p, n);
  return ports;
}

template <typename Scheduler>
SlotMatching schedule(Scheduler& sched, std::vector<McVoqInput>& ports,
                      std::uint64_t seed = 1) {
  SlotMatching m(static_cast<int>(ports.size()),
                 static_cast<int>(ports.size()));
  Rng rng(seed);
  sched.schedule(ports, 0, m, rng);
  m.validate();
  return m;
}

TEST(Pim, EmptyIdle) {
  auto ports = make_ports(4);
  PimScheduler sched;
  sched.reset(4, 4);
  EXPECT_EQ(schedule(sched, ports).matched_pairs(), 0);
}

TEST(Pim, SinglePairMatched) {
  auto ports = make_ports(4);
  ports[1].accept(make_packet(1, 1, 0, {2}));
  PimScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.source(2), 1);
}

TEST(Pim, OneOutputPerInputPerSlot) {
  auto ports = make_ports(4);
  ports[0].accept(make_packet(1, 0, 0, {0, 1, 2, 3}));
  PimScheduler sched;
  sched.reset(4, 4);
  EXPECT_EQ(schedule(sched, ports).matched_pairs(), 1);
}

TEST(Pim, ConvergesToMaximalMatching) {
  // With a full backlog a converged PIM matching is maximal: no free
  // input/output pair with a queued cell remains.
  auto ports = make_ports(6);
  PacketId id = 0;
  for (PortId input = 0; input < 6; ++input) {
    Packet p;
    p.id = id++;
    p.input = input;
    p.arrival = 0;
    p.destinations = PortSet::all(6);
    ports[static_cast<std::size_t>(input)].accept(p);
  }
  PimScheduler sched;
  sched.reset(6, 6);
  const SlotMatching m = schedule(sched, ports, 9);
  EXPECT_EQ(m.matched_pairs(), 6);  // perfect under full backlog
}

TEST(Pim, RandomnessVariesAcrossSeeds) {
  PimScheduler sched;
  bool differs = false;
  PortId first_choice = kNoPort;
  for (std::uint64_t seed = 0; seed < 32 && !differs; ++seed) {
    auto ports = make_ports(4);
    ports[0].accept(make_packet(1, 0, 0, {0, 1, 2, 3}));
    sched.reset(4, 4);
    const SlotMatching m = schedule(sched, ports, seed);
    const PortId choice = m.grants(0).first();
    if (first_choice == kNoPort) {
      first_choice = choice;
    } else if (choice != first_choice) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Pim, IterationCapRespected) {
  PimOptions options;
  options.max_iterations = 1;
  PimScheduler sched(options);
  sched.reset(4, 4);
  auto ports = make_ports(4);
  for (PortId input = 0; input < 4; ++input) {
    Packet p;
    p.id = static_cast<PacketId>(input);
    p.input = input;
    p.arrival = 0;
    p.destinations = PortSet::all(4);
    ports[static_cast<std::size_t>(input)].accept(p);
  }
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.rounds, 1);
  EXPECT_GE(m.matched_pairs(), 1);
}

TEST(RandomVoq, SingleIterationOnly) {
  auto ports = make_ports(4);
  for (PortId input = 0; input < 4; ++input) {
    Packet p;
    p.id = static_cast<PacketId>(input);
    p.input = input;
    p.arrival = 0;
    p.destinations = PortSet::all(4);
    ports[static_cast<std::size_t>(input)].accept(p);
  }
  RandomVoqScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports, 5);
  EXPECT_EQ(m.rounds, 1);
  EXPECT_GE(m.matched_pairs(), 1);
  EXPECT_LE(m.matched_pairs(), 4);
}

TEST(RandomVoq, MatchesLoneRequest) {
  auto ports = make_ports(4);
  ports[3].accept(make_packet(1, 3, 0, {1}));
  RandomVoqScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.source(1), 3);
}

TEST(RandomVoq, NeverGrantsEmptyVoq) {
  Rng traffic_rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    auto ports = make_ports(4);
    PacketId id = 0;
    for (PortId input = 0; input < 4; ++input) {
      PortSet dests;
      for (PortId out = 0; out < 4; ++out)
        if (traffic_rng.bernoulli(0.4)) dests.insert(out);
      if (dests.empty()) continue;
      Packet p;
      p.id = id++;
      p.input = input;
      p.arrival = 0;
      p.destinations = dests;
      ports[static_cast<std::size_t>(input)].accept(p);
    }
    RandomVoqScheduler sched;
    sched.reset(4, 4);
    const SlotMatching m =
        schedule(sched, ports, static_cast<std::uint64_t>(trial));
    for (PortId input = 0; input < 4; ++input)
      for (PortId output : m.grants(input))
        EXPECT_FALSE(ports[static_cast<std::size_t>(input)].voq_empty(output));
  }
}

}  // namespace
}  // namespace fifoms
