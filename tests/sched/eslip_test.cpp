#include "sched/eslip.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

using test::make_packet;

TEST(HybridInput, UnicastGoesToVoqMulticastToMcq) {
  HybridInput input(0, 4);
  input.accept(make_packet(1, 0, 0, {2}));        // unicast
  input.accept(make_packet(2, 0, 1, {0, 1, 3}));  // multicast
  EXPECT_FALSE(input.voq_empty(2));
  EXPECT_TRUE(input.voq_empty(0));
  EXPECT_FALSE(input.mcq_empty());
  EXPECT_EQ(input.mcq_hol().packet, 2u);
  EXPECT_EQ(input.queue_size(), 2u);
}

TEST(HybridInput, MulticastResidueSplits) {
  HybridInput input(0, 4);
  input.accept(make_packet(1, 0, 0, {0, 1, 2}));
  EXPECT_FALSE(input.serve_multicast(PortSet{0, 2}));
  EXPECT_EQ(input.mcq_hol().remaining, (PortSet{1}));
  EXPECT_TRUE(input.serve_multicast(PortSet{1}));
  EXPECT_TRUE(input.mcq_empty());
}

TEST(HybridInputDeath, BadServePanics) {
  HybridInput input(0, 4);
  EXPECT_DEATH((void)input.serve_unicast(0), "empty VOQ");
  EXPECT_DEATH((void)input.serve_multicast(PortSet{0}),
               "empty multicast queue");
  input.accept(make_packet(1, 0, 0, {0, 1}));
  EXPECT_DEATH((void)input.serve_multicast(PortSet{2}), "not in the");
}

TEST(Eslip, LoneUnicastDelivered) {
  EslipSwitch sw(4);
  const auto deliveries = test::run_scripted(sw, {{0, 1, PortSet{3}}}, 2);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].output, 3);
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(Eslip, LoneMulticastFullFanoutInOneSlot) {
  // The shared pointer aligns all outputs on the same input: an
  // uncontended multicast departs whole in one (even) slot.
  EslipSwitch sw(4);
  const auto deliveries =
      test::run_scripted(sw, {{0, 1, PortSet{0, 2, 3}}}, 2);
  ASSERT_EQ(deliveries.size(), 3u);
  // All three copies in slot 0 (even slot: multicast preferred).
  for (const Delivery& d : deliveries) EXPECT_EQ(d.arrival, 0);
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(Eslip, SharedPointerAlignsContendingMulticasts) {
  // Two inputs with full-broadcast cells: the pointer input wins ALL
  // outputs (whole-cell departure), the other waits — unlike independent
  // per-output pointers which would split both.
  EslipSwitch sw(4);
  Rng rng(1);
  sw.inject(make_packet(0, 0, 0, {0, 1, 2, 3}));
  sw.inject(make_packet(1, 1, 0, {0, 1, 2, 3}));
  SlotResult r0;
  sw.step(0, rng, r0);
  ASSERT_EQ(r0.deliveries.size(), 4u);
  const PortId winner = r0.deliveries[0].input;
  for (const Delivery& d : r0.deliveries) EXPECT_EQ(d.input, winner);
  // Pointer advanced past the departed winner.
  EXPECT_EQ(sw.multicast_pointer(), (winner + 1) % 4);
  SlotResult r1;
  sw.step(1, rng, r1);  // odd slot, but no unicast competition
  ASSERT_EQ(r1.deliveries.size(), 4u);
  for (const Delivery& d : r1.deliveries) EXPECT_NE(d.input, winner);
}

TEST(Eslip, PointerStaysOnSplitCell) {
  // Input 0's broadcast loses output 1 to... construct: mc cell {0,1} at
  // input 0; mc cell {1} at input 1?  fanout-1 packets are unicast here,
  // so use {1,2} vs {1,3}: contention at output 1 only.
  EslipSwitch sw(4);
  Rng rng(1);
  sw.inject(make_packet(0, 0, 0, {1, 2}));
  sw.inject(make_packet(1, 1, 0, {1, 3}));
  SlotResult r0;
  sw.step(0, rng, r0);
  // Pointer at 0: input 0 wins output 1 (and 2); input 1 gets output 3
  // only — its cell splits and the pointer must NOT advance past it...
  // input 0's cell departed whole, so the pointer advances to 1, keeping
  // the split cell's residue first in line.
  EXPECT_EQ(sw.multicast_pointer(), 1);
  SlotResult r1;
  sw.step(1, rng, r1);
  ASSERT_EQ(r1.deliveries.size(), 1u);
  EXPECT_EQ(r1.deliveries[0].input, 1);
  EXPECT_EQ(r1.deliveries[0].output, 1);
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(Eslip, UnicastPreferredOnOddSlots) {
  // Contended output 0: multicast from input 0, unicast from input 1,
  // both arriving in an odd slot: the unicast wins the contended output;
  // the multicast still takes its uncontended output.
  Rng rng(1);
  EslipSwitch sw2(4);
  sw2.inject(make_packet(0, 0, 1, {0, 2}));
  sw2.inject(make_packet(1, 1, 1, {0}));
  SlotResult r1;
  sw2.step(1, rng, r1);
  // Unicast preferred at output 0 -> input 1; multicast gets output 2.
  bool unicast_won_output0 = false;
  for (const Delivery& d : r1.deliveries)
    if (d.output == 0 && d.input == 1) unicast_won_output0 = true;
  EXPECT_TRUE(unicast_won_output0);
}

TEST(Eslip, MulticastPreferredOnEvenSlots) {
  EslipSwitch sw(4);
  Rng rng(1);
  sw.inject(make_packet(0, 0, 0, {0, 2}));
  sw.inject(make_packet(1, 1, 0, {0}));
  SlotResult r0;
  sw.step(0, rng, r0);
  bool multicast_won_output0 = false;
  for (const Delivery& d : r0.deliveries)
    if (d.output == 0 && d.input == 0) multicast_won_output0 = true;
  EXPECT_TRUE(multicast_won_output0);
}

TEST(Eslip, McqHolBlockingBetweenMulticasts) {
  // Multicast packets share ONE queue: the second multicast cannot be
  // scheduled while the first has residue, even to idle outputs.
  EslipSwitch sw(4);
  Rng rng(1);
  sw.inject(make_packet(0, 0, 0, {1, 2}));
  sw.inject(make_packet(1, 1, 0, {1, 3}));
  // Slot 0 (even): one mc cell wins output 1, the other splits.
  SlotResult r0;
  sw.step(0, rng, r0);
  // Inject a second multicast at the split input targeting idle outputs.
  const PortId split_input = sw.input(0).mcq_empty() ? 1 : 0;
  sw.inject(make_packet(2, split_input, 1, {0, 2}));
  SlotResult r1;
  sw.step(1, rng, r1);
  for (const Delivery& d : r1.deliveries)
    EXPECT_NE(d.packet, 2u) << "second multicast jumped the shared queue";
}

TEST(Eslip, ConservationUnderRandomTraffic) {
  EslipSwitch sw(8);
  BernoulliTraffic traffic(8, 0.4, 0.3);
  Rng traffic_rng(7), sched_rng(8);
  PacketId next_id = 0;
  std::uint64_t copies_in = 0, copies_out = 0;
  SlotResult result;
  for (SlotTime now = 0; now < 800; ++now) {
    for (PortId input = 0; input < 8; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet p;
      p.id = next_id++;
      p.input = input;
      p.arrival = now;
      p.destinations = dests;
      sw.inject(p);
      copies_in += static_cast<std::uint64_t>(dests.count());
    }
    result.clear();
    sw.step(now, sched_rng, result);
    copies_out += static_cast<std::uint64_t>(result.deliveries.size());
  }
  std::uint64_t queued = 0;
  for (PortId input = 0; input < 8; ++input)
    queued += sw.input(input).pending_copies();
  EXPECT_EQ(copies_in, copies_out + queued);
}

}  // namespace
}  // namespace fifoms
