// Property sweeps for TATRA's Tetris-box state: block conservation,
// departure ordering and stability of the column invariants under random
// multicast traffic on the single-FIFO switch.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "sched/tatra.hpp"
#include "sim/single_fifo_switch.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

struct TatraParam {
  int ports;
  double p;
  double b;
  std::uint64_t seed;
};

class TatraPropertyTest : public ::testing::TestWithParam<TatraParam> {};

TEST_P(TatraPropertyTest, BlocksMirrorHolResidues) {
  // Invariant: after every slot, the total column height equals the sum
  // over inputs of their HOL cells' remaining fanout (each placed block
  // is exactly one pending (HOL cell, output) pair) — counting only cells
  // that have already been placed, i.e. those visible at HOL before the
  // slot's schedule.  Since schedule() places every valid HOL cell, after
  // step() all HOL cells are placed.
  const TatraParam param = GetParam();
  auto scheduler = std::make_unique<TatraScheduler>();
  TatraScheduler* tatra = scheduler.get();
  SingleFifoSwitch sw(param.ports, std::move(scheduler));

  BernoulliTraffic traffic(param.ports, param.p, param.b);
  Rng traffic_rng(param.seed), sched_rng(param.seed + 1);
  PacketId next_id = 0;
  // Mirror of the scheduler's placement bookkeeping: a HOL cell is placed
  // (owns blocks) from the first schedule() call that sees it.  Cells
  // promoted to HOL by this slot's departures are placed only next slot.
  std::vector<PacketId> placed(static_cast<std::size_t>(param.ports),
                               kNoPacket);
  SlotResult result;
  for (SlotTime now = 0; now < 400; ++now) {
    for (PortId input = 0; input < param.ports; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      sw.inject(packet);
    }
    // Whatever is at HOL right now will be placed by this slot's schedule.
    for (PortId input = 0; input < param.ports; ++input) {
      const SingleFifoInput& port = sw.input(input);
      placed[static_cast<std::size_t>(input)] =
          port.empty() ? kNoPacket : port.hol().packet;
    }
    result.clear();
    sw.step(now, sched_rng, result);

    std::size_t total_height = 0;
    for (PortId output = 0; output < param.ports; ++output)
      total_height += tatra->column_height(output);
    std::size_t total_residue = 0;
    for (PortId input = 0; input < param.ports; ++input) {
      const SingleFifoInput& port = sw.input(input);
      if (port.empty()) continue;
      if (port.hol().packet != placed[static_cast<std::size_t>(input)])
        continue;  // promoted this slot: blocks not in the box yet
      total_residue +=
          static_cast<std::size_t>(port.hol().remaining.count());
    }
    ASSERT_EQ(total_height, total_residue) << "slot " << now;
  }
}

TEST_P(TatraPropertyTest, PerColumnServiceIsFcfsByPlacement) {
  // Within one output column, cells must be served in the order their
  // blocks were placed — verify via non-decreasing HOL-entry order proxy:
  // for unicast-only traffic the placement order equals arrival order of
  // the packets that reached HOL, so delivered arrival stamps per output
  // from a single input are non-decreasing.
  const TatraParam param = GetParam();
  SingleFifoSwitch sw(param.ports, std::make_unique<TatraScheduler>());
  BernoulliTraffic traffic(param.ports, param.p, param.b);
  Rng traffic_rng(param.seed + 7), sched_rng(param.seed + 8);
  PacketId next_id = 0;
  std::map<std::pair<PortId, PortId>, SlotTime> last_arrival;
  SlotResult result;
  for (SlotTime now = 0; now < 400; ++now) {
    for (PortId input = 0; input < param.ports; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      sw.inject(packet);
    }
    result.clear();
    sw.step(now, sched_rng, result);
    for (const Delivery& d : result.deliveries) {
      auto& last = last_arrival[{d.input, d.output}];
      ASSERT_GE(d.arrival, last)
          << "input FIFO order violated at output " << d.output;
      last = d.arrival;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TatraPropertyTest,
    ::testing::Values(TatraParam{2, 0.8, 0.8, 31}, TatraParam{4, 0.5, 0.4, 32},
                      TatraParam{8, 0.3, 0.25, 33},
                      TatraParam{16, 0.15, 0.2, 34},
                      TatraParam{8, 0.9, 0.5, 35}),
    [](const ::testing::TestParamInfo<TatraParam>& info) {
      std::string name = "N";
      name += std::to_string(info.param.ports);
      name += "_seed";
      name += std::to_string(info.param.seed);
      return name;
    });

}  // namespace
}  // namespace fifoms
