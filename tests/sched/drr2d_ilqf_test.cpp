#include <gtest/gtest.h>

#include "sched/drr2d.hpp"
#include "sched/ilqf.hpp"
#include "test_util.hpp"

namespace fifoms {
namespace {

using test::make_packet;

std::vector<McVoqInput> make_ports(int n) {
  std::vector<McVoqInput> ports;
  for (PortId p = 0; p < n; ++p) ports.emplace_back(p, n);
  return ports;
}

template <typename Scheduler>
SlotMatching schedule(Scheduler& sched, std::vector<McVoqInput>& ports,
                      std::uint64_t seed = 1) {
  SlotMatching m(static_cast<int>(ports.size()),
                 static_cast<int>(ports.size()));
  Rng rng(seed);
  sched.schedule(ports, 0, m, rng);
  m.validate();
  return m;
}

void fill_backlog(std::vector<McVoqInput>& ports, PacketId& id) {
  const int n = static_cast<int>(ports.size());
  for (PortId input = 0; input < n; ++input) {
    Packet p;
    p.id = id++;
    p.input = input;
    p.arrival = static_cast<SlotTime>(id);
    p.destinations = PortSet::all(n);
    ports[static_cast<std::size_t>(input)].accept(p);
  }
}

TEST(Drr2d, EmptyIdle) {
  auto ports = make_ports(4);
  Drr2dScheduler sched;
  sched.reset(4, 4);
  EXPECT_EQ(schedule(sched, ports).matched_pairs(), 0);
}

TEST(Drr2d, PerfectMatchingUnderFullBacklog) {
  auto ports = make_ports(4);
  PacketId id = 0;
  fill_backlog(ports, id);
  Drr2dScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.matched_pairs(), 4);  // first diagonal matches everyone
}

TEST(Drr2d, FirstDiagonalRotatesEverySlot) {
  auto ports = make_ports(4);
  Drr2dScheduler sched;
  sched.reset(4, 4);
  SlotMatching m(4, 4);
  Rng rng(1);
  EXPECT_EQ(sched.first_diagonal(), 0);
  sched.schedule(ports, 0, m, rng);
  EXPECT_EQ(sched.first_diagonal(), 1);
  m.reset(4, 4);
  sched.schedule(ports, 1, m, rng);
  EXPECT_EQ(sched.first_diagonal(), 2);
}

TEST(Drr2d, DiagonalPriorityVisible) {
  // With first diagonal 0, pair (i, i) has priority over (i, i+1).
  auto ports = make_ports(2);
  ports[0].accept(make_packet(0, 0, 0, {0, 1}));
  ports[1].accept(make_packet(1, 1, 0, {0, 1}));
  Drr2dScheduler sched;
  sched.reset(2, 2);
  const SlotMatching m = schedule(sched, ports);
  // Diagonal 0: (0,0) and (1,1) matched first; nothing left after.
  EXPECT_EQ(m.source(0), 0);
  EXPECT_EQ(m.source(1), 1);
}

TEST(Drr2d, RotationGivesEveryPairServiceOverNSlots) {
  // One persistent VOQ(0, 1) competitor against VOQ(1, 1): both get
  // served within a 2-slot rotation cycle.
  auto ports = make_ports(2);
  PacketId id = 0;
  for (int k = 0; k < 4; ++k) {
    ports[0].accept(make_packet(id++, 0, k, {1}));
    ports[1].accept(make_packet(id++, 1, k, {1}));
  }
  Drr2dScheduler sched;
  sched.reset(2, 2);
  Rng rng(1);
  std::set<PortId> sources;
  for (SlotTime now = 0; now < 2; ++now) {
    SlotMatching m(2, 2);
    sched.schedule(ports, now, m, rng);
    m.validate();
    ASSERT_TRUE(m.output_matched(1));
    sources.insert(m.source(1));
    ports[static_cast<std::size_t>(m.source(1))].serve_hol(1);
  }
  EXPECT_EQ(sources.size(), 2u);  // both inputs served across the cycle
}

TEST(Drr2d, MaximalUnderScatteredRequests) {
  auto ports = make_ports(4);
  ports[0].accept(make_packet(0, 0, 0, {2}));
  ports[3].accept(make_packet(1, 3, 0, {1}));
  Drr2dScheduler sched;
  sched.reset(4, 4);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.source(2), 0);
  EXPECT_EQ(m.source(1), 3);
}

TEST(Drr2dDeath, RectangularRejected) {
  Drr2dScheduler sched;
  EXPECT_DEATH(sched.reset(2, 4), "square");
}

TEST(Ilqf, LongestQueueWinsGrant) {
  auto ports = make_ports(2);
  // VOQ(0, 0) has 3 cells, VOQ(1, 0) has 1.
  for (int k = 0; k < 3; ++k)
    ports[0].accept(make_packet(static_cast<PacketId>(k), 0, k, {0}));
  ports[1].accept(make_packet(10, 1, 0, {0}));
  IlqfScheduler sched;
  sched.reset(2, 2);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.source(0), 0);
}

TEST(Ilqf, AcceptPrefersLongestVoq) {
  auto ports = make_ports(2);
  // Input 0 has VOQ(0,0) with 1 cell and VOQ(0,1) with 3 cells; both
  // outputs grant it (no competition): it must accept output 1.
  ports[0].accept(make_packet(0, 0, 0, {0, 1}));
  ports[0].accept(make_packet(1, 0, 1, {1}));
  ports[0].accept(make_packet(2, 0, 2, {1}));
  IlqfScheduler sched;
  sched.reset(2, 2);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.grants(0), (PortSet{1}));
}

TEST(Ilqf, IteratesToMaximal) {
  auto ports = make_ports(3);
  PacketId id = 0;
  fill_backlog(ports, id);
  IlqfScheduler sched;
  sched.reset(3, 3);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.matched_pairs(), 3);
}

TEST(Ilqf, TiesRandomised) {
  bool zero_won = false, one_won = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    auto ports = make_ports(2);
    ports[0].accept(make_packet(0, 0, 0, {0}));
    ports[1].accept(make_packet(1, 1, 0, {0}));
    IlqfScheduler sched;
    sched.reset(2, 2);
    const SlotMatching m = schedule(sched, ports, seed);
    zero_won |= m.source(0) == 0;
    one_won |= m.source(0) == 1;
  }
  EXPECT_TRUE(zero_won);
  EXPECT_TRUE(one_won);
}

TEST(Ilqf, IterationCapRespected) {
  IlqfOptions options;
  options.max_iterations = 1;
  IlqfScheduler sched(options);
  sched.reset(4, 4);
  auto ports = make_ports(4);
  PacketId id = 0;
  fill_backlog(ports, id);
  const SlotMatching m = schedule(sched, ports);
  EXPECT_EQ(m.rounds, 1);
}

}  // namespace
}  // namespace fifoms
