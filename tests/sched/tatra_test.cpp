#include "sched/tatra.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fifoms {
namespace {

HolCellView cell(PortId input, PacketId packet, SlotTime arrival,
                 std::initializer_list<PortId> remaining) {
  HolCellView view;
  view.valid = true;
  view.input = input;
  view.packet = packet;
  view.arrival = arrival;
  view.remaining = PortSet(remaining);
  view.initial_fanout = view.remaining.count();
  return view;
}

SlotMatching schedule(TatraScheduler& sched, std::vector<HolCellView>& hol,
                      SlotTime now, std::uint64_t seed = 1) {
  SlotMatching m(static_cast<int>(hol.size()), static_cast<int>(hol.size()));
  Rng rng(seed);
  sched.schedule(hol, now, m, rng);
  m.validate();
  return m;
}

TEST(Tatra, EmptyIdle) {
  TatraScheduler sched;
  sched.reset(4, 4);
  std::vector<HolCellView> hol(4);
  EXPECT_EQ(schedule(sched, hol, 0).matched_pairs(), 0);
}

TEST(Tatra, LoneCellServedEverywhereAtOnce) {
  TatraScheduler sched;
  sched.reset(4, 4);
  std::vector<HolCellView> hol(4);
  hol[1] = cell(1, 10, 0, {0, 2, 3});
  const SlotMatching m = schedule(sched, hol, 0);
  EXPECT_EQ(m.grants(1), (PortSet{0, 2, 3}));
}

TEST(Tatra, ColumnStacksServeFcfsByHolEntry) {
  TatraScheduler sched;
  sched.reset(2, 2);
  // Slot 0: input 0's cell (arrival 0) enters HOL targeting output 0.
  std::vector<HolCellView> hol(2);
  hol[0] = cell(0, 1, 0, {0});
  SlotMatching m0 = schedule(sched, hol, 0);
  EXPECT_EQ(m0.source(0), 0);

  // Slot 1: input 0's next cell and input 1's cell both want output 0;
  // the cell that entered HOL earlier (input 1, placed in slot 1 alongside)
  // ... both enter in slot 1 with different arrival stamps: arrival order
  // decides the stack order.
  hol[0] = cell(0, 2, 1, {0});
  hol[1] = cell(1, 3, 0, {0});  // older arrival: settles lower
  SlotMatching m1 = schedule(sched, hol, 1);
  EXPECT_EQ(m1.source(0), 1);

  // Slot 2: input 1's cell departed; input 0's cell is now at the bottom.
  hol[1] = HolCellView{};
  SlotMatching m2 = schedule(sched, hol, 2);
  EXPECT_EQ(m2.source(0), 0);
}

TEST(Tatra, FanoutSplitAcrossSlots) {
  TatraScheduler sched;
  sched.reset(2, 2);
  std::vector<HolCellView> hol(2);
  // Input 0 multicast {0,1}; input 1 unicast {1} with earlier arrival.
  hol[0] = cell(0, 1, 5, {0, 1});
  hol[1] = cell(1, 2, 3, {1});
  SlotMatching m0 = schedule(sched, hol, 5);
  // Output 0: only input 0's block -> served.  Output 1: input 1's block
  // is lower (earlier arrival) -> input 1 served; input 0's copy waits.
  EXPECT_EQ(m0.source(0), 0);
  EXPECT_EQ(m0.source(1), 1);

  // Next slot: input 0 still at HOL with residue {1}; input 1 departed.
  hol[0].remaining = PortSet{1};
  hol[1] = HolCellView{};
  SlotMatching m1 = schedule(sched, hol, 6);
  EXPECT_EQ(m1.source(1), 0);
  EXPECT_EQ(m1.source(0), kNoPort);
}

TEST(Tatra, BlocksPlacedOncePerHolCell) {
  TatraScheduler sched;
  sched.reset(2, 2);
  std::vector<HolCellView> hol(2);
  hol[0] = cell(0, 1, 0, {0, 1});
  // Same HOL cell visible for several slots must not re-enter the box.
  (void)schedule(sched, hol, 0);  // serves both columns -> cell done
  EXPECT_EQ(sched.column_height(0), 0u);
  EXPECT_EQ(sched.column_height(1), 0u);
}

TEST(Tatra, SimultaneousEntrantsRandomised) {
  // Two cells with identical arrival entering HOL in the same slot: the
  // stack order (hence who wins the shared output) varies with the seed.
  bool input0_won = false, input1_won = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    TatraScheduler sched;
    sched.reset(2, 2);
    std::vector<HolCellView> hol(2);
    hol[0] = cell(0, 1, 7, {0});
    hol[1] = cell(1, 2, 7, {0});
    const SlotMatching m = schedule(sched, hol, 7, seed);
    input0_won |= m.source(0) == 0;
    input1_won |= m.source(0) == 1;
  }
  EXPECT_TRUE(input0_won);
  EXPECT_TRUE(input1_won);
}

TEST(Tatra, HolBlockingObservable) {
  // Input 0: HOL cell blocked at output 0 behind input 1's earlier cell.
  // Even though output 1 is idle and input 0's *second* queued packet
  // would go there, TATRA cannot see past the head: output 1 stays idle.
  TatraScheduler sched;
  sched.reset(2, 2);
  std::vector<HolCellView> hol(2);
  hol[0] = cell(0, 1, 4, {0});
  hol[1] = cell(1, 2, 3, {0});
  const SlotMatching m = schedule(sched, hol, 4);
  EXPECT_EQ(m.source(0), 1);
  EXPECT_EQ(m.source(1), kNoPort);  // idle despite backlog behind HOL
}

TEST(Tatra, ResetClearsBox) {
  TatraScheduler sched;
  sched.reset(2, 2);
  std::vector<HolCellView> hol(2);
  hol[0] = cell(0, 1, 0, {0});
  hol[1] = cell(1, 2, 0, {0});
  (void)schedule(sched, hol, 0);
  EXPECT_GT(sched.column_height(0), 0u);
  sched.reset(2, 2);
  EXPECT_EQ(sched.column_height(0), 0u);
}

}  // namespace
}  // namespace fifoms
