// Exhaustive hardware/behavioural equivalence at small radix.
//
// Replaces the N<=3 rows of the sampled differential sweep in
// tests/hw/fifoms_control_unit_test.cpp: instead of 500 random slots, the
// explorer drives hw::FifomsControlUnit and FifomsScheduler{kLowestInput}
// over EVERY reachable queue state within the bounds and demands
// bit-exact matchings — alongside the other FIFOMS properties.  Labelled
// slow in CTest (tens of seconds); `ctest -L quick` skips it.
#include <gtest/gtest.h>

#include "verify/explorer.hpp"

namespace fifoms::verify {
namespace {

TEST(HwEquivalenceExhaustive, Full2x2Fixpoint) {
  ExplorerOptions options;
  options.ports = 2;
  options.max_packets_per_input = 4;
  options.check_equivalence = true;
  const ExplorerResult result = Explorer(options).run();

  ASSERT_TRUE(result.ok())
      << encode_trace(result.counterexamples.front().trace) << ": "
      << result.counterexamples.front().violations.front().detail;
  EXPECT_TRUE(result.stats.complete);
  // Acceptance bar from the verifier's design brief: >= 10^4 canonical
  // states on the 2x2 switch.  Depth 4 delivers ~2.8M.
  EXPECT_GE(result.stats.canonical_states, 10000u);
  EXPECT_GE(result.stats.starvation_bound, 1);
}

TEST(HwEquivalenceExhaustive, Bounded3x3) {
  ExplorerOptions options;
  options.ports = 3;
  options.max_packets_per_input = 2;
  options.max_slots = 4;
  options.check_equivalence = true;
  options.check_starvation = false;  // bounded run reaches no fixpoint
  const ExplorerResult result = Explorer(options).run();

  ASSERT_TRUE(result.ok())
      << encode_trace(result.counterexamples.front().trace) << ": "
      << result.counterexamples.front().violations.front().detail;
  EXPECT_FALSE(result.stats.complete);
  EXPECT_GE(result.stats.canonical_states, 1000000u);
}

}  // namespace
}  // namespace fifoms::verify
