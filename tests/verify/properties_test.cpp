#include "verify/properties.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/fifoms.hpp"
#include "core/matching.hpp"
#include "verify/explorer.hpp"

namespace fifoms::verify {
namespace {

SwitchState make_state(int ports,
                       std::vector<std::vector<PacketState>> packets) {
  SwitchState state(ports);
  for (std::size_t i = 0; i < packets.size(); ++i)
    state.mutable_inputs()[i].packets = std::move(packets[i]);
  return state;
}

bool has_property(const std::vector<Violation>& violations,
                  Property property) {
  for (const Violation& violation : violations)
    if (violation.property == property) return true;
  return false;
}

/// The real scheduler's matching on `state`, via the explorer's engine.
SlotMatching real_matching(const SwitchState& state) {
  SlotEngine engine(state.ports(), Mutation::kNone,
                    /*check_equivalence=*/false);
  SlotEngine::Outcome outcome;
  std::vector<Violation> violations;
  EXPECT_EQ(engine.step(state, outcome, violations), 0);
  return outcome.matching;
}

TEST(Properties, CleanMatchingPasses) {
  auto state = make_state(2, {{{.stamp = 0, .residue = {0, 1}}},
                              {{.stamp = 0, .residue = {0}}}});
  std::vector<Violation> violations;
  EXPECT_EQ(check_matching_properties(state, real_matching(state), violations),
            0);
  EXPECT_TRUE(violations.empty());
}

TEST(Properties, NonMaximalMatchingIsFlagged) {
  auto state = make_state(2, {{{.stamp = 0, .residue = {0}}},
                              {{.stamp = 0, .residue = {1}}}});
  SlotMatching matching(2, 2);
  matching.add_match(0, 0);  // leaves free pair (1, 1) with a waiting cell
  std::vector<Violation> violations;
  EXPECT_GT(check_matching_properties(state, matching, violations), 0);
  EXPECT_TRUE(has_property(violations, Property::kMaximalMatching));
  EXPECT_EQ(violations.front().state_hash, state.hash());
}

TEST(Properties, GrantOfTwoDifferentDataCellsIsFlagged) {
  // in0 holds two packets; granting it both outputs would require the
  // crossbar row to carry two different data cells at once.
  auto state = make_state(
      2, {{{.stamp = 0, .residue = {0}}, {.stamp = 1, .residue = {1}}}, {}});
  SlotMatching matching(2, 2);
  matching.add_match(0, 0);
  matching.add_match(0, 1);
  std::vector<Violation> violations;
  EXPECT_GT(check_matching_properties(state, matching, violations), 0);
  EXPECT_TRUE(has_property(violations, Property::kNoAcceptSafety));
}

TEST(Properties, FanoutSplitOfOnePacketIsSafe) {
  // Both grants reference the SAME packet (equal stamps) — the paper's
  // no-accept argument — so this must pass (b).
  auto state = make_state(2, {{{.stamp = 0, .residue = {0, 1}}}, {}});
  SlotMatching matching(2, 2);
  matching.add_match(0, 0);
  matching.add_match(0, 1);
  std::vector<Violation> violations;
  EXPECT_EQ(check_matching_properties(state, matching, violations), 0);
}

TEST(Properties, GrantToEmptyVoqIsFlagged) {
  auto state = make_state(2, {{{.stamp = 0, .residue = {0}}}, {}});
  SlotMatching matching(2, 2);
  matching.add_match(1, 1);  // in1 has nothing queued
  std::vector<Violation> violations;
  EXPECT_GT(check_matching_properties(state, matching, violations), 0);
  EXPECT_TRUE(has_property(violations, Property::kNoAcceptSafety));
}

TEST(Properties, GlobalMinimumMustBeServedWhereItCompetes) {
  auto state = make_state(2, {{{.stamp = 0, .residue = {0}}},
                              {{.stamp = 1, .residue = {0}}}});
  SlotMatching matching(2, 2);
  matching.add_match(1, 0);  // serves the younger cell over the global min
  std::vector<Violation> violations;
  EXPECT_GT(check_matching_properties(state, matching, violations), 0);
  EXPECT_TRUE(has_property(violations, Property::kTimestampOrder));
}

TEST(Properties, MatchedInputMayNotSkipOlderCellForFreeOutput) {
  // in0's older packet wants output 1 (which stays free); serving only the
  // younger packet to output 0 violates FIFO service order at the input.
  auto state = make_state(
      2, {{{.stamp = 0, .residue = {1}}, {.stamp = 1, .residue = {0}}}, {}});
  SlotMatching matching(2, 2);
  matching.add_match(0, 0);  // serves stamp 1 while stamp 0 could go out 1
  std::vector<Violation> violations;
  EXPECT_GT(check_matching_properties(state, matching, violations), 0);
  EXPECT_TRUE(has_property(violations, Property::kTimestampOrder));
}

// The naive phrasing of property (c) — "an output never serves a cell
// while a strictly older HOL cell for it exists anywhere" — is FALSE for
// correct FIFOMS.  This is the three-port witness from
// docs/VERIFICATION.md: output 1 serves stamp 3 although input 1 holds
// stamp 1 for it, because input 1 lost output 2 to stamp 0 first.  The
// real scheduler must PASS the property engine on this state.
TEST(Properties, CorrectFifomsMayServeYoungerCellAtAnOutput) {
  auto state = make_state(
      3, {{{.stamp = 3, .residue = {1}}},
          {{.stamp = 1, .residue = {2}}, {.stamp = 2, .residue = {1}}},
          {{.stamp = 0, .residue = {2}}}});
  const SlotMatching matching = real_matching(state);
  // Input 1's minimum HOL stamp is 1, so it requests only output 2 — and
  // loses it to input 2's stamp 0.  Output 1's sole request is input 0's
  // stamp 3, which it serves although input 1 queues stamp 2 for it.
  EXPECT_EQ(matching.source(2), 2);
  EXPECT_EQ(matching.source(1), 0);
  std::vector<Violation> violations;
  EXPECT_EQ(check_matching_properties(state, matching, violations), 0)
      << (violations.empty() ? "" : violations.front().detail);
}

TEST(Properties, EquivalenceComparesSourcesAndRounds) {
  auto state = make_state(2, {{{.stamp = 0, .residue = {0}}}, {}});
  SlotMatching sw(2, 2), hw(2, 2);
  sw.add_match(0, 0);
  sw.rounds = 1;
  hw.rounds = 1;  // hardware left output 0 idle
  std::vector<Violation> violations;
  EXPECT_EQ(check_equivalence(state, sw, hw, violations), 1);
  EXPECT_TRUE(has_property(violations, Property::kHwEquivalence));

  violations.clear();
  hw.add_match(0, 0);
  EXPECT_EQ(check_equivalence(state, sw, hw, violations), 0);

  hw.rounds = 2;
  EXPECT_EQ(check_equivalence(state, sw, hw, violations), 1);
}

}  // namespace
}  // namespace fifoms::verify
