#include "verify/explorer.hpp"

#include <gtest/gtest.h>

#include <string>

namespace fifoms::verify {
namespace {

ExplorerOptions small_options() {
  ExplorerOptions options;
  options.ports = 2;
  options.max_packets_per_input = 3;
  return options;
}

TEST(TraceCodec, RoundTripsAndRejectsMalformedInput) {
  Trace trace{{PortSet{0, 1}, PortSet{}}, {PortSet{1}, PortSet{0}}};
  const std::string text = encode_trace(trace);
  EXPECT_EQ(text, "3,0;2,1");

  Trace decoded;
  ASSERT_TRUE(decode_trace(text, 2, decoded));
  EXPECT_EQ(decoded, trace);

  EXPECT_TRUE(decode_trace("", 2, decoded));
  EXPECT_TRUE(decoded.empty());

  EXPECT_FALSE(decode_trace("3", 2, decoded));       // one input missing
  EXPECT_FALSE(decode_trace("3,0,1", 2, decoded));   // one input too many
  EXPECT_FALSE(decode_trace("4,0", 2, decoded));     // mask beyond radix
  EXPECT_FALSE(decode_trace("x,0", 2, decoded));     // not a hex mask
  EXPECT_FALSE(decode_trace("3,0;;1,1", 2, decoded));
}

TEST(Explorer, CorrectFifomsIsCleanOnExhaustive2x2) {
  const ExplorerResult result = Explorer(small_options()).run();
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.stats.complete);
  // Depth 3 on a 2x2 switch already covers tens of thousands of states.
  EXPECT_GT(result.stats.canonical_states, 10000u);
  EXPECT_EQ(result.stats.canonical_states + result.stats.dedup_hits,
            result.stats.transitions);
  EXPECT_GT(result.stats.frontier_slots, 4);
  // Property (d): the adversary can delay a front packet, but only so
  // long — and the fixpoint proves it on every reachable state.
  EXPECT_GE(result.stats.starvation_bound, 1);
  EXPECT_LE(result.stats.starvation_bound, 8);
}

TEST(Explorer, DepthBoundedRunReportsIncomplete) {
  ExplorerOptions options = small_options();
  options.max_slots = 2;
  const ExplorerResult result = Explorer(options).run();
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.stats.complete);
  EXPECT_EQ(result.stats.frontier_slots, 2);
  EXPECT_EQ(result.stats.starvation_bound, -1);  // no fixpoint, no bound
}

TEST(Explorer, StateBudgetStopsExploration) {
  ExplorerOptions options = small_options();
  options.max_states = 10;
  const ExplorerResult result = Explorer(options).run();
  EXPECT_FALSE(result.stats.complete);
  EXPECT_LE(result.stats.service_states, 10u + 4u);  // one expansion slack
}

struct MutantCase {
  Mutation mutation;
  Property expected;
};

class MutantDetection : public ::testing::TestWithParam<MutantCase> {};

TEST_P(MutantDetection, ExplorerFindsAReplayableCounterexample) {
  ExplorerOptions options = small_options();
  options.mutation = GetParam().mutation;
  const ExplorerResult result = Explorer(options).run();
  ASSERT_EQ(result.counterexamples.size(), 1u);
  const CounterExample& counterexample = result.counterexamples.front();
  ASSERT_FALSE(counterexample.violations.empty());

  bool expected_seen = false;
  for (const Violation& violation : counterexample.violations)
    expected_seen = expected_seen || violation.property == GetParam().expected;
  EXPECT_TRUE(expected_seen)
      << "wanted " << property_name(GetParam().expected) << ", got "
      << property_name(counterexample.violations.front().property) << ": "
      << counterexample.violations.front().detail;

  // The trace must reproduce the exact same violations from the empty
  // switch — through the text round-trip a bug report would use.
  Trace decoded;
  ASSERT_TRUE(
      decode_trace(encode_trace(counterexample.trace), options.ports, decoded));
  ExplorerOptions replay_options = options;
  replay_options.check_starvation = false;
  const ReplayResult replay = replay_trace(replay_options, decoded);
  ASSERT_EQ(replay.violations.size(), counterexample.violations.size());
  for (std::size_t k = 0; k < replay.violations.size(); ++k) {
    EXPECT_EQ(replay.violations[k].property,
              counterexample.violations[k].property);
    EXPECT_EQ(replay.violations[k].state_hash,
              counterexample.violations[k].state_hash);
    EXPECT_EQ(replay.violations[k].detail,
              counterexample.violations[k].detail);
  }
  EXPECT_NE(replay.log.find("VIOLATION"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllMutants, MutantDetection,
    ::testing::Values(
        MutantCase{Mutation::kSingleRound, Property::kMaximalMatching},
        MutantCase{Mutation::kYoungestFirst, Property::kTimestampOrder},
        MutantCase{Mutation::kIgnoreTimestamps, Property::kTimestampOrder},
        MutantCase{Mutation::kHighestInputTieBreak, Property::kHwEquivalence}),
    [](const ::testing::TestParamInfo<MutantCase>& info) {
      std::string name(mutation_name(info.param.mutation));
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_mutant";
    });

TEST(MutantDetection, IgnoreTimestampsBreaksNoAcceptSafetyDirectly) {
  // The BFS meets a timestamp-order violation first; pin the mutant's
  // signature bug — one input granted two different data cells — on a
  // crafted state via the engine.
  SwitchState state(2);
  state.mutable_inputs()[0].packets = {{.stamp = 0, .residue = {0}},
                                       {.stamp = 1, .residue = {1}}};
  SlotEngine engine(2, Mutation::kIgnoreTimestamps,
                    /*check_equivalence=*/false);
  SlotEngine::Outcome outcome;
  std::vector<Violation> violations;
  EXPECT_GT(engine.step(state, outcome, violations), 0);
  bool no_accept = false;
  for (const Violation& violation : violations)
    no_accept = no_accept || violation.property == Property::kNoAcceptSafety;
  EXPECT_TRUE(no_accept);
}

TEST(Replay, CleanTraceProducesCleanLog) {
  Trace trace;
  ASSERT_TRUE(decode_trace("3,3;1,2;0,1", 2, trace));
  ExplorerOptions options = small_options();
  const ReplayResult result = replay_trace(options, trace);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_NE(result.log.find("slot 2"), std::string::npos);
  EXPECT_EQ(result.log.find("VIOLATION"), std::string::npos);
}

}  // namespace
}  // namespace fifoms::verify
