#include "verify/state.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/matching.hpp"

namespace fifoms::verify {
namespace {

SwitchState make_state(int ports,
                       std::vector<std::vector<PacketState>> packets) {
  SwitchState state(ports);
  for (std::size_t i = 0; i < packets.size(); ++i)
    state.mutable_inputs()[i].packets = std::move(packets[i]);
  return state;
}

TEST(SwitchState, EmptyStateBasics) {
  SwitchState state(3);
  EXPECT_EQ(state.ports(), 3);
  EXPECT_TRUE(state.is_empty());
  EXPECT_EQ(state.packet_count(), 0u);
  EXPECT_EQ(state.address_cell_count(), 0u);
  EXPECT_EQ(state.front_stamp(0), SwitchState::kNoStamp);
  EXPECT_EQ(state.hol(0, 0), nullptr);
  EXPECT_TRUE(state.well_formed());
}

TEST(SwitchState, CanonicalizeRankCompressesPreservingOrderAndTies) {
  auto state = make_state(
      2, {{{.stamp = 7, .residue = {0}}, {.stamp = 40, .residue = {1}}},
          {{.stamp = 7, .residue = {1}}, {.stamp = 9, .residue = {0}}}});
  state.canonicalize();
  EXPECT_EQ(state.inputs()[0].packets[0].stamp, 0u);
  EXPECT_EQ(state.inputs()[0].packets[1].stamp, 2u);
  EXPECT_EQ(state.inputs()[1].packets[0].stamp, 0u);  // tie with in0 kept
  EXPECT_EQ(state.inputs()[1].packets[1].stamp, 1u);

  // Idempotent: a second pass changes nothing.
  const SwitchState once = state;
  state.canonicalize();
  EXPECT_EQ(state, once);
}

TEST(SwitchState, ShiftedStatesShareOneCanonicalForm) {
  auto a = make_state(2, {{{.stamp = 3, .residue = {0}}},
                          {{.stamp = 5, .residue = {1}}}});
  auto b = make_state(2, {{{.stamp = 100, .residue = {0}}},
                          {{.stamp = 202, .residue = {1}}}});
  a.canonicalize();
  b.canonicalize();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.encode(), b.encode());
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(SwitchState, PushArrivalsSharesOneFreshStamp) {
  SwitchState state(3);
  state.push_arrivals(std::vector<PortSet>{{0, 2}, {}, {1}});
  EXPECT_EQ(state.packet_count(), 2u);
  EXPECT_EQ(state.front_stamp(0), 0u);
  EXPECT_EQ(state.front_stamp(1), SwitchState::kNoStamp);
  EXPECT_EQ(state.front_stamp(2), 0u);  // same slot, same stamp

  state.push_arrivals(std::vector<PortSet>{{1}, {}, {}});
  EXPECT_EQ(state.inputs()[0].packets[1].stamp, 1u);
  EXPECT_TRUE(state.well_formed());
}

TEST(SwitchState, HolProjectsPerVoqHeads) {
  auto state = make_state(
      2, {{{.stamp = 0, .residue = {1}}, {.stamp = 1, .residue = {0, 1}}},
          {}});
  ASSERT_NE(state.hol(0, 0), nullptr);
  EXPECT_EQ(state.hol(0, 0)->stamp, 1u);  // first packet holding output 0
  ASSERT_NE(state.hol(0, 1), nullptr);
  EXPECT_EQ(state.hol(0, 1)->stamp, 0u);
  EXPECT_EQ(state.hol(1, 0), nullptr);
}

TEST(SwitchState, EncodeDecodeRoundTrips) {
  auto state = make_state(
      3, {{{.stamp = 0, .residue = {0, 2}}, {.stamp = 2, .residue = {1}}},
          {{.stamp = 0, .residue = {1}}},
          {}});
  SwitchState decoded;
  ASSERT_TRUE(SwitchState::decode(state.encode(), decoded));
  EXPECT_EQ(decoded, state);

  SwitchState dummy;
  EXPECT_FALSE(SwitchState::decode("", dummy));
  EXPECT_FALSE(SwitchState::decode(std::string("\x02\x01", 2), dummy));
  EXPECT_FALSE(SwitchState::decode(state.encode() + "x", dummy));
}

TEST(SwitchState, WellFormedRejectsBrokenStates) {
  std::string why;
  auto empty_residue = make_state(2, {{{.stamp = 0, .residue = {}}}, {}});
  EXPECT_FALSE(empty_residue.well_formed(&why));
  EXPECT_NE(why.find("empty residue"), std::string::npos);

  auto out_of_radix = make_state(2, {{{.stamp = 0, .residue = {5}}}, {}});
  EXPECT_FALSE(out_of_radix.well_formed(&why));

  auto bad_order = make_state(2, {{{.stamp = 3, .residue = {0}},
                                   {.stamp = 3, .residue = {1}}},
                                  {}});
  EXPECT_FALSE(bad_order.well_formed(&why));
  EXPECT_NE(why.find("strictly increasing"), std::string::npos);
}

TEST(SwitchState, ApplyMatchingPopsHolCellsAndReportsDepartures) {
  // in0 = multicast {0,1} then unicast {1}; in1 = unicast {1}.
  auto state = make_state(
      2, {{{.stamp = 0, .residue = {0, 1}}, {.stamp = 1, .residue = {1}}},
          {{.stamp = 0, .residue = {1}}}});

  SlotMatching matching(2, 2);
  matching.add_match(0, 0);  // serves half of in0's multicast
  matching.add_match(1, 1);  // serves in1's only packet
  const std::uint32_t departed = state.apply_matching(matching);

  EXPECT_EQ(departed, 0b10u);  // in1's front left; in0's front kept {1}
  ASSERT_EQ(state.packets_at(0), 2u);
  EXPECT_EQ(state.inputs()[0].packets[0].residue, (PortSet{1}));
  EXPECT_EQ(state.packets_at(1), 0u);

  SlotMatching rest(2, 2);
  rest.add_match(0, 1);
  EXPECT_EQ(state.apply_matching(rest), 0b01u);  // now in0's front departs
  EXPECT_EQ(state.packet_count(), 1u);
}

TEST(SwitchState, MaterializeAndReadBackAreInverse) {
  auto state = make_state(
      3, {{{.stamp = 0, .residue = {0, 1, 2}}, {.stamp = 1, .residue = {2}}},
          {{.stamp = 1, .residue = {0}}},
          {}});
  std::vector<McVoqInput> ports;
  state.materialize_into(ports);

  // The VOQ projection must match hol() exactly.
  for (PortId i = 0; i < 3; ++i)
    for (PortId j = 0; j < 3; ++j) {
      const PacketState* cell = state.hol(i, j);
      EXPECT_EQ(ports[i].voq_empty(j), cell == nullptr) << i << "," << j;
      if (cell != nullptr) {
        EXPECT_EQ(ports[i].hol(j).weight, cell->stamp) << i << "," << j;
      }
    }

  EXPECT_EQ(SwitchState::read_back(ports), state);

  // Reuse path: materializing a different state into the same ports.
  auto other = make_state(3, {{}, {{.stamp = 0, .residue = {1}}}, {}});
  other.materialize_into(ports);
  EXPECT_EQ(SwitchState::read_back(ports), other);
}

TEST(SwitchState, FromFuzzBytesAlwaysWellFormedAndCanonical) {
  std::vector<unsigned char> bytes;
  for (unsigned seed = 0; seed < 64; ++seed) {
    bytes.clear();
    for (unsigned k = 0; k < 3 + seed; ++k)
      bytes.push_back(static_cast<unsigned char>(seed * 131 + k * 29));
    const SwitchState state = SwitchState::from_fuzz_bytes(bytes);
    std::string why;
    EXPECT_TRUE(state.well_formed(&why)) << why;
    SwitchState copy = state;
    copy.canonicalize();
    EXPECT_EQ(copy, state) << "fuzz state not canonical";
  }
  EXPECT_TRUE(SwitchState::from_fuzz_bytes({}).well_formed());
}

TEST(SwitchState, ToStringIsReadable) {
  auto state = make_state(2, {{{.stamp = 0, .residue = {0, 1}},
                               {.stamp = 2, .residue = {1}}},
                              {}});
  EXPECT_EQ(state.to_string(), "in0: 0@{0,1} 2@{1} | in1: -");
}

}  // namespace
}  // namespace fifoms::verify
