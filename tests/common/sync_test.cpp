// Tests for the annotated synchronization wrappers (common/sync.hpp).
//
// The wrappers exist for Clang Thread Safety Analysis, but they must
// behave exactly like the std primitives they delegate to on every
// compiler — including GCC, where the annotation macros expand to
// nothing.  These tests pin the runtime contract: MutexLock is a real
// scoped lock, CondVar::wait really releases and reacquires, and the
// predicate-loop idiom from the header comment works under contention.
#include "common/sync.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fifoms {
namespace {

TEST(SyncTest, MutexLockHoldsForExactlyItsScope) {
  Mutex mu;
  {
    MutexLock lock(mu);
    EXPECT_FALSE(mu.try_lock());  // held: a second acquisition must fail
  }
  EXPECT_TRUE(mu.try_lock());  // released at scope exit
  mu.unlock();
}

TEST(SyncTest, MutexLockExcludesConcurrentCriticalSections) {
  Mutex mu;
  int counter = 0;  // guarded by mu; races here trip TSan in that lane
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SyncTest, CondVarWaitReleasesAndReacquiresTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> consumer_done{false};

  std::thread consumer([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);  // the header's predicate-loop idiom
    // Reacquired: the producer cannot hold the mutex right now.
    EXPECT_FALSE(mu.try_lock());
    consumer_done = true;
  });

  {
    // If wait() failed to release the mutex this acquisition would
    // deadlock; the predicate handshake below would never complete.
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_TRUE(consumer_done);
}

TEST(SyncTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool released = false;
  std::atomic<int> awake{0};
  constexpr int kWaiters = 3;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!released) cv.wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    released = true;
  }
  cv.notify_all();
  for (std::thread& waiter : waiters) waiter.join();
  EXPECT_EQ(awake, kWaiters);
}

TEST(SyncTest, SpuriousWakeupSafePredicateLoop) {
  // notify_one() with the predicate still false models a spurious
  // wakeup: the loop must re-check and go back to waiting rather than
  // proceed.  The test passes when the waiter is still blocked after
  // the false notify and completes after the true one.
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> passed_wait{false};

  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    passed_wait = true;
  });

  cv.notify_one();  // predicate still false: must not release the waiter
  EXPECT_FALSE(passed_wait);
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(passed_wait);
}

// The annotation shim itself: under GCC (and any compiler without
// thread-safety attributes) the FIFOMS_* macros must vanish cleanly.
// This block compiling at all — annotated types in ordinary contexts,
// annotated functions taking guarded state — is the assertion; under
// clang-tidy's -Wthread-safety lane the same code must analyze clean.
class AnnotatedCounter {
 public:
  void bump() {
    MutexLock lock(mu_);
    ++value_;
  }
  int value() {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  Mutex mu_;
  int value_ FIFOMS_GUARDED_BY(mu_) = 0;
};

TEST(SyncTest, AnnotationShimCompilesAndRuns) {
  AnnotatedCounter counter;
  counter.bump();
  counter.bump();
  EXPECT_EQ(counter.value(), 2);
}

}  // namespace
}  // namespace fifoms
