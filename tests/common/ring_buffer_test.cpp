#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace fifoms {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
}

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb;
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  EXPECT_EQ(rb.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rb.pop_front(), i);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, FrontBackIndexing) {
  RingBuffer<int> rb;
  rb.push_back(10);
  rb.push_back(20);
  rb.push_back(30);
  EXPECT_EQ(rb.front(), 10);
  EXPECT_EQ(rb.back(), 30);
  EXPECT_EQ(rb[0], 10);
  EXPECT_EQ(rb[1], 20);
  EXPECT_EQ(rb[2], 30);
  rb[1] = 99;
  EXPECT_EQ(rb[1], 99);
}

TEST(RingBuffer, WrapAroundKeepsOrder) {
  RingBuffer<int> rb(4);
  // Interleave pushes and pops so head wraps repeatedly.
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) rb.push_back(next_push++);
    for (int i = 0; i < 2; ++i) EXPECT_EQ(rb.pop_front(), next_pop++);
  }
  while (!rb.empty()) EXPECT_EQ(rb.pop_front(), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(RingBuffer, GrowthPreservesContents) {
  RingBuffer<int> rb(2);
  // Force a wrap before growth.
  rb.push_back(0);
  rb.push_back(1);
  rb.pop_front();
  for (int i = 2; i < 100; ++i) rb.push_back(i);
  for (int i = 1; i < 100; ++i) EXPECT_EQ(rb.pop_front(), i);
}

TEST(RingBuffer, ReserveAvoidsLaterGrowth) {
  RingBuffer<int> rb;
  rb.reserve(1000);
  const std::size_t capacity = rb.capacity();
  for (int i = 0; i < 1000; ++i) rb.push_back(i);
  EXPECT_EQ(rb.capacity(), capacity);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb;
  for (int i = 0; i < 10; ++i) rb.push_back(i);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push_back(42);
  EXPECT_EQ(rb.front(), 42);
}

TEST(RingBuffer, CopySemantics) {
  RingBuffer<std::string> rb;
  rb.push_back("a");
  rb.push_back("b");
  RingBuffer<std::string> copy(rb);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.pop_front(), "a");
  EXPECT_EQ(rb.size(), 2u);  // original untouched
  copy = rb;
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy[1], "b");
}

TEST(RingBuffer, MoveSemantics) {
  RingBuffer<std::string> rb;
  rb.push_back("x");
  RingBuffer<std::string> moved(std::move(rb));
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.front(), "x");
  RingBuffer<std::string> assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.front(), "x");
}

TEST(RingBuffer, MatchesDequeUnderRandomOps) {
  RingBuffer<int> rb;
  std::deque<int> reference;
  Rng rng(99);
  for (int step = 0; step < 20000; ++step) {
    if (reference.empty() || rng.bernoulli(0.55)) {
      const int value = static_cast<int>(rng.next_below(1000));
      rb.push_back(value);
      reference.push_back(value);
    } else {
      ASSERT_EQ(rb.pop_front(), reference.front());
      reference.pop_front();
    }
    ASSERT_EQ(rb.size(), reference.size());
    if (!reference.empty()) {
      ASSERT_EQ(rb.front(), reference.front());
      ASSERT_EQ(rb.back(), reference.back());
    }
  }
}

TEST(RingBuffer, MoveOnlyPayloads) {
  // unique_ptr payloads: push_back, pop_front and reallocation must move,
  // never copy.  (The copy constructor/assignment are simply never
  // instantiated for a move-only T.)
  RingBuffer<std::unique_ptr<int>> rb(2);
  for (int i = 0; i < 40; ++i) rb.push_back(std::make_unique<int>(i));
  EXPECT_EQ(rb.size(), 40u);
  EXPECT_EQ(*rb.front(), 0);
  EXPECT_EQ(*rb.back(), 39);
  for (int i = 0; i < 40; ++i) {
    auto value = rb.pop_front();
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, i);
  }
  EXPECT_TRUE(rb.empty());

  RingBuffer<std::unique_ptr<int>> moved(std::move(rb));
  moved.push_back(std::make_unique<int>(7));
  RingBuffer<std::unique_ptr<int>> assigned;
  assigned = std::move(moved);
  EXPECT_EQ(*assigned.front(), 7);
}

TEST(RingBuffer, GrowthMidTraversalByIndex) {
  // The simulator reads queues by logical index (no iterators to
  // invalidate); a push_back that triggers growth mid-traversal must not
  // disturb the logical order already observed or still to come.
  RingBuffer<int> rb(4);  // rounds up to the 8-slot minimum capacity
  rb.push_back(0);
  rb.push_back(1);
  rb.pop_front();  // wrap the head so growth relocates a split ring
  for (int v = 2; v <= 8; ++v) rb.push_back(v);
  ASSERT_EQ(rb.size(), rb.capacity());  // full: {1..8}, tail wrapped past 0

  std::vector<int> seen;
  for (std::size_t i = 0; i < rb.size(); ++i) {
    seen.push_back(rb[i]);
    if (i == 1) {
      const std::size_t before = rb.capacity();
      rb.push_back(9);  // forces reallocation: capacity 8 -> 16
      EXPECT_GT(rb.capacity(), before);
    }
  }
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
  for (int expected = 1; expected <= 9; ++expected)
    EXPECT_EQ(rb.pop_front(), expected);
}

TEST(RingBufferDeath, EmptyAccessPanics) {
  RingBuffer<int> rb;
  EXPECT_DEATH((void)rb.front(), "empty RingBuffer");
  EXPECT_DEATH((void)rb.back(), "empty RingBuffer");
  EXPECT_DEATH((void)rb.pop_front(), "empty RingBuffer");
}

}  // namespace
}  // namespace fifoms
