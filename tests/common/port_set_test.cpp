#include "common/port_set.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace fifoms {
namespace {

TEST(PortSet, DefaultIsEmpty) {
  PortSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.count(), 0);
  EXPECT_EQ(set.first(), kNoPort);
}

TEST(PortSet, InsertContainsErase) {
  PortSet set;
  set.insert(3);
  set.insert(200);
  EXPECT_TRUE(set.contains(3));
  EXPECT_TRUE(set.contains(200));
  EXPECT_FALSE(set.contains(4));
  EXPECT_EQ(set.count(), 2);
  set.erase(3);
  EXPECT_FALSE(set.contains(3));
  EXPECT_EQ(set.count(), 1);
  set.erase(3);  // idempotent
  EXPECT_EQ(set.count(), 1);
}

TEST(PortSet, InitializerList) {
  PortSet set{0, 5, 63, 64, 255};
  EXPECT_EQ(set.count(), 5);
  for (PortId p : {0, 5, 63, 64, 255}) EXPECT_TRUE(set.contains(p));
}

TEST(PortSet, AllOfN) {
  for (int n : {1, 7, 63, 64, 65, 128, 200, 256}) {
    const PortSet set = PortSet::all(n);
    EXPECT_EQ(set.count(), n) << "n=" << n;
    EXPECT_TRUE(set.contains(n - 1));
    if (n < kMaxPorts) {
      EXPECT_FALSE(set.contains(n));
    }
  }
  EXPECT_TRUE(PortSet::all(0).empty());
}

TEST(PortSet, SingleFactory) {
  const PortSet set = PortSet::single(17);
  EXPECT_EQ(set.count(), 1);
  EXPECT_TRUE(set.contains(17));
}

TEST(PortSet, FirstAndNextAfterCrossWords) {
  PortSet set{2, 63, 64, 130};
  EXPECT_EQ(set.first(), 2);
  EXPECT_EQ(set.next_after(2), 63);
  EXPECT_EQ(set.next_after(63), 64);
  EXPECT_EQ(set.next_after(64), 130);
  EXPECT_EQ(set.next_after(130), kNoPort);
  EXPECT_EQ(set.next_after(255), kNoPort);
  EXPECT_EQ(set.next_after(-1), 2);
}

TEST(PortSet, IterationVisitsInOrder) {
  PortSet set{7, 1, 200, 64};
  std::vector<PortId> visited;
  for (PortId p : set) visited.push_back(p);
  EXPECT_EQ(visited, (std::vector<PortId>{1, 7, 64, 200}));
}

TEST(PortSet, IterationOfEmptySet) {
  PortSet set;
  for (PortId p : set) {
    (void)p;
    FAIL() << "empty set iterated";
  }
}

TEST(PortSet, SetAlgebra) {
  PortSet a{1, 2, 3, 64};
  PortSet b{3, 4, 64, 200};
  EXPECT_EQ((a | b), (PortSet{1, 2, 3, 4, 64, 200}));
  EXPECT_EQ((a & b), (PortSet{3, 64}));
  EXPECT_EQ((a - b), (PortSet{1, 2}));
  EXPECT_EQ((b - a), (PortSet{4, 200}));
}

TEST(PortSet, CompoundAssignment) {
  PortSet a{1, 2};
  a |= PortSet{2, 3};
  EXPECT_EQ(a, (PortSet{1, 2, 3}));
  a &= PortSet{2, 3, 4};
  EXPECT_EQ(a, (PortSet{2, 3}));
  a -= PortSet{3};
  EXPECT_EQ(a, (PortSet{2}));
}

TEST(PortSet, SubsetAndIntersection) {
  PortSet a{1, 2};
  PortSet b{1, 2, 3};
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(PortSet{}.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(PortSet{3, 4}));
  EXPECT_FALSE(a.intersects(PortSet{}));
}

TEST(PortSet, NthSelectsKthSmallest) {
  PortSet set{5, 70, 130, 255};
  EXPECT_EQ(set.nth(0), 5);
  EXPECT_EQ(set.nth(1), 70);
  EXPECT_EQ(set.nth(2), 130);
  EXPECT_EQ(set.nth(3), 255);
}

TEST(PortSet, RandomMemberIsUniform) {
  PortSet set{0, 10, 63, 64, 100};
  Rng rng(3);
  std::map<PortId, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[set.random_member(rng)];
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [port, count] : counts) {
    EXPECT_TRUE(set.contains(port));
    EXPECT_NEAR(static_cast<double>(count) / n, 0.2, 0.02);
  }
}

TEST(PortSet, ToStringRoundTrip) {
  for (const PortSet& set :
       {PortSet{}, PortSet{0}, PortSet{1, 2, 3}, PortSet{63, 64, 255}}) {
    EXPECT_EQ(PortSet::from_string(set.to_string()), set);
  }
  EXPECT_EQ(PortSet({0, 3, 7}).to_string(), "{0,3,7}");
  EXPECT_EQ(PortSet{}.to_string(), "{}");
}

TEST(PortSet, NthAtWordBoundaries) {
  // Every boundary pair (63/64, 127/128, 191/192) plus the last port: nth
  // must step across words without skipping or double-counting.
  PortSet set{63, 64, 127, 128, 191, 192, 255};
  EXPECT_EQ(set.nth(0), 63);
  EXPECT_EQ(set.nth(1), 64);
  EXPECT_EQ(set.nth(2), 127);
  EXPECT_EQ(set.nth(3), 128);
  EXPECT_EQ(set.nth(4), 191);
  EXPECT_EQ(set.nth(5), 192);
  EXPECT_EQ(set.nth(6), 255);
  EXPECT_DEATH((void)set.nth(7), "k >= count");
}

TEST(PortSet, NextAfterAtWordBoundaries) {
  PortSet set{63, 64, 127, 128, 191, 192, 255};
  EXPECT_EQ(set.next_after(62), 63);
  EXPECT_EQ(set.next_after(63), 64);
  EXPECT_EQ(set.next_after(64), 127);
  EXPECT_EQ(set.next_after(126), 127);
  EXPECT_EQ(set.next_after(127), 128);
  EXPECT_EQ(set.next_after(128), 191);
  EXPECT_EQ(set.next_after(190), 191);
  EXPECT_EQ(set.next_after(191), 192);
  EXPECT_EQ(set.next_after(192), 255);
  EXPECT_EQ(set.next_after(254), 255);
  EXPECT_EQ(set.next_after(255), kNoPort);
  // A lone last-word bit must be reachable from every earlier word.
  const PortSet last{255};
  EXPECT_EQ(last.next_after(-1), 255);
  EXPECT_EQ(last.next_after(0), 255);
  EXPECT_EQ(last.next_after(63), 255);
  EXPECT_EQ(last.next_after(64), 255);
  EXPECT_EQ(last.next_after(191), 255);
}

TEST(PortSet, FromStringAtWordBoundaries) {
  const PortSet set{63, 64, 127, 128, 191, 192, 255};
  EXPECT_EQ(PortSet::from_string("{63,64,127,128,191,192,255}"), set);
  EXPECT_EQ(PortSet::from_string(set.to_string()), set);
  EXPECT_EQ(PortSet::from_string("{255}"), PortSet{255});
}

TEST(PortSet, WordsViewMatchesMembership) {
  PortSet set{0, 63, 64, 130, 255};
  const auto& words = set.words();
  EXPECT_EQ(words[0], (1ULL << 0) | (1ULL << 63));
  EXPECT_EQ(words[1], 1ULL << 0);
  EXPECT_EQ(words[2], 1ULL << (130 - 128));
  EXPECT_EQ(words[3], 1ULL << (255 - 192));
}

TEST(PortSet, SetWordRebuildsSet) {
  PortSet set;
  set.set_word(1, (1ULL << 0) | (1ULL << 5));
  set.set_word(3, 1ULL << 63);
  EXPECT_EQ(set, (PortSet{64, 69, 255}));
  set.set_word(1, 0);
  EXPECT_EQ(set, PortSet{255});
}

TEST(PortSet, ClearEmpties) {
  PortSet set{1, 2, 3};
  set.clear();
  EXPECT_TRUE(set.empty());
}

TEST(PortSet, FuzzAgainstStdSetReference) {
  // Random insert/erase/query trace, mirrored into std::set; every
  // observable must agree, including iteration order and set algebra.
  Rng rng(1234);
  PortSet set;
  std::set<PortId> reference;
  for (int step = 0; step < 30000; ++step) {
    const PortId p = static_cast<PortId>(rng.next_below(kMaxPorts));
    switch (rng.next_below(3)) {
      case 0:
        set.insert(p);
        reference.insert(p);
        break;
      case 1:
        set.erase(p);
        reference.erase(p);
        break;
      default:
        ASSERT_EQ(set.contains(p), reference.count(p) > 0);
    }
    ASSERT_EQ(set.count(), static_cast<int>(reference.size()));
    if (step % 500 == 0) {
      std::vector<PortId> via_iteration;
      for (PortId member : set) via_iteration.push_back(member);
      std::vector<PortId> expected(reference.begin(), reference.end());
      ASSERT_EQ(via_iteration, expected);
      if (!reference.empty()) {
        ASSERT_EQ(set.first(), *reference.begin());
        ASSERT_EQ(set.nth(static_cast<int>(reference.size()) - 1),
                  *reference.rbegin());
      }
    }
  }
}

TEST(PortSetDeath, OutOfRangeInsertPanics) {
  PortSet set;
  EXPECT_DEATH(set.insert(kMaxPorts), "port id out of range");
  EXPECT_DEATH(set.insert(-1), "port id out of range");
}

TEST(PortSetDeath, RandomMemberOfEmptyPanics) {
  PortSet set;
  Rng rng(1);
  EXPECT_DEATH((void)set.random_member(rng), "empty PortSet");
}

TEST(PortSetDeath, MalformedFromStringPanics) {
  EXPECT_DEATH((void)PortSet::from_string("0,1"), "expected");
  EXPECT_DEATH((void)PortSet::from_string("{a}"), "digit");
}

}  // namespace
}  // namespace fifoms
