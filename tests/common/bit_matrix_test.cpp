#include "common/bit_matrix.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/rng.hpp"

namespace fifoms {
namespace {

TEST(Transpose64, SingleBitMovesToMirror) {
  for (const auto& [r, c] : {std::pair{0, 0}, {3, 5}, {5, 3}, {0, 63},
                            {63, 0}, {31, 32}, {63, 63}}) {
    std::uint64_t m[64] = {};
    m[r] = 1ULL << c;
    transpose64(m);
    for (int row = 0; row < 64; ++row)
      EXPECT_EQ(m[row], row == c ? 1ULL << r : 0ULL)
          << "bit (" << r << "," << c << "), row " << row;
  }
}

TEST(Transpose64, InvolutionOnRandomMatrices) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::uint64_t m[64];
    std::uint64_t original[64];
    for (int r = 0; r < 64; ++r) original[r] = m[r] = rng.next_u64();
    transpose64(m);
    // Spot-check the transpose law on random coordinates...
    for (int probe = 0; probe < 200; ++probe) {
      const int r = static_cast<int>(rng.next_below(64));
      const int c = static_cast<int>(rng.next_below(64));
      ASSERT_EQ((m[c] >> r) & 1, (original[r] >> c) & 1);
    }
    // ...and the involution: transposing twice restores the input.
    transpose64(m);
    for (int r = 0; r < 64; ++r) ASSERT_EQ(m[r], original[r]);
  }
}

/// Reference transpose: one insert per set bit.
std::vector<PortSet> naive_transpose(const std::vector<PortSet>& rows,
                                     int num_cols) {
  std::vector<PortSet> cols(static_cast<std::size_t>(num_cols));
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (PortId c : rows[r])
      cols[static_cast<std::size_t>(c)].insert(static_cast<PortId>(r));
  return cols;
}

TEST(TransposeBitMatrix, MatchesNaiveOnRandomShapes) {
  Rng rng(99);
  for (const auto& [num_rows, num_cols] :
       {std::pair{1, 1}, {2, 2}, {3, 8}, {16, 16}, {63, 65}, {64, 64},
        {64, 256}, {100, 100}, {128, 64}, {256, 256}}) {
    std::vector<PortSet> rows(static_cast<std::size_t>(num_rows));
    for (auto& row : rows)
      for (int c = 0; c < num_cols; ++c)
        if (rng.next_below(3) == 0) row.insert(c);

    // Pre-dirty the destination: transpose must fully overwrite it.
    std::vector<PortSet> cols(static_cast<std::size_t>(num_cols),
                              PortSet::all(kMaxPorts));
    transpose_bit_matrix(rows, cols);
    EXPECT_EQ(cols, naive_transpose(rows, num_cols))
        << num_rows << "x" << num_cols;
  }
}

TEST(TransposeBitMatrix, EmptyRowsYieldEmptyColumns) {
  std::vector<PortSet> rows(10);
  std::vector<PortSet> cols(20, PortSet{5});
  transpose_bit_matrix(rows, cols);
  for (const PortSet& col : cols) EXPECT_TRUE(col.empty());
}

}  // namespace
}  // namespace fifoms
