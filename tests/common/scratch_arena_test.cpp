#include "common/scratch_arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace fifoms {
namespace {

TEST(ScratchArena, TakeCarvesDisjointSpans) {
  ScratchArena arena;
  arena.reserve(ScratchArena::bytes_for<std::uint64_t>(8) +
                ScratchArena::bytes_for<std::uint32_t>(8));
  auto a = arena.take<std::uint64_t>(8);
  auto b = arena.take<std::uint32_t>(8);
  ASSERT_EQ(a.size(), 8u);
  ASSERT_EQ(b.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    a[i] = 0xa0a0a0a0a0a0a0a0ULL + i;
    b[i] = 0xb0b0b0b0u + static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a[i], 0xa0a0a0a0a0a0a0a0ULL + i);
    EXPECT_EQ(b[i], 0xb0b0b0b0u + static_cast<std::uint32_t>(i));
  }
}

TEST(ScratchArena, RewindReusesTheSameStorage) {
  ScratchArena arena;
  arena.reserve(ScratchArena::bytes_for<int>(16));
  auto first = arena.take<int>(16);
  first[0] = 41;
  const int* address = first.data();
  arena.rewind();
  auto second = arena.take<int>(16);
  EXPECT_EQ(second.data(), address);  // same storage, no reallocation
}

TEST(ScratchArena, ReserveGrowsOnlyWhenLarger) {
  ScratchArena arena;
  arena.reserve(256);
  const std::size_t capacity = arena.capacity();
  arena.reserve(64);  // no-op: already large enough
  EXPECT_EQ(arena.capacity(), capacity);
  arena.reserve(1024);
  EXPECT_GE(arena.capacity(), 1024u);
}

TEST(ScratchArena, AlignmentRespected) {
  ScratchArena arena;
  arena.reserve(ScratchArena::bytes_for<char>(3) +
                ScratchArena::bytes_for<std::uint64_t>(1));
  (void)arena.take<char>(3);  // misalign the bump pointer
  auto aligned = arena.take<std::uint64_t>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(aligned.data()) %
                alignof(std::uint64_t),
            0u);
}

TEST(ScratchArenaDeath, OverflowPanics) {
  ScratchArena arena;
  arena.reserve(16);
  EXPECT_DEATH((void)arena.take<std::uint64_t>(64), "ScratchArena overflow");
}

}  // namespace
}  // namespace fifoms
