#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace fifoms {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.next_u64());
  rng.reseed(77);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next_u64(), first[i]);
}

TEST(Rng, LowEntropySeedsStillMix) {
  // splitmix64 seeding: consecutive seeds must not produce correlated
  // first outputs.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t seed = 0; seed < 64; ++seed)
    firsts.insert(Rng(seed).next_u64());
  EXPECT_EQ(firsts.size(), 64u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(12);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowApproximatelyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int count : counts)
    EXPECT_NEAR(static_cast<double>(count) / n, 0.1, 0.01);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(14);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(-3, 4);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 4);
    saw_lo |= x == -3;
    saw_hi |= x == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, GeometricMean) {
  Rng rng(16);
  const double p = 0.25;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  // Mean of failures-before-success geometric is (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.08);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(DeriveSeed, DistinctComponentsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 8; ++stream)
    for (std::uint64_t rep = 0; rep < 8; ++rep)
      seeds.insert(derive_seed(42, stream, rep));
  EXPECT_EQ(seeds.size(), 64u);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(2, 2, 3));
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
}

TEST(Rng, GoldenValuesStableAcrossPlatforms) {
  // xoshiro256** output is fully specified; these values pin the
  // implementation so traces and seeded experiments stay reproducible.
  Rng rng(0);
  const std::uint64_t a = rng.next_u64();
  const std::uint64_t b = rng.next_u64();
  Rng again(0);
  EXPECT_EQ(again.next_u64(), a);
  EXPECT_EQ(again.next_u64(), b);
  EXPECT_NE(a, b);
}

TEST(Rng, StreamDerivationIsPureAndDecorrelated) {
  // splitmix64(seed, index) is the parallel sweep engine's stream
  // derivation: a pure function of its arguments (no hidden state), so
  // it is trivially thread-safe and execution-order independent.
  EXPECT_EQ(splitmix64(42, 7), splitmix64(42, 7));
  // Adjacent indices and adjacent seeds must land far apart.
  std::set<std::uint64_t> streams;
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    for (std::uint64_t index = 0; index < 64; ++index)
      streams.insert(splitmix64(seed, index));
  EXPECT_EQ(streams.size(), 8u * 64u);  // no collisions in the small grid
  // Derived seeds feed Rng; neighbouring cells' first draws differ.
  Rng a(splitmix64(1, 0));
  Rng b(splitmix64(1, 1));
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ShuffleCompatibleWithStdAlgorithms) {
  Rng rng(33);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
  std::shuffle(items.begin(), items.end(), rng);
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace fifoms
