#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fifoms {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7);
}

TEST(ThreadPool, InlineWhenSingleThreaded) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::vector<int> hits(100, 0);
  pool.for_each_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10'000);
  pool.for_each_index(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyJobIsANoop) {
  ThreadPool pool(4);
  bool touched = false;
  pool.for_each_index(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.for_each_index(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  for (int job = 0; job < 5; ++job) {
    pool.for_each_index(1'000, [&](std::size_t i) {
      sum.fetch_add(static_cast<std::int64_t>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 5 * (999LL * 1000 / 2));
}

TEST(ThreadPool, ExceptionIsRethrownAfterEveryIndexRan) {
  // The hardened-sweep contract: a throwing job never skips the rest of
  // the grid; the first exception (in completion order) surfaces once the
  // job has drained.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1'000);
  EXPECT_THROW(pool.for_each_index(hits.size(),
                                   [&](std::size_t i) {
                                     hits[i].fetch_add(
                                         1, std::memory_order_relaxed);
                                     if (i % 100 == 7)
                                       throw std::runtime_error("cell died");
                                   }),
               std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionOnInlinePathMatchesPoolSemantics) {
  ThreadPool pool(1);
  std::vector<int> hits(50, 0);
  bool caught = false;
  try {
    pool.for_each_index(hits.size(), [&](std::size_t i) {
      ++hits[i];
      if (i == 10) throw std::runtime_error("inline cell died");
    });
  } catch (const std::runtime_error& error) {
    caught = true;
    EXPECT_STREQ(error.what(), "inline cell died");
  }
  EXPECT_TRUE(caught);
  for (int h : hits) EXPECT_EQ(h, 1);  // indices after the throw still ran
}

TEST(ThreadPool, PoolStaysUsableAfterAThrowingJob) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.for_each_index(
                   100, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> clean{0};
  pool.for_each_index(100, [&](std::size_t) {
    clean.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(clean.load(), 100);
}

TEST(ThreadPool, StealingBalancesSkewedWork) {
  // Front-loaded cost: the first indices busy-wait, the rest are free.
  // With shard stealing every index still runs exactly once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  pool.for_each_index(hits.size(), [&](std::size_t i) {
    if (i < 8) {
      volatile std::int64_t sink = 0;
      for (int spin = 0; spin < 2'000'000; ++spin) sink = sink + spin;
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace fifoms
