// Positive coverage for the runtime invariant auditor: every switch model
// and every scheduler in the library must complete a loaded run with a
// MatchingAuditor attached and zero violations.  These tests are also the
// "smoke run of each switch model with FIFOMS_AUDIT enabled" required by
// the correctness toolchain (docs/CORRECTNESS.md).
#include "analysis/auditor.hpp"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fifoms.hpp"
#include "sched/random_voq.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/priority.hpp"
#include "traffic/uniform_fanout.hpp"

namespace fifoms {
namespace {

/// Run `sw` under uniform multicast traffic with the auditor attached.
/// Any invariant violation panics, failing the whole test binary.
void run_audited(SwitchModel& sw, int num_ports, double load,
                 SlotTime slots, std::uint64_t seed) {
  const int max_fanout = 4;
  UniformFanoutTraffic traffic(
      num_ports, UniformFanoutTraffic::p_for_load(load, max_fanout),
      max_fanout);

  MatchingAuditor auditor;
  SimConfig config;
  config.total_slots = slots;
  config.warmup_fraction = 0.25;
  config.seed = seed;
  Simulator simulator(sw, traffic, config);
  simulator.set_observer(&auditor);
  const SimResult result = simulator.run();

  EXPECT_EQ(auditor.slots_audited(), static_cast<std::uint64_t>(slots));
  EXPECT_GT(auditor.copies_checked(), 0u);
  EXPECT_GT(auditor.packets_retired(), 0u);
  EXPECT_EQ(auditor.copies_checked(), result.copies_delivered);
}

TEST(MatchingAuditor, EverySchedulerAndModelPassesUnderLoad) {
  if (!MatchingAuditor::enabled())
    GTEST_SKIP() << "FIFOMS_AUDIT compiled out in this build";

  const int num_ports = 8;
  // The full lineup: FIFOMS variants, the iterative VOQ schedulers, the
  // HOL-based single-FIFO schedulers, the hybrid ESLIP switch, the OQ
  // bound, the CIOQ extension and the gate-level control unit.
  std::vector<SwitchFactory> lineup = {
      make_fifoms(),        make_fifoms_nosplit(), make_islip(),
      make_pim(),           make_ilqf(),           make_drr2d(),
      make_concentrate(),   make_tatra(),          make_wba(),
      make_eslip(),         make_fifoms_hw(),      make_oqfifo(),
      make_cioq_fifoms(2),
  };

  std::uint64_t seed = 11;
  for (const SwitchFactory& factory : lineup) {
    SCOPED_TRACE(factory.label);
    auto sw = factory.make(num_ports);
    run_audited(*sw, num_ports, /*load=*/0.7, /*slots=*/1500, seed++);
  }
}

TEST(MatchingAuditor, RandomSchedulerPasses) {
  if (!MatchingAuditor::enabled())
    GTEST_SKIP() << "FIFOMS_AUDIT compiled out in this build";

  const int num_ports = 8;
  VoqSwitch sw(num_ports, std::make_unique<RandomVoqScheduler>());
  run_audited(sw, num_ports, 0.6, 1500, 23);
}

TEST(MatchingAuditor, MultiClassVoqSwitchPasses) {
  if (!MatchingAuditor::enabled())
    GTEST_SKIP() << "FIFOMS_AUDIT compiled out in this build";

  // Strict-priority classes legally overtake FIFO order across classes;
  // the auditor must fall back to the class-aware structural checks
  // without false positives.
  const int num_ports = 8;
  const int max_fanout = 4;
  VoqSwitch::Options options;
  options.num_classes = 2;
  VoqSwitch sw(num_ports, std::make_unique<FifomsScheduler>(), options);

  PriorityTraffic traffic(
      std::make_unique<UniformFanoutTraffic>(
          num_ports, UniformFanoutTraffic::p_for_load(0.6, max_fanout),
          max_fanout),
      {0.3, 0.7});

  MatchingAuditor auditor;
  SimConfig config;
  config.total_slots = 1500;
  config.seed = 31;
  Simulator simulator(sw, traffic, config);
  simulator.set_observer(&auditor);
  simulator.run();
  EXPECT_GT(auditor.copies_checked(), 0u);
}

TEST(MatchingAuditor, HighLoadSaturationPasses) {
  if (!MatchingAuditor::enabled())
    GTEST_SKIP() << "FIFOMS_AUDIT compiled out in this build";

  // Overload: queues grow without bound, so conservation bookkeeping is
  // exercised on a large, persistent backlog.
  const int num_ports = 8;
  VoqSwitch sw(num_ports, std::make_unique<FifomsScheduler>());
  run_audited(sw, num_ports, /*load=*/1.2, /*slots=*/800, 47);
  EXPECT_GT(sw.total_buffered(), 0u);
}

TEST(MatchingAuditor, ResetClearsShadowState) {
  if (!MatchingAuditor::enabled())
    GTEST_SKIP() << "FIFOMS_AUDIT compiled out in this build";

  const int num_ports = 4;
  VoqSwitch sw(num_ports, std::make_unique<FifomsScheduler>());
  const int max_fanout = 2;
  UniformFanoutTraffic traffic(
      num_ports, UniformFanoutTraffic::p_for_load(0.5, max_fanout),
      max_fanout);

  MatchingAuditor auditor;
  for (int run = 0; run < 2; ++run) {
    sw.clear();
    auditor.reset();
    SimConfig config;
    config.total_slots = 400;
    config.seed = 53 + static_cast<std::uint64_t>(run);
    Simulator simulator(sw, traffic, config);
    simulator.set_observer(&auditor);
    simulator.run();
    EXPECT_EQ(auditor.slots_audited(), 400u);
  }
}

TEST(MatchingAuditor, EnabledReflectsBuildConfiguration) {
#if FIFOMS_AUDIT
  EXPECT_TRUE(MatchingAuditor::enabled());
#else
  EXPECT_FALSE(MatchingAuditor::enabled());
#endif
}

}  // namespace
}  // namespace fifoms
