// Fault-isolation auditor tests: the no-grant-to-dead-port and purge
// checks must hold on the real degradation logic, and must have teeth —
// a deliberately broken degradation policy (the mutant_skip_fault_masking
// switch option) dies with the matching diagnostic.
#include "analysis/auditor.hpp"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/fifoms.hpp"
#include "fault/fault.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;

FaultEvent ev(SlotTime slot, FaultKind kind, PortId port,
              PortId output = kNoPort) {
  return FaultEvent{.slot = slot, .kind = kind, .port = port,
                    .output = output};
}

class AuditorFault : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!MatchingAuditor::enabled())
      GTEST_SKIP() << "FIFOMS_AUDIT compiled out in this build";
  }
};

/// Run FIFOMS at a solid load under `plan` with the auditor attached.
SimResult run_audited(const FaultPlan& plan, MatchingAuditor& auditor,
                      VoqSwitch::Options options = {}) {
  const int ports = plan.num_ports();
  VoqSwitch sw(ports, std::make_unique<FifomsScheduler>(), options);
  BernoulliTraffic traffic(ports,
                           BernoulliTraffic::p_for_load(0.8, 0.2, ports),
                           0.2);
  SimConfig config;
  config.total_slots = 2'000;
  config.warmup_fraction = 0.25;
  config.seed = 17;
  config.fault_plan = &plan;
  Simulator simulator(sw, traffic, config);
  simulator.set_observer(&auditor);
  return simulator.run();
}

TEST_F(AuditorFault, CleanDegradationPassesWithMatchingCounters) {
  const FaultPlan plan = FaultPlan::rolling_port_flaps(
      8, /*first_down=*/100, /*period=*/200, /*down_slots=*/60,
      /*horizon=*/2'000);
  MatchingAuditor auditor;
  const SimResult result = run_audited(plan, auditor);
  EXPECT_GT(result.fault_events_applied, 0u);
  EXPECT_EQ(auditor.fault_events_seen(), result.fault_events_applied);
  EXPECT_EQ(auditor.copies_checked(), result.copies_delivered);
  EXPECT_EQ(auditor.slots_audited(),
            static_cast<std::uint64_t>(result.total_slots));
}

TEST_F(AuditorFault, PurgePolicyIsVerifiedCopyForCopy) {
  const FaultPlan plan = FaultPlan::rolling_port_flaps(
      8, /*first_down=*/100, /*period=*/200, /*down_slots=*/60,
      /*horizon=*/2'000);
  MatchingAuditor auditor;
  VoqSwitch::Options options;
  options.stranded_policy = StrandedCellPolicy::kPurge;
  const SimResult result = run_audited(plan, auditor, options);
  EXPECT_GT(result.copies_purged, 0u);
  EXPECT_EQ(auditor.copies_purged(), result.copies_purged);
}

TEST_F(AuditorFault, BrokenDegradationPolicyIsCaught) {
  // The mutant skips fault masking AND grant sanitisation, so the
  // scheduler happily serves a dead output — the auditor must die with
  // the no-grant-to-failed-output diagnostic, proving the check has
  // teeth against exactly the bug class this subsystem exists for.
  const FaultPlan plan({ev(50, FaultKind::kOutputDown, 2),
                        ev(1'500, FaultKind::kOutputUp, 2)},
                       8);
  VoqSwitch::Options options;
  options.mutant_skip_fault_masking = true;
  MatchingAuditor auditor;
  EXPECT_DEATH(run_audited(plan, auditor, options),
               "grant to failed output");
}

TEST_F(AuditorFault, DoubleDownInEventStreamIsCaught) {
  // The auditor mirrors fault events into its shadow state and rejects
  // an inconsistent stream (a down for an already-down output) — this
  // guards the simulator/plan contract, so feed it directly.
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  MatchingAuditor auditor;
  const FaultEvent down = ev(3, FaultKind::kOutputDown, 1);
  auditor.on_fault_event(3, sw, down);
  EXPECT_DEATH(auditor.on_fault_event(4, sw, ev(4, FaultKind::kOutputDown, 1)),
               "fault stream corrupt: output 1 downed twice");
}

}  // namespace
}  // namespace fifoms
