#include "analysis/queueing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/oq_switch.hpp"
#include "sim/simulator.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

TEST(Analysis, KarolConstant) {
  EXPECT_NEAR(analysis::karol_saturation(), 0.5857864376, 1e-9);
}

TEST(Analysis, SlottedQueueZeroLoad) {
  EXPECT_EQ(analysis::slotted_queue_mean(0.0, 0.0), 0.0);
  EXPECT_EQ(analysis::slotted_queue_delay(0.0, 0.0, 0.0), 0.0);
}

TEST(Analysis, SlottedQueueDeterministicArrivalsNoQueue) {
  // Bernoulli(λ) single arrivals: Var = λ(1-λ); E[A(A-1)] = 0.
  // E[q] = (λ(1-λ) + λ² - λ)/(2(1-λ)) = 0 — a queue fed at most one cell
  // per slot never accumulates.
  for (double lambda : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(analysis::slotted_queue_mean(lambda, lambda * (1 - lambda)),
                0.0, 1e-12);
  }
}

TEST(Analysis, SlottedQueueGrowsWithVariance) {
  const double lambda = 0.8;
  const double low = analysis::slotted_queue_mean(lambda, 0.2);
  const double high = analysis::slotted_queue_mean(lambda, 0.8);
  EXPECT_GT(high, low);
}

TEST(Analysis, OqfifoBernoulliClosedForm) {
  // E[q] = N a^2 (N-1) / (2 (1 - N a)) with a = p b.
  const double value = analysis::oqfifo_queue_bernoulli(16, 0.15625, 0.2);
  const double a = 0.15625 * 0.2;  // load N*a = 0.5
  const double expected = 16 * a * a * 15 / (2 * (1 - 16 * a));
  EXPECT_NEAR(value, expected, 1e-12);
}

TEST(AnalysisDeath, OverloadRejected) {
  EXPECT_DEATH((void)analysis::slotted_queue_mean(1.0, 0.5), "E\\[A\\]");
  EXPECT_DEATH((void)analysis::slotted_queue_mean(-0.1, 0.5), "E\\[A\\]");
}

// ---- Cross-validation: simulator vs closed form ----------------------
//
// This is the end-to-end correctness anchor for the whole pipeline:
// traffic generation, OQ switch mechanics, warm-up accounting and the
// metrics layer must together land on the analytic values.

struct LoadCase {
  double load;
};

class OqfifoClosedFormTest : public ::testing::TestWithParam<LoadCase> {};

TEST_P(OqfifoClosedFormTest, QueueAndDelayMatchFormulas) {
  const int ports = 16;
  const double b = 0.2;
  const double p = BernoulliTraffic::p_for_load(GetParam().load, b, ports);

  OqSwitch sw(ports);
  BernoulliTraffic traffic(ports, p, b);
  SimConfig config;
  config.total_slots = 400'000;
  config.seed = 2718;
  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();
  ASSERT_FALSE(result.unstable);

  const double queue_formula =
      analysis::oqfifo_queue_bernoulli(ports, p, b);
  const double delay_formula =
      analysis::oqfifo_delay_bernoulli(ports, p, b);

  const double queue_tolerance = std::max(0.02, 0.06 * queue_formula);
  const double delay_tolerance = std::max(0.02, 0.06 * delay_formula);
  EXPECT_NEAR(result.queue_mean.mean(), queue_formula, queue_tolerance);
  EXPECT_NEAR(result.output_delay.mean(), delay_formula, delay_tolerance);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OqfifoClosedFormTest,
                         ::testing::Values(LoadCase{0.2}, LoadCase{0.5},
                                           LoadCase{0.7}, LoadCase{0.85}),
                         [](const ::testing::TestParamInfo<LoadCase>& info) {
                           return "load" +
                                  std::to_string(static_cast<int>(
                                      info.param.load * 100));
                         });

}  // namespace
}  // namespace fifoms
