// Negative-injection tests: deliberately corrupt a matching, a fanout
// counter and a VOQ timestamp order in a scripted harness and assert the
// auditor dies with the matching slot-stamped diagnostic.  The three
// corruption shapes mirror the invariant families of docs/CORRECTNESS.md.
#include "analysis/auditor.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/switch_model.hpp"
#include "test_util.hpp"

namespace fifoms {
namespace {

/// A switch whose step() replays a per-slot script of deliveries verbatim
/// — the corruption vehicle.  The auditor classifies it as an unknown
/// architecture, so the delivery-stream checks (matching validity, fanout
/// conservation, per-pair FIFO order) run while the model-specific
/// occupancy cross-checks stay off.
class ScriptedSwitch final : public SwitchModel {
 public:
  explicit ScriptedSwitch(int num_ports) : num_ports_(num_ports) {}

  std::string_view name() const override { return "scripted"; }
  int num_inputs() const override { return num_ports_; }
  int num_outputs() const override { return num_ports_; }

  bool inject(const Packet&) override { return true; }
  void step(SlotTime now, Rng&, SlotResult& result) override {
    const auto slot = static_cast<std::size_t>(now);
    if (slot < script_.size())
      result.deliveries.insert(result.deliveries.end(), script_[slot].begin(),
                               script_[slot].end());
  }

  std::size_t occupancy(PortId) const override { return 0; }
  int occupancy_ports() const override { return num_ports_; }
  std::size_t total_buffered() const override { return 0; }
  void clear() override { script_.clear(); }

  /// Schedule `delivery` to be reported in `slot`'s SlotResult.
  void script(SlotTime slot, const Delivery& delivery) {
    const auto index = static_cast<std::size_t>(slot);
    if (script_.size() <= index) script_.resize(index + 1);
    script_[index].push_back(delivery);
  }

 private:
  int num_ports_;
  std::vector<std::vector<Delivery>> script_;
};

Delivery copy_of(const Packet& packet, PortId output) {
  return Delivery{.packet = packet.id,
                  .input = packet.input,
                  .output = output,
                  .arrival = packet.arrival,
                  .payload_tag = packet.payload_tag()};
}

/// Inject `packets` at their arrival slots, then run the scripted slots
/// with the auditor attached.  Panics propagate out (EXPECT_DEATH).
void drive(ScriptedSwitch& sw, const std::vector<Packet>& packets,
           SlotTime slots) {
  MatchingAuditor auditor;
  Rng rng(1);
  SlotResult result;
  for (SlotTime now = 0; now < slots; ++now) {
    for (const Packet& packet : packets) {
      if (packet.arrival != now) continue;
      sw.inject(packet);
      auditor.on_inject(sw, packet);
    }
    result.clear();
    sw.step(now, rng, result);
    auditor.on_slot(now, sw, result);
  }
}

class AuditorNegative : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!MatchingAuditor::enabled())
      GTEST_SKIP() << "FIFOMS_AUDIT compiled out in this build";
  }
};

TEST_F(AuditorNegative, CleanScriptPasses) {
  ScriptedSwitch sw(4);
  const Packet p0 = test::make_packet(0, 0, 0, {1, 2});
  const Packet p1 = test::make_packet(1, 1, 0, {3});
  sw.script(1, copy_of(p0, 1));
  sw.script(1, copy_of(p1, 3));
  sw.script(2, copy_of(p0, 2));
  drive(sw, {p0, p1}, 3);  // must not panic
}

TEST_F(AuditorNegative, CorruptMatchingPanicsWithOutputDiagnostic) {
  // Two inputs granted the same output in one slot — an invalid crossbar
  // configuration no scheduler may produce.
  ScriptedSwitch sw(4);
  const Packet p0 = test::make_packet(0, 0, 0, {2});
  const Packet p1 = test::make_packet(1, 1, 0, {2});
  sw.script(1, copy_of(p0, 2));
  sw.script(1, copy_of(p1, 2));
  EXPECT_DEATH(drive(sw, {p0, p1}, 2),
               "audit violation at slot 1: matching corrupt: "
               "output 2 granted to inputs 0 and 1");
}

TEST_F(AuditorNegative, CorruptFanoutCounterPanicsWithPacketDiagnostic) {
  // The same copy transmitted twice: the fanout counter would have to be
  // decremented below its Table-2 budget.
  ScriptedSwitch sw(4);
  const Packet p0 = test::make_packet(0, 0, 0, {1, 3});
  sw.script(1, copy_of(p0, 1));
  sw.script(2, copy_of(p0, 1));  // output 1 served again, 3 never
  EXPECT_DEATH(drive(sw, {p0}, 3),
               "audit violation at slot 2: fanout counter corrupt: "
               "packet 0 copy to output 1 already served");
}

TEST_F(AuditorNegative, CorruptTimestampOrderPanicsWithVoqDiagnostic) {
  // A younger cell overtakes an older one on the same (input, output)
  // pair — a FIFO violation in the VOQ discipline.
  ScriptedSwitch sw(4);
  const Packet older = test::make_packet(0, 0, 0, {1});
  const Packet younger = test::make_packet(1, 0, 1, {1});
  sw.script(2, copy_of(younger, 1));
  sw.script(3, copy_of(older, 1));
  EXPECT_DEATH(drive(sw, {older, younger}, 4),
               "audit violation at slot 3: per-VOQ FIFO order violated: "
               "\\(input 0, output 1\\) served timestamp 0 after 1");
}

TEST_F(AuditorNegative, UnknownPacketPanics) {
  ScriptedSwitch sw(4);
  const Packet ghost = test::make_packet(7, 0, 0, {1});
  sw.script(1, copy_of(ghost, 1));  // never injected
  EXPECT_DEATH(drive(sw, {}, 2),
               "audit violation at slot 1: delivery at output 1 of unknown "
               "or already-retired packet 7");
}

TEST_F(AuditorNegative, PayloadCorruptionPanics) {
  ScriptedSwitch sw(4);
  const Packet p0 = test::make_packet(0, 0, 0, {1});
  Delivery corrupted = copy_of(p0, 1);
  corrupted.payload_tag ^= 1;  // single bit flip on the data path
  sw.script(1, corrupted);
  EXPECT_DEATH(drive(sw, {p0}, 2),
               "audit violation at slot 1: payload corruption: packet 0");
}

}  // namespace
}  // namespace fifoms
