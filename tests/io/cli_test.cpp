#include "io/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fifoms {
namespace {

struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    pointers.push_back(const_cast<char*>("prog"));
    for (auto& arg : storage) pointers.push_back(arg.data());
  }
  int argc() const { return static_cast<int>(pointers.size()); }
  char** argv() { return pointers.data(); }

  std::vector<std::string> storage;
  std::vector<char*> pointers;
};

ArgParser make_parser() {
  ArgParser parser("test", "test parser");
  parser.add_int("slots", 1000, "slot count");
  parser.add_double("load", 0.5, "offered load");
  parser.add_string("out", "result.csv", "output file");
  parser.add_bool("verbose", false, "chatty mode");
  return parser;
}

TEST(ArgParser, DefaultsWhenNoArgs) {
  auto parser = make_parser();
  Argv argv({});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(parser.get_int("slots"), 1000);
  EXPECT_DOUBLE_EQ(parser.get_double("load"), 0.5);
  EXPECT_EQ(parser.get_string("out"), "result.csv");
  EXPECT_FALSE(parser.get_bool("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  auto parser = make_parser();
  Argv argv({"--slots", "500", "--load", "0.75", "--out", "x.csv"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(parser.get_int("slots"), 500);
  EXPECT_DOUBLE_EQ(parser.get_double("load"), 0.75);
  EXPECT_EQ(parser.get_string("out"), "x.csv");
}

TEST(ArgParser, EqualsSeparatedValues) {
  auto parser = make_parser();
  Argv argv({"--slots=42", "--load=0.1", "--verbose=true"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(parser.get_int("slots"), 42);
  EXPECT_DOUBLE_EQ(parser.get_double("load"), 0.1);
  EXPECT_TRUE(parser.get_bool("verbose"));
}

TEST(ArgParser, BareBooleanFlag) {
  auto parser = make_parser();
  Argv argv({"--verbose"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(parser.get_bool("verbose"));
}

TEST(ArgParser, NegativeNumbers) {
  auto parser = make_parser();
  Argv argv({"--slots", "-5", "--load", "-0.5"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(parser.get_int("slots"), -5);
  EXPECT_DOUBLE_EQ(parser.get_double("load"), -0.5);
}

TEST(ArgParser, HelpReturnsFalse) {
  auto parser = make_parser();
  Argv argv({"--help"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));
}

TEST(ArgParser, UnknownFlagRejected) {
  auto parser = make_parser();
  Argv argv({"--nope", "1"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));
}

TEST(ArgParser, BadValueRejected) {
  auto parser = make_parser();
  Argv bad_int({"--slots", "abc"});
  EXPECT_FALSE(parser.parse(bad_int.argc(), bad_int.argv()));
  auto parser2 = make_parser();
  Argv bad_bool({"--verbose=maybe"});
  EXPECT_FALSE(parser2.parse(bad_bool.argc(), bad_bool.argv()));
}

TEST(ArgParser, MissingValueRejected) {
  auto parser = make_parser();
  Argv argv({"--slots"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));
}

TEST(ArgParser, PositionalArgumentRejected) {
  auto parser = make_parser();
  Argv argv({"positional"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));
}

TEST(ArgParserDeath, UndeclaredFlagAccessPanics) {
  auto parser = make_parser();
  EXPECT_DEATH((void)parser.get_int("nope"), "never declared");
  EXPECT_DEATH((void)parser.get_double("slots"), "wrong type");
}

}  // namespace
}  // namespace fifoms
