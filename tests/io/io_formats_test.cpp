#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "sim/experiment.hpp"

namespace fifoms {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

PointSummary sample_point() {
  PointSummary point;
  point.algorithm = "FIFOMS";
  point.load = 0.5;
  point.replications = 3;
  point.input_delay = 2.25;
  point.output_delay = 1.5;
  point.queue_mean = 0.75;
  point.queue_max = 12;
  point.rounds_busy = 1.9;
  point.throughput = 0.499;
  return point;
}

TEST(Csv, PlainRow) {
  const std::string path = temp_path("plain.csv");
  {
    CsvWriter csv(path);
    csv.row({"a", "b", "c"});
    csv.row({"1", "2", "3"});
  }
  EXPECT_EQ(slurp(path), "a,b,c\n1,2,3\n");
}

TEST(Csv, QuotingRules) {
  const std::string path = temp_path("quoted.csv");
  {
    CsvWriter csv(path);
    csv.row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  }
  EXPECT_EQ(slurp(path),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(Csv, NumFormatsCompactly) {
  EXPECT_EQ(CsvWriter::num(0.5), "0.5");
  EXPECT_EQ(CsvWriter::num(3.0), "3");
  EXPECT_EQ(CsvWriter::num(1.0 / 3.0), "0.333333");
}

TEST(Csv, SweepCsvHasHeaderAndRows) {
  const std::string path = temp_path("sweep.csv");
  write_sweep_csv(path, {sample_point()});
  const std::string text = slurp(path);
  EXPECT_NE(text.find("algorithm,load"), std::string::npos);
  EXPECT_NE(text.find("FIFOMS,0.5,3,0,2.25"), std::string::npos);
}

TEST(CsvDeath, UnwritablePathPanics) {
  EXPECT_DEATH(CsvWriter("/nonexistent_dir/x.csv"), "cannot open");
}

TEST(Json, ScalarsAndNesting) {
  JsonWriter json;
  json.begin_object();
  json.key("name");
  json.value("fifoms");
  json.key("ports");
  json.value(16);
  json.key("load");
  json.value(0.5);
  json.key("stable");
  json.value(true);
  json.key("series");
  json.begin_array();
  json.value(1.0);
  json.value(2.5);
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"name\":\"fifoms\",\"ports\":16,\"load\":0.5,"
            "\"stable\":true,\"series\":[1,2.5]}");
}

TEST(Json, StringEscaping) {
  JsonWriter json;
  json.value(std::string("a\"b\\c\nd"));
  EXPECT_EQ(json.str(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, SweepSerialisation) {
  const std::string text = sweep_to_json({sample_point()});
  EXPECT_NE(text.find("\"algorithm\":\"FIFOMS\""), std::string::npos);
  EXPECT_NE(text.find("\"load\":0.5"), std::string::npos);
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.back(), ']');
}

TEST(JsonDeath, MisuseDetected) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_DEATH(json.value(1.0), "needs key");
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_DEATH(json.key("x"), "key outside object");
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_DEATH((void)json.str(), "unbalanced");
  }
}

TEST(Table, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.row({"x", "1"});
  table.row({"longer", "2.5"});
  const std::string path = temp_path("table.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    table.print(f);
    std::fclose(f);
  }
  const std::string text = slurp(path);
  EXPECT_NE(text.find("name    value"), std::string::npos);
  EXPECT_NE(text.find("longer  2.5"), std::string::npos);
  EXPECT_NE(text.find("------"), std::string::npos);
}

TEST(Table, FixedFormatsDecimals) {
  EXPECT_EQ(TablePrinter::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fixed(1.0, 3), "1.000");
}

TEST(Table, SweepTablesGroupByAlgorithm) {
  PointSummary a = sample_point();
  PointSummary b = sample_point();
  b.algorithm = "iSLIP";
  b.unstable_count = b.replications;
  const std::string path = temp_path("sweeptables.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    print_sweep_tables({a, b}, f);
    std::fclose(f);
  }
  const std::string text = slurp(path);
  EXPECT_NE(text.find("FIFOMS"), std::string::npos);
  EXPECT_NE(text.find("iSLIP"), std::string::npos);
  EXPECT_NE(text.find("UNSTABLE"), std::string::npos);
}

TEST(TableDeath, RowWidthMismatchPanics) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.row({"only one"}), "row width");
}

}  // namespace
}  // namespace fifoms
