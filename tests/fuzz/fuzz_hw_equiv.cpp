// libFuzzer harness: hardware/behavioural FIFOMS equivalence at radix
// 2..8 on fuzzer-chosen queue states — the fuzz extension of the
// exhaustive small-radix check in tests/verify/hw_equiv_exhaustive_test.
// A mismatch between hw::FifomsControlUnit and FifomsScheduler
// {kLowestInput} prints the state and aborts.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "verify/explorer.hpp"
#include "verify/state.hpp"

using fifoms::verify::Mutation;
using fifoms::verify::SlotEngine;
using fifoms::verify::SwitchState;
using fifoms::verify::Violation;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const SwitchState state =
      SwitchState::from_fuzz_bytes(std::span(data, size));

  SlotEngine engine(state.ports(), Mutation::kNone,
                    /*check_equivalence=*/true);
  SlotEngine::Outcome outcome;
  std::vector<Violation> violations;
  if (engine.step(state, outcome, violations) != 0) {
    std::fprintf(stderr, "hw/sw divergence (or property failure) on: %s\n",
                 state.to_string().c_str());
    for (const Violation& violation : violations)
      std::fprintf(stderr, "  [%s] %s\n",
                   fifoms::verify::property_name(violation.property),
                   violation.detail.c_str());
    std::abort();
  }
  return 0;
}
