// libFuzzer harness: FIFOMS per-slot properties on arbitrary queue states.
//
// Bytes decode into a well-formed canonical SwitchState of radix 2..8
// (SwitchState::from_fuzz_bytes), the real FIFOMS scheduler runs one slot
// on it, and properties (a), (b), (c) must hold — plus the state codec
// must round-trip.  The final input byte additionally selects a fault
// mask (fault_mask_from_fuzz_byte): when it picks a downed output, the
// same state is re-scheduled under that constraint and property (f) —
// fault masking with live-output maximality — must hold too.  Any
// failure prints the state and aborts, handing libFuzzer a minimizable
// crash input.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "verify/explorer.hpp"
#include "verify/state.hpp"

using fifoms::verify::Mutation;
using fifoms::verify::SlotEngine;
using fifoms::verify::SwitchState;
using fifoms::verify::Violation;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const SwitchState state =
      SwitchState::from_fuzz_bytes(std::span(data, size));

  SwitchState decoded;
  if (!SwitchState::decode(state.encode(), decoded) || decoded != state) {
    std::fprintf(stderr, "state codec round-trip failed for: %s\n",
                 state.to_string().c_str());
    std::abort();
  }

  SlotEngine engine(state.ports(), Mutation::kNone,
                    /*check_equivalence=*/false);
  SlotEngine::Outcome outcome;
  std::vector<Violation> violations;
  if (engine.step(state, outcome, violations) != 0) {
    std::fprintf(stderr, "property violated on: %s\n",
                 state.to_string().c_str());
    for (const Violation& violation : violations)
      std::fprintf(stderr, "  [%s] %s\n",
                   fifoms::verify::property_name(violation.property),
                   violation.detail.c_str());
    std::abort();
  }

  // The last byte drives the fault dimension: no fault, or exactly one
  // downed output to degrade around.
  const unsigned char fault_byte = size > 0 ? data[size - 1] : 0;
  const fifoms::PortSet fault_mask =
      fifoms::verify::fault_mask_from_fuzz_byte(fault_byte, state.ports());
  if (!fault_mask.empty()) {
    fifoms::SlotMatching fault_matching;
    violations.clear();
    if (engine.step_with_fault(state, fault_mask, fault_matching,
                               violations) != 0) {
      std::fprintf(stderr, "fault-masking violated (down=%s) on: %s\n",
                   fault_mask.to_string().c_str(), state.to_string().c_str());
      for (const Violation& violation : violations)
        std::fprintf(stderr, "  [%s] %s\n",
                     fifoms::verify::property_name(violation.property),
                     violation.detail.c_str());
      std::abort();
    }
  }
  return 0;
}
