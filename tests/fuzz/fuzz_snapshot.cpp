// libFuzzer harness: snapshot frame and codec hardening (docs/RECOVERY.md).
//
// Arbitrary bytes are thrown at decode_frame and at the Reader's
// primitive surface.  The contract under test is the recovery engine's
// foundation: malformed, truncated or bit-flipped snapshot bytes must be
// rejected with a clean SnapshotError — never an out-of-bounds read, an
// allocation blow-up or any other escape.  Any non-SnapshotError escape
// terminates the process and hands libFuzzer a minimizable crash input.
//
// The harness also round-trips: a frame encoded from the input's tail
// must decode back bit-exactly, and a single-byte corruption of it
// outside the unchecked header-metadata words must be refused.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "snapshot/snapshot.hpp"

using fifoms::snapshot::decode_frame;
using fifoms::snapshot::encode_frame;
using fifoms::snapshot::Reader;
using fifoms::snapshot::SnapshotError;

namespace {

[[noreturn]] void escape(const char* what) {
  std::fprintf(stderr, "fuzz_snapshot: %s\n", what);
  std::abort();
}

/// Raw bytes as a frame: virtually always rejected; must reject cleanly.
void fuzz_decode(std::span<const std::uint8_t> bytes) {
  try {
    (void)decode_frame(bytes);
    (void)decode_frame(bytes, /*expected_fingerprint=*/0);
  } catch (const SnapshotError&) {
  }
}

/// Drive the Reader's primitives with an op stream derived from the
/// input itself; every underrun or limit breach must be a SnapshotError.
void fuzz_reader(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  try {
    for (std::size_t op = 0; op < 64 && reader.remaining() > 0; ++op) {
      switch (reader.u8() % 8) {
        case 0: (void)reader.u8(); break;
        case 1: (void)reader.u32(); break;
        case 2: (void)reader.u64(); break;
        case 3: (void)reader.f64(); break;
        case 4: (void)reader.boolean(); break;
        case 5: (void)reader.str(); break;
        case 6: (void)reader.port_set(); break;
        case 7: (void)reader.length(/*limit=*/1 << 20); break;
      }
    }
    reader.expect_end();
  } catch (const SnapshotError&) {
  }
}

/// Round-trip the tail as a payload, then corrupt one byte.
void fuzz_roundtrip(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 3) return;
  const std::uint64_t epoch = bytes[0];
  const std::uint64_t fingerprint = bytes[1];
  const auto payload = bytes.subspan(2);

  std::vector<std::uint8_t> frame = encode_frame(payload, epoch, fingerprint);
  try {
    const auto decoded = decode_frame(frame, fingerprint);
    if (decoded.epoch != epoch ||
        decoded.payload.size() != payload.size() ||
        !std::equal(payload.begin(), payload.end(), decoded.payload.begin()))
      escape("pristine frame did not round-trip");
  } catch (const SnapshotError&) {
    escape("pristine frame was rejected");
  }

  // One-byte corruption at an input-chosen offset.  Only the epoch word
  // (bytes 8..15 — header metadata outside the payload CRC and the
  // fingerprint check) may legitimately still decode.
  const std::size_t at = bytes[2] % frame.size();
  frame[at] ^= static_cast<std::uint8_t>(bytes[0] | 1);  // non-zero flip
  try {
    (void)decode_frame(frame, fingerprint);
    if (at < 8 || at >= 16) escape("corrupted frame decoded");
  } catch (const SnapshotError&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  fuzz_decode(bytes);
  fuzz_reader(bytes);
  fuzz_roundtrip(bytes);
  return 0;
}
