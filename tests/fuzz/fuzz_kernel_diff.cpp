// libFuzzer harness: weight-plane FIFOMS kernel vs the ring-probing
// reference scheduler on fuzzer-chosen queue states (radix 2..8, via the
// verifier's fuzz-byte mapper) under fuzzer-chosen fault masks.  Any
// divergence in matching, round count or RNG consumption — for either
// tie-break policy — prints the state and aborts.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/fifoms.hpp"
#include "verify/state.hpp"

namespace {

using fifoms::FifomsOptions;
using fifoms::FifomsReferenceScheduler;
using fifoms::FifomsScheduler;
using fifoms::kNoPort;
using fifoms::McVoqInput;
using fifoms::PortId;
using fifoms::PortSet;
using fifoms::Rng;
using fifoms::ScheduleConstraints;
using fifoms::SlotMatching;
using fifoms::TieBreak;
using fifoms::verify::SwitchState;

void check_policy(const std::vector<McVoqInput>& inputs, int ports,
                  FifomsOptions options,
                  const ScheduleConstraints& constraints, std::uint64_t seed,
                  const SwitchState& state) {
  FifomsScheduler kernel(options);
  FifomsReferenceScheduler reference(options);
  kernel.reset(ports, ports);
  reference.reset(ports, ports);

  Rng kernel_rng(seed);
  Rng reference_rng(seed);
  SlotMatching kernel_matching(ports, ports);
  SlotMatching reference_matching(ports, ports);
  kernel.schedule(inputs, 0, kernel_matching, kernel_rng, constraints);
  reference.schedule(inputs, 0, reference_matching, reference_rng,
                     constraints);

  bool identical = kernel_matching.rounds == reference_matching.rounds &&
                   kernel_rng.next_u64() == reference_rng.next_u64();
  for (PortId output = 0; identical && output < ports; ++output)
    identical = kernel_matching.source(output) ==
                reference_matching.source(output);
  if (!identical) {
    std::fprintf(stderr,
                 "kernel/reference divergence (tie_break=%d) on: %s\n",
                 static_cast<int>(options.tie_break),
                 state.to_string().c_str());
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const SwitchState state =
      SwitchState::from_fuzz_bytes(std::span(data, size));
  const int ports = state.ports();

  std::vector<McVoqInput> inputs;
  state.materialize_into(inputs);

  // The trailing bytes (already consumed permissively by the state
  // mapper; reuse is fine) pick the fault view: one byte for a downed
  // output, one seeding a sparse dead-crosspoint matrix.
  ScheduleConstraints constraints;
  std::vector<PortSet> link_storage(static_cast<std::size_t>(ports));
  if (size >= 1) {
    constraints.failed_outputs =
        fifoms::verify::fault_mask_from_fuzz_byte(data[size - 1], ports);
    if (size >= 2 && data[size - 2] != 0) {
      for (PortId input = 0; input < ports; ++input)
        link_storage[static_cast<std::size_t>(input)] =
            fifoms::verify::fault_mask_from_fuzz_byte(
                static_cast<unsigned char>(data[size - 2] + 37 * input),
                ports);
      constraints.failed_links = link_storage;
    }
  }

  const std::uint64_t seed = 0x5eed ^ (size * 0x9e3779b97f4a7c15ULL);
  for (const TieBreak tie_break :
       {TieBreak::kRandom, TieBreak::kLowestInput}) {
    check_policy(inputs, ports,
                 FifomsOptions{.max_rounds = 0, .tie_break = tie_break},
                 constraints, seed, state);
  }
  return 0;
}
