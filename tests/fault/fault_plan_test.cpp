// FaultPlan / FaultState unit tests: plan validation (everything throws
// FaultError, never panics), builder determinism, and the level/edge view
// contract of the runtime cursor.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fifoms::fault {
namespace {

FaultEvent ev(SlotTime slot, FaultKind kind, PortId port,
              PortId output = kNoPort) {
  return FaultEvent{.slot = slot, .kind = kind, .port = port,
                    .output = output};
}

TEST(FaultPlan, EmptyPlanIsInert) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  FaultState state(plan);
  EXPECT_TRUE(state.advance(0).empty());
  EXPECT_TRUE(state.advance(100).empty());
  EXPECT_FALSE(state.active());
  EXPECT_TRUE(state.failed_outputs().empty());
  EXPECT_TRUE(state.failed_inputs().empty());
  EXPECT_TRUE(state.failed_links().empty());
}

TEST(FaultPlan, EventsAreStableSortedBySlot) {
  const FaultPlan plan({ev(9, FaultKind::kOutputDown, 1),
                        ev(3, FaultKind::kOutputDown, 0),
                        ev(9, FaultKind::kOutputUp, 1),
                        ev(5, FaultKind::kOutputUp, 0)},
                       4);
  ASSERT_EQ(plan.events().size(), 4u);
  EXPECT_EQ(plan.events()[0].slot, 3);
  EXPECT_EQ(plan.events()[1].slot, 5);
  // Same-slot events keep their original relative order (down before up).
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kOutputDown);
  EXPECT_EQ(plan.events()[3].kind, FaultKind::kOutputUp);
}

TEST(FaultPlan, ValidationThrowsFaultError) {
  // Port beyond the radix.
  EXPECT_THROW(FaultPlan({ev(0, FaultKind::kOutputDown, 4)}, 4), FaultError);
  // Double-down without an intervening up.
  EXPECT_THROW(FaultPlan({ev(0, FaultKind::kOutputDown, 1),
                          ev(5, FaultKind::kOutputDown, 1)},
                         4),
               FaultError);
  // Up without a preceding down.
  EXPECT_THROW(FaultPlan({ev(0, FaultKind::kInputUp, 1)}, 4), FaultError);
  // Link event missing its output column.
  EXPECT_THROW(FaultPlan({ev(0, FaultKind::kLinkDown, 1)}, 4), FaultError);
  // Negative slot.
  EXPECT_THROW(FaultPlan({ev(-1, FaultKind::kOutputDown, 1)}, 4), FaultError);
}

TEST(FaultState, LevelAndEdgeViewsTrackTransitions) {
  const FaultPlan plan({ev(2, FaultKind::kOutputDown, 1),
                        ev(2, FaultKind::kLinkDown, 0, 3),
                        ev(4, FaultKind::kOutputUp, 1),
                        ev(4, FaultKind::kLinkUp, 0, 3)},
                       4);
  FaultState state(plan);

  EXPECT_TRUE(state.advance(0).empty());
  EXPECT_FALSE(state.active());

  const auto at2 = state.advance(2);
  EXPECT_EQ(at2.size(), 2u);
  EXPECT_TRUE(state.active());
  EXPECT_EQ(state.failed_outputs(), PortSet({1}));
  EXPECT_TRUE(state.link_failed(0, 3));
  EXPECT_FALSE(state.link_failed(1, 3));
  EXPECT_EQ(state.link_faults_for(0), PortSet({3}));
  EXPECT_EQ(state.outputs_downed_now(), PortSet({1}));
  EXPECT_TRUE(state.outputs_restored_now().empty());

  // A quiet slot clears the edge view but keeps the level view.
  EXPECT_TRUE(state.advance(3).empty());
  EXPECT_TRUE(state.outputs_downed_now().empty());
  EXPECT_EQ(state.failed_outputs(), PortSet({1}));

  const auto at4 = state.advance(4);
  EXPECT_EQ(at4.size(), 2u);
  EXPECT_TRUE(state.failed_outputs().empty());
  EXPECT_FALSE(state.link_failed(0, 3));
  EXPECT_EQ(state.outputs_restored_now(), PortSet({1}));
  EXPECT_FALSE(state.active());
}

TEST(FaultState, AdvanceCatchesUpThroughSkippedSlots) {
  const FaultPlan plan({ev(2, FaultKind::kInputDown, 0),
                        ev(5, FaultKind::kInputUp, 0),
                        ev(7, FaultKind::kOutputDown, 3)},
                       4);
  FaultState state(plan);
  // Jumping straight to slot 10 applies everything scheduled on the way;
  // the edge view (and the returned span) covers the whole gap.
  EXPECT_EQ(state.advance(10).size(), 3u);
  EXPECT_TRUE(state.failed_inputs().empty());       // down at 2, up at 5
  EXPECT_EQ(state.failed_outputs(), PortSet({3}));  // down at 7, still down
}

TEST(FaultState, AdvanceBackwardsThrows) {
  const FaultPlan plan({ev(1, FaultKind::kOutputDown, 0)}, 2);
  FaultState state(plan);
  state.advance(5);
  EXPECT_THROW(state.advance(4), FaultError);
}

TEST(FaultState, CorruptionSaltIsAPureFunctionOfThePlanSeed) {
  const FaultPlan plan_a({ev(3, FaultKind::kGrantCorrupt, 0)}, 4, 123);
  const FaultPlan plan_b({ev(3, FaultKind::kGrantCorrupt, 0)}, 4, 123);
  const FaultPlan plan_c({ev(3, FaultKind::kGrantCorrupt, 0)}, 4, 124);
  FaultState a(plan_a);
  FaultState b(plan_b);
  FaultState c(plan_c);
  EXPECT_EQ(a.corruption_salt(3, 0), b.corruption_salt(3, 0));
  EXPECT_NE(a.corruption_salt(3, 0), c.corruption_salt(3, 0));
  EXPECT_NE(a.corruption_salt(3, 0), a.corruption_salt(3, 1));
  EXPECT_NE(a.corruption_salt(3, 0), a.corruption_salt(4, 0));
}

TEST(FaultPlanBuilders, RollingFlapsCycleThroughEveryPort) {
  const int ports = 4;
  const FaultPlan plan =
      FaultPlan::rolling_port_flaps(ports, /*first_down=*/10, /*period=*/20,
                                    /*down_slots=*/5, /*horizon=*/200);
  ASSERT_FALSE(plan.empty());
  PortSet flapped;
  for (const FaultEvent& event : plan.events()) {
    if (event.kind == FaultKind::kOutputDown) flapped.insert(event.port);
    EXPECT_LT(event.slot, 200);
  }
  EXPECT_EQ(flapped, PortSet({0, 1, 2, 3}));
  // Every down has its matching up — the plan validates, and replaying it
  // through a FaultState must end with a clean fabric.
  FaultState state(plan);
  state.advance(400);
  EXPECT_TRUE(state.failed_outputs().empty());
}

TEST(FaultPlanBuilders, LineCardLossIsCorrelatedAndSeeded) {
  const FaultPlan plan = FaultPlan::correlated_line_card_loss(
      8, /*seed=*/7, /*down_at=*/100, /*up_at=*/200, /*cards=*/3);
  FaultState state(plan);
  state.advance(100);
  EXPECT_EQ(state.failed_inputs().count(), 3);
  const PortSet during = state.failed_inputs();
  state.advance(200);
  EXPECT_TRUE(state.failed_inputs().empty());

  // Same seed -> same cards; different seed -> (almost surely) different.
  const FaultPlan twin = FaultPlan::correlated_line_card_loss(8, 7, 100, 200,
                                                              3);
  EXPECT_EQ(plan.events(), twin.events());
  FaultState twin_state(twin);
  twin_state.advance(100);
  EXPECT_EQ(twin_state.failed_inputs(), during);
}

TEST(FaultPlanBuilders, FaultStormIsDeterministicPerSeed) {
  const FaultPlan a = FaultPlan::fault_storm(8, 42, 2'000);
  const FaultPlan b = FaultPlan::fault_storm(8, 42, 2'000);
  const FaultPlan c = FaultPlan::fault_storm(8, 43, 2'000);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_NE(a.events(), c.events());

  bool corrupt = false;
  bool link = false;
  for (const FaultEvent& event : a.events()) {
    corrupt |= event.kind == FaultKind::kGrantCorrupt;
    link |= event.kind == FaultKind::kLinkDown;
  }
  EXPECT_TRUE(corrupt);
  EXPECT_TRUE(link);
}

TEST(FaultEvent, ToStringNamesTheKindAndTheCrosspoint) {
  const std::string text =
      to_string(ev(12, FaultKind::kLinkDown, 1, 3));
  EXPECT_NE(text.find(fault_kind_name(FaultKind::kLinkDown)),
            std::string::npos);
  EXPECT_NE(text.find("1->3"), std::string::npos);
}

}  // namespace
}  // namespace fifoms::fault
