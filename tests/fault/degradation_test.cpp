// Graceful-degradation tests: the multicast VOQ switch under an attached
// FaultState must never serve a dead port, must honour the stranded-cell
// policy, and must stay bit-identical to a fault-free run when the plan
// is empty (docs/FAULTS.md).
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/fifoms.hpp"
#include "fault/fault.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "test_util.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultState;
using test::make_packet;

FaultEvent ev(SlotTime slot, FaultKind kind, PortId port,
              PortId output = kNoPort) {
  return FaultEvent{.slot = slot, .kind = kind, .port = port,
                    .output = output};
}

/// Drive `sw` under `plan` for `slots` slots, injecting each packet at
/// its arrival slot; returns all deliveries and purges, slot-stamped.
struct Stamped {
  SlotTime slot = 0;
  Delivery delivery;
};

struct DriveLog {
  std::vector<Stamped> deliveries;
  std::vector<Stamped> purged;

  int count(PacketId packet, PortId output) const {
    int n = 0;
    for (const Stamped& s : deliveries)
      if (s.delivery.packet == packet && s.delivery.output == output) ++n;
    return n;
  }
};

DriveLog drive(VoqSwitch& sw, const FaultPlan& plan,
               const std::vector<Packet>& packets, SlotTime slots) {
  FaultState faults(plan);
  sw.set_fault_state(&faults);
  Rng rng(7);
  SlotResult result;
  DriveLog log;
  for (SlotTime now = 0; now < slots; ++now) {
    faults.advance(now);
    for (const Packet& packet : packets)
      if (packet.arrival == now) sw.inject(packet);
    result.clear();
    sw.step(now, rng, result);
    for (const Delivery& d : result.deliveries)
      log.deliveries.push_back(Stamped{now, d});
    for (const Delivery& d : result.purged)
      log.purged.push_back(Stamped{now, d});
  }
  sw.set_fault_state(nullptr);
  return log;
}

TEST(Degradation, NoDeliveryToFailedOutputWhileDown) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  const FaultPlan plan({ev(1, FaultKind::kOutputDown, 2),
                        ev(10, FaultKind::kOutputUp, 2)},
                       4);
  // Output 2 has traffic queued the whole time.
  std::vector<Packet> packets;
  for (PacketId id = 0; id < 6; ++id)
    packets.push_back(make_packet(id, static_cast<PortId>(id % 4),
                                  static_cast<SlotTime>(id), {2}));
  const DriveLog log = drive(sw, plan, packets, 20);
  // While output 2 is down (slots 1..9) not a single copy may land on it.
  for (const Stamped& s : log.deliveries) {
    if (s.delivery.output != 2) continue;
    EXPECT_TRUE(s.slot < 1 || s.slot >= 10)
        << "copy served on dead output 2 at slot " << s.slot;
  }
  // All six copies eventually land: hold keeps them queued across the
  // outage instead of wedging or dropping.
  int total = 0;
  for (PacketId id = 0; id < 6; ++id) total += log.count(id, 2);
  EXPECT_EQ(total, 6);
  EXPECT_TRUE(log.purged.empty());
}

TEST(Degradation, ServesLiveOutputsWhileOneIsDown) {
  // Fanout {1, 2} with output 2 dead: the copy to live output 1 must not
  // be held hostage by the dead sibling.
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  const FaultPlan plan({ev(0, FaultKind::kOutputDown, 2)}, 4);
  const std::vector<Packet> packets = {make_packet(0, 0, 0, {1, 2})};
  const DriveLog log = drive(sw, plan, packets, 5);
  EXPECT_EQ(log.count(0, 1), 1);
  EXPECT_EQ(log.count(0, 2), 0);
  EXPECT_EQ(sw.input(0).data_cell_count(), 1u);  // held for output 2
}

TEST(Degradation, PurgePolicyDiscardsStrandedCellsAndReportsThem) {
  VoqSwitch::Options options;
  options.stranded_policy = StrandedCellPolicy::kPurge;
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>(), options);
  const FaultPlan plan({ev(1, FaultKind::kOutputDown, 3)}, 4);
  // Both inputs contend for output 3 in slot 0; whichever loses still
  // holds a copy for it when the output dies at slot 1.  (The tie-break
  // is randomised, so the test pins the shape, not the winner.)
  const std::vector<Packet> packets = {make_packet(0, 0, 0, {3}),
                                       make_packet(1, 1, 0, {0, 3})};
  const DriveLog log = drive(sw, plan, packets, 8);
  EXPECT_EQ(log.count(1, 0), 1);
  int to_output3 = 0;
  for (const Stamped& s : log.deliveries)
    if (s.delivery.output == 3) {
      ++to_output3;
      EXPECT_EQ(s.slot, 0) << "copy served on dead output 3";
    }
  EXPECT_EQ(to_output3, 1);
  ASSERT_EQ(log.purged.size(), 1u);
  EXPECT_EQ(log.purged[0].delivery.output, 3);
  EXPECT_EQ(log.purged[0].slot, 1);
  // Nothing is left buffered: the purge retired the stranded fanout.
  EXPECT_EQ(sw.total_buffered(), 0u);
  for (PortId input = 0; input < 4; ++input)
    EXPECT_TRUE(sw.input(input).occupied().empty());
}

TEST(Degradation, InputDownSuppressesTransmissionFromThatLineCard) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  const FaultPlan plan({ev(0, FaultKind::kInputDown, 0),
                        ev(12, FaultKind::kInputUp, 0)},
                       4);
  // The backlog is queued while the line card is down; nothing from
  // input 0 may cross the fabric before slot 12.
  const std::vector<Packet> packets = {make_packet(0, 0, 0, {1, 2})};
  const DriveLog log = drive(sw, plan, packets, 20);
  for (const Stamped& s : log.deliveries)
    EXPECT_GE(s.slot, 12)
        << "copy from downed input 0 crossed at slot " << s.slot;
  EXPECT_EQ(log.count(0, 1), 1);
  EXPECT_EQ(log.count(0, 2), 1);
}

TEST(Degradation, EmptyPlanIsBitIdenticalToNoPlan) {
  // The fault-free contract: attaching an empty plan must not perturb a
  // single draw — delays, delivery counts and queue stats all match.
  const int ports = 8;
  auto run = [&](const FaultPlan* plan) {
    VoqSwitch sw(ports, std::make_unique<FifomsScheduler>());
    BernoulliTraffic traffic(ports,
                             BernoulliTraffic::p_for_load(0.7, 0.2, ports),
                             0.2);
    SimConfig config;
    config.total_slots = 3'000;
    config.warmup_fraction = 0.25;
    config.seed = 99;
    config.fault_plan = plan;
    Simulator simulator(sw, traffic, config);
    return simulator.run();
  };
  const FaultPlan empty;
  const SimResult without = run(nullptr);
  const SimResult with = run(&empty);
  EXPECT_EQ(without.packets_offered, with.packets_offered);
  EXPECT_EQ(without.copies_delivered, with.copies_delivered);
  EXPECT_EQ(without.output_delay.mean(), with.output_delay.mean());
  EXPECT_EQ(without.queue_max, with.queue_max);
  EXPECT_EQ(with.fault_events_applied, 0u);
}

TEST(Degradation, FaultedRunStaysPairedWithFaultFreeTwin) {
  // Arrivals at a failed line card are drawn then suppressed, so the
  // arrival stream (offered + suppressed) is identical to the twin's.
  const int ports = 8;
  auto run = [&](const FaultPlan* plan) {
    VoqSwitch sw(ports, std::make_unique<FifomsScheduler>());
    BernoulliTraffic traffic(ports,
                             BernoulliTraffic::p_for_load(0.8, 0.2, ports),
                             0.2);
    SimConfig config;
    config.total_slots = 4'000;
    config.warmup_fraction = 0.25;
    config.seed = 5;
    config.fault_plan = plan;
    Simulator simulator(sw, traffic, config);
    return simulator.run();
  };
  const FaultPlan plan = FaultPlan::correlated_line_card_loss(
      ports, /*seed=*/3, /*down_at=*/1'000, /*up_at=*/2'000, /*cards=*/2);
  const SimResult clean = run(nullptr);
  const SimResult faulted = run(&plan);
  EXPECT_GT(faulted.packets_suppressed, 0u);
  EXPECT_EQ(faulted.packets_offered + faulted.packets_suppressed,
            clean.packets_offered);
  EXPECT_GT(faulted.fault_events_applied, 0u);
}

TEST(Degradation, GrantCorruptionIsSanitizedNotFatal) {
  // Transient grant corruption flips wires before sanitisation; the
  // switch must repair the matching into something servable — the run
  // completes and conservation holds (every offered copy is delivered
  // once the storm ends).
  const int ports = 4;
  std::vector<FaultEvent> events;
  for (SlotTime slot = 2; slot < 40; slot += 3)
    events.push_back(ev(slot, FaultKind::kGrantCorrupt, 0));
  const FaultPlan plan(std::move(events), ports, /*seed=*/11);

  VoqSwitch sw(ports, std::make_unique<FifomsScheduler>());
  std::vector<Packet> packets;
  for (PacketId id = 0; id < 12; ++id)
    packets.push_back(make_packet(id, static_cast<PortId>(id % ports),
                                  static_cast<SlotTime>(id / ports),
                                  {static_cast<PortId>((id + 1) % ports)}));
  const DriveLog log = drive(sw, plan, packets, 60);
  EXPECT_EQ(log.deliveries.size(), 12u);
  EXPECT_EQ(sw.total_buffered(), 0u);
}

TEST(Degradation, LinkFaultBlocksOnlyThatCrosspoint) {
  VoqSwitch sw(4, std::make_unique<FifomsScheduler>());
  const FaultPlan plan({ev(0, FaultKind::kLinkDown, 0, 1)}, 4);
  // Input 0 cannot reach output 1, but input 1 can.
  const std::vector<Packet> packets = {make_packet(0, 0, 0, {1}),
                                       make_packet(1, 1, 1, {1})};
  const DriveLog log = drive(sw, plan, packets, 10);
  EXPECT_EQ(log.count(0, 1), 0);
  EXPECT_EQ(log.count(1, 1), 1);
  EXPECT_EQ(sw.input(0).data_cell_count(), 1u);  // held behind the link
}

}  // namespace
}  // namespace fifoms
