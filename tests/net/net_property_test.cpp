// Network invariant property tests for the multistage fabric: end-to-end
// cell conservation, per-flow FIFO across hops, bounded inter-stage
// buffers under backpressure, exactly-once multicast fanout, late-as-
// possible tree replication, and hold/purge accounting under link faults
// — all with the network auditor armed wherever the build carries it.
#include <gtest/gtest.h>

#include "core/fifoms.hpp"
#include "net/net_auditor.hpp"
#include "net/net_fault.hpp"
#include "net/network_fabric.hpp"
#include "net_test_util.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/uniform_fanout.hpp"

namespace fifoms::net {
namespace {

using test::drive_fabric;
using test::DriveResult;

NetworkFabric::SchedulerFactory fifoms_elements() {
  return [] { return std::make_unique<FifomsScheduler>(); };
}

// The ISSUE acceptance run: a 3-stage Clos of 4x4 FIFOMS elements under
// admissible uniform multicast at load 0.8, auditor armed at both the
// network and the element level.  With the drain tail every accepted
// copy must come out exactly once (>= 99.9% delivered is implied by
// equality), in per-flow FIFO order, payloads intact.
TEST(NetProperty, ClosSustainsLoad08UniformMulticast) {
  NetworkFabric fabric(Topology::clos3(4), fifoms_elements(),
                       NetworkFabric::Options{.audit_switches = true});
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  UniformFanoutTraffic traffic(16, UniformFanoutTraffic::p_for_load(0.8, 4),
                               4);
  const DriveResult run = drive_fabric(fabric, traffic, 2'500, 0xC105A11);
  ASSERT_GT(run.copies_offered, 0u);
  EXPECT_EQ(fabric.copies_injected(), run.copies_offered);
  EXPECT_EQ(fabric.pending_copies(), 0u)
      << "fabric failed to drain within the limit";
  EXPECT_EQ(fabric.copies_delivered(), run.copies_offered);
  EXPECT_EQ(fabric.copies_purged(), 0u);
  EXPECT_EQ(run.deliveries.size(), run.copies_offered);
  test::expect_exactly_once(run.deliveries);
  test::expect_flow_fifo(run.deliveries);
  test::expect_payloads_intact(run.deliveries);
  // Delay decomposes per stage: the ingress serves one uplink cell per
  // packet, the egress one cell per delivered copy, and a 3-hop route
  // costs at least the two link slots end to end.
  EXPECT_GE(fabric.end_to_end_delay().mean(), 2.0);
  EXPECT_EQ(fabric.hop_delay(0).count(),
            run.packets_offered);
  EXPECT_EQ(fabric.hop_delay(2).count(),
            run.copies_offered);
  if (NetworkAuditor::enabled()) {
    EXPECT_EQ(auditor.copies_checked(), run.copies_offered);
    EXPECT_EQ(auditor.packets_retired(), run.packets_offered);
    EXPECT_GT(auditor.slots_audited(), 0u);
  }
}

TEST(NetProperty, BernoulliMulticastConservesEveryCopy) {
  NetworkFabric fabric(Topology::clos3(2), fifoms_elements());
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  BernoulliTraffic traffic(4, BernoulliTraffic::p_for_load(0.7, 0.5, 4),
                           0.5);
  const DriveResult run = drive_fabric(fabric, traffic, 4'000, 0xBE57);
  ASSERT_GT(run.copies_offered, 0u);
  EXPECT_EQ(fabric.copies_delivered() + fabric.copies_purged(),
            run.copies_offered);
  EXPECT_EQ(fabric.copies_purged(), 0u);
  test::expect_exactly_once(run.deliveries);
  test::expect_flow_fifo(run.deliveries);
}

// The bounded-buffer invariant, checked structurally every slot of an
// overloaded run: no internal input buffer ever exceeds the configured
// capacity, and the wires actually had to pause to achieve that.
TEST(NetProperty, BackpressureBoundsEveryInterStageBuffer) {
  const std::size_t capacity = 2;
  NetworkFabric fabric(
      Topology::clos3(2), fifoms_elements(),
      NetworkFabric::Options{.link_buffer_capacity = capacity});
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  // Inadmissible load (1.5): only backpressure keeps the inside bounded.
  BernoulliTraffic traffic(4, 1.0, 0.75);
  Rng traffic_rng(derive_seed(7, 1, 0));
  Rng sched_rng(derive_seed(7, 2, 0));
  traffic.reset(traffic_rng);
  SlotResult result;
  PacketId next_id = 1;
  const Topology& topo = fabric.topology();
  for (SlotTime now = 0; now < 2'000; ++now) {
    for (PortId input = 0; input < fabric.num_inputs(); ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      fabric.inject(packet);
    }
    result.clear();
    fabric.step(now, sched_rng, result);
    for (int link = 0; link < topo.num_internal_links(); ++link) {
      const auto [sw, output] = topo.link_source(link);
      const LinkEnd to = topo.out_port(sw, output).to;
      EXPECT_LE(fabric.switch_at(to.sw).occupancy(to.port), capacity)
          << "link " << link << " overflowed at slot " << now;
    }
  }
  EXPECT_GT(fabric.pauses_applied(), 0u)
      << "an overloaded run never engaged backpressure";
}

// A cell to all 16 external outputs replicates as late as possible: one
// uplink copy, four middle-to-egress copies, sixteen deliveries.
TEST(NetProperty, MulticastTreeReplicatesLateAsPossible) {
  NetworkFabric fabric(Topology::clos3(4), fifoms_elements());
  Packet packet;
  packet.id = 1;
  packet.input = 0;
  packet.arrival = 0;
  packet.destinations = PortSet::all(16);
  ASSERT_TRUE(fabric.inject(packet));
  Rng rng(42);
  SlotResult result;
  std::size_t delivered = 0;
  for (SlotTime now = 0; now < 16 && fabric.pending_copies() > 0; ++now) {
    result.clear();
    fabric.step(now, rng, result);
    delivered += result.deliveries.size();
  }
  EXPECT_EQ(delivered, 16u);
  EXPECT_EQ(fabric.forwarded_cells(), 5u)
      << "a broadcast should cross 1 ingress uplink + 4 middle links";
  EXPECT_EQ(fabric.hop_delay(0).count(), 1);
  EXPECT_EQ(fabric.hop_delay(1).count(), 4);
  EXPECT_EQ(fabric.hop_delay(2).count(), 16);
  EXPECT_EQ(fabric.end_to_end_delay().count(), 16);
}

// Leaf-local fat-tree traffic never touches a spine; remote traffic does.
TEST(NetProperty, FatTreeLocalTrafficNeverLeavesTheLeaf) {
  NetworkFabric fabric(Topology::fat_tree2(4), fifoms_elements());
  Rng rng(9);
  SlotResult result;
  PacketId next_id = 1;
  for (SlotTime now = 0; now < 64; ++now) {
    for (PortId input = 0; input < 8; ++input) {
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      // Both outputs of the input's own leaf: strictly local multicast.
      const PortId base = (input / 2) * 2;
      packet.destinations = PortSet{base, base + 1};
      ASSERT_TRUE(fabric.inject(packet));
    }
    result.clear();
    fabric.step(now, rng, result);
  }
  for (SlotTime now = 64; fabric.pending_copies() > 0 && now < 256; ++now) {
    result.clear();
    fabric.step(now, rng, result);
  }
  EXPECT_EQ(fabric.pending_copies(), 0u);
  EXPECT_EQ(fabric.forwarded_cells(), 0u)
      << "local hairpin traffic crossed an internal link";
  EXPECT_EQ(fabric.hop_delay(1).count(), 0);
}

TEST(NetProperty, FatTreeRemoteMulticastDeliversExactlyOnce) {
  NetworkFabric fabric(Topology::fat_tree2(4), fifoms_elements());
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  UniformFanoutTraffic traffic(8, UniformFanoutTraffic::p_for_load(0.6, 4),
                               4);
  const DriveResult run = drive_fabric(fabric, traffic, 3'000, 0xFA7);
  ASSERT_GT(run.copies_offered, 0u);
  EXPECT_EQ(fabric.copies_delivered(), run.copies_offered);
  EXPECT_GT(fabric.forwarded_cells(), 0u);
  test::expect_exactly_once(run.deliveries);
  test::expect_flow_fifo(run.deliveries);
  test::expect_payloads_intact(run.deliveries);
}

// Link faults with the hold policy: cells wait out the outage, nothing
// is lost, everything still arrives exactly once and in flow order.
TEST(NetProperty, HoldPolicySurvivesLinkFlapsWithoutLoss) {
  NetworkFabric fabric(Topology::clos3(2), fifoms_elements(),
                       NetworkFabric::Options{
                           .stranded_policy = StrandedCellPolicy::kHold});
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  const NetFaultPlan plan = NetFaultPlan::inter_stage_link_flaps(
      fabric.topology(), /*first_down=*/100, /*period=*/150,
      /*down_slots=*/40, /*horizon=*/1'800);
  fabric.set_net_fault_plan(&plan);
  BernoulliTraffic traffic(4, BernoulliTraffic::p_for_load(0.5, 0.5, 4),
                           0.5);
  const DriveResult run = drive_fabric(fabric, traffic, 2'000, 0x401D);
  ASSERT_GT(run.copies_offered, 0u);
  EXPECT_EQ(fabric.copies_delivered(), run.copies_offered);
  EXPECT_EQ(fabric.copies_purged(), 0u);
  EXPECT_EQ(fabric.pending_copies(), 0u);
  test::expect_exactly_once(run.deliveries);
  test::expect_flow_fifo(run.deliveries);
  if (NetworkAuditor::enabled()) {
    EXPECT_GT(auditor.fault_events_seen(), 0u);
  }
}

// The purge policy under the same flaps: every accepted copy is either
// delivered or purged (with full accounting), never lost silently.
TEST(NetProperty, PurgePolicyAccountsEveryCopyUnderLinkFlaps) {
  NetworkFabric fabric(Topology::clos3(2), fifoms_elements(),
                       NetworkFabric::Options{
                           .stranded_policy = StrandedCellPolicy::kPurge});
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  const NetFaultPlan plan = NetFaultPlan::inter_stage_link_flaps(
      fabric.topology(), /*first_down=*/50, /*period=*/120,
      /*down_slots=*/60, /*horizon=*/1'700);
  fabric.set_net_fault_plan(&plan);
  BernoulliTraffic traffic(4, BernoulliTraffic::p_for_load(0.6, 0.5, 4),
                           0.5);
  const DriveResult run = drive_fabric(fabric, traffic, 2'000, 0x9043);
  ASSERT_GT(run.copies_offered, 0u);
  EXPECT_EQ(fabric.copies_delivered() + fabric.copies_purged(),
            run.copies_offered);
  EXPECT_GT(fabric.copies_purged(), 0u)
      << "a purge run through 60-slot outages should strand something";
  EXPECT_EQ(run.purged.size(), fabric.copies_purged());
  test::expect_exactly_once(run.deliveries);
  test::expect_flow_fifo(run.deliveries);
  // Purged copies carry their original flight identity for accounting.
  for (const Delivery& p : run.purged) {
    EXPECT_GE(p.output, 0);
    EXPECT_LT(p.output, 4);
  }
}

// Degenerate fabric smoke: the single-switch topology with backpressure
// configured has no links to pause, so options are inert by construction.
TEST(NetProperty, SingleTopologyHasNoInternalMachinery) {
  NetworkFabric fabric(Topology::single_switch(4), fifoms_elements(),
                       NetworkFabric::Options{.link_buffer_capacity = 1});
  BernoulliTraffic traffic(4, 0.6, 0.5);
  const DriveResult run = drive_fabric(fabric, traffic, 1'000, 0x51);
  EXPECT_EQ(fabric.copies_delivered(), run.copies_offered);
  EXPECT_EQ(fabric.forwarded_cells(), 0u);
  EXPECT_EQ(fabric.pauses_applied(), 0u);
  EXPECT_EQ(fabric.end_to_end_delay().count(),
            run.copies_offered);
}

// clear() resets the fabric to a fresh run: same seed, same outcome.
TEST(NetProperty, ClearResetsToBitIdenticalRuns) {
  NetworkFabric fabric(Topology::clos3(2), fifoms_elements());
  BernoulliTraffic traffic(4, 0.5, 0.5);
  const DriveResult first = drive_fabric(fabric, traffic, 500, 0xAB);
  const std::uint64_t delivered_first = fabric.copies_delivered();
  fabric.clear();
  EXPECT_EQ(fabric.copies_delivered(), 0u);
  EXPECT_EQ(fabric.pending_copies(), 0u);
  const DriveResult second = drive_fabric(fabric, traffic, 500, 0xAB);
  EXPECT_EQ(fabric.copies_delivered(), delivered_first);
  ASSERT_EQ(first.deliveries.size(), second.deliveries.size());
  for (std::size_t i = 0; i < first.deliveries.size(); ++i) {
    EXPECT_EQ(first.deliveries[i].packet, second.deliveries[i].packet);
    EXPECT_EQ(first.deliveries[i].output, second.deliveries[i].output);
    EXPECT_EQ(first.deliveries[i].arrival, second.deliveries[i].arrival);
  }
}

}  // namespace
}  // namespace fifoms::net
