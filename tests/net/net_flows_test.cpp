// Flow-level (Zipf group, membership churn) traffic over multistage
// fabrics: the network invariants must hold when the destination sets
// come from a mutating group table rather than an i.i.d. draw — each
// packet snapshots its group membership at arrival, and the fabric must
// deliver exactly that snapshot whatever churn does afterwards.
#include <gtest/gtest.h>

#include <set>

#include "core/fifoms.hpp"
#include "flows/flow_traffic.hpp"
#include "net/net_auditor.hpp"
#include "net/network_fabric.hpp"
#include "net_test_util.hpp"

namespace fifoms::net {
namespace {

using test::drive_fabric;
using test::DriveResult;

NetworkFabric::SchedulerFactory fifoms_elements() {
  return [] { return std::make_unique<FifomsScheduler>(); };
}

GroupTable make_groups(int num_ports, std::uint64_t seed) {
  Rng rng(seed);
  return GroupTable::random(num_ports, /*count=*/8, /*min_size=*/2,
                            /*max_size=*/num_ports / 2, rng);
}

TEST(NetFlows, ZipfChurnOverClosConservesEveryCopy) {
  NetworkFabric fabric(Topology::clos3(4), fifoms_elements());
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  FlowTraffic traffic(make_groups(16, 5), /*p=*/0.35, /*zipf_skew=*/1.2,
                      /*churn_rate=*/0.2);
  const DriveResult run = drive_fabric(fabric, traffic, 2'500, 0xF10);
  ASSERT_GT(run.copies_offered, 0u);
  EXPECT_EQ(fabric.copies_delivered(), run.copies_offered);
  EXPECT_EQ(fabric.pending_copies(), 0u);
  test::expect_exactly_once(run.deliveries);
  test::expect_flow_fifo(run.deliveries);
  test::expect_payloads_intact(run.deliveries);
  if (NetworkAuditor::enabled()) {
    EXPECT_EQ(auditor.copies_checked(), run.copies_offered);
  }
}

TEST(NetFlows, ChurningGroupsSpreadAcrossEveryEgressStage) {
  NetworkFabric fabric(Topology::clos3(4), fifoms_elements());
  FlowTraffic traffic(make_groups(16, 9), /*p=*/0.4, /*zipf_skew=*/0.9,
                      /*churn_rate=*/0.5);
  const DriveResult run = drive_fabric(fabric, traffic, 3'000, 0xCAFE);
  ASSERT_GT(run.copies_offered, 0u);
  std::set<PortId> outputs;
  std::set<int> egress_switches;
  for (const Delivery& d : run.deliveries) {
    outputs.insert(d.output);
    egress_switches.insert(d.output / 4);
  }
  // Heavy churn walks the memberships around: over 3000 slots the
  // deliveries must have touched every egress element and most outputs.
  EXPECT_EQ(egress_switches.size(), 4u);
  EXPECT_GE(outputs.size(), 12u);
  EXPECT_EQ(fabric.copies_delivered(), run.copies_offered);
}

TEST(NetFlows, ZipfFlowsOverTheFatTreeHoldOrder) {
  NetworkFabric fabric(Topology::fat_tree2(4), fifoms_elements());
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  FlowTraffic traffic(make_groups(8, 21), /*p=*/0.3, /*zipf_skew=*/1.5,
                      /*churn_rate=*/0.1);
  const DriveResult run = drive_fabric(fabric, traffic, 2'500, 0x7EE);
  ASSERT_GT(run.copies_offered, 0u);
  EXPECT_EQ(fabric.copies_delivered(), run.copies_offered);
  test::expect_exactly_once(run.deliveries);
  test::expect_flow_fifo(run.deliveries);
}

}  // namespace
}  // namespace fifoms::net
