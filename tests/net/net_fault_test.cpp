// NetFaultPlan validation and network fault scenarios: inter-stage link
// flaps, ingress and internal line-card loss, and the seeded fault storm
// — with conservation accounting checked end to end in every case.
#include <gtest/gtest.h>

#include "core/fifoms.hpp"
#include "net/net_auditor.hpp"
#include "net/net_fault.hpp"
#include "net/network_fabric.hpp"
#include "net_test_util.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms::net {
namespace {

using test::drive_fabric;
using test::DriveResult;

NetworkFabric::SchedulerFactory fifoms_elements() {
  return [] { return std::make_unique<FifomsScheduler>(); };
}

TEST(NetFaultPlanTest, RejectsBadSwitchIndex) {
  const Topology topo = Topology::clos3(2);
  std::vector<NetFaultEvent> events{
      {.sw = 99,
       .event = {.slot = 1, .kind = fault::FaultKind::kOutputDown,
                 .port = 0}}};
  EXPECT_THROW(NetFaultPlan(events, topo), fault::FaultError);
  events[0].sw = -1;
  EXPECT_THROW(NetFaultPlan(events, topo), fault::FaultError);
}

TEST(NetFaultPlanTest, RejectsGrantCorruption) {
  // A corrupted grant bypasses ScheduleConstraints, which is exactly the
  // seam backpressure rides on — the network layer refuses the kind.
  const Topology topo = Topology::clos3(2);
  const std::vector<NetFaultEvent> events{
      {.sw = 0,
       .event = {.slot = 5, .kind = fault::FaultKind::kGrantCorrupt,
                 .port = 1}}};
  EXPECT_THROW(NetFaultPlan(events, topo), fault::FaultError);
}

TEST(NetFaultPlanTest, RejectsPerSwitchValidationFailures) {
  const Topology topo = Topology::clos3(2);
  // Port out of the element radix.
  EXPECT_THROW(
      NetFaultPlan({{.sw = 0,
                     .event = {.slot = 1,
                               .kind = fault::FaultKind::kOutputDown,
                               .port = 7}}},
                   topo),
      fault::FaultError);
  // Double-down on the same output.
  EXPECT_THROW(
      NetFaultPlan({{.sw = 1,
                     .event = {.slot = 1,
                               .kind = fault::FaultKind::kOutputDown,
                               .port = 0}},
                    {.sw = 1,
                     .event = {.slot = 2,
                               .kind = fault::FaultKind::kOutputDown,
                               .port = 0}}},
                   topo),
      fault::FaultError);
}

TEST(NetFaultPlanTest, GroupsEventsBySwitch) {
  const Topology topo = Topology::clos3(2);
  const NetFaultPlan plan(
      {{.sw = 2,
        .event = {.slot = 10, .kind = fault::FaultKind::kOutputDown,
                  .port = 1}},
       {.sw = 2,
        .event = {.slot = 20, .kind = fault::FaultKind::kOutputUp,
                  .port = 1}},
       {.sw = 4,
        .event = {.slot = 5, .kind = fault::FaultKind::kInputDown,
                  .port = 0}},
       {.sw = 4,
        .event = {.slot = 9, .kind = fault::FaultKind::kInputUp,
                  .port = 0}}},
      topo);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.num_switches(), topo.num_switches());
  EXPECT_EQ(plan.total_events(), 4u);
  EXPECT_EQ(plan.plan_for(2).events().size(), 2u);
  EXPECT_EQ(plan.plan_for(4).events().size(), 2u);
  EXPECT_TRUE(plan.plan_for(0).empty());
  EXPECT_THROW(plan.plan_for(topo.num_switches()), fault::FaultError);
}

TEST(NetFaultPlanTest, BuildersAreSeedDeterministic) {
  const Topology topo = Topology::clos3(4);
  const NetFaultPlan a = NetFaultPlan::net_fault_storm(topo, 7, 2'000);
  const NetFaultPlan b = NetFaultPlan::net_fault_storm(topo, 7, 2'000);
  const NetFaultPlan c = NetFaultPlan::net_fault_storm(topo, 8, 2'000);
  ASSERT_EQ(a.total_events(), b.total_events());
  bool any_events = false;
  bool differs_from_c = a.total_events() != c.total_events();
  for (int sw = 0; sw < topo.num_switches(); ++sw) {
    EXPECT_EQ(a.plan_for(sw).events(), b.plan_for(sw).events()) << sw;
    any_events = any_events || !a.plan_for(sw).empty();
    differs_from_c =
        differs_from_c || a.plan_for(sw).events() != c.plan_for(sw).events();
  }
  EXPECT_TRUE(any_events);
  EXPECT_TRUE(differs_from_c) << "different seeds produced the same storm";
}

TEST(NetFaultPlanTest, LinkFlapsTargetEveryLinkInTurn) {
  const Topology topo = Topology::clos3(2);
  const NetFaultPlan plan = NetFaultPlan::inter_stage_link_flaps(
      topo, /*first_down=*/10, /*period=*/20, /*down_slots=*/5,
      /*horizon=*/10 + 20 * topo.num_internal_links());
  // Every event is a down/up pair at the upstream driver of some link.
  std::size_t downs = 0;
  for (int sw = 0; sw < topo.num_switches(); ++sw) {
    for (const fault::FaultEvent& event : plan.plan_for(sw).events()) {
      ASSERT_TRUE(event.kind == fault::FaultKind::kOutputDown ||
                  event.kind == fault::FaultKind::kOutputUp);
      EXPECT_FALSE(topo.out_port(sw, event.port).external)
          << "flap aimed at an external output";
      if (event.kind == fault::FaultKind::kOutputDown) ++downs;
    }
  }
  EXPECT_EQ(downs, static_cast<std::size_t>(topo.num_internal_links()));
}

// A dead ingress line card drops whole packets at the fabric edge, and
// the fabric counts them; accepted copies still conserve exactly.
TEST(NetFaultScenario, IngressLineCardLossDropsAtTheEdge) {
  NetworkFabric fabric(Topology::clos3(2), fifoms_elements());
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  const NetFaultPlan plan = NetFaultPlan::ingress_line_card_loss(
      fabric.topology(), /*seed=*/3, /*down_at=*/200, /*up_at=*/600,
      /*cards=*/2);
  fabric.set_net_fault_plan(&plan);
  BernoulliTraffic traffic(4, 0.8, 0.5);
  const DriveResult run = drive_fabric(fabric, traffic, 1'200, 0xEDfe);
  EXPECT_GT(fabric.dropped_packets(), 0u)
      << "two dead cards over 400 slots at p=0.8 must drop something";
  EXPECT_EQ(fabric.copies_injected(), run.copies_offered);
  EXPECT_EQ(fabric.copies_delivered() + fabric.copies_purged(),
            run.copies_offered);
  test::expect_exactly_once(run.deliveries);
  test::expect_flow_fifo(run.deliveries);
}

// A dead INTERNAL line card (middle-switch input) loses the copies that
// land on it while down; the fabric accounts every one of them as purged
// even under the hold policy — the loss is physical, not a policy.
TEST(NetFaultScenario, InternalLineCardLossIsAccountedAsPurged) {
  NetworkFabric fabric(Topology::clos3(2), fifoms_elements(),
                       NetworkFabric::Options{
                           .stranded_policy = StrandedCellPolicy::kHold});
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  // Middle switch 2, input 0: the wire from ingress 0 carrying every
  // flow pinned to middle 0 (external input 0).
  const NetFaultPlan plan(
      {{.sw = 2,
        .event = {.slot = 100, .kind = fault::FaultKind::kInputDown,
                  .port = 0}},
       {.sw = 2,
        .event = {.slot = 400, .kind = fault::FaultKind::kInputUp,
                  .port = 0}}},
      fabric.topology());
  fabric.set_net_fault_plan(&plan);
  BernoulliTraffic traffic(4, 0.9, 0.6);
  const DriveResult run = drive_fabric(fabric, traffic, 800, 0xDEAD);
  EXPECT_GT(fabric.copies_purged(), 0u)
      << "300 slots of a dead middle input must lose copies";
  EXPECT_EQ(fabric.copies_delivered() + fabric.copies_purged(),
            run.copies_offered);
  EXPECT_EQ(fabric.pending_copies(), 0u);
  EXPECT_EQ(run.purged.size(), fabric.copies_purged());
  test::expect_exactly_once(run.deliveries);
}

// An egress external output going down and recovering under the hold
// policy: cells wait, nothing is purged, everything arrives.
TEST(NetFaultScenario, EgressOutputFlapHoldsAndRecovers) {
  NetworkFabric fabric(Topology::clos3(2), fifoms_elements(),
                       NetworkFabric::Options{
                           .stranded_policy = StrandedCellPolicy::kHold});
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  // Egress switch 4 (= 2k + 0), output 1 = external output 1.
  const NetFaultPlan plan(
      {{.sw = 4,
        .event = {.slot = 150, .kind = fault::FaultKind::kOutputDown,
                  .port = 1}},
       {.sw = 4,
        .event = {.slot = 450, .kind = fault::FaultKind::kOutputUp,
                  .port = 1}}},
      fabric.topology());
  fabric.set_net_fault_plan(&plan);
  BernoulliTraffic traffic(4, 0.6, 0.5);
  const DriveResult run = drive_fabric(fabric, traffic, 900, 0xE9);
  EXPECT_EQ(fabric.copies_purged(), 0u);
  EXPECT_EQ(fabric.copies_delivered(), run.copies_offered);
  test::expect_exactly_once(run.deliveries);
  test::expect_flow_fifo(run.deliveries);
  if (NetworkAuditor::enabled()) {
    EXPECT_EQ(auditor.fault_events_seen(), 2u);
  }
}

// The full adversarial storm on a 4-ary Clos: whatever the mix does,
// accounting stays exact and order holds.
TEST(NetFaultScenario, FaultStormConservesEveryCopy) {
  NetworkFabric fabric(Topology::clos3(4), fifoms_elements(),
                       NetworkFabric::Options{
                           .stranded_policy = StrandedCellPolicy::kPurge});
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  const NetFaultPlan plan =
      NetFaultPlan::net_fault_storm(fabric.topology(), /*seed=*/11,
                                    /*horizon=*/1'500);
  fabric.set_net_fault_plan(&plan);
  BernoulliTraffic traffic(16, 0.5, 0.25);
  const DriveResult run = drive_fabric(fabric, traffic, 2'000, 0x5708);
  EXPECT_EQ(fabric.copies_delivered() + fabric.copies_purged(),
            run.copies_offered);
  EXPECT_EQ(fabric.pending_copies(), 0u);
  test::expect_exactly_once(run.deliveries);
  test::expect_flow_fifo(run.deliveries);
  test::expect_payloads_intact(run.deliveries);
  if (NetworkAuditor::enabled()) {
    EXPECT_GT(auditor.fault_events_seen(), 0u);
    EXPECT_EQ(auditor.copies_checked() + auditor.copies_purged(),
              run.copies_offered);
  }
}

// Detaching the plan (or clear()) restores fault-free behaviour.
TEST(NetFaultScenario, DetachingThePlanRestoresFaultFreeRuns) {
  NetworkFabric fabric(Topology::clos3(2), fifoms_elements());
  const NetFaultPlan plan = NetFaultPlan::inter_stage_link_flaps(
      fabric.topology(), 10, 50, 25, 400);
  fabric.set_net_fault_plan(&plan);
  BernoulliTraffic traffic(4, 0.6, 0.5);
  drive_fabric(fabric, traffic, 500, 0x11);
  fabric.clear();
  fabric.set_net_fault_plan(nullptr);
  const DriveResult clean = drive_fabric(fabric, traffic, 500, 0x11);
  EXPECT_EQ(fabric.copies_delivered(), clean.copies_offered);
  EXPECT_EQ(fabric.copies_purged(), 0u);
}

}  // namespace
}  // namespace fifoms::net
