// Seeded determinism of the network layer under the parallel sweep
// engine: a topology grid over multistage fabrics must produce
// BYTE-identical CSV output for any worker thread count, exactly like
// the single-switch sweeps (docs/BENCHMARKING.md).  This extends the
// thread-count-invariance contract across the src/net/ composition seams
// — per-hop injection, backpressure, flight bookkeeping — none of which
// may consume RNG draws dependent on execution order.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "io/csv.hpp"
#include "net/net_experiment.hpp"
#include "traffic/uniform_fanout.hpp"

namespace fifoms::net {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Clos-of-FIFOMS vs the degenerate net-wrapped single switch on the same
// 16-external-port grid (16 = 4*4 fits both shapes).
std::string clos_sweep_csv(int threads, const char* name) {
  SweepConfig config;
  config.num_ports = 16;
  config.loads = {0.3, 0.6};
  config.slots = 1'500;
  config.replications = 2;
  config.master_seed = 2026;
  config.threads = threads;

  const auto points = run_sweep(
      config, {make_clos3_fifoms(), make_single_net_fifoms()},
      [](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<UniformFanoutTraffic>(
            16, UniformFanoutTraffic::p_for_load(load, 4), 4);
      });

  const std::string path = temp_path(name);
  write_sweep_csv(path, points);
  return read_file(path);
}

// Fat tree on its own grid: 8 external ports needs k = 4.
std::string fat_tree_sweep_csv(int threads, const char* name) {
  SweepConfig config;
  config.num_ports = 8;
  config.loads = {0.4, 0.7};
  config.slots = 1'500;
  config.replications = 2;
  config.master_seed = 77;
  config.threads = threads;

  const auto points = run_sweep(
      config, {make_fat_tree2_fifoms()},
      [](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<UniformFanoutTraffic>(
            8, UniformFanoutTraffic::p_for_load(load, 2), 2);
      });

  const std::string path = temp_path(name);
  write_sweep_csv(path, points);
  return read_file(path);
}

TEST(NetDeterminism, ClosSweepCsvByteIdenticalAcrossThreadCounts) {
  const std::string serial = clos_sweep_csv(1, "net_clos_t1.csv");
  const std::string two = clos_sweep_csv(2, "net_clos_t2.csv");
  const std::string eight = clos_sweep_csv(8, "net_clos_t8.csv");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

TEST(NetDeterminism, FatTreeSweepCsvByteIdenticalAcrossThreadCounts) {
  const std::string serial = fat_tree_sweep_csv(1, "net_ft_t1.csv");
  const std::string eight = fat_tree_sweep_csv(8, "net_ft_t8.csv");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, eight);
}

TEST(NetDeterminism, RepeatedSweepIsBitStable) {
  const std::string first = clos_sweep_csv(4, "net_clos_run1.csv");
  const std::string second = clos_sweep_csv(4, "net_clos_run2.csv");
  EXPECT_EQ(first, second);
}

TEST(NetDeterminism, RadixDerivationMatchesTheShapes) {
  EXPECT_EQ(clos3_radix_for_ports(16), 4);
  EXPECT_EQ(clos3_radix_for_ports(256), 16);
  EXPECT_EQ(fat_tree2_radix_for_ports(8), 4);
  EXPECT_EQ(fat_tree2_radix_for_ports(18), 6);
  EXPECT_EQ(fat_tree2_radix_for_ports(32), 8);
}

TEST(NetDeterminism, FactoriesBuildTheAdvertisedShapes) {
  const auto clos = make_clos3_fifoms();
  EXPECT_EQ(clos.label, "Clos3-FIFOMS");
  const auto model = clos.make(16);
  EXPECT_EQ(model->num_inputs(), 16);
  EXPECT_EQ(model->name(), "net-FIFOMS/clos3/4");
  const auto tree = make_fat_tree2_fifoms();
  const auto tree_model = tree.make(8);
  EXPECT_EQ(tree_model->name(), "net-FIFOMS/fat-tree2/4");
  const auto single = make_single_net_fifoms();
  const auto single_model = single.make(8);
  EXPECT_EQ(single_model->name(), "net-FIFOMS/single/8");
}

}  // namespace
}  // namespace fifoms::net
