// Shared helpers for the network (multistage fabric) test suite.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "net/net_auditor.hpp"
#include "net/network_fabric.hpp"
#include "traffic/traffic_model.hpp"

namespace fifoms::net::test {

struct DriveResult {
  std::vector<Delivery> deliveries;
  std::vector<Delivery> purged;
  std::uint64_t packets_offered = 0;
  std::uint64_t copies_offered = 0;
  SlotTime traffic_slots = 0;
  SlotTime total_slots = 0;  ///< including the drain tail
};

/// Drive `fabric` with `traffic` for `slots` arrival slots, then keep
/// stepping arrival-free until every accepted copy left the fabric (or
/// `drain_limit` extra slots pass — faults holding cells can prevent a
/// full drain).  Seeding mirrors the Simulator: separate traffic and
/// scheduler streams derived from one run seed.
inline DriveResult drive_fabric(NetworkFabric& fabric, TrafficModel& traffic,
                                SlotTime slots, std::uint64_t seed,
                                SlotTime drain_limit = 20'000) {
  Rng traffic_rng(derive_seed(seed, 1, 0));
  Rng sched_rng(derive_seed(seed, 2, 0));
  traffic.reset(traffic_rng);
  DriveResult out;
  out.traffic_slots = slots;
  SlotResult result;
  PacketId next_id = 1;
  SlotTime now = 0;
  const auto step_once = [&] {
    result.clear();
    fabric.step(now, sched_rng, result);
    out.deliveries.insert(out.deliveries.end(), result.deliveries.begin(),
                          result.deliveries.end());
    out.purged.insert(out.purged.end(), result.purged.begin(),
                      result.purged.end());
    ++now;
  };
  for (; now < slots;) {
    for (PortId input = 0; input < fabric.num_inputs(); ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      packet.priority = traffic.last_priority();
      if (fabric.inject(packet)) {
        ++out.packets_offered;
        out.copies_offered += static_cast<std::uint64_t>(dests.count());
      }
    }
    step_once();
  }
  for (SlotTime extra = 0; fabric.pending_copies() > 0 && extra < drain_limit;
       ++extra)
    step_once();
  out.total_slots = now;
  return out;
}

/// Every (packet, external output) pair delivered at most once, and only
/// at an output the packet asked for.
inline void expect_exactly_once(const std::vector<Delivery>& deliveries) {
  std::map<std::pair<PacketId, PortId>, int> seen;
  for (const Delivery& d : deliveries) {
    const int count = ++seen[{d.packet, d.output}];
    EXPECT_EQ(count, 1) << "packet " << d.packet
                        << " delivered twice at external output "
                        << d.output;
  }
}

/// Per-flow FIFO along every route: for each (external input, external
/// output) pair, delivered original-arrival stamps never decrease.
inline void expect_flow_fifo(const std::vector<Delivery>& deliveries) {
  std::map<std::pair<PortId, PortId>, SlotTime> last;
  for (const Delivery& d : deliveries) {
    const auto key = std::make_pair(d.input, d.output);
    const auto it = last.find(key);
    if (it != last.end()) {
      EXPECT_GE(d.arrival, it->second)
          << "flow (" << d.input << " -> " << d.output
          << ") delivered out of order";
      if (d.arrival < it->second) return;  // one failure is enough detail
    }
    last[key] = d.arrival;
  }
}

/// Payload of every delivered copy matches the packet id's tag (the data
/// path, not just the bookkeeping, crossed the fabric intact).
inline void expect_payloads_intact(const std::vector<Delivery>& deliveries) {
  for (const Delivery& d : deliveries) {
    Packet probe;
    probe.id = d.packet;
    EXPECT_EQ(d.payload_tag, probe.payload_tag())
        << "payload corrupted for packet " << d.packet;
  }
}

}  // namespace fifoms::net::test
