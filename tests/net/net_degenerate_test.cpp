// Degenerate-topology differential tests: a NetworkFabric over the
// single(n) topology must be byte-identical to a bare VoqSwitch — same
// per-slot deliveries, same metrics, same RNG consumption.  This pins
// the fabric's composition seams (per-hop remapping, backpressure merge,
// flight bookkeeping) to "exactly nothing" when there is no network.
#include <gtest/gtest.h>

#include <memory>

#include "core/fifoms.hpp"
#include "net/network_fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/uniform_fanout.hpp"

namespace fifoms::net {
namespace {

constexpr int kPorts = 8;

std::unique_ptr<NetworkFabric> make_degenerate() {
  return std::make_unique<NetworkFabric>(
      Topology::single_switch(kPorts),
      [] { return std::make_unique<FifomsScheduler>(); });
}

std::unique_ptr<VoqSwitch> make_bare() {
  return std::make_unique<VoqSwitch>(kPorts,
                                     std::make_unique<FifomsScheduler>());
}

void expect_same_deliveries(const std::vector<Delivery>& a,
                            const std::vector<Delivery>& b, SlotTime slot) {
  ASSERT_EQ(a.size(), b.size()) << "delivery count diverged at slot " << slot;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].packet, b[i].packet) << "slot " << slot;
    EXPECT_EQ(a[i].input, b[i].input) << "slot " << slot;
    EXPECT_EQ(a[i].output, b[i].output) << "slot " << slot;
    EXPECT_EQ(a[i].arrival, b[i].arrival) << "slot " << slot;
    EXPECT_EQ(a[i].payload_tag, b[i].payload_tag) << "slot " << slot;
  }
}

// Same injections, same RNG stream: every slot's delivery list, every
// queue metric and the RNG cursor itself must match exactly.
TEST(NetDegenerate, SlotBySlotIdenticalToBareSwitch) {
  auto fabric = make_degenerate();
  auto bare = make_bare();
  BernoulliTraffic traffic_a(kPorts, 0.7, 0.4);
  BernoulliTraffic traffic_b(kPorts, 0.7, 0.4);
  Rng traffic_rng_a(derive_seed(11, 1, 0));
  Rng traffic_rng_b(derive_seed(11, 1, 0));
  Rng sched_rng_a(derive_seed(11, 2, 0));
  Rng sched_rng_b(derive_seed(11, 2, 0));
  traffic_a.reset(traffic_rng_a);
  traffic_b.reset(traffic_rng_b);
  SlotResult result_a;
  SlotResult result_b;
  PacketId next_id = 1;
  for (SlotTime now = 0; now < 2'000; ++now) {
    for (PortId input = 0; input < kPorts; ++input) {
      const PortSet dests_a = traffic_a.arrival(input, now, traffic_rng_a);
      const PortSet dests_b = traffic_b.arrival(input, now, traffic_rng_b);
      ASSERT_EQ(dests_a, dests_b);
      if (dests_a.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests_a;
      ASSERT_TRUE(fabric->inject(packet));
      ASSERT_TRUE(bare->inject(packet));
    }
    result_a.clear();
    result_b.clear();
    fabric->step(now, sched_rng_a, result_a);
    bare->step(now, sched_rng_b, result_b);
    expect_same_deliveries(result_a.deliveries, result_b.deliveries, now);
    ASSERT_EQ(result_a.rounds, result_b.rounds) << "slot " << now;
    ASSERT_EQ(result_a.matched_pairs, result_b.matched_pairs)
        << "slot " << now;
    ASSERT_EQ(fabric->total_buffered(), bare->total_buffered())
        << "slot " << now;
    for (PortId p = 0; p < kPorts; ++p)
      ASSERT_EQ(fabric->occupancy(p), bare->occupancy(p))
          << "slot " << now << " port " << p;
    // The fabric must consume the RNG exactly like the bare switch: any
    // extra draw would silently decorrelate every seeded experiment.
    ASSERT_EQ(sched_rng_a.next_u64(), sched_rng_b.next_u64())
        << "RNG cursor diverged at slot " << now;
  }
}

// Full Simulator pipeline: identical SimResult on both models.
TEST(NetDegenerate, SimulatorRunIsByteIdentical) {
  auto fabric = make_degenerate();
  auto bare = make_bare();
  UniformFanoutTraffic traffic_a(
      kPorts, UniformFanoutTraffic::p_for_load(0.75, 4), 4);
  UniformFanoutTraffic traffic_b(
      kPorts, UniformFanoutTraffic::p_for_load(0.75, 4), 4);
  SimConfig config;
  config.total_slots = 10'000;
  config.seed = 97;
  const SimResult a = Simulator(*fabric, traffic_a, config).run();
  const SimResult b = Simulator(*bare, traffic_b, config).run();
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.copies_offered, b.copies_offered);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.copies_delivered, b.copies_delivered);
  EXPECT_EQ(a.in_flight_at_end, b.in_flight_at_end);
  EXPECT_EQ(a.queue_max, b.queue_max);
  EXPECT_EQ(a.unstable, b.unstable);
  EXPECT_EQ(a.output_delay.count(), b.output_delay.count());
  EXPECT_DOUBLE_EQ(a.output_delay.mean(), b.output_delay.mean());
  EXPECT_DOUBLE_EQ(a.input_delay.mean(), b.input_delay.mean());
  EXPECT_DOUBLE_EQ(a.queue_mean.mean(), b.queue_mean.mean());
  EXPECT_DOUBLE_EQ(a.rounds_all.mean(), b.rounds_all.mean());
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_DOUBLE_EQ(a.output_delay_p99, b.output_delay_p99);
}

// The name advertises the composition; the external port surface matches.
TEST(NetDegenerate, SurfaceMatchesBareSwitch) {
  auto fabric = make_degenerate();
  auto bare = make_bare();
  EXPECT_EQ(fabric->num_inputs(), bare->num_inputs());
  EXPECT_EQ(fabric->num_outputs(), bare->num_outputs());
  EXPECT_EQ(fabric->occupancy_ports(), bare->occupancy_ports());
  EXPECT_EQ(fabric->name(), "net-FIFOMS/single/8");
  EXPECT_EQ(fabric->topology().kind(), TopologyKind::kSingle);
}

}  // namespace
}  // namespace fifoms::net
