// Resume equivalence across the multistage fabrics (docs/RECOVERY.md,
// docs/NETWORK.md): a NetworkFabric checkpoint captures every element's
// queues and scheduler, the relay queues, the in-flight table and the
// per-switch fault cursors — so restore + resume must be bit-identical
// to the straight run on BOTH topologies (clos3, fat-tree2), including
// checkpoints taken mid-network-fault-storm under both stranded-cell
// policies.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "core/fifoms.hpp"
#include "net/net_experiment.hpp"
#include "net/net_fault.hpp"
#include "net/network_fabric.hpp"
#include "sim/simulator.hpp"
#include "snapshot/observers.hpp"
#include "snapshot/snapshot.hpp"
#include "traffic/uniform_fanout.hpp"

namespace fifoms::net {
namespace {

using SwitchBuilder = std::function<std::unique_ptr<SwitchModel>()>;

constexpr SlotTime kSlots = 400;
constexpr std::uint64_t kSeed = 404;

SimConfig make_config(SlotTime slots) {
  SimConfig config;
  config.total_slots = slots;
  config.warmup_fraction = 0.25;
  config.seed = kSeed;
  return config;
}

std::unique_ptr<TrafficModel> fanout_traffic(int ports, int fanout,
                                             double load) {
  return std::make_unique<UniformFanoutTraffic>(
      ports, UniformFanoutTraffic::p_for_load(load, fanout), fanout);
}

struct RunOutput {
  SimResult result;
  std::uint64_t digest = 0;
  std::uint64_t forwarded = 0;  ///< copies that crossed an internal link
  std::uint64_t pauses = 0;     ///< backpressure events
};

RunOutput finish(Simulator& sim, const snapshot::DigestObserver& digest,
                 const SwitchModel& sw) {
  while (!sim.done()) sim.step();
  RunOutput out;
  out.result = sim.finalize();
  out.digest = digest.digest();
  if (const auto* fabric = dynamic_cast<const NetworkFabric*>(&sw)) {
    out.forwarded = fabric->forwarded_cells();
    out.pauses = fabric->pauses_applied();
  }
  return out;
}

void expect_equivalent(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.digest, b.digest) << "delivery-stream digests diverged";
  EXPECT_EQ(a.result.total_slots, b.result.total_slots);
  EXPECT_EQ(a.result.packets_offered, b.result.packets_offered);
  EXPECT_EQ(a.result.packets_delivered, b.result.packets_delivered);
  EXPECT_EQ(a.result.copies_offered, b.result.copies_offered);
  EXPECT_EQ(a.result.copies_delivered, b.result.copies_delivered);
  EXPECT_EQ(a.result.copies_purged, b.result.copies_purged);
  EXPECT_EQ(a.result.packets_suppressed, b.result.packets_suppressed);
  EXPECT_EQ(a.result.fault_events_applied, b.result.fault_events_applied);
  EXPECT_EQ(a.result.in_flight_at_end, b.result.in_flight_at_end);
  EXPECT_EQ(a.result.queue_max, b.result.queue_max);
  EXPECT_EQ(a.result.throughput, b.result.throughput);
  {
    const auto ra = a.result.output_delay.raw_state();
    const auto rb = b.result.output_delay.raw_state();
    EXPECT_EQ(ra.count, rb.count);
    EXPECT_EQ(ra.mean, rb.mean);
    EXPECT_EQ(ra.m2, rb.m2);
  }
  EXPECT_EQ(a.forwarded, b.forwarded);
  EXPECT_EQ(a.pauses, b.pauses);
}

/// Golden / saver / resumed triple on fresh fabric instances.  `arm`
/// runs after construction (e.g. attaches the net fault plan — clear()
/// keeps the plan, so attaching once before use is enough).
void check_net_resume(const SwitchBuilder& build,
                      const std::function<std::unique_ptr<TrafficModel>()>&
                          traffic_builder,
                      SlotTime slots, SlotTime k,
                      const NetFaultPlan* plan = nullptr) {
  const SimConfig config = make_config(slots);
  const auto arm = [&](SwitchModel& sw) {
    if (plan != nullptr)
      dynamic_cast<NetworkFabric&>(sw).set_net_fault_plan(plan);
  };

  auto golden_sw = build();
  arm(*golden_sw);
  auto golden_traffic = traffic_builder();
  snapshot::DigestObserver golden_digest;
  Simulator golden(*golden_sw, *golden_traffic, config);
  golden.set_observer(&golden_digest);
  golden.prepare();
  const RunOutput straight = finish(golden, golden_digest, *golden_sw);
  EXPECT_GT(straight.result.copies_delivered, 0u);

  auto saver_sw = build();
  arm(*saver_sw);
  auto saver_traffic = traffic_builder();
  snapshot::DigestObserver saver_digest;
  Simulator saver(*saver_sw, *saver_traffic, config);
  saver.set_observer(&saver_digest);
  saver.prepare();
  while (saver.now() < k) saver.step();
  snapshot::Writer writer;
  saver.save_state(writer);
  const std::vector<std::uint8_t> payload = writer.take();
  expect_equivalent(finish(saver, saver_digest, *saver_sw), straight);

  auto resumed_sw = build();
  arm(*resumed_sw);
  auto resumed_traffic = traffic_builder();
  snapshot::DigestObserver resumed_digest;
  Simulator resumed(*resumed_sw, *resumed_traffic, config);
  resumed.set_observer(&resumed_digest);
  snapshot::Reader reader(payload);
  resumed.load_state(reader);
  reader.expect_end();
  EXPECT_EQ(resumed.now(), k);
  expect_equivalent(finish(resumed, resumed_digest, *resumed_sw), straight);
}

TEST(NetResume, Clos3FabricRoundTrips) {
  const SwitchFactory factory = make_clos3_fifoms();
  check_net_resume([&] { return factory.make(16); },
                   [] { return fanout_traffic(16, 4, 0.5); }, kSlots,
                   /*k=*/160);
}

TEST(NetResume, FatTree2FabricRoundTrips) {
  const SwitchFactory factory = make_fat_tree2_fifoms();
  check_net_resume([&] { return factory.make(8); },
                   [] { return fanout_traffic(8, 2, 0.5); }, kSlots,
                   /*k=*/160);
}

TEST(NetResume, DegenerateSingleTopologyRoundTrips) {
  const SwitchFactory factory = make_single_net_fifoms();
  check_net_resume([&] { return factory.make(8); },
                   [] { return fanout_traffic(8, 2, 0.6); }, kSlots,
                   /*k=*/100);
}

TEST(NetResume, MidNetworkFaultStormBothPolicies) {
  const Topology topo = Topology::clos3(2);
  const NetFaultPlan storm =
      NetFaultPlan::net_fault_storm(topo, /*seed=*/13, /*slots=*/400);
  ASSERT_GT(storm.total_events(), 0u);
  for (const StrandedCellPolicy policy :
       {StrandedCellPolicy::kHold, StrandedCellPolicy::kPurge}) {
    SCOPED_TRACE(policy == StrandedCellPolicy::kHold ? "hold" : "purge");
    NetworkFabric::Options options;
    options.stranded_policy = policy;
    // Element auditors ride inside the checkpoint too (FIFOMS_AUDIT
    // builds): the resumed fabric re-audits from the restored ledger.
    options.audit_switches = true;
    const SwitchBuilder build = [&] {
      return std::make_unique<NetworkFabric>(
          topo, [] { return std::make_unique<FifomsScheduler>(); }, options);
    };
    check_net_resume(build,
                     [&] { return fanout_traffic(topo.num_external_inputs(),
                                                 2, 0.8); },
                     /*slots=*/400, /*k=*/180, &storm);
  }
}

TEST(NetResume, TightBackpressureStateSurvivesTheRoundTrip) {
  // A 1-cell link buffer forces pauses constantly; the paused masks are
  // recomputed per slot but the buffered occupancy driving them is
  // checkpointed state — pause counters must line up exactly.
  const Topology topo = Topology::clos3(2);
  NetworkFabric::Options options;
  options.link_buffer_capacity = 1;
  const SwitchBuilder build = [&] {
    return std::make_unique<NetworkFabric>(
        topo, [] { return std::make_unique<FifomsScheduler>(); }, options);
  };
  check_net_resume(build,
                   [&] { return fanout_traffic(topo.num_external_inputs(),
                                               2, 0.9); },
                   /*slots=*/300, /*k=*/120);
}

}  // namespace
}  // namespace fifoms::net
