// Wiring and routing unit tests for the Topology descriptor: shapes,
// link round-trips, input-pinned route selection, multicast-tree fanout
// expansion, and the partition property the purge accounting and the
// structural network audit rely on.
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fifoms::net {
namespace {

// A cell entering `sw` fans to hop_destinations(); the reachable sets of
// those hop outputs must partition the destinations the cell carried in.
void expect_partition(const Topology& topo, int sw, PortId in_port,
                      PortId ext_input, const PortSet& carried) {
  const PortSet hop = topo.hop_destinations(sw, in_port, ext_input, carried);
  ASSERT_FALSE(hop.empty());
  PortSet covered;
  for (PortId output : hop) {
    const PortSet share = topo.reachable_externals(sw, output, carried);
    EXPECT_FALSE(share.empty())
        << "hop output " << output << " of switch " << sw << " covers nothing";
    EXPECT_FALSE(covered.intersects(share))
        << "hop outputs of switch " << sw << " overlap";
    covered |= share;
  }
  EXPECT_EQ(covered, carried)
      << "hop outputs of switch " << sw << " do not cover the carried set";
}

PortSet random_dests(int num_external, Rng& rng) {
  PortSet dests;
  const int fanout = 1 + static_cast<int>(rng.next_below(
                             static_cast<std::uint32_t>(num_external)));
  while (dests.count() < fanout)
    dests.insert(static_cast<PortId>(
        rng.next_below(static_cast<std::uint32_t>(num_external))));
  return dests;
}

TEST(TopologySingle, Shape) {
  const Topology topo = Topology::single_switch(8);
  EXPECT_EQ(topo.kind(), TopologyKind::kSingle);
  EXPECT_EQ(topo.radix(), 8);
  EXPECT_EQ(topo.num_switches(), 1);
  EXPECT_EQ(topo.num_stages(), 1);
  EXPECT_EQ(topo.num_external_inputs(), 8);
  EXPECT_EQ(topo.num_external_outputs(), 8);
  EXPECT_EQ(topo.num_internal_links(), 0);
  EXPECT_EQ(topo.name(), "single/8");
  EXPECT_EQ(topo.stage_of(0), 0);
}

TEST(TopologySingle, WiringIsTheIdentity) {
  const Topology topo = Topology::single_switch(4);
  for (PortId p = 0; p < 4; ++p) {
    const LinkEnd in = topo.ingress_of(p);
    EXPECT_EQ(in.sw, 0);
    EXPECT_EQ(in.port, p);
    const OutPort& out = topo.out_port(0, p);
    EXPECT_TRUE(out.external);
    EXPECT_EQ(out.ext, p);
    EXPECT_EQ(out.link, -1);
  }
  const PortSet dests{0, 2, 3};
  EXPECT_EQ(topo.hop_destinations(0, 1, 1, dests), dests);
  EXPECT_EQ(topo.reachable_externals(0, 2, dests), PortSet::single(2));
}

TEST(TopologyClos3, Shape) {
  const Topology topo = Topology::clos3(4);
  EXPECT_EQ(topo.kind(), TopologyKind::kClos3);
  EXPECT_EQ(topo.radix(), 4);
  EXPECT_EQ(topo.num_switches(), 12);
  EXPECT_EQ(topo.num_stages(), 3);
  EXPECT_EQ(topo.num_external_inputs(), 16);
  EXPECT_EQ(topo.num_internal_links(), 32);  // k*k per stage pair
  EXPECT_EQ(topo.name(), "clos3/4");
  for (int sw = 0; sw < 12; ++sw) EXPECT_EQ(topo.stage_of(sw), sw / 4);
}

TEST(TopologyClos3, LinksRoundTrip) {
  const Topology topo = Topology::clos3(4);
  for (int link = 0; link < topo.num_internal_links(); ++link) {
    const auto [sw, output] = topo.link_source(link);
    const OutPort& out = topo.out_port(sw, output);
    EXPECT_FALSE(out.external);
    EXPECT_EQ(out.link, link);
    EXPECT_EQ(topo.stage_of(out.to.sw), topo.stage_of(sw) + 1)
        << "link " << link << " skips a stage";
    EXPECT_GE(out.to.port, 0);
    EXPECT_LT(out.to.port, topo.radix());
  }
  // Ingress g output j lands on middle k+j at input g; middle k+j output
  // e lands on egress 2k+e at input j; egress output o is external e*k+o.
  const OutPort& up = topo.out_port(1, 2);
  EXPECT_EQ(up.to.sw, 4 + 2);
  EXPECT_EQ(up.to.port, 1);
  const OutPort& down = topo.out_port(4 + 2, 3);
  EXPECT_EQ(down.to.sw, 8 + 3);
  EXPECT_EQ(down.to.port, 2);
  const OutPort& egress = topo.out_port(8 + 3, 1);
  EXPECT_TRUE(egress.external);
  EXPECT_EQ(egress.ext, 3 * 4 + 1);
}

TEST(TopologyClos3, RoutePinsMiddleSwitchByExternalInput) {
  const Topology topo = Topology::clos3(4);
  for (PortId ext = 0; ext < 16; ++ext) {
    const LinkEnd in = topo.ingress_of(ext);
    EXPECT_EQ(in.sw, ext / 4);
    EXPECT_EQ(in.port, ext % 4);
    // The ingress fanout is a single uplink chosen by the input alone,
    // whatever the destination set — that is what makes per-flow FIFO a
    // structural property.
    for (const PortSet& dests :
         {PortSet{0}, PortSet{15}, PortSet::all(16), PortSet{3, 7, 11}}) {
      EXPECT_EQ(topo.hop_destinations(in.sw, in.port, ext, dests),
                PortSet::single(ext % 4));
    }
  }
}

TEST(TopologyClos3, MulticastTreeExpandsLate) {
  const Topology topo = Topology::clos3(4);
  const PortSet dests{0, 7, 13};  // egress switches 0, 1 and 3
  const PortId ext = 5;           // ingress 1, pinned middle 4 + 1
  EXPECT_EQ(topo.hop_destinations(1, 1, ext, dests), PortSet::single(1));
  EXPECT_EQ(topo.hop_destinations(5, 1, ext, dests), (PortSet{0, 1, 3}));
  EXPECT_EQ(topo.hop_destinations(8, 1, ext, dests), PortSet::single(0));
  EXPECT_EQ(topo.hop_destinations(9, 1, ext, dests), PortSet::single(3));
  EXPECT_EQ(topo.hop_destinations(11, 1, ext, dests), PortSet::single(1));
}

TEST(TopologyClos3, ReachableSetsPartitionEveryHop) {
  const Topology topo = Topology::clos3(4);
  Rng rng(0xC105'1234);
  for (int trial = 0; trial < 200; ++trial) {
    const PortId ext = static_cast<PortId>(rng.next_below(16));
    const PortSet dests = random_dests(16, rng);
    const LinkEnd in = topo.ingress_of(ext);
    expect_partition(topo, in.sw, in.port, ext, dests);
    // The middle switch carries the full set; each egress carries its own
    // share.
    expect_partition(topo, 4 + ext % 4, in.sw, ext, dests);
    for (int e = 0; e < 4; ++e) {
      PortSet share;
      for (PortId d : dests)
        if (d / 4 == e) share.insert(d);
      if (share.empty()) continue;
      expect_partition(topo, 8 + e, ext % 4, ext, share);
    }
  }
}

TEST(TopologyFatTree, Shape) {
  const Topology topo = Topology::fat_tree2(4);
  EXPECT_EQ(topo.kind(), TopologyKind::kFatTree2);
  EXPECT_EQ(topo.radix(), 4);
  EXPECT_EQ(topo.num_switches(), 6);  // 4 leaves + 2 spines
  EXPECT_EQ(topo.num_stages(), 2);
  EXPECT_EQ(topo.num_external_inputs(), 8);
  EXPECT_EQ(topo.num_internal_links(), 16);  // k*h up + h*k down
  EXPECT_EQ(topo.name(), "fat-tree2/4");
  for (int leaf = 0; leaf < 4; ++leaf) EXPECT_EQ(topo.stage_of(leaf), 0);
  EXPECT_EQ(topo.stage_of(4), 1);
  EXPECT_EQ(topo.stage_of(5), 1);
}

TEST(TopologyFatTree, FoldedWiringRoundTrips) {
  const Topology topo = Topology::fat_tree2(4);
  // Leaf L uplink h+s reaches spine k+s at input L, and the spine's
  // output L is the folded wire back to leaf L at input h+s.
  for (int leaf = 0; leaf < 4; ++leaf) {
    for (int s = 0; s < 2; ++s) {
      const OutPort& up = topo.out_port(leaf, 2 + s);
      EXPECT_FALSE(up.external);
      EXPECT_EQ(up.to.sw, 4 + s);
      EXPECT_EQ(up.to.port, leaf);
      const OutPort& down = topo.out_port(4 + s, leaf);
      EXPECT_FALSE(down.external);
      EXPECT_EQ(down.to.sw, leaf);
      EXPECT_EQ(down.to.port, 2 + s);
    }
    for (PortId o = 0; o < 2; ++o) {
      const OutPort& out = topo.out_port(leaf, o);
      EXPECT_TRUE(out.external);
      EXPECT_EQ(out.ext, leaf * 2 + o);
    }
  }
}

TEST(TopologyFatTree, LocalTrafficHairpinsWithoutUplink) {
  const Topology topo = Topology::fat_tree2(4);
  // Input 0 (leaf 0, port 0) to outputs {0, 1} — both local to leaf 0.
  const PortSet local{0, 1};
  EXPECT_EQ(topo.hop_destinations(0, 0, 0, local), (PortSet{0, 1}));
  // A mixed set adds exactly the flow's pinned uplink (h + ext % h).
  const PortSet mixed{1, 6};
  EXPECT_EQ(topo.hop_destinations(0, 0, 0, mixed), (PortSet{1, 2}));
  EXPECT_EQ(topo.reachable_externals(0, 1, mixed), PortSet::single(1));
  EXPECT_EQ(topo.reachable_externals(0, 2, mixed), PortSet::single(6));
}

TEST(TopologyFatTree, RemoteRouteTakesLeafSpineLeaf) {
  const Topology topo = Topology::fat_tree2(4);
  const PortId ext = 1;    // leaf 0 port 1, pinned spine 4 + 1
  const PortSet dests{5};  // leaf 2 port 1
  EXPECT_EQ(topo.hop_destinations(0, 1, ext, dests), PortSet::single(3));
  EXPECT_EQ(topo.out_port(0, 3).to.sw, 5);
  EXPECT_EQ(topo.hop_destinations(5, 0, ext, dests), PortSet::single(2));
  // Back at leaf 2 through the folded input (>= h): local fanout only —
  // no second uplink, so a copy can never loop between levels.
  EXPECT_EQ(topo.hop_destinations(2, 3, ext, dests), PortSet::single(1));
  EXPECT_EQ(topo.out_port(2, 1).ext, 5);
}

TEST(TopologyFatTree, SpineNeverEchoesTheSourceLeaf) {
  const Topology topo = Topology::fat_tree2(4);
  // Input 0 (leaf 0) multicasts to {1, 5, 7}: destination 1 is local to
  // leaf 0 and is served on the hairpin, so the spine hop — fed the FULL
  // original set — must fan only to leaves 2 and 3, never back to leaf 0.
  const PortSet mixed{1, 5, 7};
  EXPECT_EQ(topo.hop_destinations(4, 0, 0, mixed), (PortSet{2, 3}));
  // Purely-remote sets are unaffected by the exclusion.
  EXPECT_EQ(topo.hop_destinations(4, 0, 0, PortSet{5, 7}), (PortSet{2, 3}));
}

TEST(TopologyFatTree, ReachableSetsPartitionEveryHop) {
  const Topology topo = Topology::fat_tree2(4);
  Rng rng(0xFA7'7EE);
  for (int trial = 0; trial < 200; ++trial) {
    const PortId ext = static_cast<PortId>(rng.next_below(8));
    const PortSet dests = random_dests(8, rng);
    const LinkEnd in = topo.ingress_of(ext);
    expect_partition(topo, in.sw, in.port, ext, dests);
    PortSet remote;
    for (PortId d : dests)
      if (d / 2 != in.sw) remote.insert(d);
    if (remote.empty()) continue;
    // The pinned spine carries the remote share; each remote leaf then
    // carries its local slice through the folded input.
    expect_partition(topo, 4 + ext % 2, in.sw, ext, remote);
    for (int leaf = 0; leaf < 4; ++leaf) {
      if (leaf == in.sw) continue;
      PortSet share;
      for (PortId d : remote)
        if (d / 2 == leaf) share.insert(d);
      if (share.empty()) continue;
      expect_partition(topo, leaf, 2 + ext % 2, ext, share);
    }
  }
}

TEST(TopologyTest, KindNamesAreStable) {
  EXPECT_STREQ(topology_kind_name(TopologyKind::kSingle), "single");
  EXPECT_STREQ(topology_kind_name(TopologyKind::kClos3), "clos3");
  EXPECT_STREQ(topology_kind_name(TopologyKind::kFatTree2), "fat-tree2");
}

TEST(TopologyTest, MaximumClosFitsThePortSetCapacity) {
  const Topology topo = Topology::clos3(16);
  EXPECT_EQ(topo.num_external_inputs(), 256);
  EXPECT_EQ(topo.num_switches(), 48);
  EXPECT_EQ(topo.num_internal_links(), 512);
}

}  // namespace
}  // namespace fifoms::net
