// Negative tests for the network auditor: every network invariant has a
// mutant that violates it, and the auditor must kill each one with its
// slot-stamped diagnostic.  The mutants live behind NetworkFabric
// options (a link that drops, a link that reorders, elements that ignore
// fault masks, a fabric that never backpressures) so the corruption
// happens inside the real data path, not in a scripted stand-in.
#include <gtest/gtest.h>

#include "core/fifoms.hpp"
#include "net/net_auditor.hpp"
#include "net/net_fault.hpp"
#include "net/network_fabric.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms::net {
namespace {

NetworkFabric::SchedulerFactory fifoms_elements() {
  return [] { return std::make_unique<FifomsScheduler>(); };
}

// Drive `fabric` with seeded Bernoulli traffic under an armed network
// auditor; returns only if no invariant fired.
void drive_audited(NetworkFabric& fabric, SlotTime slots,
                   const NetFaultPlan* plan = nullptr, double p = 0.8,
                   double b = 0.5) {
  NetworkAuditor auditor;
  fabric.set_observer(&auditor);
  if (plan != nullptr) fabric.set_net_fault_plan(plan);
  BernoulliTraffic traffic(fabric.num_inputs(), p, b);
  Rng traffic_rng(derive_seed(13, 1, 0));
  Rng sched_rng(derive_seed(13, 2, 0));
  traffic.reset(traffic_rng);
  SlotResult result;
  PacketId next_id = 1;
  for (SlotTime now = 0; now < slots; ++now) {
    for (PortId input = 0; input < fabric.num_inputs(); ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      fabric.inject(packet);
    }
    result.clear();
    fabric.step(now, sched_rng, result);
  }
}

class NetAuditorNegativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!NetworkAuditor::enabled())
      GTEST_SKIP() << "FIFOMS_AUDIT compiled out in this build";
  }
};

TEST_F(NetAuditorNegativeTest, DroppingLinkDiesOnConservation) {
  NetworkFabric fabric(Topology::clos3(2), fifoms_elements(),
                       NetworkFabric::Options{.mutant_drop_every = 5});
  EXPECT_DEATH(drive_audited(fabric, 400), "network conservation broken");
}

TEST_F(NetAuditorNegativeTest, ReorderingLinkDiesOnPerFlowFifo) {
  NetworkFabric fabric(Topology::clos3(2), fifoms_elements(),
                       NetworkFabric::Options{.mutant_reorder_every = 3});
  EXPECT_DEATH(drive_audited(fabric, 600),
               "per-flow FIFO order violated on route");
}

TEST_F(NetAuditorNegativeTest, IgnoringFaultMasksDiesOnFailedLinkForward) {
  NetworkFabric fabric(
      Topology::clos3(2), fifoms_elements(),
      NetworkFabric::Options{.mutant_skip_fault_masking = true});
  // Hold one ingress uplink down for a long window: the mutant elements
  // keep granting it, and the first copy across the dead wire must die.
  const NetFaultPlan plan(
      {{.sw = 0,
        .event = {.slot = 20, .kind = fault::FaultKind::kOutputDown,
                  .port = 0}},
       {.sw = 0,
        .event = {.slot = 500, .kind = fault::FaultKind::kOutputUp,
                  .port = 0}}},
      fabric.topology());
  EXPECT_DEATH(drive_audited(fabric, 400, &plan),
               "forwarded on failed inter-stage link");
}

TEST_F(NetAuditorNegativeTest, SkippingBackpressureDiesOnBufferBound) {
  NetworkFabric fabric(
      Topology::clos3(2), fifoms_elements(),
      NetworkFabric::Options{.link_buffer_capacity = 1,
                             .mutant_skip_backpressure = true});
  EXPECT_DEATH(drive_audited(fabric, 400, nullptr, /*p=*/1.0, /*b=*/0.75),
               "inter-stage buffer over capacity at switch");
}

// The same configurations without their mutants must run clean under the
// armed auditor — the checks have teeth, not hair triggers.
TEST_F(NetAuditorNegativeTest, CleanConfigurationsSurviveTheAuditor) {
  {
    NetworkFabric fabric(Topology::clos3(2), fifoms_elements());
    drive_audited(fabric, 400);
  }
  {
    NetworkFabric fabric(
        Topology::clos3(2), fifoms_elements(),
        NetworkFabric::Options{.link_buffer_capacity = 1});
    drive_audited(fabric, 400, nullptr, /*p=*/1.0, /*b=*/0.75);
  }
  {
    NetworkFabric fabric(Topology::clos3(2), fifoms_elements());
    const NetFaultPlan plan(
        {{.sw = 0,
          .event = {.slot = 20, .kind = fault::FaultKind::kOutputDown,
                    .port = 0}},
         {.sw = 0,
          .event = {.slot = 300, .kind = fault::FaultKind::kOutputUp,
                    .port = 0}}},
        fabric.topology());
    drive_audited(fabric, 400, &plan);
  }
  SUCCEED();
}

}  // namespace
}  // namespace fifoms::net
