#!/usr/bin/env python3
"""SIGKILL kill-test for the checkpointed soak harness (docs/RECOVERY.md).

Protocol:
  1. Golden: run `fifoms_soak --quick --checkpoint-every N` uninterrupted
     and record its DIGEST lines (one FNV-1a fold per scenario run).
  2. Kill cycle: in a fresh checkpoint directory, start the same soak and
     SIGKILL it the moment a chosen number of CHECKPOINT lines have been
     flushed -- the process dies mid-epoch with checkpoints on disk.
     Repeat with --resume, killing again at later marks, then let the
     final resume run to completion.
  3. Assert the surviving transcript's DIGEST set equals the golden run's
     exactly: a resumed run converged to the uninterrupted behaviour.
  4. Torn-file variant: after a kill, truncate the newest .ckpt to half
     its bytes.  The resume must report the rejected file on stderr, fall
     back to the previous good checkpoint, and still converge.

Usage: recovery_kill_test.py <path-to-fifoms_soak>
"""

import os
import pathlib
import shutil
import subprocess
import sys
import tempfile

CHECKPOINT_EVERY = "250"
RUN_TIMEOUT_S = 300


def soak_cmd(soak, ckpt_dir, resume=False):
    cmd = [soak, "--quick", "--checkpoint-every", CHECKPOINT_EVERY,
           "--checkpoint-dir", str(ckpt_dir)]
    if resume:
        cmd.append("--resume")
    return cmd


def digest_lines(text):
    return sorted(line for line in text.splitlines()
                  if line.startswith("DIGEST "))


def fail(message):
    print("FAIL: " + message)
    sys.exit(1)


def run_to_completion(cmd):
    result = subprocess.run(cmd, capture_output=True, text=True,
                            timeout=RUN_TIMEOUT_S)
    if result.returncode != 0:
        fail("soak exited %d\nstdout:\n%s\nstderr:\n%s"
             % (result.returncode, result.stdout, result.stderr))
    return result


def kill_after_checkpoints(cmd, marks):
    """Start the soak and SIGKILL it once `marks` CHECKPOINT lines have
    been flushed.  Returns True if the kill landed mid-run (the process
    can legitimately finish first when `marks` overshoots the horizon)."""
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, text=True)
    seen = 0
    killed = False
    try:
        for line in proc.stdout:
            if line.startswith("CHECKPOINT "):
                seen += 1
                if seen >= marks:
                    proc.kill()
                    killed = True
                    break
    finally:
        proc.stdout.close()
        proc.wait(timeout=RUN_TIMEOUT_S)
    if killed and proc.returncode == 0:
        fail("process exited cleanly despite SIGKILL")
    return killed


def newest_checkpoint(ckpt_dir):
    ckpts = sorted(pathlib.Path(ckpt_dir).glob("*.ckpt"),
                   key=lambda p: int(p.name.split(".")[-2]))
    return ckpts[-1] if ckpts else None


def main():
    if len(sys.argv) != 2:
        fail("usage: recovery_kill_test.py <path-to-fifoms_soak>")
    soak = sys.argv[1]
    tmp = tempfile.mkdtemp(prefix="fifoms_kill_test_")
    try:
        # -- 1. Golden transcript -------------------------------------
        golden_dir = os.path.join(tmp, "golden")
        golden = digest_lines(
            run_to_completion(soak_cmd(soak, golden_dir)).stdout)
        if len(golden) != 6:  # 3 scenarios x {hold, purge}
            fail("golden run produced %d DIGEST lines, expected 6" %
                 len(golden))

        # -- 2. Kill / resume cycle -----------------------------------
        kill_dir = os.path.join(tmp, "killed")
        if not kill_after_checkpoints(soak_cmd(soak, kill_dir), marks=2):
            fail("first kill never landed: no second checkpoint appeared")
        # Kill again mid-resume at a later mark, then finish for real.
        kill_after_checkpoints(soak_cmd(soak, kill_dir, resume=True),
                               marks=4)
        final = run_to_completion(soak_cmd(soak, kill_dir, resume=True))
        if digest_lines(final.stdout) != golden:
            fail("resumed digests diverged from golden\nresumed:\n%s\n"
                 "golden:\n%s" % ("\n".join(digest_lines(final.stdout)),
                                  "\n".join(golden)))
        if not any(line.startswith(("RESUMED ", "RUN-DONE"))
                   for line in final.stdout.splitlines()):
            fail("final transcript shows neither a resume nor a run")
        print("kill/resume cycle converged to the golden digests")

        # -- 3. Torn-file variant -------------------------------------
        torn_dir = os.path.join(tmp, "torn")
        if not kill_after_checkpoints(soak_cmd(soak, torn_dir), marks=2):
            fail("torn-variant kill never landed")
        newest = newest_checkpoint(torn_dir)
        if newest is None:
            fail("no checkpoint survived the kill")
        data = newest.read_bytes()
        newest.write_bytes(data[:len(data) // 2])  # tear it

        final = run_to_completion(soak_cmd(soak, torn_dir, resume=True))
        if digest_lines(final.stdout) != golden:
            fail("torn-file resume diverged from golden")
        if "checkpoint rejected" not in final.stderr:
            fail("torn checkpoint was not reported as rejected; stderr:\n%s"
                 % final.stderr)
        print("torn-checkpoint resume fell back and converged")
        print("PASS")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    main()
