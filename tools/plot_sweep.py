#!/usr/bin/env python3
"""Plot the CSVs written by the fifoms benches as paper-style figures.

Usage:
    python3 tools/plot_sweep.py fig4_bernoulli.csv [-o fig4.png]

Produces a 2x2 panel (the paper's layout): average input-oriented delay,
average output-oriented delay, average queue size, maximum queue size —
one line per algorithm, unstable points omitted (the curves simply stop,
as in the paper).  Requires matplotlib; the C++ toolchain never depends
on this script.
"""

import argparse
import csv
import sys
from collections import defaultdict


def load(path):
    series = defaultdict(lambda: defaultdict(list))
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            algo = row["algorithm"]
            unstable = int(row.get("unstable", 0) or 0)
            reps = int(row.get("replications", 1) or 1)
            if unstable >= reps:  # fully unstable point: cut the curve
                continue
            series[algo]["load"].append(float(row["load"]))
            for key in ("input_delay", "output_delay", "queue_mean",
                        "queue_max"):
                series[algo][key].append(float(row[key]))
    return series


PANELS = [
    ("input_delay", "avg input-oriented delay (slots)"),
    ("output_delay", "avg output-oriented delay (slots)"),
    ("queue_mean", "avg queue size (cells/port)"),
    ("queue_max", "max queue size (cells)"),
]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv", help="sweep CSV written by a bench binary")
    parser.add_argument("-o", "--output", default=None,
                        help="output image (default: <csv>.png)")
    parser.add_argument("--log", action="store_true",
                        help="log-scale the y axes")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    series = load(args.csv)
    if not series:
        sys.exit(f"no stable points found in {args.csv}")

    fig, axes = plt.subplots(2, 2, figsize=(10, 8))
    for ax, (key, title) in zip(axes.flat, PANELS):
        for algo, data in series.items():
            ax.plot(data["load"], data[key], marker="o", markersize=3,
                    label=algo)
        ax.set_xlabel("effective load")
        ax.set_ylabel(title)
        if args.log:
            ax.set_yscale("log")
        ax.grid(True, alpha=0.3)
    axes.flat[0].legend(fontsize=8)
    fig.suptitle(args.csv)
    fig.tight_layout()

    out = args.output or args.csv.rsplit(".", 1)[0] + ".png"
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
