#!/usr/bin/env python3
"""Project-rule lint for the FIFOMS codebase.

A deliberately small AST-grep-style checker for rules that neither the
compiler nor clang-tidy enforces:

  no-raw-rand
      The simulator's determinism contract (see DESIGN.md and
      common/rng.hpp) requires every random draw to flow through the
      seeded Rng streams.  Raw `rand()`, `srand()`, `std::random_device`
      and `std::random_shuffle` break run reproducibility, so they are
      banned in src/, bench/ and examples/.

  no-unordered-in-decision-path
      Scheduler decision code (src/sched/, src/core/) must not iterate
      hash containers: their iteration order is implementation-defined,
      which silently turns "the same matching on every platform" into
      "a different matching per libstdc++ version".  Use std::map,
      sorted vectors, or index loops.

  audit-panic-slot
      Every diagnostic raised by the runtime invariant auditor
      (src/analysis/auditor.cpp) must name the slot it fired in:
      violations are only actionable if they can be replayed up to an
      exact slot.  Concretely: all failures must go through
      FIFOMS_AUDIT_FAIL(now, ...) — whose expansion stamps the slot —
      and direct panic()/FIFOMS_ASSERT() calls are forbidden there.

  verify-panic-state-hash
      The bounded exhaustive verifier (src/verify/) reports failures in
      terms of canonical state hashes — that hash is the key a user needs
      to replay the offending state, so every panic raised there must
      carry one.  Concretely: all failures must go through
      FIFOMS_VERIFY_FAIL(<hash>, ...) / FIFOMS_VERIFY_CHECK(cond, <hash>,
      ...) where the hash argument mentions `hash` (a `state_hash` local
      or a direct `.hash()` call), and direct panic()/FIFOMS_ASSERT()
      calls are forbidden in src/verify/.

  no-abort-in-fault-path
      The fault subsystem (src/fault/) exists so the hardened sweep
      engine can quarantine a failing cell and keep the rest of the
      grid.  That only works if every failure there is a catchable
      exception (FaultError): abort()/exit()/std::terminate/panic()/
      FIFOMS_ASSERT would take the whole sweep down with the cell, so
      they are banned in src/fault/.

  no-float-in-decision-path
      Scheduler decision code (src/sched/, src/core/, src/hw/) must not
      use float/double: floating-point comparison makes grant decisions
      depend on compiler flags (-ffast-math, x87 excess precision) and
      platform rounding, breaking the bit-exact hw/sw equivalence the
      verifier proves.  Ages, fanouts and time stamps are integers;
      integer weights lose nothing.

  no-raw-fwrite-in-snapshot-path
      Checkpoint durability (docs/RECOVERY.md) hinges on one write
      protocol: tmp file + fflush + fsync + rename, implemented once in
      src/snapshot/snapshot_io.cpp (write_file_atomic/read_file).  A raw
      fopen/fwrite/fstream anywhere else in src/snapshot/ can leave a
      torn checkpoint that the CRC catches only after the previous good
      one was pruned, so all other snapshot sources are banned from
      direct file IO.

  no-per-port-loop-in-kernel  (retired)
      The textual ban on `for (PortId p = ...)` in `fifoms-lint:
      kernel-file` sources is superseded by the semantic analyzer's
      hot-path-no-port-loop rule (tools/analyzer/), which follows the
      call graph from tagged hot-path roots instead of trusting a
      per-file marker.  The rule name stays registered so existing
      allow() comments and `kernel-file` markers keep parsing, but the
      check itself no longer reports anything.

  unknown-suppression
      `fifoms-lint: allow(<rule>)` naming a rule that does not exist is
      itself a finding: a typo would otherwise silently disable nothing
      while looking authoritative.  This rule cannot be suppressed.

Suppress a finding (sparingly) with a same-line comment (the
no-per-port-loop-in-kernel rule also accepts it on the preceding line):
    // fifoms-lint: allow(<rule-name>)

Usage:
    tools/lint.py [--root DIR]     # scan the repo, exit 1 on findings
    tools/lint.py --self-test      # run the checker's own unit checks
    tools/lint.py --list-rules
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

CPP_EXTENSIONS = (".cpp", ".hpp", ".cc", ".h")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_noise(line: str) -> str:
    """Remove string literals and // comments (rough but sufficient)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//", 1)[0]


def suppressed(raw_line: str, rule: str) -> bool:
    return f"fifoms-lint: allow({rule})" in raw_line


RAW_RAND = re.compile(
    r"\b(?:std::)?(?:rand|srand)\s*\(|\bstd::random_shuffle\b"
    r"|\bstd::random_device\b"
)
UNORDERED = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")
AUDIT_FAIL_CALL = re.compile(r"\bFIFOMS_AUDIT_FAIL\s*\(\s*([A-Za-z_]\w*)")
DIRECT_PANIC = re.compile(r"\bpanic\s*\(|\bFIFOMS_D?ASSERT\s*\(")


def check_no_raw_rand(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith(("src/", "bench/", "examples/")):
        return []
    findings = []
    for i, raw in enumerate(lines, start=1):
        if suppressed(raw, "no-raw-rand"):
            continue
        if RAW_RAND.search(strip_noise(raw)):
            findings.append(
                Finding(rel, i, "no-raw-rand",
                        "raw C randomness breaks run determinism; "
                        "draw from a seeded fifoms::Rng stream instead"))
    return findings


# Decision-path code: scheduler sources plus the scratch-arena and
# thread-pool infrastructure they allocate and run on (a hash container
# there would feed nondeterministic order straight into arbitration).
DECISION_PATH_PREFIXES = (
    "src/sched/",
    "src/core/",
    "src/common/scratch_arena",
    "src/common/thread_pool",
)


def check_no_unordered(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith(DECISION_PATH_PREFIXES):
        return []
    findings = []
    for i, raw in enumerate(lines, start=1):
        if suppressed(raw, "no-unordered-in-decision-path"):
            continue
        if UNORDERED.search(strip_noise(raw)):
            findings.append(
                Finding(rel, i, "no-unordered-in-decision-path",
                        "hash-container iteration order is nondeterministic; "
                        "scheduler decisions must use ordered containers"))
    return findings


def check_audit_panic_slot(rel: str, lines: list[str]) -> list[Finding]:
    if rel != "src/analysis/auditor.cpp":
        return []
    findings = []
    in_define = False
    for i, raw in enumerate(lines, start=1):
        stripped = raw.lstrip()
        # Lines belonging to a macro definition are the one place the raw
        # panic() call legitimately lives.
        this_is_define = in_define or stripped.startswith("#define")
        in_define = raw.rstrip().endswith("\\") and this_is_define

        code = strip_noise(raw)
        call = AUDIT_FAIL_CALL.search(code)
        if call and not suppressed(raw, "audit-panic-slot"):
            if call.group(1) != "now":
                findings.append(
                    Finding(rel, i, "audit-panic-slot",
                            "FIFOMS_AUDIT_FAIL must receive the current "
                            "slot (`now`) as its first argument"))
        if this_is_define:
            continue
        if DIRECT_PANIC.search(code) and not suppressed(raw,
                                                        "audit-panic-slot"):
            findings.append(
                Finding(rel, i, "audit-panic-slot",
                        "auditor diagnostics must go through "
                        "FIFOMS_AUDIT_FAIL(now, ...) so every message "
                        "carries the slot number"))
    return findings


FAULT_ABORT = re.compile(
    r"\b(?:std::)?(?:abort|exit|_Exit|quick_exit|terminate)\s*\("
    r"|\bpanic\s*\(|\bFIFOMS_D?ASSERT\s*\("
)


def check_no_abort_in_fault_path(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith("src/fault/"):
        return []
    findings = []
    for i, raw in enumerate(lines, start=1):
        if suppressed(raw, "no-abort-in-fault-path"):
            continue
        if FAULT_ABORT.search(strip_noise(raw)):
            findings.append(
                Finding(rel, i, "no-abort-in-fault-path",
                        "fault-path failures must throw FaultError so the "
                        "sweep engine can quarantine the cell; aborting "
                        "kills the whole grid"))
    return findings


VERIFY_MACRO = re.compile(r"\bFIFOMS_VERIFY_(FAIL|CHECK)\s*\(")
FLOAT_TYPE = re.compile(r"\b(?:float|double|long\s+double)\b")


def split_macro_args(text: str, start: int) -> list[str] | None:
    """Split the balanced-paren argument list opening at text[start] == '('
    into top-level arguments.  Returns None when the call never closes
    (malformed source)."""
    depth = 0
    args: list[str] = []
    current: list[str] = []
    for ch in text[start:]:
        if ch == "(":
            depth += 1
            if depth == 1:
                continue
        elif ch == ")":
            depth -= 1
            if depth == 0:
                args.append("".join(current).strip())
                return args
        elif ch == "," and depth == 1:
            args.append("".join(current).strip())
            current = []
            continue
        current.append(ch)
    return None


def check_verify_panic_state_hash(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith("src/verify/"):
        return []
    findings = []

    # Pass 1 (whole-text): every FIFOMS_VERIFY_FAIL/CHECK call — which may
    # span lines — must pass a canonical state hash in the hash slot
    # (argument 1 of FAIL, argument 2 of CHECK).
    text = "\n".join(strip_noise(line) for line in lines)
    for call in VERIFY_MACRO.finditer(text):
        line_no = text.count("\n", 0, call.start()) + 1
        if suppressed(lines[line_no - 1], "verify-panic-state-hash"):
            continue
        if lines[line_no - 1].lstrip().startswith("#define"):
            continue  # the macro's own definition
        args = split_macro_args(text, call.end() - 1)
        hash_index = 0 if call.group(1) == "FAIL" else 1
        hash_arg = args[hash_index] if args and len(args) > hash_index else ""
        if "hash" not in hash_arg:
            findings.append(
                Finding(rel, line_no, "verify-panic-state-hash",
                        f"FIFOMS_VERIFY_{call.group(1)} must receive a "
                        "canonical state hash (a `state_hash` local or a "
                        f"`.hash()` call), got `{hash_arg}`"))

    # Pass 2 (per line): raw panic()/FIFOMS_ASSERT() bypasses the hash
    # prefix entirely.
    in_define = False
    for i, raw in enumerate(lines, start=1):
        this_is_define = in_define or raw.lstrip().startswith("#define")
        in_define = raw.rstrip().endswith("\\") and this_is_define
        if this_is_define:
            continue
        if suppressed(raw, "verify-panic-state-hash"):
            continue
        if DIRECT_PANIC.search(strip_noise(raw)):
            findings.append(
                Finding(rel, i, "verify-panic-state-hash",
                        "verifier failures must go through "
                        "FIFOMS_VERIFY_FAIL/CHECK so every message carries "
                        "the canonical state hash"))
    findings.sort(key=lambda f: f.line)
    return findings


def check_no_float_in_decision_path(rel: str,
                                    lines: list[str]) -> list[Finding]:
    if not rel.startswith(("src/sched/", "src/core/", "src/hw/")):
        return []
    findings = []
    for i, raw in enumerate(lines, start=1):
        if suppressed(raw, "no-float-in-decision-path"):
            continue
        if FLOAT_TYPE.search(strip_noise(raw)):
            findings.append(
                Finding(rel, i, "no-float-in-decision-path",
                        "float/double comparison makes scheduler decisions "
                        "platform-dependent; use integer weights"))
    return findings


SNAPSHOT_IO_FILE = "src/snapshot/snapshot_io.cpp"
SNAPSHOT_RAW_IO = re.compile(
    r"\b(?:std::)?(?:fopen|freopen|fwrite|fread|fprintf|fputs|fputc)\s*\("
    r"|\b(?:std::)?(?:basic_)?[oi]?fstream\b"
)


def check_no_raw_fwrite_in_snapshot_path(rel: str,
                                         lines: list[str]) -> list[Finding]:
    if not rel.startswith("src/snapshot/") or rel == SNAPSHOT_IO_FILE:
        return []
    findings = []
    for i, raw in enumerate(lines, start=1):
        if suppressed(raw, "no-raw-fwrite-in-snapshot-path"):
            continue
        if SNAPSHOT_RAW_IO.search(strip_noise(raw)):
            findings.append(
                Finding(rel, i, "no-raw-fwrite-in-snapshot-path",
                        "snapshot files must be written through "
                        "snapshot_io.cpp's write_file_atomic "
                        "(tmp+fsync+rename); raw file IO can tear a "
                        "checkpoint"))
    return findings


KERNEL_FILE_MARKER = "fifoms-lint: kernel-file"


def check_no_per_port_loop_in_kernel(rel: str,
                                     lines: list[str]) -> list[Finding]:
    # Deprecation shim.  The textual rule is retired: the semantic
    # analyzer's hot-path-no-port-loop (tools/analyzer/rules.py) covers
    # every per-port loop reachable from a tagged hot-path root, marker
    # or not, with a witness call chain.  The shim keeps the rule name
    # alive so `allow(no-per-port-loop-in-kernel)` comments and
    # `kernel-file` markers in existing sources parse cleanly instead of
    # tripping unknown-suppression.
    del rel, lines
    return []


LINT_ALLOW = re.compile(r"fifoms-lint:\s*allow\(\s*([\w.-]*)\s*\)")


def check_unknown_suppression(rel: str, lines: list[str]) -> list[Finding]:
    # A typo in an allow() silently disables nothing while looking
    # authoritative, so naming a rule that does not exist is itself a
    # finding.  This rule cannot be suppressed.
    findings = []
    for i, raw in enumerate(lines, start=1):
        for m in LINT_ALLOW.finditer(raw):
            rule = m.group(1)
            if rule not in RULES or rule == "unknown-suppression":
                findings.append(
                    Finding(rel, i, "unknown-suppression",
                            f"allow({rule}) names no lint rule; see "
                            "--list-rules"))
    return findings


CHECKS = [check_no_raw_rand, check_no_unordered, check_audit_panic_slot,
          check_no_abort_in_fault_path, check_verify_panic_state_hash,
          check_no_float_in_decision_path,
          check_no_raw_fwrite_in_snapshot_path,
          check_no_per_port_loop_in_kernel, check_unknown_suppression]
RULES = {
    "no-raw-rand": "ban rand()/srand()/random_device/random_shuffle",
    "no-unordered-in-decision-path":
        "ban hash containers in src/sched/ and src/core/",
    "audit-panic-slot":
        "auditor panics must carry the slot number via FIFOMS_AUDIT_FAIL",
    "no-abort-in-fault-path":
        "src/fault/ must throw FaultError, never abort/panic/assert",
    "verify-panic-state-hash":
        "src/verify/ panics must carry the canonical state hash",
    "no-float-in-decision-path":
        "ban float/double in src/sched/, src/core/ and src/hw/",
    "no-raw-fwrite-in-snapshot-path":
        "src/snapshot/ file IO must go through snapshot_io.cpp's "
        "atomic write protocol",
    "no-per-port-loop-in-kernel":
        "(retired) superseded by the semantic analyzer's "
        "hot-path-no-port-loop; name kept so allow() comments parse",
    "unknown-suppression":
        "fifoms-lint: allow(<rule>) must name an existing lint rule",
}


def scan(root: str) -> list[Finding]:
    findings: list[Finding] = []
    for top in ("src", "bench", "examples"):
        for dirpath, _, filenames in os.walk(os.path.join(root, top)):
            for name in sorted(filenames):
                if not name.endswith(CPP_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8") as handle:
                    lines = handle.read().splitlines()
                for check in CHECKS:
                    findings.extend(check(rel, lines))
    return findings


def self_test() -> int:
    def lines(text: str) -> list[str]:
        return text.splitlines()

    cases = [
        # (description, expect_findings, check, rel_path, source)
        ("rand() flagged", True, check_no_raw_rand, "src/a.cpp",
         "int x = rand();"),
        ("std::random_device flagged", True, check_no_raw_rand, "bench/b.cpp",
         "std::random_device rd;"),
        ("random_member ok", False, check_no_raw_rand, "src/a.cpp",
         "set.random_member(rng);"),
        ("operand( ok", False, check_no_raw_rand, "src/a.cpp",
         "int operand(int);"),
        ("rand in string ok", False, check_no_raw_rand, "src/a.cpp",
         'log("calling rand() is banned");'),
        ("tests not scanned", False, check_no_raw_rand, "tests/a.cpp",
         "int x = rand();"),
        ("suppression honoured", False, check_no_raw_rand, "src/a.cpp",
         "int x = rand();  // fifoms-lint: allow(no-raw-rand)"),
        ("unordered_map in sched flagged", True, check_no_unordered,
         "src/sched/x.cpp", "std::unordered_map<int, int> m;"),
        ("unordered_set in core flagged", True, check_no_unordered,
         "src/core/x.hpp", "std::unordered_set<PortId> s;"),
        ("unordered ok outside decision path", False, check_no_unordered,
         "src/sim/x.cpp", "std::unordered_map<int, int> m;"),
        ("unordered in scratch arena flagged", True, check_no_unordered,
         "src/common/scratch_arena.hpp", "std::unordered_map<int, int> m;"),
        ("unordered in thread pool flagged", True, check_no_unordered,
         "src/common/thread_pool.cpp", "std::unordered_set<int> s;"),
        ("unordered ok in other common code", False, check_no_unordered,
         "src/common/rng.hpp", "std::unordered_map<int, int> m;"),
        ("audit fail with now ok", False, check_audit_panic_slot,
         "src/analysis/auditor.cpp", "FIFOMS_AUDIT_FAIL(now, msg);"),
        ("audit fail without now flagged", True, check_audit_panic_slot,
         "src/analysis/auditor.cpp", "FIFOMS_AUDIT_FAIL(slot_guess, msg);"),
        ("direct panic flagged", True, check_audit_panic_slot,
         "src/analysis/auditor.cpp", "panic(__FILE__, __LINE__, msg);"),
        ("direct assert flagged", True, check_audit_panic_slot,
         "src/analysis/auditor.cpp", 'FIFOMS_ASSERT(ok, "msg");'),
        ("panic inside define ok", False, check_audit_panic_slot,
         "src/analysis/auditor.cpp",
         "#define FIFOMS_AUDIT_FAIL(now, msg) \\\n"
         "  ::fifoms::panic(__FILE__, __LINE__, (msg))"),
        ("other files ignored", False, check_audit_panic_slot,
         "src/analysis/queueing.cpp", "panic(__FILE__, __LINE__, msg);"),
        ("abort in fault path flagged", True, check_no_abort_in_fault_path,
         "src/fault/fault.cpp", "std::abort();"),
        ("exit in fault path flagged", True, check_no_abort_in_fault_path,
         "src/fault/fault.cpp", "exit(1);"),
        ("terminate in fault path flagged", True,
         check_no_abort_in_fault_path, "src/fault/fault.cpp",
         "std::terminate();"),
        ("assert in fault path flagged", True, check_no_abort_in_fault_path,
         "src/fault/fault.hpp", 'FIFOMS_ASSERT(ok, "msg");'),
        ("panic in fault path flagged", True, check_no_abort_in_fault_path,
         "src/fault/fault.cpp", "panic(__FILE__, __LINE__, msg);"),
        ("throw FaultError ok", False, check_no_abort_in_fault_path,
         "src/fault/fault.cpp", 'throw FaultError("bad plan");'),
        ("abort in comment ok", False, check_no_abort_in_fault_path,
         "src/fault/fault.hpp", "// abort is banned here"),
        ("fault rule ignores other dirs", False,
         check_no_abort_in_fault_path, "src/sim/simulator.cpp",
         "std::abort();"),
        ("fault suppression honoured", False, check_no_abort_in_fault_path,
         "src/fault/fault.cpp",
         "abort();  // fifoms-lint: allow(no-abort-in-fault-path)"),
        ("verify fail with state_hash ok", False,
         check_verify_panic_state_hash, "src/verify/x.cpp",
         'FIFOMS_VERIFY_FAIL(state_hash, "boom");'),
        ("verify fail with .hash() ok", False,
         check_verify_panic_state_hash, "src/verify/x.cpp",
         'FIFOMS_VERIFY_FAIL(state.hash(), "boom");'),
        ("verify fail without hash flagged", True,
         check_verify_panic_state_hash, "src/verify/x.cpp",
         'FIFOMS_VERIFY_FAIL(0, "boom");'),
        ("verify check second arg checked across lines", True,
         check_verify_panic_state_hash, "src/verify/x.cpp",
         'FIFOMS_VERIFY_CHECK(count(a, b) == ports,\n'
         '                    some_id, "boom");'),
        ("verify check with state_hash across lines ok", False,
         check_verify_panic_state_hash, "src/verify/x.cpp",
         'FIFOMS_VERIFY_CHECK(count(a, b) == ports,\n'
         '                    state_hash, "boom");'),
        ("direct panic in verify flagged", True,
         check_verify_panic_state_hash, "src/verify/x.cpp",
         "panic(__FILE__, __LINE__, msg);"),
        ("direct assert in verify flagged", True,
         check_verify_panic_state_hash, "src/verify/x.cpp",
         'FIFOMS_ASSERT(ok, "msg");'),
        ("verify_panic name does not trip the panic ban", False,
         check_verify_panic_state_hash, "src/verify/x.cpp",
         "void verify_panic(const char* file, int line);"),
        ("verify macro definition exempt", False,
         check_verify_panic_state_hash, "src/verify/fail.hpp",
         "#define FIFOMS_VERIFY_FAIL(state_hash, msg) \\\n"
         "  ::fifoms::verify::verify_panic(__FILE__, __LINE__, (msg))"),
        ("verify suppression honoured", False,
         check_verify_panic_state_hash, "src/verify/fail.cpp",
         "panic(file, line, full);  "
         "// fifoms-lint: allow(verify-panic-state-hash)"),
        ("verify rule ignores other dirs", False,
         check_verify_panic_state_hash, "src/core/fifoms.cpp",
         'FIFOMS_ASSERT(ok, "msg");'),
        ("double in sched flagged", True, check_no_float_in_decision_path,
         "src/sched/x.cpp", "double weight = 0.0;"),
        ("float in hw flagged", True, check_no_float_in_decision_path,
         "src/hw/x.hpp", "float level;"),
        ("long double in core flagged", True,
         check_no_float_in_decision_path, "src/core/x.cpp",
         "long double acc = 0;"),
        ("double ok outside decision path", False,
         check_no_float_in_decision_path, "src/stats/x.cpp",
         "double mean = 0.0;"),
        ("double in comment ok", False, check_no_float_in_decision_path,
         "src/sched/x.cpp", "// double grants are caught by validate()"),
        ("float suppression honoured", False, check_no_float_in_decision_path,
         "src/sched/x.cpp",
         "double d;  // fifoms-lint: allow(no-float-in-decision-path)"),
        ("fwrite in snapshot path flagged", True,
         check_no_raw_fwrite_in_snapshot_path, "src/snapshot/recovery.cpp",
         "std::fwrite(bytes.data(), 1, bytes.size(), file);"),
        ("fopen in snapshot path flagged", True,
         check_no_raw_fwrite_in_snapshot_path, "src/snapshot/bundle.cpp",
         'std::FILE* f = std::fopen(path.c_str(), "wb");'),
        ("ofstream in snapshot path flagged", True,
         check_no_raw_fwrite_in_snapshot_path, "src/snapshot/bundle.cpp",
         "std::ofstream out(path, std::ios::binary);"),
        ("ifstream in snapshot path flagged", True,
         check_no_raw_fwrite_in_snapshot_path, "src/snapshot/bundle.cpp",
         "std::ifstream in(path);"),
        ("snapshot_io.cpp is the sanctioned exception", False,
         check_no_raw_fwrite_in_snapshot_path, "src/snapshot/snapshot_io.cpp",
         "std::fwrite(bytes.data(), 1, bytes.size(), file);"),
        ("write_file_atomic call ok", False,
         check_no_raw_fwrite_in_snapshot_path, "src/snapshot/recovery.cpp",
         "write_file_atomic(path, frame);"),
        ("fwrite in comment ok", False,
         check_no_raw_fwrite_in_snapshot_path, "src/snapshot/snapshot.hpp",
         "// raw fwrite is banned here; see snapshot_io.cpp"),
        ("snapshot rule ignores other dirs", False,
         check_no_raw_fwrite_in_snapshot_path, "src/io/csv.cpp",
         "std::ofstream out(path);"),
        ("snapshot suppression honoured", False,
         check_no_raw_fwrite_in_snapshot_path, "src/snapshot/bundle.cpp",
         "std::ofstream out(path);  "
         "// fifoms-lint: allow(no-raw-fwrite-in-snapshot-path)"),
        # no-per-port-loop-in-kernel is retired (the semantic analyzer's
        # hot-path-no-port-loop supersedes it): the shim must stay
        # silent even on its old positives, and the rule name must keep
        # parsing in allow() comments without an unknown-suppression.
        ("retired kernel rule reports nothing", False,
         check_no_per_port_loop_in_kernel, "src/core/fifoms.cpp",
         "// fifoms-lint: kernel-file\n"
         "for (PortId p = 0; p < n; ++p) {}"),
        ("retired kernel rule allow() still parses", False,
         check_unknown_suppression, "src/core/fifoms.cpp",
         "// fifoms-lint: kernel-file\n"
         "for (PortId p = 0; p < n; ++p) {}  "
         "// fifoms-lint: allow(no-per-port-loop-in-kernel)"),
        # Suppression placement: most rules accept allow() on the same
        # line only — on the line above it must NOT silence the finding.
        ("suppression on wrong line does not silence", True,
         check_no_raw_rand, "src/a.cpp",
         "// fifoms-lint: allow(no-raw-rand)\n"
         "int x = rand();"),
        ("unknown rule name in allow() flagged", True,
         check_unknown_suppression, "src/a.cpp",
         "int x = 0;  // fifoms-lint: allow(no-raw-randd)"),
        ("empty allow() flagged", True,
         check_unknown_suppression, "src/a.cpp",
         "int x = 0;  // fifoms-lint: allow()"),
        ("allow(unknown-suppression) cannot self-exempt", True,
         check_unknown_suppression, "src/a.cpp",
         "int x = 0;  // fifoms-lint: allow(unknown-suppression)"),
        ("known rule name in allow() ok", False,
         check_unknown_suppression, "src/a.cpp",
         "int x = rand();  // fifoms-lint: allow(no-raw-rand)"),
        ("analyzer marker not lint's business", False,
         check_unknown_suppression, "src/a.cpp",
         "int x = 0;  // fifoms-analyze: allow(not-a-rule)"),
    ]

    failures = 0
    for description, expect, check, rel, source in cases:
        got = bool(check(rel, lines(source)))
        if got != expect:
            print(f"SELF-TEST FAIL: {description}: expected "
                  f"findings={expect}, got {got}", file=sys.stderr)
            failures += 1
    if failures:
        return 1
    print(f"lint self-test: {len(cases)} cases ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root,
                        help="repository root to scan")
    parser.add_argument("--self-test", action="store_true",
                        help="run the checker's own unit checks")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}: {description}")
        return 0
    if args.self_test:
        return self_test()

    if not os.path.isdir(args.root):
        print(f"lint: no such directory: {args.root}", file=sys.stderr)
        return 2

    findings = scan(args.root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
