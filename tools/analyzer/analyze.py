#!/usr/bin/env python3
"""fifoms semantic analyzer: project rules the regex lint cannot express.

Usage:
  tools/analyzer/analyze.py                      # scan the repo
  tools/analyzer/analyze.py --compdb build/compile_commands.json
  tools/analyzer/analyze.py --frontend internal  # skip clang even if found
  tools/analyzer/analyze.py --self-test          # fixture corpus + golden
  tools/analyzer/analyze.py --list-rules

Frontends:
  clang     exact lowering from `clang++ -ast-dump=json` (needs a clang
            binary and a compile_commands.json); results cached under
            --cache-dir keyed on source hashes.
  internal  clang-free structural scanner; same IR, same rules.
  auto      clang when available, internal otherwise; any per-TU clang
            failure falls back to internal for that TU.

Findings print as `path:line: [rule] message` and exit 1.  Suppress a
single finding with `// fifoms-analyze: allow(<rule>)` on the flagged
line or the line directly above; allow() of a rule that does not exist
is itself a finding (rule unknown-suppression).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import clang_frontend  # noqa: E402
import internal_frontend  # noqa: E402
from model import Finding, ProjectModel  # noqa: E402
from rules import HOT_PATH_ROOT_MARKER, RULES, run_rules  # noqa: E402

CPP_EXTENSIONS = (".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h")
SCAN_DIRS = ("src", "bench", "examples")
ALLOW_RE = re.compile(r"fifoms-analyze:\s*allow\(\s*([\w.-]*)\s*\)")


def collect_files(root: Path, scan_dirs: tuple[str, ...]) -> list[Path]:
    files: list[Path] = []
    for sub in scan_dirs:
        base = root / sub
        if not base.is_dir():
            continue
        files.extend(p for p in sorted(base.rglob("*"))
                     if p.suffix in CPP_EXTENSIONS and p.is_file())
    return files


def build_model(root: Path, files: list[Path], frontend: str,
                compdb_path: Path | None, cache_dir: Path | None,
                verbose: bool) -> tuple[ProjectModel, str]:
    """Returns (model, frontend_used)."""
    project = ProjectModel()
    covered: set[str] = set()
    used = "internal"

    clang = clang_frontend.find_clang() if frontend in ("auto", "clang") else None
    entries: list[dict] = []
    if clang and compdb_path and compdb_path.is_file():
        try:
            entries = json.loads(compdb_path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            if frontend == "clang":
                raise SystemExit(f"error: unreadable compdb: {err}")
            entries = []
    if frontend == "clang" and not clang:
        raise SystemExit("error: --frontend clang but no clang++ in PATH")
    if frontend == "clang" and not entries:
        raise SystemExit("error: --frontend clang needs a usable --compdb")

    if clang and entries:
        used = "clang"
        wanted = {p.resolve() for p in files}
        headers_hash = None
        analyzer_hash = None
        for entry in entries:
            src = Path(entry["file"])
            if not src.is_absolute():
                src = Path(entry.get("directory", ".")) / src
            if src.resolve() not in wanted:
                continue
            try:
                if headers_hash is None and cache_dir is not None:
                    headers_hash = clang_frontend._headers_hash(root)
                    analyzer_hash = clang_frontend.analyzer_sources_hash()
                models = clang_frontend.parse_tu(
                    clang, entry, root, cache_dir, headers_hash,
                    analyzer_hash)
            except clang_frontend.FrontendError as err:
                if verbose:
                    print(f"note: internal fallback for {src.name}: {err}",
                          file=sys.stderr)
                continue
            for rel, model in models.items():
                covered.add(rel)
                project.merge(model)

    for path in files:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        if rel in covered:
            continue
        try:
            text = path.read_text(errors="replace")
        except OSError as err:
            print(f"warning: cannot read {rel}: {err}", file=sys.stderr)
            continue
        project.merge(internal_frontend.parse_source(rel, text))
    return project, used


def collect_hot_roots(root: Path, files: list[Path]) -> dict[str, set[int]]:
    """Lines carrying the `// fifoms-analyze: hot-path-root` tag, per
    repo-relative path.  A function whose signature sits on a tagged
    line (or directly below one) is a hot-path BFS root."""
    roots: dict[str, set[int]] = {}
    for path in files:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        try:
            text = path.read_text(errors="replace")
        except OSError:
            continue
        for idx, line in enumerate(text.splitlines(), start=1):
            if HOT_PATH_ROOT_MARKER in line:
                roots.setdefault(rel, set()).add(idx)
    return roots


def apply_suppressions(root: Path, findings: list[Finding],
                       files: list[Path]) -> list[Finding]:
    """Drop allow()ed findings; add unknown-suppression findings."""
    line_cache: dict[str, list[str]] = {}

    def lines_of(rel: str) -> list[str]:
        if rel not in line_cache:
            try:
                line_cache[rel] = (root / rel).read_text(
                    errors="replace").splitlines()
            except OSError:
                line_cache[rel] = []
        return line_cache[rel]

    kept: list[Finding] = []
    for finding in findings:
        lines = lines_of(finding.path)
        suppressed = False
        for lineno in (finding.line, finding.line - 1):
            if 1 <= lineno <= len(lines):
                for m in ALLOW_RE.finditer(lines[lineno - 1]):
                    if m.group(1) == finding.rule:
                        suppressed = True
        if not suppressed:
            kept.append(finding)

    for path in files:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        for idx, text in enumerate(lines_of(rel), start=1):
            for m in ALLOW_RE.finditer(text):
                if m.group(1) not in RULES or m.group(1) == "unknown-suppression":
                    kept.append(Finding(
                        rel, idx, "unknown-suppression",
                        f"allow({m.group(1) or ''}) names no analyzer rule; "
                        f"see --list-rules"))
    return kept


def run_analysis(root: Path, scan_dirs: tuple[str, ...], frontend: str,
                 compdb_path: Path | None, cache_dir: Path | None,
                 verbose: bool) -> tuple[list[Finding], str]:
    files = collect_files(root, scan_dirs)
    project, used = build_model(root, files, frontend, compdb_path,
                                cache_dir, verbose)
    findings = run_rules(project, collect_hot_roots(root, files))
    findings = apply_suppressions(root, findings, files)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, used


def compare_frontends(root: Path, compdb_path: Path | None,
                      cache_dir: Path | None, verbose: bool) -> int:
    """Run the repo scan under both frontends and fail on any
    disagreement in the post-suppression finding set (the CI agreement
    gate: a frontend that silently stops seeing a finding class is a
    hole in the net)."""
    if not clang_frontend.find_clang():
        print("compare-frontends: no clang++ in PATH", file=sys.stderr)
        return 2
    if compdb_path is None or not compdb_path.is_file():
        print("compare-frontends: needs --compdb", file=sys.stderr)
        return 2
    clang_findings, _ = run_analysis(root, SCAN_DIRS, "clang", compdb_path,
                                     cache_dir, verbose)
    internal_findings, _ = run_analysis(root, SCAN_DIRS, "internal", None,
                                        None, verbose)
    ck = {f.key() for f in clang_findings}
    ik = {f.key() for f in internal_findings}
    for path, line, rule in sorted(ck - ik):
        print(f"compare-frontends: clang only: {path}:{line} [{rule}]")
    for path, line, rule in sorted(ik - ck):
        print(f"compare-frontends: internal only: {path}:{line} [{rule}]")
    agree = "agree" if ck == ik else "DISAGREE"
    print(f"compare-frontends: clang {len(ck)} finding(s), internal "
          f"{len(ik)} finding(s): {agree}")
    return 0 if ck == ik else 1


# ---------------------------------------------------------------------------
# Self-test: fixture corpus with a golden findings list.


def load_golden(path: Path) -> set[tuple[str, int, str]]:
    golden: set[tuple[str, int, str]] = set()
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = re.match(r"([^:]+):(\d+):\s*\[([\w-]+)\]", line)
        if not m:
            raise SystemExit(f"error: malformed golden line: {line}")
        golden.add((m.group(1), int(m.group(2)), m.group(3)))
    return golden


def _cache_flip_check(fixture_root: Path) -> bool:
    """End-to-end regression for the cache key (clang only): an IR
    derivation cached by analyzer A must be ignored — and re-derived —
    once the analyzer hash flips to B, otherwise a rule edit keeps
    serving findings computed by the old analyzer."""
    clang = clang_frontend.find_clang()
    if not clang:
        return True  # exercised in CI; the key unit checks ran above
    import shutil
    import tempfile
    tu = sorted((fixture_root / "src").rglob("*.cpp"))[0]
    entry = {"directory": str(fixture_root), "file": str(tu),
             "arguments": ["clang++", "-std=c++20", "-I", str(fixture_root),
                           str(tu)]}
    tmp = Path(tempfile.mkdtemp(prefix="fifoms-cache-test-"))
    try:
        models = clang_frontend.parse_tu(clang, entry, fixture_root, tmp,
                                         "hdrs", "analyzer-A")
        n_real = sum(len(m.functions) for m in models.values())
        # Poison the cached entry: an "older analyzer" derived an empty IR.
        for entry_path in tmp.glob("*.json"):
            entry_path.write_text("{}")
        stale = clang_frontend.parse_tu(clang, entry, fixture_root, tmp,
                                        "hdrs", "analyzer-A")
        served_stale = sum(len(m.functions) for m in stale.values()) == 0
        fresh = clang_frontend.parse_tu(clang, entry, fixture_root, tmp,
                                        "hdrs", "analyzer-B")
        rederived = sum(len(m.functions) for m in fresh.values()) == n_real
        return n_real > 0 and served_stale and rederived
    except clang_frontend.FrontendError:
        return False
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def self_test(frontend: str, cache_dir: Path | None, verbose: bool) -> int:
    fixture_root = Path(__file__).resolve().parent / "fixtures"
    golden_path = fixture_root / "golden.txt"
    if not golden_path.is_file():
        print("self-test: FAIL (fixtures/golden.txt missing)")
        return 1

    # Unit checks for the suppression grammar itself.
    m = ALLOW_RE.search("// fifoms-analyze: allow(observer-purity)")
    assert m and m.group(1) == "observer-purity"
    m = ALLOW_RE.search("x(); // fifoms-analyze:   allow( foo )")
    assert m and m.group(1) == "foo"
    assert not ALLOW_RE.search("// fifoms-analyze allow(foo)")  # no colon

    # The TU cache key must turn over when the analyzer itself changes,
    # not only when the analyzed source does: a stale IR derivation from
    # an older rules.py/frontend must never satisfy a newer analyzer.
    k_base = clang_frontend.cache_key(["-std=c++20"], b"int x;", "h1", "a1")
    assert k_base == clang_frontend.cache_key(
        ["-std=c++20"], b"int x;", "h1", "a1")
    assert k_base != clang_frontend.cache_key(
        ["-std=c++20"], b"int y;", "h1", "a1")  # source edit
    assert k_base != clang_frontend.cache_key(
        ["-std=c++20"], b"int x;", "h1", "a2")  # analyzer edit
    assert clang_frontend.analyzer_sources_hash() != ""

    # Synthesize a compdb so the clang frontend (when present) exercises
    # the same corpus; clang-free containers take the internal path.
    compdb_path = None
    if frontend in ("auto", "clang") and clang_frontend.find_clang():
        entries = [{
            "directory": str(fixture_root),
            "file": str(p),
            "arguments": ["clang++", "-std=c++20",
                          "-I", str(fixture_root), str(p)],
        } for p in sorted((fixture_root / "src").rglob("*.cpp"))]
        compdb_path = fixture_root / ".self-test-compdb.json"
        compdb_path.write_text(json.dumps(entries))

    try:
        # support/ is scanned so the internal frontend sees the same
        # class hierarchy (FaultError subclasses, SlotObserver) that the
        # clang frontend picks up from the #includes.
        findings, used = run_analysis(
            fixture_root, ("src", "support"), frontend, compdb_path,
            cache_dir, verbose)
    finally:
        if compdb_path is not None:
            compdb_path.unlink(missing_ok=True)
    got = {f.key() for f in findings}
    want = load_golden(golden_path)

    missing = sorted(want - got)
    extra = sorted(got - want)
    for path, line, rule in missing:
        print(f"self-test: MISSING expected finding {path}:{line} [{rule}]")
    for path, line, rule in extra:
        print(f"self-test: UNEXPECTED finding {path}:{line} [{rule}]")
        for f in findings:
            if f.key() == (path, line, rule):
                print(f"    {f}")
    cache_ok = _cache_flip_check(fixture_root)
    if not cache_ok:
        print("self-test: FAIL (analyzer-hash flip must invalidate "
              "cached TU derivations)")
    status = "ok" if not missing and not extra and cache_ok else "FAIL"
    print(f"self-test ({used} frontend): {len(want)} golden findings, "
          f"{len(got)} reported: {status}")
    return 0 if status == "ok" else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fifoms semantic analyzer (see docs/STATIC_ANALYSIS.md)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repo root to scan (default: this repo)")
    parser.add_argument("--compdb", type=Path, default=None,
                        help="compile_commands.json for the clang frontend")
    parser.add_argument("--frontend", choices=("auto", "clang", "internal"),
                        default="auto")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="AST-derivation cache dir "
                             "(default: <root>/.analyzer-cache)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture corpus against golden findings")
    parser.add_argument("--compare-frontends", action="store_true",
                        help="scan the repo under both frontends and fail "
                             "if the finding sets disagree")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name]}")
        return 0

    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = args.root / ".analyzer-cache"

    if args.self_test:
        return self_test(args.frontend, cache_dir, args.verbose)

    if args.compare_frontends:
        return compare_frontends(args.root.resolve(), args.compdb,
                                 cache_dir, args.verbose)

    root = args.root.resolve()
    findings, used = run_analysis(root, SCAN_DIRS, args.frontend,
                                  args.compdb, cache_dir, args.verbose)
    for finding in findings:
        print(finding)
    summary = f"analyze ({used} frontend): {len(findings)} finding(s)"
    print(summary if findings else summary + " — clean", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
