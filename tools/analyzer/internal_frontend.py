"""Internal (clang-free) frontend: lowers C++ sources into the model IR.

This is a structural scanner, not a full parser.  sanitize() removes
comments/strings/preprocessor lines, then a single pass tracks brace
scopes (namespace / class / function / block), classifying each scope
from the text between the previous `{`/`}`/`;` and the opening brace.
Function bodies are harvested with regexes for the constructs the rules
need: calls, member calls, throws, static locals, Rng constructions and
const_casts.

It intentionally over-approximates (a function mentioned is an edge in
the call graph even if only its address is taken) — the rules prefer
false edges over missed ones, and the suppression syntax handles the
rare false positive.  The Clang frontend (clang_frontend.py) produces
the same IR from real ASTs when a clang binary is available.
"""

from __future__ import annotations

import re

from cpp_source import last_name, line_of, sanitize
from model import (CallSite, ClassInfo, Construction, FieldInfo, FileModel,
                   FunctionInfo, GlobalVar, MemberCallSite, Param,
                   StaticLocal, ThrowSite)

KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "static_assert", "alignas", "typeid", "new",
    "delete", "throw", "co_return", "co_await", "co_yield", "assert",
    "defined", "requires", "default",
}

_NAMESPACE = re.compile(r"\bnamespace\s*([\w:]*)\s*$")
_CLASS = re.compile(
    r"\b(?:class|struct)\s+(?:\w+\s+)*?([A-Za-z_]\w*)\s*"
    r"(?:final\s*)?(?::\s*([^{]*?))?\s*$")
_ENUM = re.compile(r"\benum\b")
_TEMPLATE_PREFIX = re.compile(r"^\s*template\s*<")
_ATTR = re.compile(r"\[\[[^\]]*\]\]")

# Body-harvest patterns -------------------------------------------------------
_STATIC_LOCAL = re.compile(
    r"\bstatic\s+(?P<quals>(?:(?:const|constexpr|thread_local)\s+)*)"
    r"(?P<type>[\w:]+(?:\s*<[^<>;]*>)?(?:\s*[&*])*(?:\s+const)?)"
    r"\s+(?P<name>\w+)\s*(?=[=;{(\[])")
# The trailing \b keeps identifiers that merely start with "throw"
# (throw_io, throw_helper) from parsing as throw-expressions.
_THROW = re.compile(
    r"\bthrow\b\s*(?:\bnew\b\s*)?([A-Za-z_][\w:]*)?\s*([(;{])")
_MEMBER_CALL = re.compile(r"(\w+)\s*(?:\.|->)\s*(\w+)\s*\(")
# Member calls on subscripted named receivers (`rows_[i].m(`,
# `planes_[p][o].m(`): recorded as `name[]` / `name[][]` so the rules
# can type them as the container's element type.  One nesting level in
# the index (`a[b[i]]`) is understood; deeper shapes fall through to
# _CHAIN_MEMBER_CALL below.  The Clang frontend's _member_base_name
# lowers subscripts to the same spelling.
_SUBSCRIPT_MEMBER_CALL = re.compile(
    r"(?<![\w.\]>])(\w+)\s*"
    r"((?:\[(?:[^\][]|\[[^\][]*\])*\]\s*){1,2})(?:\.|->)\s*(\w+)\s*\(")
# Member calls on call-result / deeper-subscript receivers (`f(x).m(`,
# `a[i][j][k].m(`): the receiver is untypeable, recorded with obj=""
# exactly like the Clang frontend does for those shapes, so both
# frontends fan out identically.
_CHAIN_MEMBER_CALL = re.compile(r"[\)\]]\s*(?:\.|->)\s*(\w+)\s*\(")
# Range-for declarations with a spelled project type (`for (PortSet& r :`);
# `auto` deliberately does not match — see the frontend-divergence note
# on _LOCAL_DECL.
_RANGE_FOR_DECL = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?((?:\w+\s*::\s*)*[A-Z]\w*"
    r"(?:\s*<[^<>;={}]*(?:<[^<>]*>[^<>;={}]*)*>)?)\s*[&*]?\s+(\w+)\s*:")
_CALL = re.compile(r"(?<![\w.>])((?:\w+\s*::\s*)*)(~?\w+)\s*\(")
# Bare value use of Rng: declarations (`Rng rng`), temporaries (`Rng(`),
# and value containers (`vector<Rng>`); references/pointers and
# qualified uses (`Rng::`, `Rng&`) stay legal.
_RNG_VALUE = re.compile(r"\bRng\b(?!\s*[&*:<])")
_CONST_CAST = re.compile(r"\bconst_cast\s*<")
_NEW_EXPR = re.compile(r"\bnew\b")
# Allocation helpers called with explicit template arguments
# (`std::make_unique<T[]>(n)`): _CALL needs `name(` adjacency, so these
# would otherwise be invisible here while the Clang frontend sees them.
_ALLOC_TMPL_CALL = re.compile(
    r"\b(make_unique|make_shared)\s*<[^;()]*>\s*\(")
# Per-port induction loops (`for (PortId p = …)`); range-fors over word
# sets use `:` and do not match.
_PORT_LOOP = re.compile(r"\bfor\s*\(\s*PortId\s+\w+\s*=")
# Typed local declarations (`PortSet mask;`, `RingBuffer<T>& q = …`):
# class types follow the project's UpperCamelCase convention, which is
# what makes this capturable without real name lookup.  Used to type
# member-call receivers; std:: locals deliberately do not match (their
# lowercase names fail the [A-Z] head) and fall back to name fan-out.
# Frontend-divergence note: `auto` receivers are typed by Clang (it
# sees the deduced type) but not here, so hot-path code spells receiver
# types — the frontend-agreement gate catches violations of that rule.
_LOCAL_DECL = re.compile(
    r"(?:^|[;{(]|\bconst\b)\s*((?:\w+\s*::\s*)*[A-Z]\w*"
    r"(?:\s*<[^<>;={}]*(?:<[^<>]*>[^<>;={}]*)*>)?)\s*[&*]?\s+"
    r"(\w+)\s*(?=[=;({])")
# Scoped lock-acquisition guards (project MutexLock and the std guards).
_LOCK_GUARD = re.compile(
    r"\b(MutexLock|lock_guard|unique_lock|scoped_lock|shared_lock)\b")
# virt-specifiers in a class-scope method head or declaration.
_VIRTUAL_HEAD = re.compile(r"\b(?:virtual|override)\b|\bfinal\s*[;={]?\s*$")
# Project annotation macros (thread_annotations.hpp) decorate class and
# function heads; strip them so classification sees the real structure.
_FIFOMS_MACRO = re.compile(
    r"\bFIFOMS_[A-Z_]+\s*\((?:[^()]|\([^()]*\))*\)|\bFIFOMS_[A-Z_]+\b")

_GLOBAL_VAR = re.compile(
    r"^\s*(?P<storage>(?:(?:static|inline|thread_local|extern|constinit)\s+)*)"
    r"(?P<quals>(?:(?:const|constexpr)\s+)*)"
    r"(?P<type>[\w:]+(?:\s*<[^<>]*(?:<[^<>]*>[^<>]*)*>)?(?:\s*[&*])*"
    r"(?:\s+const)?)\s+(?P<name>\w+)\s*(?P<arr>\[[^\]]*\])?\s*$")

_SKIP_SEGMENT = re.compile(
    r"^\s*(?:using\b|typedef\b|friend\b|extern\s+\"|public\s*:|"
    r"private\s*:|protected\s*:|class\b|struct\b|enum\b|namespace\b|"
    r"template\b|static_assert\b|goto\b|$)")


class _Scope:
    __slots__ = ("kind", "name", "fn", "body_start", "bases", "fields",
                 "line", "methods", "virtuals")

    def __init__(self, kind: str, name: str = "", fn: FunctionInfo | None = None,
                 body_start: int = 0, line: int = 0) -> None:
        self.kind = kind  # tu | namespace | class | function | block | enum
        self.name = name
        self.fn = fn
        self.body_start = body_start
        self.bases: list[str] = []
        self.fields: list[FieldInfo] = []
        self.line = line
        self.methods: list[str] = []
        self.virtuals: list[str] = []


def _strip_head(head: str) -> str:
    """Drop leading template<...> prefixes and attributes from a scope head."""
    head = _ATTR.sub(" ", head)
    head = _FIFOMS_MACRO.sub(" ", head)
    while True:
        m = _TEMPLATE_PREFIX.match(head)
        if not m:
            return head.strip()
        depth, i = 0, head.index("<", m.start())
        while i < len(head):
            if head[i] == "<":
                depth += 1
            elif head[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        head = head[i + 1:]


def _parse_bases(text: str | None) -> list[str]:
    if not text:
        return []
    bases, depth, token = [], 0, []
    for ch in text + ",":
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        if ch == "," and depth == 0:
            spec = "".join(token).strip()
            token = []
            if spec:
                bases.append(last_name(spec))
        else:
            token.append(ch)
    return [b for b in bases if b]


def _find_signature(head: str) -> tuple[str, str, int] | None:
    """Locate `name(params)` in a scope head.

    Returns (name, params_text, name_offset) for the FIRST top-level
    parenthesis group preceded by a plausible function name — first, not
    last, so constructor init-lists (`Foo::Foo(x) : a_(x)`) resolve to
    the constructor and not an initializer.
    """
    depth = 0
    for i, ch in enumerate(head):
        if ch == "(" and depth == 0:
            before = head[:i].rstrip()
            m = re.search(r"(operator\s*[^\s\w]{1,3}|[~\w][\w:~]*)$", before)
            if m:
                # A definition's name can never follow member access:
                # `xs.push_back(T{...})` is a statement whose braced
                # argument opens a scope, not a function named push_back.
                prefix = before[:m.start()].rstrip()
                if prefix.endswith(".") or prefix.endswith("->"):
                    return None
                name = m.group(1)
                base = name.split("::")[-1]
                if base.lstrip("~") not in KEYWORDS and not base.isdigit():
                    # Balanced parameter extraction.
                    d, j = 0, i
                    while j < len(head):
                        if head[j] == "(":
                            d += 1
                        elif head[j] == ")":
                            d -= 1
                            if d == 0:
                                break
                        j += 1
                    tail = head[j + 1:]
                    # `x = f(...)` heads are initializers, not signatures.
                    if "=" in head[:m.start()]:
                        return None
                    if re.match(r"\s*(==|!=|<|>|\+|-|\*|/|\|\||&&)", tail):
                        return None
                    return (name, head[i + 1:j], m.start())
            return None
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
    return None


def _parse_params(params_text: str, line: int) -> list[Param]:
    del line
    params: list[Param] = []
    depth, token, groups = 0, [], []
    for ch in params_text + ",":
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        if ch == "," and depth == 0:
            groups.append("".join(token).strip())
            token = []
        else:
            token.append(ch)
    for group in groups:
        group = group.split("=")[0].strip()
        if not group or group == "void":
            continue
        m = re.search(r"([A-Za-z_]\w*)\s*$", group)
        name = m.group(1) if m else ""
        type_text = group[:m.start()].strip() if m else group
        if not type_text:  # unnamed param spelled as just a type
            type_text, name = name, ""
        params.append(Param(name=name, type_text=re.sub(r"\s+", " ", type_text)))
    return params


def _qualname(scopes: list[_Scope], name: str) -> str:
    parts = [s.name for s in scopes if s.kind in ("namespace", "class") and s.name]
    parts.append(name)
    return "::".join(parts)


def _enclosing_class(scopes: list[_Scope]) -> str:
    for scope in reversed(scopes):
        if scope.kind == "class":
            return scope.name
    return ""


def _subscript_group_count(subscripts: str) -> int:
    """Number of top-level `[…]` groups in a matched subscript run."""
    depth = 0
    groups = 0
    for ch in subscripts:
        if ch == "[":
            if depth == 0:
                groups += 1
            depth += 1
        elif ch == "]":
            depth -= 1
    return groups


def _harvest_body(fn: FunctionInfo, body: str, base_line: int) -> None:
    def bline(pos: int) -> int:
        return base_line + body.count("\n", 0, pos)

    for m in _STATIC_LOCAL.finditer(body):
        quals = m.group("quals") or ""
        type_text = re.sub(r"\s+", " ", m.group("type")).strip()
        is_const = ("const" in quals.split() or "constexpr" in quals.split()
                    or re.search(r"\bconst\b", type_text) is not None)
        fn.static_locals.append(StaticLocal(
            name=m.group("name"), type_text=type_text,
            line=bline(m.start()), is_const=is_const))
    for m in _THROW.finditer(body):
        type_name = m.group(1) or ""
        # `throw;` and `throw err;` (rethrowing a caught lowercase-named
        # object) carry no statically-known type.
        if m.group(2) == ";" and (not type_name or type_name[0].islower()):
            type_name = ""
        fn.throws.append(ThrowSite(
            type_name=type_name.split("::")[-1], line=bline(m.start())))
    for m in _MEMBER_CALL.finditer(body):
        fn.member_calls.append(MemberCallSite(
            obj=m.group(1), method=m.group(2), line=bline(m.start())))
    subscript_methods: set[int] = set()
    for m in _SUBSCRIPT_MEMBER_CALL.finditer(body):
        subscript_methods.add(m.start(3))
        depth = _subscript_group_count(m.group(2))
        fn.member_calls.append(MemberCallSite(
            obj=m.group(1) + "[]" * depth, method=m.group(3),
            line=bline(m.start())))
    for m in _CHAIN_MEMBER_CALL.finditer(body):
        if m.start(1) in subscript_methods:
            continue  # already recorded with its `name[]` receiver
        fn.member_calls.append(MemberCallSite(
            obj="", method=m.group(1), line=bline(m.start())))
    for m in _LOCAL_DECL.finditer(body):
        if m.group(2) not in KEYWORDS:
            fn.locals.append(Param(
                name=m.group(2),
                type_text=re.sub(r"\s+", " ", m.group(1)).strip()))
    for m in _RANGE_FOR_DECL.finditer(body):
        fn.locals.append(Param(
            name=m.group(2),
            type_text=re.sub(r"\s+", " ", m.group(1)).strip()))
    for m in _CALL.finditer(body):
        callee = m.group(2)
        if callee in KEYWORDS or callee.isdigit():
            continue
        qualifier = re.sub(r"\s|::$", "", m.group(1) or "")
        fn.calls.append(CallSite(callee=callee, line=bline(m.start()),
                                 qualifier=qualifier))
    for m in _RNG_VALUE.finditer(body):
        fn.constructions.append(Construction(type_name="Rng",
                                             line=bline(m.start())))
    for m in _LOCK_GUARD.finditer(body):
        fn.constructions.append(Construction(type_name=m.group(1),
                                             line=bline(m.start())))
    for m in _CONST_CAST.finditer(body):
        fn.const_cast_lines.append(bline(m.start()))
    for m in _ALLOC_TMPL_CALL.finditer(body):
        fn.calls.append(CallSite(callee=m.group(1), line=bline(m.start())))
    for m in _NEW_EXPR.finditer(body):
        fn.new_lines.append(bline(m.start()))
    for m in _PORT_LOOP.finditer(body):
        fn.port_loop_lines.append(bline(m.start()))


def _record_var(segment: str, scope: _Scope, model: FileModel,
                scopes: list[_Scope], code: str, pos: int) -> None:
    """Record a namespace-scope variable or class field from a `;` segment
    (or a brace-init head with the trailing `=`/`{` already stripped)."""
    segment = _FIFOMS_MACRO.sub(" ", segment)
    if _SKIP_SEGMENT.match(segment):
        return
    # Split off any initializer; a '(' on the left-hand side means a
    # function declaration (or macro use) rather than a variable.
    lhs = segment.split("=", 1)[0]
    if "(" in lhs or ")" in lhs:
        return
    m = _GLOBAL_VAR.match(lhs.strip())
    if not m:
        return
    name = m.group("name")
    type_text = re.sub(r"\s+", " ", m.group("type")).strip()
    if type_text in ("return", "delete", "operator"):
        return
    quals = (m.group("quals") or "").split()
    storage = (m.group("storage") or "").split()
    if "extern" in storage:
        return
    is_const = ("const" in quals or "constexpr" in quals
                or re.search(r"\bconst\b", type_text) is not None)
    while pos < len(code) and code[pos].isspace():
        pos += 1  # report the declaration's own line, not the segment start
    line = line_of(code, pos)
    if scope.kind == "class":
        scope.fields.append(FieldInfo(name=name, type_text=type_text,
                                      line=line))
    elif scope.kind in ("tu", "namespace"):
        del scopes  # qualname not tracked for globals
        model.globals.append(GlobalVar(name=name, type_text=type_text,
                                       file=model.path, line=line,
                                       is_const=is_const))


def parse_source(rel_path: str, text: str) -> FileModel:
    code = sanitize(text)
    model = FileModel(path=rel_path)
    scopes: list[_Scope] = [_Scope("tu")]
    head_start = 0
    i, n = 0, len(code)
    while i < n:
        ch = code[i]
        if ch == "{":
            head_raw = code[head_start:i]
            head = _strip_head(head_raw)
            parent = scopes[-1]
            scope = None
            nm = _NAMESPACE.search(head)
            cm = _CLASS.search(head) if not _ENUM.search(head) else None
            if head.endswith("=") or head.endswith(","):
                # Brace initializer (`T x = {` / inner `{...},`): still try
                # to record the variable being initialized.
                _record_var(head.rstrip("=,").strip(), parent, model,
                            scopes, code, head_start)
                scope = _Scope("block")
            elif nm and "using" not in head:
                scope = _Scope("namespace", name=nm.group(1).split("::")[-1])
            elif cm:
                scope = _Scope("class", name=cm.group(1),
                               line=line_of(code, head_start + head_raw.find(
                                   cm.group(1))))
                scope.bases = _parse_bases(cm.group(2))
            elif _ENUM.search(head):
                scope = _Scope("enum")
            elif parent.kind in ("tu", "namespace", "class"):
                sig = _find_signature(head)
                if sig:
                    name, params_text, name_off = sig
                    base = name.split("::")[-1]
                    cls = _enclosing_class(scopes)
                    if "::" in name and not cls:
                        cls = name.split("::")[-2]
                    line = line_of(code, head_start + head_raw.find(
                        name.split("::")[0]))
                    fn = FunctionInfo(
                        name=base, qualname=_qualname(scopes, name),
                        file=rel_path, line=line, class_name=cls,
                        params=_parse_params(params_text, line))
                    if parent.kind == "class":
                        parent.methods.append(base)
                        if _VIRTUAL_HEAD.search(head):
                            parent.virtuals.append(base)
                    scope = _Scope("function", name=base, fn=fn,
                                   body_start=i + 1, line=line)
                    del name_off
                else:
                    # Plain brace-init without `=` (`T x{...}`).
                    _record_var(head, parent, model, scopes, code, head_start)
                    scope = _Scope("block")
            else:
                scope = _Scope("block")
            scopes.append(scope)
            head_start = i + 1
        elif ch == "}":
            if len(scopes) > 1:
                top = scopes.pop()
                if top.kind == "function" and top.fn is not None:
                    body = code[top.body_start:i]
                    _harvest_body(top.fn, body,
                                  line_of(code, top.body_start))
                    model.functions.append(top.fn)
                elif top.kind == "class" and top.name:
                    model.classes.append(ClassInfo(
                        name=top.name, file=rel_path, line=top.line,
                        bases=top.bases, fields=top.fields,
                        methods=top.methods, virtual_methods=top.virtuals))
            head_start = i + 1
        elif ch == ";":
            segment = code[head_start:i]
            scope = scopes[-1]
            if scope.kind == "class":
                # Bodiless method declaration (`void f() const;`), with or
                # without a virt-specifier (`virtual void f() = 0;`,
                # `void f() override;`).
                decl = _strip_head(segment)
                sig = _find_signature(decl)
                if sig:
                    base = sig[0].split("::")[-1]
                    scope.methods.append(base)
                    if _VIRTUAL_HEAD.search(decl):
                        scope.virtuals.append(base)
            if scope.kind in ("tu", "namespace", "class"):
                _record_var(segment, scope, model, scopes, code, head_start)
            head_start = i + 1
        i += 1
    return model
