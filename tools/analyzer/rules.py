"""Semantic project rules over the analyzer IR (model.py).

Each rule is a function ProjectModel -> list[Finding].  The rules are
frontend-agnostic: they see only the IR, so the Clang frontend (CI) and
the internal frontend (clang-free containers) report the same findings
on the same code.

Suppression: a finding is silenced by `// fifoms-analyze: allow(<rule>)`
on the flagged line or the line directly above it (applied in
analyze.py, which also flags allow() of rules that do not exist).
"""

from __future__ import annotations

from collections import deque

import re

from cpp_source import last_name
from model import Finding, FunctionInfo, ProjectModel

# Directories whose scheduling decisions must be replayable: any
# randomness there has to flow in through an explicit Rng parameter.
# src/fabric and src/flows joined the scope once the fabric started
# maintaining scheduling state (HOL weight planes) and the flow layer
# started driving admission decisions; src/net joined with the
# multistage fabrics, whose relay/backpressure plumbing must stay as
# replayable as the elements it composes.
DETERMINISM_SCOPES = ("src/sched/", "src/core/", "src/hw/", "src/fabric/",
                      "src/flows/", "src/net/")
# Layers whose failures must stay classifiable: the fault plan itself,
# and the snapshot/recovery engine (src/snapshot/), whose SnapshotError
# subclasses FaultError so the RecoveryRunner and the hardened sweep can
# quarantine a bad checkpoint instead of dying with it.
FAULT_SCOPES = ("src/fault/", "src/snapshot/")

# Draw methods of common/rng.hpp's Rng.
DRAW_METHODS = {"next_u64", "next_double", "next_below", "bernoulli",
                "uniform_int", "geometric"}

OBSERVER_ROOT = "SlotObserver"
OBSERVER_HOOKS = {"on_slot", "on_inject", "on_fault_event"}
FAULT_ERROR_ROOT = "FaultError"

# ---- Hot-path discipline ----------------------------------------------------
# Roots are tagged in source with `// fifoms-analyze: hot-path-root` on
# the signature line or the line above; analyze.py collects the tags and
# passes them in.  From every root the analyzer BFSes the name-resolved
# call graph and holds the entire reachable region to the per-slot
# contract: fixed work, fixed memory, no blocking, no hidden control
# flow.  The Tiny Tera framing — the slot loop must behave like
# hardware.

HOT_PATH_ROOT_MARKER = "fifoms-analyze: hot-path-root"

# Free calls that allocate.
ALLOC_CALLS = {"malloc", "calloc", "realloc", "aligned_alloc", "strdup",
               "make_unique", "make_shared"}
# Member calls that may grow a std:: container when the method does not
# resolve to a project-defined function (RingBuffer::push_back and
# PortSet::insert resolve, and their definitions are analyzed instead).
GROWTH_METHODS = {"push_back", "emplace_back", "append", "resize",
                  "reserve", "assign", "insert", "emplace"}
# Blocking acquisition: member calls on mutexes/condvars, and scoped
# guard constructions (both frontends lower the same type set).
LOCK_METHODS = {"lock", "try_lock", "wait", "wait_for", "wait_until"}
LOCK_GUARD_TYPES = {"MutexLock", "lock_guard", "unique_lock",
                    "scoped_lock", "shared_lock"}

RULES: dict[str, str] = {
    "determinism-dataflow":
        "decision-path code (src/sched, src/core, src/hw, src/fabric, "
        "src/flows) must receive "
        "randomness via an Rng parameter: no function-local statics, no "
        "mutable globals, no locally constructed or value-held Rng, no "
        "draws in functions without an Rng parameter",
    "fault-path-exception-discipline":
        "every throw reachable from a function defined in src/fault/ or "
        "src/snapshot/ must raise FaultError or a subclass",
    "observer-purity":
        "SlotObserver hook overrides must not mutate observed switch "
        "state (no const_cast in the hook or its same-class/same-file "
        "callees)",
    "unknown-suppression":
        "fifoms-analyze: allow(<rule>) must name an existing rule",
    "hot-path-no-alloc":
        "no allocation reachable from a hot-path root: no new, no "
        "malloc-family call, no growing std:: container op outside "
        "ScratchArena",
    "hot-path-no-lock":
        "no mutex/condvar acquisition reachable from a hot-path root: "
        "the per-slot path never blocks",
    "hot-path-no-throw":
        "no throw reachable from a hot-path root: the per-slot path "
        "fails only through FIFOMS_ASSERT/panic",
    "hot-path-no-virtual":
        "no virtual dispatch reachable from a hot-path root outside the "
        "sanctioned SlotObserver seam",
    "hot-path-no-port-loop":
        "no per-port induction loop (for (PortId …)) reachable from a "
        "hot-path root; iterate PortSet words instead",
}


def _in_scope(path: str, prefixes: tuple[str, ...]) -> bool:
    return any(path.startswith(p) for p in prefixes)


def check_determinism_dataflow(project: ProjectModel) -> list[Finding]:
    rule = "determinism-dataflow"
    findings: list[Finding] = []
    for fn in project.functions.values():
        if not _in_scope(fn.file, DETERMINISM_SCOPES):
            continue
        for sl in fn.static_locals:
            if sl.is_const:
                continue
            findings.append(Finding(
                fn.file, sl.line, rule,
                f"function-local static '{sl.name}' in {fn.qualname}() is "
                f"hidden mutable state; thread the value through parameters "
                f"or make it const"))
        for con in fn.constructions:
            if con.type_name != "Rng":
                continue
            findings.append(Finding(
                fn.file, con.line, rule,
                f"{fn.qualname}() creates or holds an Rng by value; "
                f"decision code must draw from an Rng& parameter so runs "
                f"replay under a single seed"))
        draws = [mc for mc in fn.member_calls if mc.method in DRAW_METHODS]
        if draws and fn.class_name != "Rng" and not fn.has_param_of("Rng"):
            for mc in draws:
                findings.append(Finding(
                    fn.file, mc.line, rule,
                    f"{fn.qualname}() draws randomness ({mc.method}) but "
                    f"has no Rng parameter; the stream is untraceable from "
                    f"the experiment seed"))
    for cls in project.classes.values():
        if not _in_scope(cls.file, DETERMINISM_SCOPES):
            continue
        for field in cls.fields:
            if re.search(r"\bRng\b", field.type_text) and \
                    "&" not in field.type_text and "*" not in field.type_text:
                findings.append(Finding(
                    cls.file, field.line, rule,
                    f"{cls.name}::{field.name} stores an Rng by value; "
                    f"schedulers must borrow the caller's Rng instead of "
                    f"owning a stream"))
    for var in project.globals.values():
        if not _in_scope(var.file, DETERMINISM_SCOPES) or var.is_const:
            continue
        findings.append(Finding(
            var.file, var.line, rule,
            f"mutable namespace-scope variable '{var.name}' in decision "
            f"code; state must live in objects the simulator owns"))
    return findings


def _resolve(call_name: str, from_fn: FunctionInfo,
             by_name: dict[str, list[FunctionInfo]]) -> list[FunctionInfo]:
    """Name-based call resolution: prefer candidates defined in the same
    file (overload sets and helpers are file-local in this codebase);
    otherwise take every project function with that name."""
    candidates = by_name.get(call_name, [])
    same_file = [c for c in candidates if c.file == from_fn.file]
    return same_file or candidates


def check_fault_path_exceptions(project: ProjectModel) -> list[Finding]:
    rule = "fault-path-exception-discipline"
    findings: list[Finding] = []
    family = project.subclasses_of(FAULT_ERROR_ROOT)
    by_name = project.functions_by_name()
    entries = [fn for fn in project.functions.values()
               if _in_scope(fn.file, FAULT_SCOPES)]
    # BFS over the name-resolved call graph, remembering one witness
    # chain per reached function for the diagnostic.
    parent: dict[tuple[str, int, str], tuple[str, int, str] | None] = {}
    queue: deque[FunctionInfo] = deque()
    for fn in entries:
        if fn.key() not in parent:
            parent[fn.key()] = None
            queue.append(fn)
    reached: dict[tuple[str, int, str], FunctionInfo] = {}
    while queue:
        fn = queue.popleft()
        reached[fn.key()] = fn
        callees = [c.callee for c in fn.calls]
        callees += [mc.method for mc in fn.member_calls]
        for name in callees:
            for target in _resolve(name, fn, by_name):
                if target.key() not in parent:
                    parent[target.key()] = fn.key()
                    queue.append(target)

    def chain(fn: FunctionInfo) -> str:
        names = [fn.qualname]
        key = parent.get(fn.key())
        while key is not None and len(names) < 6:
            names.append(reached[key].qualname if key in reached else key[2])
            key = parent.get(key)
        return " <- ".join(names)

    for fn in reached.values():
        for throw in fn.throws:
            if not throw.type_name:  # rethrow: type decided at the origin
                continue
            if throw.type_name in family:
                continue
            findings.append(Finding(
                fn.file, throw.line, rule,
                f"{fn.qualname}() throws {throw.type_name}, reachable from "
                f"the fault layer ({chain(fn)}); fault paths must raise "
                f"FaultError subclasses so degradation handlers can "
                f"classify them"))
    return findings


def check_observer_purity(project: ProjectModel) -> list[Finding]:
    rule = "observer-purity"
    findings: list[Finding] = []
    observers = project.subclasses_of(OBSERVER_ROOT)
    by_name = project.functions_by_name()
    hooks = [fn for fn in project.functions.values()
             if fn.name in OBSERVER_HOOKS and fn.class_name in observers]
    for hook in hooks:
        # Walk the hook's call tree, but only through helpers the hook
        # plausibly owns: same class or same file.
        visited: set[tuple[str, int, str]] = set()
        queue: deque[FunctionInfo] = deque([hook])
        while queue:
            fn = queue.popleft()
            if fn.key() in visited:
                continue
            visited.add(fn.key())
            for cast_line in fn.const_cast_lines:
                findings.append(Finding(
                    fn.file, cast_line, rule,
                    f"const_cast in observer hook path "
                    f"{hook.qualname}() -> {fn.qualname}(); observers get "
                    f"const views because mutating the switch mid-slot "
                    f"corrupts the schedule being observed"))
            names = [c.callee for c in fn.calls]
            names += [mc.method for mc in fn.member_calls]
            for name in names:
                for target in _resolve(name, fn, by_name):
                    if target.file == hook.file or \
                            target.class_name == hook.class_name:
                        if target.key() not in visited:
                            queue.append(target)
    # A const_cast can appear once but be reachable from two hooks; one
    # finding per (file, line) is enough.
    unique: dict[tuple[str, int], Finding] = {}
    for f in findings:
        unique.setdefault((f.path, f.line), f)
    return list(unique.values())


def _virtual_name_partition(project: ProjectModel) -> tuple[set[str], set[str]]:
    """(names declared virtual somewhere, names declared non-virtual
    somewhere).  A member call is treated as virtual dispatch only when
    its name is in the first set and NOT in the second: name-based
    resolution cannot tell `set.clear()` from `model->clear()` apart, so
    ambiguous names are exempt rather than false-flagged."""
    virtual_names: set[str] = set()
    nonvirtual_names: set[str] = set()
    for cls in project.classes.values():
        virtuals = set(cls.virtual_methods)
        virtual_names |= virtuals
        nonvirtual_names |= set(cls.methods) - virtuals
    return virtual_names, nonvirtual_names


# std:: sequence/associative containers whose GROWTH_METHODS allocate;
# a member call on a receiver of one of these types is a direct
# allocation site, not something to resolve into project code.
STD_CONTAINERS = {"vector", "string", "basic_string", "deque", "map",
                  "unordered_map", "set", "unordered_set", "list"}

# Indirection wrappers whose `->` receivers the Clang frontend lowers to
# obj="" (the base is an operator-> call, not a name).  The internal
# frontend sees the spelled name, so treating these as untypeable here
# keeps both frontends on the same fan-out path.
SMART_POINTERS = {"unique_ptr", "shared_ptr", "weak_ptr", "optional"}


def _element_type(type_text: str) -> str:
    """Element type of a container/array type spelling: the first
    top-level template argument ('std::vector<PortSet>' -> 'PortSet'),
    or the base of a C-array type ('PortSet[64]' -> 'PortSet')."""
    text = type_text.strip()
    arr = re.search(r"\[[^\]]*\]\s*$", text)
    if arr:
        return text[:arr.start()].strip()
    lt = text.find("<")
    if lt < 0 or ">" not in text:
        return ""
    end = text.rfind(">")
    depth = 0
    for i in range(lt + 1, end):
        ch = text[i]
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        elif ch == "," and depth == 0:
            end = i
            break
    return text[lt + 1:end].strip()


def _receiver_type(obj: str, from_fn: FunctionInfo,
                   classes_by_name: dict[str, list]) -> str:
    """Best-effort receiver type of a member call: the last type name of
    the matching local, parameter or enclosing-class field.  A `name[]`
    receiver (subscripted container) types as the container's element
    type, one level per `[]`.  Empty when the receiver is an expression,
    an untyped (std::/auto) local, `this`, or a smart pointer — name-
    based analysis cannot type those, so the caller falls back to name
    fan-out."""
    if not obj or obj == "this":
        return ""
    subscripts = 0
    while obj.endswith("[]"):
        obj = obj[:-2]
        subscripts += 1
    type_text = ""
    for p in from_fn.locals:  # locals shadow params and fields
        if p.name == obj:
            type_text = p.type_text
            break
    if not type_text:
        for p in from_fn.params:
            if p.name == obj:
                type_text = p.type_text
                break
    if not type_text:
        for cls in classes_by_name.get(from_fn.class_name, []):
            for fld in cls.fields:
                if fld.name == obj:
                    type_text = fld.type_text
                    break
            if type_text:
                break
    for _ in range(subscripts):
        type_text = _element_type(type_text)
    name = last_name(type_text) if type_text else ""
    return "" if name in SMART_POINTERS else name


def check_hot_path(project: ProjectModel,
                   hot_root_lines: dict[str, set[int]]) -> list[Finding]:
    """BFS from tagged hot-path roots; flag any reachable allocation,
    lock acquisition, throw, unsanctioned virtual dispatch, or per-port
    induction loop, each with its witness call chain.

    Virtual-dispatch sites are analysis boundaries: the BFS does not
    descend through them (the dispatch target is unknowable here), so
    every implementation that belongs to the hot path must carry its own
    root tag — which is exactly the discipline the tag documents."""
    roots = [fn for fn in project.functions.values()
             if fn.line in hot_root_lines.get(fn.file, set())
             or fn.line - 1 in hot_root_lines.get(fn.file, set())]
    if not roots:
        return []
    by_name = project.functions_by_name()
    virtual_names, nonvirtual_names = _virtual_name_partition(project)
    dispatch_names = virtual_names - nonvirtual_names
    classes_by_name: dict[str, list] = {}
    for cls in project.classes.values():
        classes_by_name.setdefault(cls.name, []).append(cls)

    def resolve_member(method: str, obj: str,
                       fn: FunctionInfo) -> list[FunctionInfo]:
        """Member-call resolution: when the receiver's type is known
        (local, field or parameter of a project class that declares
        `method`), descend only into that class's definition; a known
        type outside the project model (std:: or external) is terminal —
        its methods never enter project code.  Only a truly untypeable
        receiver falls back to name fan-out like _resolve."""
        recv = _receiver_type(obj, fn, classes_by_name)
        if recv:
            if any(method in c.methods
                   for c in classes_by_name.get(recv, [])):
                # A declared-but-unmodeled body (header not scanned)
                # yields nothing to walk; that is still better than
                # fanning out into same-named methods of unrelated
                # classes.
                return [t for t in by_name.get(method, [])
                        if t.class_name == recv]
            if recv not in classes_by_name:
                return []
            # A project class that doesn't declare `method` (inherited
            # member): fall through to name fan-out.
        return _resolve(method, fn, by_name)

    findings: list[Finding] = []
    parent: dict[tuple[str, int, str], tuple[str, int, str] | None] = {}
    reached: dict[tuple[str, int, str], FunctionInfo] = {}
    queue: deque[FunctionInfo] = deque()
    for fn in roots:
        if fn.key() not in parent:
            parent[fn.key()] = None
            queue.append(fn)

    def chain(fn: FunctionInfo) -> str:
        names = [fn.qualname]
        key = parent.get(fn.key())
        while key is not None and len(names) < 6:
            names.append(reached[key].qualname if key in reached else key[2])
            key = parent.get(key)
        return " <- ".join(names)

    while queue:
        fn = queue.popleft()
        reached[fn.key()] = fn
        descend: list[str] = []

        for line in fn.new_lines:
            if fn.class_name != "ScratchArena":
                findings.append(Finding(
                    fn.file, line, "hot-path-no-alloc",
                    f"new-expression in {fn.qualname}(), reachable from a "
                    f"hot-path root ({chain(fn)}); the per-slot path must "
                    f"not allocate"))
        for call in fn.calls:
            if call.callee in ALLOC_CALLS:
                if fn.class_name != "ScratchArena":
                    findings.append(Finding(
                        fn.file, call.line, "hot-path-no-alloc",
                        f"{fn.qualname}() calls {call.callee}(), reachable "
                        f"from a hot-path root ({chain(fn)}); the per-slot "
                        f"path must not allocate"))
                continue
            descend.append(call.callee)
        member_targets: list[FunctionInfo] = []
        for mc in fn.member_calls:
            if mc.method in LOCK_METHODS:
                findings.append(Finding(
                    fn.file, mc.line, "hot-path-no-lock",
                    f"{fn.qualname}() acquires via .{mc.method}(), reachable "
                    f"from a hot-path root ({chain(fn)}); the per-slot path "
                    f"never blocks"))
                continue
            if mc.method in dispatch_names:
                if mc.method not in OBSERVER_HOOKS:
                    findings.append(Finding(
                        fn.file, mc.line, "hot-path-no-virtual",
                        f"{fn.qualname}() virtually dispatches "
                        f".{mc.method}(), reachable from a hot-path root "
                        f"({chain(fn)}); only the SlotObserver seam is "
                        f"sanctioned — tag the implementations as roots if "
                        f"this seam is intentional"))
                continue  # dispatch target unknowable: analysis boundary
            if mc.method in GROWTH_METHODS:
                recv = _receiver_type(mc.obj, fn, classes_by_name)
                targets = resolve_member(mc.method, mc.obj, fn)
                if recv in STD_CONTAINERS or not targets:
                    findings.append(Finding(
                        fn.file, mc.line, "hot-path-no-alloc",
                        f"{fn.qualname}() may grow a std:: container via "
                        f".{mc.method}(), reachable from a hot-path root "
                        f"({chain(fn)}); pre-size in reset() or use "
                        f"ScratchArena"))
                    continue
                member_targets.extend(targets)
                continue
            member_targets.extend(resolve_member(mc.method, mc.obj, fn))
        for con in fn.constructions:
            if con.type_name in LOCK_GUARD_TYPES:
                findings.append(Finding(
                    fn.file, con.line, "hot-path-no-lock",
                    f"{fn.qualname}() constructs a {con.type_name} guard, "
                    f"reachable from a hot-path root ({chain(fn)}); the "
                    f"per-slot path never blocks"))
        for throw in fn.throws:
            label = throw.type_name or "a rethrown exception"
            findings.append(Finding(
                fn.file, throw.line, "hot-path-no-throw",
                f"{fn.qualname}() throws {label}, reachable from a "
                f"hot-path root ({chain(fn)}); the per-slot path fails "
                f"only through FIFOMS_ASSERT"))
        for line in fn.port_loop_lines:
            findings.append(Finding(
                fn.file, line, "hot-path-no-port-loop",
                f"per-port induction loop in {fn.qualname}(), reachable "
                f"from a hot-path root ({chain(fn)}); iterate PortSet "
                f"words (first()/next_after()/word masks) instead"))

        for name in descend:
            member_targets.extend(_resolve(name, fn, by_name))
        for target in member_targets:
            if target.key() not in parent:
                parent[target.key()] = fn.key()
                queue.append(target)

    # A site can be reachable from several roots; one finding per
    # (file, line, rule) is enough.
    unique: dict[tuple[str, int, str], Finding] = {}
    for f in findings:
        unique.setdefault(f.key(), f)
    return list(unique.values())


ALL_CHECKS = (
    check_determinism_dataflow,
    check_fault_path_exceptions,
    check_observer_purity,
)


def run_rules(project: ProjectModel,
              hot_root_lines: dict[str, set[int]] | None = None
              ) -> list[Finding]:
    findings: list[Finding] = []
    for check in ALL_CHECKS:
        findings.extend(check(project))
    findings.extend(check_hot_path(project, hot_root_lines or {}))
    return findings
