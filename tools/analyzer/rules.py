"""Semantic project rules over the analyzer IR (model.py).

Each rule is a function ProjectModel -> list[Finding].  The rules are
frontend-agnostic: they see only the IR, so the Clang frontend (CI) and
the internal frontend (clang-free containers) report the same findings
on the same code.

Suppression: a finding is silenced by `// fifoms-analyze: allow(<rule>)`
on the flagged line or the line directly above it (applied in
analyze.py, which also flags allow() of rules that do not exist).
"""

from __future__ import annotations

from collections import deque

import re

from model import Finding, FunctionInfo, ProjectModel

# Directories whose scheduling decisions must be replayable: any
# randomness there has to flow in through an explicit Rng parameter.
DETERMINISM_SCOPES = ("src/sched/", "src/core/", "src/hw/")
FAULT_SCOPE = "src/fault/"

# Draw methods of common/rng.hpp's Rng.
DRAW_METHODS = {"next_u64", "next_double", "next_below", "bernoulli",
                "uniform_int", "geometric"}

OBSERVER_ROOT = "SlotObserver"
OBSERVER_HOOKS = {"on_slot", "on_inject", "on_fault_event"}
FAULT_ERROR_ROOT = "FaultError"

RULES: dict[str, str] = {
    "determinism-dataflow":
        "decision-path code (src/sched, src/core, src/hw) must receive "
        "randomness via an Rng parameter: no function-local statics, no "
        "mutable globals, no locally constructed or value-held Rng, no "
        "draws in functions without an Rng parameter",
    "fault-path-exception-discipline":
        "every throw reachable from a function defined in src/fault/ "
        "must raise FaultError or a subclass",
    "observer-purity":
        "SlotObserver hook overrides must not mutate observed switch "
        "state (no const_cast in the hook or its same-class/same-file "
        "callees)",
    "unknown-suppression":
        "fifoms-analyze: allow(<rule>) must name an existing rule",
}


def _in_scope(path: str, prefixes: tuple[str, ...]) -> bool:
    return any(path.startswith(p) for p in prefixes)


def check_determinism_dataflow(project: ProjectModel) -> list[Finding]:
    rule = "determinism-dataflow"
    findings: list[Finding] = []
    for fn in project.functions.values():
        if not _in_scope(fn.file, DETERMINISM_SCOPES):
            continue
        for sl in fn.static_locals:
            if sl.is_const:
                continue
            findings.append(Finding(
                fn.file, sl.line, rule,
                f"function-local static '{sl.name}' in {fn.qualname}() is "
                f"hidden mutable state; thread the value through parameters "
                f"or make it const"))
        for con in fn.constructions:
            if con.type_name != "Rng":
                continue
            findings.append(Finding(
                fn.file, con.line, rule,
                f"{fn.qualname}() creates or holds an Rng by value; "
                f"decision code must draw from an Rng& parameter so runs "
                f"replay under a single seed"))
        draws = [mc for mc in fn.member_calls if mc.method in DRAW_METHODS]
        if draws and fn.class_name != "Rng" and not fn.has_param_of("Rng"):
            for mc in draws:
                findings.append(Finding(
                    fn.file, mc.line, rule,
                    f"{fn.qualname}() draws randomness ({mc.method}) but "
                    f"has no Rng parameter; the stream is untraceable from "
                    f"the experiment seed"))
    for cls in project.classes.values():
        if not _in_scope(cls.file, DETERMINISM_SCOPES):
            continue
        for field in cls.fields:
            if re.search(r"\bRng\b", field.type_text) and \
                    "&" not in field.type_text and "*" not in field.type_text:
                findings.append(Finding(
                    cls.file, field.line, rule,
                    f"{cls.name}::{field.name} stores an Rng by value; "
                    f"schedulers must borrow the caller's Rng instead of "
                    f"owning a stream"))
    for var in project.globals.values():
        if not _in_scope(var.file, DETERMINISM_SCOPES) or var.is_const:
            continue
        findings.append(Finding(
            var.file, var.line, rule,
            f"mutable namespace-scope variable '{var.name}' in decision "
            f"code; state must live in objects the simulator owns"))
    return findings


def _resolve(call_name: str, from_fn: FunctionInfo,
             by_name: dict[str, list[FunctionInfo]]) -> list[FunctionInfo]:
    """Name-based call resolution: prefer candidates defined in the same
    file (overload sets and helpers are file-local in this codebase);
    otherwise take every project function with that name."""
    candidates = by_name.get(call_name, [])
    same_file = [c for c in candidates if c.file == from_fn.file]
    return same_file or candidates


def check_fault_path_exceptions(project: ProjectModel) -> list[Finding]:
    rule = "fault-path-exception-discipline"
    findings: list[Finding] = []
    family = project.subclasses_of(FAULT_ERROR_ROOT)
    by_name = project.functions_by_name()
    entries = [fn for fn in project.functions.values()
               if fn.file.startswith(FAULT_SCOPE)]
    # BFS over the name-resolved call graph, remembering one witness
    # chain per reached function for the diagnostic.
    parent: dict[tuple[str, int, str], tuple[str, int, str] | None] = {}
    queue: deque[FunctionInfo] = deque()
    for fn in entries:
        if fn.key() not in parent:
            parent[fn.key()] = None
            queue.append(fn)
    reached: dict[tuple[str, int, str], FunctionInfo] = {}
    while queue:
        fn = queue.popleft()
        reached[fn.key()] = fn
        callees = [c.callee for c in fn.calls]
        callees += [mc.method for mc in fn.member_calls]
        for name in callees:
            for target in _resolve(name, fn, by_name):
                if target.key() not in parent:
                    parent[target.key()] = fn.key()
                    queue.append(target)

    def chain(fn: FunctionInfo) -> str:
        names = [fn.qualname]
        key = parent.get(fn.key())
        while key is not None and len(names) < 6:
            names.append(reached[key].qualname if key in reached else key[2])
            key = parent.get(key)
        return " <- ".join(names)

    for fn in reached.values():
        for throw in fn.throws:
            if not throw.type_name:  # rethrow: type decided at the origin
                continue
            if throw.type_name in family:
                continue
            findings.append(Finding(
                fn.file, throw.line, rule,
                f"{fn.qualname}() throws {throw.type_name}, reachable from "
                f"the fault layer ({chain(fn)}); fault paths must raise "
                f"FaultError subclasses so degradation handlers can "
                f"classify them"))
    return findings


def check_observer_purity(project: ProjectModel) -> list[Finding]:
    rule = "observer-purity"
    findings: list[Finding] = []
    observers = project.subclasses_of(OBSERVER_ROOT)
    by_name = project.functions_by_name()
    hooks = [fn for fn in project.functions.values()
             if fn.name in OBSERVER_HOOKS and fn.class_name in observers]
    for hook in hooks:
        # Walk the hook's call tree, but only through helpers the hook
        # plausibly owns: same class or same file.
        visited: set[tuple[str, int, str]] = set()
        queue: deque[FunctionInfo] = deque([hook])
        while queue:
            fn = queue.popleft()
            if fn.key() in visited:
                continue
            visited.add(fn.key())
            for cast_line in fn.const_cast_lines:
                findings.append(Finding(
                    fn.file, cast_line, rule,
                    f"const_cast in observer hook path "
                    f"{hook.qualname}() -> {fn.qualname}(); observers get "
                    f"const views because mutating the switch mid-slot "
                    f"corrupts the schedule being observed"))
            names = [c.callee for c in fn.calls]
            names += [mc.method for mc in fn.member_calls]
            for name in names:
                for target in _resolve(name, fn, by_name):
                    if target.file == hook.file or \
                            target.class_name == hook.class_name:
                        if target.key() not in visited:
                            queue.append(target)
    # A const_cast can appear once but be reachable from two hooks; one
    # finding per (file, line) is enough.
    unique: dict[tuple[str, int], Finding] = {}
    for f in findings:
        unique.setdefault((f.path, f.line), f)
    return list(unique.values())


ALL_CHECKS = (
    check_determinism_dataflow,
    check_fault_path_exceptions,
    check_observer_purity,
)


def run_rules(project: ProjectModel) -> list[Finding]:
    findings: list[Finding] = []
    for check in ALL_CHECKS:
        findings.extend(check(project))
    return findings
