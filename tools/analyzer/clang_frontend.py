"""Clang JSON-AST frontend: exact semantic lowering into the model IR.

Runs `clang++ -Xclang -ast-dump=json -fsyntax-only` per translation
unit (arguments taken from compile_commands.json) and walks the dump.
Two properties of the dump format shape the walker:

* Locations are DIFFERENTIAL: a "loc"/"begin"/"end" object omits its
  "file" and "line" keys when unchanged since the previously printed
  location.  Reconstruction therefore replays the dump in document
  order (dict key order is the serialization order under json.loads)
  and keeps running file/line state.
* Macro expansions carry "spellingLoc"/"expansionLoc" pairs; the
  expansion side is where the code is written, which is what findings
  should point at, but both sides participate in the differential
  state and must be replayed.

Results per TU are cached as serialized FileModels keyed on a content
hash of the TU, every repo header, and the compile command — so CI can
restore `.analyzer-cache/` and skip clang entirely for unchanged code.

Any failure (clang missing, dump too exotic, JSON hiccup) raises
FrontendError; analyze.py then falls back to the internal frontend for
that TU, so this path can never hard-fail an analysis run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import shlex
import subprocess
from pathlib import Path

from cpp_source import last_name
from model import (CallSite, ClassInfo, Construction, FieldInfo, FileModel,
                   FunctionInfo, GlobalVar, MemberCallSite, Param,
                   StaticLocal, ThrowSite)

FUNC_KINDS = {"FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
              "CXXDestructorDecl", "CXXConversionDecl"}

# Scoped lock-acquisition guard types (project MutexLock and std guards);
# mirrors _LOCK_GUARD in internal_frontend.py.
LOCK_GUARD_TYPES = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock",
                    "shared_lock"}

CACHE_VERSION = "4"


def _subscript_base(node: dict) -> dict | None:
    """Receiver of a subscript expression (`base[i]`), or None when the
    node is not one.  Covers C arrays (ArraySubscriptExpr) and
    overloaded operator[] (CXXOperatorCallExpr whose callee is
    operator[])."""
    inner = [c for c in node.get("inner") or [] if isinstance(c, dict)]
    if node.get("kind") == "ArraySubscriptExpr":
        return inner[0] if inner else None
    if node.get("kind") == "CXXOperatorCallExpr" and len(inner) >= 2:
        callee = inner[0]
        while callee.get("kind") == "ImplicitCastExpr":
            sub = [c for c in callee.get("inner") or []
                   if isinstance(c, dict)]
            if not sub:
                return None
            callee = sub[0]
        ref = callee.get("referencedDecl", {})
        name = ref.get("name", "") if isinstance(ref, dict) else ""
        if name == "operator[]":
            return inner[1]
    return None


def _member_base_name(node: dict) -> str:
    """Spelled name of a member expression's receiver, mirroring the
    internal frontend's `obj.method(` / `obj->method(` capture: a
    DeclRefExpr or MemberExpr base yields its name; a subscripted name
    yields `name[]` (one `[]` per subscript, typed by the rules as the
    container's element type); anything else (this, call results,
    smart-pointer operator->) yields '' so resolution falls back to
    name fan-out on both frontends."""
    inner = node.get("inner") or []
    base = inner[0] if inner and isinstance(inner[0], dict) else None
    subscripts = 0
    while base is not None:
        kind = base.get("kind")
        if kind in ("ImplicitCastExpr", "ParenExpr", "ExprWithCleanups",
                    "MaterializeTemporaryExpr"):
            sub = base.get("inner") or []
            base = sub[0] if sub and isinstance(sub[0], dict) else None
            continue
        sub_base = _subscript_base(base)
        if sub_base is not None and subscripts < 2:
            subscripts += 1
            base = sub_base
            continue
        break
    if base is None:
        return ""
    if base.get("kind") == "MemberExpr":
        name = base.get("name", "")
    elif base.get("kind") == "DeclRefExpr":
        ref = base.get("referencedDecl", {})
        name = ref.get("name", "") if isinstance(ref, dict) else ""
    else:
        return ""
    return name + "[]" * subscripts if name else ""


class FrontendError(RuntimeError):
    pass


def find_clang() -> str | None:
    import shutil
    for name in ("clang++", "clang++-18", "clang++-17", "clang++-16",
                 "clang++-15", "clang++-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


class _Walker:
    """Document-order AST walk with differential-location replay."""

    def __init__(self, root: Path, main_file: str) -> None:
        self.root = root
        self.file = main_file
        self.line = 0
        self.models: dict[str, FileModel] = {}
        self.fn_stack: list[FunctionInfo | None] = []
        self.record_stack: list[ClassInfo | None] = []
        self.ns_stack: list[str] = []

    # -- location state ----------------------------------------------------

    def _update_loc(self, loc: dict) -> tuple[str, int]:
        if "expansionLoc" in loc or "spellingLoc" in loc:
            # Replay both sides in serialization order; report expansion.
            result = (self.file, self.line)
            for key, obj in loc.items():
                if key in ("spellingLoc", "expansionLoc") and \
                        isinstance(obj, dict):
                    updated = self._update_loc(obj)
                    if key == "expansionLoc":
                        result = updated
            return result
        if "file" in loc:
            self.file = loc["file"]
        if "line" in loc:
            self.line = loc["line"]
        return (self.file, self.line)

    def _rel(self, path: str) -> str | None:
        p = Path(path)
        if not p.is_absolute():
            p = (self.root / p)
        try:
            rel = p.resolve().relative_to(self.root)
        except ValueError:
            return None
        return rel.as_posix()

    def _model_for(self, path: str) -> FileModel | None:
        rel = self._rel(path)
        if rel is None:
            return None
        if rel not in self.models:
            self.models[rel] = FileModel(path=rel)
        return self.models[rel]

    # -- traversal ---------------------------------------------------------

    def walk(self, node) -> None:
        if isinstance(node, list):
            for item in node:
                self.walk(item)
            return
        if not isinstance(node, dict):
            return
        if "kind" not in node and ("file" in node or "line" in node
                                   or "offset" in node
                                   or "spellingLoc" in node):
            self._update_loc(node)
            return
        kind = node.get("kind", "")
        node_loc: tuple[str, int] | None = None
        entered = False
        pushed_fn = pushed_record = pushed_ns = False

        # Replay keys in document order so differential state stays true;
        # semantic handling happens once, right before descending into
        # children (or at the end for leaf decls).
        for key, value in node.items():
            if key == "loc" and isinstance(value, dict):
                node_loc = self._update_loc(value)
                continue
            if key == "range" and isinstance(value, dict):
                begin = value.get("begin")
                if isinstance(begin, dict):
                    updated = self._update_loc(begin)
                    if node_loc is None:
                        node_loc = updated
                end = value.get("end")
                if isinstance(end, dict):
                    self._update_loc(end)
                continue
            if key == "inner":
                if not entered:
                    entered = True
                    pushed_fn, pushed_record, pushed_ns = \
                        self._enter(kind, node, node_loc)
                self.walk(value)
                continue
            self.walk(value)
        if not entered:
            pushed_fn, pushed_record, pushed_ns = \
                self._enter(kind, node, node_loc)
        self._leave(pushed_fn, pushed_record, pushed_ns)

    # -- semantic handlers -------------------------------------------------

    def _enter(self, kind: str, node: dict,
               loc: tuple[str, int] | None) -> tuple[bool, bool, bool]:
        file, line = loc if loc else (self.file, self.line)
        fn = self.fn_stack[-1] if self.fn_stack else None

        if kind == "NamespaceDecl":
            self.ns_stack.append(node.get("name", ""))
            return (False, False, True)

        if kind == "CXXRecordDecl" and node.get("name"):
            cls = None
            if node.get("completeDefinition"):
                cls = ClassInfo(name=node["name"], file=file or "",
                                line=line)
                for base in node.get("bases", []):
                    qual = base.get("type", {}).get("qualType", "")
                    name = last_name(qual)
                    if name:
                        cls.bases.append(name)
                model = self._model_for(file) if file else None
                if model is not None:
                    model.classes.append(cls)
            self.record_stack.append(cls)
            return (False, True, False)

        if kind in FUNC_KINDS:
            record = self.record_stack[-1] if self.record_stack else None
            has_body = any(isinstance(c, dict)
                           and c.get("kind") == "CompoundStmt"
                           for c in node.get("inner", []))
            name = node.get("name", "")
            if record is not None and name and not self.fn_stack \
                    and not node.get("isImplicit"):
                record.methods.append(name)
                # "virtual" reflects isVirtual(): spelled virt-specifiers
                # and inherited overrides alike.
                if node.get("virtual"):
                    record.virtual_methods.append(name)
            if name and (has_body or not self.fn_stack):
                qual_parts = [p for p in self.ns_stack if p]
                if record is not None:
                    qual_parts.append(record.name)
                qual_parts.append(name)
                info = FunctionInfo(
                    name=name, qualname="::".join(qual_parts),
                    file=file or "", line=line,
                    class_name=record.name if record is not None else "")
                if has_body:
                    model = self._model_for(file) if file else None
                    if model is not None:
                        model.functions.append(info)
                    self.fn_stack.append(info)
                    return (True, False, False)
            return (False, False, False)

        if kind == "ParmVarDecl" and self.fn_stack and self.fn_stack[-1]:
            qual = node.get("type", {}).get("qualType", "")
            self.fn_stack[-1].params.append(
                Param(name=node.get("name", ""),
                      type_text=qual))
            return (False, False, False)

        if kind == "VarDecl":
            qual = node.get("type", {}).get("qualType", "")
            storage = node.get("storageClass", "")
            if fn is not None and storage == "static":
                fn.static_locals.append(StaticLocal(
                    name=node.get("name", ""), type_text=qual, line=line,
                    is_const="const" in qual.split()
                    or qual.startswith("const ")))
            elif fn is not None and node.get("name"):
                # Typed local declaration: used by the rules to resolve
                # member-call receivers (locals shadow params and fields).
                fn.locals.append(
                    Param(name=node["name"], type_text=qual))
            elif fn is None and not self.fn_stack and \
                    not self.record_stack and storage != "extern" and \
                    node.get("name"):
                model = self._model_for(file) if file else None
                if model is not None:
                    model.globals.append(GlobalVar(
                        name=node["name"], type_text=qual,
                        file=model.path, line=line,
                        is_const="const" in qual.replace("&", " ").split()
                        or "constexpr" in str(node.get("constexpr", ""))))
            return (False, False, False)

        if kind == "FieldDecl" and self.record_stack and self.record_stack[-1]:
            qual = node.get("type", {}).get("qualType", "")
            self.record_stack[-1].fields.append(FieldInfo(
                name=node.get("name", ""), type_text=qual, line=line))
            return (False, False, False)

        if fn is None:
            return (False, False, False)

        if kind == "DeclRefExpr":
            ref = node.get("referencedDecl", {})
            if isinstance(ref, dict) and ref.get("kind") in FUNC_KINDS:
                fn.calls.append(CallSite(callee=ref.get("name", ""),
                                         line=line))
        elif kind == "MemberExpr":
            name = node.get("name", "")
            if name:
                fn.member_calls.append(MemberCallSite(
                    obj=_member_base_name(node), method=name, line=line))
        elif kind == "CXXConstructExpr":
            qual = node.get("type", {}).get("qualType", "")
            type_name = last_name(qual)
            if type_name == "Rng" and "&" not in qual:
                fn.constructions.append(Construction(type_name="Rng",
                                                     line=line))
            elif type_name in LOCK_GUARD_TYPES:
                fn.constructions.append(Construction(type_name=type_name,
                                                     line=line))
        elif kind == "CXXNewExpr":
            fn.new_lines.append(line)
        elif kind == "ForStmt":
            # Per-port induction loop: a DeclStmt in the for-init declaring
            # a PortId.  Range-fors are CXXForRangeStmt and never match.
            for child in node.get("inner", []):
                if not isinstance(child, dict) or \
                        child.get("kind") != "DeclStmt":
                    continue
                for sub in child.get("inner", []):
                    if isinstance(sub, dict) \
                            and sub.get("kind") == "VarDecl" \
                            and "PortId" in sub.get("type", {}).get(
                                "qualType", ""):
                        fn.port_loop_lines.append(line)
                        break
        elif kind == "CXXThrowExpr":
            inner = node.get("inner")
            type_name = ""
            if inner:
                qual = (inner[0].get("type", {}) or {}).get("qualType", "")
                type_name = last_name(qual)
            fn.throws.append(ThrowSite(type_name=type_name, line=line))
        elif kind == "CXXConstCastExpr":
            fn.const_cast_lines.append(line)
        return (False, False, False)

    def _leave(self, pushed_fn: bool, pushed_record: bool,
               pushed_ns: bool) -> None:
        if pushed_fn:
            self.fn_stack.pop()
        if pushed_record:
            self.record_stack.pop()
        if pushed_ns:
            self.ns_stack.pop()


# ---------------------------------------------------------------------------


def _strip_compile_args(entry: dict) -> list[str]:
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        args = shlex.split(entry.get("command", ""))
    out: list[str] = []
    skip_next = False
    for arg in args[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-c", "-S", "-E", "--analyze"):
            continue
        if arg in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if arg.startswith("-o") and len(arg) > 2:
            continue
        if arg in ("-MD", "-MMD", "-fcolor-diagnostics"):
            continue
        out.append(arg)
    return out


def _headers_hash(root: Path) -> str:
    sha = hashlib.sha256()
    for sub in ("src", "tools/analyzer/fixtures"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.hpp")):
            sha.update(path.as_posix().encode())
            sha.update(path.read_bytes())
    return sha.hexdigest()


def analyzer_sources_hash() -> str:
    """Hash of the analyzer's own sources (rules, frontends, model, driver).

    Part of every cache key: cached IR derivations must not outlive the
    code that produced them — an edit to rules.py or a frontend would
    otherwise keep serving findings derived by the old analyzer.
    """
    sha = hashlib.sha256()
    here = Path(__file__).resolve().parent
    for path in sorted(here.glob("*.py")):
        sha.update(path.name.encode())
        sha.update(path.read_bytes())
    return sha.hexdigest()


def cache_key(args: list[str], source_bytes: bytes, headers_hash: str,
              analyzer_hash: str) -> str:
    """Cache key for one TU derivation: the IR is a pure function of the
    source, the headers, the compile command, the IR format version AND
    the analyzer sources that lowered it."""
    sha = hashlib.sha256()
    sha.update(CACHE_VERSION.encode())
    sha.update(analyzer_hash.encode())
    sha.update(headers_hash.encode())
    sha.update("\0".join(args).encode())
    sha.update(source_bytes)
    return sha.hexdigest()


def _model_to_json(models: dict[str, FileModel]) -> str:
    return json.dumps({p: dataclasses.asdict(m) for p, m in models.items()})


def _model_from_json(text: str) -> dict[str, FileModel]:
    raw = json.loads(text)
    models: dict[str, FileModel] = {}
    for path, data in raw.items():
        model = FileModel(path=path)
        for f in data["functions"]:
            model.functions.append(FunctionInfo(
                name=f["name"], qualname=f["qualname"], file=f["file"],
                line=f["line"], class_name=f["class_name"],
                params=[Param(**p) for p in f["params"]],
                locals=[Param(**p) for p in f.get("locals", [])],
                calls=[CallSite(**c) for c in f["calls"]],
                member_calls=[MemberCallSite(**m) for m in f["member_calls"]],
                throws=[ThrowSite(**t) for t in f["throws"]],
                static_locals=[StaticLocal(**s) for s in f["static_locals"]],
                constructions=[Construction(**c) for c in f["constructions"]],
                const_cast_lines=list(f["const_cast_lines"]),
                new_lines=list(f["new_lines"]),
                port_loop_lines=list(f["port_loop_lines"])))
        for c in data["classes"]:
            model.classes.append(ClassInfo(
                name=c["name"], file=c["file"], line=c["line"],
                bases=list(c["bases"]),
                fields=[FieldInfo(**fd) for fd in c["fields"]],
                methods=list(c["methods"]),
                virtual_methods=list(c["virtual_methods"])))
        for g in data["globals"]:
            model.globals.append(GlobalVar(**g))
        models[path] = model
    return models


def parse_tu(clang: str, entry: dict, root: Path,
             cache_dir: Path | None,
             headers_hash: str | None = None,
             analyzer_hash: str | None = None) -> dict[str, FileModel]:
    """Parse one compile_commands.json entry; returns FileModels for every
    repo file the TU touches.  Raises FrontendError on any failure."""
    source = Path(entry["file"])
    if not source.is_absolute():
        source = Path(entry.get("directory", ".")) / source
    try:
        source_bytes = source.read_bytes()
    except OSError as err:
        raise FrontendError(f"cannot read {source}: {err}") from err

    args = _strip_compile_args(entry)
    cache_path = None
    if cache_dir is not None:
        if headers_hash is None:
            headers_hash = _headers_hash(root)
        if analyzer_hash is None:
            analyzer_hash = analyzer_sources_hash()
        digest = cache_key(args, source_bytes, headers_hash, analyzer_hash)
        cache_path = cache_dir / f"{source.stem}-{digest[:24]}.json"
        if cache_path.is_file():
            try:
                return _model_from_json(cache_path.read_text())
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                pass  # stale/corrupt cache entry: re-derive below

    cmd = [clang, *args, "-fsyntax-only", "-Xclang", "-ast-dump=json",
           "-Wno-everything"]
    try:
        proc = subprocess.run(
            cmd, cwd=entry.get("directory", str(root)),
            capture_output=True, text=True, timeout=600, check=False)
    except (OSError, subprocess.TimeoutExpired) as err:
        raise FrontendError(f"clang failed on {source.name}: {err}") from err
    if proc.returncode != 0 or not proc.stdout.strip():
        detail = proc.stderr.strip().splitlines()[:3]
        raise FrontendError(
            f"clang rc={proc.returncode} on {source.name}: {detail}")
    try:
        ast = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        raise FrontendError(f"bad AST JSON for {source.name}: {err}") from err

    walker = _Walker(root=root.resolve(), main_file=str(source))
    try:
        walker.walk(ast)
    except RecursionError as err:
        raise FrontendError(f"AST too deep for {source.name}") from err

    if cache_path is not None:
        try:
            cache_dir.mkdir(parents=True, exist_ok=True)
            cache_path.write_text(_model_to_json(walker.models))
        except OSError:
            pass  # cache is best-effort
    return walker.models
