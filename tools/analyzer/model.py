"""Semantic model shared by the analyzer's frontends and rules.

Both frontends — the Clang JSON-AST frontend and the internal
tokenizer-based fallback — lower C++ translation units into the same
small intermediate representation: functions with their parameters,
call sites, throw sites, object constructions and static locals;
classes with their base lists and fields; namespace-scope variables.
The rules (rules.py) operate only on this IR, so they behave
identically whichever frontend produced it.

Paths in the IR are repo-root-relative with forward slashes; that is
what rule scoping (e.g. "src/sched/") and finding output use.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Param:
    name: str
    type_text: str  # normalized single-space type spelling


@dataclass
class CallSite:
    callee: str  # unqualified callee name
    line: int
    qualifier: str = ""  # explicit qualifier if spelled (e.g. "PortSet")


@dataclass
class MemberCallSite:
    obj: str  # spelled object expression (best effort, may be "")
    method: str
    line: int


@dataclass
class ThrowSite:
    type_name: str  # thrown type, last component ("FaultError"); "" = rethrow
    line: int


@dataclass
class StaticLocal:
    name: str
    type_text: str
    line: int
    is_const: bool


@dataclass
class Construction:
    type_name: str  # last component of the constructed type
    line: int


@dataclass
class FunctionInfo:
    name: str  # unqualified name
    qualname: str  # Class::name or namespace-qualified best effort
    file: str
    line: int
    class_name: str = ""  # enclosing class for methods, "" otherwise
    params: list[Param] = field(default_factory=list)
    locals: list[Param] = field(default_factory=list)  # typed local decls
    calls: list[CallSite] = field(default_factory=list)
    member_calls: list[MemberCallSite] = field(default_factory=list)
    throws: list[ThrowSite] = field(default_factory=list)
    static_locals: list[StaticLocal] = field(default_factory=list)
    constructions: list[Construction] = field(default_factory=list)
    const_cast_lines: list[int] = field(default_factory=list)
    new_lines: list[int] = field(default_factory=list)  # new-expressions
    port_loop_lines: list[int] = field(default_factory=list)  # for (PortId i = …)

    def key(self) -> tuple[str, int, str]:
        return (self.file, self.line, self.qualname)

    def has_param_of(self, type_fragment: str) -> bool:
        return any(type_fragment in p.type_text for p in self.params)


@dataclass
class FieldInfo:
    name: str
    type_text: str
    line: int


@dataclass
class ClassInfo:
    name: str  # unqualified
    file: str
    line: int
    bases: list[str] = field(default_factory=list)  # unqualified base names
    fields: list[FieldInfo] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)  # declared in the class body
    virtual_methods: list[str] = field(default_factory=list)  # declared virtual/override

    def key(self) -> tuple[str, int, str]:
        return (self.file, self.line, self.name)


@dataclass
class GlobalVar:
    name: str
    type_text: str
    file: str
    line: int
    is_const: bool


@dataclass
class FileModel:
    path: str  # repo-relative, forward slashes
    functions: list[FunctionInfo] = field(default_factory=list)
    classes: list[ClassInfo] = field(default_factory=list)
    globals: list[GlobalVar] = field(default_factory=list)


class ProjectModel:
    """Merged view over every analyzed file, deduplicated.

    Headers are seen once per including TU by the Clang frontend, so
    every add_* deduplicates on (file, line, name).
    """

    def __init__(self) -> None:
        self.functions: dict[tuple[str, int, str], FunctionInfo] = {}
        self.classes: dict[tuple[str, int, str], ClassInfo] = {}
        self.globals: dict[tuple[str, int, str], GlobalVar] = {}

    def merge(self, file_model: FileModel) -> None:
        def fn_richness(fn: FunctionInfo) -> int:
            return (len(fn.calls) + len(fn.throws) + len(fn.new_lines)
                    + len(fn.port_loop_lines) + len(fn.locals))

        for fn in file_model.functions:
            existing = self.functions.get(fn.key())
            # Prefer the richer model (a definition over a declaration).
            if existing is None or fn_richness(fn) > fn_richness(existing):
                self.functions[fn.key()] = fn
        def cls_richness(cls: ClassInfo) -> int:
            return (len(cls.bases) + len(cls.fields) + len(cls.methods)
                    + len(cls.virtual_methods))

        for cls in file_model.classes:
            existing = self.classes.get(cls.key())
            if existing is None or cls_richness(cls) > cls_richness(existing):
                self.classes[cls.key()] = cls
        for var in file_model.globals:
            self.globals.setdefault((var.file, var.line, var.name), var)

    # ---- Derived indexes (built lazily by the rules) ---------------------

    def functions_by_name(self) -> dict[str, list[FunctionInfo]]:
        index: dict[str, list[FunctionInfo]] = {}
        for fn in self.functions.values():
            index.setdefault(fn.name, []).append(fn)
        return index

    def subclasses_of(self, root: str) -> set[str]:
        """Unqualified names of `root` plus every transitive subclass."""
        children: dict[str, set[str]] = {}
        for cls in self.classes.values():
            for base in cls.bases:
                children.setdefault(base, set()).add(cls.name)
        family = {root}
        frontier = [root]
        while frontier:
            for sub in children.get(frontier.pop(), ()):  # noqa: B909
                if sub not in family:
                    family.add(sub)
                    frontier.append(sub)
        return family


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule)
