// Minimal stand-ins for the project types the analyzer rules reason
// about.  The fixtures compile against these under the clang frontend;
// the internal frontend never parses this header (it sits outside the
// fixtures' src/ scan root), which is deliberate: rules must work from
// the names and base lists spelled at the use sites.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace fifoms {

using PortId = int;
inline constexpr PortId kNoPort = -1;

class PortSet {
 public:
  void insert(PortId p) { bits_ |= 1ULL << p; }
  void erase(PortId p) { bits_ &= ~(1ULL << p); }
  bool contains(PortId p) const { return (bits_ >> p) & 1ULL; }
  bool empty() const { return bits_ == 0; }
  std::uint64_t word() const { return bits_; }

 private:
  std::uint64_t bits_ = 0;
};

class Mutex {
 public:
  void lock() {}
  void unlock() {}
  bool try_lock() { return true; }
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

class CondVar {
 public:
  void wait(MutexLock&) {}
  void notify_one() {}
};

// The one class allowed to allocate on the hot path (warm-up only).
class ScratchArena {
 public:
  void refill() { storage_ = new char[64]; }

 private:
  char* storage_ = nullptr;
};

// Pure-virtual delivery seam: `deliver` has no non-virtual homonym
// anywhere in the fixture corpus, so calls through it are statically
// known to dispatch.
class CellSink {
 public:
  virtual ~CellSink() = default;
  virtual void deliver(PortId output) = 0;
};

// Ambiguity control: `forward` is virtual here but non-virtual on
// WordPipe below, so a `.forward()` call could be either — the
// analyzer must not report dispatch it cannot prove.
class VirtualPipe {
 public:
  virtual ~VirtualPipe() = default;
  virtual void forward(PortId p) = 0;
};

class WordPipe {
 public:
  void forward(PortId) {}
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : state_(seed) {}
  std::uint64_t next_u64() { return ++state_; }
  std::uint64_t next_below(std::uint64_t bound) {
    return bound ? next_u64() % bound : 0;
  }
  double next_double() { return 0.0; }
  bool bernoulli(double) { return false; }
  int uniform_int(int lo, int) { return lo; }
  int geometric(double) { return 0; }

 private:
  std::uint64_t state_;
};

class SwitchModel {
 public:
  int num_ports() const { return 4; }
  void drop_cell(int) {}
};

class SlotObserver {
 public:
  virtual ~SlotObserver() = default;
  virtual void on_slot(const SwitchModel&, int) {}
  virtual void on_inject(const SwitchModel&, int) {}
  virtual void on_fault_event(const SwitchModel&, int) {}
};

namespace fault {

class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

class LinkFaultError : public FaultError {
 public:
  using FaultError::FaultError;
};

}  // namespace fault
}  // namespace fifoms
