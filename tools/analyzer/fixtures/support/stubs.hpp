// Minimal stand-ins for the project types the analyzer rules reason
// about.  The fixtures compile against these under the clang frontend;
// the internal frontend never parses this header (it sits outside the
// fixtures' src/ scan root), which is deliberate: rules must work from
// the names and base lists spelled at the use sites.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace fifoms {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : state_(seed) {}
  std::uint64_t next_u64() { return ++state_; }
  std::uint64_t next_below(std::uint64_t bound) {
    return bound ? next_u64() % bound : 0;
  }
  double next_double() { return 0.0; }
  bool bernoulli(double) { return false; }
  int uniform_int(int lo, int) { return lo; }
  int geometric(double) { return 0; }

 private:
  std::uint64_t state_;
};

class SwitchModel {
 public:
  int num_ports() const { return 4; }
  void drop_cell(int) {}
};

class SlotObserver {
 public:
  virtual ~SlotObserver() = default;
  virtual void on_slot(const SwitchModel&, int) {}
  virtual void on_inject(const SwitchModel&, int) {}
  virtual void on_fault_event(const SwitchModel&, int) {}
};

namespace fault {

class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

class LinkFaultError : public FaultError {
 public:
  using FaultError::FaultError;
};

}  // namespace fault
}  // namespace fifoms
