// fault-path-exception-discipline: throws reachable from the fault
// layer must be FaultError subclasses.  Covers a direct bad throw, a
// clean FaultError/subclass throw, a rethrow (no static type — clean),
// a suppressed legacy throw, and a transitive reach into a helper
// defined in another file (src/common/token_helper.cpp).
#include "support/stubs.hpp"

#include <stdexcept>
#include <string>

namespace fifoms {

int parse_port_token(const std::string& token);

namespace fault {

void validate_plan(int num_ports) {
  if (num_ports <= 0) {
    throw FaultError("plan needs at least one port");  // clean
  }
}

void mark_link_down(int port) {
  if (port < 0) {
    throw LinkFaultError("negative port");  // clean: FaultError subclass
  }
}

void apply_event(int port, int num_ports) {
  if (port >= num_ports) {
    throw std::out_of_range("event port outside the fabric");  // BAD
  }
}

void load_plan(const std::string& text) {
  int port = parse_port_token(text);
  validate_plan(port);
  mark_link_down(port);
  apply_event(port, port + 1);
}

void reraise_current() {
  try {
    validate_plan(0);
  } catch (...) {
    throw;  // clean: rethrow keeps the origin's type
  }
}

void legacy_guard(int n) {
  if (n < 0) {
    // fifoms-analyze: allow(fault-path-exception-discipline)
    throw std::runtime_error("legacy path");  // suppressed
  }
}

}  // namespace fault
}  // namespace fifoms
