// Hot-path discipline corpus: every hot-path rule exercised positively,
// suppressed, and with a clean control, plus the resolution boundaries
// (typed receivers, the ScratchArena exemption, the observer seam, the
// ambiguous-virtual control).  Golden line numbers live in golden.txt.
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "support/stubs.hpp"

namespace fifoms {

// ---- Reachable helpers (positives fire transitively) ----------------------

void spill_row(std::vector<int>& row) {
  row.push_back(7);  // hot-path-no-alloc: growth on a std:: receiver
}

void audit_row(int num_ports, const PortSet& row) {
  for (PortId p = 0; p < num_ports; ++p) {  // hot-path-no-port-loop
    if (row.contains(p)) continue;
  }
}

void fail_row(int width) {
  if (width < 0) throw std::runtime_error("bad width");  // hot-path-no-throw
}

class TransmitUnit {
 public:
  void bind(CellSink* sink) { sink_ = sink; }

  // fifoms-analyze: hot-path-root
  void pulse(PortId output) {
    staging_ = new char[16];  // hot-path-no-alloc: new-expression
    void* raw = std::malloc(8);  // hot-path-no-alloc: malloc family
    mu_.lock();  // hot-path-no-lock: direct acquisition
    cv_.notify_one();  // clean: notify is not an acquisition
    {
      MutexLock guard(mu_);  // hot-path-no-lock: scoped guard
    }
    sink_->deliver(output);  // hot-path-no-virtual: unsanctioned seam
    spill_row(scratch_);     // transitively reaches the growth above
    audit_row(4, occupied_);  // transitively reaches the port loop
    fail_row(-1);             // transitively reaches the throw
    static_cast<void>(raw);
  }

  // Suppressed twins: each allow() names the rule it silences; the
  // self-test would report any of these as UNEXPECTED if the
  // suppression grammar regressed.
  // fifoms-analyze: hot-path-root
  void pulse_suppressed(PortId output) {
    // fifoms-analyze: allow(hot-path-no-alloc)
    staging_ = new char[16];
    mu_.lock();  // fifoms-analyze: allow(hot-path-no-lock)
    // fifoms-analyze: allow(hot-path-no-virtual)
    sink_->deliver(output);
    // fifoms-analyze: allow(hot-path-no-throw)
    if (output < 0) throw std::runtime_error("bad output");
    // fifoms-analyze: allow(hot-path-no-port-loop)
    for (PortId p = 0; p < 4; ++p) occupied_.erase(p);
  }

  // Clean control: word-parallel work, typed project receivers, the
  // sanctioned observer seam and the ScratchArena exemption — none of
  // it may produce a finding.
  // fifoms-analyze: hot-path-root
  void pulse_clean(SlotObserver& observer, const SwitchModel& model) {
    occupied_.insert(2);            // resolves into PortSet: no growth flag
    rows_[1].insert(3);             // subscripted receiver typed the same way
    arena_.refill();                // ScratchArena may allocate
    observer.on_slot(model, 1);     // sanctioned virtual seam
    pipe_.forward(0);               // ambiguous-virtual control: not provable
    const std::uint64_t live = occupied_.word() & rows_[0].word();
    static_cast<void>(live);
  }

 private:
  CellSink* sink_ = nullptr;
  Mutex mu_;
  CondVar cv_;
  ScratchArena arena_;
  WordPipe pipe_;
  PortSet occupied_;
  PortSet rows_[2];
  std::vector<int> scratch_;
  char* staging_ = nullptr;
};

// Boundary control: the implementation behind the CellSink seam is NOT
// walked (dispatch targets are unknowable), so its allocation must stay
// unreported until someone tags the implementation as a root.
class DroppingSink : public CellSink {
 public:
  void deliver(PortId) override {
    log_.push_back(1);  // unreachable by analysis: behind the seam
  }

 private:
  std::vector<int> log_;
};

}  // namespace fifoms
