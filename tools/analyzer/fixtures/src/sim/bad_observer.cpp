// observer-purity: const_cast in SlotObserver hook overrides and in
// helpers the hook calls; a suppressed variant; a clean observer that
// only reads the model and mutates its own members.
#include "support/stubs.hpp"

namespace fifoms {

class MutatingTracer : public SlotObserver {
 public:
  void on_slot(const SwitchModel& model, int slot) override {
    auto& writable = const_cast<SwitchModel&>(model);  // BAD
    writable.drop_cell(slot);
  }
};

class IndirectTracer : public SlotObserver {
 public:
  void on_inject(const SwitchModel& model, int cell) override {
    scrub(model, cell);
  }

 private:
  void scrub(const SwitchModel& model, int cell) {
    const_cast<SwitchModel&>(model).drop_cell(cell);  // BAD via on_inject
  }
};

class PatchedTracer : public SlotObserver {
 public:
  void on_fault_event(const SwitchModel& model, int port) override {
    // fifoms-analyze: allow(observer-purity)
    const_cast<SwitchModel&>(model).drop_cell(port);  // suppressed
  }
};

class CountingTracer : public SlotObserver {
 public:
  void on_slot(const SwitchModel& model, int slot) override {
    seen_ += slot + model.num_ports();  // clean: reads model, owns seen_
  }

 private:
  long seen_ = 0;
};

}  // namespace fifoms
