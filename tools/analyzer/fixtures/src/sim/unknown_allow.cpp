// unknown-suppression: allow() must name a real analyzer rule.  A typo
// would otherwise silently disable nothing while looking authoritative.
#include "support/stubs.hpp"

namespace fifoms {

// fifoms-analyze: allow(not-a-rule)
int observer_count() { return 0; }

int hook_count() { return 3; }  // fifoms-analyze: allow(observer-puritty)

}  // namespace fifoms
