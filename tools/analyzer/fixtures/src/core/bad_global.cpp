// determinism-dataflow: mutable namespace-scope state, plus the
// suppression-placement edge cases — an allow() two lines above the
// finding is too far away and must not silence it.
#include "support/stubs.hpp"

#include <cstdint>

namespace fifoms {

int g_retry_budget = 3;  // BAD: mutable global

const int kMaxPorts = 64;  // clean: const

// fifoms-analyze: allow(determinism-dataflow)

std::uint64_t g_slot_count = 0;  // BAD: the allow() above is too far away

namespace {
int g_quarantine_count = 0;  // fifoms-analyze: allow(determinism-dataflow)
}  // namespace

int bump_quarantine() { return ++g_quarantine_count + g_retry_budget; }

}  // namespace fifoms
