// fault-path-exception-discipline covers the snapshot/recovery engine
// too: SnapshotError (a FaultError subclass) is the only legal failure
// currency there, so the RecoveryRunner can classify a torn or corrupt
// checkpoint and fall back instead of dying with it.  Covers a clean
// SnapshotError throw, a bad std:: throw, and a transitive reach into
// a same-file helper.
#include "support/stubs.hpp"

#include <cstddef>
#include <stdexcept>

namespace fifoms {
namespace snapshot {

class SnapshotError : public fault::FaultError {
 public:
  using fault::FaultError::FaultError;
};

void check_magic(bool ok) {
  if (!ok) {
    throw SnapshotError("bad frame magic");  // clean: FaultError subclass
  }
}

void check_payload_length(std::size_t got, std::size_t want) {
  if (got != want) {
    throw std::length_error("frame payload length mismatch");  // BAD
  }
}

void decode_header(std::size_t size) {
  check_magic(size >= 36);
  check_payload_length(size - 36, size);
}

// Regression guard: an identifier that merely starts with "throw" must
// not parse as a throw-expression of type `_io`.
[[noreturn]] void throw_io(const char* what) {
  throw SnapshotError(what);  // clean
}

void open_or_die(bool ok) {
  if (!ok) throw_io("cannot open checkpoint");  // a call, not a throw
}

}  // namespace snapshot
}  // namespace fifoms
