// determinism-dataflow: a fully clean decision-path file — the
// self-test fails if the analyzer reports anything here.
#include "support/stubs.hpp"

#include <cstdint>

namespace fifoms {

const int kRoundLimit = 8;

int pick_winner(Rng& rng, int contenders) {
  if (contenders <= 0) {
    return -1;
  }
  return static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(contenders)));
}

int bounded_rounds(int requested) {
  return requested < kRoundLimit ? requested : kRoundLimit;
}

bool coin_flip(Rng& rng, double bias) { return rng.bernoulli(bias); }

}  // namespace fifoms
