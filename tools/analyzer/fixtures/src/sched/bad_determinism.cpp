// determinism-dataflow: positive cases (plus a suppressed one and two
// clean controls).  Golden findings reference exact lines — keep each
// construct on its own line.
#include "support/stubs.hpp"

#include <cstdint>

namespace fifoms {

std::uint64_t stale_counter_next() {
  static std::uint64_t counter = 0;  // BAD: hidden mutable state
  return ++counter;
}

std::uint64_t cached_limit() {
  static const std::uint64_t limit = 64;  // clean: immutable
  return limit;
}

std::uint64_t hidden_stream_draw() {
  Rng local(7);  // BAD: function-local stream
  return local.next_u64();  // BAD: draw without an Rng parameter
}

std::uint64_t seeded_draw(Rng& rng) {
  return rng.next_u64();  // clean: stream flows in as a parameter
}

struct JitterSource {
  Rng dice;  // BAD: value-held stream
  std::uint64_t sample() { return dice.next_u64(); }  // BAD: no Rng param
};

std::uint64_t quarantined_draw() {
  static std::uint64_t epoch = 1;  // fifoms-analyze: allow(determinism-dataflow)
  return epoch;
}

}  // namespace fifoms
