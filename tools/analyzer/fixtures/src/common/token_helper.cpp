// Transitive target for fault-path-exception-discipline: this file is
// outside src/fault/, but parse_port_token() is called from
// fault::load_plan(), so its std::invalid_argument throw is reachable
// from the fault layer and must be flagged.  unreferenced_parse() is
// NOT reachable from any fault entry — flagging it would mean the rule
// lost its reachability analysis.
#include "support/stubs.hpp"

#include <stdexcept>
#include <string>

namespace fifoms {

int parse_port_token(const std::string& token) {
  if (token.empty()) {
    throw std::invalid_argument("empty port token");  // BAD via load_plan
  }
  return static_cast<int>(token.size());
}

int unreferenced_parse(const std::string& token) {
  if (token.size() > 8) {
    throw std::length_error("token too long");  // clean: unreachable
  }
  return 0;
}

}  // namespace fifoms
