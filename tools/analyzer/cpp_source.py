"""Lexical preprocessing for the internal C++ frontend.

sanitize() blanks out everything that is not code structure — comments,
string/char literal contents (raw strings included) and preprocessor
directives — while preserving the exact line/column layout, so that the
scanner in internal_frontend.py can match braces and regexes without
being fooled by `{` inside a string or a multi-line macro definition.
"""

from __future__ import annotations

import re

_RAW_OPEN = re.compile(r'R"([^\s()\\]{0,16})\(')


def sanitize(text: str) -> str:
    out = list(text)
    n = len(text)
    i = 0

    def blank(start: int, end: int) -> None:
        for k in range(start, min(end, n)):
            if out[k] != "\n":
                out[k] = " "

    state = "code"
    line_start = True  # at start of a (logical) line: directives begin here
    while i < n:
        ch = text[i]
        if state == "code":
            if line_start and ch == "#":
                # Preprocessor directive, including backslash continuations.
                start = i
                while i < n:
                    eol = text.find("\n", i)
                    if eol == -1:
                        i = n
                        break
                    if text[eol - 1] == "\\" if eol > 0 else False:
                        i = eol + 1
                        continue
                    i = eol
                    break
                blank(start, i)
                continue
            if ch == "/" and i + 1 < n and text[i + 1] == "/":
                eol = text.find("\n", i)
                eol = n if eol == -1 else eol
                blank(i, eol)
                i = eol
                continue
            if ch == "/" and i + 1 < n and text[i + 1] == "*":
                end = text.find("*/", i + 2)
                end = n if end == -1 else end + 2
                blank(i, end)
                i = end
                continue
            if ch == '"':
                raw = _RAW_OPEN.match(text, i - 1) if i > 0 else None
                if raw and text[i - 1] == "R":
                    close = ")" + raw.group(1) + '"'
                    end = text.find(close, raw.end())
                    end = n if end == -1 else end + len(close)
                    blank(i - 1, end)
                    i = end
                    continue
                j = i + 1
                while j < n and text[j] != '"':
                    j += 2 if text[j] == "\\" else 1
                blank(i + 1, j)
                i = j + 1
                continue
            if ch == "'":
                j = i + 1
                while j < n and text[j] != "'":
                    j += 2 if text[j] == "\\" else 1
                blank(i + 1, j)
                i = j + 1
                continue
            if ch == "\n":
                line_start = True
            elif not ch.isspace():
                line_start = False
            i += 1
        else:  # pragma: no cover - state machine is two-state
            i += 1
    return "".join(out)


def line_of(code: str, pos: int) -> int:
    """1-based line number of character offset `pos`."""
    return code.count("\n", 0, pos) + 1


def last_name(type_text: str) -> str:
    """Last identifier component of a (possibly qualified) type spelling:
    'const fifoms::fault::FaultError &' -> 'FaultError'."""
    text = re.sub(r"<[^<>]*(?:<[^<>]*>[^<>]*)*>", "", type_text)
    names = re.findall(r"[A-Za-z_]\w*", text)
    skip = {"const", "constexpr", "volatile", "struct", "class", "enum",
            "typename", "unsigned", "signed", "long", "short", "int",
            "char", "bool", "void", "auto", "inline", "static", "mutable"}
    for name in reversed(names):
        if name not in skip:
            return name
    return names[-1] if names else ""
