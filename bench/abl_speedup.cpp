// Ablation A6: CIOQ fabric speedup.
//
// The paper positions the OQ switch (speedup N) as the unreachable upper
// bound for the pure input-queued FIFOMS switch (speedup 1).  This bench
// sweeps the middle: FIFOMS at speedup 1, 2 and 4 against OQFIFO, under
// the bursty traffic of Fig. 8 where the IQ/OQ gap is widest.  Expected:
// speedup 2 closes most of the delay gap; the returns vanish quickly —
// the classical CIOQ result, and evidence that FIFOMS at speedup 1 is
// already close to the achievable frontier.
#include <memory>

#include "bench_common.hpp"
#include "traffic/burst.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const double b = 0.5;
  const double e_on = 16.0;

  auto args = bench::parse_args(
      argc, argv, "abl_speedup",
      "ablation: CIOQ speedup 1/2/4 vs OQFIFO (burst b=0.5, Eon=16)",
      {0.2, 0.3, 0.4, 0.5, 0.6, 0.7});
  if (!args.parsed_ok) return 1;

  const int ports = args.sweep.num_ports;
  const auto points = run_sweep(
      args.sweep,
      {make_fifoms(), make_cioq_fifoms(2), make_cioq_fifoms(4),
       make_oqfifo()},
      [ports, b, e_on](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<BurstTraffic>(
            ports, BurstTraffic::e_off_for_load(load, e_on, b, ports), e_on,
            b);
      });
  bench::emit("Ablation A6 — CIOQ speedup", args, points);
  return 0;
}
