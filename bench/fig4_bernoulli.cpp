// Fig. 4 reproduction: 16x16 switch under Bernoulli multicast traffic
// with b = 0.2, sweeping the effective load p*b*N.
//
// Paper series: average input-oriented delay, average output-oriented
// delay, average queue size and maximum queue size for FIFOMS, TATRA,
// iSLIP and OQFIFO.  Expected shape: FIFOMS tracks OQFIFO on both delays
// and has the smallest queues; TATRA destabilises beyond ~0.8; iSLIP's
// delay is far larger and it saturates early (it serialises fanout).
#include <memory>

#include "bench_common.hpp"
#include "traffic/bernoulli.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const double b = 0.2;

  auto args = bench::parse_args(
      argc, argv, "fig4_bernoulli",
      "paper Fig. 4: Bernoulli multicast traffic, b=0.2",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95});
  if (!args.parsed_ok) return 1;

  const int ports = args.sweep.num_ports;
  const auto points = run_sweep(
      args.sweep, standard_lineup(),
      [ports, b](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<BernoulliTraffic>(
            ports, BernoulliTraffic::p_for_load(load, b, ports), b);
      });
  bench::emit("Fig. 4 — Bernoulli traffic, b=0.2", args, points);
  return 0;
}
