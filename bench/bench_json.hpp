// BENCH-JSON: machine-readable performance records for CI and regression
// tracking.
//
// Schema (fifoms-bench-v1):
//
//   {
//     "schema": "fifoms-bench-v1",
//     "kind": "sched" | "sweep" | "net",
//     "git_sha": "<full sha or 'unknown'>",
//     "threads": <worker threads used>,
//     "records": [
//       { "name": "FIFOMS/16", "ports": 16, "slots": 200000,
//         "wall_seconds": 0.41, "slots_per_sec": 487804.9,
//         "cells_per_sec": 3902439.0 }, ...
//     ]
//   }
//
// `slots_per_sec` is simulated switch slots per wall-clock second (the
// number that determines how long the figure benches take);
// `cells_per_sec` counts cells delivered across the fabric.  The checked
// -in baselines (bench/BENCH_sched.json) feed the micro_sched regression
// guard: warn-only by default because absolute throughput is machine
// -dependent, failing when FIFOMS_BENCH_STRICT=1 is set (see
// docs/BENCHMARKING.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fifoms {
class SwitchModel;
}

namespace fifoms::bench {

struct BenchRecord {
  std::string name;  // e.g. "FIFOMS/16"
  int ports = 0;
  std::int64_t slots = 0;  // simulated slots measured
  double wall_seconds = 0.0;
  double slots_per_sec = 0.0;
  double cells_per_sec = 0.0;  // cells delivered across the fabric
};

struct BenchReport {
  std::string kind;  // "sched", "sweep" or "net"
  int threads = 1;
  std::string git_sha;
  std::vector<BenchRecord> records;
};

/// HEAD commit of the working tree this binary runs in; "unknown" when
/// git or the repository is unavailable (e.g. extracted tarball).
std::string current_git_sha();

std::string bench_report_to_json(const BenchReport& report);
void write_bench_json(const std::string& path, const BenchReport& report);

/// Drive `sw` under backlogged Bernoulli multicast (80% offered load,
/// 20% multicast fraction — the micro_sched setup) for `slots` slots and
/// time it.  Runs `warmup` unmeasured slots first so the queues reach
/// their operating point before the clock starts.
BenchRecord measure_switch(const std::string& name, SwitchModel& sw,
                           int ports, std::int64_t slots,
                           std::int64_t warmup = 2'000);

/// Time an arbitrary callable; only wall_seconds is filled in — the
/// caller owns name/ports/slots and derives the rates it cares about.
BenchRecord measure_wall(const std::function<void()>& fn);

struct BaselineEntry {
  std::string name;
  double slots_per_sec = 0.0;
};

/// Minimal reader for this writer's own records: returns (name,
/// slots_per_sec) pairs, or an empty vector when the file is missing or
/// not recognisable.  Not a general JSON parser.
std::vector<BaselineEntry> read_bench_baseline(const std::string& path);

struct RegressionReport {
  int compared = 0;     // records with a matching baseline entry
  int regressions = 0;  // records slower than baseline by > tolerance
  std::vector<std::string> messages;  // one human-readable line per record
};

/// Compare `current` against `baseline`: a record regresses when its
/// slots_per_sec drops more than `tolerance` (fraction) below baseline.
RegressionReport check_regressions(const BenchReport& current,
                                   const std::vector<BaselineEntry>& baseline,
                                   double tolerance = 0.15);

}  // namespace fifoms::bench
