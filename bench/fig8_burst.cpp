// Fig. 8 reproduction: 16x16 switch under bursty two-state Markov traffic
// with b = 0.5 and E_on = 16 (as in the paper and in TATRA's original
// evaluation); the load is swept by adjusting E_off.
//
// Expected shape: everyone saturates earlier than under Bernoulli traffic;
// iSLIP saturates so early its delay curve is off the chart; FIFOMS beats
// TATRA on delay but not OQFIFO; FIFOMS keeps the smallest queues.
#include <memory>

#include "bench_common.hpp"
#include "traffic/burst.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const double b = 0.5;
  const double e_on = 16.0;

  auto args = bench::parse_args(
      argc, argv, "fig8_burst",
      "paper Fig. 8: burst traffic, b=0.5, Eon=16",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8});
  if (!args.parsed_ok) return 1;

  const int ports = args.sweep.num_ports;
  const auto points = run_sweep(
      args.sweep, standard_lineup(),
      [ports, b, e_on](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<BurstTraffic>(
            ports, BurstTraffic::e_off_for_load(load, e_on, b, ports), e_on,
            b);
      });
  bench::emit("Fig. 8 — burst traffic, b=0.5, Eon=16", args, points);
  return 0;
}
