// Ablation A2: capped iterative rounds vs run-to-convergence.
//
// FIFOMS converges in at most N rounds but hardware budgets fix the round
// count.  This bench compares FIFOMS with 1, 2 and 4 rounds against full
// convergence under Bernoulli multicast traffic.  Measured: 1 round is
// NOT enough — the capacity loss destabilises the switch at 0.9 load;
// 2 rounds sustain 0.9 with elevated delay; 4 rounds are
// indistinguishable from full convergence at 16 ports.
#include <memory>

#include "bench_common.hpp"
#include "traffic/bernoulli.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const double b = 0.2;

  auto args = bench::parse_args(
      argc, argv, "abl_iterations",
      "ablation: FIFOMS round budget 1/2/4/converge (Bernoulli b=0.2)",
      {0.3, 0.5, 0.7, 0.8, 0.9, 0.95});
  if (!args.parsed_ok) return 1;

  const int ports = args.sweep.num_ports;
  const auto points = run_sweep(
      args.sweep,
      {make_fifoms(1), make_fifoms(2), make_fifoms(4), make_fifoms()},
      [ports, b](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<BernoulliTraffic>(
            ports, BernoulliTraffic::p_for_load(load, b, ports), b);
      });
  bench::emit("Ablation A2 — iteration budget", args, points);
  return 0;
}
