// Fig. 7 reproduction: 16x16 switch under uniform traffic with
// maxFanout = 8 (fanout uniform on {1..8}, destinations a random subset).
//
// Expected shape: FIFOMS has the shortest delays of the input-queued
// algorithms and can beat OQFIFO on buffer occupancy; TATRA does better
// than under Fig. 4 (more Tetris moves) but still saturates first.
#include <memory>

#include "bench_common.hpp"
#include "traffic/uniform_fanout.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const int max_fanout = 8;

  auto args = bench::parse_args(
      argc, argv, "fig7_uniform_mf8",
      "paper Fig. 7: uniform traffic, maxFanout=8",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95});
  if (!args.parsed_ok) return 1;

  const int ports = args.sweep.num_ports;
  const auto points = run_sweep(
      args.sweep, standard_lineup(),
      [ports, max_fanout](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<UniformFanoutTraffic>(
            ports, UniformFanoutTraffic::p_for_load(load, max_fanout),
            max_fanout);
      });
  bench::emit("Fig. 7 — uniform traffic, maxFanout=8", args, points);
  return 0;
}
