// fifoms_replay: re-execute a counterexample bundle (docs/RECOVERY.md).
//
// A bundle is what fifoms_soak's panic hook freezes when an invariant
// audit fails: the run's manifest (scenario, policy, ports, slots, seed,
// injected-defect slot), the newest good checkpoint frame and the trace
// ring's tail.  This tool rebuilds the IDENTICAL harness stack from the
// manifest (via bench/soak_scenarios), restores the checkpoint and steps
// forward — so the defect reproduces deterministically, slots not hours
// from the panic, with the trace tail printed for context.
//
// Exit status: 0 when the replay completes without the defect firing
// (the bundle did not reproduce); the process aborts with the original
// panic diagnostic when it does — which is the expected outcome and what
// the recovery tests assert.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "analysis/auditor.hpp"
#include "common/panic.hpp"
#include "io/cli.hpp"
#include "sim/simulator.hpp"
#include "snapshot/bundle.hpp"
#include "snapshot/observers.hpp"
#include "snapshot/snapshot.hpp"
#include "soak_scenarios.hpp"

namespace {

using namespace fifoms;

/// Same forwarding defect injector as fifoms_soak: replay must rebuild
/// the exact observer chain or the checkpointed observer state would not
/// align.
struct DefectInjector final : SlotObserver {
  SlotTime defect_slot = -1;
  SlotObserver* inner = nullptr;

  void on_inject(const SwitchModel& sw, const Packet& packet) override {
    if (inner != nullptr) inner->on_inject(sw, packet);
  }
  void on_fault_event(SlotTime now, const SwitchModel& sw,
                      const fault::FaultEvent& event) override {
    if (inner != nullptr) inner->on_fault_event(now, sw, event);
  }
  void on_slot(SlotTime now, const SwitchModel& sw,
               const SlotResult& result) override {
    if (inner != nullptr) inner->on_slot(now, sw, result);
    FIFOMS_ASSERT(now != defect_slot,
                  "injected audit defect (--inject-audit-defect)");
  }
  void save_state(snapshot::Writer& out) const override {
    if (inner != nullptr) inner->save_state(out);
  }
  void load_state(snapshot::Reader& in) override {
    if (inner != nullptr) inner->load_state(in);
  }
};

std::int64_t to_int(const std::string& text, const char* what) {
  try {
    return std::stoll(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "fifoms_replay: bad %s in manifest: '%s'\n", what,
                 text.c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("fifoms_replay",
                   "replay a counterexample bundle emitted by a "
                   "fifoms_soak audit panic (docs/RECOVERY.md)");
  parser.add_string("bundle", "", "bundle directory (required)");
  parser.add_int("extra-slots", 0,
                 "keep stepping this many slots past the manifest horizon");
  if (!parser.parse(argc, argv)) return 1;
  const std::string dir = parser.get_string("bundle");
  if (dir.empty()) {
    std::fprintf(stderr, "fifoms_replay: --bundle is required\n");
    parser.print_usage();
    return 1;
  }

  snapshot::ReplayBundle bundle;
  try {
    bundle = snapshot::read_bundle(dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fifoms_replay: cannot read bundle: %s\n", e.what());
    return 1;
  }

  const std::string scenario = bundle.value_or("scenario", "");
  const std::string policy_text = bundle.value_or("policy", "hold");
  const int ports =
      static_cast<int>(to_int(bundle.value_or("ports", "8"), "ports"));
  const SlotTime slots = to_int(bundle.value_or("slots", "2000"), "slots");
  const auto seed =
      static_cast<std::uint64_t>(to_int(bundle.value_or("seed", "42"), "seed"));
  const SlotTime defect_slot =
      to_int(bundle.value_or("defect_slot", "-1"), "defect_slot");
  const StrandedCellPolicy policy = policy_text == "purge"
                                        ? StrandedCellPolicy::kPurge
                                        : StrandedCellPolicy::kHold;

  std::printf("== fifoms_replay ==\nscenario=%s policy=%s N=%d slots=%lld "
              "seed=%llu defect_slot=%lld\n",
              scenario.c_str(), policy_text.c_str(), ports,
              static_cast<long long>(slots),
              static_cast<unsigned long long>(seed),
              static_cast<long long>(defect_slot));
  std::printf("original panic: %s\n",
              bundle.value_or("panic", "<none recorded>").c_str());
  if (!bundle.trace.empty()) {
    std::printf("-- trace tail (%zu events) --\n", bundle.trace.size());
    for (const std::string& line : bundle.trace)
      std::printf("  %s\n", line.c_str());
  }

  soak::SoakSetup setup;
  try {
    setup = soak::make_soak_setup(scenario, policy, ports, slots, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fifoms_replay: %s\n", e.what());
    return 1;
  }

  SimConfig config;
  config.total_slots = slots + parser.get_int("extra-slots");
  config.warmup_fraction = 0.25;
  config.seed = seed;
  config.fault_plan = &setup.plan;

  // Identical observer stack to fifoms_soak, so the checkpointed chain
  // state lines up byte for byte.
  MatchingAuditor auditor;
  DefectInjector defect;
  defect.defect_slot = defect_slot;
  defect.inner = &auditor;
  snapshot::TraceRingObserver trace(256, &defect);
  snapshot::DigestObserver digest(&trace);

  Simulator simulator(*setup.sw, *setup.traffic, config);
  simulator.set_observer(&digest);

  SlotTime start_slot = 0;
  if (!bundle.checkpoint.empty()) {
    try {
      const snapshot::Frame frame = snapshot::decode_frame(
          bundle.checkpoint, simulator.state_fingerprint());
      snapshot::Reader reader(frame.payload);
      simulator.load_state(reader);
      reader.expect_end();
      start_slot = simulator.now();
    } catch (const snapshot::SnapshotError& e) {
      std::fprintf(stderr, "fifoms_replay: bundle checkpoint rejected: %s\n",
                   e.what());
      return 1;
    }
  } else {
    simulator.prepare();
  }
  std::printf("replaying from slot %lld toward the defect...\n",
              static_cast<long long>(start_slot));
  std::fflush(stdout);  // the defect aborts; don't lose the banner

  // Step to the end.  If the defect is real, FIFOMS_ASSERT fires on the
  // way and the process aborts with the original diagnostic — the
  // counterexample reproduced.
  while (!simulator.done()) simulator.step();
  const SimResult result = simulator.finalize();

  std::printf("replay completed WITHOUT reproducing the defect "
              "(%lld slots, %llu copies delivered)\n",
              static_cast<long long>(result.total_slots),
              static_cast<unsigned long long>(result.copies_delivered));
  return 0;
}
