// fifoms_bench: performance aggregator emitting BENCH-JSON records.
//
// Two reports per run (schema in bench_json.hpp):
//
//   BENCH_sched.json — single-threaded slots/sec for each scheduler on a
//   backlogged switch; the record set the micro_sched regression guard
//   compares against.
//
//   BENCH_sweep.json — wall time for a standard_lineup() load sweep run
//   through the parallel experiment engine, at 1 thread and at all
//   cores; the speed of the thing users actually wait on.
//
//   BENCH_net.json — single-threaded slots/sec for the multistage
//   fabrics (Clos, fat-tree, and the degenerate single-switch wrapper),
//   measuring the per-hop relay/backpressure machinery on top of the
//   element cost (see docs/NETWORK.md).
//
// CI runs `fifoms_bench --quick` as a smoke check and uploads all three
// files as artifacts; refreshing the checked-in baselines is documented
// in docs/BENCHMARKING.md.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/thread_pool.hpp"
#include "core/fifoms.hpp"
#include "io/cli.hpp"
#include "net/net_experiment.hpp"
#include "net/network_fabric.hpp"
#include "sched/islip.hpp"
#include "sched/pim.hpp"
#include "sched/tatra.hpp"
#include "sim/experiment.hpp"
#include "sim/oq_switch.hpp"
#include "sim/single_fifo_switch.hpp"
#include "sim/switch_model.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"

namespace {

using namespace fifoms;
using namespace fifoms::bench;

BenchReport run_sched_report(std::int64_t slots) {
  BenchReport report;
  report.kind = "sched";
  report.threads = 1;
  report.git_sha = current_git_sha();

  const auto measure = [&](const std::string& name, SwitchModel& sw,
                           int ports, std::int64_t measured_slots) {
    report.records.push_back(measure_switch(name, sw, ports, measured_slots));
    const BenchRecord& r = report.records.back();
    std::printf("  %-12s %8.3fs  %12.0f slots/s  %12.0f cells/s\n",
                r.name.c_str(), r.wall_seconds, r.slots_per_sec,
                r.cells_per_sec);
  };

  // The radix sweep doubles N to show how the word-parallel kernels
  // scale (docs/PERFORMANCE.md explains how to read these rows).  The
  // largest sizes get fewer slots so a full run stays affordable.
  for (const int ports : {16, 64, 128, 256}) {
    const std::int64_t sized_slots = ports >= 128 ? slots / 4 : slots;
    VoqSwitch fifoms_sw(ports, std::make_unique<FifomsScheduler>());
    measure("FIFOMS/" + std::to_string(ports), fifoms_sw, ports, sized_slots);
    VoqSwitch islip_sw(ports, std::make_unique<IslipScheduler>());
    measure("iSLIP/" + std::to_string(ports), islip_sw, ports, sized_slots);
  }
  {
    const int ports = 16;
    VoqSwitch pim_sw(ports, std::make_unique<PimScheduler>());
    measure("PIM/16", pim_sw, ports, slots);
    SingleFifoSwitch tatra_sw(ports, std::make_unique<TatraScheduler>());
    measure("TATRA/16", tatra_sw, ports, slots);
    OqSwitch oq_sw(ports);
    measure("OQFIFO/16", oq_sw, ports, slots);
  }
  return report;
}

BenchReport run_sweep_report(std::int64_t slots) {
  BenchReport report;
  report.kind = "sweep";
  report.git_sha = current_git_sha();
  report.threads = ThreadPool::resolve_threads(0);

  SweepConfig config;
  config.num_ports = 16;
  config.loads = {0.5, 0.7, 0.9};
  config.slots = slots;
  config.replications = 2;

  const int ports = config.num_ports;
  const double b = 0.2;
  const TrafficFactory traffic =
      [ports, b](double load) -> std::unique_ptr<TrafficModel> {
    return std::make_unique<BernoulliTraffic>(
        ports, BernoulliTraffic::p_for_load(load, b, ports), b);
  };

  for (const int threads : {1, 0}) {
    config.threads = threads;
    const int resolved = ThreadPool::resolve_threads(threads);
    if (threads == 0 && resolved == 1) continue;  // single core: t1 recorded
    const auto lineup = standard_lineup();
    const auto grid_slots =
        static_cast<std::int64_t>(lineup.size() * config.loads.size() *
                                  static_cast<std::size_t>(
                                      config.replications)) *
        slots;

    BenchRecord record = measure_wall(
        [&] { run_sweep(config, lineup, traffic); });
    record.name = "sweep/standard_lineup/t" + std::to_string(resolved);
    record.ports = config.num_ports;
    record.slots = grid_slots;
    if (record.wall_seconds > 0.0)
      record.slots_per_sec =
          static_cast<double>(grid_slots) / record.wall_seconds;
    report.records.push_back(record);
    std::printf("  %-28s %8.3fs  %12.0f slots/s\n",
                record.name.c_str(), record.wall_seconds,
                record.slots_per_sec);
  }
  return report;
}

BenchReport run_net_report(std::int64_t slots) {
  BenchReport report;
  report.kind = "net";
  report.threads = 1;
  report.git_sha = current_git_sha();

  const auto measure = [&](const SwitchFactory& factory, int ports,
                           std::int64_t measured_slots) {
    const auto fabric = factory.make(ports);
    const std::string name = factory.label + "/" + std::to_string(ports);
    report.records.push_back(
        measure_switch(name, *fabric, ports, measured_slots));
    const BenchRecord& r = report.records.back();
    std::printf("  %-20s %8.3fs  %12.0f slots/s  %12.0f cells/s\n",
                r.name.c_str(), r.wall_seconds, r.slots_per_sec,
                r.cells_per_sec);
  };

  // NetSingle vs FIFOMS/16 in BENCH_sched.json isolates the wrapper
  // overhead; the Clos radix pair shows how the relay plumbing scales.
  measure(net::make_single_net_fifoms(), 16, slots);
  measure(net::make_clos3_fifoms(), 16, slots);
  measure(net::make_clos3_fifoms(), 64, slots / 4);
  measure(net::make_fat_tree2_fifoms(), 8, slots);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("fifoms_bench",
                   "Aggregate performance benchmark emitting BENCH-JSON "
                   "(see docs/BENCHMARKING.md)");
  parser.add_bool("quick", false,
                  "CI smoke mode: fewer slots, same record names");
  parser.add_int("slots", 200'000, "measured slots per sched record");
  parser.add_string("out-dir", ".", "directory for BENCH_*.json");
  if (!parser.parse(argc, argv)) return 2;

  const bool quick = parser.get_bool("quick");
  const std::int64_t sched_slots = quick ? 20'000 : parser.get_int("slots");
  const std::int64_t sweep_slots = quick ? 5'000 : 20'000;
  const std::string out_dir = parser.get_string("out-dir");

  std::printf("== fifoms_bench (sched: %lld slots) ==\n",
              static_cast<long long>(sched_slots));
  const BenchReport sched = run_sched_report(sched_slots);
  write_bench_json(out_dir + "/BENCH_sched.json", sched);

  std::printf("== fifoms_bench (sweep: %lld slots/run) ==\n",
              static_cast<long long>(sweep_slots));
  const BenchReport sweep = run_sweep_report(sweep_slots);
  write_bench_json(out_dir + "/BENCH_sweep.json", sweep);

  const std::int64_t net_slots = quick ? 10'000 : sched_slots;
  std::printf("== fifoms_bench (net: %lld slots) ==\n",
              static_cast<long long>(net_slots));
  const BenchReport net = run_net_report(net_slots);
  write_bench_json(out_dir + "/BENCH_net.json", net);

  std::printf("BENCH JSON written to %s/BENCH_{sched,sweep,net}.json\n",
              out_dir.c_str());
  return 0;
}
