// Ablation A9: FIFOMS's address-cell VOQ structure vs the practical
// hybrid alternative (ESLIP on N unicast VOQs + one shared multicast
// FIFO per input).
//
// Under mixed unicast/multicast traffic — the regime the paper's intro
// highlights — ESLIP's shared multicast queue suffers HOL blocking
// between multicast flows, while FIFOMS gives every (packet, output)
// pair its own queue position.  Expected: comparable at low load and for
// mostly-unicast mixes; FIFOMS pulls ahead as the multicast share and
// the load grow, and ESLIP's multicast class saturates first.
#include <memory>

#include "bench_common.hpp"
#include "traffic/composite.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const double unicast_share = 0.5;
  const int max_fanout = 8;

  auto args = bench::parse_args(
      argc, argv, "abl_eslip",
      "ablation: FIFOMS vs ESLIP vs iSLIP (mixed traffic, u=0.5, maxf=8)",
      {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  if (!args.parsed_ok) return 1;

  const int ports = args.sweep.num_ports;
  const auto points = run_sweep(
      args.sweep, {make_fifoms(), make_eslip(), make_islip(), make_oqfifo()},
      [ports, unicast_share,
       max_fanout](double load) -> std::unique_ptr<TrafficModel> {
        // offered_load = p * mean_fanout, so p = load / mean_fanout.
        MixedTraffic probe(ports, 0.1, unicast_share, max_fanout);
        return std::make_unique<MixedTraffic>(
            ports, load / probe.mean_fanout(), unicast_share, max_fanout);
      });
  bench::emit("Ablation A9 — queue structure: FIFOMS vs ESLIP", args,
              points);
  return 0;
}
