// Hardware-cost bench (paper Section IV): comparator-tree latency and
// comparator activity of the FIFOMS control unit across switch sizes.
//
// Reports, per N: comparator levels per round (2*ceil(log2 N) — the
// critical path Section IV argues is O(1)-ish for practical N), measured
// average rounds per slot at 80% Bernoulli multicast load, the implied
// comparator levels per slot, and average comparator evaluations per slot
// (an area/energy proxy).
#include <cstdio>
#include <memory>

#include "hw/fifoms_control_unit.hpp"
#include "io/cli.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;

  ArgParser parser("hw_latency",
                   "comparator cost of the FIFOMS control unit vs N");
  parser.add_int("slots", 20000, "simulated slots per size");
  parser.add_double("load", 0.8, "effective load per output");
  parser.add_double("b", 0.2, "per-output destination probability");
  parser.add_int("seed", 42, "simulation seed");
  parser.add_string("out", "hw_latency.csv", "CSV output path");
  if (!parser.parse(argc, argv)) return 1;

  const double load = parser.get_double("load");
  const double b = parser.get_double("b");

  std::printf("== Section IV — FIFOMS control unit comparator cost ==\n");
  std::printf("Bernoulli b=%.2f, load=%.2f, %lld slots per size\n\n", b, load,
              static_cast<long long>(parser.get_int("slots")));

  TablePrinter table({"N", "levels/round", "rounds/slot", "levels/slot",
                      "comparisons/slot", "out_delay"});
  CsvWriter csv(parser.get_string("out"));
  csv.row({"ports", "levels_per_round", "rounds_per_slot",
           "levels_per_slot", "comparisons_per_slot", "output_delay"});

  for (int ports : {4, 8, 16, 32, 64}) {
    auto unit = std::make_unique<hw::FifomsControlUnit>();
    hw::FifomsControlUnit* raw = unit.get();
    VoqSwitch sw(ports, std::move(unit));
    BernoulliTraffic traffic(
        ports, BernoulliTraffic::p_for_load(load, b, ports), b);
    SimConfig config;
    config.total_slots = parser.get_int("slots");
    config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    Simulator sim(sw, traffic, config);
    const SimResult result = sim.run();

    const double slots = static_cast<double>(result.total_slots);
    const double rounds_per_slot =
        static_cast<double>(raw->total_rounds()) / slots;
    const int levels = raw->levels_per_round();
    const double comparisons_per_slot =
        static_cast<double>(raw->total_comparisons()) / slots;

    table.row({std::to_string(ports), std::to_string(levels),
               TablePrinter::fixed(rounds_per_slot, 2),
               TablePrinter::fixed(levels * rounds_per_slot, 2),
               TablePrinter::fixed(comparisons_per_slot, 1),
               TablePrinter::fixed(result.output_delay.mean(), 2)});
    csv.row({std::to_string(ports), std::to_string(levels),
             CsvWriter::num(rounds_per_slot),
             CsvWriter::num(levels * rounds_per_slot),
             CsvWriter::num(comparisons_per_slot),
             CsvWriter::num(result.output_delay.mean())});
  }
  table.print();
  std::printf("\nCSV written to %s\n", parser.get_string("out").c_str());
  return 0;
}
