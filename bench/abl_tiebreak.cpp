// Ablation A4: grant tie-break policy.
//
// When several requests carry the same smallest time stamp, the paper's
// outputs pick randomly.  A deterministic lowest-input tie-break is
// cheaper in hardware but biases service toward low-numbered inputs.
// Expected: aggregate delay/throughput nearly identical (ties are rare
// under asynchronous arrivals), demonstrating the policy is not
// load-bearing — but the bench reports it rather than assuming it.
#include <memory>

#include "bench_common.hpp"
#include "core/fifoms.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const double b = 0.2;

  auto args = bench::parse_args(
      argc, argv, "abl_tiebreak",
      "ablation: random vs lowest-input grant tie-break (Bernoulli b=0.2)",
      {0.3, 0.5, 0.7, 0.9});
  if (!args.parsed_ok) return 1;

  SwitchFactory lowest{
      "FIFOMS-lowest", [](int ports) -> std::unique_ptr<SwitchModel> {
        FifomsOptions options;
        options.tie_break = TieBreak::kLowestInput;
        return std::make_unique<VoqSwitch>(
            ports, std::make_unique<FifomsScheduler>(options));
      }};

  const int ports = args.sweep.num_ports;
  const auto points = run_sweep(
      args.sweep, {make_fifoms(), lowest},
      [ports, b](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<BernoulliTraffic>(
            ports, BernoulliTraffic::p_for_load(load, b, ports), b);
      });
  bench::emit("Ablation A4 — tie-break policy", args, points);
  return 0;
}
