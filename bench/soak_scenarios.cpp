#include "soak_scenarios.hpp"

#include <algorithm>

#include "core/fifoms.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/burst.hpp"

namespace fifoms::soak {

const char* policy_name(StrandedCellPolicy policy) {
  return policy == StrandedCellPolicy::kHold ? "hold" : "purge";
}

std::string SoakSetup::tag() const { return name + "/" + policy_name(policy); }

std::vector<std::string> scenario_names() {
  return {"rolling-flaps/bern-0.9", "line-card-loss/bern-0.9",
          "fault-storm/burst-0.8"};
}

SoakSetup make_soak_setup(const std::string& name, StrandedCellPolicy policy,
                          int ports, SlotTime slots, std::uint64_t seed) {
  SoakSetup setup;
  setup.name = name;
  setup.policy = policy;

  // The flap cadence scales with the horizon so every scenario sees many
  // full down/up cycles regardless of --slots.
  const SlotTime flap_period = std::max<SlotTime>(16, slots / (4 * ports));
  const SlotTime flap_down = std::max<SlotTime>(4, flap_period / 2);

  if (name == "rolling-flaps/bern-0.9") {
    setup.plan = fault::FaultPlan::rolling_port_flaps(
        ports, flap_period, flap_period, flap_down, slots);
  } else if (name == "line-card-loss/bern-0.9") {
    setup.plan = fault::FaultPlan::correlated_line_card_loss(
        ports, seed, slots / 4, slots / 2, std::max(1, ports / 4));
  } else if (name == "fault-storm/burst-0.8") {
    setup.plan = fault::FaultPlan::fault_storm(ports, seed, slots);
  } else {
    throw fault::FaultError("unknown soak scenario: " + name);
  }

  if (name.find("burst") != std::string::npos) {
    // Burst traffic at 0.8 load: the storm scenario's arrival process
    // (paper Fig. 8 parameters, shortened horizon).
    const double burst_b = 0.5;
    const double e_on = 16.0;
    setup.traffic = std::make_unique<BurstTraffic>(
        ports, BurstTraffic::e_off_for_load(0.8, e_on, burst_b, ports), e_on,
        burst_b);
  } else {
    const double b = 0.2;
    setup.traffic = std::make_unique<BernoulliTraffic>(
        ports, BernoulliTraffic::p_for_load(0.9, b, ports), b);
  }

  VoqSwitch::Options options;
  options.stranded_policy = policy;
  setup.sw = std::make_unique<VoqSwitch>(
      ports, std::make_unique<FifomsScheduler>(), options);
  return setup;
}

}  // namespace fifoms::soak
