// Ablation A7: strict-priority QoS classes on the multicast VOQ switch
// (library extension; the paper's traffic is single-class).
//
// 20% of packets are premium (class 0), 80% best-effort (class 1), under
// Bernoulli multicast b=0.2.  Sweeping total load shows the QoS promise:
// premium delay stays near the unloaded baseline while best-effort absorbs
// all the queueing, up to the point where class 1 alone saturates.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/fifoms.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/priority.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const double b = 0.2;
  const double premium_share = 0.2;

  auto args = bench::parse_args(
      argc, argv, "abl_priority",
      "ablation: strict-priority classes (20% premium, Bernoulli b=0.2)",
      {0.3, 0.5, 0.7, 0.8, 0.9, 0.95});
  if (!args.parsed_ok) return 1;

  const int ports = args.sweep.num_ports;
  std::printf("== Ablation A7 — strict-priority QoS on FIFOMS ==\n");
  std::printf("N=%d, slots=%lld, %0.f%% premium traffic\n\n", ports,
              static_cast<long long>(args.sweep.slots), premium_share * 100);

  TablePrinter table({"load", "premium_delay", "besteffort_delay",
                      "aggregate_delay", "status"});
  CsvWriter csv(args.csv_path);
  csv.row({"load", "premium_delay", "besteffort_delay", "aggregate_delay",
           "unstable"});
  for (double load : args.sweep.loads) {
    RunningStat premium, best_effort, aggregate;
    bool unstable = false;
    for (int rep = 0; rep < args.sweep.replications; ++rep) {
      VoqSwitch::Options options;
      options.num_classes = 2;
      VoqSwitch sw(ports, std::make_unique<FifomsScheduler>(), options);
      PriorityTraffic traffic(
          std::make_unique<BernoulliTraffic>(
              ports, BernoulliTraffic::p_for_load(load, b, ports), b),
          {premium_share, 1.0 - premium_share});
      SimConfig config;
      config.total_slots = args.sweep.slots;
      config.seed = derive_seed(args.sweep.master_seed,
                                static_cast<std::uint64_t>(load * 1000),
                                static_cast<std::uint64_t>(rep));
      config.stability = args.sweep.stability;
      Simulator sim(sw, traffic, config);
      const SimResult result = sim.run();
      if (result.unstable) {
        unstable = true;
        continue;
      }
      if (result.class_output_delays.size() >= 2) {
        premium.add(result.class_output_delays[0].mean());
        best_effort.add(result.class_output_delays[1].mean());
      }
      aggregate.add(result.output_delay.mean());
    }
    table.row({TablePrinter::fixed(load, 3),
               TablePrinter::fixed(premium.mean(), 2),
               TablePrinter::fixed(best_effort.mean(), 2),
               TablePrinter::fixed(aggregate.mean(), 2),
               unstable ? "UNSTABLE(some)" : "ok"});
    csv.row({CsvWriter::num(load), CsvWriter::num(premium.mean()),
             CsvWriter::num(best_effort.mean()),
             CsvWriter::num(aggregate.mean()), unstable ? "1" : "0"});
  }
  table.print();
  std::printf("\nCSV written to %s\n", args.csv_path.c_str());
  return 0;
}
