// Ablation A3: switch-size scaling.
//
// Fixed effective load (0.8) under Bernoulli multicast traffic with mean
// fanout pinned at N/5 (b = 0.2), radix swept over {16, 64, 128, 256}
// (the weight-plane kernel's N sweep — docs/PERFORMANCE.md).
// Expected: FIFOMS delay and convergence rounds grow slowly with N (the
// paper argues rounds stay far below the worst-case N).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "traffic/bernoulli.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const double b = 0.2;
  const double load = 0.8;

  // The sweep axis here is N, not load; reuse the harness per size.
  auto args = bench::parse_args(argc, argv, "abl_switch_size",
                                "ablation: radix sweep at load 0.8", {load});
  if (!args.parsed_ok) return 1;

  std::printf("== Ablation A3 — switch size sweep, Bernoulli b=0.2, "
              "load=%.2f ==\n", load);
  TablePrinter table({"N", "in_delay", "out_delay", "avg_queue", "rounds",
                      "throughput"});
  std::vector<PointSummary> all_points;
  for (int ports : {16, 64, 128, 256}) {
    SweepConfig sweep = args.sweep;
    sweep.num_ports = ports;
    const auto points = run_sweep(
        sweep, {make_fifoms()},
        [ports, b](double point_load) -> std::unique_ptr<TrafficModel> {
          return std::make_unique<BernoulliTraffic>(
              ports, BernoulliTraffic::p_for_load(point_load, b, ports), b);
        });
    const PointSummary& p = points.front();
    table.row({std::to_string(ports), TablePrinter::fixed(p.input_delay, 2),
               TablePrinter::fixed(p.output_delay, 2),
               TablePrinter::fixed(p.queue_mean, 2),
               TablePrinter::fixed(p.rounds_busy, 2),
               TablePrinter::fixed(p.throughput, 3)});
    PointSummary tagged = p;
    tagged.algorithm = "FIFOMS-N" + std::to_string(ports);
    all_points.push_back(tagged);
  }
  table.print();
  write_sweep_csv(args.csv_path, all_points);
  std::printf("\nCSV written to %s\n", args.csv_path.c_str());
  return 0;
}
