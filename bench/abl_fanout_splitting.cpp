// Ablation A1: how much does fanout splitting buy?
//
// The paper (Section VI) asserts that "fanout splitting is necessary for
// an algorithm to achieve high throughput under multicast traffic".  This
// bench runs FIFOMS against FIFOMS-nosplit (all-or-nothing scheduling in
// the same FIFO order) under Bernoulli multicast traffic.  Expected: the
// no-split variant saturates at a visibly lower load and holds much more
// buffer at every load above its knee.
#include <memory>

#include "bench_common.hpp"
#include "traffic/bernoulli.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const double b = 0.2;

  auto args = bench::parse_args(
      argc, argv, "abl_fanout_splitting",
      "ablation: FIFOMS with and without fanout splitting (Bernoulli b=0.2)",
      {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  if (!args.parsed_ok) return 1;

  const int ports = args.sweep.num_ports;
  const auto points = run_sweep(
      args.sweep, {make_fifoms(), make_fifoms_nosplit()},
      [ports, b](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<BernoulliTraffic>(
            ports, BernoulliTraffic::p_for_load(load, b, ports), b);
      });
  bench::emit("Ablation A1 — fanout splitting on/off", args, points);
  return 0;
}
