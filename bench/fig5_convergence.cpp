// Fig. 5 reproduction: average convergence rounds of FIFOMS vs iSLIP on a
// 16x16 switch under Bernoulli multicast traffic with b = 0.2.
//
// Expected shape: both algorithms converge in a similar, small (much less
// than N) number of iterative rounds, insensitive to load until iSLIP
// destabilises above ~0.9.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "traffic/bernoulli.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const double b = 0.2;

  auto args = bench::parse_args(
      argc, argv, "fig5_convergence",
      "paper Fig. 5: convergence rounds, Bernoulli b=0.2",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  if (!args.parsed_ok) return 1;

  const int ports = args.sweep.num_ports;
  const auto points = run_sweep(
      args.sweep, {make_fifoms(), make_islip()},
      [ports, b](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<BernoulliTraffic>(
            ports, BernoulliTraffic::p_for_load(load, b, ports), b);
      });

  std::printf("== Fig. 5 — average convergence rounds (busy slots) ==\n");
  TablePrinter table({"load", "FIFOMS", "iSLIP"});
  const std::size_t half = points.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const PointSummary& fifoms_point = points[i];
    const PointSummary& islip_point = points[half + i];
    auto cell = [](const PointSummary& p) {
      return p.unstable() ? std::string("UNSTABLE")
                          : TablePrinter::fixed(p.rounds_busy, 3);
    };
    table.row({TablePrinter::fixed(fifoms_point.load, 3),
               cell(fifoms_point), cell(islip_point)});
  }
  table.print();
  write_sweep_csv(args.csv_path, points);

  // Round-count distribution at one representative load (a level of
  // detail the paper's figure averages away): run one extra replication
  // per algorithm and print P[rounds = k].
  const double probe_load = 0.7;
  std::printf("\nround distribution at load %.2f (single run):\n",
              probe_load);
  TablePrinter dist({"algorithm", "P[1]", "P[2]", "P[3]", "P[4]", "P[>=5]",
                     "max"});
  for (const SwitchFactory& factory : {make_fifoms(), make_islip()}) {
    auto sw = factory.make(ports);
    BernoulliTraffic traffic(
        ports, BernoulliTraffic::p_for_load(probe_load, b, ports), b);
    SimConfig config;
    config.total_slots = args.sweep.slots;
    config.seed = args.sweep.master_seed;
    Simulator sim(*sw, traffic, config);
    const SimResult result = sim.run();
    const Histogram& hist = result.rounds_hist;
    const double total = static_cast<double>(hist.total());
    auto share = [&](int k) {
      return total == 0 ? 0.0
                        : static_cast<double>(hist.count_at(k)) / total;
    };
    double tail = 0.0;
    for (std::int64_t k = 5; k <= hist.max_value(); ++k)
      tail += static_cast<double>(hist.count_at(k));
    dist.row({factory.label, TablePrinter::fixed(share(1), 3),
              TablePrinter::fixed(share(2), 3),
              TablePrinter::fixed(share(3), 3),
              TablePrinter::fixed(share(4), 3),
              TablePrinter::fixed(total == 0 ? 0.0 : tail / total, 3),
              std::to_string(hist.max_value())});
  }
  dist.print();
  std::printf("\nCSV written to %s\n", args.csv_path.c_str());
  return 0;
}
