// Shared plumbing for the figure-reproduction benches.
//
// Every fig*/abl* binary follows the same protocol: parse the standard
// flags, run a load sweep (paper protocol, Section V), print per-algorithm
// console tables and write a CSV for re-plotting.  Defaults are sized so
// the full bench suite finishes in minutes on a laptop; pass --slots
// 1000000 --reps 5 to match the paper's horizon exactly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "io/cli.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "sim/experiment.hpp"

namespace fifoms::bench {

struct BenchArgs {
  SweepConfig sweep;
  std::string csv_path;
  bool parsed_ok = false;
};

/// Parse the standard bench flags; `default_loads` is used unless --loads
/// overrides it ("0.1,0.2,0.3" format).
inline BenchArgs parse_args(int argc, char** argv, const char* name,
                            const char* description,
                            std::vector<double> default_loads,
                            int default_ports = 16,
                            SlotTime default_slots = 100'000) {
  ArgParser parser(name, description);
  parser.add_int("ports", default_ports, "switch radix N");
  parser.add_int("slots", default_slots,
                 "simulated slots per run (paper: 1000000)");
  parser.add_int("reps", 2, "replications per point");
  parser.add_int("seed", 42, "master seed");
  parser.add_string("loads", "", "comma-separated load override");
  parser.add_string("out", std::string(name) + ".csv", "CSV output path");
  parser.add_int("max-buffered", 50'000,
                 "instability threshold (total buffered cells)");
  parser.add_int("threads", 1,
                 "worker threads (0 = all cores; results identical)");
  parser.add_bool("verbose", false, "progress lines to stderr");

  BenchArgs args;
  if (!parser.parse(argc, argv)) return args;

  args.sweep.num_ports = static_cast<int>(parser.get_int("ports"));
  args.sweep.slots = parser.get_int("slots");
  args.sweep.replications = static_cast<int>(parser.get_int("reps"));
  args.sweep.master_seed =
      static_cast<std::uint64_t>(parser.get_int("seed"));
  args.sweep.stability.max_buffered =
      static_cast<std::size_t>(parser.get_int("max-buffered"));
  args.sweep.threads = static_cast<int>(parser.get_int("threads"));
  args.sweep.verbose = parser.get_bool("verbose");

  const std::string loads_text = parser.get_string("loads");
  if (loads_text.empty()) {
    args.sweep.loads = std::move(default_loads);
  } else {
    std::size_t start = 0;
    while (start < loads_text.size()) {
      const std::size_t comma = loads_text.find(',', start);
      const std::string item =
          loads_text.substr(start, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - start);
      args.sweep.loads.push_back(std::stod(item));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  args.csv_path = parser.get_string("out");
  args.parsed_ok = true;
  return args;
}

/// Print the banner, the per-algorithm tables and the CSV.
inline void emit(const char* title, const BenchArgs& args,
                 const std::vector<PointSummary>& points) {
  std::printf("== %s ==\n", title);
  std::printf("N=%d, slots=%lld (warm-up half), reps=%d, seed=%llu\n",
              args.sweep.num_ports,
              static_cast<long long>(args.sweep.slots),
              args.sweep.replications,
              static_cast<unsigned long long>(args.sweep.master_seed));
  print_sweep_tables(points);
  write_sweep_csv(args.csv_path, points);
  std::printf("\nCSV written to %s\n", args.csv_path.c_str());
}

}  // namespace fifoms::bench
