#include "bench_json.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/panic.hpp"
#include "io/json.hpp"
#include "sim/switch_model.hpp"
#include "traffic/bernoulli.hpp"

namespace fifoms::bench {

std::string current_git_sha() {
#if defined(_WIN32)
  return "unknown";
#else
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[128] = {};
  std::string sha;
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) sha = buffer;
  ::pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
    sha.pop_back();
  const bool looks_like_sha =
      sha.size() == 40 &&
      sha.find_first_not_of("0123456789abcdef") == std::string::npos;
  return looks_like_sha ? sha : "unknown";
#endif
}

std::string bench_report_to_json(const BenchReport& report) {
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value("fifoms-bench-v1");
  json.key("kind");
  json.value(report.kind);
  json.key("git_sha");
  json.value(report.git_sha);
  json.key("threads");
  json.value(report.threads);
  json.key("records");
  json.begin_array();
  for (const BenchRecord& record : report.records) {
    json.begin_object();
    json.key("name");
    json.value(record.name);
    json.key("ports");
    json.value(record.ports);
    json.key("slots");
    json.value(record.slots);
    json.key("wall_seconds");
    json.value(record.wall_seconds);
    json.key("slots_per_sec");
    json.value(record.slots_per_sec);
    json.key("cells_per_sec");
    json.value(record.cells_per_sec);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void write_bench_json(const std::string& path, const BenchReport& report) {
  std::ofstream out(path);
  FIFOMS_ASSERT(out.good(), "cannot open bench JSON output path");
  out << bench_report_to_json(report) << '\n';
}

BenchRecord measure_switch(const std::string& name, SwitchModel& sw,
                           int ports, std::int64_t slots,
                           std::int64_t warmup) {
  // The micro_sched workload: Bernoulli multicast at 80% offered load with
  // a 20% multicast fraction keeps every scheduler busy without diverging.
  const double multicast_fraction = 0.2;
  BernoulliTraffic traffic(
      ports, BernoulliTraffic::p_for_load(0.8, multicast_fraction, ports),
      multicast_fraction);
  Rng traffic_rng(1);
  Rng sched_rng(2);
  PacketId next_id = 0;
  SlotTime now = 0;
  SlotResult result;
  std::int64_t cells = 0;

  auto run_one_slot = [&] {
    for (PortId input = 0; input < ports; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      sw.inject(packet);
    }
    result.clear();
    sw.step(now, sched_rng, result);
    cells += result.matched_pairs;
    ++now;
  };

  for (std::int64_t slot = 0; slot < warmup; ++slot) run_one_slot();
  cells = 0;

  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t slot = 0; slot < slots; ++slot) run_one_slot();
  const auto stop = std::chrono::steady_clock::now();

  BenchRecord record;
  record.name = name;
  record.ports = ports;
  record.slots = slots;
  record.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  if (record.wall_seconds > 0.0) {
    record.slots_per_sec = static_cast<double>(slots) / record.wall_seconds;
    record.cells_per_sec = static_cast<double>(cells) / record.wall_seconds;
  }
  return record;
}

BenchRecord measure_wall(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  BenchRecord record;
  record.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return record;
}

namespace {

/// Extract the string value following `"key":` at or after `from`;
/// npos-safe.  Only handles the shapes this writer emits.
bool scan_string(const std::string& text, std::size_t from,
                 const std::string& key, std::string& out,
                 std::size_t* where = nullptr) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return false;
  const std::size_t open = text.find('"', text.find(':', at));
  if (open == std::string::npos) return false;
  const std::size_t close = text.find('"', open + 1);
  if (close == std::string::npos) return false;
  out = text.substr(open + 1, close - open - 1);
  if (where != nullptr) *where = at;
  return true;
}

bool scan_number(const std::string& text, std::size_t from,
                 const std::string& key, double& out) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return false;
  const std::size_t colon = text.find(':', at);
  if (colon == std::string::npos) return false;
  try {
    out = std::stod(text.substr(colon + 1));
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<BaselineEntry> read_bench_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.find("fifoms-bench-v1") == std::string::npos) return {};

  std::vector<BaselineEntry> entries;
  std::size_t cursor = text.find("\"records\"");
  if (cursor == std::string::npos) return {};
  while (true) {
    BaselineEntry entry;
    std::size_t name_at = 0;
    if (!scan_string(text, cursor, "name", entry.name, &name_at)) break;
    if (!scan_number(text, name_at, "slots_per_sec", entry.slots_per_sec))
      break;
    entries.push_back(entry);
    cursor = name_at + 1;
  }
  return entries;
}

RegressionReport check_regressions(const BenchReport& current,
                                   const std::vector<BaselineEntry>& baseline,
                                   double tolerance) {
  RegressionReport report;
  for (const BenchRecord& record : current.records) {
    const BaselineEntry* base = nullptr;
    for (const BaselineEntry& entry : baseline)
      if (entry.name == record.name) base = &entry;
    if (base == nullptr || base->slots_per_sec <= 0.0) continue;
    ++report.compared;
    const double ratio = record.slots_per_sec / base->slots_per_sec;
    char line[256];
    if (ratio < 1.0 - tolerance) {
      ++report.regressions;
      std::snprintf(line, sizeof(line),
                    "REGRESSION %-16s %.0f slots/s vs baseline %.0f "
                    "(%.1f%%, tolerance %.0f%%)",
                    record.name.c_str(), record.slots_per_sec,
                    base->slots_per_sec, (ratio - 1.0) * 100.0,
                    tolerance * 100.0);
    } else {
      std::snprintf(line, sizeof(line),
                    "ok         %-16s %.0f slots/s vs baseline %.0f (%+.1f%%)",
                    record.name.c_str(), record.slots_per_sec,
                    base->slots_per_sec, (ratio - 1.0) * 100.0);
    }
    report.messages.emplace_back(line);
  }
  return report;
}

}  // namespace fifoms::bench
