// Ablation A8: the three single-FIFO multicast policies head to head.
//
// TATRA (Tetris placement), WBA (age-minus-fanout weights) and
// Concentrate (largest-residue-first greedy) all run on the same
// single input-queued switch, under the paper's Fig. 4 traffic, with
// FIFOMS as the VOQ reference.  Expected: the three HOL policies track
// each other closely (the architecture's HOL blocking, not the policy,
// is the binding constraint — the paper's core argument for the VOQ
// structure), while FIFOMS keeps working well past their common knee.
#include <memory>

#include "bench_common.hpp"
#include "traffic/bernoulli.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;
  const double b = 0.2;

  auto args = bench::parse_args(
      argc, argv, "abl_hol_family",
      "ablation: TATRA vs WBA vs Concentrate vs FIFOMS (Bernoulli b=0.2)",
      {0.3, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9});
  if (!args.parsed_ok) return 1;

  const int ports = args.sweep.num_ports;
  const auto points = run_sweep(
      args.sweep,
      {make_tatra(), make_wba(), make_concentrate(), make_fifoms()},
      [ports, b](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<BernoulliTraffic>(
            ports, BernoulliTraffic::p_for_load(load, b, ports), b);
      });
  bench::emit("Ablation A8 — single-FIFO policy family", args, points);
  return 0;
}
