// Fig. 6 reproduction: 16x16 switch under uniform traffic with
// maxFanout = 1, i.e. pure unicast Bernoulli i.i.d. traffic.
//
// Expected shape: FIFOMS matches (or slightly beats) iSLIP on delay and
// has the smallest buffers; TATRA saturates near the Karol et al. 0.586
// single-FIFO bound; OQFIFO is the lower envelope.
#include <memory>

#include "bench_common.hpp"
#include "traffic/uniform_fanout.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;

  auto args = bench::parse_args(
      argc, argv, "fig6_unicast",
      "paper Fig. 6: uniform traffic, maxFanout=1 (pure unicast)",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.55, 0.6, 0.7, 0.8, 0.9, 0.95});
  if (!args.parsed_ok) return 1;

  const int ports = args.sweep.num_ports;
  const auto points = run_sweep(
      args.sweep, standard_lineup(),
      [ports](double load) -> std::unique_ptr<TrafficModel> {
        return std::make_unique<UniformFanoutTraffic>(
            ports, UniformFanoutTraffic::p_for_load(load, 1), 1);
      });
  bench::emit("Fig. 6 — uniform traffic, maxFanout=1", args, points);
  return 0;
}
