// Shared construction of the fault-storm soak scenarios (docs/FAULTS.md).
//
// fifoms_soak runs these; fifoms_replay rebuilds the IDENTICAL scenario
// from a counterexample bundle's manifest (docs/RECOVERY.md).  Factoring
// the construction here is what makes a bundle replayable: both binaries
// derive switch, traffic and fault plan from the same (name, policy,
// ports, slots, seed) tuple, so the replay's slot stream is bit-identical
// to the soak run that panicked.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/traffic_model.hpp"

namespace fifoms::soak {

struct SoakSetup {
  std::string name;  ///< e.g. "rolling-flaps/bern-0.9"
  fault::FaultPlan plan;
  std::unique_ptr<TrafficModel> traffic;
  std::unique_ptr<SwitchModel> sw;
  StrandedCellPolicy policy = StrandedCellPolicy::kHold;

  /// "<name>/<hold|purge>": the run tag and checkpoint stem.
  std::string tag() const;
};

const char* policy_name(StrandedCellPolicy policy);

/// Scenario names in canonical run order.
std::vector<std::string> scenario_names();

/// Build one (scenario, policy) combination.  Throws fault::FaultError
/// for an unknown scenario name (the bundle path is user input).
SoakSetup make_soak_setup(const std::string& name, StrandedCellPolicy policy,
                          int ports, SlotTime slots, std::uint64_t seed);

}  // namespace fifoms::soak
