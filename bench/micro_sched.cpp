// Ablation A5: scheduler CPU cost (google-benchmark).
//
// Measures simulated slots per second for each scheduler on a backlogged
// 16x16 (and 64x64) switch — the software-model counterpart of the
// paper's O(N)/O(1) hardware complexity discussion, and the number that
// determines how long the figure benches take.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/fifoms.hpp"
#include "sched/islip.hpp"
#include "sched/pim.hpp"
#include "sched/tatra.hpp"
#include "sched/wba.hpp"
#include "sim/oq_switch.hpp"
#include "sim/single_fifo_switch.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"

namespace {

using namespace fifoms;

/// Drive one switch model under Bernoulli multicast at 80% load.
void run_slots(benchmark::State& state, SwitchModel& sw, int ports) {
  const double b = 0.2;
  BernoulliTraffic traffic(
      ports, BernoulliTraffic::p_for_load(0.8, b, ports), b);
  Rng traffic_rng(1);
  Rng sched_rng(2);
  PacketId next_id = 0;
  SlotTime now = 0;
  SlotResult result;
  for (auto _ : state) {
    for (PortId input = 0; input < ports; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      sw.inject(packet);
    }
    result.clear();
    sw.step(now, sched_rng, result);
    benchmark::DoNotOptimize(result.matched_pairs);
    ++now;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["buffered"] =
      static_cast<double>(sw.total_buffered());
}

void BM_Fifoms(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  VoqSwitch sw(ports, std::make_unique<FifomsScheduler>());
  run_slots(state, sw, ports);
}

void BM_Islip(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  VoqSwitch sw(ports, std::make_unique<IslipScheduler>());
  run_slots(state, sw, ports);
}

void BM_Pim(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  VoqSwitch sw(ports, std::make_unique<PimScheduler>());
  run_slots(state, sw, ports);
}

void BM_Tatra(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  SingleFifoSwitch sw(ports, std::make_unique<TatraScheduler>());
  run_slots(state, sw, ports);
}

void BM_Wba(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  SingleFifoSwitch sw(ports, std::make_unique<WbaScheduler>());
  run_slots(state, sw, ports);
}

void BM_OqFifo(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  OqSwitch sw(ports);
  run_slots(state, sw, ports);
}

}  // namespace

BENCHMARK(BM_Fifoms)->Arg(16)->Arg(64);
BENCHMARK(BM_Islip)->Arg(16)->Arg(64);
BENCHMARK(BM_Pim)->Arg(16)->Arg(64);
BENCHMARK(BM_Tatra)->Arg(16)->Arg(64);
BENCHMARK(BM_Wba)->Arg(16)->Arg(64);
BENCHMARK(BM_OqFifo)->Arg(16)->Arg(64);

BENCHMARK_MAIN();
