// Ablation A5: scheduler CPU cost (google-benchmark).
//
// Measures simulated slots per second for each scheduler on a backlogged
// 16x16 (and 64x64) switch — the software-model counterpart of the
// paper's O(N)/O(1) hardware complexity discussion, and the number that
// determines how long the figure benches take.
//
// After the google-benchmark run, a regression guard re-measures the
// FIFOMS and iSLIP records with the BENCH-JSON harness and compares them
// against the checked-in baseline (bench/BENCH_sched.json).  Warn-only by
// default — absolute slots/sec is machine-dependent, so CI only annotates
// — but FIFOMS_BENCH_STRICT=1 turns a >15% drop into a non-zero exit for
// local before/after checks.  FIFOMS_BENCH_BASELINE overrides the
// baseline path; FIFOMS_BENCH_GUARD=0 skips the guard.  See
// docs/BENCHMARKING.md.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench_json.hpp"

#include "core/fifoms.hpp"
#include "sched/islip.hpp"
#include "sched/pim.hpp"
#include "sched/tatra.hpp"
#include "sched/wba.hpp"
#include "sim/oq_switch.hpp"
#include "sim/single_fifo_switch.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"

namespace {

using namespace fifoms;

/// Drive one switch model under Bernoulli multicast at 80% load.
void run_slots(benchmark::State& state, SwitchModel& sw, int ports) {
  const double b = 0.2;
  BernoulliTraffic traffic(
      ports, BernoulliTraffic::p_for_load(0.8, b, ports), b);
  Rng traffic_rng(1);
  Rng sched_rng(2);
  PacketId next_id = 0;
  SlotTime now = 0;
  SlotResult result;
  for (auto _ : state) {
    for (PortId input = 0; input < ports; ++input) {
      const PortSet dests = traffic.arrival(input, now, traffic_rng);
      if (dests.empty()) continue;
      Packet packet;
      packet.id = next_id++;
      packet.input = input;
      packet.arrival = now;
      packet.destinations = dests;
      sw.inject(packet);
    }
    result.clear();
    sw.step(now, sched_rng, result);
    benchmark::DoNotOptimize(result.matched_pairs);
    ++now;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["buffered"] =
      static_cast<double>(sw.total_buffered());
}

void BM_Fifoms(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  VoqSwitch sw(ports, std::make_unique<FifomsScheduler>());
  run_slots(state, sw, ports);
}

void BM_Islip(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  VoqSwitch sw(ports, std::make_unique<IslipScheduler>());
  run_slots(state, sw, ports);
}

void BM_Pim(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  VoqSwitch sw(ports, std::make_unique<PimScheduler>());
  run_slots(state, sw, ports);
}

void BM_Tatra(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  SingleFifoSwitch sw(ports, std::make_unique<TatraScheduler>());
  run_slots(state, sw, ports);
}

void BM_Wba(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  SingleFifoSwitch sw(ports, std::make_unique<WbaScheduler>());
  run_slots(state, sw, ports);
}

void BM_OqFifo(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  OqSwitch sw(ports);
  run_slots(state, sw, ports);
}

}  // namespace

BENCHMARK(BM_Fifoms)->Arg(16)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_Islip)->Arg(16)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_Pim)->Arg(16)->Arg(64);
BENCHMARK(BM_Tatra)->Arg(16)->Arg(64);
BENCHMARK(BM_Wba)->Arg(16)->Arg(64);
BENCHMARK(BM_OqFifo)->Arg(16)->Arg(64);

namespace {

/// Regression guard: measure the baseline record set with the BENCH-JSON
/// harness and compare to bench/BENCH_sched.json.  Returns the process
/// exit code (non-zero only in strict mode).
int run_regression_guard() {
  const char* guard_env = std::getenv("FIFOMS_BENCH_GUARD");
  if (guard_env != nullptr && std::strcmp(guard_env, "0") == 0) return 0;

  const char* baseline_env = std::getenv("FIFOMS_BENCH_BASELINE");
  const std::string baseline_path =
      baseline_env != nullptr ? baseline_env : FIFOMS_BENCH_BASELINE_DEFAULT;
  const auto baseline = bench::read_bench_baseline(baseline_path);
  if (baseline.empty()) {
    std::fprintf(stderr,
                 "\n[bench guard] no baseline at %s — skipping regression "
                 "check\n",
                 baseline_path.c_str());
    return 0;
  }

  const char* slots_env = std::getenv("FIFOMS_BENCH_GUARD_SLOTS");
  const auto slots =
      static_cast<std::int64_t>(slots_env != nullptr ? std::atoll(slots_env)
                                                     : 100'000);

  bench::BenchReport current;
  current.kind = "sched";
  current.threads = 1;
  current.git_sha = bench::current_git_sha();
  for (const int ports : {16, 64, 128, 256}) {
    // Larger radices cost more per slot; scale the sample down so the
    // guard stays a smoke check, not a benchmark.
    const std::int64_t sized_slots = ports >= 128 ? slots / 4 : slots;
    VoqSwitch fifoms_sw(ports, std::make_unique<FifomsScheduler>());
    current.records.push_back(bench::measure_switch(
        "FIFOMS/" + std::to_string(ports), fifoms_sw, ports, sized_slots));
    VoqSwitch islip_sw(ports, std::make_unique<IslipScheduler>());
    current.records.push_back(bench::measure_switch(
        "iSLIP/" + std::to_string(ports), islip_sw, ports, sized_slots));
  }

  const auto result = bench::check_regressions(current, baseline);
  std::fprintf(stderr, "\n[bench guard] baseline %s (%d records compared)\n",
               baseline_path.c_str(), result.compared);
  for (const std::string& line : result.messages)
    std::fprintf(stderr, "[bench guard] %s\n", line.c_str());

  if (result.regressions == 0) return 0;
  const char* strict = std::getenv("FIFOMS_BENCH_STRICT");
  const bool strict_mode = strict != nullptr && std::strcmp(strict, "1") == 0;
  std::fprintf(stderr,
               "[bench guard] %d regression(s) beyond tolerance — %s\n",
               result.regressions,
               strict_mode ? "failing (FIFOMS_BENCH_STRICT=1)"
                           : "warning only (set FIFOMS_BENCH_STRICT=1 to "
                             "fail)");
  return strict_mode ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_regression_guard();
}
