// fifoms_soak: fault-storm soak harness (docs/FAULTS.md, docs/RECOVERY.md).
//
// Drives FIFOMS on the multicast VOQ switch through the fault scenarios —
// rolling output flaps under 0.9 load, correlated line-card loss, and the
// adversarial fault storm under burst traffic — with the runtime invariant
// auditor attached, under BOTH stranded-cell policies.  The auditor
// panics the moment a copy lands on a dead port, a purge touches a live
// output, or a fanout counter drifts, so merely finishing a scenario is
// the assertion that every invariant held through every down/up
// transition; the harness adds end-of-run cross-checks of the auditor's
// counters against the simulator's.
//
// Recovery surface (docs/RECOVERY.md):
//   --checkpoint-every N   periodic checkpoints through the atomic-write
//                          protocol; emits "CHECKPOINT tag=... slot=..."
//   --resume               restart from the newest valid checkpoint; runs
//                          already completed (done-marker on disk) are
//                          skipped and their recorded digest reprinted,
//                          so a SIGKILLed soak resumed repeatedly
//                          converges to the uninterrupted golden output
//                          (the kill-test's assertion)
//   SIGTERM                parks a final checkpoint, then exits 3
//   --inject-audit-defect S  forces an audit panic at slot S; the panic
//                          hook freezes the newest checkpoint + trace
//                          tail as a replayable bundle for fifoms_replay
//
// Every run prints "DIGEST <tag> <hex>" — the FNV-1a fold of its full
// delivery/purge/fault stream.  Digest equality across interrupted and
// uninterrupted runs certifies bit-identical behaviour.
//
// Exit status: 0 when every scenario passed, 1 otherwise, 3 on SIGTERM.
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/auditor.hpp"
#include "common/panic.hpp"
#include "io/cli.hpp"
#include "sim/simulator.hpp"
#include "snapshot/bundle.hpp"
#include "snapshot/observers.hpp"
#include "snapshot/recovery.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/snapshot_io.hpp"
#include "soak_scenarios.hpp"

namespace {

using namespace fifoms;

volatile std::sig_atomic_t g_stop = 0;

void on_sigterm(int) { g_stop = 1; }

struct SoakStats {
  int scenarios = 0;
  int failures = 0;
  bool stopped = false;
};

void expect(SoakStats& stats, bool ok, const std::string& what) {
  if (ok) return;
  ++stats.failures;
  std::fprintf(stderr, "  FAIL: %s\n", what.c_str());
}

/// Forwarding observer that panics at a chosen slot — a deliberate audit
/// defect, used to prove the counterexample-bundle path end to end.
struct DefectInjector final : SlotObserver {
  SlotTime defect_slot = -1;
  SlotObserver* inner = nullptr;

  void on_inject(const SwitchModel& sw, const Packet& packet) override {
    if (inner != nullptr) inner->on_inject(sw, packet);
  }
  void on_fault_event(SlotTime now, const SwitchModel& sw,
                      const fault::FaultEvent& event) override {
    if (inner != nullptr) inner->on_fault_event(now, sw, event);
  }
  void on_slot(SlotTime now, const SwitchModel& sw,
               const SlotResult& result) override {
    if (inner != nullptr) inner->on_slot(now, sw, result);
    FIFOMS_ASSERT(now != defect_slot,
                  "injected audit defect (--inject-audit-defect)");
  }
  void save_state(snapshot::Writer& out) const override {
    if (inner != nullptr) inner->save_state(out);
  }
  void load_state(snapshot::Reader& in) override {
    if (inner != nullptr) inner->load_state(in);
  }
};

/// Context for the panic hook (a plain function pointer: no captures).
struct BundleContext {
  std::string dir;  // empty = bundles disabled
  const snapshot::TraceRingObserver* trace = nullptr;
  const snapshot::CheckpointStore* store = nullptr;
  std::vector<std::pair<std::string, std::string>> manifest;
};
BundleContext g_bundle;

/// Freeze the evidence before abort(): newest good checkpoint frame plus
/// the trace ring's tail, as a bundle fifoms_replay can re-execute.
void bundle_panic_hook(const char* file, int line, std::string_view message) {
  if (g_bundle.dir.empty()) return;
  try {
    snapshot::ReplayBundle bundle;
    bundle.manifest = g_bundle.manifest;
    bundle.manifest.emplace_back("panic", std::string(message));
    bundle.manifest.emplace_back(
        "panic_at", std::string(file) + ":" + std::to_string(line));
    if (g_bundle.store != nullptr) {
      if (auto loaded = g_bundle.store->load_latest())
        bundle.checkpoint = snapshot::read_file(loaded->path);
    }
    if (g_bundle.trace != nullptr)
      bundle.trace.assign(g_bundle.trace->lines().begin(),
                          g_bundle.trace->lines().end());
    snapshot::write_bundle(g_bundle.dir, bundle);
    std::fprintf(stderr, "counterexample bundle written to %s\n",
                 g_bundle.dir.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bundle emission failed: %s\n", e.what());
  }
}

std::string sanitize(const std::string& tag) {
  std::string out = tag;
  for (char& c : out)
    if (c == '/' || c == '.') c = '-';
  return out;
}

std::string hex64(std::uint64_t v) {
  char buffer[19];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

struct RunFlags {
  SlotTime checkpoint_every = 0;
  std::string checkpoint_dir;
  bool resume = false;
  SlotTime defect_slot = -1;
  std::string bundle_dir;
};

/// Run one (scenario, policy) combination with the full harness stack —
/// auditor, defect injector, trace ring, digest — under checkpoint
/// protection when enabled, and cross-check the auditor's counters
/// against the simulator's report.
void run_scenario(SoakStats& stats, soak::SoakSetup setup, SlotTime slots,
                  std::uint64_t seed, const RunFlags& flags) {
  ++stats.scenarios;
  const std::string tag = setup.tag();
  const std::string stem = sanitize(tag);
  const bool checkpointing =
      flags.checkpoint_every > 0 && !flags.checkpoint_dir.empty();

  // Completed runs leave a done-marker holding their digest: a resumed
  // soak skips the work and reprints the recorded line, so repeated
  // kill/resume cycles converge to the golden transcript.
  const std::filesystem::path done_path =
      std::filesystem::path(flags.checkpoint_dir) / (stem + ".done");
  if (checkpointing && flags.resume && std::filesystem::exists(done_path)) {
    const auto bytes = snapshot::read_file(done_path);
    std::string digest_hex(bytes.begin(), bytes.end());
    while (!digest_hex.empty() && digest_hex.back() == '\n')
      digest_hex.pop_back();
    std::printf("DIGEST %s %s\n", tag.c_str(), digest_hex.c_str());
    std::printf("RUN-DONE %s (cached)\n", tag.c_str());
    return;
  }

  SimConfig config;
  config.total_slots = slots;
  config.warmup_fraction = 0.25;
  config.seed = seed;
  config.fault_plan = &setup.plan;

  // Observer stack, outermost first: digest -> trace ring -> defect
  // injector -> auditor.  The whole chain serialises into checkpoints.
  MatchingAuditor auditor;
  DefectInjector defect;
  defect.defect_slot = flags.defect_slot;
  defect.inner = &auditor;
  snapshot::TraceRingObserver trace(256, &defect);
  snapshot::DigestObserver digest(&trace);

  Simulator simulator(*setup.sw, *setup.traffic, config);
  simulator.set_observer(&digest);

  SimResult result;
  if (checkpointing) {
    snapshot::RecoveryOptions recovery;
    recovery.checkpoint_every = flags.checkpoint_every;
    recovery.dir = flags.checkpoint_dir;
    recovery.stem = stem;
    recovery.resume = flags.resume;
    recovery.stop_requested = [] { return g_stop != 0; };
    recovery.on_checkpoint = [&](std::uint64_t epoch, std::size_t bytes) {
      std::printf("CHECKPOINT tag=%s slot=%llu bytes=%zu\n", tag.c_str(),
                  static_cast<unsigned long long>(epoch), bytes);
      std::fflush(stdout);  // survive a SIGKILL mid-epoch (kill-test)
    };
    snapshot::RecoveryRunner runner(simulator, std::move(recovery));

    // Arm the panic hook: an invariant failure mid-run freezes the
    // newest checkpoint and the trace tail as a replayable bundle.
    g_bundle.dir = flags.bundle_dir;
    g_bundle.trace = &trace;
    g_bundle.store = &runner.store();
    g_bundle.manifest = {
        {"scenario", setup.name},
        {"policy", soak::policy_name(setup.policy)},
        {"ports", std::to_string(setup.sw->num_inputs())},
        {"slots", std::to_string(slots)},
        {"seed", std::to_string(seed)},
        {"defect_slot", std::to_string(flags.defect_slot)},
    };
    set_panic_hook(&bundle_panic_hook);

    snapshot::RecoveryReport report = runner.run();

    set_panic_hook(nullptr);
    g_bundle = BundleContext{};

    for (const std::string& note : report.rejected_files)
      std::fprintf(stderr, "  checkpoint rejected: %s\n", note.c_str());
    if (report.resumed)
      std::printf("RESUMED %s slot=%lld\n", tag.c_str(),
                  static_cast<long long>(report.resumed_from_slot));
    if (!report.completed) {
      if (report.quarantined) {
        expect(stats, false, tag + ": quarantined: " + report.error);
      } else {
        stats.stopped = true;
        std::printf("STOPPED %s slot=%lld (checkpoint parked)\n", tag.c_str(),
                    static_cast<long long>(report.last_checkpoint_slot));
      }
      return;
    }
    result = std::move(report.result);
  } else {
    result = simulator.run();
  }

  expect(stats, result.fault_events_applied > 0,
         tag + ": no fault events fired");
  expect(stats, result.packets_delivered > 0,
         tag + ": nothing was delivered through the storm");
  if (setup.policy == StrandedCellPolicy::kHold)
    expect(stats, result.copies_purged == 0,
           tag + ": hold policy purged " +
               std::to_string(result.copies_purged) + " copies");

  if (MatchingAuditor::enabled()) {
    expect(stats, auditor.fault_events_seen() == result.fault_events_applied,
           tag + ": auditor saw " +
               std::to_string(auditor.fault_events_seen()) +
               " fault events, simulator applied " +
               std::to_string(result.fault_events_applied));
    expect(stats,
           auditor.slots_audited() ==
               static_cast<std::uint64_t>(result.total_slots),
           tag + ": audited " + std::to_string(auditor.slots_audited()) +
               " of " + std::to_string(result.total_slots) + " slots");
    expect(stats, auditor.copies_checked() == result.copies_delivered,
           tag + ": auditor checked " +
               std::to_string(auditor.copies_checked()) +
               " copies, simulator delivered " +
               std::to_string(result.copies_delivered));
    expect(stats, auditor.copies_purged() == result.copies_purged,
           tag + ": auditor verified " +
               std::to_string(auditor.copies_purged()) +
               " purges, simulator reported " +
               std::to_string(result.copies_purged));
  }

  std::printf(
      "  %-34s %8llu delivered %6llu purged %5llu suppressed %4llu events%s\n",
      tag.c_str(),
      static_cast<unsigned long long>(result.copies_delivered),
      static_cast<unsigned long long>(result.copies_purged),
      static_cast<unsigned long long>(result.packets_suppressed),
      static_cast<unsigned long long>(result.fault_events_applied),
      result.unstable ? "  UNSTABLE" : "");
  const std::string digest_hex = hex64(digest.digest());
  std::printf("DIGEST %s %s\n", tag.c_str(), digest_hex.c_str());
  std::printf("RUN-DONE %s\n", tag.c_str());
  if (checkpointing) {
    const std::string done_text = digest_hex + "\n";
    snapshot::write_file_atomic(
        done_path, std::vector<std::uint8_t>(done_text.begin(),
                                             done_text.end()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("fifoms_soak",
                   "fault-storm soak: FIFOMS degradation under the "
                   "docs/FAULTS.md scenarios with the invariant auditor "
                   "attached, under checkpoint/restore protection "
                   "(docs/RECOVERY.md)");
  parser.add_int("ports", 16, "switch radix N");
  parser.add_int("slots", 20'000, "simulated slots per scenario");
  parser.add_int("seed", 42, "master seed");
  parser.add_bool("quick", false, "small preset for CI (8 ports, 2k slots)");
  parser.add_int("checkpoint-every", 0,
                 "checkpoint cadence in slots (0 = no checkpoints)");
  parser.add_string("checkpoint-dir", "",
                    "checkpoint directory (required for checkpointing)");
  parser.add_bool("resume", false,
                  "resume from the newest valid checkpoint; skip runs "
                  "with a done-marker");
  parser.add_string("scenario", "",
                    "run only this scenario (substring match on the tag)");
  parser.add_int("inject-audit-defect", -1,
                 "force an audit panic at this slot (tests the "
                 "counterexample-bundle path; -1 = off)");
  parser.add_string("bundle-dir", "",
                    "where an audit panic writes its replay bundle "
                    "(default: <checkpoint-dir>/bundle)");
  if (!parser.parse(argc, argv)) return 1;

  int ports = static_cast<int>(parser.get_int("ports"));
  SlotTime slots = parser.get_int("slots");
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  if (parser.get_bool("quick")) {
    ports = 8;
    slots = 2'000;
  }

  RunFlags flags;
  flags.checkpoint_every = parser.get_int("checkpoint-every");
  flags.checkpoint_dir = parser.get_string("checkpoint-dir");
  flags.resume = parser.get_bool("resume");
  flags.defect_slot = parser.get_int("inject-audit-defect");
  flags.bundle_dir = parser.get_string("bundle-dir");
  if (flags.bundle_dir.empty() && !flags.checkpoint_dir.empty())
    flags.bundle_dir = flags.checkpoint_dir + "/bundle";
  const std::string only = parser.get_string("scenario");

  std::signal(SIGTERM, &on_sigterm);

  std::printf("== fifoms_soak ==\nN=%d, slots=%lld, seed=%llu, audit=%s\n",
              ports, static_cast<long long>(slots),
              static_cast<unsigned long long>(seed),
              MatchingAuditor::enabled() ? "on" : "OFF (FIFOMS_AUDIT=0)");

  SoakStats stats;
  for (const std::string& name : soak::scenario_names()) {
    for (const StrandedCellPolicy policy :
         {StrandedCellPolicy::kHold, StrandedCellPolicy::kPurge}) {
      if (g_stop != 0) {
        stats.stopped = true;
        break;
      }
      // Fresh setup per run so the arrival stream restarts identically.
      soak::SoakSetup setup =
          soak::make_soak_setup(name, policy, ports, slots, seed);
      if (!only.empty() && setup.tag().find(only) == std::string::npos)
        continue;
      run_scenario(stats, std::move(setup), slots, seed, flags);
      if (stats.stopped) break;
    }
    if (stats.stopped) break;
  }

  if (stats.stopped) {
    std::printf("\nSIGTERM: soak stopped cleanly; resume with --resume\n");
    return 3;
  }
  std::printf("\n%d scenario runs, %d failures\n", stats.scenarios,
              stats.failures);
  if (stats.failures > 0) return 1;
  std::printf("all fault-storm invariants held\n");
  return 0;
}
