// fifoms_soak: fault-storm soak harness (docs/FAULTS.md).
//
// Drives FIFOMS on the multicast VOQ switch through the fault scenarios —
// rolling output flaps under 0.9 load, correlated line-card loss, and the
// adversarial fault storm under burst traffic — with the runtime invariant
// auditor attached, under BOTH stranded-cell policies.  The auditor
// panics the moment a copy lands on a dead port, a purge touches a live
// output, or a fanout counter drifts, so merely finishing a scenario is
// the assertion that every invariant held through every down/up
// transition; the harness adds end-of-run cross-checks of the auditor's
// counters against the simulator's.
//
// Exit status: 0 when every scenario passed, 1 otherwise (CI: the
// soak-smoke job runs `fifoms_soak --quick` under asan-ubsan).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/auditor.hpp"
#include "core/fifoms.hpp"
#include "fault/fault.hpp"
#include "io/cli.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/burst.hpp"

namespace {

using namespace fifoms;

struct Scenario {
  std::string name;
  fault::FaultPlan plan;
};

struct SoakStats {
  int scenarios = 0;
  int failures = 0;
};

const char* policy_name(StrandedCellPolicy policy) {
  return policy == StrandedCellPolicy::kHold ? "hold" : "purge";
}

void expect(SoakStats& stats, bool ok, const std::string& what) {
  if (ok) return;
  ++stats.failures;
  std::fprintf(stderr, "  FAIL: %s\n", what.c_str());
}

/// Run one (scenario, policy) combination with the auditor attached and
/// cross-check its counters against the simulator's report.
void run_scenario(SoakStats& stats, const Scenario& scenario,
                  TrafficModel& traffic, StrandedCellPolicy policy,
                  int ports, SlotTime slots, std::uint64_t seed) {
  ++stats.scenarios;

  VoqSwitch::Options options;
  options.stranded_policy = policy;
  VoqSwitch sw(ports, std::make_unique<FifomsScheduler>(), options);

  SimConfig config;
  config.total_slots = slots;
  config.warmup_fraction = 0.25;
  config.seed = seed;
  config.fault_plan = &scenario.plan;

  MatchingAuditor auditor;
  Simulator simulator(sw, traffic, config);
  simulator.set_observer(&auditor);
  const SimResult result = simulator.run();

  const std::string tag = scenario.name + "/" + policy_name(policy);
  expect(stats, result.fault_events_applied > 0,
         tag + ": no fault events fired");
  expect(stats, result.packets_delivered > 0,
         tag + ": nothing was delivered through the storm");
  if (policy == StrandedCellPolicy::kHold)
    expect(stats, result.copies_purged == 0,
           tag + ": hold policy purged " +
               std::to_string(result.copies_purged) + " copies");

  if (MatchingAuditor::enabled()) {
    expect(stats, auditor.fault_events_seen() == result.fault_events_applied,
           tag + ": auditor saw " +
               std::to_string(auditor.fault_events_seen()) +
               " fault events, simulator applied " +
               std::to_string(result.fault_events_applied));
    expect(stats,
           auditor.slots_audited() ==
               static_cast<std::uint64_t>(result.total_slots),
           tag + ": audited " + std::to_string(auditor.slots_audited()) +
               " of " + std::to_string(result.total_slots) + " slots");
    expect(stats, auditor.copies_checked() == result.copies_delivered,
           tag + ": auditor checked " +
               std::to_string(auditor.copies_checked()) +
               " copies, simulator delivered " +
               std::to_string(result.copies_delivered));
    expect(stats, auditor.copies_purged() == result.copies_purged,
           tag + ": auditor verified " +
               std::to_string(auditor.copies_purged()) +
               " purges, simulator reported " +
               std::to_string(result.copies_purged));
  }

  std::printf(
      "  %-34s %8llu delivered %6llu purged %5llu suppressed %4llu events%s\n",
      tag.c_str(),
      static_cast<unsigned long long>(result.copies_delivered),
      static_cast<unsigned long long>(result.copies_purged),
      static_cast<unsigned long long>(result.packets_suppressed),
      static_cast<unsigned long long>(result.fault_events_applied),
      result.unstable ? "  UNSTABLE" : "");
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("fifoms_soak",
                   "fault-storm soak: FIFOMS degradation under the "
                   "docs/FAULTS.md scenarios with the invariant auditor "
                   "attached");
  parser.add_int("ports", 16, "switch radix N");
  parser.add_int("slots", 20'000, "simulated slots per scenario");
  parser.add_int("seed", 42, "master seed");
  parser.add_bool("quick", false, "small preset for CI (8 ports, 2k slots)");
  if (!parser.parse(argc, argv)) return 1;

  int ports = static_cast<int>(parser.get_int("ports"));
  SlotTime slots = parser.get_int("slots");
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  if (parser.get_bool("quick")) {
    ports = 8;
    slots = 2'000;
  }

  std::printf("== fifoms_soak ==\nN=%d, slots=%lld, seed=%llu, audit=%s\n",
              ports, static_cast<long long>(slots),
              static_cast<unsigned long long>(seed),
              MatchingAuditor::enabled() ? "on" : "OFF (FIFOMS_AUDIT=0)");

  const double b = 0.2;
  auto bernoulli_09 = [&] {
    return std::make_unique<BernoulliTraffic>(
        ports, BernoulliTraffic::p_for_load(0.9, b, ports), b);
  };
  // Burst traffic at 0.8 load: the storm scenario's arrival process
  // (paper Fig. 8 parameters, shortened horizon).
  const double burst_b = 0.5;
  const double e_on = 16.0;
  auto burst_08 = [&] {
    return std::make_unique<BurstTraffic>(
        ports, BurstTraffic::e_off_for_load(0.8, e_on, burst_b, ports), e_on,
        burst_b);
  };

  // The flap cadence scales with the horizon so every scenario sees many
  // full down/up cycles regardless of --slots.
  const SlotTime flap_period = std::max<SlotTime>(16, slots / (4 * ports));
  const SlotTime flap_down = std::max<SlotTime>(4, flap_period / 2);

  std::vector<Scenario> scenarios;
  scenarios.push_back(Scenario{
      "rolling-flaps/bern-0.9",
      fault::FaultPlan::rolling_port_flaps(ports, flap_period, flap_period,
                                           flap_down, slots)});
  scenarios.push_back(Scenario{
      "line-card-loss/bern-0.9",
      fault::FaultPlan::correlated_line_card_loss(
          ports, seed, slots / 4, slots / 2, std::max(1, ports / 4))});
  scenarios.push_back(Scenario{"fault-storm/burst-0.8",
                               fault::FaultPlan::fault_storm(ports, seed,
                                                             slots)});

  SoakStats stats;
  for (const Scenario& scenario : scenarios) {
    for (const StrandedCellPolicy policy :
         {StrandedCellPolicy::kHold, StrandedCellPolicy::kPurge}) {
      // Fresh traffic per run so the arrival stream restarts identically.
      auto traffic = scenario.name.find("burst") != std::string::npos
                         ? std::unique_ptr<TrafficModel>(burst_08())
                         : std::unique_ptr<TrafficModel>(bernoulli_09());
      run_scenario(stats, scenario, *traffic, policy, ports, slots, seed);
    }
  }

  std::printf("\n%d scenario runs, %d failures\n", stats.scenarios,
              stats.failures);
  if (stats.failures > 0) return 1;
  std::printf("all fault-storm invariants held\n");
  return 0;
}
