// Scheduler face-off: run every scheduler in the library on one workload
// described by a traffic spec string (see traffic/factory.hpp).
//
//   $ ./scheduler_faceoff --traffic bernoulli:p=0.25,b=0.2
//   $ ./scheduler_faceoff --traffic burst:eon=16,eoff=48,b=0.5 --slots 200000
//
// Useful for exploring a workload before committing to a full sweep; all
// schedulers see the bit-identical arrival sequence (paired comparison).
#include <cstdio>
#include <memory>

#include "io/cli.hpp"
#include "io/table.hpp"
#include "sim/experiment.hpp"
#include "traffic/factory.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;

  ArgParser parser("scheduler_faceoff",
                   "compare all schedulers on one traffic spec");
  parser.add_int("ports", 16, "switch radix");
  parser.add_int("slots", 100000, "simulated slots");
  parser.add_int("seed", 42, "simulation seed");
  parser.add_string("traffic", "bernoulli:p=0.25,b=0.2",
                    "traffic spec (kind:key=value,...)");
  if (!parser.parse(argc, argv)) return 1;

  const int ports = static_cast<int>(parser.get_int("ports"));
  const std::string spec = parser.get_string("traffic");

  SimConfig config;
  config.total_slots = parser.get_int("slots");
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  const std::vector<SwitchFactory> contenders = {
      make_fifoms(),      make_fifoms_nosplit(), make_cioq_fifoms(2),
      make_islip(),       make_eslip(),          make_pim(),
      make_ilqf(),        make_drr2d(),          make_tatra(),
      make_wba(),         make_concentrate(),    make_oqfifo()};

  {
    auto probe = make_traffic(ports, spec);
    std::printf("Workload: %s on a %dx%d switch "
                "(analytic effective load %.3f)\n\n",
                spec.c_str(), ports, ports, probe->offered_load());
  }

  TablePrinter table({"scheduler", "out_delay", "in_delay", "p99_delay",
                      "avg_queue", "max_queue", "rounds", "thru", "status"});
  for (const SwitchFactory& factory : contenders) {
    auto sw = factory.make(ports);
    auto traffic = make_traffic(ports, spec);
    Simulator sim(*sw, *traffic, config);
    const SimResult r = sim.run();
    table.row({factory.label, TablePrinter::fixed(r.output_delay.mean(), 2),
               TablePrinter::fixed(r.input_delay.mean(), 2),
               TablePrinter::fixed(r.output_delay_p99, 1),
               TablePrinter::fixed(r.queue_mean.mean(), 2),
               std::to_string(r.queue_max),
               TablePrinter::fixed(r.rounds_busy.mean(), 2),
               TablePrinter::fixed(r.throughput, 3),
               r.unstable ? "OVERLOADED" : "ok"});
  }
  table.print();
  std::printf("\n(All schedulers saw the identical arrival sequence: "
              "traffic and scheduler use separate RNG streams.)\n");
  return 0;
}
