// Starvation probe: an adversarial workload that starves greedy
// schedulers, demonstrating the paper's "starvation free" claim for
// FIFOMS (Section VI).
//
// Setup: one low-rate "victim" flow from input 0 to output 0 competes
// against N-1 aggressor inputs that together drive output 0 to ~95% load
// — heavy but sustainable, so delays are meaningful steady-state numbers.
// FIFOMS's time-stamp rule serves the victim once every strictly earlier
// competitor is served (bounded wait).  iLQF weighs by queue length, so
// the victim's length-1 VOQ loses to the aggressors' long queues — the
// classic starvation pathology of queue-length-greedy policies.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "core/fifoms.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "sched/ilqf.hpp"
#include "sched/islip.hpp"
#include "sched/wba.hpp"
#include "sim/voq_switch.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;

  ArgParser parser("fairness_starvation",
                   "adversarial starvation probe for scheduler fairness");
  parser.add_int("ports", 8, "switch radix");
  parser.add_int("slots", 40000, "simulated slots");
  parser.add_int("victim-period", 50, "slots between victim packets");
  parser.add_double("hot-load", 0.93, "aggressor load on the hot output");
  parser.add_int("seed", 13, "scheduler tie-break seed");
  if (!parser.parse(argc, argv)) return 1;

  const int ports = static_cast<int>(parser.get_int("ports"));
  const SlotTime slots = parser.get_int("slots");
  const SlotTime victim_period = parser.get_int("victim-period");

  struct Probe {
    const char* label;
    std::unique_ptr<SwitchModel> sw;
  };
  std::vector<Probe> probes;
  probes.push_back({"FIFOMS", std::make_unique<VoqSwitch>(
                                  ports, std::make_unique<FifomsScheduler>())});
  probes.push_back({"iSLIP", std::make_unique<VoqSwitch>(
                                 ports, std::make_unique<IslipScheduler>())});
  probes.push_back({"iLQF", std::make_unique<VoqSwitch>(
                                ports, std::make_unique<IlqfScheduler>())});

  const double hot_load = parser.get_double("hot-load");
  const double aggressor_p = hot_load / static_cast<double>(ports - 1);
  std::printf("Starvation probe: victim flow 0->0 every %lld slots vs %d "
              "aggressor inputs driving output 0 at %.0f%% load\n\n",
              static_cast<long long>(victim_period), ports - 1,
              hot_load * 100.0);

  TablePrinter table({"scheduler", "victim_mean_delay", "victim_worst_delay",
                      "victim_delivered", "aggressor_mean_delay"});
  for (Probe& probe : probes) {
    Rng rng(static_cast<std::uint64_t>(parser.get_int("seed")));
    PacketId next_id = 0;
    std::map<PacketId, SlotTime> victim_arrivals;
    double victim_delay_sum = 0;
    SlotTime victim_worst = 0;
    int victim_delivered = 0;
    double aggressor_delay_sum = 0;
    std::uint64_t aggressor_copies = 0;

    SlotResult result;
    for (SlotTime now = 0; now < slots; ++now) {
      // Victim: one unicast packet to output 0 every victim_period slots.
      if (now % victim_period == 0) {
        Packet p;
        p.id = next_id++;
        p.input = 0;
        p.arrival = now;
        p.destinations = PortSet::single(0);
        probe.sw->inject(p);
        victim_arrivals[p.id] = now;
      }
      // Aggressors: the other inputs send to output 0 with probability
      // aggressor_p each slot, keeping VOQ(i, 0) long (iLQF bait) while
      // the output stays below line rate.
      for (PortId input = 1; input < ports; ++input) {
        if (!rng.bernoulli(aggressor_p)) continue;
        Packet p;
        p.id = next_id++;
        p.input = input;
        p.arrival = now;
        p.destinations = PortSet::single(0);
        probe.sw->inject(p);
      }
      result.clear();
      probe.sw->step(now, rng, result);
      for (const Delivery& d : result.deliveries) {
        const auto it = victim_arrivals.find(d.packet);
        if (it != victim_arrivals.end()) {
          const SlotTime delay = now - it->second;
          victim_delay_sum += static_cast<double>(delay);
          victim_worst = std::max(victim_worst, delay);
          ++victim_delivered;
          victim_arrivals.erase(it);
        } else {
          aggressor_delay_sum += static_cast<double>(now - d.arrival);
          ++aggressor_copies;
        }
      }
    }

    table.row(
        {probe.label,
         victim_delivered
             ? TablePrinter::fixed(victim_delay_sum / victim_delivered, 1)
             : "never served",
         victim_delivered ? std::to_string(victim_worst) : "unbounded",
         std::to_string(victim_delivered) + "/" +
             std::to_string((slots + victim_period - 1) / victim_period),
         aggressor_copies
             ? TablePrinter::fixed(
                   aggressor_delay_sum / static_cast<double>(aggressor_copies),
                   1)
             : "-"});
  }
  table.print();
  std::printf(
      "\nFIFOMS's time-stamp rule bounds the victim's wait by the number of\n"
      "strictly earlier competitors (paper Section VI, starvation-free).\n");
  return 0;
}
