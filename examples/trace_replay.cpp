// Record-once / replay-everywhere: capture an arrival trace from any
// generative model, persist it to a text file, and replay the identical
// trace through several schedulers.
//
//   $ ./trace_replay --traffic uniform:p=0.18,maxf=8 --slots 20000
//
// This is the workflow for comparing schedulers on captured production
// traces (the file format is "slot input {d0,d1,...}" per line, easy to
// synthesise from a packet capture).
#include <cstdio>
#include <memory>

#include "io/cli.hpp"
#include "io/table.hpp"
#include "sim/experiment.hpp"
#include "traffic/factory.hpp"
#include "traffic/trace.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;

  ArgParser parser("trace_replay",
                   "record a traffic trace and replay it across schedulers");
  parser.add_int("ports", 16, "switch radix");
  parser.add_int("slots", 20000, "trace length in slots");
  parser.add_int("seed", 5, "recording seed");
  parser.add_string("traffic", "uniform:p=0.18,maxf=8",
                    "generative model to record (p=0.18, maxf=8 -> load 0.81)");
  parser.add_string("trace", "recorded.trace", "trace file path");
  if (!parser.parse(argc, argv)) return 1;

  const int ports = static_cast<int>(parser.get_int("ports"));
  const SlotTime slots = parser.get_int("slots");
  const std::string trace_path = parser.get_string("trace");

  // ---- Record ----------------------------------------------------------
  {
    auto inner = make_traffic(ports, parser.get_string("traffic"));
    TraceRecorder recorder(*inner);
    Rng rng(static_cast<std::uint64_t>(parser.get_int("seed")));
    recorder.reset(rng);
    for (SlotTime now = 0; now < slots; ++now)
      for (PortId input = 0; input < ports; ++input)
        (void)recorder.arrival(input, now, rng);
    recorder.save(trace_path);
    std::printf("Recorded %zu packets over %lld slots into %s\n",
                recorder.records().size(), static_cast<long long>(slots),
                trace_path.c_str());
  }

  // ---- Replay through each scheduler ------------------------------------
  SimConfig config;
  config.total_slots = slots;
  config.warmup_fraction = 0.25;
  config.seed = 99;  // scheduler tie-break randomness only

  TablePrinter table({"scheduler", "out_delay", "in_delay", "avg_queue",
                      "max_queue", "status"});
  for (const SwitchFactory& factory :
       {make_fifoms(), make_islip(), make_tatra(), make_oqfifo()}) {
    auto sw = factory.make(ports);
    ScriptedTraffic traffic = ScriptedTraffic::load(trace_path);
    Simulator sim(*sw, traffic, config);
    const SimResult r = sim.run();
    table.row({factory.label, TablePrinter::fixed(r.output_delay.mean(), 2),
               TablePrinter::fixed(r.input_delay.mean(), 2),
               TablePrinter::fixed(r.queue_mean.mean(), 2),
               std::to_string(r.queue_max),
               r.unstable ? "OVERLOADED" : "ok"});
  }
  table.print();
  std::printf("\nEvery scheduler replayed the byte-identical trace "
              "from %s.\n", trace_path.c_str());
  return 0;
}
