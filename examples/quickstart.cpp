// Quickstart: build a 16x16 multicast VOQ switch running FIFOMS, offer it
// Bernoulli multicast traffic at 70% effective load, and print the
// paper's four statistics.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the library: one switch model,
// one traffic model, one Simulator.
#include <cstdio>
#include <memory>

#include "core/fifoms.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/bernoulli.hpp"

int main() {
  using namespace fifoms;

  const int ports = 16;
  const double b = 0.2;      // each output drawn with probability 0.2
  const double load = 0.7;   // effective load per output

  // The switch: the paper's queue structure + the FIFOMS scheduler.
  VoqSwitch sw(ports, std::make_unique<FifomsScheduler>());

  // The workload: Bernoulli multicast, p chosen to hit the target load.
  BernoulliTraffic traffic(
      ports, BernoulliTraffic::p_for_load(load, b, ports), b);

  SimConfig config;
  config.total_slots = 100'000;  // warm-up is the first half
  config.seed = 2026;

  Simulator sim(sw, traffic, config);
  const SimResult result = sim.run();

  std::printf("FIFOMS on a %dx%d switch, Bernoulli b=%.1f, load=%.2f\n",
              ports, ports, b, load);
  std::printf("  avg input-oriented delay : %8.3f slots\n",
              result.input_delay.mean());
  std::printf("  avg output-oriented delay: %8.3f slots\n",
              result.output_delay.mean());
  std::printf("  p99 output delay         : %8.3f slots\n",
              result.output_delay_p99);
  std::printf("  avg queue size           : %8.3f data cells/port\n",
              result.queue_mean.mean());
  std::printf("  max queue size           : %8zu data cells\n",
              result.queue_max);
  std::printf("  avg convergence rounds   : %8.3f (busy slots)\n",
              result.rounds_busy.mean());
  std::printf("  throughput               : %8.3f of line rate\n",
              result.throughput);
  std::printf("  packets: %llu offered, %llu delivered, %zu in flight\n",
              static_cast<unsigned long long>(result.packets_offered),
              static_cast<unsigned long long>(result.packets_delivered),
              result.in_flight_at_end);
  return 0;
}
