// Frame-level latency: variable-length frames through the fixed-cell
// switch, with ingress segmentation and egress reassembly.
//
// The paper (like most cell-switch work) reports cell delays; an
// application sees *frame* latency — a frame is usable only when its last
// cell has reassembled at the output.  This example feeds identical
// multicast frame traffic (lengths uniform in [64, 1500] bytes, 64-byte
// cells) through FIFOMS and iSLIP and reports mean/p99 frame-completion
// latency per scheduler, plus the frame-size breakdown for FIFOMS.
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "core/fifoms.hpp"
#include "fabric/segmentation.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "sched/islip.hpp"
#include "sim/voq_switch.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/welford.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;

  ArgParser parser("frame_latency",
                   "frame segmentation/reassembly latency comparison");
  parser.add_int("ports", 16, "switch radix");
  parser.add_int("slots", 60000, "simulated slots");
  // Default sized for ~0.6 effective load: 0.015 frames/slot * ~12.3
  // cells/frame * ~3.3 mean fanout (b = 0.2 on 16 ports).
  parser.add_double("framep", 0.015, "per-slot frame arrival probability");
  parser.add_double("b", 0.2, "per-output destination probability");
  parser.add_int("cell", 64, "cell payload bytes");
  parser.add_int("seed", 21, "simulation seed");
  if (!parser.parse(argc, argv)) return 1;

  const int ports = static_cast<int>(parser.get_int("ports"));
  const SlotTime slots = parser.get_int("slots");
  const int cell_bytes = static_cast<int>(parser.get_int("cell"));

  auto run = [&](const char* label, std::unique_ptr<VoqScheduler> scheduler,
                 RunningStat* by_size, P2Quantile* p99_out) {
    FrameTraffic traffic(ports, Segmenter(cell_bytes),
                         parser.get_double("framep"), 64, 1500,
                         parser.get_double("b"));
    VoqSwitch sw(ports, std::move(scheduler));
    Reassembler reassembler;
    Rng traffic_rng(static_cast<std::uint64_t>(parser.get_int("seed")));
    Rng sched_rng(99);

    std::unordered_map<PacketId, FrameId> packet_frame;
    PacketId next_id = 0;
    RunningStat latency;
    P2Quantile p99(0.99);
    SlotResult result;
    for (SlotTime now = 0; now < slots; ++now) {
      for (PortId input = 0; input < ports; ++input) {
        const PortSet dests = traffic.arrival(input, now, traffic_rng);
        if (dests.empty()) continue;
        packet_frame[next_id] = traffic.last_frame(input).id;
        sw.inject(Packet{next_id, input, now, dests});
        ++next_id;
      }
      result.clear();
      sw.step(now, sched_rng, result);
      for (const Delivery& d : result.deliveries) {
        const Frame& frame =
            traffic.frames()[static_cast<std::size_t>(
                packet_frame.at(d.packet))];
        if (const auto done = reassembler.on_cell(frame, d.output, now)) {
          if (frame.created >= slots / 4) {  // warm-up: first quarter
            latency.add(static_cast<double>(done->latency));
            p99.add(static_cast<double>(done->latency));
            if (by_size != nullptr)
              by_size[frame.cells - 1].add(
                  static_cast<double>(done->latency));
          }
        }
      }
    }
    std::printf("  %-8s mean frame latency %7.2f slots, p99 %7.1f, "
                "%llu frames measured\n",
                label, latency.mean(), p99_out ? (*p99_out = p99).value()
                                               : p99.value(),
                static_cast<unsigned long long>(latency.count()));
    return latency;
  };

  std::printf("Variable-length frames (64-1500B, %dB cells) on a %dx%d "
              "switch:\n\n", cell_bytes, ports, ports);

  const int max_cells = Segmenter(cell_bytes).cells_for(1500);
  std::vector<RunningStat> by_size(static_cast<std::size_t>(max_cells));
  P2Quantile fifoms_p99(0.99);
  run("FIFOMS", std::make_unique<FifomsScheduler>(), by_size.data(),
      &fifoms_p99);
  run("iSLIP", std::make_unique<IslipScheduler>(), nullptr, nullptr);

  std::printf("\nFIFOMS frame latency by frame size:\n");
  TablePrinter table({"cells/frame", "frames", "mean_latency"});
  for (int cells = 1; cells <= max_cells; ++cells) {
    const RunningStat& stat = by_size[static_cast<std::size_t>(cells - 1)];
    if (stat.empty()) continue;
    // Only print a subsample of rows to keep the table readable.
    if (cells > 4 && cells % 4 != 0 && cells != max_cells) continue;
    table.row({std::to_string(cells), std::to_string(stat.count()),
               TablePrinter::fixed(stat.mean(), 2)});
  }
  table.print();
  std::printf("\nA k-cell frame needs at least k-1 extra slots of ingress "
              "serialisation;\nscheduling delay adds on top of that floor.\n");
  return 0;
}
