// Custom sweep: the experiment harness as a command-line tool.
//
//   $ ./custom_sweep --algos FIFOMS,iSLIP,OQFIFO --traffic bernoulli
//                    --b 0.2 --loads 0.3,0.6,0.9 --slots 50000 --out my.csv
//
// Runs the paper's protocol (load sweep x algorithms x replications) for
// any combination of the library's schedulers and traffic families, and
// writes the standard CSV + console tables.  This is the "I want the
// paper's methodology on MY parameters" entry point.
#include <cstdio>
#include <memory>
#include <string>

#include "io/cli.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "sim/experiment.hpp"
#include "traffic/bernoulli.hpp"
#include "traffic/burst.hpp"
#include "traffic/uniform_fanout.hpp"
#include "traffic/unicast.hpp"

namespace {

using namespace fifoms;

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) items.push_back(text.substr(start));
      break;
    }
    items.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return items;
}

SwitchFactory factory_by_name(const std::string& name) {
  if (name == "FIFOMS") return make_fifoms();
  if (name == "FIFOMS-nosplit") return make_fifoms_nosplit();
  if (name == "FIFOMS-hw") return make_fifoms_hw();
  if (name == "FIFOMS-s2") return make_cioq_fifoms(2);
  if (name == "iSLIP") return make_islip();
  if (name == "ESLIP") return make_eslip();
  if (name == "PIM") return make_pim();
  if (name == "iLQF") return make_ilqf();
  if (name == "2DRR") return make_drr2d();
  if (name == "TATRA") return make_tatra();
  if (name == "WBA") return make_wba();
  if (name == "Concentrate") return make_concentrate();
  if (name == "OQFIFO") return make_oqfifo();
  std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("custom_sweep",
                   "paper-protocol load sweep over chosen schedulers");
  parser.add_int("ports", 16, "switch radix");
  parser.add_int("slots", 50000, "slots per run");
  parser.add_int("reps", 2, "replications per point");
  parser.add_int("seed", 42, "master seed");
  parser.add_string("algos", "FIFOMS,TATRA,iSLIP,OQFIFO",
                    "comma-separated scheduler list");
  parser.add_string("traffic", "bernoulli",
                    "bernoulli | uniform | unicast | burst");
  parser.add_double("b", 0.2, "destination probability (bernoulli/burst)");
  parser.add_int("maxf", 8, "max fanout (uniform)");
  parser.add_double("eon", 16.0, "mean burst length (burst)");
  parser.add_string("loads", "0.2,0.4,0.6,0.8,0.9", "load points");
  parser.add_string("out", "custom_sweep.csv", "CSV output path");
  if (!parser.parse(argc, argv)) return 1;

  SweepConfig sweep;
  sweep.num_ports = static_cast<int>(parser.get_int("ports"));
  sweep.slots = parser.get_int("slots");
  sweep.replications = static_cast<int>(parser.get_int("reps"));
  sweep.master_seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  for (const std::string& item : split_csv(parser.get_string("loads")))
    sweep.loads.push_back(std::stod(item));

  std::vector<SwitchFactory> switches;
  for (const std::string& name : split_csv(parser.get_string("algos")))
    switches.push_back(factory_by_name(name));

  const int ports = sweep.num_ports;
  const std::string kind = parser.get_string("traffic");
  const double b = parser.get_double("b");
  const int maxf = static_cast<int>(parser.get_int("maxf"));
  const double eon = parser.get_double("eon");
  TrafficFactory traffic;
  if (kind == "bernoulli") {
    traffic = [ports, b](double load) -> std::unique_ptr<TrafficModel> {
      return std::make_unique<BernoulliTraffic>(
          ports, BernoulliTraffic::p_for_load(load, b, ports), b);
    };
  } else if (kind == "uniform") {
    traffic = [ports, maxf](double load) -> std::unique_ptr<TrafficModel> {
      return std::make_unique<UniformFanoutTraffic>(
          ports, UniformFanoutTraffic::p_for_load(load, maxf), maxf);
    };
  } else if (kind == "unicast") {
    traffic = [ports](double load) -> std::unique_ptr<TrafficModel> {
      return std::make_unique<UnicastTraffic>(ports, load);
    };
  } else if (kind == "burst") {
    traffic = [ports, b, eon](double load) -> std::unique_ptr<TrafficModel> {
      return std::make_unique<BurstTraffic>(
          ports, BurstTraffic::e_off_for_load(load, eon, b, ports), eon, b);
    };
  } else {
    std::fprintf(stderr, "unknown traffic kind '%s'\n", kind.c_str());
    return 1;
  }

  const auto points = run_sweep(sweep, switches, traffic);
  std::printf("== custom sweep: %s traffic on a %dx%d switch ==\n",
              kind.c_str(), ports, ports);
  print_sweep_tables(points);
  write_sweep_csv(parser.get_string("out"), points);
  std::printf("\nCSV written to %s\n", parser.get_string("out").c_str());
  return 0;
}
