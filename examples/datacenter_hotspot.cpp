// Datacenter top-of-rack scenario: skewed unicast plus a multicast
// replication stream — traffic the paper's uniform-load analysis does not
// cover, and where scheduler behaviour differs from the figures.
//
// Phase 1 ("hotspot"): a storage shard on one egress port is hit by a
// disproportionate share of unicast traffic (incast).  Phase 2 ("mixed"):
// half the packets are unicast RPCs, half are state-replication multicasts
// with fanout up to 8 (the regime the paper's intro flags as hard for
// single-FIFO schedulers such as TATRA).
#include <cstdio>
#include <memory>

#include "core/fifoms.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "sched/islip.hpp"
#include "sched/tatra.hpp"
#include "sim/simulator.hpp"
#include "sim/single_fifo_switch.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/composite.hpp"
#include "traffic/hotspot.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;

  ArgParser parser("datacenter_hotspot",
                   "skewed unicast + replication multicast scenario");
  parser.add_int("ports", 16, "switch radix");
  parser.add_int("slots", 80000, "simulated slots per phase");
  parser.add_int("seed", 11, "simulation seed");
  if (!parser.parse(argc, argv)) return 1;

  const int ports = static_cast<int>(parser.get_int("ports"));
  SimConfig config;
  config.total_slots = parser.get_int("slots");
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  config.stability.max_buffered = 20'000;

  auto fifoms = [&] {
    return std::make_unique<VoqSwitch>(ports,
                                       std::make_unique<FifomsScheduler>());
  };
  auto islip = [&] {
    return std::make_unique<VoqSwitch>(ports,
                                       std::make_unique<IslipScheduler>());
  };
  auto tatra = [&] {
    return std::make_unique<SingleFifoSwitch>(
        ports, std::make_unique<TatraScheduler>());
  };

  auto report = [&](const char* title, TrafficModel& traffic_template,
                    auto make_traffic) {
    std::printf("\n-- %s --\n", title);
    (void)traffic_template;
    TablePrinter table({"scheduler", "out_delay", "in_delay", "avg_queue",
                        "max_queue", "status"});
    auto row = [&](const char* label, std::unique_ptr<SwitchModel> sw) {
      auto traffic = make_traffic();
      Simulator sim(*sw, *traffic, config);
      const SimResult r = sim.run();
      table.row({label, TablePrinter::fixed(r.output_delay.mean(), 2),
                 TablePrinter::fixed(r.input_delay.mean(), 2),
                 TablePrinter::fixed(r.queue_mean.mean(), 2),
                 std::to_string(r.queue_max),
                 r.unstable ? "OVERLOADED" : "ok"});
    };
    row("FIFOMS", fifoms());
    row("iSLIP", islip());
    row("TATRA", tatra());
    table.print();
  };

  std::printf("Datacenter ToR scenarios on a %dx%d switch\n", ports, ports);

  // Phase 1: hotspot unicast — 30%% of all requests hit egress port 0;
  // the hot output runs at ~85%% of line rate.
  {
    HotspotTraffic probe(ports, 0.2, 0.3);
    const double p = 0.85 / (probe.offered_load() / 0.2);
    report("incast: 30% of unicast traffic to one storage port",
           probe, [&] {
             return std::make_unique<HotspotTraffic>(ports, p, 0.3);
           });
  }

  // Phase 2: mixed RPC unicast + replication multicast at 75%% load.
  {
    MixedTraffic probe(ports, 0.1, 0.5, 8);
    const double p = 0.75 / probe.mean_fanout();
    report("mixed: 50% unicast RPCs + 50% replication multicast (maxf=8)",
           probe, [&] {
             return std::make_unique<MixedTraffic>(ports, p, 0.5, 8);
           });
  }

  std::printf("\nVOQ-based FIFOMS isolates the hot port's backlog in its "
              "own virtual queues;\nthe single-FIFO TATRA lets it block "
              "unrelated traffic (HOL blocking).\n");
  return 0;
}
