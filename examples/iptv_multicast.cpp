// IPTV channel distribution — the workload class the paper's introduction
// motivates: long-lived multicast groups with bursty sources.
//
// A head-end router fans popular TV channels out to many subscriber line
// cards.  We model each input as a bursty source (two-state Markov, as in
// paper Section V-C) whose bursts are addressed to a fixed mid-size group
// of outputs (b = 0.4 -> mean group of ~6 line cards on a 16-port router).
//
// The example compares FIFOMS against iSLIP (which would copy each frame
// once per subscriber) and OQFIFO (the ideal but unbuildable reference),
// then prints a verdict on buffering cost — the metric that sizes line
// card SRAM.
#include <cstdio>
#include <memory>

#include "core/fifoms.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "sched/islip.hpp"
#include "sim/oq_switch.hpp"
#include "sim/simulator.hpp"
#include "sim/voq_switch.hpp"
#include "traffic/burst.hpp"

int main(int argc, char** argv) {
  using namespace fifoms;

  ArgParser parser("iptv_multicast",
                   "bursty IPTV multicast distribution scenario");
  parser.add_int("ports", 16, "router radix");
  parser.add_int("slots", 100000, "simulated slots");
  parser.add_double("load", 0.6, "effective load per output");
  parser.add_double("b", 0.4, "per-output subscription probability");
  parser.add_int("eon", 16, "mean burst length (slots)");
  parser.add_int("seed", 7, "simulation seed");
  if (!parser.parse(argc, argv)) return 1;

  const int ports = static_cast<int>(parser.get_int("ports"));
  const double load = parser.get_double("load");
  const double b = parser.get_double("b");
  const double e_on = static_cast<double>(parser.get_int("eon"));

  SimConfig config;
  config.total_slots = parser.get_int("slots");
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  auto run = [&](std::unique_ptr<SwitchModel> sw) {
    BurstTraffic traffic(ports,
                         BurstTraffic::e_off_for_load(load, e_on, b, ports),
                         e_on, b);
    Simulator sim(*sw, traffic, config);
    return sim.run();
  };

  std::printf("IPTV multicast: %dx%d router, bursty channels "
              "(b=%.2f, Eon=%.0f), load %.2f\n\n",
              ports, ports, b, e_on, load);

  TablePrinter table({"scheduler", "frame_delay", "worst_sub_delay",
                      "avg_buffer", "max_buffer", "status"});
  struct Row {
    const char* label;
    SimResult result;
  };
  std::vector<Row> rows;
  rows.push_back({"FIFOMS", run(std::make_unique<VoqSwitch>(
                                ports, std::make_unique<FifomsScheduler>()))});
  rows.push_back({"iSLIP", run(std::make_unique<VoqSwitch>(
                               ports, std::make_unique<IslipScheduler>()))});
  rows.push_back({"OQFIFO (ideal)", run(std::make_unique<OqSwitch>(ports))});

  for (const Row& row : rows) {
    table.row({row.label,
               TablePrinter::fixed(row.result.output_delay.mean(), 2),
               TablePrinter::fixed(row.result.input_delay.mean(), 2),
               TablePrinter::fixed(row.result.queue_mean.mean(), 2),
               std::to_string(row.result.queue_max),
               row.result.unstable ? "OVERLOADED" : "ok"});
  }
  table.print();

  const SimResult& fifoms = rows[0].result;
  const SimResult& islip = rows[1].result;
  std::printf("\nFIFOMS delivers a frame to its slowest subscriber in "
              "%.1f slots on average;\n"
              "iSLIP-style unicast cloning %s.\n",
              fifoms.input_delay.mean(),
              islip.unstable
                  ? "cannot even sustain this load (queues diverge)"
                  : "needs far larger line-card buffers for the same job");
  return 0;
}
