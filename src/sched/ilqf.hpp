// iLQF — iterative Longest Queue First (McKeown, 1995).
//
// Same request/grant/accept skeleton as iSLIP but the arbitration weight
// is the VOQ occupancy: outputs grant the longest requesting VOQ, inputs
// accept the grant from the output whose VOQ is longest (ties broken
// randomly).  iLQF approximates maximum-weight matching — the policy that
// provably gives 100% throughput for i.i.d. arrivals [McKeown et al. '99]
// — at iterative-hardware cost.  Included as the queue-length-weighted
// counterpart of FIFOMS's time-stamp weighting; multicast is scheduled as
// independent unicast cells.
#pragma once

#include <vector>

#include "sched/voq_scheduler.hpp"

namespace fifoms {

struct IlqfOptions {
  /// Maximum iterations per slot; 0 = iterate to convergence.
  int max_iterations = 0;
};

class IlqfScheduler final : public VoqScheduler {
 public:
  explicit IlqfScheduler(IlqfOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "iLQF"; }
  void reset(int num_inputs, int num_outputs) override;
  using VoqScheduler::schedule;
  void schedule(std::span<const McVoqInput> inputs, SlotTime now,
                SlotMatching& matching, Rng& rng,
                const ScheduleConstraints& constraints) override;

 private:
  IlqfOptions options_;
  std::vector<PortSet> grants_to_input_;
};

}  // namespace fifoms
