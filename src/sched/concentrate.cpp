#include "sched/concentrate.hpp"

#include <algorithm>

namespace fifoms {

void ConcentrateScheduler::reset(int /*num_inputs*/, int /*num_outputs*/) {}

void ConcentrateScheduler::schedule(std::span<const HolCellView> hol,
                                    SlotTime /*now*/, SlotMatching& matching,
                                    Rng& rng) {
  const int num_inputs = static_cast<int>(hol.size());

  order_.clear();
  for (PortId input = 0; input < num_inputs; ++input) {
    const HolCellView& cell = hol[static_cast<std::size_t>(input)];
    if (!cell.valid) continue;
    order_.push_back(Entry{cell.remaining.count(), cell.arrival,
                           rng.next_u64(), input});
  }
  // Largest residue first: serving the big cells completely leaves the
  // leftover contention concentrated on few (small) cells.
  std::sort(order_.begin(), order_.end(), [](const Entry& a, const Entry& b) {
    if (a.residue != b.residue) return a.residue > b.residue;
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.shuffle_key < b.shuffle_key;
  });

  for (const Entry& entry : order_) {
    const HolCellView& cell = hol[static_cast<std::size_t>(entry.input)];
    for (PortId output : cell.remaining) {
      if (matching.output_matched(output)) continue;
      matching.add_match(entry.input, output);
    }
  }
  matching.rounds = 1;
}

}  // namespace fifoms
