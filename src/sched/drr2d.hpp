// 2DRR — Two-Dimensional Round-Robin (LaMaire & Serpanos, ToN 1994),
// reference [9] of the paper.
//
// The request matrix R[i][j] (= VOQ(i,j) non-empty) is swept along its N
// generalised diagonals D_k = {(i, (i+k) mod N)}.  Each slot the sweep
// starts from a different diagonal (rotating offset), and within the slot
// the diagonals are visited in an order that guarantees every (i, j) pair
// is visited first once every N slots — we use the classical
// "pattern sequence" formed by stepping the diagonal index by a constant
// co-prime stride per slot.  Every requested pair on a visited diagonal
// whose input and output are both still free is matched, so the result is
// maximal.  Like iSLIP, 2DRR schedules multicast as independent unicast
// cells: one output per input per slot.
#pragma once

#include "sched/voq_scheduler.hpp"

namespace fifoms {

class Drr2dScheduler final : public VoqScheduler {
 public:
  std::string_view name() const override { return "2DRR"; }
  void reset(int num_inputs, int num_outputs) override;
  using VoqScheduler::schedule;
  void schedule(std::span<const McVoqInput> inputs, SlotTime now,
                SlotMatching& matching, Rng& rng,
                const ScheduleConstraints& constraints) override;

  /// Diagonal visited first in the current slot (exposed for tests).
  int first_diagonal() const { return first_diagonal_; }

  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  int size_ = 0;            // 2DRR is defined on square switches
  int first_diagonal_ = 0;  // rotates every slot
};

}  // namespace fifoms
