// iSLIP (McKeown 1999) on the multicast VOQ structure.
//
// Classic iterative unicast matching with rotating priorities:
//
//   Request — every unmatched input requests every free output whose VOQ
//   is non-empty.
//   Grant — every free output grants the requesting input that appears
//   first at or after its grant pointer (round robin).
//   Accept — every unmatched input accepts the granting output that
//   appears first at or after its accept pointer.
//
// Pointers advance one position beyond the matched peer, and — the key
// iSLIP property that makes it live-lock free and fair — only for matches
// made in the *first* iteration of a slot.
//
// Per the paper's methodology, a multicast packet is scheduled as
// independent unicast cells: the input accepts at most one output per
// slot, so a fanout-k packet needs at least k slots.  Buffering still
// uses the paper's address-cell/data-cell structure (payload stored once).
#pragma once

#include <vector>

#include "sched/voq_scheduler.hpp"

namespace fifoms {

struct IslipOptions {
  /// Maximum iterations per slot; 0 = iterate to convergence.
  int max_iterations = 0;
};

class IslipScheduler final : public VoqScheduler {
 public:
  explicit IslipScheduler(IslipOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "iSLIP"; }
  void reset(int num_inputs, int num_outputs) override;
  using VoqScheduler::schedule;
  void schedule(std::span<const McVoqInput> inputs, SlotTime now,
                SlotMatching& matching, Rng& rng,
                const ScheduleConstraints& constraints) override;

  /// Exposed for tests: current pointer positions.
  const std::vector<PortId>& grant_pointers() const { return grant_ptr_; }
  const std::vector<PortId>& accept_pointers() const { return accept_ptr_; }

  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  IslipOptions options_;
  std::vector<PortId> grant_ptr_;   // per output
  std::vector<PortId> accept_ptr_;  // per input
  // Scratch: per-input request rows (input-major view of the request
  // matrix), its transpose into per-output requester columns, and the
  // grants collected per input during the grant phase (valid only for
  // inputs in the round's offered set).
  std::vector<PortSet> request_rows_;
  std::vector<PortSet> requesters_;
  std::vector<PortSet> grants_to_input_;
};

}  // namespace fifoms
