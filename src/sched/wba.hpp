// WBA — Weight Based Algorithm (Prabhakar, McKeown, Ahuja, JSAC 1997) for
// the single input-queued multicast switch.
//
// Each slot every HOL cell computes a weight
//
//     weight = age_weight * age  -  fanout_weight * |residue|
//
// favouring old cells (fairness) and penalising large fanouts (residue
// concentration: a cell with a small residue should win everywhere and
// depart, rather than many cells each losing somewhere).  Every HOL cell
// requests all outputs in its residue; every output independently grants
// the request with the largest weight (ties broken randomly).  Fanout
// splitting is implicit: whatever is not granted stays as residue.
#pragma once

#include <cstdint>

#include "sched/hol_scheduler.hpp"

namespace fifoms {

// Integer coefficients on purpose: ages and fanouts are integers, so
// integer weights lose nothing, and scheduler decision paths must stay
// float-free (tools/lint.py no-float-in-decision-path) — floating-point
// comparison would make grant decisions platform- and flag-dependent.
struct WbaOptions {
  std::int64_t age_weight = 1;
  std::int64_t fanout_weight = 1;
};

class WbaScheduler final : public HolScheduler {
 public:
  explicit WbaScheduler(WbaOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "WBA"; }
  void reset(int num_inputs, int num_outputs) override;
  void schedule(std::span<const HolCellView> hol, SlotTime now,
                SlotMatching& matching, Rng& rng) override;

  /// The weight function, exposed for tests.
  std::int64_t weight(const HolCellView& cell, SlotTime now) const {
    return options_.age_weight * static_cast<std::int64_t>(now - cell.arrival) -
           options_.fanout_weight *
               static_cast<std::int64_t>(cell.remaining.count());
  }

 private:
  WbaOptions options_;
};

}  // namespace fifoms
