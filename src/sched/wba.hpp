// WBA — Weight Based Algorithm (Prabhakar, McKeown, Ahuja, JSAC 1997) for
// the single input-queued multicast switch.
//
// Each slot every HOL cell computes a weight
//
//     weight = age_weight * age  -  fanout_weight * |residue|
//
// favouring old cells (fairness) and penalising large fanouts (residue
// concentration: a cell with a small residue should win everywhere and
// depart, rather than many cells each losing somewhere).  Every HOL cell
// requests all outputs in its residue; every output independently grants
// the request with the largest weight (ties broken randomly).  Fanout
// splitting is implicit: whatever is not granted stays as residue.
#pragma once

#include "sched/hol_scheduler.hpp"

namespace fifoms {

struct WbaOptions {
  double age_weight = 1.0;
  double fanout_weight = 1.0;
};

class WbaScheduler final : public HolScheduler {
 public:
  explicit WbaScheduler(WbaOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "WBA"; }
  void reset(int num_inputs, int num_outputs) override;
  void schedule(std::span<const HolCellView> hol, SlotTime now,
                SlotMatching& matching, Rng& rng) override;

  /// The weight function, exposed for tests.
  double weight(const HolCellView& cell, SlotTime now) const {
    return options_.age_weight * static_cast<double>(now - cell.arrival) -
           options_.fanout_weight * static_cast<double>(cell.remaining.count());
  }

 private:
  WbaOptions options_;
};

}  // namespace fifoms
