// Word-parallel weight-plane kernels shared by the FIFOMS hot path.
//
// These are the innermost loops of the scheduler: the masked
// min-reduction that finds an input's request weight, the equality scan
// that finds the outputs carrying it, and the incremental maintenance
// of the fabric's (minimum, carrier-set) summary.  They are constexpr
// so the build can prove them: tests/sched/kernel_static_proof.cpp
// static_asserts each kernel against the naive dense specification in
// kernel_spec.hpp over exhaustive small-width inputs.  A kernel bug is
// a compile error, in every preset.
//
// Contract shared by all plane kernels: `plane` is padded so that every
// 64-entry word containing a set bit of the mask is fully addressable
// (McVoqInput::hol_weights() pads with kWeightInfinity to a multiple of
// 64).  Constant evaluation enforces this — an out-of-bounds read is a
// constant-expression error, so the proof harness also checks the
// padding contract itself.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <span>

#include "common/panic.hpp"
#include "common/port_set.hpp"
#include "common/types.hpp"

namespace fifoms {

/// Weight-plane entry for an empty VOQ: larger than every real scheduling
/// weight, so masked min-reductions need no emptiness branch.
inline constexpr std::uint64_t kWeightInfinity =
    std::numeric_limits<std::uint64_t>::max();

namespace kernels {

/// Smallest plane entry over the ports in `mask`; kWeightInfinity when
/// the mask is empty.
constexpr std::uint64_t masked_min(std::span<const std::uint64_t> plane,
                                   const PortSet& mask) {
  std::uint64_t smallest = kWeightInfinity;
  const auto& words = mask.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    if (bits == 0) continue;
    const std::uint64_t* base = plane.data() + (w << 6);
    do {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      if (base[bit] < smallest) smallest = base[bit];
    } while (bits != 0);
  }
  return smallest;
}

/// The subset of `mask` whose plane entry equals `value`.
constexpr PortSet equality_scan(std::span<const std::uint64_t> plane,
                                const PortSet& mask, std::uint64_t value) {
  PortSet result;
  const auto& words = mask.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    std::uint64_t hits = 0;
    if (bits != 0) {
      const std::uint64_t* base = plane.data() + (w << 6);
      do {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        hits |= static_cast<std::uint64_t>(base[bit] == value) << bit;
      } while (bits != 0);
    }
    result.set_word(static_cast<int>(w), hits);
  }
  return result;
}

/// An input's head-of-line summary: the smallest plane entry over its
/// occupied outputs and the set of outputs carrying it.  The value the
/// FIFOMS request fast path reads once per round instead of rescanning
/// the plane.
struct HolMin {
  std::uint64_t weight = kWeightInfinity;
  PortSet carriers;

  constexpr bool operator==(const HolMin&) const = default;
};

/// Full rescan: the minimum over `occupied` and its carriers.
constexpr HolMin recompute_hol_min(std::span<const std::uint64_t> plane,
                                   const PortSet& occupied) {
  HolMin state;
  state.weight = masked_min(plane, occupied);
  if (state.weight != kWeightInfinity) {
    state.carriers = equality_scan(plane, occupied, state.weight);
  }
  return state;
}

/// Incremental maintenance for one plane write plane[output]:
/// previous -> weight (the entry must actually change).  Returns true
/// when the summary can no longer be maintained locally — the last
/// carrier of the minimum rose off it — and the caller must fall back
/// to recompute_hol_min().  Serving part of a cell's fanout only
/// shrinks the carrier mask, so in steady state the fallback fires
/// roughly once per completed cell, not once per scheduler round.
constexpr bool hol_min_update(HolMin& state, PortId output,
                              std::uint64_t previous, std::uint64_t weight) {
  FIFOMS_ASSERT(previous != weight, "plane update must change the entry");
  if (weight < state.weight) {
    state.weight = weight;
    state.carriers = PortSet::single(output);
  } else if (weight == state.weight) {
    state.carriers.insert(output);
  } else if (previous == state.weight) {
    state.carriers.erase(output);
    if (state.carriers.empty()) return true;
  }
  return false;
}

}  // namespace kernels
}  // namespace fifoms
