#include "sched/random_voq.hpp"

namespace fifoms {

void RandomVoqScheduler::reset(int num_inputs, int /*num_outputs*/) {
  grants_to_input_.assign(static_cast<std::size_t>(num_inputs), PortSet{});
}

void RandomVoqScheduler::schedule(std::span<const McVoqInput> inputs,
                                  SlotTime /*now*/, SlotMatching& matching,
                                  Rng& rng,
                                  const ScheduleConstraints& constraints) {
  const int num_inputs = static_cast<int>(inputs.size());
  const int num_outputs = matching.num_outputs();

  for (auto& set : grants_to_input_) set.clear();
  for (PortId output = 0; output < num_outputs; ++output) {
    if (constraints.failed_outputs.contains(output)) continue;
    PortSet requesters;
    for (PortId input = 0; input < num_inputs; ++input) {
      if (constraints.failed_inputs.contains(input)) continue;
      if (constraints.link_faults(input).contains(output)) continue;
      if (!inputs[static_cast<std::size_t>(input)].voq_empty(output))
        requesters.insert(input);
    }
    if (requesters.empty()) continue;
    grants_to_input_[static_cast<std::size_t>(requesters.random_member(rng))]
        .insert(output);
  }
  for (PortId input = 0; input < num_inputs; ++input) {
    const PortSet& offers = grants_to_input_[static_cast<std::size_t>(input)];
    if (offers.empty()) continue;
    matching.add_match(input, offers.random_member(rng));
  }
  matching.rounds = 1;
}

}  // namespace fifoms
