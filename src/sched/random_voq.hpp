// RandomVoqScheduler: single-iteration random matching.
//
// Equivalent to one round of PIM.  Deliberately weak — it exists as a
// sanity floor for the experiment harness (every serious scheduler should
// beat it) and as a simple reference implementation of the VoqScheduler
// interface for documentation and tests.
#pragma once

#include <vector>

#include "sched/voq_scheduler.hpp"

namespace fifoms {

class RandomVoqScheduler final : public VoqScheduler {
 public:
  std::string_view name() const override { return "Random"; }
  void reset(int num_inputs, int num_outputs) override;
  using VoqScheduler::schedule;
  void schedule(std::span<const McVoqInput> inputs, SlotTime now,
                SlotMatching& matching, Rng& rng,
                const ScheduleConstraints& constraints) override;

 private:
  std::vector<PortSet> grants_to_input_;
};

}  // namespace fifoms
