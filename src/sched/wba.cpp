#include "sched/wba.hpp"

#include <vector>

namespace fifoms {

void WbaScheduler::reset(int /*num_inputs*/, int /*num_outputs*/) {}

void WbaScheduler::schedule(std::span<const HolCellView> hol, SlotTime now,
                            SlotMatching& matching, Rng& rng) {
  const int num_inputs = static_cast<int>(hol.size());
  const int num_outputs = matching.num_outputs();

  for (PortId output = 0; output < num_outputs; ++output) {
    std::int64_t best_weight = 0;
    std::vector<PortId> best_inputs;
    for (PortId input = 0; input < num_inputs; ++input) {
      const HolCellView& cell = hol[static_cast<std::size_t>(input)];
      if (!cell.valid || !cell.remaining.contains(output)) continue;
      const std::int64_t w = weight(cell, now);
      if (best_inputs.empty() || w > best_weight) {
        best_weight = w;
        best_inputs.clear();
        best_inputs.push_back(input);
      } else if (w == best_weight) {
        best_inputs.push_back(input);
      }
    }
    if (best_inputs.empty()) continue;
    const PortId winner =
        best_inputs[rng.next_below(best_inputs.size())];
    matching.add_match(winner, output);
  }
  matching.rounds = 1;
}

}  // namespace fifoms
