// Concentrate — residue-concentrating multicast scheduling for the single
// input-queued switch (McKeown & Prabhakar, INFOCOM 1996; the policy
// family TATRA and WBA approximate).
//
// The residue of a slot is the set of cell copies that lose contention
// and stay at their inputs' heads of line.  Concentrating that residue on
// as FEW inputs as possible maximises the number of HOL cells that depart
// (and is throughput-optimal within this architecture under the paper's
// assumptions).  We implement the standard greedy realisation: HOL cells
// are considered in decreasing residue size (ties: older first, then
// random) and each cell is granted every output in its residue that is
// still free.  Cells considered early are served completely and depart;
// the residue piles up on the few late losers.
//
// Note the deliberate contrast with WBA, which *penalises* large fanouts:
// Concentrate maximises departures per slot, WBA trades some of that for
// per-cell fairness.  The scheduler_faceoff example puts all three
// single-FIFO policies side by side.
#pragma once

#include <vector>

#include "sched/hol_scheduler.hpp"

namespace fifoms {

class ConcentrateScheduler final : public HolScheduler {
 public:
  std::string_view name() const override { return "Concentrate"; }
  void reset(int num_inputs, int num_outputs) override;
  void schedule(std::span<const HolCellView> hol, SlotTime now,
                SlotMatching& matching, Rng& rng) override;

 private:
  struct Entry {
    int residue;
    SlotTime arrival;
    std::uint64_t shuffle_key;
    PortId input;
  };
  std::vector<Entry> order_;
};

}  // namespace fifoms
