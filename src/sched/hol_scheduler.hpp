// HolScheduler: policy interface for schedulers running on the single
// input-queued switch (TATRA, WBA).
//
// The observable state of that architecture is exactly one head-of-line
// multicast cell per input (or none); everything behind the head is
// invisible — that is the HOL blocking the paper measures.  Schedulers
// receive a HolCellView per input and fill a SlotMatching whose per-input
// grants must be subsets of the corresponding residues.
#pragma once

#include <span>
#include <string_view>

#include "common/port_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/matching.hpp"

namespace fifoms {

namespace snapshot {
class Writer;
class Reader;
}  // namespace snapshot

struct HolCellView {
  bool valid = false;  ///< false when the input queue is empty
  PortId input = kNoPort;
  PacketId packet = kNoPacket;
  SlotTime arrival = 0;
  PortSet remaining;  ///< destinations not yet served (the residue)
  int initial_fanout = 0;
};

class HolScheduler {
 public:
  virtual ~HolScheduler() = default;

  virtual std::string_view name() const = 0;

  virtual void reset(int num_inputs, int num_outputs) = 0;

  virtual void schedule(std::span<const HolCellView> hol, SlotTime now,
                        SlotMatching& matching, Rng& rng) = 0;

  /// Cross-slot policy state for snapshot (see VoqScheduler).
  virtual void save_state(snapshot::Writer& out) const { (void)out; }
  virtual void load_state(snapshot::Reader& in) { (void)in; }
};

}  // namespace fifoms
