#include "sched/pim.hpp"

namespace fifoms {

void PimScheduler::reset(int num_inputs, int /*num_outputs*/) {
  grants_to_input_.assign(static_cast<std::size_t>(num_inputs), PortSet{});
}

void PimScheduler::schedule(std::span<const McVoqInput> inputs,
                            SlotTime /*now*/, SlotMatching& matching,
                            Rng& rng, const ScheduleConstraints& constraints) {
  const int num_inputs = static_cast<int>(inputs.size());
  const int num_outputs = matching.num_outputs();

  int rounds = 0;
  bool progressed = true;
  while (progressed &&
         (options_.max_iterations == 0 || rounds < options_.max_iterations)) {
    progressed = false;

    // Grant: each free output picks a random requesting input.  Failed
    // ports and dead links are skipped (fault degradation).
    for (auto& set : grants_to_input_) set.clear();
    bool any_grant = false;
    for (PortId output = 0; output < num_outputs; ++output) {
      if (matching.output_matched(output)) continue;
      if (constraints.failed_outputs.contains(output)) continue;
      PortSet requesters;
      for (PortId input = 0; input < num_inputs; ++input) {
        if (matching.input_matched(input)) continue;
        if (constraints.failed_inputs.contains(input)) continue;
        if (constraints.link_faults(input).contains(output)) continue;
        if (!inputs[static_cast<std::size_t>(input)].voq_empty(output))
          requesters.insert(input);
      }
      if (requesters.empty()) continue;
      grants_to_input_[static_cast<std::size_t>(requesters.random_member(rng))]
          .insert(output);
      any_grant = true;
    }
    if (!any_grant) break;
    ++rounds;

    // Accept: each granted input picks a random offer.
    for (PortId input = 0; input < num_inputs; ++input) {
      const PortSet& offers = grants_to_input_[static_cast<std::size_t>(input)];
      if (offers.empty()) continue;
      matching.add_match(input, offers.random_member(rng));
      progressed = true;
    }
  }

  matching.rounds = rounds;
}

}  // namespace fifoms
