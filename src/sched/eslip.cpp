#include "sched/eslip.hpp"

#include "common/bit_matrix.hpp"
#include "fault/fault.hpp"
#include "snapshot/state_codec.hpp"

namespace fifoms {

namespace {

/// First member of `set` at or after `start` (cyclic).
PortId round_robin_pick(const PortSet& set, PortId start, int modulus) {
  if (start >= modulus) start = 0;
  const PortId p = set.next_after(start - 1);
  return p != kNoPort ? p : set.first();
}

}  // namespace

EslipSwitch::EslipSwitch(int num_ports, int max_iterations)
    : num_ports_(num_ports), max_iterations_(max_iterations),
      crossbar_(num_ports, num_ports) {
  inputs_.reserve(static_cast<std::size_t>(num_ports));
  for (PortId port = 0; port < num_ports; ++port)
    inputs_.emplace_back(port, num_ports);
  unicast_grant_ptr_.assign(static_cast<std::size_t>(num_ports), 0);
  unicast_accept_ptr_.assign(static_cast<std::size_t>(num_ports), 0);
  last_arrival_slot_.assign(static_cast<std::size_t>(num_ports), -1);
  mode_.resize(static_cast<std::size_t>(num_ports));
  unicast_offers_.resize(static_cast<std::size_t>(num_ports));
  request_rows_.resize(static_cast<std::size_t>(num_ports));
  unicast_cols_.resize(static_cast<std::size_t>(num_ports));
  multicast_cols_.resize(static_cast<std::size_t>(num_ports));
  link_fault_cols_.resize(static_cast<std::size_t>(num_ports));
}

bool EslipSwitch::inject(const Packet& packet) {
  FIFOMS_ASSERT(packet.input >= 0 && packet.input < num_ports_,
                "packet input out of range");
  SlotTime& last = last_arrival_slot_[static_cast<std::size_t>(packet.input)];
  FIFOMS_ASSERT(packet.arrival > last,
                "more than one packet per input per slot");
  last = packet.arrival;
  inputs_[static_cast<std::size_t>(packet.input)].accept(packet);
  return true;
}

void EslipSwitch::run_rounds(SlotTime now, SlotMatching& matching,
                             std::vector<Mode>& mode) {
  // Even slots prefer multicast at contended outputs, odd slots unicast.
  const bool multicast_preferred = (now % 2) == 0;
  // Fault degradation: dead outputs collect no requests, dead inputs stay
  // silent and dead crosspoints are skipped; queues hold until recovery.
  const bool faulted = faults_ != nullptr && faults_->active();
  const PortSet dead_outputs =
      faulted ? faults_->failed_outputs() : PortSet{};
  const PortSet dead_inputs = faulted ? faults_->failed_inputs() : PortSet{};
  const bool link_faults = faulted && !faults_->failed_links().empty();

  // Queues are frozen while the rounds run (transmission happens in
  // step() afterwards), so the request matrices are fixed per slot:
  // build the per-input rows and transpose them once into per-output
  // requester columns, instead of probing every (input, output) pair in
  // every round's grant scan.
  const auto n = static_cast<std::size_t>(num_ports_);
  const std::span<PortSet> rows(request_rows_.data(), n);
  for (PortId input = 0; input < num_ports_; ++input) {
    const HybridInput& port = inputs_[static_cast<std::size_t>(input)];
    rows[static_cast<std::size_t>(input)] = port.unicast_occupied();
  }
  transpose_bit_matrix(rows, std::span<PortSet>(unicast_cols_.data(), n));
  for (PortId input = 0; input < num_ports_; ++input) {
    const HybridInput& port = inputs_[static_cast<std::size_t>(input)];
    rows[static_cast<std::size_t>(input)] =
        port.mcq_empty() ? PortSet{} : port.mcq_hol().remaining;
  }
  transpose_bit_matrix(rows, std::span<PortSet>(multicast_cols_.data(), n));
  if (link_faults) {
    for (PortId input = 0; input < num_ports_; ++input)
      rows[static_cast<std::size_t>(input)] =
          faults_->link_faults_for(input);
    transpose_bit_matrix(rows,
                         std::span<PortSet>(link_fault_cols_.data(), n));
  }

  // Input-mode masks, maintained as grants commit inputs: an input leaves
  // `none_mode` on any grant and `not_unicast` on a unicast accept.  Dead
  // inputs never enter either, so they stay silent in every column AND.
  PortSet not_unicast = PortSet::all(num_ports_) - dead_inputs;
  PortSet none_mode = not_unicast;

  int rounds = 0;
  bool progressed = true;
  while (progressed &&
         (max_iterations_ == 0 || rounds < max_iterations_)) {
    progressed = false;

    // ---- Grant step -----------------------------------------------------
    // Unicast grants are offers an input may decline (accept step);
    // multicast grants are final — all of them reference the input's one
    // multicast HOL cell, so no conflict is possible (FIFOMS's argument).
    // Requests per output are column ANDs: the precomputed requester
    // column masked by the inputs still in the right mode.
    bool any_grant = false;
    PortSet offered;

    const PortSet scan = PortSet::all(num_ports_) - dead_outputs -
                         matching.matched_outputs();
    for (PortId output : scan) {
      const auto o = static_cast<std::size_t>(output);
      // An input already matched in multicast mode may still collect
      // additional outputs for the SAME cell (fanout accumulation), so
      // the multicast column is masked by mode != kUnicast only.
      PortSet multicast_req = multicast_cols_[o] & not_unicast;
      PortSet unicast_req = unicast_cols_[o] & none_mode;
      if (link_faults) {
        multicast_req -= link_fault_cols_[o];
        unicast_req -= link_fault_cols_[o];
      }

      const bool use_multicast =
          !multicast_req.empty() &&
          (multicast_preferred || unicast_req.empty());
      if (use_multicast) {
        // Shared pointer: all outputs favour the same input, so the
        // multicast cell collects its full fanout in one slot when free.
        const PortId granted =
            round_robin_pick(multicast_req, multicast_ptr_, num_ports_);
        matching.add_match(granted, output);
        mode[static_cast<std::size_t>(granted)] = Mode::kMulticast;
        none_mode.erase(granted);
        any_grant = true;
        progressed = true;
      } else if (!unicast_req.empty()) {
        const PortId granted = round_robin_pick(
            unicast_req, unicast_grant_ptr_[static_cast<std::size_t>(output)],
            num_ports_);
        auto& offers = unicast_offers_[static_cast<std::size_t>(granted)];
        if (!offered.contains(granted)) {
          offered.insert(granted);
          offers = PortSet::single(output);
        } else {
          offers.insert(output);
        }
        any_grant = true;
      }
    }
    if (!any_grant) break;
    ++rounds;

    // ---- Accept step (unicast offers only) ------------------------------
    for (PortId input : offered) {
      // A multicast grant this round invalidates unicast offers: the
      // input transmits its multicast cell.
      if (mode[static_cast<std::size_t>(input)] != Mode::kNone) continue;
      const PortSet& offers = unicast_offers_[static_cast<std::size_t>(input)];
      const PortId accepted = round_robin_pick(
          offers, unicast_accept_ptr_[static_cast<std::size_t>(input)],
          num_ports_);
      matching.add_match(input, accepted);
      mode[static_cast<std::size_t>(input)] = Mode::kUnicast;
      none_mode.erase(input);
      not_unicast.erase(input);
      progressed = true;
      if (rounds == 1) {
        unicast_grant_ptr_[static_cast<std::size_t>(accepted)] =
            (input + 1) % num_ports_;
        unicast_accept_ptr_[static_cast<std::size_t>(input)] =
            (accepted + 1) % num_ports_;
      }
    }
  }
  matching.rounds = rounds;
}

void EslipSwitch::step(SlotTime now, Rng& /*rng*/, SlotResult& result) {
  for (auto& m : mode_) m = Mode::kNone;
  matching_.reset(num_ports_, num_ports_);
  run_rounds(now, matching_, mode_);
  matching_.validate();
  crossbar_.configure(matching_.input_grant_sets());

  // Transmit + the ESLIP pointer rule: the shared pointer moves past an
  // input only when its multicast cell departed with its full fanout.
  PortId departed_at_pointer = kNoPort;
  PortId best_distance = kMaxPorts + 1;
  for (PortId input = 0; input < num_ports_; ++input) {
    const PortSet& targets = crossbar_.outputs_for_input(input);
    if (targets.empty()) continue;
    HybridInput& port = inputs_[static_cast<std::size_t>(input)];
    if (mode_[static_cast<std::size_t>(input)] == Mode::kUnicast) {
      const PortId output = targets.first();
      FIFOMS_ASSERT(targets.count() == 1, "unicast input with several outputs");
      const UnicastCell cell = port.serve_unicast(output);
      result.deliveries.push_back(Delivery{
          .packet = cell.packet,
          .input = input,
          .output = output,
          .arrival = cell.arrival,
          .payload_tag = cell.payload_tag,
      });
    } else {
      const FifoCell cell = port.mcq_hol();  // copy; serve may pop
      const bool departed = port.serve_multicast(targets);
      for (PortId output : targets) {
        result.deliveries.push_back(Delivery{
            .packet = cell.packet,
            .input = input,
            .output = output,
            .arrival = cell.arrival,
            .payload_tag = cell.payload_tag,
        });
      }
      if (departed) {
        // Closest departure at/after the pointer decides the advance.
        const PortId distance = static_cast<PortId>(
            (input - multicast_ptr_ + num_ports_) % num_ports_);
        if (distance < best_distance) {
          best_distance = distance;
          departed_at_pointer = input;
        }
      }
    }
  }
  if (departed_at_pointer != kNoPort)
    multicast_ptr_ = (departed_at_pointer + 1) % num_ports_;
  crossbar_.release();

  result.rounds = matching_.rounds;
  result.matched_pairs = matching_.matched_pairs();
}

std::size_t EslipSwitch::occupancy(PortId port) const {
  return input(port).queue_size();
}

std::size_t EslipSwitch::total_buffered() const {
  std::size_t total = 0;
  for (const auto& port : inputs_) total += port.queue_size();
  return total;
}

void EslipSwitch::clear() {
  for (auto& port : inputs_) port.clear();
  for (auto& ptr : unicast_grant_ptr_) ptr = 0;
  for (auto& ptr : unicast_accept_ptr_) ptr = 0;
  multicast_ptr_ = 0;
  for (auto& slot : last_arrival_slot_) slot = -1;
}

const HybridInput& EslipSwitch::input(PortId port) const {
  FIFOMS_ASSERT(port >= 0 && port < num_ports_, "input out of range");
  return inputs_[static_cast<std::size_t>(port)];
}


void EslipSwitch::save_state(snapshot::Writer& out) const {
  for (SlotTime slot : last_arrival_slot_) out.i64(slot);
  for (PortId p : unicast_grant_ptr_) out.i32(p);
  for (PortId p : unicast_accept_ptr_) out.i32(p);
  out.i32(multicast_ptr_);
  for (const HybridInput& port : inputs_) {
    for (PortId output = 0; output < num_ports_; ++output) {
      const std::vector<UnicastCell> cells = port.voq_cells(output);
      out.u64(cells.size());
      for (const UnicastCell& cell : cells)
        snapshot::write_unicast_cell(out, cell);
    }
    const std::vector<FifoCell> mcq = port.mcq_cells();
    out.u64(mcq.size());
    for (const FifoCell& cell : mcq) snapshot::write_fifo_cell(out, cell);
  }
}

void EslipSwitch::load_state(snapshot::Reader& in) {
  for (SlotTime& slot : last_arrival_slot_) slot = in.i64();
  for (PortId& p : unicast_grant_ptr_) p = in.i32();
  for (PortId& p : unicast_accept_ptr_) p = in.i32();
  multicast_ptr_ = in.i32();
  std::vector<UnicastCell> unicast;
  std::vector<FifoCell> multicast;
  for (HybridInput& port : inputs_) {
    for (PortId output = 0; output < num_ports_; ++output) {
      const std::size_t count = in.length(snapshot::kMaxContainer);
      unicast.clear();
      unicast.reserve(count);
      for (std::size_t i = 0; i < count; ++i)
        unicast.push_back(snapshot::read_unicast_cell(in));
      port.restore_unicast(output, unicast);
    }
    const std::size_t count = in.length(snapshot::kMaxContainer);
    multicast.clear();
    multicast.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      multicast.push_back(snapshot::read_fifo_cell(in));
    port.restore_multicast(multicast);
  }
}

}  // namespace fifoms
