// TATRA (Ahuja, Prabhakar, McKeown, JSAC 1997) — Tetris-based multicast
// scheduling for the single input-queued switch.
//
// Outputs are the columns of a Tetris box.  When a multicast cell reaches
// the head of its input's FIFO, it drops one block into each destination
// column; each block settles independently on top of that column's stack.
// Every time slot each output serves the bottom block of its column; a
// cell departs (the input FIFO pops) when its last block has been served.
// Cells reaching HOL in the same slot are placed in a randomised order
// (ordering among simultaneous entrants is the only freedom the Tetris
// formulation leaves; we sort by arrival time first, then randomly).
//
// This reading preserves the properties the ICPP'04 comparison relies on:
// strict FCFS-by-HOL-entry fairness per output (the paper's "strict
// fairness"), fanout splitting with residue, and — because only the HOL
// cell of each input owns blocks — the HOL blocking that caps the
// architecture's throughput.  See DESIGN.md §4 for the substitution note.
#pragma once

#include <vector>

#include "common/ring_buffer.hpp"
#include "sched/hol_scheduler.hpp"

namespace fifoms {

class TatraScheduler final : public HolScheduler {
 public:
  std::string_view name() const override { return "TATRA"; }
  void reset(int num_inputs, int num_outputs) override;
  void schedule(std::span<const HolCellView> hol, SlotTime now,
                SlotMatching& matching, Rng& rng) override;

  /// Exposed for tests: height of one output's column stack.
  std::size_t column_height(PortId output) const {
    return columns_[static_cast<std::size_t>(output)].size();
  }

  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  struct Block {
    PortId input = kNoPort;
    PacketId packet = kNoPacket;
  };
  struct Entrant {
    SlotTime arrival;
    std::uint64_t shuffle_key;
    PortId input;
  };

  std::vector<RingBuffer<Block>> columns_;  // one stack per output
  std::vector<PacketId> placed_packet_;     // HOL packet with blocks, per input
  std::vector<Entrant> entrants_;           // scratch
};

}  // namespace fifoms
