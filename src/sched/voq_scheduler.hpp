// VoqScheduler: policy interface for schedulers running on the multicast
// VOQ switch (FIFOMS, iSLIP, PIM, random).
//
// A scheduler is a pure policy: it reads the head-of-line state of the
// input ports and fills a SlotMatching.  All mutation (transmission,
// fanout-counter bookkeeping) is owned by the switch model, so schedulers
// can be unit-tested against hand-built queue states.
#pragma once

#include <span>
#include <string_view>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/matching.hpp"
#include "fabric/mc_voq_input.hpp"
#include "sched/constraints.hpp"

namespace fifoms {

namespace snapshot {
class Writer;
class Reader;
}  // namespace snapshot

class VoqScheduler {
 public:
  virtual ~VoqScheduler() = default;

  /// Human-readable algorithm name (used in reports and CSV headers).
  virtual std::string_view name() const = 0;

  /// (Re-)initialise internal state (round-robin pointers etc.) for a
  /// switch of the given size.  Called once before the first slot.
  virtual void reset(int num_inputs, int num_outputs) = 0;

  /// Compute the matching for the current slot.  `matching` arrives
  /// cleared to the correct dimensions; the scheduler must also set
  /// matching.rounds to the number of iterative rounds it used.
  /// `constraints` carries the fault view: failed inputs never transmit,
  /// failed outputs and dead links are never granted.  With the default
  /// (empty) constraints a scheduler must behave bit-identically to its
  /// unconstrained implementation, identical RNG draws included.
  virtual void schedule(std::span<const McVoqInput> inputs, SlotTime now,
                        SlotMatching& matching, Rng& rng,
                        const ScheduleConstraints& constraints) = 0;

  /// Fault-free convenience overload (the pre-fault API).
  void schedule(std::span<const McVoqInput> inputs, SlotTime now,
                SlotMatching& matching, Rng& rng) {
    schedule(inputs, now, matching, rng, ScheduleConstraints{});
  }

  /// Cross-slot policy state (round-robin cursors etc.) for snapshot.
  /// Schedulers that are pure functions of the queue state keep the
  /// no-op defaults; stateful ones override both so a restored run
  /// replays the same grant sequence.
  virtual void save_state(snapshot::Writer& out) const { (void)out; }
  virtual void load_state(snapshot::Reader& in) { (void)in; }
};

}  // namespace fifoms
