// Word-parallel kernel file: the scheduling hot path must stay free of
// per-port indexed loops.  Enforced semantically by tools/analyzer/
// (rule hot-path-no-port-loop) from the hot-path-root tags below;
// the old textual kernel-file marker is retired.
#include "sched/islip.hpp"

#include "common/bit_matrix.hpp"
#include "snapshot/snapshot.hpp"

namespace fifoms {

void IslipScheduler::reset(int num_inputs, int num_outputs) {
  grant_ptr_.assign(static_cast<std::size_t>(num_outputs), 0);
  accept_ptr_.assign(static_cast<std::size_t>(num_inputs), 0);
  request_rows_.assign(static_cast<std::size_t>(num_inputs), PortSet{});
  requesters_.assign(static_cast<std::size_t>(num_outputs), PortSet{});
  grants_to_input_.assign(static_cast<std::size_t>(num_inputs), PortSet{});
}

namespace {

/// First member of `set` at or after `start` (cyclic); set must be non-empty.
PortId round_robin_pick(const PortSet& set, PortId start, int modulus) {
  FIFOMS_DASSERT(!set.empty(), "round_robin_pick on empty set");
  if (start >= modulus) start = 0;
  PortId p = set.next_after(start - 1);
  if (p != kNoPort) return p;
  return set.first();  // wrap around
}

}  // namespace

// fifoms-analyze: hot-path-root
void IslipScheduler::schedule(std::span<const McVoqInput> inputs,
                              SlotTime /*now*/, SlotMatching& matching,
                              Rng& /*rng*/,
                              const ScheduleConstraints& constraints) {
  const int num_inputs = static_cast<int>(inputs.size());
  const int num_outputs = matching.num_outputs();
  FIFOMS_ASSERT(static_cast<int>(accept_ptr_.size()) == num_inputs &&
                    static_cast<int>(grant_ptr_.size()) == num_outputs,
                "IslipScheduler::reset not called for this switch size");

  // The matching arrives cleared (scheduler contract); accepts below peel
  // bits off these masks as the iterations progress.  Failed ports never
  // enter the masks (fault degradation: dead inputs stay silent, dead
  // outputs collect no requests).
  PortSet free_inputs = PortSet::all(num_inputs) - constraints.failed_inputs;
  PortSet free_outputs =
      PortSet::all(num_outputs) - constraints.failed_outputs;
  const bool link_faults = !constraints.failed_links.empty();

  // Rows of matched/failed inputs must read empty for the transpose; they
  // are kept clean incrementally (cleared on accept below), so one wipe
  // per slot covers the initially-excluded inputs.
  for (auto& row : request_rows_) row.clear();

  int rounds = 0;
  bool progressed = true;
  while (progressed &&
         (options_.max_iterations == 0 || rounds < options_.max_iterations)) {
    progressed = false;
    const bool first_iteration = rounds == 0;

    // ---- Request + grant step.  Requests are implicit: input i requests
    // output j iff i is unmatched, j is unmatched and VOQ(i, j) is
    // non-empty.  Each free input's request row is its occupied() bitset
    // ANDed with the free outputs (a few word ops); the per-output
    // requester columns then come from one word-parallel bit-matrix
    // transpose instead of one PortSet::insert per request bit — on a
    // backlogged switch the request matrix is dense, and the per-bit
    // build is the quadratic term the transpose removes. ----
    PortSet requested;
    for (PortId input : free_inputs) {
      PortSet& row = request_rows_[static_cast<std::size_t>(input)];
      row = inputs[static_cast<std::size_t>(input)].occupied() & free_outputs;
      if (link_faults) row -= constraints.link_faults(input);
      requested |= row;
    }
    if (requested.empty()) break;
    transpose_bit_matrix(
        std::span<const PortSet>(request_rows_.data(),
                                 static_cast<std::size_t>(num_inputs)),
        std::span<PortSet>(requesters_.data(),
                           static_cast<std::size_t>(num_outputs)));

    PortSet offered;
    for (PortId output : requested) {
      const PortId granted = round_robin_pick(
          requesters_[static_cast<std::size_t>(output)],
          grant_ptr_[static_cast<std::size_t>(output)], num_inputs);
      auto& grants = grants_to_input_[static_cast<std::size_t>(granted)];
      if (!offered.contains(granted)) {
        offered.insert(granted);
        grants = PortSet::single(output);
      } else {
        grants.insert(output);
      }
    }
    ++rounds;

    // ---- Accept step ---------------------------------------------------
    for (PortId input : offered) {
      const PortSet& offers = grants_to_input_[static_cast<std::size_t>(input)];
      const PortId accepted = round_robin_pick(
          offers, accept_ptr_[static_cast<std::size_t>(input)], num_outputs);
      matching.add_match(input, accepted);
      free_inputs.erase(input);
      free_outputs.erase(accepted);
      request_rows_[static_cast<std::size_t>(input)].clear();
      progressed = true;
      if (first_iteration) {
        // Pointer update only on first-iteration matches (iSLIP rule).
        grant_ptr_[static_cast<std::size_t>(accepted)] =
            (input + 1) % num_inputs;
        accept_ptr_[static_cast<std::size_t>(input)] =
            (accepted + 1) % num_outputs;
      }
    }
  }

  matching.rounds = rounds;
}

void IslipScheduler::save_state(snapshot::Writer& out) const {
  // The pointers are the scheduler's only cross-slot state; the request/
  // grant vectors are per-slot scratch.
  for (PortId p : grant_ptr_) out.i32(p);
  for (PortId p : accept_ptr_) out.i32(p);
}

void IslipScheduler::load_state(snapshot::Reader& in) {
  for (PortId& p : grant_ptr_) p = in.i32();
  for (PortId& p : accept_ptr_) p = in.i32();
}

}  // namespace fifoms
