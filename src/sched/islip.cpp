#include "sched/islip.hpp"

namespace fifoms {

void IslipScheduler::reset(int num_inputs, int num_outputs) {
  grant_ptr_.assign(static_cast<std::size_t>(num_outputs), 0);
  accept_ptr_.assign(static_cast<std::size_t>(num_inputs), 0);
  grants_to_input_.assign(static_cast<std::size_t>(num_inputs), PortSet{});
  requesters_.assign(static_cast<std::size_t>(num_outputs), PortSet{});
}

namespace {

/// First member of `set` at or after `start` (cyclic); set must be non-empty.
PortId round_robin_pick(const PortSet& set, PortId start, int modulus) {
  FIFOMS_DASSERT(!set.empty(), "round_robin_pick on empty set");
  if (start >= modulus) start = 0;
  PortId p = set.next_after(start - 1);
  if (p != kNoPort) return p;
  return set.first();  // wrap around
}

}  // namespace

void IslipScheduler::schedule(std::span<const McVoqInput> inputs,
                              SlotTime /*now*/, SlotMatching& matching,
                              Rng& /*rng*/,
                              const ScheduleConstraints& constraints) {
  const int num_inputs = static_cast<int>(inputs.size());
  const int num_outputs = matching.num_outputs();
  FIFOMS_ASSERT(static_cast<int>(accept_ptr_.size()) == num_inputs &&
                    static_cast<int>(grant_ptr_.size()) == num_outputs,
                "IslipScheduler::reset not called for this switch size");

  // The matching arrives cleared (scheduler contract); accepts below peel
  // bits off these masks as the iterations progress.  Failed ports never
  // enter the masks (fault degradation: dead inputs stay silent, dead
  // outputs collect no requests).
  PortSet free_inputs = PortSet::all(num_inputs) - constraints.failed_inputs;
  PortSet free_outputs =
      PortSet::all(num_outputs) - constraints.failed_outputs;
  const bool link_faults = !constraints.failed_links.empty();

  int rounds = 0;
  bool progressed = true;
  while (progressed &&
         (options_.max_iterations == 0 || rounds < options_.max_iterations)) {
    progressed = false;
    const bool first_iteration = rounds == 0;

    // ---- Grant step (requests are implicit: input i requests output j
    // iff i is unmatched, j is unmatched and VOQ(i, j) is non-empty).
    // Collected transposed: each free input's occupied() bitset ANDed
    // with the free outputs, instead of probing every (input, output)
    // VOQ for emptiness. ----
    for (auto& set : grants_to_input_) set.clear();
    PortSet requested;
    for (PortId input : free_inputs) {
      PortSet eligible =
          inputs[static_cast<std::size_t>(input)].occupied() & free_outputs;
      if (link_faults) eligible -= constraints.link_faults(input);
      for (PortId output : eligible) {
        auto& requesters = requesters_[static_cast<std::size_t>(output)];
        if (!requested.contains(output)) {
          requested.insert(output);
          requesters = PortSet::single(input);
        } else {
          requesters.insert(input);
        }
      }
    }
    for (PortId output : requested) {
      const PortId granted = round_robin_pick(
          requesters_[static_cast<std::size_t>(output)],
          grant_ptr_[static_cast<std::size_t>(output)], num_inputs);
      grants_to_input_[static_cast<std::size_t>(granted)].insert(output);
    }
    if (requested.empty()) break;
    ++rounds;

    // ---- Accept step ---------------------------------------------------
    for (PortId input = 0; input < num_inputs; ++input) {
      const PortSet& offers = grants_to_input_[static_cast<std::size_t>(input)];
      if (offers.empty()) continue;
      const PortId accepted = round_robin_pick(
          offers, accept_ptr_[static_cast<std::size_t>(input)], num_outputs);
      matching.add_match(input, accepted);
      free_inputs.erase(input);
      free_outputs.erase(accepted);
      progressed = true;
      if (first_iteration) {
        // Pointer update only on first-iteration matches (iSLIP rule).
        grant_ptr_[static_cast<std::size_t>(accepted)] =
            (input + 1) % num_inputs;
        accept_ptr_[static_cast<std::size_t>(input)] =
            (accepted + 1) % num_outputs;
      }
    }
  }

  matching.rounds = rounds;
}

}  // namespace fifoms
