#include "sched/islip.hpp"

namespace fifoms {

void IslipScheduler::reset(int num_inputs, int num_outputs) {
  grant_ptr_.assign(static_cast<std::size_t>(num_outputs), 0);
  accept_ptr_.assign(static_cast<std::size_t>(num_inputs), 0);
  grants_to_input_.assign(static_cast<std::size_t>(num_inputs), PortSet{});
}

namespace {

/// First member of `set` at or after `start` (cyclic); set must be non-empty.
PortId round_robin_pick(const PortSet& set, PortId start, int modulus) {
  FIFOMS_DASSERT(!set.empty(), "round_robin_pick on empty set");
  if (start >= modulus) start = 0;
  PortId p = set.next_after(start - 1);
  if (p != kNoPort) return p;
  return set.first();  // wrap around
}

}  // namespace

void IslipScheduler::schedule(std::span<const McVoqInput> inputs,
                              SlotTime /*now*/, SlotMatching& matching,
                              Rng& /*rng*/) {
  const int num_inputs = static_cast<int>(inputs.size());
  const int num_outputs = matching.num_outputs();
  FIFOMS_ASSERT(static_cast<int>(accept_ptr_.size()) == num_inputs &&
                    static_cast<int>(grant_ptr_.size()) == num_outputs,
                "IslipScheduler::reset not called for this switch size");

  int rounds = 0;
  bool progressed = true;
  while (progressed &&
         (options_.max_iterations == 0 || rounds < options_.max_iterations)) {
    progressed = false;
    const bool first_iteration = rounds == 0;

    // ---- Grant step (requests are implicit: input i requests output j
    // iff i is unmatched, j is unmatched and VOQ(i, j) is non-empty). ----
    for (auto& set : grants_to_input_) set.clear();
    bool any_grant = false;
    for (PortId output = 0; output < num_outputs; ++output) {
      if (matching.output_matched(output)) continue;
      PortSet requesters;
      for (PortId input = 0; input < num_inputs; ++input) {
        if (matching.input_matched(input)) continue;
        if (!inputs[static_cast<std::size_t>(input)].voq_empty(output))
          requesters.insert(input);
      }
      if (requesters.empty()) continue;
      const PortId granted = round_robin_pick(
          requesters, grant_ptr_[static_cast<std::size_t>(output)],
          num_inputs);
      grants_to_input_[static_cast<std::size_t>(granted)].insert(output);
      any_grant = true;
    }
    if (!any_grant) break;
    ++rounds;

    // ---- Accept step ---------------------------------------------------
    for (PortId input = 0; input < num_inputs; ++input) {
      const PortSet& offers = grants_to_input_[static_cast<std::size_t>(input)];
      if (offers.empty()) continue;
      const PortId accepted = round_robin_pick(
          offers, accept_ptr_[static_cast<std::size_t>(input)], num_outputs);
      matching.add_match(input, accepted);
      progressed = true;
      if (first_iteration) {
        // Pointer update only on first-iteration matches (iSLIP rule).
        grant_ptr_[static_cast<std::size_t>(accepted)] =
            (input + 1) % num_inputs;
        accept_ptr_[static_cast<std::size_t>(input)] =
            (accepted + 1) % num_outputs;
      }
    }
  }

  matching.rounds = rounds;
}

}  // namespace fifoms
