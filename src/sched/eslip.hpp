// EslipSwitch — ESLIP-style hybrid unicast/multicast scheduling
// (McKeown, "A Fast Switched Backplane for a Gigabit Switched Router";
// the scheduler of the Tiny Tera prototype), on the HybridInput structure
// (N unicast VOQs + one multicast FIFO per input).
//
// Faithful-behaviour reimplementation (see DESIGN.md §4) of the published
// description:
//
//   * iterative request/grant/accept like iSLIP;
//   * unicast arbitration uses per-output grant pointers and per-input
//     accept pointers, updated on first-iteration accepts;
//   * multicast arbitration uses ONE grant pointer shared by all outputs,
//     so independent outputs favour the *same* input and a multicast cell
//     tends to depart in one slot — ESLIP's counterpart of FIFOMS's
//     time-stamp alignment;
//   * outputs alternate preference between multicast and unicast on
//     even/odd slots (the published fairness device between classes);
//   * the shared multicast pointer advances past an input only when that
//     input's multicast cell has been delivered to its complete fanout
//     (fanout splitting leaves the pointer, so residues keep priority).
//
// Because the queue structure is unique to this scheduler, the class
// implements SwitchModel directly rather than the VoqScheduler interface.
#pragma once

#include <memory>
#include <vector>

#include "core/matching.hpp"
#include "fabric/crossbar.hpp"
#include "fabric/hybrid_input.hpp"
#include "sim/switch_model.hpp"

namespace fifoms {

class EslipSwitch final : public SwitchModel {
 public:
  explicit EslipSwitch(int num_ports, int max_iterations = 0);

  std::string_view name() const override { return "ESLIP"; }
  int num_inputs() const override { return num_ports_; }
  int num_outputs() const override { return num_ports_; }

  bool inject(const Packet& packet) override;
  void step(SlotTime now, Rng& rng, SlotResult& result) override;

  std::size_t occupancy(PortId port) const override;
  int occupancy_ports() const override { return num_ports_; }
  std::size_t total_buffered() const override;
  void clear() override;

  const HybridInput& input(PortId port) const;
  PortId multicast_pointer() const { return multicast_ptr_; }
  void set_fault_state(const fault::FaultState* faults) override {
    faults_ = faults;
  }

  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  enum class Mode { kNone, kUnicast, kMulticast };

  void run_rounds(SlotTime now, SlotMatching& matching,
                  std::vector<Mode>& mode);

  int num_ports_;
  int max_iterations_;
  const fault::FaultState* faults_ = nullptr;
  std::vector<HybridInput> inputs_;
  Crossbar crossbar_;
  SlotMatching matching_;
  std::vector<PortId> unicast_grant_ptr_;   // per output
  std::vector<PortId> unicast_accept_ptr_;  // per input
  PortId multicast_ptr_ = 0;                // shared by all outputs
  std::vector<SlotTime> last_arrival_slot_;
  std::vector<Mode> mode_;                  // scratch, per input
  std::vector<PortSet> unicast_offers_;     // scratch, per input
  // Per-slot request columns (queues are frozen while the rounds run, so
  // the request matrices are fixed per slot): for each output, the inputs
  // with a non-empty unicast VOQ for it, the inputs whose multicast HOL
  // residue covers it, and the inputs whose link to it is down.  Built by
  // transposing the corresponding per-input rows once per slot.
  std::vector<PortSet> request_rows_;       // scratch for the transposes
  std::vector<PortSet> unicast_cols_;       // per output
  std::vector<PortSet> multicast_cols_;     // per output
  std::vector<PortSet> link_fault_cols_;    // per output
};

}  // namespace fifoms
