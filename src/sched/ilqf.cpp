#include "sched/ilqf.hpp"

#include <vector>

namespace fifoms {

void IlqfScheduler::reset(int num_inputs, int /*num_outputs*/) {
  grants_to_input_.assign(static_cast<std::size_t>(num_inputs), PortSet{});
}

namespace {

/// Pick the member of `candidates` maximising `weight`, ties random.
template <typename WeightFn>
PortId argmax_random_ties(const PortSet& candidates, WeightFn weight,
                          Rng& rng) {
  PortId best = kNoPort;
  std::size_t best_weight = 0;
  int ties = 0;
  for (PortId candidate : candidates) {
    const std::size_t w = weight(candidate);
    if (best == kNoPort || w > best_weight) {
      best = candidate;
      best_weight = w;
      ties = 1;
    } else if (w == best_weight) {
      // Reservoir sampling over the ties: uniform without a second pass.
      ++ties;
      if (rng.next_below(static_cast<std::uint64_t>(ties)) == 0)
        best = candidate;
    }
  }
  return best;
}

}  // namespace

void IlqfScheduler::schedule(std::span<const McVoqInput> inputs,
                             SlotTime /*now*/, SlotMatching& matching,
                             Rng& rng,
                             const ScheduleConstraints& constraints) {
  const int num_inputs = static_cast<int>(inputs.size());
  const int num_outputs = matching.num_outputs();

  int rounds = 0;
  bool progressed = true;
  while (progressed &&
         (options_.max_iterations == 0 || rounds < options_.max_iterations)) {
    progressed = false;

    // Grant: each free output grants its longest requesting VOQ.  Failed
    // ports and dead links are skipped (fault degradation).
    for (auto& set : grants_to_input_) set.clear();
    bool any_grant = false;
    for (PortId output = 0; output < num_outputs; ++output) {
      if (matching.output_matched(output)) continue;
      if (constraints.failed_outputs.contains(output)) continue;
      PortSet requesters;
      for (PortId input = 0; input < num_inputs; ++input) {
        if (matching.input_matched(input)) continue;
        if (constraints.failed_inputs.contains(input)) continue;
        if (constraints.link_faults(input).contains(output)) continue;
        if (!inputs[static_cast<std::size_t>(input)].voq_empty(output))
          requesters.insert(input);
      }
      if (requesters.empty()) continue;
      const PortId granted = argmax_random_ties(
          requesters,
          [&](PortId input) {
            return inputs[static_cast<std::size_t>(input)].voq_size(output);
          },
          rng);
      grants_to_input_[static_cast<std::size_t>(granted)].insert(output);
      any_grant = true;
    }
    if (!any_grant) break;
    ++rounds;

    // Accept: each granted input accepts its longest-VOQ offer.
    for (PortId input = 0; input < num_inputs; ++input) {
      const PortSet& offers = grants_to_input_[static_cast<std::size_t>(input)];
      if (offers.empty()) continue;
      const PortId accepted = argmax_random_ties(
          offers,
          [&](PortId output) {
            return inputs[static_cast<std::size_t>(input)].voq_size(output);
          },
          rng);
      matching.add_match(input, accepted);
      progressed = true;
    }
  }

  matching.rounds = rounds;
}

}  // namespace fifoms
