// PIM — Parallel Iterative Matching (Anderson et al. 1993) on the
// multicast VOQ structure.
//
// Same request/grant/accept skeleton as iSLIP, but both grant and accept
// choose uniformly at random instead of round robin.  PIM converges in
// O(log N) expected iterations but, unlike iSLIP, gives no fairness
// guarantee and wastes grants under contention.  Multicast packets are
// scheduled as independent unicast cells, exactly like iSLIP.
#pragma once

#include <vector>

#include "sched/voq_scheduler.hpp"

namespace fifoms {

struct PimOptions {
  /// Maximum iterations per slot; 0 = iterate to convergence.
  int max_iterations = 0;
};

class PimScheduler final : public VoqScheduler {
 public:
  explicit PimScheduler(PimOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "PIM"; }
  void reset(int num_inputs, int num_outputs) override;
  using VoqScheduler::schedule;
  void schedule(std::span<const McVoqInput> inputs, SlotTime now,
                SlotMatching& matching, Rng& rng,
                const ScheduleConstraints& constraints) override;

 private:
  PimOptions options_;
  std::vector<PortSet> grants_to_input_;
};

}  // namespace fifoms
