// Naive dense specification of the weight-plane kernels.
//
// Each function here states what the corresponding word-parallel kernel
// in kernels.hpp computes, in the most obviously-correct form: one port
// per loop iteration, no bit tricks, no early exits.  These are never
// called from production code — they exist so the static proof harness
// (tests/sched/kernel_static_proof.cpp) can static_assert that kernel
// and specification agree on exhaustive small-width inputs.  Keep them
// boring: any cleverness added here weakens the proof.
#pragma once

#include <cstdint>
#include <span>

#include "sched/kernels.hpp"

namespace fifoms::spec {

/// Smallest plane entry over the ports in `mask`, port by port.
constexpr std::uint64_t masked_min(std::span<const std::uint64_t> plane,
                                   const PortSet& mask) {
  std::uint64_t smallest = kWeightInfinity;
  for (std::size_t p = 0; p < plane.size(); ++p) {
    if (mask.contains(static_cast<PortId>(p)) && plane[p] < smallest) {
      smallest = plane[p];
    }
  }
  return smallest;
}

/// The subset of `mask` whose plane entry equals `value`, port by port.
constexpr PortSet equality_scan(std::span<const std::uint64_t> plane,
                                const PortSet& mask, std::uint64_t value) {
  PortSet result;
  for (std::size_t p = 0; p < plane.size(); ++p) {
    if (mask.contains(static_cast<PortId>(p)) && plane[p] == value) {
      result.insert(static_cast<PortId>(p));
    }
  }
  return result;
}

/// The head-of-line summary, computed from scratch.
constexpr kernels::HolMin recompute_hol_min(
    std::span<const std::uint64_t> plane, const PortSet& occupied) {
  kernels::HolMin state;
  state.weight = masked_min(plane, occupied);
  state.carriers = equality_scan(plane, occupied, state.weight);
  if (state.weight == kWeightInfinity) state.carriers = PortSet{};
  return state;
}

}  // namespace fifoms::spec
