// ScheduleConstraints: the fault view a scheduler must respect this slot.
//
// A default-constructed value means "no faults" and every scheduler is
// required to behave bit-identically to its pre-fault implementation in
// that case (identical RNG draw sequence included) — the golden regression
// suite and the sweep byte-identity tests depend on it.  When faults are
// active, schedulers simply subtract the failed sets from their request
// and grant masks: a failed input never transmits, a failed output never
// receives, and a dead crosspoint (input, output) link is skipped even
// when both of its endpoints are up.
#pragma once

#include <span>

#include "common/port_set.hpp"
#include "common/types.hpp"

namespace fifoms {

struct ScheduleConstraints {
  PortSet failed_inputs;
  PortSet failed_outputs;
  /// Per-input dead-crosspoint masks; an empty span means no link faults.
  std::span<const PortSet> failed_links;

  bool any() const {
    return !failed_inputs.empty() || !failed_outputs.empty() ||
           !failed_links.empty();
  }

  /// Outputs unreachable from `input` through its crosspoint links.
  PortSet link_faults(PortId input) const {
    const auto i = static_cast<std::size_t>(input);
    return i < failed_links.size() ? failed_links[i] : PortSet{};
  }

  /// Everything `input` must not request: dead outputs plus its dead links.
  PortSet blocked_outputs(PortId input) const {
    return failed_outputs | link_faults(input);
  }
};

}  // namespace fifoms
