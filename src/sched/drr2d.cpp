#include "sched/drr2d.hpp"

#include "snapshot/snapshot.hpp"

namespace fifoms {

void Drr2dScheduler::reset(int num_inputs, int num_outputs) {
  FIFOMS_ASSERT(num_inputs == num_outputs,
                "2DRR is defined on square switches");
  size_ = num_inputs;
  first_diagonal_ = 0;
}

void Drr2dScheduler::schedule(std::span<const McVoqInput> inputs,
                              SlotTime /*now*/, SlotMatching& matching,
                              Rng& /*rng*/,
                              const ScheduleConstraints& constraints) {
  FIFOMS_ASSERT(static_cast<int>(inputs.size()) == size_,
                "Drr2dScheduler::reset not called for this switch size");

  // Visit all N diagonals starting from the rotating offset.  Diagonal k
  // contains the pairs (i, (i+k) mod N); pairs on earlier-visited
  // diagonals have priority, which is what rotates fairness across slots.
  int rounds = 0;
  for (int step = 0; step < size_; ++step) {
    const int k = (first_diagonal_ + step) % size_;
    bool any = false;
    for (PortId input = 0; input < size_; ++input) {
      const PortId output = static_cast<PortId>((input + k) % size_);
      if (matching.input_matched(input) || matching.output_matched(output))
        continue;
      // Fault degradation: a dead endpoint or crosspoint stays unmatched.
      if (constraints.failed_inputs.contains(input) ||
          constraints.failed_outputs.contains(output) ||
          constraints.link_faults(input).contains(output))
        continue;
      if (inputs[static_cast<std::size_t>(input)].voq_empty(output)) continue;
      matching.add_match(input, output);
      any = true;
    }
    if (any) ++rounds;
  }

  // Advance the starting diagonal; a stride co-prime with N cycles through
  // all diagonals and de-correlates consecutive slots.  1 is always
  // co-prime; for even N a stride of 1 is the classical choice.
  first_diagonal_ = (first_diagonal_ + 1) % size_;
  matching.rounds = rounds == 0 ? 1 : rounds;
}

void Drr2dScheduler::save_state(snapshot::Writer& out) const {
  out.i32(first_diagonal_);
}

void Drr2dScheduler::load_state(snapshot::Reader& in) {
  first_diagonal_ = in.i32();
}

}  // namespace fifoms
