#include "sched/tatra.hpp"

#include <algorithm>

#include "snapshot/snapshot.hpp"

namespace fifoms {

void TatraScheduler::reset(int num_inputs, int num_outputs) {
  columns_.assign(static_cast<std::size_t>(num_outputs), RingBuffer<Block>{});
  placed_packet_.assign(static_cast<std::size_t>(num_inputs), kNoPacket);
}

void TatraScheduler::schedule(std::span<const HolCellView> hol,
                              SlotTime /*now*/, SlotMatching& matching,
                              Rng& rng) {
  const int num_inputs = static_cast<int>(hol.size());
  FIFOMS_ASSERT(static_cast<int>(placed_packet_.size()) == num_inputs,
                "TatraScheduler::reset not called for this switch size");

  // ---- Place newly arrived HOL cells into the Tetris box. -------------
  entrants_.clear();
  for (PortId input = 0; input < num_inputs; ++input) {
    const HolCellView& cell = hol[static_cast<std::size_t>(input)];
    if (!cell.valid) {
      placed_packet_[static_cast<std::size_t>(input)] = kNoPacket;
      continue;
    }
    if (placed_packet_[static_cast<std::size_t>(input)] == cell.packet)
      continue;  // already in the box
    entrants_.push_back(Entrant{cell.arrival, rng.next_u64(), input});
  }
  // Earlier HOL entrants settle lower; simultaneous entrants in random order.
  std::sort(entrants_.begin(), entrants_.end(),
            [](const Entrant& a, const Entrant& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.shuffle_key < b.shuffle_key;
            });
  for (const Entrant& entrant : entrants_) {
    const HolCellView& cell = hol[static_cast<std::size_t>(entrant.input)];
    for (PortId output : cell.remaining)
      columns_[static_cast<std::size_t>(output)].push_back(
          Block{entrant.input, cell.packet});
    placed_packet_[static_cast<std::size_t>(entrant.input)] = cell.packet;
  }

  // ---- Serve the bottom row: one block per non-empty column. ----------
  // All bottom blocks of one input belong to its (unique) HOL cell, so the
  // resulting matching is a legal multicast crossbar configuration.
  const int num_outputs = matching.num_outputs();
  for (PortId output = 0; output < num_outputs; ++output) {
    auto& column = columns_[static_cast<std::size_t>(output)];
    if (column.empty()) continue;
    const Block block = column.pop_front();
    FIFOMS_DASSERT(
        hol[static_cast<std::size_t>(block.input)].valid &&
            hol[static_cast<std::size_t>(block.input)].packet == block.packet,
        "Tetris block references a cell that is no longer at HOL");
    matching.add_match(block.input, output);
  }
  matching.rounds = 1;
}

void TatraScheduler::save_state(snapshot::Writer& out) const {
  // Tetris box: every column's block stack bottom-to-top, plus which HOL
  // packet each input has already dropped blocks for.
  out.u64(columns_.size());
  for (const auto& column : columns_) {
    out.u64(column.size());
    for (std::size_t i = 0; i < column.size(); ++i) {
      out.i32(column[i].input);
      out.u64(column[i].packet);
    }
  }
  out.u64(placed_packet_.size());
  for (PacketId packet : placed_packet_) out.u64(packet);
}

void TatraScheduler::load_state(snapshot::Reader& in) {
  const std::size_t num_columns = in.length(columns_.size());
  if (num_columns != columns_.size())
    throw snapshot::SnapshotError("TATRA column count mismatch");
  for (auto& column : columns_) {
    column.clear();
    const std::size_t height = in.length(std::size_t{1} << 26);
    for (std::size_t i = 0; i < height; ++i) {
      Block block;
      block.input = in.i32();
      block.packet = in.u64();
      column.push_back(block);
    }
  }
  const std::size_t num_inputs = in.length(placed_packet_.size());
  if (num_inputs != placed_packet_.size())
    throw snapshot::SnapshotError("TATRA input count mismatch");
  for (PacketId& packet : placed_packet_) packet = in.u64();
}

}  // namespace fifoms
