// PortSet: a fixed-capacity bitset of switch ports (up to kMaxPorts).
//
// Destination sets of multicast packets are the single hottest data
// structure in the simulator: every arrival, request and grant touches one.
// A four-word bitset with popcount/countr_zero iteration is both compact
// (32 bytes, trivially copyable) and fast, and unlike std::bitset it offers
// set-algebra in value form plus iteration over set bits.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/panic.hpp"
#include "common/types.hpp"

namespace fifoms {

class Rng;

class PortSet {
 public:
  static constexpr int kWords = kMaxPorts / 64;

  /// The empty set.
  constexpr PortSet() = default;

  /// Set containing exactly the listed ports.
  constexpr PortSet(std::initializer_list<PortId> ports) {
    for (PortId p : ports) insert(p);
  }

  /// Set {0, 1, ..., n-1}: all ports of an n-port switch.
  static constexpr PortSet all(int n) {
    FIFOMS_ASSERT(n >= 0 && n <= kMaxPorts, "port count out of range");
    PortSet s;
    for (int w = 0; w * 64 < n; ++w) {
      const int bits = n - w * 64;
      s.words_[w] = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
    }
    return s;
  }

  /// Singleton {p}.
  static constexpr PortSet single(PortId p) {
    PortSet s;
    s.insert(p);
    return s;
  }

  constexpr void insert(PortId p) {
    check(p);
    words_[p >> 6] |= 1ULL << (p & 63);
  }

  constexpr void erase(PortId p) {
    check(p);
    words_[p >> 6] &= ~(1ULL << (p & 63));
  }

  constexpr bool contains(PortId p) const {
    check(p);
    return (words_[p >> 6] >> (p & 63)) & 1;
  }

  constexpr bool empty() const {
    for (auto w : words_)
      if (w) return false;
    return true;
  }

  /// Number of ports in the set (the packet's fanout).
  constexpr int count() const {
    int c = 0;
    for (auto w : words_) c += std::popcount(w);
    return c;
  }

  /// Smallest port in the set, or kNoPort if empty.
  constexpr PortId first() const {
    for (int w = 0; w < kWords; ++w)
      if (words_[w]) return PortId(w * 64 + std::countr_zero(words_[w]));
    return kNoPort;
  }

  /// Smallest port strictly greater than `p`, or kNoPort.
  constexpr PortId next_after(PortId p) const {
    if (p < 0) return first();
    if (p + 1 >= kMaxPorts) return kNoPort;
    const PortId q = p + 1;
    int w = q >> 6;
    std::uint64_t word = words_[w] & (~0ULL << (q & 63));
    while (true) {
      if (word) return PortId(w * 64 + std::countr_zero(word));
      if (++w == kWords) return kNoPort;
      word = words_[w];
    }
  }

  /// k-th smallest element (0-based); requires k < count().
  PortId nth(int k) const;

  /// Uniformly random member; requires non-empty set.
  PortId random_member(Rng& rng) const;

  constexpr void clear() { words_ = {}; }

  constexpr PortSet operator|(const PortSet& o) const {
    PortSet r = *this;
    r |= o;
    return r;
  }
  constexpr PortSet operator&(const PortSet& o) const {
    PortSet r = *this;
    r &= o;
    return r;
  }
  /// Set difference: elements of *this not in `o`.
  constexpr PortSet operator-(const PortSet& o) const {
    PortSet r = *this;
    r -= o;
    return r;
  }
  // The compound forms mutate in place (no 32-byte temporary) — they are
  // the ones the scheduler kernels run per round.
  constexpr PortSet& operator|=(const PortSet& o) {
    for (int w = 0; w < kWords; ++w) words_[w] |= o.words_[w];
    return *this;
  }
  constexpr PortSet& operator&=(const PortSet& o) {
    for (int w = 0; w < kWords; ++w) words_[w] &= o.words_[w];
    return *this;
  }
  constexpr PortSet& operator-=(const PortSet& o) {
    for (int w = 0; w < kWords; ++w) words_[w] &= ~o.words_[w];
    return *this;
  }

  bool operator==(const PortSet& o) const = default;

  constexpr bool is_subset_of(const PortSet& o) const {
    for (int w = 0; w < kWords; ++w)
      if (words_[w] & ~o.words_[w]) return false;
    return true;
  }

  constexpr bool intersects(const PortSet& o) const {
    for (int w = 0; w < kWords; ++w)
      if (words_[w] & o.words_[w]) return true;
    return false;
  }

  /// Iterator over members in increasing order.
  class const_iterator {
   public:
    using value_type = PortId;

    constexpr const_iterator(const PortSet* set, PortId at) : set_(set), at_(at) {}
    constexpr PortId operator*() const { return at_; }
    constexpr const_iterator& operator++() {
      at_ = set_->next_after(at_);
      return *this;
    }
    constexpr bool operator!=(const const_iterator& o) const { return at_ != o.at_; }
    constexpr bool operator==(const const_iterator& o) const { return at_ == o.at_; }

   private:
    const PortSet* set_;
    PortId at_;
  };

  constexpr const_iterator begin() const { return {this, first()}; }
  constexpr const_iterator end() const { return {this, kNoPort}; }

  /// Raw word view: bit b of word w is port w*64 + b.  Kernels (the
  /// FIFOMS weight-plane scheduler, the bit-matrix transpose) operate on
  /// these words directly instead of iterating ports one by one.
  constexpr const std::array<std::uint64_t, kWords>& words() const {
    return words_;
  }

  /// Overwrite one raw word.  Every bit pattern is a valid set (the word
  /// array spans exactly kMaxPorts), so this cannot break invariants.
  constexpr void set_word(int w, std::uint64_t bits) {
    FIFOMS_ASSERT(w >= 0 && w < kWords, "word index out of range");
    words_[static_cast<std::size_t>(w)] = bits;
  }

  /// "{0,3,7}" — for diagnostics and trace files.
  std::string to_string() const;

  /// Parse the to_string() format; panics on malformed input.
  static PortSet from_string(std::string_view text);

 private:
  static constexpr void check(PortId p) {
    FIFOMS_ASSERT(p >= 0 && p < kMaxPorts, "port id out of range");
  }

  std::array<std::uint64_t, kWords> words_{};
};

}  // namespace fifoms
