#include "common/port_set.hpp"

#include <bit>

#include "common/rng.hpp"

namespace fifoms {

PortId PortSet::nth(int k) const {
  FIFOMS_ASSERT(k >= 0, "nth requires k >= 0");
  for (int w = 0; w < kWords; ++w) {
    std::uint64_t word = words_[w];
    const int pop = std::popcount(word);
    if (k >= pop) {
      k -= pop;
      continue;
    }
    // k-th set bit within this word.
    while (k-- > 0) word &= word - 1;  // clear lowest set bit
    return PortId(w * 64 + std::countr_zero(word));
  }
  panic(__FILE__, __LINE__, "PortSet::nth: k >= count()");
}

PortId PortSet::random_member(Rng& rng) const {
  const int n = count();
  FIFOMS_ASSERT(n > 0, "random_member on empty PortSet");
  return nth(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
}

std::string PortSet::to_string() const {
  std::string out = "{";
  bool first_item = true;
  for (PortId p : *this) {
    if (!first_item) out += ',';
    out += std::to_string(p);
    first_item = false;
  }
  out += '}';
  return out;
}

PortSet PortSet::from_string(std::string_view text) {
  FIFOMS_ASSERT(text.size() >= 2 && text.front() == '{' && text.back() == '}',
                "PortSet::from_string: expected {...}");
  PortSet out;
  std::size_t i = 1;
  while (i < text.size() - 1) {
    int value = 0;
    bool any_digit = false;
    while (i < text.size() - 1 && text[i] >= '0' && text[i] <= '9') {
      value = value * 10 + (text[i] - '0');
      any_digit = true;
      ++i;
    }
    FIFOMS_ASSERT(any_digit, "PortSet::from_string: expected a digit");
    out.insert(value);
    if (i < text.size() - 1) {
      FIFOMS_ASSERT(text[i] == ',', "PortSet::from_string: expected ','");
      ++i;
    }
  }
  return out;
}

}  // namespace fifoms
