#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/panic.hpp"

namespace fifoms {

int ThreadPool::resolve_threads(int requested) {
  FIFOMS_ASSERT(requested >= 0, "negative thread count");
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) : threads_(resolve_threads(threads)) {
  if (threads_ <= 1) return;  // inline mode: no workers, no shards
  shards_.reserve(static_cast<std::size_t>(threads_));
  for (int t = 0; t < threads_; ++t)
    shards_.push_back(std::make_unique<Shard>());
  workers_.reserve(static_cast<std::size_t>(threads_));
  for (int t = 0; t < threads_; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Inline mode matches the pooled contract: run everything, rethrow
    // the first failure afterwards.  No shared state is touched, so
    // inline jobs need no locks (and re-entrant inline calls are fine).
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  // Deal contiguous shards; empty shards (count < threads) just steal.
  // Shard locks are uncontended here — workers only touch shards while a
  // job is published, and job_running_ below proves none is — but taking
  // them keeps every shard access inside the annotated discipline.
  const auto n = static_cast<std::size_t>(threads_);
  const std::size_t base = count / n;
  const std::size_t extra = count % n;
  std::size_t next = 0;
  for (std::size_t t = 0; t < n; ++t) {
    Shard& shard = *shards_[t];
    MutexLock lock(shard.mutex);
    shard.begin = next;
    next += base + (t < extra ? 1 : 0);
    shard.end = next;
  }

  {
    MutexLock lock(mutex_);
    // A nested call from inside a job, or a second caller thread, would
    // deadlock below (the inner wait can never see active_ == 0 while
    // the outer job holds a worker).  Panic with a diagnosis instead.
    FIFOMS_ASSERT(!job_running_,
                  "for_each_index called re-entrantly or concurrently");
    job_running_ = true;
    job_ = &fn;
    active_ = threads_;
    ++epoch_;
  }
  wake_.notify_all();

  std::exception_ptr first_error;
  {
    MutexLock lock(mutex_);
    while (active_ != 0) done_.wait(mutex_);
    // active_ == 0: every worker has decremented, so none still holds a
    // snapshot of job_ (see worker_loop) — fn may die with this frame.
    job_ = nullptr;
    job_running_ = false;
    std::swap(first_error, first_error_);
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop(int self) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      MutexLock lock(mutex_);
      while (!stop_ && epoch_ == seen_epoch) wake_.wait(mutex_);
      if (stop_) return;
      seen_epoch = epoch_;
      // Snapshot the job pointer under the lock; it stays valid until
      // this worker decrements active_ (for_each_index only clears job_
      // once active_ == 0), so run_shard below never reads the guarded
      // member lock-free.
      fn = job_;
    }
    run_shard(self, *fn);
    {
      MutexLock lock(mutex_);
      if (--active_ == 0) done_.notify_all();
    }
  }
}

void ThreadPool::run_shard(int self,
                           const std::function<void(std::size_t)>& fn) {
  std::size_t index;
  while (true) {
    if (pop_front(self, index)) {
      try {
        fn(index);
      } catch (...) {
        // Keep the worker (and the rest of the grid) alive; the first
        // failure is rethrown to the caller of for_each_index.
        MutexLock lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      continue;
    }
    if (!steal_into(self)) return;  // every shard drained
  }
}

bool ThreadPool::pop_front(int self, std::size_t& index) {
  Shard& shard = *shards_[static_cast<std::size_t>(self)];
  MutexLock lock(shard.mutex);
  if (shard.begin == shard.end) return false;
  index = shard.begin++;
  return true;
}

bool ThreadPool::steal_into(int self) {
  // Steal the back half of the fullest other shard.  Holding only the
  // victim's lock while splitting (and only our own while installing)
  // keeps the locking single-level — no deadlock by construction.
  const auto n = static_cast<std::size_t>(threads_);
  std::size_t best = n;
  std::size_t best_size = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (static_cast<int>(t) == self) continue;
    Shard& victim = *shards_[t];
    MutexLock lock(victim.mutex);
    const std::size_t size = victim.end - victim.begin;
    if (size > best_size) {
      best_size = size;
      best = t;
    }
  }
  if (best == n) return false;

  std::size_t begin = 0, end = 0;
  {
    Shard& victim = *shards_[best];
    MutexLock lock(victim.mutex);
    const std::size_t size = victim.end - victim.begin;
    if (size == 0) return true;  // lost the race; rescan
    const std::size_t keep = (size + 1) / 2;
    begin = victim.begin + keep;
    end = victim.end;
    victim.end = begin;
  }
  Shard& mine = *shards_[static_cast<std::size_t>(self)];
  MutexLock lock(mine.mutex);
  mine.begin = begin;
  mine.end = end;
  return true;
}

}  // namespace fifoms
