// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in the library (traffic models, random
// tie-breaking in schedulers) takes an explicit Rng& so that simulation
// runs are reproducible: same config + same seed => bit-identical output.
//
// The core generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64 so that low-entropy seeds (0, 1, 2, ...) still yield
// well-mixed initial states.  We implement it ourselves rather than using
// std::mt19937_64 because (a) it is ~4x faster, which matters in the
// per-slot hot loop, and (b) its output is specified and stable across
// standard libraries, which keeps golden-value tests portable.
#pragma once

#include <array>
#include <cstdint>

#include "common/panic.hpp"

namespace fifoms {

/// splitmix64 step: used for seed expansion and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless stream derivation: an independent, well-mixed seed for grid
/// cell `index` of a run keyed by `seed`.  This is how the parallel sweep
/// engine keeps results bit-identical for any thread count — every cell's
/// stream is a pure function of (master seed, cell index), never of
/// execution order.  Two splitmix64 rounds decorrelate adjacent indices.
constexpr std::uint64_t splitmix64(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  (void)splitmix64(state);
  return splitmix64(state);
}

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed (expanded via splitmix64).
  explicit Rng(std::uint64_t seed = 0x5eedf1f05eedf1f0ULL) { reseed(seed); }

  /// Reset the generator to the state derived from `seed`.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Raw 64 uniform random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p` (p outside [0,1] saturates).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Uniform integer in [0, bound), bound > 0.  Lemire's unbiased method.
  std::uint64_t next_below(std::uint64_t bound) {
    FIFOMS_ASSERT(bound > 0, "next_below requires a positive bound");
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    FIFOMS_ASSERT(lo <= hi, "uniform_int requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Number of failures before the first success, success prob `p` in (0,1].
  /// (Geometric distribution on {0, 1, 2, ...}.)
  std::int64_t geometric(double p);

  /// Fork an independent stream; deterministic given this stream's state.
  Rng split() { return Rng(next_u64()); }

  /// Raw generator state, for snapshot/restore.  Restoring a saved state
  /// resumes the exact output sequence from the save point.
  const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derive a per-(experiment, point, replication) seed from a master seed.
/// Stable hashing keeps sweep points independent of evaluation order.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream,
                          std::uint64_t replication);

}  // namespace fifoms
