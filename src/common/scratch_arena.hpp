// ScratchArena: bump-allocated per-slot scratch storage for schedulers.
//
// The request/grant loop runs once per simulated slot — hundreds of
// millions of times in a full sweep — so per-slot heap traffic (a
// vector-of-vectors of candidates, a temporary ordering array) dominates
// the profile long before the arbitration logic does.  A scheduler
// reserves its worst-case scratch once in reset(), then rewinds the
// arena at the top of every slot and carves typed arrays out of the same
// allocation: zero heap operations on the hot path, and the arrays are
// contiguous, so the grant scan walks one cache stream.
//
// Rules: only trivially-copyable, trivially-destructible element types
// (the arena never runs constructors or destructors — arrays start
// uninitialised); reserve() must be sized before use (take() panics
// rather than reallocating, because growth would invalidate spans handed
// out earlier in the slot).
//
// This file is scheduler decision-path code: tools/lint.py applies the
// no-unordered-in-decision-path rule here just like src/sched/ and
// src/core/.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>

#include "common/panic.hpp"

namespace fifoms {

class ScratchArena {
 public:
  /// Ensure capacity for `bytes` of scratch (plus per-array alignment
  /// padding); existing spans are invalidated.  Call from reset(), never
  /// from the per-slot path.
  void reserve(std::size_t bytes) {
    if (bytes <= capacity_) return;
    buffer_ = std::make_unique<std::byte[]>(bytes);
    capacity_ = bytes;
    offset_ = 0;
  }

  /// Rewind to empty; previously taken spans are invalidated.  Call once
  /// at the top of each slot.
  void rewind() { offset_ = 0; }

  /// Carve an uninitialised array of `count` elements out of the arena.
  /// Panics when the reservation is too small — size reserve() for the
  /// worst case instead of growing mid-slot.
  template <typename T>
  std::span<T> take(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ScratchArena elements must be trivial");
    const std::size_t aligned =
        (offset_ + alignof(T) - 1) & ~(alignof(T) - 1);
    const std::size_t end = aligned + count * sizeof(T);
    FIFOMS_ASSERT(end <= capacity_,
                  "ScratchArena overflow: reserve() more in reset()");
    offset_ = end;
    return {reinterpret_cast<T*>(buffer_.get() + aligned), count};
  }

  /// Convenience: bytes needed by an array of `count` T, padding included.
  template <typename T>
  static constexpr std::size_t bytes_for(std::size_t count) {
    return count * sizeof(T) + alignof(T);
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::unique_ptr<std::byte[]> buffer_;
  std::size_t capacity_ = 0;
  std::size_t offset_ = 0;
};

}  // namespace fifoms
