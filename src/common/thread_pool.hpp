// ThreadPool: a work-stealing index pool for embarrassingly parallel grids.
//
// The experiment harness fans each (algorithm, load, replication) cell of
// a sweep out to workers.  Cells vary wildly in cost (an unstable run
// aborts early; a stable high-load run is the slowest thing in the
// sweep), so static slicing leaves cores idle.  Each worker owns a
// contiguous shard of the index range and pops from its front; a worker
// that runs dry steals the back half of the largest remaining shard.
// Shards only ever shrink or split, so every index is executed exactly
// once and no worker blocks on another mid-job.
//
// Determinism: the pool never influences results — callers derive every
// cell's RNG stream from the cell index (splitmix64(seed, cell), see
// common/rng.hpp), never from execution order, so any thread count and
// any stealing schedule produce bit-identical output.
//
// Lock discipline (machine-checked by `clang++ -Wthread-safety`, the
// `thread-safety` preset): every mutable shared member is GUARDED_BY
// either `mutex_` (job hand-off protocol) or its shard's `mutex` (index
// range).  The two levels never nest — shard locks are taken only while
// `mutex_` is free — so there is no lock order to get wrong.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace fifoms {

class ThreadPool {
 public:
  /// `threads` = 0 picks one per hardware core; 1 runs jobs inline on the
  /// calling thread (no workers are spawned).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers executing jobs (1 means inline execution).
  int thread_count() const { return threads_; }

  /// Run fn(i) for every i in [0, count) across the pool and block until
  /// all indices completed.  fn must be safe to call concurrently for
  /// distinct indices; the same pool can run any number of jobs in
  /// sequence.  Must not be called re-entrantly from inside a job, nor
  /// concurrently from two threads on the same pool — both are detected
  /// and panic with a diagnostic instead of deadlocking.
  ///
  /// An exception thrown by fn never takes a worker (or the process)
  /// down: every remaining index still runs, and the FIRST exception —
  /// in completion order — is rethrown here once the job has drained.
  /// Callers that need per-index failure reporting should catch inside
  /// fn (the sweep engine does; see sim/experiment.hpp).
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

  /// 0 -> hardware_concurrency (min 1), otherwise the request itself.
  static int resolve_threads(int requested);

 private:
  /// One worker's contiguous slice of the current job's index range.
  /// Owners pop from the front, thieves split off the back half.
  struct Shard {
    Mutex mutex;
    std::size_t begin FIFOMS_GUARDED_BY(mutex) = 0;
    std::size_t end FIFOMS_GUARDED_BY(mutex) = 0;
  };

  void worker_loop(int self);
  void run_shard(int self, const std::function<void(std::size_t)>& fn);
  bool pop_front(int self, std::size_t& index);
  bool steal_into(int self);

  // Immutable after construction: the constructor fully builds threads_,
  // shards_ (the vector and its Shard allocations; the *fields* of each
  // Shard are guarded above) and then spawns workers_ — std::thread
  // construction sequences those writes before each worker's first read,
  // so the lock-free reads of these members in the workers are race-free
  // without any capability.  After ~ThreadPool joins, the main thread is
  // again the only accessor.
  int threads_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;

  // Job hand-off: publishing stores job_, bumps epoch_ and resets
  // active_ under mutex_; each worker snapshots job_ while holding
  // mutex_ (never dereferences the member lock-free), processes the
  // epoch once and decrements active_ when its shard (and everything it
  // could steal) is drained.  active_ == 0 under mutex_ therefore proves
  // no worker still holds a snapshot, making it safe to clear job_ and
  // return (the caller may destroy fn immediately after).
  Mutex mutex_;
  CondVar wake_;
  CondVar done_;
  const std::function<void(std::size_t)>* job_ FIFOMS_GUARDED_BY(mutex_) =
      nullptr;
  std::exception_ptr first_error_ FIFOMS_GUARDED_BY(mutex_);
  std::uint64_t epoch_ FIFOMS_GUARDED_BY(mutex_) = 0;
  int active_ FIFOMS_GUARDED_BY(mutex_) = 0;
  bool stop_ FIFOMS_GUARDED_BY(mutex_) = false;
  /// Re-entrancy/concurrent-call detector for for_each_index.
  bool job_running_ FIFOMS_GUARDED_BY(mutex_) = false;
};

}  // namespace fifoms
