// ThreadPool: a work-stealing index pool for embarrassingly parallel grids.
//
// The experiment harness fans each (algorithm, load, replication) cell of
// a sweep out to workers.  Cells vary wildly in cost (an unstable run
// aborts early; a stable high-load run is the slowest thing in the
// sweep), so static slicing leaves cores idle.  Each worker owns a
// contiguous shard of the index range and pops from its front; a worker
// that runs dry steals the back half of the largest remaining shard.
// Shards only ever shrink or split, so every index is executed exactly
// once and no worker blocks on another mid-job.
//
// Determinism: the pool never influences results — callers derive every
// cell's RNG stream from the cell index (splitmix64(seed, cell), see
// common/rng.hpp), never from execution order, so any thread count and
// any stealing schedule produce bit-identical output.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fifoms {

class ThreadPool {
 public:
  /// `threads` = 0 picks one per hardware core; 1 runs jobs inline on the
  /// calling thread (no workers are spawned).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers executing jobs (1 means inline execution).
  int thread_count() const { return threads_; }

  /// Run fn(i) for every i in [0, count) across the pool and block until
  /// all indices completed.  fn must be safe to call concurrently for
  /// distinct indices; the same pool can run any number of jobs in
  /// sequence.  Must not be called re-entrantly from inside a job.
  ///
  /// An exception thrown by fn never takes a worker (or the process)
  /// down: every remaining index still runs, and the FIRST exception —
  /// in completion order — is rethrown here once the job has drained.
  /// Callers that need per-index failure reporting should catch inside
  /// fn (the sweep engine does; see sim/experiment.hpp).
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

  /// 0 -> hardware_concurrency (min 1), otherwise the request itself.
  static int resolve_threads(int requested);

 private:
  /// One worker's contiguous slice of the current job's index range.
  /// `begin`/`end` are guarded by `mutex`; owners pop from the front,
  /// thieves split off the back half.
  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::mutex mutex;
  };

  void worker_loop(int self);
  void run_shard(int self);
  bool pop_front(int self, std::size_t& index);
  bool steal_into(int self);

  int threads_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;

  // Job hand-off: publishing bumps `epoch_` and resets `active_`; each
  // worker processes the epoch once and decrements `active_` when its
  // shard (and everything it could steal) is drained.
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::exception_ptr first_error_;  // guarded by mutex_
  std::uint64_t epoch_ = 0;
  int active_ = 0;
  bool stop_ = false;
};

}  // namespace fifoms
