// Word-parallel bit-matrix transpose for the scheduler kernels.
//
// The request/grant schedulers keep one bitmask per *input* (which
// outputs it requests), but the grant step wants one bitmask per
// *output* (which inputs request it).  Converting between the two views
// is a bit-matrix transpose; doing it with 64x64 word tiles costs
// O(W_in * W_out * 64 log 64) word operations instead of one insert per
// set bit — on a backlogged switch the request matrix is dense, so the
// per-bit build is the quadratic term the transpose removes.
//
// Bit convention matches PortSet::words(): element (row r, column c) is
// bit (c & 63) of word (c >> 6) of row r, i.e. LSB-first columns.
//
// This file is scheduler decision-path code: tools/lint.py applies the
// no-unordered-in-decision-path rule here just like src/sched/ and
// src/core/.
#pragma once

#include <cstdint>
#include <span>

#include "common/port_set.hpp"

namespace fifoms {

/// In-place transpose of a 64x64 bit matrix: bit c of word r moves to
/// bit r of word c (Hacker's Delight 7-3, adapted to LSB-first columns).
inline void transpose64(std::uint64_t m[64]) {
  std::uint64_t mask = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k + j] ^= t;
      m[k] ^= t << j;
    }
  }
}

/// Transpose a bit matrix held as PortSet rows into PortSet columns:
/// cols[c].contains(r) == rows[r].contains(c).  Every column is fully
/// overwritten (stale contents of `cols` do not leak through).  Rows may
/// only carry bits below cols.size() and vice versa — both are PortSets,
/// so that holds by construction when the caller sizes the spans to the
/// switch radix.
inline void transpose_bit_matrix(std::span<const PortSet> rows,
                                 std::span<PortSet> cols) {
  const int num_rows = static_cast<int>(rows.size());
  const int num_cols = static_cast<int>(cols.size());
  const int row_words = (num_rows + 63) >> 6;   // words of a column set
  const int col_words = (num_cols + 63) >> 6;   // words of a row set
  std::uint64_t tile[64];

  for (int wr = 0; wr < row_words; ++wr) {
    const int row_base = wr << 6;
    const int rows_here =
        num_rows - row_base < 64 ? num_rows - row_base : 64;
    for (int wc = 0; wc < col_words; ++wc) {
      // Gather the 64x64 tile: tile[r] = word wc of row (row_base + r).
      std::uint64_t any = 0;
      for (int r = 0; r < rows_here; ++r) {
        tile[r] = rows[static_cast<std::size_t>(row_base + r)].words()
                      [static_cast<std::size_t>(wc)];
        any |= tile[r];
      }
      for (int r = rows_here; r < 64; ++r) tile[r] = 0;

      const int col_base = wc << 6;
      const int cols_here =
          num_cols - col_base < 64 ? num_cols - col_base : 64;
      if (any == 0) {
        for (int c = 0; c < cols_here; ++c)
          cols[static_cast<std::size_t>(col_base + c)].set_word(wr, 0);
        continue;
      }
      transpose64(tile);
      for (int c = 0; c < cols_here; ++c)
        cols[static_cast<std::size_t>(col_base + c)].set_word(wr, tile[c]);
    }
  }
  // Columns hold row indices < num_rows only, so their higher words are
  // always zero; writing them keeps reused column storage clean.
  for (int wr_hi = row_words; wr_hi < PortSet::kWords; ++wr_hi)
    for (int c = 0; c < num_cols; ++c)
      cols[static_cast<std::size_t>(c)].set_word(wr_hi, 0);
}

}  // namespace fifoms
