// RingBuffer<T>: a growable circular FIFO.
//
// Each input port of the switch owns N virtual output queues of address
// cells that are pushed at the tail and popped at the head every slot.
// std::deque allocates in fixed-size blocks and thrashes the allocator at
// high load; this ring amortises to zero allocation once a queue has seen
// its high-water mark.  Only the operations the simulator needs are
// provided (no iterators invalidation subtleties: random access is by
// logical index from the head).
#pragma once

#include <memory>
#include <utility>

#include "common/panic.hpp"

namespace fifoms {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  explicit RingBuffer(std::size_t initial_capacity) {
    reserve(initial_capacity);
  }

  RingBuffer(const RingBuffer& other) { *this = other; }

  RingBuffer& operator=(const RingBuffer& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
    return *this;
  }

  RingBuffer(RingBuffer&& other) noexcept
      : data_(std::move(other.data_)),
        capacity_(std::exchange(other.capacity_, 0)),
        head_(std::exchange(other.head_, 0)),
        size_(std::exchange(other.size_, 0)) {}

  RingBuffer& operator=(RingBuffer&& other) noexcept {
    if (this == &other) return *this;
    data_ = std::move(other.data_);
    capacity_ = std::exchange(other.capacity_, 0);
    head_ = std::exchange(other.head_, 0);
    size_ = std::exchange(other.size_, 0);
    return *this;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  /// Element at logical position `i` from the head (0 == front).
  T& operator[](std::size_t i) {
    FIFOMS_DASSERT(i < size_, "RingBuffer index out of range");
    return data_[wrap(head_ + i)];
  }
  const T& operator[](std::size_t i) const {
    FIFOMS_DASSERT(i < size_, "RingBuffer index out of range");
    return data_[wrap(head_ + i)];
  }

  T& front() {
    FIFOMS_ASSERT(size_ > 0, "front() on empty RingBuffer");
    return data_[head_];
  }
  const T& front() const {
    FIFOMS_ASSERT(size_ > 0, "front() on empty RingBuffer");
    return data_[head_];
  }

  T& back() {
    FIFOMS_ASSERT(size_ > 0, "back() on empty RingBuffer");
    return data_[wrap(head_ + size_ - 1)];
  }
  const T& back() const {
    FIFOMS_ASSERT(size_ > 0, "back() on empty RingBuffer");
    return data_[wrap(head_ + size_ - 1)];
  }

  void push_back(T value) {
    if (size_ == capacity_) grow();
    data_[wrap(head_ + size_)] = std::move(value);
    ++size_;
  }

  T pop_front() {
    FIFOMS_ASSERT(size_ > 0, "pop_front() on empty RingBuffer");
    T value = std::move(data_[head_]);
    head_ = wrap(head_ + 1);
    --size_;
    if (size_ == 0) head_ = 0;
    return value;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Ensure room for at least `n` elements without reallocation.
  void reserve(std::size_t n) {
    if (n > capacity_) reallocate(round_up(n));
  }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t c = 8;
    while (c < n) c *= 2;
    return c;
  }

  std::size_t wrap(std::size_t i) const {
    // capacity_ is always a power of two.
    return i & (capacity_ - 1);
  }

  void grow() { reallocate(capacity_ == 0 ? 8 : capacity_ * 2); }

  void reallocate(std::size_t new_capacity) {
    // Doubling growth: amortized O(1) per push and absent entirely once
    // a queue has seen its steady-state depth, so the per-slot path
    // stays allocation-free after warm-up.
    // fifoms-analyze: allow(hot-path-no-alloc)
    auto fresh = std::make_unique<T[]>(new_capacity);
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = std::move((*this)[i]);
    data_ = std::move(fresh);
    capacity_ = new_capacity;
    head_ = 0;
  }

  std::unique_ptr<T[]> data_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace fifoms
