#include "common/rng.hpp"

#include <cmath>

namespace fifoms {

std::int64_t Rng::geometric(double p) {
  FIFOMS_ASSERT(p > 0.0 && p <= 1.0, "geometric requires p in (0, 1]");
  if (p == 1.0) return 0;
  // Inversion: floor(log(U) / log(1-p)) with U in (0, 1].
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0); next_double() < 1 already
  const double value = std::floor(std::log(u) / std::log1p(-p));
  // Clamp pathological rounding to a sane non-negative result.
  return value < 0.0 ? 0 : static_cast<std::int64_t>(value);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream,
                          std::uint64_t replication) {
  // Mix the three components through splitmix64 rounds.  The odd constants
  // decorrelate (stream, replication) pairs that differ in one component.
  std::uint64_t s = master ^ 0x9e3779b97f4a7c15ULL;
  (void)splitmix64(s);
  s ^= stream * 0xbf58476d1ce4e5b9ULL;
  (void)splitmix64(s);
  s ^= replication * 0x94d049bb133111ebULL;
  return splitmix64(s);
}

}  // namespace fifoms
