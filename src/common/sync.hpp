// Annotated synchronization primitives for Clang Thread Safety Analysis.
//
// std::mutex and std::lock_guard carry no capability annotations in
// libstdc++, so code locking through them is invisible to
// -Wthread-safety.  Mutex/MutexLock/CondVar below are thin, zero-cost
// wrappers that attach the annotations (common/thread_annotations.hpp)
// while delegating every operation to the standard primitives — the
// concurrency layer (ThreadPool, the sweep engine) locks exclusively
// through these so the analysis can prove its lock discipline at compile
// time.  Outside Clang the annotations vanish and the wrappers are
// exactly std::mutex / std::lock_guard / std::condition_variable.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace fifoms {

/// Annotated exclusive mutex.  BasicLockable, so it also composes with
/// std::scoped_lock and friends where a bare annotation-free guard is
/// acceptable — but prefer MutexLock, which the analysis understands.
class FIFOMS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FIFOMS_ACQUIRE() { mutex_.lock(); }
  void unlock() FIFOMS_RELEASE() { mutex_.unlock(); }
  bool try_lock() FIFOMS_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock on a Mutex; the analysis treats the scope as holding the
/// capability from construction to destruction.
class FIFOMS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FIFOMS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() FIFOMS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to Mutex.  wait() requires the mutex held —
/// exactly the std contract, but now compiler-checked.  Callers loop on
/// their (guarded) predicate around wait(), which re-checks it under the
/// reacquired lock and so stays inside the annotated discipline:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);   // ready_ GUARDED_BY(mutex_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mutex`, block until notified (or spuriously
  /// woken), reacquire.  The adopt/release dance hands the already-held
  /// native mutex to std::condition_variable without double-locking.
  void wait(Mutex& mutex) FIFOMS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fifoms
