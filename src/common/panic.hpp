// Invariant-checking machinery.
//
// FIFOMS_ASSERT is active in all build types: a switch simulator that
// silently corrupts queue state produces plausible-looking but wrong
// statistics, so we always pay the (cheap, branch-predicted) check.
// FIFOMS_DASSERT compiles out in NDEBUG builds and is reserved for
// hot-loop checks that measurably affect simulation throughput.
#pragma once

#include <string_view>

namespace fifoms {

/// Print a diagnostic (file:line + message) to stderr and abort.
[[noreturn]] void panic(const char* file, int line, std::string_view message);

/// Last-gasp callback invoked by panic() after printing the diagnostic
/// and before abort().  The recovery harness uses it to emit a replayable
/// counterexample bundle (docs/RECOVERY.md) when an invariant audit
/// fails mid-soak.  A plain function pointer — installed once, no
/// allocation on the panic path; the hook is cleared before it runs so a
/// panic inside the hook cannot recurse.  Returns the previous hook.
using PanicHook = void (*)(const char* file, int line,
                           std::string_view message);
PanicHook set_panic_hook(PanicHook hook);

}  // namespace fifoms

#define FIFOMS_ASSERT(cond, msg)                        \
  do {                                                  \
    if (!(cond)) [[unlikely]] {                         \
      ::fifoms::panic(__FILE__, __LINE__,               \
                      "assertion failed: " #cond ": " msg); \
    }                                                   \
  } while (0)

#ifdef NDEBUG
#define FIFOMS_DASSERT(cond, msg) \
  do {                            \
  } while (0)
#else
#define FIFOMS_DASSERT(cond, msg) FIFOMS_ASSERT(cond, msg)
#endif
