// Fundamental identifier and time types shared by every module.
//
// The simulator runs in discrete time slots (the paper's "time slot mode"),
// so time is a signed 64-bit slot counter.  Ports and packets are plain
// integer ids; sentinel values are provided for "no port"/"no packet".
#pragma once

#include <cstdint>
#include <limits>

namespace fifoms {

/// Discrete simulation time, measured in slots.
using SlotTime = std::int64_t;

/// Index of an input or output port, 0-based.
using PortId = std::int32_t;

/// Monotonically increasing packet identifier, unique per simulation run.
using PacketId = std::uint64_t;

/// Sentinel meaning "no port selected".
inline constexpr PortId kNoPort = -1;

/// Sentinel meaning "no packet".
inline constexpr PacketId kNoPacket = std::numeric_limits<PacketId>::max();

/// Largest switch radix supported by PortSet (see port_set.hpp).
inline constexpr int kMaxPorts = 256;

/// Largest QoS class value (0 = highest priority).  Priorities and
/// arrival slots are packed into one 64-bit scheduling weight
/// (priority-major), so the bounds below must hold jointly.
inline constexpr int kMaxPriority = 255;

/// Largest arrival slot representable inside a scheduling weight.
inline constexpr SlotTime kMaxWeightSlot = (SlotTime{1} << 48) - 1;

}  // namespace fifoms
