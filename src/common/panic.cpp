#include "common/panic.hpp"

#include <cstdio>
#include <cstdlib>

namespace fifoms {

void panic(const char* file, int line, std::string_view message) {
  std::fprintf(stderr, "fifoms panic at %s:%d: %.*s\n", file, line,
               static_cast<int>(message.size()), message.data());
  std::fflush(stderr);
  std::abort();
}

}  // namespace fifoms
