#include "common/panic.hpp"

#include <cstdio>
#include <cstdlib>

namespace fifoms {

namespace {
PanicHook g_panic_hook = nullptr;
}  // namespace

PanicHook set_panic_hook(PanicHook hook) {
  PanicHook previous = g_panic_hook;
  g_panic_hook = hook;
  return previous;
}

void panic(const char* file, int line, std::string_view message) {
  std::fprintf(stderr, "fifoms panic at %s:%d: %.*s\n", file, line,
               static_cast<int>(message.size()), message.data());
  std::fflush(stderr);
  if (g_panic_hook != nullptr) {
    PanicHook hook = g_panic_hook;
    g_panic_hook = nullptr;  // a panic inside the hook must not recurse
    hook(file, line, message);
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace fifoms
