// Clang Thread Safety Analysis annotations (compile-time race detection).
//
// These macros attach lock-discipline contracts to types, members and
// functions: which mutex guards a field, which capability a function
// needs, what a scope acquires.  Under `clang++ -Wthread-safety` (the
// `thread-safety` CMake preset and CI lane) the compiler then proves —
// per translation unit, at zero runtime cost — that every annotated
// access happens with the right lock held.  Under GCC, or Clang without
// the attributes, every macro expands to nothing, so the annotated code
// compiles identically everywhere.
//
// The annotations only bind to capability types.  std::mutex is not one
// (libstdc++ carries no annotations), so the concurrency layer locks
// through the annotated wrappers in common/sync.hpp instead.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html —
// the macro set below mirrors that document's canonical shim.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define FIFOMS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FIFOMS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a capability (lockable); `x` names it in diagnostics.
#define FIFOMS_CAPABILITY(x) FIFOMS_THREAD_ANNOTATION(capability(x))

/// Marks a RAII type whose constructor acquires and destructor releases.
#define FIFOMS_SCOPED_CAPABILITY FIFOMS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define FIFOMS_GUARDED_BY(x) FIFOMS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define FIFOMS_PT_GUARDED_BY(x) FIFOMS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define FIFOMS_REQUIRES(...) \
  FIFOMS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define FIFOMS_ACQUIRE(...) \
  FIFOMS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define FIFOMS_RELEASE(...) \
  FIFOMS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define FIFOMS_TRY_ACQUIRE(result, ...) \
  FIFOMS_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define FIFOMS_EXCLUDES(...) \
  FIFOMS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis to
/// trust code paths the static proof cannot follow, e.g. init order).
#define FIFOMS_ASSERT_CAPABILITY(x) \
  FIFOMS_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define FIFOMS_RETURN_CAPABILITY(x) \
  FIFOMS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disable the analysis for one function.  Every use must
/// carry a justification comment explaining why the access is race-free.
#define FIFOMS_NO_THREAD_SAFETY_ANALYSIS \
  FIFOMS_THREAD_ANNOTATION(no_thread_safety_analysis)
