#include "hw/fifoms_control_unit.hpp"

#include "snapshot/snapshot.hpp"

namespace fifoms::hw {

void FifomsControlUnit::reset(int num_inputs, int num_outputs) {
  num_inputs_ = num_inputs;
  num_outputs_ = num_outputs;
  input_trees_.clear();
  output_trees_.clear();
  input_trees_.reserve(static_cast<std::size_t>(num_inputs));
  output_trees_.reserve(static_cast<std::size_t>(num_outputs));
  for (int i = 0; i < num_inputs; ++i) input_trees_.emplace_back(num_outputs);
  for (int j = 0; j < num_outputs; ++j) output_trees_.emplace_back(num_inputs);
  total_rounds_ = 0;
}

int FifomsControlUnit::levels_per_round() const {
  FIFOMS_ASSERT(!input_trees_.empty(), "reset() not called");
  return input_trees_.front().depth() + output_trees_.front().depth();
}

std::uint64_t FifomsControlUnit::total_comparisons() const {
  std::uint64_t total = 0;
  for (const auto& tree : input_trees_) total += tree.comparisons();
  for (const auto& tree : output_trees_) total += tree.comparisons();
  return total;
}

void FifomsControlUnit::schedule(std::span<const McVoqInput> inputs,
                                 SlotTime /*now*/, SlotMatching& matching,
                                 Rng& /*rng*/,
                                 const ScheduleConstraints& constraints) {
  FIFOMS_ASSERT(static_cast<int>(inputs.size()) == num_inputs_,
                "FifomsControlUnit::reset not called for this switch size");

  int rounds = 0;
  while (true) {
    // ---- Input-side comparator trees: find each free input's smallest
    // HOL time stamp among free outputs.  Fault degradation in hardware
    // is a disable wire: a failed port's lanes are simply never set, so
    // the datapath stays bit-equivalent to the behavioural scheduler
    // under the same constraints.
    bool any_request = false;
    for (auto& tree : output_trees_) tree.clear_all();

    for (PortId input = 0; input < num_inputs_; ++input) {
      if (matching.input_matched(input)) continue;
      if (constraints.failed_inputs.contains(input)) continue;
      const PortSet blocked = constraints.blocked_outputs(input);
      ComparatorTree& tree = input_trees_[static_cast<std::size_t>(input)];
      tree.clear_all();
      const McVoqInput& port = inputs[static_cast<std::size_t>(input)];
      for (PortId output = 0; output < num_outputs_; ++output) {
        if (matching.output_matched(output) || port.voq_empty(output) ||
            blocked.contains(output))
          continue;
        tree.set_lane(output, port.hol(output).weight);
      }
      const CompareResult winner = tree.evaluate();
      if (!winner.valid) continue;

      // ---- Request wires: every HOL cell carrying the winning time
      // stamp raises its request line toward its output's tree.
      for (PortId output = 0; output < num_outputs_; ++output) {
        if (matching.output_matched(output) || port.voq_empty(output) ||
            blocked.contains(output))
          continue;
        if (port.hol(output).weight != winner.key) continue;
        output_trees_[static_cast<std::size_t>(output)].set_lane(input,
                                                                 winner.key);
        any_request = true;
      }
    }
    if (!any_request) break;
    ++rounds;
    ++total_rounds_;

    // ---- Output-side comparator trees: grant the smallest time stamp;
    // the fixed tie-break wire prefers the lower input index.
    for (PortId output = 0; output < num_outputs_; ++output) {
      if (matching.output_matched(output)) continue;
      const CompareResult winner =
          output_trees_[static_cast<std::size_t>(output)].evaluate();
      if (!winner.valid) continue;
      matching.add_match(static_cast<PortId>(winner.lane), output);
    }
  }

  matching.rounds = rounds;
}

void FifomsControlUnit::save_state(snapshot::Writer& out) const {
  out.u64(total_rounds_);
}

void FifomsControlUnit::load_state(snapshot::Reader& in) {
  total_rounds_ = in.u64();
}

}  // namespace fifoms::hw
