// Register-level model of the FIFOMS scheduler control unit (Fig. 3 of
// the paper): the "control unit on the left" that owns the address-cell
// queues and the per-port comparators, wired exactly as Section IV
// describes.
//
// Per iterative round:
//   1. every free input's comparator tree reduces the HOL time stamps of
//      its VOQs whose output is free — the winning time stamp selects the
//      requesting address cells;
//   2. request wires carry (time stamp, input) to the outputs;
//   3. every free output's comparator tree reduces its incoming requests
//      and raises one grant wire;
//   4. grant results feed back to the inputs before the next round.
//
// Tie-breaking in hardware is a fixed priority wire (lowest index), which
// corresponds to FifomsScheduler with TieBreak::kLowestInput.  The class
// implements the VoqScheduler interface, so the differential test can run
// the gate-level datapath and the behavioural scheduler side by side on
// identical queue states and demand identical matchings — and it reports
// the latency figures (comparator levels per round) that back the paper's
// O(1)-per-round hardware claim.
#pragma once

#include <memory>

#include "hw/comparator_tree.hpp"
#include "sched/voq_scheduler.hpp"

namespace fifoms::hw {

class FifomsControlUnit final : public VoqScheduler {
 public:
  std::string_view name() const override { return "FIFOMS-hw"; }
  void reset(int num_inputs, int num_outputs) override;
  using VoqScheduler::schedule;
  void schedule(std::span<const McVoqInput> inputs, SlotTime now,
                SlotMatching& matching, Rng& rng,
                const ScheduleConstraints& constraints) override;

  /// Comparator levels traversed per round: input tree + output tree.
  int levels_per_round() const;

  /// Total comparator evaluations across all schedule() calls.
  std::uint64_t total_comparisons() const;

  /// Rounds executed across all schedule() calls.
  std::uint64_t total_rounds() const { return total_rounds_; }

  /// The datapath is combinational — only the rounds accumulator crosses
  /// slots (comparator-evaluation counters are bench-only diagnostics).
  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  int num_inputs_ = 0;
  int num_outputs_ = 0;
  std::vector<ComparatorTree> input_trees_;   // one per input port
  std::vector<ComparatorTree> output_trees_;  // one per output port
  std::uint64_t total_rounds_ = 0;
};

}  // namespace fifoms::hw
