// Gate-level model of the parallel comparator trees of paper Section IV.
//
// The FIFOMS control unit uses one comparator at each input port to find
// the HOL address cell with the smallest time stamp, and one at each
// output port to pick the winning request — "since the comparison
// operation of each input port does not depend on each other, it can be
// performed in parallel", giving the O(1)-per-round argument (citing the
// WBA scheduler's comparator design).
//
// ComparatorTree models that structure bit-for-bit at the register level:
// a balanced binary reduction over N lanes where each node forwards the
// smaller key (ties: lower lane index, matching a fixed tie-break wire).
// It reports the circuit depth (comparator levels on the critical path),
// which is ceil(log2(lanes)) — the number every latency claim in Section
// IV rests on.  The behavioural schedulers do not use this class; it
// exists so tests can check the hardware-faithful datapath computes the
// same winners as the software implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/panic.hpp"

namespace fifoms::hw {

/// Result of one reduction: winning lane and its key.
struct CompareResult {
  int lane = -1;
  std::uint64_t key = 0;
  bool valid = false;
};

class ComparatorTree {
 public:
  /// A tree over `lanes` input lanes (lanes >= 1).
  explicit ComparatorTree(int lanes);

  int lanes() const { return lanes_; }

  /// Comparator levels on the critical path: ceil(log2(lanes)).
  int depth() const { return depth_; }

  /// Present a key on one lane for the next evaluate(); lanes without a
  /// key participate as invalid and never win.
  void set_lane(int lane, std::uint64_t key);
  void clear_lane(int lane);
  void clear_all();

  /// Evaluate the tree: smallest key wins, ties go to the lower lane.
  /// Also counts the comparator evaluations performed (for the energy /
  /// area accounting in the hw bench).
  CompareResult evaluate();

  /// Total pairwise comparator evaluations since construction.
  std::uint64_t comparisons() const { return comparisons_; }

 private:
  struct Lane {
    std::uint64_t key = 0;
    bool valid = false;
  };

  int lanes_;
  int depth_;
  std::vector<Lane> inputs_;
  std::vector<CompareResult> scratch_;
  std::uint64_t comparisons_ = 0;
};

}  // namespace fifoms::hw
