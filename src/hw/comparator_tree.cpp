#include "hw/comparator_tree.hpp"

namespace fifoms::hw {

namespace {
int ceil_log2(int n) {
  int depth = 0;
  int reach = 1;
  while (reach < n) {
    reach *= 2;
    ++depth;
  }
  return depth;
}
}  // namespace

ComparatorTree::ComparatorTree(int lanes)
    : lanes_(lanes), depth_(ceil_log2(lanes)) {
  FIFOMS_ASSERT(lanes >= 1, "comparator tree needs at least one lane");
  inputs_.resize(static_cast<std::size_t>(lanes));
  scratch_.resize(static_cast<std::size_t>(lanes));
}

void ComparatorTree::set_lane(int lane, std::uint64_t key) {
  FIFOMS_ASSERT(lane >= 0 && lane < lanes_, "lane out of range");
  inputs_[static_cast<std::size_t>(lane)] = Lane{key, true};
}

void ComparatorTree::clear_lane(int lane) {
  FIFOMS_ASSERT(lane >= 0 && lane < lanes_, "lane out of range");
  inputs_[static_cast<std::size_t>(lane)] = Lane{};
}

void ComparatorTree::clear_all() {
  for (auto& lane : inputs_) lane = Lane{};
}

CompareResult ComparatorTree::evaluate() {
  // Level 0: copy lanes into the scratch rail.
  int width = lanes_;
  for (int lane = 0; lane < lanes_; ++lane) {
    const Lane& in = inputs_[static_cast<std::size_t>(lane)];
    scratch_[static_cast<std::size_t>(lane)] =
        CompareResult{lane, in.key, in.valid};
  }

  // Balanced binary reduction; each node is one physical comparator.
  while (width > 1) {
    const int next_width = (width + 1) / 2;
    for (int node = 0; node < width / 2; ++node) {
      const CompareResult& a = scratch_[static_cast<std::size_t>(2 * node)];
      const CompareResult& b =
          scratch_[static_cast<std::size_t>(2 * node + 1)];
      ++comparisons_;
      CompareResult out;
      if (!a.valid) {
        out = b;
      } else if (!b.valid) {
        out = a;
      } else if (b.key < a.key) {
        out = b;  // strict: ties keep the lower lane (a)
      } else {
        out = a;
      }
      scratch_[static_cast<std::size_t>(node)] = out;
    }
    if (width % 2 == 1) {
      // Odd lane passes through without a comparator.
      scratch_[static_cast<std::size_t>(width / 2)] =
          scratch_[static_cast<std::size_t>(width - 1)];
    }
    width = next_width;
  }
  return scratch_[0];
}

}  // namespace fifoms::hw
