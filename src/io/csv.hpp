// CsvWriter: RFC-4180-ish CSV output with quoting.
//
// Every bench writes its sweep results as CSV next to the console table,
// so figures can be re-plotted without re-running the simulation.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace fifoms {

struct PointSummary;

class CsvWriter {
 public:
  /// Open `path` for writing; panics if it cannot be created.
  explicit CsvWriter(const std::string& path);

  /// Write one row; fields are quoted when they contain , " or newline.
  void row(const std::vector<std::string>& fields);

  /// Convenience: format doubles with enough precision for re-plotting.
  static std::string num(double value);

  void flush() { out_.flush(); }

 private:
  std::ofstream out_;
};

/// Standard header + rows for a vector of sweep summaries.
void write_sweep_csv(const std::string& path,
                     const std::vector<PointSummary>& points);

}  // namespace fifoms
