// Minimal command-line flag parser for the benches and examples.
//
// Flags are declared with defaults and doc strings, parsed from
// "--name value" or "--name=value" pairs; "--help" prints usage and the
// caller exits.  Deliberately tiny — the binaries need a dozen scalar
// flags, not a framework.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fifoms {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declare flags (call before parse()).
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parse argv; returns false (after printing usage) on --help or error.
  bool parse(int argc, char** argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  void print_usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string default_text;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  const Flag& find(const std::string& name, Kind kind) const;
  bool set_from_text(Flag& flag, const std::string& text);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace fifoms
