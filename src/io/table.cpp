#include "io/table.hpp"

#include <algorithm>

#include "common/panic.hpp"
#include "sim/experiment.hpp"

namespace fifoms {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FIFOMS_ASSERT(!headers_.empty(), "table without columns");
}

void TablePrinter::row(std::vector<std::string> fields) {
  FIFOMS_ASSERT(fields.size() == headers_.size(),
                "row width does not match header");
  rows_.push_back(std::move(fields));
}

std::string TablePrinter::fixed(double value, int decimals) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

void TablePrinter::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::fprintf(out, "%s%-*s", c ? "  " : "",
                   static_cast<int>(widths[c]), row[c].c_str());
    std::fprintf(out, "\n");
  };

  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void print_sweep_tables(const std::vector<PointSummary>& points,
                        std::FILE* out) {
  // Preserve first-seen algorithm order.
  std::vector<std::string> algorithms;
  for (const PointSummary& p : points)
    if (std::find(algorithms.begin(), algorithms.end(), p.algorithm) ==
        algorithms.end())
      algorithms.push_back(p.algorithm);

  for (const std::string& algorithm : algorithms) {
    std::fprintf(out, "\n%s\n", algorithm.c_str());
    TablePrinter table({"load", "in_delay", "out_delay", "avg_queue",
                        "max_queue", "rounds", "throughput", "status"});
    for (const PointSummary& p : points) {
      if (p.algorithm != algorithm) continue;
      table.row({TablePrinter::fixed(p.load, 3),
                 TablePrinter::fixed(p.input_delay, 2),
                 TablePrinter::fixed(p.output_delay, 2),
                 TablePrinter::fixed(p.queue_mean, 2),
                 TablePrinter::fixed(p.queue_max, 1),
                 TablePrinter::fixed(p.rounds_busy, 2),
                 TablePrinter::fixed(p.throughput, 3),
                 p.unstable() ? "UNSTABLE"
                 : p.unstable_count > 0
                     ? std::to_string(p.unstable_count) + "/" +
                           std::to_string(p.replications) + " unstable"
                     : "ok"});
    }
    table.print(out);
  }
}

}  // namespace fifoms
