#include "io/csv.hpp"

#include <cstdio>

#include "common/panic.hpp"
#include "sim/experiment.hpp"

namespace fifoms {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  FIFOMS_ASSERT(out_.good(), "cannot open CSV file for writing");
}

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << (needs_quoting(fields[i]) ? quote(fields[i]) : fields[i]);
  }
  out_ << '\n';
  FIFOMS_ASSERT(out_.good(), "CSV write failed");
}

std::string CsvWriter::num(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

void write_sweep_csv(const std::string& path,
                     const std::vector<PointSummary>& points) {
  CsvWriter csv(path);
  csv.row({"algorithm", "load", "replications", "unstable", "input_delay",
           "input_delay_se", "output_delay", "output_delay_se",
           "output_delay_p99", "queue_mean", "queue_max", "rounds_busy",
           "rounds_all", "throughput", "failed", "truncated"});
  for (const PointSummary& p : points) {
    csv.row({p.algorithm, CsvWriter::num(p.load),
             std::to_string(p.replications), std::to_string(p.unstable_count),
             CsvWriter::num(p.input_delay), CsvWriter::num(p.input_delay_se),
             CsvWriter::num(p.output_delay), CsvWriter::num(p.output_delay_se),
             CsvWriter::num(p.output_delay_p99), CsvWriter::num(p.queue_mean),
             CsvWriter::num(p.queue_max), CsvWriter::num(p.rounds_busy),
             CsvWriter::num(p.rounds_all), CsvWriter::num(p.throughput),
             std::to_string(p.failed_count),
             std::to_string(p.truncated_count)});
  }
}

}  // namespace fifoms
