// TablePrinter: aligned plain-text tables for bench/example output.
//
// The benches print the paper's series as console tables (one row per
// load point, one column group per metric) so the "same rows the paper
// reports" are readable without any plotting step.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace fifoms {

struct PointSummary;

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void row(std::vector<std::string> fields);

  /// Render to `out` with columns padded to their widest cell.
  void print(std::FILE* out = stdout) const;

  static std::string fixed(double value, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a sweep as one table per algorithm: load vs the four paper
/// metrics (plus throughput), flagging unstable points.
void print_sweep_tables(const std::vector<PointSummary>& points,
                        std::FILE* out = stdout);

}  // namespace fifoms
