#include "io/json.hpp"

#include <cstdio>

#include "common/panic.hpp"
#include "sim/experiment.hpp"

namespace fifoms {

std::string JsonWriter::escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::raw(const std::string& text) {
  FIFOMS_ASSERT(!done_, "JsonWriter: document already complete");
  out_ += text;
}

void JsonWriter::before_value() {
  if (scopes_.empty()) return;  // top-level single value
  if (scopes_.back() == Scope::kObject) {
    FIFOMS_ASSERT(expecting_value_, "JsonWriter: value in object needs key()");
    expecting_value_ = false;
    return;
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
}

void JsonWriter::begin_object() {
  before_value();
  raw("{");
  scopes_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_object() {
  FIFOMS_ASSERT(!scopes_.empty() && scopes_.back() == Scope::kObject,
                "JsonWriter: end_object outside object");
  FIFOMS_ASSERT(!expecting_value_, "JsonWriter: dangling key");
  raw("}");
  scopes_.pop_back();
  first_in_scope_.pop_back();
  if (scopes_.empty()) done_ = true;
}

void JsonWriter::begin_array() {
  before_value();
  raw("[");
  scopes_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_array() {
  FIFOMS_ASSERT(!scopes_.empty() && scopes_.back() == Scope::kArray,
                "JsonWriter: end_array outside array");
  raw("]");
  scopes_.pop_back();
  first_in_scope_.pop_back();
  if (scopes_.empty()) done_ = true;
}

void JsonWriter::key(const std::string& name) {
  FIFOMS_ASSERT(!scopes_.empty() && scopes_.back() == Scope::kObject,
                "JsonWriter: key outside object");
  FIFOMS_ASSERT(!expecting_value_, "JsonWriter: two keys in a row");
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  raw("\"");
  raw(escape(name));
  raw("\":");
  expecting_value_ = true;
}

void JsonWriter::value(const std::string& text) {
  before_value();
  raw("\"");
  raw(escape(text));
  raw("\"");
  if (scopes_.empty()) done_ = true;
}

void JsonWriter::value(double number) {
  before_value();
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.10g", number);
  raw(buffer);
  if (scopes_.empty()) done_ = true;
}

void JsonWriter::value(std::int64_t number) {
  before_value();
  raw(std::to_string(number));
  if (scopes_.empty()) done_ = true;
}

void JsonWriter::value(bool flag) {
  before_value();
  raw(flag ? "true" : "false");
  if (scopes_.empty()) done_ = true;
}

const std::string& JsonWriter::str() const {
  FIFOMS_ASSERT(scopes_.empty(), "JsonWriter: unbalanced document");
  return out_;
}

std::string sweep_to_json(const std::vector<PointSummary>& points) {
  JsonWriter json;
  json.begin_array();
  for (const PointSummary& p : points) {
    json.begin_object();
    json.key("algorithm");
    json.value(p.algorithm);
    json.key("load");
    json.value(p.load);
    json.key("replications");
    json.value(p.replications);
    json.key("unstable_count");
    json.value(p.unstable_count);
    json.key("failed_count");
    json.value(p.failed_count);
    json.key("truncated_count");
    json.value(p.truncated_count);
    json.key("input_delay");
    json.value(p.input_delay);
    json.key("output_delay");
    json.value(p.output_delay);
    json.key("output_delay_p99");
    json.value(p.output_delay_p99);
    json.key("queue_mean");
    json.value(p.queue_mean);
    json.key("queue_max");
    json.value(p.queue_max);
    json.key("rounds_busy");
    json.value(p.rounds_busy);
    json.key("throughput");
    json.value(p.throughput);
    json.end_object();
  }
  json.end_array();
  return json.str();
}

}  // namespace fifoms
