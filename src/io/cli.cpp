#include "io/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/panic.hpp"

namespace fifoms {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  Flag flag;
  flag.kind = Kind::kInt;
  flag.help = help;
  flag.int_value = default_value;
  flag.default_text = std::to_string(default_value);
  FIFOMS_ASSERT(flags_.emplace(name, std::move(flag)).second,
                "duplicate flag");
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  Flag flag;
  flag.kind = Kind::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", default_value);
  flag.default_text = buffer;
  FIFOMS_ASSERT(flags_.emplace(name, std::move(flag)).second,
                "duplicate flag");
  order_.push_back(name);
}

void ArgParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Flag flag;
  flag.kind = Kind::kString;
  flag.help = help;
  flag.string_value = default_value;
  flag.default_text = default_value;
  FIFOMS_ASSERT(flags_.emplace(name, std::move(flag)).second,
                "duplicate flag");
  order_.push_back(name);
}

void ArgParser::add_bool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag flag;
  flag.kind = Kind::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  flag.default_text = default_value ? "true" : "false";
  FIFOMS_ASSERT(flags_.emplace(name, std::move(flag)).second,
                "duplicate flag");
  order_.push_back(name);
}

bool ArgParser::set_from_text(Flag& flag, const std::string& text) {
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kInt:
      flag.int_value = std::strtoll(text.c_str(), &end, 10);
      return end != text.c_str() && *end == '\0';
    case Kind::kDouble:
      flag.double_value = std::strtod(text.c_str(), &end);
      return end != text.c_str() && *end == '\0';
    case Kind::kString:
      flag.string_value = text;
      return true;
    case Kind::kBool:
      if (text == "true" || text == "1") {
        flag.bool_value = true;
        return true;
      }
      if (text == "false" || text == "0") {
        flag.bool_value = false;
        return true;
      }
      return false;
  }
  return false;
}

bool ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", program_.c_str(),
                   arg.c_str());
      print_usage();
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    bool have_value = false;
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      have_value = true;
    }
    const auto it = flags_.find(arg);
    if (it == flags_.end()) {
      std::fprintf(stderr, "%s: unknown flag '--%s'\n", program_.c_str(),
                   arg.c_str());
      print_usage();
      return false;
    }
    if (!have_value) {
      if (it->second.kind == Kind::kBool) {
        it->second.bool_value = true;  // bare --flag enables a boolean
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag '--%s' needs a value\n",
                     program_.c_str(), arg.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!set_from_text(it->second, value)) {
      std::fprintf(stderr, "%s: bad value '%s' for flag '--%s'\n",
                   program_.c_str(), value.c_str(), arg.c_str());
      return false;
    }
  }
  return true;
}

const ArgParser::Flag& ArgParser::find(const std::string& name,
                                       Kind kind) const {
  const auto it = flags_.find(name);
  FIFOMS_ASSERT(it != flags_.end(), "flag was never declared");
  FIFOMS_ASSERT(it->second.kind == kind, "flag accessed with wrong type");
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return find(name, Kind::kInt).int_value;
}

double ArgParser::get_double(const std::string& name) const {
  return find(name, Kind::kDouble).double_value;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).string_value;
}

bool ArgParser::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).bool_value;
}

void ArgParser::print_usage() const {
  std::fprintf(stderr, "%s — %s\n\nflags:\n", program_.c_str(),
               description_.c_str());
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    std::fprintf(stderr, "  --%-14s %s (default: %s)\n", name.c_str(),
                 flag.help.c_str(), flag.default_text.c_str());
  }
}

}  // namespace fifoms
