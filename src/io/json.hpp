// Minimal JSON writer (objects, arrays, scalars) — enough to dump sweep
// results for downstream tooling without an external dependency.
//
// Usage:
//   JsonWriter json;
//   json.begin_object();
//   json.key("loads"); json.begin_array(); json.value(0.5); json.end_array();
//   json.end_object();
//   std::string text = json.str();
//
// The writer tracks nesting and comma placement; misuse (value without a
// key inside an object, unbalanced end_*) panics.
#pragma once

#include <string>
#include <vector>

namespace fifoms {

struct PointSummary;

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key inside an object (must be followed by a value or container).
  void key(const std::string& name);

  void value(const std::string& text);
  void value(const char* text) { value(std::string(text)); }
  void value(double number);
  void value(std::int64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(bool flag);

  const std::string& str() const;

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void raw(const std::string& text);
  static std::string escape(const std::string& text);

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_in_scope_;
  bool expecting_value_ = false;  // a key was just written
  bool done_ = false;
};

/// Serialise sweep summaries as a JSON array of objects.
std::string sweep_to_json(const std::vector<PointSummary>& points);

}  // namespace fifoms
