// BatchMeans: steady-state confidence intervals for correlated series.
//
// Per-slot observations from a queueing simulation are strongly
// autocorrelated, so the naive stderr of RunningStat understates the
// uncertainty of a steady-state mean.  The method of batch means groups
// consecutive observations into fixed-size batches; batch averages are
// approximately independent once the batch size exceeds the correlation
// time, and their spread yields an honest confidence interval.  The
// experiment harness reports per-replication means; this class supports
// single-long-run analyses (examples, methodology tests).
#pragma once

#include <cstdint>

#include "stats/welford.hpp"

namespace fifoms {

class BatchMeans {
 public:
  /// `batch_size`: observations pooled per batch (choose >> correlation
  /// time; thousands of slots for queue series near saturation).
  explicit BatchMeans(std::uint64_t batch_size);

  void add(double x);

  std::uint64_t batch_size() const { return batch_size_; }
  std::uint64_t completed_batches() const { return batches_.count(); }
  std::uint64_t observations() const { return observations_; }

  /// Mean over completed batches (unweighted; the partial tail batch is
  /// discarded, standard practice).
  double mean() const { return batches_.mean(); }

  /// Half-width of the CI: z * s_batches / sqrt(k).  Returns +inf with
  /// fewer than two completed batches.
  double ci_halfwidth(double z = 1.96) const;

  /// Convenience: does the CI at the given z lie within +-rel of the mean?
  bool converged(double rel, double z = 1.96) const;

 private:
  std::uint64_t batch_size_;
  std::uint64_t observations_ = 0;
  double current_sum_ = 0.0;
  std::uint64_t current_count_ = 0;
  RunningStat batches_;
};

}  // namespace fifoms
