#include "stats/batch_means.hpp"

#include <cmath>
#include <limits>

#include "common/panic.hpp"

namespace fifoms {

BatchMeans::BatchMeans(std::uint64_t batch_size) : batch_size_(batch_size) {
  FIFOMS_ASSERT(batch_size >= 1, "batch size must be positive");
}

void BatchMeans::add(double x) {
  ++observations_;
  current_sum_ += x;
  if (++current_count_ == batch_size_) {
    batches_.add(current_sum_ / static_cast<double>(batch_size_));
    current_sum_ = 0.0;
    current_count_ = 0;
  }
}

double BatchMeans::ci_halfwidth(double z) const {
  if (batches_.count() < 2)
    return std::numeric_limits<double>::infinity();
  return z * batches_.sample_stddev() /
         std::sqrt(static_cast<double>(batches_.count()));
}

bool BatchMeans::converged(double rel, double z) const {
  if (batches_.count() < 2) return false;
  const double half = ci_halfwidth(z);
  return half <= rel * std::abs(mean());
}

}  // namespace fifoms
