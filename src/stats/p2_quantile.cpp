#include "stats/p2_quantile.hpp"

#include <algorithm>
#include <cmath>

#include "common/panic.hpp"

namespace fifoms {

P2Quantile::P2Quantile(double q) : q_(q) {
  FIFOMS_ASSERT(q > 0.0 && q < 1.0, "P2Quantile requires q in (0, 1)");
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  const double qi = heights_[i];
  const double np = positions_[i + 1] - positions_[i];
  const double nm = positions_[i] - positions_[i - 1];
  const double total = positions_[i + 1] - positions_[i - 1];
  return qi + d / total *
                  ((nm + d) * (heights_[i + 1] - qi) / np +
                   (np - d) * (qi - heights_[i - 1]) / nm);
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }

  // Locate the cell containing x and update extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x < heights_[1]) {
    k = 0;
  } else if (x < heights_[2]) {
    k = 1;
  } else if (x < heights_[3]) {
    k = 2;
  } else if (x <= heights_[4]) {
    k = 3;
  } else {
    heights_[4] = x;
    k = 3;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool move_right = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool move_left = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (move_right || move_left) {
      const double step = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, step);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, step);
      }
      positions_[i] += step;
    }
  }
  ++count_;
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the few samples seen so far.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const auto index = static_cast<std::size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min<std::size_t>(index, count_ - 1)];
  }
  return heights_[2];
}

}  // namespace fifoms
