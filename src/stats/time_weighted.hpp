// Time-weighted streaming statistics.
//
// Queue occupancy is a step function of time, not a sample sequence: a
// queue that holds 100 cells for one slot and 0 cells for 99 slots has a
// time-average of 1, not 50.  TimeWeightedStat accumulates value*duration
// integrals so level-crossing metrics (mean occupancy, link utilisation)
// are weighted by how long each level persisted, matching the L = lambda*W
// bookkeeping queueing theory expects.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/panic.hpp"

namespace fifoms {

class TimeWeightedStat {
 public:
  /// Record that the observed value was `value` for `duration` time units
  /// (slots).  Zero durations are accepted and contribute nothing, so
  /// callers can pass elapsed-time deltas unguarded.
  void add(double value, double duration) {
    FIFOMS_ASSERT(duration >= 0.0, "negative duration");
    if (duration == 0.0) return;
    integral_ += value * duration;
    duration_ += duration;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    ++intervals_;
  }

  /// Merge another accumulator (parallel reduction / multi-run pooling).
  void merge(const TimeWeightedStat& other) {
    if (other.intervals_ == 0) return;
    integral_ += other.integral_;
    duration_ += other.duration_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    intervals_ += other.intervals_;
  }

  bool empty() const { return intervals_ == 0; }
  std::uint64_t intervals() const { return intervals_; }

  /// Total observation time.
  double duration() const { return duration_; }

  /// Integral of value over time (e.g. cell-slots of buffering).
  double integral() const { return integral_; }

  /// Time-weighted mean; 0 when nothing was observed.
  double mean() const { return duration_ == 0.0 ? 0.0 : integral_ / duration_; }

  double min() const { return intervals_ == 0 ? 0.0 : min_; }
  double max() const { return intervals_ == 0 ? 0.0 : max_; }

  void reset() { *this = TimeWeightedStat{}; }

 private:
  double integral_ = 0.0;
  double duration_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::uint64_t intervals_ = 0;
};

}  // namespace fifoms
