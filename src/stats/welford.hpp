// Streaming summary statistics (Welford's algorithm).
//
// All delay/queue metrics in the paper are long-run averages over millions
// of samples; Welford's recurrence keeps the mean and variance numerically
// stable without storing samples.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace fifoms {

class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merge another accumulator (parallel reduction / multi-seed pooling).
  void merge(const RunningStat& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    mean_ = (n1 * mean_ + n2 * other.mean_) / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Mean of the samples; 0 when empty (convenient for report tables).
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance; 0 with fewer than two samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  /// Unbiased sample variance; 0 with fewer than two samples.
  double sample_variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  double stddev() const { return std::sqrt(variance()); }
  double sample_stddev() const { return std::sqrt(sample_variance()); }

  /// Standard error of the mean.
  double stderr_mean() const {
    return count_ == 0 ? 0.0
                       : sample_stddev() / std::sqrt(static_cast<double>(count_));
  }

  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  void reset() { *this = RunningStat{}; }

  /// Exact internal state, for snapshot/restore.  Unlike the public
  /// accessors (which clamp empty accumulators to 0), this round-trips the
  /// raw words so restored stats are bit-identical.
  struct RawState {
    std::uint64_t count;
    double mean;
    double m2;
    double min;
    double max;
  };
  RawState raw_state() const { return {count_, mean_, m2_, min_, max_}; }
  void set_raw_state(const RawState& s) {
    count_ = s.count;
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace fifoms
