// P² (piecewise-parabolic) streaming quantile estimator, Jain & Chlamtac 1985.
//
// Delay distributions at high load are heavy-tailed; the mean alone hides
// the tail behaviour that distinguishes schedulers near saturation.  P²
// estimates an arbitrary quantile in O(1) memory without storing samples,
// which lets the metrics collector report p99 delay alongside the paper's
// averages.
#pragma once

#include <array>
#include <cstdint>

namespace fifoms {

class P2Quantile {
 public:
  /// Estimator for the q-th quantile, q in (0, 1).
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; exact while fewer than five samples have been seen.
  double value() const;

  std::uint64_t count() const { return count_; }

  /// Exact marker state, for snapshot/restore.  The target quantile q is
  /// construction-time configuration and is not part of the state.
  struct RawState {
    std::uint64_t count;
    std::array<double, 5> heights;
    std::array<double, 5> positions;
    std::array<double, 5> desired;
    std::array<double, 5> increments;
  };
  RawState raw_state() const {
    return {count_, heights_, positions_, desired_, increments_};
  }
  void set_raw_state(const RawState& s) {
    count_ = s.count;
    heights_ = s.heights;
    positions_ = s.positions;
    desired_ = s.desired;
    increments_ = s.increments;
  }

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};       // marker heights
  std::array<double, 5> positions_{};     // actual marker positions
  std::array<double, 5> desired_{};       // desired marker positions
  std::array<double, 5> increments_{};    // desired position increments
};

}  // namespace fifoms
