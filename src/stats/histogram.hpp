// Integer-valued histogram with automatic range growth.
//
// Used for per-slot distributions whose support is small and discrete:
// convergence rounds per slot, fanout of arriving packets, instantaneous
// queue depth.  The exact distribution (not just moments) feeds the
// convergence-rounds reproduction (paper Fig. 5) and several tests.
#pragma once

#include <cstdint>
#include <vector>

namespace fifoms {

class Histogram {
 public:
  /// Record one observation of `value` (must be >= 0).
  void add(std::int64_t value);

  /// Number of observations equal to `value`.
  std::uint64_t count_at(std::int64_t value) const;

  std::uint64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// Largest value observed so far; -1 when empty.
  std::int64_t max_value() const;

  double mean() const;

  /// Smallest v such that P[X <= v] >= q, with q in [0, 1]; -1 when empty.
  std::int64_t quantile(double q) const;

  /// Merge another histogram into this one.
  void merge(const Histogram& other);

  void reset();

  /// Dense counts [0 .. max_value()].
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Replace contents with dense `counts` (snapshot/restore); total and
  /// weighted sum are recomputed, so buckets() round-trips exactly.
  void restore(const std::vector<std::uint64_t>& counts);

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  __int128 weighted_sum_ = 0;
};

}  // namespace fifoms
