#include "stats/histogram.hpp"

#include "common/panic.hpp"

namespace fifoms {

void Histogram::add(std::int64_t value) {
  FIFOMS_ASSERT(value >= 0, "Histogram only supports non-negative values");
  const auto index = static_cast<std::size_t>(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  ++total_;
  weighted_sum_ += value;
}

std::uint64_t Histogram::count_at(std::int64_t value) const {
  if (value < 0 || static_cast<std::size_t>(value) >= buckets_.size()) return 0;
  return buckets_[static_cast<std::size_t>(value)];
}

std::int64_t Histogram::max_value() const {
  for (std::size_t i = buckets_.size(); i-- > 0;)
    if (buckets_[i] > 0) return static_cast<std::int64_t>(i);
  return -1;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(weighted_sum_) / static_cast<double>(total_);
}

std::int64_t Histogram::quantile(double q) const {
  if (total_ == 0) return -1;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target && cumulative > 0)
      return static_cast<std::int64_t>(i);
  }
  return max_value();
}

void Histogram::merge(const Histogram& other) {
  if (other.buckets_.size() > buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  weighted_sum_ += other.weighted_sum_;
}

void Histogram::restore(const std::vector<std::uint64_t>& counts) {
  buckets_ = counts;
  total_ = 0;
  weighted_sum_ = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    total_ += buckets_[i];
    weighted_sum_ += static_cast<__int128>(buckets_[i]) *
                     static_cast<__int128>(i);
  }
}

void Histogram::reset() {
  buckets_.clear();
  total_ = 0;
  weighted_sum_ = 0;
}

}  // namespace fifoms
