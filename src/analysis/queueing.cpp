#include "analysis/queueing.hpp"

#include <cmath>

#include "common/panic.hpp"

namespace fifoms::analysis {

double karol_saturation() { return 2.0 - std::sqrt(2.0); }

double slotted_queue_mean(double mean_arrivals, double var_arrivals) {
  FIFOMS_ASSERT(mean_arrivals >= 0.0 && mean_arrivals < 1.0,
                "slotted queue requires E[A] in [0, 1)");
  FIFOMS_ASSERT(var_arrivals >= 0.0, "variance cannot be negative");
  if (mean_arrivals == 0.0) return 0.0;
  return (var_arrivals + mean_arrivals * mean_arrivals - mean_arrivals) /
         (2.0 * (1.0 - mean_arrivals));
}

double slotted_queue_delay(double mean_arrivals, double var_arrivals,
                           double mean_a_times_a_minus_1) {
  if (mean_arrivals == 0.0) return 0.0;
  // A tagged cell waits behind the queue left by the previous slot plus
  // the cells of its own batch that are served before it (uniform rank
  // inside the batch, size-biased batch): E[A(A-1)] / (2 E[A]).
  return slotted_queue_mean(mean_arrivals, var_arrivals) +
         mean_a_times_a_minus_1 / (2.0 * mean_arrivals);
}

double oqfifo_queue_bernoulli(int num_ports, double p, double b) {
  const double n = static_cast<double>(num_ports);
  const double a = p * b;           // per-input probability of a copy
  const double mean = n * a;        // Binomial(N, a) mean
  const double var = n * a * (1.0 - a);
  return slotted_queue_mean(mean, var);
}

double oqfifo_delay_bernoulli(int num_ports, double p, double b) {
  const double n = static_cast<double>(num_ports);
  const double a = p * b;
  const double mean = n * a;
  const double var = n * a * (1.0 - a);
  // For Binomial(N, a): E[A(A-1)] = N(N-1)a^2.
  const double factorial_moment = n * (n - 1.0) * a * a;
  return slotted_queue_delay(mean, var, factorial_moment);
}

}  // namespace fifoms::analysis
