// Closed-form queueing results used to cross-validate the simulator.
//
// The OQFIFO switch is analytically tractable: each output is a slotted
// queue q_{t+1} = max(q_t + A_t - 1, 0) with i.i.d. batch arrivals A_t,
// and its stationary mean queue and mean cell delay have exact closed
// forms.  Tests compare the simulator's measured OQFIFO statistics
// against these formulas — an end-to-end check that arrivals, service,
// warm-up accounting and the metrics pipeline are all correct, against an
// independent source of truth.
//
// Also provides the classical saturation constants quoted by the paper.
#pragma once

namespace fifoms::analysis {

/// Karol/Hluchyj/Morgan single-FIFO saturation throughput, 2 - sqrt(2).
/// The paper's Fig. 6 shows TATRA capped near this value.
double karol_saturation();

/// Stationary mean queue length of the slotted queue
/// q' = max(q + A - 1, 0) with i.i.d. arrivals A per slot:
///     E[q] = (Var[A] + E[A]^2 - E[A]) / (2 (1 - E[A])),
/// sampled at slot boundaries (after arrivals and service).
/// Requires E[A] < 1.
double slotted_queue_mean(double mean_arrivals, double var_arrivals);

/// Mean cell delay in the same queue under FIFO with random order inside
/// a batch, with the library's convention that a cell served in its
/// arrival slot has delay 0:
///     E[W] = E[q] + E[A (A - 1)] / (2 E[A]).
double slotted_queue_delay(double mean_arrivals, double var_arrivals,
                           double mean_a_times_a_minus_1);

/// Mean queue of one OQFIFO output under Bernoulli multicast traffic
/// (paper Section V-A): arrivals per output per slot are
/// Binomial(N, p*b).
double oqfifo_queue_bernoulli(int num_ports, double p, double b);

/// Mean cell delay of the same system (library delay convention).
double oqfifo_delay_bernoulli(int num_ports, double p, double b);

}  // namespace fifoms::analysis
