// MatchingAuditor: a runtime invariant checker for every switch model.
//
// Attached through the SlotObserver interface, the auditor rebuilds an
// independent shadow copy of the switch's bookkeeping from the event
// stream it can see (injections and per-copy deliveries) and cross-checks
// it against the paper's queue-structure rules every slot:
//
//   * matching validity — each output receives from at most one input per
//     slot, and an input transmitting to several outputs does so only with
//     copies of ONE data cell (the multicast crossbar exception, paper
//     Section II);
//   * fanout-counter conservation — every delivered copy decrements the
//     packet's remaining fanout exactly once, no copy is delivered twice
//     or outside the packet's destination set, and the data cell is freed
//     iff the counter reaches zero (checked structurally against
//     DataCellPool for the VOQ-based switches);
//   * per-VOQ FIFO order — timestamps served on one (input, output) pair
//     never decrease (disabled where the architecture legitimately
//     reorders: the ESLIP hybrid structure and multi-class VOQs);
//   * end-to-end cell conservation — copies offered equal copies
//     delivered plus copies purged plus copies still queued, checked
//     against the switch's own occupancy counters per model;
//   * fault isolation — under an attached fault plan (docs/FAULTS.md) no
//     copy is ever delivered to a failed output, from a failed input, or
//     across a failed crosspoint link, and every purged copy names a
//     currently-failed output and retires real fanout.
//
// Violations panic with a slot-stamped diagnostic naming the ports and
// packet involved.  The checks compile to no-ops when FIFOMS_AUDIT is 0
// (the Release preset), so hot paths stay untouched; the auditor is also
// pay-as-you-go at runtime — nothing is checked unless one is attached.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/port_set.hpp"
#include "sim/observer.hpp"

// FIFOMS_AUDIT is normally set by the build system (ON everywhere except
// the Release preset).  Standalone consumers of the headers get a
// build-type-derived default.
#ifndef FIFOMS_AUDIT
#ifdef NDEBUG
#define FIFOMS_AUDIT 0
#else
#define FIFOMS_AUDIT 1
#endif
#endif

namespace fifoms {

class MatchingAuditor final : public SlotObserver {
 public:
  struct Options {
    /// Walk every VOQ ring of the VOQ-based switches each audited slot to
    /// cross-check fanout counters and per-class FIFO order against the
    /// live DataCellPool.  O(queued address cells) per audited slot.
    bool deep_structure = true;
    /// Audit only every k-th slot's structural state (delivery-stream
    /// checks always run).  1 = every slot.
    SlotTime structure_every = 1;
  };

  MatchingAuditor() : MatchingAuditor(Options{}) {}
  explicit MatchingAuditor(Options options);

  /// False when the build compiled the checks out (FIFOMS_AUDIT=0).
  static constexpr bool enabled() { return FIFOMS_AUDIT != 0; }

  void on_inject(const SwitchModel& sw, const Packet& packet) override;
  void on_slot(SlotTime now, const SwitchModel& sw,
               const SlotResult& result) override;
  /// Mirrors the fault plan into a shadow failure state so deliveries can
  /// be cross-checked against it (no grant to a dead port).
  void on_fault_event(SlotTime now, const SwitchModel& sw,
                      const fault::FaultEvent& event) override;

  /// Slots that went through the full check battery.
  std::uint64_t slots_audited() const { return slots_audited_; }
  /// Delivered copies individually verified.
  std::uint64_t copies_checked() const { return copies_out_; }
  /// Packets whose full fanout was observed and retired.
  std::uint64_t packets_retired() const { return packets_retired_; }
  /// Copies verified as legitimately purged at a failed output.
  std::uint64_t copies_purged() const { return copies_purged_; }
  /// Fault events mirrored into the shadow failure state.
  std::uint64_t fault_events_seen() const { return fault_events_seen_; }

  /// Forget all shadow state (call between simulation runs).
  void reset();

  /// Serialise the complete shadow ledger (live packets sorted by id —
  /// canonical form) so a resumed run audits with exactly the state the
  /// uninterrupted run would have.
  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  struct Shadow {  // one live (injected, not fully served) packet
    PortId input = kNoPort;
    SlotTime arrival = 0;
    PortSet remaining;
    std::uint64_t payload_tag = 0;
  };

  void check_deliveries(SlotTime now, const SwitchModel& sw,
                        const SlotResult& result);
  void check_conservation(SlotTime now, const SwitchModel& sw);
  void check_structure(SlotTime now, const SwitchModel& sw);

  void check_purges(SlotTime now, const SwitchModel& sw,
                    const SlotResult& result);

  Options options_;
  std::unordered_map<PacketId, Shadow> live_;
  std::vector<std::uint64_t> live_per_input_;
  std::vector<std::uint64_t> queued_per_output_;  // copies, OQ conservation
  std::vector<SlotTime> last_pair_ts_;     // per (input * N + output)
  std::vector<SlotTime> last_input_ts_;    // single-FIFO whole-queue order
  std::vector<SlotTime> last_output_ts_;   // OQ per-output order
  // Shadow failure state, rebuilt from the on_fault_event stream.
  PortSet failed_outputs_;
  PortSet failed_inputs_;
  std::vector<PortSet> failed_links_;  // per input
  std::uint64_t copies_in_ = 0;
  std::uint64_t copies_out_ = 0;
  std::uint64_t copies_purged_ = 0;
  std::uint64_t packets_retired_ = 0;
  std::uint64_t slots_audited_ = 0;
  std::uint64_t fault_events_seen_ = 0;
};

}  // namespace fifoms
