#include "analysis/auditor.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "snapshot/snapshot.hpp"

#include "common/panic.hpp"
#include "fault/fault.hpp"
#include "sched/eslip.hpp"
#include "sim/cioq_switch.hpp"
#include "sim/oq_switch.hpp"
#include "sim/single_fifo_switch.hpp"
#include "sim/voq_switch.hpp"

// Every audit diagnostic goes through this macro so the message always
// carries the slot number (tools/lint.py enforces both properties).
#define FIFOMS_AUDIT_FAIL(now, msg)                                   \
  ::fifoms::panic(__FILE__, __LINE__,                                 \
                  "audit violation at slot " + std::to_string(now) +  \
                      ": " + (msg))

namespace fifoms {

#if FIFOMS_AUDIT

namespace {

std::string port_str(PortId p) { return std::to_string(p); }
std::string pkt_str(PacketId p) { return std::to_string(p); }

constexpr SlotTime kNeverServed = std::numeric_limits<SlotTime>::min();

}  // namespace

MatchingAuditor::MatchingAuditor(Options options) : options_(options) {}

namespace {

template <typename T>
void ensure_size(std::vector<T>& v, std::size_t n, T fill) {
  if (v.size() < n) v.resize(n, fill);
}

}  // namespace

void MatchingAuditor::reset() {
  live_.clear();
  live_per_input_.clear();
  queued_per_output_.clear();
  last_pair_ts_.clear();
  last_input_ts_.clear();
  last_output_ts_.clear();
  failed_outputs_ = PortSet{};
  failed_inputs_ = PortSet{};
  failed_links_.clear();
  copies_in_ = 0;
  copies_out_ = 0;
  copies_purged_ = 0;
  packets_retired_ = 0;
  slots_audited_ = 0;
  fault_events_seen_ = 0;
}

void MatchingAuditor::save_state(snapshot::Writer& out) const {
  std::vector<std::pair<PacketId, Shadow>> live(live_.begin(), live_.end());
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.u64(live.size());
  for (const auto& [id, shadow] : live) {
    out.u64(id);
    out.i32(shadow.input);
    out.i64(shadow.arrival);
    out.port_set(shadow.remaining);
    out.u64(shadow.payload_tag);
  }
  auto write_u64s = [&out](const std::vector<std::uint64_t>& v) {
    out.u64(v.size());
    for (std::uint64_t x : v) out.u64(x);
  };
  auto write_slots = [&out](const std::vector<SlotTime>& v) {
    out.u64(v.size());
    for (SlotTime x : v) out.i64(x);
  };
  write_u64s(live_per_input_);
  write_u64s(queued_per_output_);
  write_slots(last_pair_ts_);
  write_slots(last_input_ts_);
  write_slots(last_output_ts_);
  out.port_set(failed_outputs_);
  out.port_set(failed_inputs_);
  out.u64(failed_links_.size());
  for (const PortSet& links : failed_links_) out.port_set(links);
  out.u64(copies_in_);
  out.u64(copies_out_);
  out.u64(copies_purged_);
  out.u64(packets_retired_);
  out.u64(slots_audited_);
  out.u64(fault_events_seen_);
}

void MatchingAuditor::load_state(snapshot::Reader& in) {
  constexpr std::size_t kLimit = std::size_t{1} << 26;
  live_.clear();
  const std::size_t count = in.length(kLimit);
  live_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const PacketId id = in.u64();
    Shadow shadow;
    shadow.input = in.i32();
    shadow.arrival = in.i64();
    shadow.remaining = in.port_set();
    shadow.payload_tag = in.u64();
    if (!live_.emplace(id, shadow).second)
      throw snapshot::SnapshotError("duplicate live packet in auditor state");
  }
  auto read_u64s = [&in, kLimit](std::vector<std::uint64_t>& v) {
    v.resize(in.length(kLimit));
    for (std::uint64_t& x : v) x = in.u64();
  };
  auto read_slots = [&in, kLimit](std::vector<SlotTime>& v) {
    v.resize(in.length(kLimit));
    for (SlotTime& x : v) x = in.i64();
  };
  read_u64s(live_per_input_);
  read_u64s(queued_per_output_);
  read_slots(last_pair_ts_);
  read_slots(last_input_ts_);
  read_slots(last_output_ts_);
  failed_outputs_ = in.port_set();
  failed_inputs_ = in.port_set();
  failed_links_.resize(in.length(kLimit));
  for (PortSet& links : failed_links_) links = in.port_set();
  copies_in_ = in.u64();
  copies_out_ = in.u64();
  copies_purged_ = in.u64();
  packets_retired_ = in.u64();
  slots_audited_ = in.u64();
  fault_events_seen_ = in.u64();
}

void MatchingAuditor::on_fault_event(SlotTime now, const SwitchModel& sw,
                                     const fault::FaultEvent& event) {
  ensure_size(failed_links_, static_cast<std::size_t>(sw.num_inputs()),
              PortSet{});
  ++fault_events_seen_;
  // The simulator already validated level consistency through FaultPlan,
  // so a mismatch here means the event stream itself is corrupt.
  switch (event.kind) {
    case fault::FaultKind::kOutputDown:
      if (failed_outputs_.contains(event.port))
        FIFOMS_AUDIT_FAIL(now, "fault stream corrupt: output " +
                                   port_str(event.port) + " downed twice");
      failed_outputs_.insert(event.port);
      break;
    case fault::FaultKind::kOutputUp:
      if (!failed_outputs_.contains(event.port))
        FIFOMS_AUDIT_FAIL(now, "fault stream corrupt: output " +
                                   port_str(event.port) +
                                   " restored while up");
      failed_outputs_.erase(event.port);
      break;
    case fault::FaultKind::kInputDown:
      failed_inputs_.insert(event.port);
      break;
    case fault::FaultKind::kInputUp:
      failed_inputs_.erase(event.port);
      break;
    case fault::FaultKind::kLinkDown:
      failed_links_[static_cast<std::size_t>(event.port)].insert(event.output);
      break;
    case fault::FaultKind::kLinkUp:
      failed_links_[static_cast<std::size_t>(event.port)].erase(event.output);
      break;
    case fault::FaultKind::kGrantCorrupt:
      break;  // transient: sanitisation is checked via the delivery stream
  }
}

void MatchingAuditor::on_inject(const SwitchModel& sw, const Packet& packet) {
  ensure_size(live_per_input_, static_cast<std::size_t>(sw.num_inputs()),
              std::uint64_t{0});
  ensure_size(queued_per_output_, static_cast<std::size_t>(sw.num_outputs()),
              std::uint64_t{0});

  const SlotTime now = packet.arrival;
  if (packet.input < 0 || packet.input >= sw.num_inputs())
    FIFOMS_AUDIT_FAIL(now, "injected packet " + pkt_str(packet.id) +
                               " claims out-of-range input " +
                               port_str(packet.input));
  if (packet.destinations.empty())
    FIFOMS_AUDIT_FAIL(now, "injected packet " + pkt_str(packet.id) +
                               " has an empty destination set");
  const auto [it, inserted] = live_.emplace(
      packet.id, Shadow{.input = packet.input,
                        .arrival = packet.arrival,
                        .remaining = packet.destinations,
                        .payload_tag = packet.payload_tag()});
  if (!inserted)
    FIFOMS_AUDIT_FAIL(now, "packet id " + pkt_str(packet.id) +
                               " injected twice (first at input " +
                               port_str(it->second.input) + ")");
  ++live_per_input_[static_cast<std::size_t>(packet.input)];
  for (PortId output : packet.destinations) {
    if (output >= sw.num_outputs())
      FIFOMS_AUDIT_FAIL(now, "injected packet " + pkt_str(packet.id) +
                                 " targets out-of-range output " +
                                 port_str(output));
    ++queued_per_output_[static_cast<std::size_t>(output)];
  }
  copies_in_ += static_cast<std::uint64_t>(packet.fanout());
}

void MatchingAuditor::on_slot(SlotTime now, const SwitchModel& sw,
                              const SlotResult& result) {
  check_purges(now, sw, result);
  check_deliveries(now, sw, result);
  check_conservation(now, sw);
  if (options_.deep_structure && options_.structure_every > 0 &&
      now % options_.structure_every == 0)
    check_structure(now, sw);
  ++slots_audited_;
}

void MatchingAuditor::check_deliveries(SlotTime now, const SwitchModel& sw,
                                       const SlotResult& result) {
  const int num_inputs = sw.num_inputs();
  const int num_outputs = sw.num_outputs();
  ensure_size(last_pair_ts_,
              static_cast<std::size_t>(num_inputs) *
                  static_cast<std::size_t>(num_outputs),
              kNeverServed);
  ensure_size(last_input_ts_, static_cast<std::size_t>(num_inputs),
              kNeverServed);
  ensure_size(last_output_ts_, static_cast<std::size_t>(num_outputs),
              kNeverServed);
  ensure_size(live_per_input_, static_cast<std::size_t>(num_inputs),
              std::uint64_t{0});
  ensure_size(queued_per_output_, static_cast<std::size_t>(num_outputs),
              std::uint64_t{0});

  // Architecture-dependent rule selection.  The crossbar rule (one data
  // cell per input row) holds for the matching-driven switches; the OQ and
  // CIOQ line sides legally emit unrelated packets from one input.  The
  // per-(input, output) FIFO rule holds everywhere except the ESLIP hybrid
  // (two queues per input interleave) and multi-class VOQs (strict
  // priority overtakes FIFO order across classes).
  const bool is_eslip = dynamic_cast<const EslipSwitch*>(&sw) != nullptr;
  const auto* voq = dynamic_cast<const VoqSwitch*>(&sw);
  const bool crossbar_rule =
      voq != nullptr || is_eslip ||
      dynamic_cast<const SingleFifoSwitch*>(&sw) != nullptr;
  const bool multi_class =
      voq != nullptr && num_inputs > 0 && voq->input(0).num_classes() > 1;
  const bool pair_fifo_rule = !is_eslip && !multi_class;
  const bool input_fifo_rule =
      dynamic_cast<const SingleFifoSwitch*>(&sw) != nullptr;
  const bool output_fifo_rule = dynamic_cast<const OqSwitch*>(&sw) != nullptr;

  // Per-slot scratch: who drives each output, what each input transmits.
  std::vector<PortId> output_source(static_cast<std::size_t>(num_outputs),
                                    kNoPort);
  std::vector<PacketId> input_cell(static_cast<std::size_t>(num_inputs),
                                   kNoPacket);

  for (const Delivery& d : result.deliveries) {
    if (d.input < 0 || d.input >= num_inputs || d.output < 0 ||
        d.output >= num_outputs)
      FIFOMS_AUDIT_FAIL(now, "delivery of packet " + pkt_str(d.packet) +
                                 " names out-of-range ports " +
                                 port_str(d.input) + "->" +
                                 port_str(d.output));

    // Fault isolation: a degraded scheduler must never land a copy on a
    // dead port or push one across a dead crosspoint.
    if (failed_outputs_.contains(d.output))
      FIFOMS_AUDIT_FAIL(now, "grant to failed output: packet " +
                                 pkt_str(d.packet) +
                                 " delivered to output " + port_str(d.output) +
                                 " while it is down");
    if (failed_inputs_.contains(d.input))
      FIFOMS_AUDIT_FAIL(now, "grant from failed input: packet " +
                                 pkt_str(d.packet) +
                                 " transmitted by input " + port_str(d.input) +
                                 " while its line card is down");
    if (static_cast<std::size_t>(d.input) < failed_links_.size() &&
        failed_links_[static_cast<std::size_t>(d.input)].contains(d.output))
      FIFOMS_AUDIT_FAIL(now, "grant across failed link: packet " +
                                 pkt_str(d.packet) + " crossed " +
                                 port_str(d.input) + "->" +
                                 port_str(d.output) +
                                 " while that crosspoint is down");

    // Matching validity: each output fed by at most one input per slot.
    PortId& source = output_source[static_cast<std::size_t>(d.output)];
    if (source != kNoPort && source != d.input)
      FIFOMS_AUDIT_FAIL(now, "matching corrupt: output " +
                                 port_str(d.output) +
                                 " granted to inputs " + port_str(source) +
                                 " and " + port_str(d.input) +
                                 " in one slot");
    if (source == d.input)
      FIFOMS_AUDIT_FAIL(now, "matching corrupt: output " +
                                 port_str(d.output) +
                                 " served twice in one slot by input " +
                                 port_str(d.input));
    source = d.input;

    // The multicast crossbar exception: one input may feed several
    // outputs, but only with copies of the same data cell.
    if (crossbar_rule) {
      PacketId& cell = input_cell[static_cast<std::size_t>(d.input)];
      if (cell != kNoPacket && cell != d.packet)
        FIFOMS_AUDIT_FAIL(now, "matching corrupt: input " +
                                   port_str(d.input) +
                                   " scheduled to send two different data "
                                   "cells (packets " +
                                   pkt_str(cell) + " and " +
                                   pkt_str(d.packet) + ")");
      cell = d.packet;
    }

    // Fanout-counter conservation against the shadow copy.
    const auto it = live_.find(d.packet);
    if (it == live_.end())
      FIFOMS_AUDIT_FAIL(now, "delivery at output " + port_str(d.output) +
                                 " of unknown or already-retired packet " +
                                 pkt_str(d.packet) +
                                 " (fanout counter over-decremented)");
    Shadow& shadow = it->second;
    if (shadow.input != d.input)
      FIFOMS_AUDIT_FAIL(now, "packet " + pkt_str(d.packet) +
                                 " delivered from input " + port_str(d.input) +
                                 " but was injected at input " +
                                 port_str(shadow.input));
    if (shadow.arrival != d.arrival)
      FIFOMS_AUDIT_FAIL(now, "packet " + pkt_str(d.packet) +
                                 " arrival stamp corrupted: delivery says " +
                                 std::to_string(d.arrival) +
                                 ", injection said " +
                                 std::to_string(shadow.arrival));
    if (d.arrival > now)
      FIFOMS_AUDIT_FAIL(now, "packet " + pkt_str(d.packet) +
                                 " delivered before its arrival slot " +
                                 std::to_string(d.arrival));
    if (shadow.payload_tag != d.payload_tag)
      FIFOMS_AUDIT_FAIL(now, "payload corruption: packet " +
                                 pkt_str(d.packet) + " copy at output " +
                                 port_str(d.output) +
                                 " carries the wrong payload tag");
    if (!shadow.remaining.contains(d.output))
      FIFOMS_AUDIT_FAIL(now, "fanout counter corrupt: packet " +
                                 pkt_str(d.packet) + " copy to output " +
                                 port_str(d.output) +
                                 " already served or not a destination");
    shadow.remaining.erase(d.output);
    ++copies_out_;
    --queued_per_output_[static_cast<std::size_t>(d.output)];

    // FIFO order rules.
    const auto pair = static_cast<std::size_t>(d.input) *
                          static_cast<std::size_t>(num_outputs) +
                      static_cast<std::size_t>(d.output);
    if (pair_fifo_rule) {
      if (d.arrival < last_pair_ts_[pair])
        FIFOMS_AUDIT_FAIL(now, "per-VOQ FIFO order violated: (input " +
                                   port_str(d.input) + ", output " +
                                   port_str(d.output) +
                                   ") served timestamp " +
                                   std::to_string(d.arrival) + " after " +
                                   std::to_string(last_pair_ts_[pair]));
      last_pair_ts_[pair] = d.arrival;
    }
    if (input_fifo_rule) {
      SlotTime& last = last_input_ts_[static_cast<std::size_t>(d.input)];
      if (d.arrival < last)
        FIFOMS_AUDIT_FAIL(now, "input FIFO order violated: input " +
                                   port_str(d.input) +
                                   " served timestamp " +
                                   std::to_string(d.arrival) + " after " +
                                   std::to_string(last));
      last = d.arrival;
    }
    if (output_fifo_rule) {
      SlotTime& last = last_output_ts_[static_cast<std::size_t>(d.output)];
      if (d.arrival < last)
        FIFOMS_AUDIT_FAIL(now, "output FIFO order violated: output " +
                                   port_str(d.output) +
                                   " served timestamp " +
                                   std::to_string(d.arrival) + " after " +
                                   std::to_string(last));
      last = d.arrival;
    }

    // Retire the packet when its last copy lands (fanout counter zero).
    if (shadow.remaining.empty()) {
      --live_per_input_[static_cast<std::size_t>(d.input)];
      live_.erase(it);
      ++packets_retired_;
    }
  }
}

void MatchingAuditor::check_purges(SlotTime now, const SwitchModel& sw,
                                   const SlotResult& result) {
  for (const Delivery& purge : result.purged) {
    if (purge.input < 0 || purge.input >= sw.num_inputs() ||
        purge.output < 0 || purge.output >= sw.num_outputs())
      FIFOMS_AUDIT_FAIL(now, "purge of packet " + pkt_str(purge.packet) +
                                 " names out-of-range ports " +
                                 port_str(purge.input) + "->" +
                                 port_str(purge.output));
    // A purge is only legitimate while its output is actually down:
    // purging at a live output silently discards deliverable traffic.
    if (!failed_outputs_.contains(purge.output))
      FIFOMS_AUDIT_FAIL(now, "purge at live output: packet " +
                                 pkt_str(purge.packet) +
                                 " purged at output " + port_str(purge.output) +
                                 " which is not down");
    const auto it = live_.find(purge.packet);
    if (it == live_.end())
      FIFOMS_AUDIT_FAIL(now, "purge of unknown or already-retired packet " +
                                 pkt_str(purge.packet) +
                                 " (fanout counter over-decremented)");
    Shadow& shadow = it->second;
    if (shadow.input != purge.input)
      FIFOMS_AUDIT_FAIL(now, "packet " + pkt_str(purge.packet) +
                                 " purged from input " + port_str(purge.input) +
                                 " but was injected at input " +
                                 port_str(shadow.input));
    if (shadow.arrival != purge.arrival)
      FIFOMS_AUDIT_FAIL(now, "purged packet " + pkt_str(purge.packet) +
                                 " carries corrupted arrival stamp " +
                                 std::to_string(purge.arrival));
    if (!shadow.remaining.contains(purge.output))
      FIFOMS_AUDIT_FAIL(now, "fanout counter corrupt: packet " +
                                 pkt_str(purge.packet) + " copy to output " +
                                 port_str(purge.output) +
                                 " purged but already served or not a "
                                 "destination");
    shadow.remaining.erase(purge.output);
    ++copies_purged_;
    --queued_per_output_[static_cast<std::size_t>(purge.output)];
    if (shadow.remaining.empty()) {
      --live_per_input_[static_cast<std::size_t>(purge.input)];
      live_.erase(it);
      ++packets_retired_;
    }
  }
}

void MatchingAuditor::check_conservation(SlotTime now, const SwitchModel& sw) {
  const std::uint64_t pending = copies_in_ - copies_out_ - copies_purged_;

  if (const auto* voq = dynamic_cast<const VoqSwitch*>(&sw)) {
    std::uint64_t queued = 0;
    for (PortId p = 0; p < voq->num_inputs(); ++p) {
      const McVoqInput& input = voq->input(p);
      queued += input.address_cell_count();
      if (input.data_cell_count() !=
          live_per_input_[static_cast<std::size_t>(p)])
        FIFOMS_AUDIT_FAIL(now, "data cell conservation violated at input " +
                                   port_str(p) + ": pool holds " +
                                   std::to_string(input.data_cell_count()) +
                                   " live cells, auditor expects " +
                                   std::to_string(live_per_input_
                                       [static_cast<std::size_t>(p)]));
    }
    if (queued != pending)
      FIFOMS_AUDIT_FAIL(now, "cell conservation violated: " +
                                 std::to_string(queued) +
                                 " address cells queued but arrivals - "
                                 "departures = " +
                                 std::to_string(pending));
    return;
  }

  if (const auto* cioq = dynamic_cast<const CioqSwitch*>(&sw)) {
    // Data cells are freed when the last copy crosses the fabric, possibly
    // before it leaves the line, so only copy-level conservation is exact:
    // pending copies live either as address cells or in the output FIFOs.
    std::uint64_t queued = 0;
    for (PortId p = 0; p < cioq->num_inputs(); ++p)
      queued += cioq->input(p).address_cell_count();
    for (PortId p = 0; p < cioq->num_outputs(); ++p)
      queued += cioq->output_occupancy(p);
    if (queued != pending)
      FIFOMS_AUDIT_FAIL(now, "cell conservation violated: " +
                                 std::to_string(queued) +
                                 " copies queued (address cells + output "
                                 "FIFOs) but arrivals - departures = " +
                                 std::to_string(pending));
    return;
  }

  if (const auto* fifo = dynamic_cast<const SingleFifoSwitch*>(&sw)) {
    for (PortId p = 0; p < fifo->num_inputs(); ++p)
      if (fifo->occupancy(p) != live_per_input_[static_cast<std::size_t>(p)])
        FIFOMS_AUDIT_FAIL(now, "packet conservation violated at input " +
                                   port_str(p) + ": queue holds " +
                                   std::to_string(fifo->occupancy(p)) +
                                   " packets, auditor expects " +
                                   std::to_string(live_per_input_
                                       [static_cast<std::size_t>(p)]));
    return;
  }

  if (const auto* oq = dynamic_cast<const OqSwitch*>(&sw)) {
    for (PortId p = 0; p < oq->num_outputs(); ++p)
      if (oq->occupancy(p) != queued_per_output_[static_cast<std::size_t>(p)])
        FIFOMS_AUDIT_FAIL(now, "cell conservation violated at output " +
                                   port_str(p) + ": queue holds " +
                                   std::to_string(oq->occupancy(p)) +
                                   " cells, auditor expects " +
                                   std::to_string(queued_per_output_
                                       [static_cast<std::size_t>(p)]));
    if (oq->total_buffered() != pending)
      FIFOMS_AUDIT_FAIL(now, "cell conservation violated: " +
                                 std::to_string(oq->total_buffered()) +
                                 " cells buffered but arrivals - "
                                 "departures = " +
                                 std::to_string(pending));
    return;
  }

  if (const auto* eslip = dynamic_cast<const EslipSwitch*>(&sw)) {
    std::uint64_t queued = 0;
    for (PortId p = 0; p < eslip->num_inputs(); ++p)
      queued += eslip->input(p).pending_copies();
    if (queued != pending)
      FIFOMS_AUDIT_FAIL(now, "cell conservation violated: " +
                                 std::to_string(queued) +
                                 " pending copies queued but arrivals - "
                                 "departures = " +
                                 std::to_string(pending));
    return;
  }
  // Unknown model (e.g. a test double): delivery-stream checks only.
}

namespace {

/// Walk every VOQ ring of one multicast-VOQ input and cross-check the
/// address cells against the live DataCellPool (shared by VoqSwitch and
/// CioqSwitch conservation audits).
void audit_mc_voq_input(SlotTime now, const McVoqInput& input) {
  const DataCellPool& pool = input.pool();
  // Pending address cells per referenced data cell, indexed by pool slot.
  std::unordered_map<std::uint32_t, int> ref_count;
  ref_count.reserve(pool.live_count());

  for (int priority = 0; priority < input.num_classes(); ++priority) {
    for (PortId output = 0; output < input.num_outputs(); ++output) {
      const RingBuffer<AddressCell>& ring =
          input.address_cells(priority, output);
      std::uint64_t prev_weight = 0;
      for (std::size_t i = 0; i < ring.size(); ++i) {
        const AddressCell& cell = ring[i];
        if (i > 0 && cell.weight < prev_weight)
          FIFOMS_AUDIT_FAIL(now, "VOQ weight order violated at (input " +
                                     std::to_string(input.port()) +
                                     ", output " + std::to_string(output) +
                                     ", class " + std::to_string(priority) +
                                     "), position " + std::to_string(i));
        prev_weight = cell.weight;
        if (!pool.is_live(cell.data))
          FIFOMS_AUDIT_FAIL(now, "stale data cell reference: address cell "
                                 "of packet " +
                                     std::to_string(cell.packet) +
                                     " at (input " +
                                     std::to_string(input.port()) +
                                     ", output " + std::to_string(output) +
                                     ") points at a destroyed data cell");
        const DataCell& data = pool.get(cell.data);
        if (data.packet != cell.packet || data.timestamp != cell.timestamp)
          FIFOMS_AUDIT_FAIL(now, "address cell of packet " +
                                     std::to_string(cell.packet) +
                                     " disagrees with its data cell "
                                     "(packet " +
                                     std::to_string(data.packet) +
                                     ", timestamp " +
                                     std::to_string(data.timestamp) + ")");
        ++ref_count[cell.data.index];
      }
    }
  }

  // Weight-plane / occupied() consistency: rebuild both from the rings
  // and compare against the incrementally maintained views the scheduler
  // kernels read.  A drifted plane entry would silently misdirect every
  // later request step, so catch it at the slot where it diverges.
  const std::span<const std::uint64_t> plane = input.hol_weights();
  if (plane.size() % 64 != 0 ||
      plane.size() < static_cast<std::size_t>(input.num_outputs()))
    FIFOMS_AUDIT_FAIL(now, "weight plane of input " +
                               std::to_string(input.port()) +
                               " is missing its 64-entry padding");
  for (PortId output = 0; output < input.num_outputs(); ++output) {
    std::uint64_t expected = kWeightInfinity;
    for (int priority = 0; priority < input.num_classes(); ++priority) {
      const RingBuffer<AddressCell>& ring =
          input.address_cells(priority, output);
      if (!ring.empty() && ring[0].weight < expected)
        expected = ring[0].weight;
    }
    const std::uint64_t got = plane[static_cast<std::size_t>(output)];
    if (got != expected)
      FIFOMS_AUDIT_FAIL(now, "weight plane drift at (input " +
                                 std::to_string(input.port()) + ", output " +
                                 std::to_string(output) + "): plane holds " +
                                 std::to_string(got) +
                                 " but the rings imply " +
                                 std::to_string(expected));
    if (input.occupied().contains(output) != (expected != kWeightInfinity))
      FIFOMS_AUDIT_FAIL(now, "occupied() bit inconsistent with rings at "
                             "(input " +
                                 std::to_string(input.port()) + ", output " +
                                 std::to_string(output) + ")");
  }
  for (std::size_t o = static_cast<std::size_t>(input.num_outputs());
       o < plane.size(); ++o)
    if (plane[o] != kWeightInfinity)
      FIFOMS_AUDIT_FAIL(now, "weight plane padding of input " +
                                 std::to_string(input.port()) +
                                 " corrupted at entry " + std::to_string(o));

  // hol_min consistency: the fabric-maintained minimum and carrier mask
  // must equal a fresh reduction over the plane — the scheduler's request
  // fast path trusts them without rescanning.
  std::uint64_t min_expected = kWeightInfinity;
  PortSet min_mask_expected;
  for (PortId output = 0; output < input.num_outputs(); ++output) {
    const std::uint64_t w = plane[static_cast<std::size_t>(output)];
    if (w < min_expected) {
      min_expected = w;
      min_mask_expected = PortSet::single(output);
    } else if (w == min_expected && w != kWeightInfinity) {
      min_mask_expected.insert(output);
    }
  }
  if (input.hol_min_weight() != min_expected ||
      !(input.hol_min_outputs() == min_mask_expected))
    FIFOMS_AUDIT_FAIL(now, "hol_min drift at input " +
                               std::to_string(input.port()) +
                               ": fabric holds " +
                               std::to_string(input.hol_min_weight()) +
                               " over " + input.hol_min_outputs().to_string() +
                               " but the plane implies " +
                               std::to_string(min_expected) + " over " +
                               min_mask_expected.to_string());

  if (ref_count.size() != pool.live_count())
    FIFOMS_AUDIT_FAIL(now, "data cell leak at input " +
                               std::to_string(input.port()) + ": " +
                               std::to_string(pool.live_count()) +
                               " live cells but only " +
                               std::to_string(ref_count.size()) +
                               " referenced by address cells");
  // Second walk for the counter comparison: a cell's fanoutCounter must
  // equal the number of address cells still referencing it (Table 2 —
  // decrements happen exactly when a copy is served, destruction at zero).
  for (int priority = 0; priority < input.num_classes(); ++priority) {
    for (PortId output = 0; output < input.num_outputs(); ++output) {
      const RingBuffer<AddressCell>& ring =
          input.address_cells(priority, output);
      for (std::size_t i = 0; i < ring.size(); ++i) {
        const AddressCell& cell = ring[i];
        const DataCell& data = pool.get(cell.data);
        const auto it = ref_count.find(cell.data.index);
        if (it != ref_count.end() && data.fanout_counter != it->second)
          FIFOMS_AUDIT_FAIL(now, "fanout counter mismatch: data cell of "
                                 "packet " +
                                     std::to_string(data.packet) +
                                     " has counter " +
                                     std::to_string(data.fanout_counter) +
                                     " but " + std::to_string(it->second) +
                                     " pending address cells");
      }
    }
  }
}

}  // namespace

void MatchingAuditor::check_structure(SlotTime now, const SwitchModel& sw) {
  if (const auto* voq = dynamic_cast<const VoqSwitch*>(&sw)) {
    for (PortId p = 0; p < voq->num_inputs(); ++p)
      audit_mc_voq_input(now, voq->input(p));
  } else if (const auto* cioq = dynamic_cast<const CioqSwitch*>(&sw)) {
    for (PortId p = 0; p < cioq->num_inputs(); ++p)
      audit_mc_voq_input(now, cioq->input(p));
  }
}

#else  // !FIFOMS_AUDIT — the auditor compiles to an inert observer.

MatchingAuditor::MatchingAuditor(Options options) : options_(options) {}
void MatchingAuditor::reset() {}
void MatchingAuditor::save_state(snapshot::Writer&) const {}
void MatchingAuditor::load_state(snapshot::Reader&) {}
void MatchingAuditor::on_inject(const SwitchModel&, const Packet&) {}
void MatchingAuditor::on_slot(SlotTime, const SwitchModel&,
                              const SlotResult&) {}
void MatchingAuditor::on_fault_event(SlotTime, const SwitchModel&,
                                     const fault::FaultEvent&) {}
void MatchingAuditor::check_deliveries(SlotTime, const SwitchModel&,
                                       const SlotResult&) {}
void MatchingAuditor::check_purges(SlotTime, const SwitchModel&,
                                   const SlotResult&) {}
void MatchingAuditor::check_conservation(SlotTime, const SwitchModel&) {}
void MatchingAuditor::check_structure(SlotTime, const SwitchModel&) {}

#endif  // FIFOMS_AUDIT

}  // namespace fifoms
