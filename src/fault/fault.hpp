// Deterministic fault injection: FaultPlan (a reproducible schedule of
// fabric failures) and FaultState (the per-slot runtime view the switch
// models and the simulator consume).
//
// The plan is immutable and fully determined by its inputs — scenario
// builders derive every random choice from a seed through the same
// splitmix64 streams the sweep engine uses, so a fault storm replays
// bit-identically under any thread count.  FaultState::advance(now)
// applies the events scheduled for `now` and exposes both the level view
// (which ports/links are currently down) and the edge view (what changed
// this slot) that the auditor and the degradation logic need.
//
// Error handling contract: this subsystem is exercised while the fabric
// is already degraded, so it must never take the process down.  All
// validation throws FaultError; panic()/FIFOMS_ASSERT/abort are banned
// here by the `no-abort-in-fault-path` lint rule.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/port_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace fifoms::fault {

/// Thrown on malformed plans or misuse of FaultState.  Deliberately an
/// exception, not a panic: fault handling must degrade, never abort.
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultKind {
  kOutputDown,    ///< output port stops accepting cells
  kOutputUp,      ///< output port restored
  kInputDown,     ///< input line card stops transmitting (and arriving)
  kInputUp,       ///< input line card restored
  kLinkDown,      ///< one crosspoint (input, output) link dies
  kLinkUp,        ///< crosspoint link restored
  kGrantCorrupt,  ///< one grant wire flips for this slot (transient)
};

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  SlotTime slot = 0;
  FaultKind kind = FaultKind::kOutputDown;
  /// The affected output (kOutput*) or input (kInput*, kLink*).
  PortId port = kNoPort;
  /// The crosspoint column for kLink*; unused otherwise.
  PortId output = kNoPort;

  bool operator==(const FaultEvent&) const = default;
};

std::string to_string(const FaultEvent& event);

/// An immutable, validated, slot-sorted schedule of fault events.
class FaultPlan {
 public:
  /// The empty plan (no faults ever).
  FaultPlan() = default;

  /// Validates port ranges, kind-specific fields and down/up consistency
  /// (no double-down, no up without a preceding down); throws FaultError.
  /// Events are stable-sorted by slot.  `seed` keys the deterministic
  /// side effects of transient events (grant corruption).
  FaultPlan(std::vector<FaultEvent> events, int num_ports,
            std::uint64_t seed = 0);

  const std::vector<FaultEvent>& events() const { return events_; }
  int num_ports() const { return num_ports_; }
  std::uint64_t seed() const { return seed_; }
  bool empty() const { return events_.empty(); }

  // ---- Scenario builders (docs/FAULTS.md) -------------------------------

  /// One output at a time goes down for `down_slots`, cycling through all
  /// ports every `period` slots until `horizon`.
  static FaultPlan rolling_port_flaps(int num_ports, SlotTime first_down,
                                      SlotTime period, SlotTime down_slots,
                                      SlotTime horizon);

  /// `cards` input line cards (chosen by seed) fail together at `down_at`
  /// and recover together at `up_at` — correlated loss.
  static FaultPlan correlated_line_card_loss(int num_ports,
                                             std::uint64_t seed,
                                             SlotTime down_at, SlotTime up_at,
                                             int cards);

  /// Adversarial mix until `horizon`: output flaps, link faults and
  /// transient grant corruption, all drawn from `seed`.
  static FaultPlan fault_storm(int num_ports, std::uint64_t seed,
                               SlotTime horizon);

 private:
  std::vector<FaultEvent> events_;
  int num_ports_ = 0;
  std::uint64_t seed_ = 0;
};

/// Runtime cursor over a FaultPlan.  advance(now) must be called with
/// non-decreasing slots; it applies every event scheduled at `now` and
/// resets the per-slot edge views.
class FaultState {
 public:
  explicit FaultState(const FaultPlan& plan);

  /// Apply the events scheduled at `now`; returns them (empty span on a
  /// quiet slot).  Throws FaultError if `now` moves backwards.
  std::span<const FaultEvent> advance(SlotTime now);

  // ---- Level view (current failure state) -------------------------------
  const PortSet& failed_outputs() const { return failed_outputs_; }
  const PortSet& failed_inputs() const { return failed_inputs_; }
  /// Per-input dead-link masks; empty span while no link fault is active.
  std::span<const PortSet> failed_links() const;
  bool link_failed(PortId input, PortId output) const;
  /// Dead-link mask of one input (empty set while no link fault is active).
  PortSet link_faults_for(PortId input) const;
  /// Any failure level or transient event active this slot?
  bool active() const;

  // ---- Edge view (what changed in the last advance()) -------------------
  const PortSet& outputs_downed_now() const { return outputs_downed_now_; }
  const PortSet& outputs_restored_now() const {
    return outputs_restored_now_;
  }
  std::span<const FaultEvent> grant_corruptions() const {
    return corruptions_now_;
  }

  /// Deterministic salt for the k-th grant corruption of slot `now`
  /// (a pure function of the plan seed, never of any simulation RNG).
  std::uint64_t corruption_salt(SlotTime now, std::size_t k) const;

 private:
  const FaultPlan* plan_;
  std::size_t cursor_ = 0;
  SlotTime last_slot_ = -1;
  PortSet failed_outputs_;
  PortSet failed_inputs_;
  std::vector<PortSet> failed_links_;  // per input
  int link_fault_count_ = 0;
  PortSet outputs_downed_now_;
  PortSet outputs_restored_now_;
  std::vector<FaultEvent> applied_now_;
  std::vector<FaultEvent> corruptions_now_;
};

}  // namespace fifoms::fault
