#include "fault/fault.hpp"

#include <algorithm>
#include <numeric>

namespace fifoms::fault {

namespace {

void require(bool ok, const std::string& message) {
  if (!ok) throw FaultError(message);
}

/// Level tracker shared by plan validation and FaultState: applies one
/// event, throwing on inconsistent transitions (double-down, up with no
/// preceding down).
struct Levels {
  int num_ports = 0;
  PortSet outputs;
  PortSet inputs;
  std::vector<PortSet> links;  // per input
  int link_count = 0;

  explicit Levels(int n) : num_ports(n), links(static_cast<std::size_t>(n)) {}

  void apply(const FaultEvent& event) {
    const std::string where =
        " (" + to_string(event) + " at slot " + std::to_string(event.slot) +
        ")";
    switch (event.kind) {
      case FaultKind::kOutputDown:
        require(!outputs.contains(event.port), "output already down" + where);
        outputs.insert(event.port);
        break;
      case FaultKind::kOutputUp:
        require(outputs.contains(event.port), "output not down" + where);
        outputs.erase(event.port);
        break;
      case FaultKind::kInputDown:
        require(!inputs.contains(event.port), "input already down" + where);
        inputs.insert(event.port);
        break;
      case FaultKind::kInputUp:
        require(inputs.contains(event.port), "input not down" + where);
        inputs.erase(event.port);
        break;
      case FaultKind::kLinkDown: {
        PortSet& row = links[static_cast<std::size_t>(event.port)];
        require(!row.contains(event.output), "link already down" + where);
        row.insert(event.output);
        ++link_count;
        break;
      }
      case FaultKind::kLinkUp: {
        PortSet& row = links[static_cast<std::size_t>(event.port)];
        require(row.contains(event.output), "link not down" + where);
        row.erase(event.output);
        --link_count;
        break;
      }
      case FaultKind::kGrantCorrupt:
        break;  // transient: no level state
    }
  }
};

void check_event_shape(const FaultEvent& event, int num_ports) {
  require(event.slot >= 0, "fault event scheduled at a negative slot");
  switch (event.kind) {
    case FaultKind::kOutputDown:
    case FaultKind::kOutputUp:
    case FaultKind::kInputDown:
    case FaultKind::kInputUp:
      require(event.port >= 0 && event.port < num_ports,
              "fault event port out of range");
      break;
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      require(event.port >= 0 && event.port < num_ports,
              "link fault input out of range");
      require(event.output >= 0 && event.output < num_ports,
              "link fault output out of range");
      break;
    case FaultKind::kGrantCorrupt:
      break;  // port fields unused; the salt picks the corrupted wire
  }
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutputDown: return "output-down";
    case FaultKind::kOutputUp: return "output-up";
    case FaultKind::kInputDown: return "input-down";
    case FaultKind::kInputUp: return "input-up";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kGrantCorrupt: return "grant-corrupt";
  }
  return "unknown";
}

std::string to_string(const FaultEvent& event) {
  std::string text = fault_kind_name(event.kind);
  switch (event.kind) {
    // Appended piecewise: chaining operator+ temporaries here trips a
    // gcc-12 -O3 -Wrestrict false positive (and allocates more anyway).
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      text += ' ';
      text += std::to_string(event.port);
      text += "->";
      text += std::to_string(event.output);
      break;
    case FaultKind::kGrantCorrupt:
      break;
    default:
      text += ' ';
      text += std::to_string(event.port);
      break;
  }
  return text;
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events, int num_ports,
                     std::uint64_t seed)
    : events_(std::move(events)), num_ports_(num_ports), seed_(seed) {
  require(num_ports > 0 && num_ports <= kMaxPorts,
          "fault plan port count out of range");
  for (const FaultEvent& event : events_) check_event_shape(event, num_ports);
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.slot < b.slot;
                   });
  Levels levels(num_ports);
  for (const FaultEvent& event : events_) levels.apply(event);
}

FaultPlan FaultPlan::rolling_port_flaps(int num_ports, SlotTime first_down,
                                        SlotTime period, SlotTime down_slots,
                                        SlotTime horizon) {
  require(period > 0 && down_slots > 0, "flap period/duration must be > 0");
  require(down_slots < period * num_ports,
          "flap would re-fail an output before it recovered");
  std::vector<FaultEvent> events;
  SlotTime slot = first_down;
  for (int k = 0; slot < horizon; ++k, slot += period) {
    const PortId output = static_cast<PortId>(k % num_ports);
    events.push_back({slot, FaultKind::kOutputDown, output, kNoPort});
    events.push_back({slot + down_slots, FaultKind::kOutputUp, output,
                      kNoPort});
  }
  return FaultPlan(std::move(events), num_ports);
}

FaultPlan FaultPlan::correlated_line_card_loss(int num_ports,
                                               std::uint64_t seed,
                                               SlotTime down_at,
                                               SlotTime up_at, int cards) {
  require(cards > 0 && cards <= num_ports, "card count out of range");
  require(down_at < up_at, "line cards must recover after they fail");
  // Seeded partial Fisher-Yates: the failing card set is a pure function
  // of (seed), independent of any simulation stream.
  std::vector<PortId> ports(static_cast<std::size_t>(num_ports));
  std::iota(ports.begin(), ports.end(), PortId{0});
  Rng pick_rng(splitmix64(seed, 0));
  std::vector<FaultEvent> events;
  for (int k = 0; k < cards; ++k) {
    const auto j = static_cast<std::size_t>(k) +
                   pick_rng.next_below(static_cast<std::uint64_t>(
                       num_ports - k));
    std::swap(ports[static_cast<std::size_t>(k)], ports[j]);
    const PortId input = ports[static_cast<std::size_t>(k)];
    events.push_back({down_at, FaultKind::kInputDown, input, kNoPort});
    events.push_back({up_at, FaultKind::kInputUp, input, kNoPort});
  }
  return FaultPlan(std::move(events), num_ports, seed);
}

FaultPlan FaultPlan::fault_storm(int num_ports, std::uint64_t seed,
                                 SlotTime horizon) {
  require(horizon >= 64, "fault storm needs at least 64 slots");
  Rng storm_rng(splitmix64(seed, 1));
  std::vector<FaultEvent> events;

  // Rolling output flaps over the whole horizon.
  const SlotTime period = std::max<SlotTime>(16, horizon / (2 * num_ports));
  const SlotTime down = std::max<SlotTime>(4, period / 2);
  const FaultPlan flaps =
      rolling_port_flaps(num_ports, period / 2, period, down, horizon);
  events = flaps.events();

  // A few crosspoint link faults: at most one per input, so the pairs
  // cannot collide regardless of the drawn outputs.
  const int link_faults = std::min(num_ports, 4);
  for (int k = 0; k < link_faults; ++k) {
    const auto input = static_cast<PortId>(k);
    const auto output = static_cast<PortId>(
        storm_rng.next_below(static_cast<std::uint64_t>(num_ports)));
    const auto start = static_cast<SlotTime>(
        storm_rng.next_below(static_cast<std::uint64_t>(horizon / 2)));
    const auto duration = static_cast<SlotTime>(
        1 + storm_rng.next_below(static_cast<std::uint64_t>(horizon / 4)));
    events.push_back({start, FaultKind::kLinkDown, input, output});
    events.push_back({start + duration, FaultKind::kLinkUp, input, output});
  }

  // One brief correlated input loss in the middle of the storm.
  const auto lost_input = static_cast<PortId>(
      storm_rng.next_below(static_cast<std::uint64_t>(num_ports)));
  events.push_back({horizon / 2, FaultKind::kInputDown, lost_input, kNoPort});
  events.push_back({horizon / 2 + horizon / 8, FaultKind::kInputUp,
                    lost_input, kNoPort});

  // Transient grant corruption sprinkled across the horizon.
  for (SlotTime slot = 32; slot < horizon; slot += 64)
    events.push_back({slot, FaultKind::kGrantCorrupt, kNoPort, kNoPort});

  return FaultPlan(std::move(events), num_ports, seed);
}

FaultState::FaultState(const FaultPlan& plan)
    : plan_(&plan),
      failed_links_(static_cast<std::size_t>(
          plan.num_ports() > 0 ? plan.num_ports() : 0)) {}

std::span<const FaultEvent> FaultState::advance(SlotTime now) {
  if (now < last_slot_)
    throw FaultError("FaultState::advance called with a past slot");
  last_slot_ = now;
  outputs_downed_now_.clear();
  outputs_restored_now_.clear();
  applied_now_.clear();
  corruptions_now_.clear();

  const auto& events = plan_->events();
  // Catch up through `now`: callers that skip slots still see a
  // consistent level view (the edge view then covers the whole gap).
  while (cursor_ < events.size() && events[cursor_].slot <= now) {
    const FaultEvent& event = events[cursor_++];
    switch (event.kind) {
      case FaultKind::kOutputDown:
        failed_outputs_.insert(event.port);
        outputs_downed_now_.insert(event.port);
        break;
      case FaultKind::kOutputUp:
        failed_outputs_.erase(event.port);
        outputs_restored_now_.insert(event.port);
        break;
      case FaultKind::kInputDown:
        failed_inputs_.insert(event.port);
        break;
      case FaultKind::kInputUp:
        failed_inputs_.erase(event.port);
        break;
      case FaultKind::kLinkDown:
        failed_links_[static_cast<std::size_t>(event.port)].insert(
            event.output);
        ++link_fault_count_;
        break;
      case FaultKind::kLinkUp:
        failed_links_[static_cast<std::size_t>(event.port)].erase(
            event.output);
        --link_fault_count_;
        break;
      case FaultKind::kGrantCorrupt:
        if (event.slot == now) corruptions_now_.push_back(event);
        break;
    }
    applied_now_.push_back(event);
  }
  return applied_now_;
}

std::span<const PortSet> FaultState::failed_links() const {
  if (link_fault_count_ == 0) return {};
  return failed_links_;
}

PortSet FaultState::link_faults_for(PortId input) const {
  if (link_fault_count_ == 0) return {};
  const auto i = static_cast<std::size_t>(input);
  return i < failed_links_.size() ? failed_links_[i] : PortSet{};
}

bool FaultState::link_failed(PortId input, PortId output) const {
  if (link_fault_count_ == 0) return false;
  const auto i = static_cast<std::size_t>(input);
  return i < failed_links_.size() && failed_links_[i].contains(output);
}

bool FaultState::active() const {
  return !failed_outputs_.empty() || !failed_inputs_.empty() ||
         link_fault_count_ > 0 || !corruptions_now_.empty();
}

std::uint64_t FaultState::corruption_salt(SlotTime now, std::size_t k) const {
  const std::uint64_t slot_key =
      plan_->seed() ^ (0x9e3779b97f4a7c15ULL *
                       (static_cast<std::uint64_t>(now) + 1));
  return splitmix64(slot_key, static_cast<std::uint64_t>(k));
}

}  // namespace fifoms::fault
