#include "verify/explorer.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <unordered_map>
#include <utility>

namespace fifoms::verify {

namespace {

PortSet mask_to_set(std::uint32_t mask, int ports) {
  PortSet set;
  for (PortId p = 0; p < ports; ++p)
    if ((mask >> p) & 1u) set.insert(p);
  return set;
}

std::uint32_t set_to_mask(const PortSet& set) {
  std::uint32_t mask = 0;
  for (PortId p : set) mask |= 1u << p;
  return mask;
}

/// One adversarial arrival decision as a mixed-radix code: digit i (base
/// 2^ports) is input i's destination bitmask, 0 meaning no arrival.
ArrivalVector code_to_arrival(std::uint64_t code, int ports) {
  const std::uint64_t choices = 1ull << ports;
  ArrivalVector arrival(static_cast<std::size_t>(ports));
  for (int input = 0; input < ports; ++input) {
    arrival[static_cast<std::size_t>(input)] =
        mask_to_set(static_cast<std::uint32_t>(code % choices), ports);
    code /= choices;
  }
  return arrival;
}

std::string hex_mask(std::uint32_t mask) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%x", mask);
  return buf;
}

}  // namespace

std::string encode_trace(const Trace& trace) {
  std::string text;
  for (const ArrivalVector& arrival : trace) {
    if (!text.empty()) text += ';';
    for (std::size_t input = 0; input < arrival.size(); ++input) {
      if (input != 0) text += ',';
      text += hex_mask(set_to_mask(arrival[input]));
    }
  }
  return text;
}

bool decode_trace(std::string_view text, int ports, Trace& out) {
  out.clear();
  if (ports < 1 || ports > kMaxVerifyPorts) return false;
  if (text.empty()) return true;
  const std::uint32_t limit = 1u << ports;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(';', pos), text.size());
    const std::string_view slot = text.substr(pos, end - pos);
    ArrivalVector arrival;
    std::size_t item = 0;
    while (item <= slot.size()) {
      const std::size_t comma = std::min(slot.find(',', item), slot.size());
      const std::string_view digits = slot.substr(item, comma - item);
      std::uint32_t mask = 0;
      const auto [ptr, ec] = std::from_chars(
          digits.data(), digits.data() + digits.size(), mask, 16);
      if (ec != std::errc{} || ptr != digits.data() + digits.size() ||
          mask >= limit)
        return false;
      arrival.push_back(mask_to_set(mask, ports));
      if (comma == slot.size()) break;
      item = comma + 1;
    }
    if (static_cast<int>(arrival.size()) != ports) return false;
    out.push_back(std::move(arrival));
    if (end == text.size()) break;
    pos = end + 1;
  }
  return true;
}

SlotEngine::SlotEngine(int ports, Mutation mutation, bool check_equivalence)
    : ports_(ports),
      check_equivalence_(check_equivalence),
      scheduler_(make_mutant_scheduler(mutation)),
      rng_(0x5eedULL),
      fault_rng_(0xfa017ULL) {
  scheduler_->reset(ports, ports);
  hw_.reset(ports, ports);
}

int SlotEngine::step(const SwitchState& state, Outcome& outcome,
                     std::vector<Violation>& violations) {
  state.materialize_into(scratch_ports_);
  outcome.matching.reset(ports_, ports_);
  // FIFOMS never reads the wall clock, but the interface carries one; any
  // value past every queued stamp is faithful.
  const auto now = static_cast<SlotTime>(state.packet_count() + 1);
  scheduler_->schedule(scratch_ports_, now, outcome.matching, rng_);
  outcome.matching.validate();

  const std::size_t before = violations.size();
  check_matching_properties(state, outcome.matching, violations);
  if (check_equivalence_) {
    hw_matching_.reset(ports_, ports_);
    hw_.schedule(scratch_ports_, now, hw_matching_, rng_);
    hw_matching_.validate();
    check_equivalence(state, outcome.matching, hw_matching_, violations);
  }
  const int found = static_cast<int>(violations.size() - before);

  if (found == 0) {
    outcome.next = state;
    outcome.departed_mask = outcome.next.apply_matching(outcome.matching);
  } else {
    // A violating state is terminal: applying a broken matching (e.g. one
    // granting an empty VOQ) is undefined, and the explorer will not
    // expand past it anyway.
    outcome.next = SwitchState(ports_);
    outcome.departed_mask = 0;
  }
  return found;
}

int SlotEngine::step_with_fault(const SwitchState& state,
                                const PortSet& failed_outputs,
                                SlotMatching& matching,
                                std::vector<Violation>& violations) {
  state.materialize_into(scratch_ports_);
  matching.reset(ports_, ports_);
  const auto now = static_cast<SlotTime>(state.packet_count() + 1);
  ScheduleConstraints constraints;
  constraints.failed_outputs = failed_outputs;
  scheduler_->schedule(scratch_ports_, now, matching, fault_rng_, constraints);
  matching.validate();

  const std::size_t before = violations.size();
  check_fault_masking(state, matching, failed_outputs, violations);
  return static_cast<int>(violations.size() - before);
}

Explorer::Explorer(ExplorerOptions options) : options_(std::move(options)) {
  options_.ports = std::clamp(options_.ports, 2, 4);
  options_.max_packets_per_input = std::clamp(options_.max_packets_per_input,
                                              1, 8);
}

namespace {

/// Provenance of a stored post-service state: the arrival code that led
/// from `parent` to it (root: parent == -1).
struct Pred {
  std::int32_t parent = -1;
  std::uint64_t code = 0;
};

/// Outgoing transition for the starvation fixpoint.
struct Edge {
  std::uint32_t next = 0;      ///< successor post-service state id
  std::uint32_t departed = 0;  ///< front-departure bitmask of the slot
  std::uint64_t code = 0;      ///< arrival code taken
};

/// Memoized result of one distinct post-arrival state.
struct ArrivalOutcome {
  std::uint32_t next = 0;
  std::uint32_t departed = 0;
  bool violated = false;
};

Trace build_trace(const std::vector<Pred>& pred, std::uint32_t state_id,
                  int ports) {
  std::vector<std::uint64_t> codes;
  for (std::int32_t v = static_cast<std::int32_t>(state_id);
       pred[static_cast<std::size_t>(v)].parent >= 0;
       v = pred[static_cast<std::size_t>(v)].parent)
    codes.push_back(pred[static_cast<std::size_t>(v)].code);
  std::reverse(codes.begin(), codes.end());
  Trace trace;
  trace.reserve(codes.size());
  for (const std::uint64_t code : codes)
    trace.push_back(code_to_arrival(code, ports));
  return trace;
}

}  // namespace

ExplorerResult Explorer::run() {
  const int ports = options_.ports;
  const std::uint64_t choices = 1ull << ports;
  std::uint64_t total_codes = 1;
  for (int i = 0; i < ports; ++i) total_codes *= choices;

  ExplorerResult result;
  const bool track_edges = options_.check_starvation;

  std::vector<SwitchState> states;
  std::vector<Pred> pred;
  std::vector<int> depth;
  std::vector<std::vector<Edge>> edges;
  std::unordered_map<std::string, std::uint32_t> service_ids;
  std::unordered_map<std::string, ArrivalOutcome> arrival_cache;

  SwitchState root(ports);
  service_ids.emplace(root.encode(), 0u);
  states.push_back(std::move(root));
  pred.push_back({});
  depth.push_back(0);
  if (track_edges) edges.emplace_back();

  SlotEngine engine(ports, options_.mutation, options_.check_equivalence);
  std::vector<Violation> violations_scratch;
  ArrivalVector arrival(static_cast<std::size_t>(ports));
  SlotMatching fault_matching;

  bool truncated = false;
  bool stop = false;

  // Property (f): every fresh post-arrival state is re-scheduled once per
  // single-output-down mask.  Checked, not expanded — a fault transition
  // never grows the state graph, it only asserts the degraded matching.
  auto check_fault_masks = [&](const SwitchState& post_arrival,
                               std::uint32_t parent, const ArrivalVector& arr) {
    for (PortId down = 0; down < ports && !stop; ++down) {
      PortSet mask;
      mask.insert(down);
      ++result.stats.fault_checks;
      violations_scratch.clear();
      if (engine.step_with_fault(post_arrival, mask, fault_matching,
                                 violations_scratch) == 0)
        continue;
      CounterExample counterexample;
      counterexample.trace = build_trace(pred, parent, ports);
      counterexample.trace.push_back(arr);
      counterexample.violations = std::move(violations_scratch);
      violations_scratch = {};
      result.counterexamples.push_back(std::move(counterexample));
      if (static_cast<int>(result.counterexamples.size()) >=
          options_.max_counterexamples)
        stop = true;
    }
  };

  for (std::uint32_t s = 0; s < states.size() && !stop; ++s) {
    if (options_.max_slots > 0 &&
        depth[s] >= options_.max_slots) {
      truncated = true;
      continue;
    }
    if (options_.max_states > 0 && states.size() >= options_.max_states) {
      truncated = true;
      break;
    }
    // `states` grows while we expand `s`; keep a stable copy of the base.
    const SwitchState base = states[s];

    for (std::uint64_t code = 0; code < total_codes && !stop; ++code) {
      std::uint64_t rem = code;
      bool pruned = false;
      for (int input = 0; input < ports; ++input) {
        const auto mask = static_cast<std::uint32_t>(rem % choices);
        rem /= choices;
        if (mask != 0 &&
            base.packets_at(input) >=
                static_cast<std::size_t>(options_.max_packets_per_input)) {
          pruned = true;  // adversary respects the queue-depth bound
          break;
        }
        arrival[static_cast<std::size_t>(input)] = mask_to_set(mask, ports);
      }
      if (pruned) continue;

      SwitchState post_arrival = base;
      post_arrival.push_arrivals(arrival);
      ++result.stats.transitions;

      auto [it, fresh] = arrival_cache.try_emplace(post_arrival.encode());
      if (!fresh) {
        ++result.stats.dedup_hits;
      } else {
        ++result.stats.canonical_states;
        violations_scratch.clear();
        SlotEngine::Outcome outcome;
        const int found = engine.step(post_arrival, outcome,
                                      violations_scratch);
        if (found > 0) {
          it->second.violated = true;
          CounterExample counterexample;
          counterexample.trace = build_trace(pred, s, ports);
          counterexample.trace.push_back(arrival);
          counterexample.violations = std::move(violations_scratch);
          violations_scratch = {};
          result.counterexamples.push_back(std::move(counterexample));
          if (static_cast<int>(result.counterexamples.size()) >=
              options_.max_counterexamples)
            stop = true;
        } else {
          // The fault-free transition is sound; also probe it under every
          // single-output fault before registering the successor.
          if (options_.check_fault_transitions)
            check_fault_masks(post_arrival, s, arrival);
          auto [sit, snew] = service_ids.try_emplace(
              outcome.next.encode(),
              static_cast<std::uint32_t>(states.size()));
          if (snew) {
            states.push_back(std::move(outcome.next));
            pred.push_back({static_cast<std::int32_t>(s), code});
            depth.push_back(depth[s] + 1);
            if (track_edges) edges.emplace_back();
            result.stats.frontier_slots =
                std::max(result.stats.frontier_slots, depth[s] + 1);
          }
          it->second.next = sit->second;
          it->second.departed = outcome.departed_mask;
        }
      }
      if (track_edges && !it->second.violated)
        edges[s].push_back({it->second.next, it->second.departed, code});
    }
  }

  result.stats.service_states = states.size();
  result.stats.complete = !truncated && !stop;

  // --- property (d): bounded starvation -------------------------------
  // h(s, i) = worst-case slots until input i's current front packet
  // departs, over every arrival choice the bounded adversary has in s.
  // A cycle in the "front survives" relation means the adversary can
  // defer that packet forever.  Only sound on a complete graph.
  if (options_.check_starvation && result.stats.complete &&
      result.counterexamples.empty()) {
    constexpr std::int64_t kUnvisited = -2;
    constexpr std::int64_t kOnStack = -1;
    struct Frame {
      std::uint32_t sid;
      std::size_t edge = 0;
      std::int64_t best = 0;
    };
    std::vector<std::int64_t> h(states.size() * static_cast<std::size_t>(ports),
                                kUnvisited);
    std::vector<Frame> stack;
    std::int64_t bound = 0;
    bool starved = false;

    for (std::uint32_t s0 = 0;
         s0 < states.size() && !starved; ++s0) {
      for (int input = 0; input < ports && !starved; ++input) {
        if (states[s0].packets_at(input) == 0) continue;
        const std::size_t idx0 =
            s0 * static_cast<std::size_t>(ports) +
            static_cast<std::size_t>(input);
        if (h[idx0] != kUnvisited) {
          bound = std::max(bound, h[idx0]);
          continue;
        }
        h[idx0] = kOnStack;
        stack.assign(1, Frame{s0});
        while (!stack.empty()) {
          Frame& frame = stack.back();
          if (frame.edge < edges[frame.sid].size()) {
            const Edge edge = edges[frame.sid][frame.edge++];
            if ((edge.departed >> input) & 1u) {
              frame.best = std::max<std::int64_t>(frame.best, 1);
              continue;
            }
            const std::size_t idx2 =
                edge.next * static_cast<std::size_t>(ports) +
                static_cast<std::size_t>(input);
            if (h[idx2] == kOnStack) {
              // Reconstruct the arrival cycle from the DFS stack: the
              // frames from the revisited state to the top, each with the
              // edge it took (the top frame took `edge` itself).
              Trace cycle;
              std::size_t at = 0;
              while (stack[at].sid != edge.next) ++at;
              for (std::size_t j = at; j + 1 < stack.size(); ++j)
                cycle.push_back(code_to_arrival(
                    edges[stack[j].sid][stack[j].edge - 1].code, ports));
              cycle.push_back(code_to_arrival(edge.code, ports));

              CounterExample counterexample;
              counterexample.trace = build_trace(pred, edge.next, ports);
              counterexample.violations.push_back(Violation{
                  Property::kBoundedStarvation,
                  "input " + std::to_string(input) +
                      "'s front packet can be deferred forever: after the "
                      "trace, repeating the arrival cycle \"" +
                      encode_trace(cycle) +
                      "\" returns to the same state without serving it",
                  states[edge.next].hash(), states[edge.next]});
              result.counterexamples.push_back(std::move(counterexample));
              starved = true;
              break;
            }
            if (h[idx2] >= 0) {
              frame.best = std::max(frame.best, 1 + h[idx2]);
              continue;
            }
            h[idx2] = kOnStack;
            stack.push_back(Frame{edge.next});  // invalidates `frame`
            continue;
          }
          const std::int64_t value = frame.best;
          h[frame.sid * static_cast<std::size_t>(ports) +
            static_cast<std::size_t>(input)] = value;
          stack.pop_back();
          if (!stack.empty())
            stack.back().best = std::max(stack.back().best, 1 + value);
        }
        if (!starved) bound = std::max(bound, h[idx0]);
      }
    }
    if (!starved) result.stats.starvation_bound = bound;
  }

  return result;
}

ReplayResult replay_trace(const ExplorerOptions& options, const Trace& trace) {
  ReplayResult result;
  const int ports = std::clamp(options.ports, 2, 4);
  SlotEngine engine(ports, options.mutation, options.check_equivalence);
  SwitchState state(ports);
  char hash_buf[32];
  int slot = 0;

  for (const ArrivalVector& arrival : trace) {
    if (static_cast<int>(arrival.size()) != ports) {
      result.log += "slot " + std::to_string(slot) +
                    ": malformed arrival vector, aborting replay\n";
      break;
    }
    state.push_arrivals(arrival);
    std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                  static_cast<unsigned long long>(state.hash()));
    result.log += "slot " + std::to_string(slot) + ": arrivals";
    for (std::size_t input = 0; input < arrival.size(); ++input)
      result.log += " in" + std::to_string(input) + "=" +
                    (arrival[input].empty() ? std::string("-")
                                            : arrival[input].to_string());
    result.log += "\n  post-arrival [" + std::string(hash_buf) + "] " +
                  state.to_string() + "\n";

    SlotEngine::Outcome outcome;
    std::vector<Violation> violations;
    const int found = engine.step(state, outcome, violations);

    result.log += "  matching:";
    bool any = false;
    for (PortId output = 0; output < ports; ++output) {
      const PortId source = outcome.matching.source(output);
      if (source == kNoPort) continue;
      result.log += " out" + std::to_string(output) + "<-in" +
                    std::to_string(source);
      any = true;
    }
    if (!any) result.log += " (none)";
    result.log += " rounds=" + std::to_string(outcome.matching.rounds) + "\n";

    if (found > 0) {
      for (const Violation& violation : violations)
        result.log += "  VIOLATION [" +
                      std::string(property_name(violation.property)) + "] " +
                      violation.detail + "\n";
      result.violations.insert(result.violations.end(),
                               std::make_move_iterator(violations.begin()),
                               std::make_move_iterator(violations.end()));
      break;
    }
    state = std::move(outcome.next);
    result.log += "  post-service " + state.to_string() + "\n";
    ++slot;
  }
  return result;
}

}  // namespace fifoms::verify
