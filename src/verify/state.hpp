// Canonical encoding of a full multicast-VOQ switch state for the bounded
// exhaustive verifier (docs/VERIFICATION.md).
//
// A state captures everything the FIFOMS scheduler can observe: for every
// input, the sequence of unserved packets in arrival order, each carrying
// its arrival stamp and its residue (the destinations whose address cells
// are still queued).  The per-VOQ address-cell queues of McVoqInput are a
// projection of this: VOQ (i, j) holds, head first, the packets of input i
// whose residue contains j, in stamp order.  Because at most one packet
// arrives per input per slot, stamps are strictly increasing within an
// input; ties only occur across inputs (same-slot arrivals).
//
// Symmetry reduction: FIFOMS compares stamps but never reads their
// absolute values, so two states whose stamp multisets are related by any
// order- and tie-preserving renumbering are indistinguishable — this
// subsumes the obvious shift symmetry (adding a constant to every stamp).
// canonicalize() quotients by it, rank-compressing the stamps to
// 0..k-1.  The quotient is what makes the reachable space finite: without
// it every slot mints a fresh stamp and no state ever repeats.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/port_set.hpp"
#include "common/types.hpp"
#include "core/matching.hpp"
#include "fabric/mc_voq_input.hpp"

namespace fifoms::verify {

/// Largest switch radix the verifier handles (fuzz harnesses go to 8;
/// exhaustive exploration is practical up to 3, at a stretch 4).
inline constexpr int kMaxVerifyPorts = 8;

/// One unserved multicast packet at an input.
struct PacketState {
  std::uint32_t stamp = 0;  ///< arrival stamp (canonical rank after
                            ///< canonicalize(); raw slot before)
  PortSet residue;          ///< destinations still awaiting the data cell

  bool operator==(const PacketState&) const = default;
};

/// One input port: packets in arrival order (strictly increasing stamp).
struct InputState {
  std::vector<PacketState> packets;

  bool operator==(const InputState&) const = default;
};

class SwitchState {
 public:
  static constexpr std::uint32_t kNoStamp = 0xffffffffu;

  SwitchState() = default;
  explicit SwitchState(int ports);

  int ports() const { return ports_; }
  const std::vector<InputState>& inputs() const { return inputs_; }

  bool is_empty() const;
  std::size_t packet_count() const;
  std::size_t address_cell_count() const;
  std::size_t packets_at(PortId input) const;

  /// Stamp of input's earliest unserved packet, kNoStamp when idle.
  std::uint32_t front_stamp(PortId input) const;

  /// HOL address cell of VOQ (input, output): the earliest packet of
  /// `input` whose residue contains `output`.  nullptr when the VOQ is
  /// empty.  Mirrors McVoqInput::hol().
  const PacketState* hol(PortId input, PortId output) const;

  /// Structural invariants: residues non-empty and within radix, stamps
  /// strictly increasing per input.  Fills `why` on failure.
  bool well_formed(std::string* why = nullptr) const;

  /// Quotient by stamp symmetry: renumber stamps to their rank among the
  /// distinct stamps present (order- and tie-preserving).  Idempotent.
  void canonicalize();

  /// Append one arriving packet per non-empty destination set in
  /// `destinations` (indexed by input; empty set = no arrival).  All
  /// arrivals of the call share one fresh stamp — they land in the same
  /// slot — and the state is re-canonicalized.
  void push_arrivals(std::span<const PortSet> destinations);

  /// Serve every granted (input, output) pair of `matching`: pop the HOL
  /// cell of each granted VOQ, exactly like VoqSwitch::step's transmit
  /// loop.  Returns a bitmask over inputs whose pre-call front packet
  /// fully departed (the tracked object of the bounded-starvation check).
  /// Panics if a grant references an empty VOQ.  Re-canonicalizes.
  std::uint32_t apply_matching(const SlotMatching& matching);

  /// Compact byte encoding; equal canonical states encode identically,
  /// so encode() of a canonicalized state is a valid dedup key.
  std::string encode() const;

  /// Exact inverse of encode(); returns false on malformed input.
  static bool decode(std::string_view bytes, SwitchState& out);

  /// Stable 64-bit hash of encode() (FNV-1a + splitmix finalizer) — the
  /// identifier printed in every verifier diagnostic.
  std::uint64_t hash() const;

  /// "in0: 0@{0,1} 2@{1} | in1: -" — for traces and failure reports.
  std::string to_string() const;

  /// Rebuild real input ports carrying exactly this state, via the
  /// McVoqInput::inject_queue_state hook.  Reuses `ports` when the sizes
  /// match, reconstructs it otherwise.
  void materialize_into(std::vector<McVoqInput>& ports) const;

  /// Read the state back out of live input ports (inverse bridge, used to
  /// cross-check the injection hook).  Not canonicalized.
  static SwitchState read_back(std::span<const McVoqInput> ports);

  /// Lenient builder for the fuzz harnesses: interpret arbitrary bytes as
  /// a queue state (radix 2..kMaxVerifyPorts) such that the result is
  /// always well-formed and canonical.
  static SwitchState from_fuzz_bytes(std::span<const unsigned char> bytes);

  bool operator==(const SwitchState&) const = default;

  /// Mutable access for state builders (explorer, tests).
  std::vector<InputState>& mutable_inputs() { return inputs_; }

 private:
  int ports_ = 0;
  std::vector<InputState> inputs_;
};

/// Fuzz-byte mapper for fault coverage: interpret one byte as a
/// failed-output set for a single-fault transition.  byte % (ports + 1)
/// selects either no fault (0) or exactly one downed output (k-1) — the
/// shape SlotEngine::step_with_fault checks.
PortSet fault_mask_from_fuzz_byte(unsigned char byte, int ports);

}  // namespace fifoms::verify
